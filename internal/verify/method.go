package verify

import (
	"errors"
	"fmt"

	"repro/internal/claim"
	"repro/internal/llm"
	"repro/internal/llm/resilience"
	"repro/internal/sqldb"
	"repro/internal/trace"
)

// Sample is a successfully translated claim used for few-shot learning (the
// {sample} placeholder of Figure 3).
type Sample struct {
	MaskedClaim string
	Query       string
}

// Invocation bundles the per-attempt inputs of one method invocation.
type Invocation struct {
	// Sample is an optional few-shot example (nil on harvest passes).
	Sample *Sample
	// Temperature controls model randomization so retries can differ
	// (Section 7.1 uses 0 first, then 0.25/0.5).
	Temperature float64
	// Seed identifies this attempt for sampling. The pipeline derives it
	// from (document ID, claim index, method name, try number) via
	// llm.SplitSeed, which makes temperature > 0 attempts reproducible
	// independent of execution order — the keystone of deterministic
	// claim-level parallelism. Ignored at temperature 0.
	Seed int64
	// Attempt is the trace identity of this invocation — the same
	// (doc, claim, method, try) tuple the Seed is split from. Copied onto
	// every llm.Request the method issues so middleware spans attribute to
	// the right attempt; the zero Key is fine for untraced callers.
	Attempt trace.Key
	// Tracer, when enabled, receives the attempt's terminal outcome span.
	Tracer *trace.Tracer
}

// Method is one verification approach instantiated with a specific model —
// one point in CEDAR's method space (one-shot or agent, times model tier).
type Method interface {
	// Name identifies the method for scheduling and reporting.
	Name() string
	// ModelName is the underlying model identifier (for cost accounting).
	ModelName() string
	// Translate attempts to produce a SQL query representing the claim.
	Translate(c *claim.Claim, db *sqldb.Database, inv Invocation) (string, error)
}

// Attempt applies one unseeded method invocation to one claim — the
// convenience form used by profiling and ablations, where temperature-0
// determinism makes seeds irrelevant.
func Attempt(m Method, c *claim.Claim, db *sqldb.Database, sample *Sample, temperature float64) bool {
	return AttemptWith(m, c, db, Invocation{Sample: sample, Temperature: temperature})
}

// AttemptWith applies one method invocation to one claim, implementing the
// body of Algorithm 2's loop: translate, gate with CorrectQuery, and on
// success validate with CorrectClaim and record the outcome on the claim.
// It mutates only c, so concurrent attempts on distinct claims are safe.
func AttemptWith(m Method, c *claim.Claim, db *sqldb.Database, inv Invocation) bool {
	c.Result.Attempts++
	c.Result.Failure = ""
	query, err := m.Translate(c, db, inv)
	if err != nil {
		// Transport failures (exhausted retries, open circuits) are recorded
		// on the claim so the pipeline can label it "failed" rather than
		// silently unverified; semantic failures leave Failure empty.
		if class, ok := resilience.Classify(err); ok {
			c.Result.Failure = class
			inv.outcome(class)
		} else {
			inv.outcome(trace.OutcomeImplausible)
		}
		return false
	}
	c.Result.Query = query // last attempted query, kept even on failure
	// Executable means the query parses and runs; an empty or multi-row
	// result still counts (it ran, it just cannot match the claimed
	// value), feeding Section 4's marked-incorrect fallback.
	if _, err := sqldb.QueryScalar(db, query); err == nil || errors.Is(err, sqldb.ErrNotScalar) {
		c.Result.Executable = true
	}
	if !CorrectQuery(query, c.Value, db) {
		inv.outcome(trace.OutcomeImplausible)
		return false
	}
	correct, err := CorrectClaim(query, c.Value, db)
	if err != nil {
		inv.outcome(trace.OutcomeImplausible)
		return false
	}
	c.Result.Verified = true
	c.Result.Correct = correct
	c.Result.Method = m.Name()
	inv.outcome(trace.OutcomeVerified)
	return true
}

// outcome records the attempt's terminal verdict span: "verified",
// "implausible" (the translation executed but failed a gate, or the model
// answered unusably), or a transport-error class.
func (inv Invocation) outcome(verdict string) {
	if !inv.Tracer.Enabled() {
		return
	}
	inv.Tracer.Record(trace.Span{Key: inv.Attempt, Kind: trace.KindOutcome, Outcome: verdict})
}

// MakeSample converts a successfully verified claim into a few-shot sample.
func MakeSample(c *claim.Claim) *Sample {
	masked, _ := c.Masked()
	return &Sample{MaskedClaim: masked, Query: c.Result.Query}
}

// baseInputs assembles the prompt ingredients shared by both methods.
func baseInputs(c *claim.Claim, db *sqldb.Database, masked bool) (claimText, ctx string) {
	if masked {
		return maskedPair(c)
	}
	return c.Sentence, c.Context
}

func maskedPair(c *claim.Claim) (string, string) {
	return c.Masked()
}

// usageError wraps model invocation failures.
func usageError(m Method, err error) error {
	return fmt.Errorf("verify: method %s: %w", m.Name(), err)
}

// singleTurn invokes the model once with a user prompt.
func singleTurn(client llm.Client, model, prompt string, inv Invocation) (llm.Response, error) {
	return client.Complete(llm.Request{
		Model:       model,
		Messages:    []llm.Message{{Role: llm.RoleUser, Content: prompt}},
		Temperature: inv.Temperature,
		Seed:        inv.Seed,
		Attempt:     inv.Attempt,
	})
}
