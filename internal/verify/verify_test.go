package verify

import (
	"strings"
	"testing"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/sqldb"
)

func fixtureDB(t testing.TB) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase("airlinesafety")
	tab := sqldb.NewTable("airlines", "airline", "incidents_85_99", "fatal_accidents_00_14", "fatalities_00_14")
	tab.MustAppendRow(sqldb.Text("Aer Lingus"), sqldb.Int(2), sqldb.Int(0), sqldb.Int(0))
	tab.MustAppendRow(sqldb.Text("Malaysia Airlines"), sqldb.Int(3), sqldb.Int(2), sqldb.Int(537))
	tab.MustAppendRow(sqldb.Text("United / Continental"), sqldb.Int(19), sqldb.Int(2), sqldb.Int(109))
	db.AddTable(tab)
	return db
}

func TestCorrectQueryNumeric(t *testing.T) {
	db := fixtureDB(t)
	q := `SELECT "fatal_accidents_00_14" FROM airlines WHERE airline = 'Malaysia Airlines'`
	if !CorrectQuery(q, "2", db) {
		t.Error("exact result should be plausible")
	}
	if !CorrectQuery(q, "3", db) {
		t.Error("same-magnitude result should be plausible")
	}
	if CorrectQuery(q, "900", db) {
		t.Error("magnitude-off result should be implausible")
	}
	if CorrectQuery(`SELECT airline FROM airlines`, "2", db) {
		t.Error("multi-row query should be implausible")
	}
	if CorrectQuery(`SELECT nope FROM airlines`, "2", db) {
		t.Error("failing query should be implausible")
	}
}

func TestCorrectQueryTextual(t *testing.T) {
	db := fixtureDB(t)
	q := `SELECT airline FROM airlines WHERE fatalities_00_14 = (SELECT MAX(fatalities_00_14) FROM airlines)`
	if !CorrectQuery(q, "Malaysia Airlines", db) {
		t.Error("matching textual value should be plausible")
	}
	if !CorrectQuery(q, "malaysia airlines", db) {
		t.Error("case variant should be plausible")
	}
	if CorrectQuery(q, "Aer Lingus", db) {
		t.Error("different entity should be implausible")
	}
}

func TestCorrectClaim(t *testing.T) {
	db := fixtureDB(t)
	q := `SELECT AVG(incidents_85_99) FROM airlines` // = 8
	ok, err := CorrectClaim(q, "8", db)
	if err != nil || !ok {
		t.Errorf("avg claim: %v %v", ok, err)
	}
	ok, err = CorrectClaim(q, "9", db)
	if err != nil || ok {
		t.Errorf("wrong avg claim: %v %v", ok, err)
	}
	// Precision semantics: AVG = 8, claimed 8.0 matches at precision 1.
	ok, _ = CorrectClaim(q, "8.0", db)
	if !ok {
		t.Error("8.0 should match result 8")
	}
}

func TestFeedback(t *testing.T) {
	cases := []struct {
		res   sqldb.Value
		claim string
		want  string
	}{
		{sqldb.Int(2), "2", "correct"},
		{sqldb.Float(2.4), "2", "correct"}, // rounds to 2
		{sqldb.Int(5), "2", "close"},
		{sqldb.Int(900), "2", "greater"},
		{sqldb.Float(0.001), "900", "smaller"},
		{sqldb.Text("Malaysia Airlines"), "Malaysia Airlines", "Value matched"},
		{sqldb.Text("Aer Lingus"), "Lufthansa", "mismatched"},
		{sqldb.Text("abc"), "42", "non-numeric"},
	}
	for _, c := range cases {
		got := Feedback(c.res, c.claim)
		if !strings.Contains(got, c.want) {
			t.Errorf("Feedback(%v, %q) = %q want containing %q", c.res, c.claim, got, c.want)
		}
	}
}

func TestReconstructNumeric(t *testing.T) {
	db := fixtureDB(t)
	queries := []string{
		`SELECT MAX("fatalities_00_14") FROM "airlines"`,
		`SELECT "airline" FROM "airlines" WHERE "fatalities_00_14" = 537`,
	}
	got := Reconstruct(queries, db)
	want := `SELECT "airline" FROM "airlines" WHERE "fatalities_00_14" = (SELECT MAX("fatalities_00_14") FROM "airlines")`
	if got != want {
		t.Errorf("reconstructed:\n%s\nwant:\n%s", got, want)
	}
	// The reconstructed query must execute and produce the right entity.
	v, err := sqldb.QueryScalar(db, got)
	if err != nil || v.Text() != "Malaysia Airlines" {
		t.Errorf("exec reconstructed: %v %v", v, err)
	}
}

func TestReconstructChain(t *testing.T) {
	db := fixtureDB(t)
	queries := []string{
		`SELECT MAX("incidents_85_99") FROM "airlines"`, // 19
		`SELECT MIN("incidents_85_99") FROM "airlines"`, // 2
		`SELECT 19 - 2`,
	}
	got := Reconstruct(queries, db)
	if !strings.Contains(got, "MAX") || !strings.Contains(got, "MIN") {
		t.Errorf("chain reconstruction missing subqueries: %s", got)
	}
	v, err := sqldb.QueryScalar(db, got)
	if err != nil {
		t.Fatalf("exec %q: %v", got, err)
	}
	if n, _ := v.AsInt(); n != 17 {
		t.Errorf("result = %v", v)
	}
}

func TestReconstructSingleQuery(t *testing.T) {
	db := fixtureDB(t)
	q := `SELECT COUNT(*) FROM airlines`
	if got := Reconstruct([]string{q}, db); got != q {
		t.Errorf("single query must pass through, got %q", got)
	}
}

func TestReconstructNoMatchingConstant(t *testing.T) {
	db := fixtureDB(t)
	queries := []string{
		`SELECT MAX("fatalities_00_14") FROM "airlines"`, // 537
		`SELECT COUNT(*) FROM "airlines"`,                // no 537 constant
	}
	got := Reconstruct(queries, db)
	if got != `SELECT COUNT(*) FROM "airlines"` {
		t.Errorf("unexpected substitution: %q", got)
	}
}

func TestReconstructTextual(t *testing.T) {
	db := fixtureDB(t)
	queries := []string{
		`SELECT "airline" FROM "airlines" WHERE "fatalities_00_14" = 537`,
		`SELECT "incidents_85_99" FROM "airlines" WHERE "airline" = 'Malaysia Airlines'`,
	}
	got := Reconstruct(queries, db)
	if !strings.Contains(got, "(SELECT \"airline\"") {
		t.Errorf("textual substitution missing: %s", got)
	}
	v, err := sqldb.QueryScalar(db, got)
	if err != nil {
		t.Fatalf("exec %q: %v", got, err)
	}
	if n, _ := v.AsInt(); n != 3 {
		t.Errorf("result = %v", v)
	}
}

func TestUniqueValuesObservation(t *testing.T) {
	db := fixtureDB(t)
	obs := UniqueValuesObservation(db, "airline")
	if !strings.Contains(obs, "Malaysia Airlines") {
		t.Errorf("obs = %q", obs)
	}
	obs = UniqueValuesObservation(db, `"airline"`)
	if !strings.Contains(obs, "Malaysia Airlines") {
		t.Errorf("quoted column obs = %q", obs)
	}
	if obs := UniqueValuesObservation(db, "nope"); !strings.HasPrefix(obs, "Error:") {
		t.Errorf("missing column obs = %q", obs)
	}
}

func TestQueryObservation(t *testing.T) {
	db := fixtureDB(t)
	obs := QueryObservation(db, `SELECT COUNT(*) FROM airlines`, "3")
	if !strings.Contains(obs, "Result: 3") || !strings.Contains(obs, "correct") {
		t.Errorf("obs = %q", obs)
	}
	if obs := QueryObservation(db, `SELECT * FROM nope`, "3"); !strings.HasPrefix(obs, "Error:") {
		t.Errorf("error obs = %q", obs)
	}
}

// newMethodSet builds the standard verification methods over fresh sim
// models, all metered into one ledger.
func newMethodSet(t testing.TB, seed int64) (oneshot35, oneshot4o, agent4o, agent41 Method, ledger *llm.Ledger) {
	t.Helper()
	ledger = llm.NewLedger()
	client := func(model string) llm.Client {
		m, err := sim.New(model, seed)
		if err != nil {
			t.Fatal(err)
		}
		return &llm.Metered{Client: m, Ledger: ledger}
	}
	oneshot35 = NewOneShot(client(llm.ModelGPT35), llm.ModelGPT35, "oneshot-gpt3.5")
	oneshot4o = NewOneShot(client(llm.ModelGPT4o), llm.ModelGPT4o, "oneshot-gpt4o")
	agent4o = NewAgent(client(llm.ModelGPT4o), llm.ModelGPT4o, "agent-gpt4o", seed)
	agent41 = NewAgent(client(llm.ModelGPT41), llm.ModelGPT41, "agent-gpt4.1", seed)
	return
}

// successRate runs a method over a corpus and returns the fraction of
// claims with a plausible translation and the fraction of translations
// agreeing with the gold label.
func successRate(t *testing.T, m Method, docs []*claim.Document) (verified, labelAgree float64) {
	t.Helper()
	total, ver, agree := 0, 0, 0
	for _, d := range docs {
		for _, c := range d.Claims {
			cc := *c // do not mutate the shared corpus
			total++
			if Attempt(m, &cc, d.Data, nil, 0) {
				ver++
				if cc.Result.Correct == cc.Gold.Correct {
					agree++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("empty corpus")
	}
	return float64(ver) / float64(total), float64(agree) / float64(max(ver, 1))
}

func TestOneShotEndToEnd(t *testing.T) {
	docs, err := data.AggChecker(21)
	if err != nil {
		t.Fatal(err)
	}
	docs = docs[:12]
	oneshot35, oneshot4o, _, _, _ := newMethodSet(t, 21)

	v35, _ := successRate(t, oneshot35, docs)
	v4o, a4o := successRate(t, oneshot4o, docs)
	t.Logf("one-shot verified rates: gpt3.5=%.2f gpt4o=%.2f (gpt4o agree=%.2f)", v35, v4o, a4o)
	if v35 < 0.2 || v35 > 0.95 {
		t.Errorf("gpt3.5 one-shot verified rate %.2f outside plausible band", v35)
	}
	if v4o <= v35 {
		t.Errorf("gpt4o (%.2f) should verify more claims than gpt3.5 (%.2f)", v4o, v35)
	}
	if a4o < 0.8 {
		t.Errorf("gpt4o verified claims should mostly agree with gold labels, got %.2f", a4o)
	}
}

func TestAgentRecoversOneShotFailures(t *testing.T) {
	// The agent's role in CEDAR is to verify the claims one-shot methods
	// could not (Section 5.3): on the one-shot failure set, the agent must
	// recover a substantial fraction, at higher cost per claim.
	docs, err := data.AggChecker(33)
	if err != nil {
		t.Fatal(err)
	}
	docs = docs[:16]
	_, oneshot4o, agent4o, _, ledger := newMethodSet(t, 33)

	type failed struct {
		c  *claim.Claim
		db *sqldb.Database
	}
	var failures []failed
	total := 0
	for _, d := range docs {
		for _, c := range d.Claims {
			cc := *c
			total++
			if !Attempt(oneshot4o, &cc, d.Data, nil, 0) {
				failures = append(failures, failed{c: c, db: d.Data})
			}
		}
	}
	costOneShot := ledger.TotalDollars() / float64(total)
	if len(failures) < 5 {
		t.Fatalf("too few one-shot failures to measure recovery: %d", len(failures))
	}
	ledger.Reset()
	recovered := 0
	for _, f := range failures {
		cc := *f.c
		if Attempt(agent4o, &cc, f.db, nil, 0) {
			recovered++
		}
	}
	costAgent := ledger.TotalDollars() / float64(len(failures))
	t.Logf("agent recovered %d/%d one-shot failures; per-claim cost $%.5f vs one-shot $%.5f",
		recovered, len(failures), costAgent, costOneShot)
	if float64(recovered) < 0.3*float64(len(failures)) {
		t.Errorf("agent recovered only %d/%d one-shot failures", recovered, len(failures))
	}
	if costAgent <= costOneShot {
		t.Errorf("agent per-claim cost ($%.5f) should exceed one-shot ($%.5f)", costAgent, costOneShot)
	}
}

func TestAgentRecoversAliasHazard(t *testing.T) {
	// Force alias hazards on every lookup; the one-shot method cannot
	// recover (the constant does not occur in the data), the agent can via
	// the unique-values tool.
	docs, err := data.Generate(data.GenConfig{
		Seed: 5, Docs: 8, ClaimsPerDoc: 5, IncorrectRate: 0.1,
		AliasRate: 1.0, Domains: []string{data.Domain538},
	})
	if err != nil {
		t.Fatal(err)
	}
	var aliasDocs []*claim.Document
	for _, d := range docs {
		nd := &claim.Document{ID: d.ID, Domain: d.Domain, Data: d.Data}
		for _, c := range d.Claims {
			if strings.Contains(c.Sentence, "United Airlines") ||
				strings.Contains(c.Sentence, "Delta Air Lines") ||
				strings.Contains(c.Sentence, "the United States") ||
				strings.Contains(c.Sentence, "America") ||
				strings.Contains(c.Sentence, "Britain") {
				nd.Claims = append(nd.Claims, c)
			}
		}
		if len(nd.Claims) > 0 {
			aliasDocs = append(aliasDocs, nd)
		}
	}
	if claim.TotalClaims(aliasDocs) < 3 {
		t.Skip("not enough alias claims drawn")
	}
	_, oneshot4o, agent4o, _, _ := newMethodSet(t, 5)
	v1, _ := successRate(t, oneshot4o, aliasDocs)
	v2, _ := successRate(t, agent4o, aliasDocs)
	t.Logf("alias claims: oneshot=%.2f agent=%.2f over %d claims", v1, v2, claim.TotalClaims(aliasDocs))
	if v2 <= v1 {
		t.Errorf("agent (%.2f) must beat one-shot (%.2f) on alias hazards", v2, v1)
	}
	if v2 < 0.5 {
		t.Errorf("agent should recover most alias hazards, got %.2f", v2)
	}
}

func TestTemperatureChangesRetries(t *testing.T) {
	docs, err := data.AggChecker(55)
	if err != nil {
		t.Fatal(err)
	}
	oneshot35, _, _, _, _ := newMethodSet(t, 55)
	// Find a claim that fails at temperature 0; retries at temperature 0
	// must keep failing (deterministic), while retries at 0.25 may differ.
	var target *claim.Claim
	var db *sqldb.Database
	for _, d := range docs {
		for _, c := range d.Claims {
			cc := *c
			if !Attempt(oneshot35, &cc, d.Data, nil, 0) {
				target, db = c, d.Data
				break
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		t.Skip("no failing claim found")
	}
	for i := 0; i < 3; i++ {
		cc := *target
		if Attempt(oneshot35, &cc, db, nil, 0) {
			t.Fatal("temperature-0 retry changed the outcome")
		}
	}
	changed := false
	for i := 0; i < 30 && !changed; i++ {
		cc := *target
		if Attempt(oneshot35, &cc, db, nil, 0.5) {
			changed = true
		}
	}
	t.Logf("temperature-0.5 retries eventually succeeded: %v", changed)
}

func TestMaskingAblation(t *testing.T) {
	// Without masking, the model echoes the claim value as a constant
	// (Figure 2), so incorrect claims get falsely verified as correct.
	docs, err := data.Generate(data.GenConfig{
		Seed: 77, Docs: 10, ClaimsPerDoc: 5, IncorrectRate: 0.5,
		Domains: []string{data.Domain538},
	})
	if err != nil {
		t.Fatal(err)
	}
	modelClient, err := sim.New(llm.ModelGPT4o, 77)
	if err != nil {
		t.Fatal(err)
	}
	masked := NewOneShot(modelClient, llm.ModelGPT4o, "masked")
	unmasked := NewOneShot(modelClient, llm.ModelGPT4o, "unmasked")
	unmasked.Mask = false

	falsePos := func(m Method) int {
		n := 0
		for _, d := range docs {
			for _, c := range d.Claims {
				if c.Gold.Correct {
					continue
				}
				cc := *c
				if Attempt(m, &cc, d.Data, nil, 0) && cc.Result.Correct {
					n++ // incorrect claim verified as correct
				}
			}
		}
		return n
	}
	fpMasked := falsePos(masked)
	fpUnmasked := falsePos(unmasked)
	t.Logf("false positives: masked=%d unmasked=%d", fpMasked, fpUnmasked)
	if fpUnmasked <= fpMasked {
		t.Errorf("unmasked prompts must produce more false positives (masked=%d unmasked=%d)", fpMasked, fpUnmasked)
	}
}

func TestFewShotSampleHelps(t *testing.T) {
	// Harvested samples halve the corruption rate (FewShotBoost), which
	// surfaces as more verdicts agreeing with gold labels at retry
	// temperatures. The raw verified-rate is not the right metric:
	// corrupted translations often still pass the plausibility gate, just
	// with the wrong verdict.
	docs, err := data.AggChecker(88)
	if err != nil {
		t.Fatal(err)
	}
	oneshot35, _, _, _, _ := newMethodSet(t, 88)
	sample := &Sample{
		MaskedClaim: "Aeroflot recorded x incidents between 1985 and 1999.",
		Query:       `SELECT "incidents_85_99" FROM "airlines" WHERE "airline" = 'Aeroflot'`,
	}
	noAgree, withAgree, total := 0, 0, 0
	for _, d := range docs {
		for _, c := range d.Claims {
			total++
			c1, c2 := *c, *c
			if Attempt(oneshot35, &c1, d.Data, nil, 0.6) && c1.Result.Correct == c1.Gold.Correct {
				noAgree++
			}
			if Attempt(oneshot35, &c2, d.Data, sample, 0.6) && c2.Result.Correct == c2.Gold.Correct {
				withAgree++
			}
		}
	}
	t.Logf("gpt3.5 at temp 0.6: gold-agreeing verdicts without sample %d/%d, with sample %d/%d", noAgree, total, withAgree, total)
	if withAgree <= noAgree {
		t.Errorf("few-shot sample should raise verdict agreement: %d vs %d over %d claims", withAgree, noAgree, total)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestMakeSampleAndModelNames(t *testing.T) {
	docs, err := data.AggChecker(70)
	if err != nil {
		t.Fatal(err)
	}
	c := docs[0].Claims[0]
	cc := *c
	cc.Result.Query = "SELECT 1"
	s := MakeSample(&cc)
	if s.Query != "SELECT 1" {
		t.Errorf("sample query = %q", s.Query)
	}
	if strings.Contains(s.MaskedClaim, cc.Value) && len(cc.Value) > 1 {
		t.Errorf("sample leaks claim value: %q", s.MaskedClaim)
	}
	oneshot35, _, agent4o, _, _ := newMethodSet(t, 70)
	if oneshot35.ModelName() != llm.ModelGPT35 {
		t.Errorf("oneshot model = %q", oneshot35.ModelName())
	}
	if agent4o.ModelName() != llm.ModelGPT4o {
		t.Errorf("agent model = %q", agent4o.ModelName())
	}
}

func TestAgentNonceVariesAtTemperature(t *testing.T) {
	_, _, agent4o, _, _ := newMethodSet(t, 71)
	a := agent4o.(*Agent)
	if a.nonce(Invocation{}) != "0" || a.nonce(Invocation{Temperature: 0, Seed: 9}) != "0" {
		t.Error("temperature-0 nonce must be constant")
	}
	hot := func(seed int64) string { return a.nonce(Invocation{Temperature: 0.5, Seed: seed}) }
	if hot(1) == hot(2) {
		t.Error("distinct invocation seeds must yield distinct nonces")
	}
	if hot(1) != hot(1) {
		t.Error("equal invocation seeds must yield equal nonces")
	}
	b := *a
	b.Seed = a.Seed + 1
	if hot(1) == b.nonce(Invocation{Temperature: 0.5, Seed: 1}) {
		t.Error("distinct agent seeds must yield distinct nonces")
	}
}

func TestTraceRecorded(t *testing.T) {
	docs, err := data.AggChecker(72)
	if err != nil {
		t.Fatal(err)
	}
	d := docs[0]
	oneshot35, _, agent4o, _, _ := newMethodSet(t, 72)
	c1 := *d.Claims[0]
	Attempt(oneshot35, &c1, d.Data, nil, 0)
	if c1.Result.Trace == "" || !strings.Contains(c1.Result.Trace, "```sql") && !strings.Contains(c1.Result.Trace, "could not determine") {
		t.Errorf("one-shot trace = %q", c1.Result.Trace)
	}
	c2 := *d.Claims[0]
	c2.Result = claim.Result{}
	Attempt(agent4o, &c2, d.Data, nil, 0)
	if c2.Result.Trace == "" {
		t.Error("agent trace missing")
	}
}
