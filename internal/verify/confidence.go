package verify

import "repro/internal/claim"

// Disagreement scores how much the verification methods disagreed about one
// claim's verdict, in [0, 1] — the ambiguity signal the mixed-initiative
// review queue (internal/review, DESIGN.md §14) ranks by, following the
// Scrutinizer model of routing effort to the verdicts a human is most likely
// to overturn.
//
// The score is a pure function of the claim's Result, so it is as
// deterministic as the verdict itself:
//
//   - a transport-failed claim (method "failed") scores 1.0 — no method ever
//     reached a verdict, the default is pure guesswork;
//   - a semantically exhausted claim (method "unverified") scores 0.9 —
//     every translation the schedule paid for was implausible, so the verdict
//     rests on the plausibility gate alone;
//   - a claim verified only after multiple attempts scores 1 - 1/attempts —
//     earlier methods implicitly disagreed with the one that succeeded
//     (2 attempts → 0.5, 3 → 0.67, approaching 1 as disagreement grows);
//   - a claim verified on the first attempt scores 0 — the methods agreed,
//     nothing to review.
func Disagreement(r claim.Result) float64 {
	switch {
	case r.Method == claim.MethodFailed:
		return 1
	case r.Method == claim.MethodUnverified:
		return 0.9
	case r.Attempts > 1:
		return 1 - 1/float64(r.Attempts)
	default:
		return 0
	}
}
