package verify

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/agent"
	"repro/internal/claim"
	"repro/internal/llm"
	"repro/internal/prompts"
	"repro/internal/sqldb"
)

// Agent is the iterative verification method of Algorithm 6: a ReAct agent
// with two tools — unique_column_values and database_querying — whose
// logged queries are recomposed into one SQL query by the reconstruction
// post-processing of Algorithm 9. An Agent holds no mutable state (retry
// nonces are derived from the invocation seed, not a shared stream), so one
// instance serves concurrent claims without any ordering effects.
type Agent struct {
	Client llm.Client
	Model  string
	Label  string
	Mask   bool
	// Seed distinguishes agent instances: two agents with different seeds
	// sample different retry trajectories for the same claim.
	Seed int64
	// MaxIters caps agent iterations per claim.
	MaxIters int
}

// NewAgent constructs the method with masking enabled.
func NewAgent(client llm.Client, model, label string, seed int64) *Agent {
	return &Agent{
		Client:   client,
		Model:    model,
		Label:    label,
		Mask:     true,
		MaxIters: 8,
		Seed:     seed,
	}
}

// Name implements Method.
func (a *Agent) Name() string { return a.Label }

// ModelName implements Method.
func (a *Agent) ModelName() string { return a.Model }

// Translate implements Method.
func (a *Agent) Translate(c *claim.Claim, db *sqldb.Database, inv Invocation) (string, error) {
	claimText, ctx := baseInputs(c, db, a.Mask)
	sampleBlock := ""
	if inv.Sample != nil {
		sampleBlock = prompts.Sample(inv.Sample.MaskedClaim, inv.Sample.Query)
	}
	base := prompts.Agent(claimText, c.ValueType(), db.Schema(), sampleBlock, ctx)
	// A per-run nonce makes retries at temperature > 0 sample different
	// agent trajectories while temperature 0 stays deterministic.
	base = fmt.Sprintf("Run: %s\n%s", a.nonce(inv), base)

	runner := &agent.Runner{
		Client:        a.Client,
		Model:         a.Model,
		Temperature:   inv.Temperature,
		Seed:          llm.SplitSeed(a.Seed, "conversation", strconv.FormatInt(inv.Seed, 16)),
		MaxIters:      a.MaxIters,
		QueryToolName: prompts.ToolQuery,
		Attempt:       inv.Attempt,
	}
	trace, err := runner.Run(base, a.tools(db, c.Value))
	if trace != nil {
		c.Result.Trace = trace.String()
	}
	if err != nil {
		return "", usageError(a, err)
	}
	if len(trace.Queries) == 0 {
		return "", ErrNoQuery
	}
	return Reconstruct(trace.Queries, db), nil
}

// nonce derives the per-run prompt marker. Temperature 0 keeps the fixed
// nonce so identical prompts stay identical (and cacheable); seeded retries
// get a nonce split from the agent seed and the invocation seed, so each
// (claim, try) samples its own trajectory no matter how attempts interleave.
func (a *Agent) nonce(inv Invocation) string {
	if inv.Temperature <= 0 {
		return "0"
	}
	return strconv.FormatUint(uint64(llm.SplitSeed(a.Seed, "nonce", strconv.FormatInt(inv.Seed, 16))), 16)
}

// tools builds the two agent tools over the claim's database. The querying
// tool implements Algorithm 8: execute the query and return the result plus
// comparative feedback against the claim value.
func (a *Agent) tools(db *sqldb.Database, claimValue string) []agent.Tool {
	unique := agent.FuncTool{
		ToolName: prompts.ToolUniqueValues,
		Fn: func(input string) string {
			return UniqueValuesObservation(db, input)
		},
	}
	query := agent.FuncTool{
		ToolName: prompts.ToolQuery,
		Fn: func(input string) string {
			return QueryObservation(db, input, claimValue)
		},
	}
	return []agent.Tool{unique, query}
}

// UniqueValuesObservation renders the unique-values tool output for a
// column name, searching all tables (the first tool of Section 5.3).
func UniqueValuesObservation(db *sqldb.Database, column string) string {
	column = strings.Trim(strings.TrimSpace(column), `"'`)
	for _, t := range db.Tables() {
		vals, err := t.UniqueValues(column)
		if err != nil {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "Values in column %s:\n", column)
		for i, v := range vals {
			if i >= 50 {
				fmt.Fprintf(&b, "... (%d more)\n", len(vals)-i)
				break
			}
			b.WriteString(v.String())
			b.WriteByte('\n')
		}
		return strings.TrimRight(b.String(), "\n")
	}
	return fmt.Sprintf("Error: column %q not found in any table", column)
}

// QueryObservation implements the database-querying tool of Algorithm 8:
// execute the query on the input data and return the result together with
// feedback comparing it to the claimed value.
func QueryObservation(db *sqldb.Database, query, claimValue string) string {
	res, err := sqldb.QueryScalar(db, query)
	if err != nil {
		return "Error: " + err.Error()
	}
	return fmt.Sprintf("Result: %s\nFeedback: %s", res.String(), Feedback(res, claimValue))
}
