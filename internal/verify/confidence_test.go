package verify

import (
	"math"
	"testing"

	"repro/internal/claim"
)

// TestDisagreementScores pins the triage signal the review queue ranks by:
// a pure function of the claim's Result, so every replica scores an
// identical verdict identically.
func TestDisagreementScores(t *testing.T) {
	cases := []struct {
		name string
		r    claim.Result
		want float64
	}{
		{"transport failure is pure guesswork", claim.Result{Method: claim.MethodFailed, Attempts: 2, Failure: "timeout"}, 1},
		{"semantic exhaustion rests on the gate alone", claim.Result{Method: claim.MethodUnverified, Attempts: 3}, 0.9},
		{"second-attempt verdict splits the methods", claim.Result{Method: "oneshot-gpt4", Attempts: 2, Verified: true}, 0.5},
		{"third-attempt verdict", claim.Result{Method: "multistep-gpt4", Attempts: 3, Verified: true}, 1 - 1.0/3},
		{"first-attempt verdict is unanimous", claim.Result{Method: "oneshot-gpt3.5", Attempts: 1, Verified: true}, 0},
		{"zero-value result has nothing to review", claim.Result{}, 0},
	}
	for _, tc := range cases {
		if got := Disagreement(tc.r); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Disagreement(%+v) = %v, want %v", tc.name, tc.r, got, tc.want)
		}
	}
	// The score is bounded and monotone in attempts for verified claims:
	// more spent attempts means more implicit disagreement, approaching but
	// never reaching a failed claim's certainty of ambiguity.
	prev := -1.0
	for attempts := 1; attempts <= 64; attempts++ {
		got := Disagreement(claim.Result{Method: "oneshot-gpt4", Attempts: attempts, Verified: true})
		if got < 0 || got >= 1 {
			t.Fatalf("Disagreement at %d attempts = %v, want in [0, 1)", attempts, got)
		}
		if got <= prev && attempts > 1 {
			t.Fatalf("Disagreement not monotone: %v at %d attempts after %v", got, attempts, prev)
		}
		prev = got
	}
}
