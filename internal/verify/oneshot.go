package verify

import (
	"repro/internal/claim"
	"repro/internal/llm"
	"repro/internal/prompts"
	"repro/internal/sqldb"
)

// OneShot is the single-invocation claim-to-SQL translation method of
// Algorithm 5: build the Figure 3 prompt, invoke the model once, and
// extract the fenced SQL query from the response.
type OneShot struct {
	// Client executes completions (typically an llm.Metered wrapping a
	// simulated model).
	Client llm.Client
	// Model is the model name to invoke.
	Model string
	// Label distinguishes method instances ("oneshot-gpt-3.5").
	Label string
	// Mask controls claim-value obfuscation (Algorithm 4). Production
	// CEDAR always masks; the ablation benchmark turns it off to
	// demonstrate the Figure 2 failure mode.
	Mask bool
}

// NewOneShot constructs the method with masking enabled.
func NewOneShot(client llm.Client, model, label string) *OneShot {
	return &OneShot{Client: client, Model: model, Label: label, Mask: true}
}

// Name implements Method.
func (o *OneShot) Name() string { return o.Label }

// ModelName implements Method.
func (o *OneShot) ModelName() string { return o.Model }

// Translate implements Method.
func (o *OneShot) Translate(c *claim.Claim, db *sqldb.Database, inv Invocation) (string, error) {
	claimText, ctx := baseInputs(c, db, o.Mask)
	sampleBlock := ""
	if inv.Sample != nil {
		sampleBlock = prompts.Sample(inv.Sample.MaskedClaim, inv.Sample.Query)
	}
	prompt := prompts.OneShot(claimText, c.ValueType(), db.Schema(), sampleBlock, ctx)
	resp, err := singleTurn(o.Client, o.Model, prompt, inv)
	if err != nil {
		return "", usageError(o, err)
	}
	c.Result.Trace = resp.Content
	query, ok := prompts.ExtractSQL(resp.Content)
	if !ok {
		return "", ErrNoQuery
	}
	return query, nil
}
