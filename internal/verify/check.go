// Package verify implements CEDAR's claim verification approaches: claim
// pre-processing (Algorithm 4, via claim.Masked), the one-shot LLM
// translation method (Algorithm 5, Figure 3), the agent-based method
// (Algorithms 6–8), query plausibility checking (CorrectQuery), claim
// validation (Algorithm 3), and query reconstruction (Algorithm 9).
package verify

import (
	"errors"
	"fmt"

	"repro/internal/embed"
	"repro/internal/sqldb"
	"repro/internal/textutil"
)

// Similarity thresholds of the paper: 0.7 for query plausibility
// (moderate-to-strong alignment tolerant of abbreviations and typos), 0.8
// for claim correctness.
const (
	PlausibleSimilarity = 0.7
	CorrectSimilarity   = 0.8
)

// ErrNoQuery indicates a verification method produced no usable SQL query.
var ErrNoQuery = errors.New("verify: no SQL query produced")

// CorrectQuery implements the plausibility gate of Algorithm 2: a
// translated query is likely correct when it executes to a single cell
// whose value is in the same order of magnitude as a numeric claim value,
// or embedding-similar (>= 0.7) to a textual claim value.
func CorrectQuery(query, claimValue string, db *sqldb.Database) bool {
	res, err := sqldb.QueryScalar(db, query)
	if err != nil || res.IsNull() {
		return false
	}
	if cv, ok := textutil.ParseNumber(claimValue); ok {
		rv, ok := res.AsFloat()
		if !ok {
			return false
		}
		return textutil.SameOrderOfMagnitude(cv, rv)
	}
	return embed.Similarity(claimValue, res.Text()) >= PlausibleSimilarity
}

// CorrectClaim implements Algorithm 3: execute the query, and for numeric
// claims compare the result rounded to the claim's stated precision; for
// textual claims compare embeddings against the 0.8 threshold.
func CorrectClaim(query, claimValue string, db *sqldb.Database) (bool, error) {
	res, err := sqldb.QueryScalar(db, query)
	if err != nil {
		return false, err
	}
	if textutil.IsNumeric(claimValue) {
		rv, ok := res.AsFloat()
		if !ok {
			return false, fmt.Errorf("%w: numeric claim vs non-numeric result %q", ErrNoQuery, res.String())
		}
		return textutil.RoundMatches(claimValue, rv), nil
	}
	return embed.Similarity(claimValue, res.Text()) >= CorrectSimilarity, nil
}

// Feedback produces the comparative tool feedback of Algorithm 8: precise
// enough to guide the agent, imprecise enough that the agent cannot echo
// the claim value as a constant. Numeric feedback distinguishes correct /
// close / greater / smaller; textual feedback matched / mismatched.
func Feedback(result sqldb.Value, claimValue string) string {
	if cv, ok := textutil.ParseNumber(claimValue); ok {
		rv, ok := result.AsFloat()
		if !ok {
			return "The query returned a non-numeric value but the claim is numeric."
		}
		switch {
		case textutil.RoundMatches(claimValue, rv):
			return "Value is correct"
		case textutil.SameOrderOfMagnitude(cv, rv):
			return "The query result is close to the claimed value"
		case rv > cv:
			return "The query result is greater than the claimed value"
		default:
			return "The query result is smaller than the claimed value"
		}
	}
	if embed.Similarity(claimValue, result.Text()) >= PlausibleSimilarity {
		return "Value matched"
	}
	return "Value mismatched"
}
