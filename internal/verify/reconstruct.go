package verify

import (
	"strings"

	"repro/internal/sqldb"
	"repro/internal/textutil"
)

// Reconstruct implements Algorithm 9: given the ordered list of SQL queries
// an agent issued while verifying one claim, compose a single query by
// substituting constants in later queries with the earlier queries whose
// results produced them. The final query an agent issues often contains
// constants obtained from prior queries (e.g. `SELECT driver FROM t WHERE
// wins = 105` after `SELECT MAX(wins) FROM t` returned 105); substitution
// recovers the self-contained query `... WHERE wins = (SELECT MAX(wins)
// FROM t)` that represents the claim semantics.
func Reconstruct(queries []string, db *sqldb.Database) string {
	list := append([]string{}, queries...)
	return reconstruct(list, db)
}

func reconstruct(list []string, db *sqldb.Database) string {
	cur := list[0]
	rest := list[1:]
	if len(rest) == 0 {
		return cur
	}
	res, err := sqldb.QueryScalar(db, cur)
	if err == nil && !res.IsNull() {
		for i, query := range rest {
			rest[i] = substitute(query, cur, res)
		}
	}
	return reconstruct(rest, db)
}

// substitute replaces the constant in query that matches res with the
// sub-query cur. Numeric results replace the whitespace-delimited numeric
// term with minimal absolute distance, provided the result rounds to that
// term; string results replace the quoted literal.
func substitute(query, cur string, res sqldb.Value) string {
	if rv, ok := res.AsFloat(); ok && res.Kind() != sqldb.KindText {
		parts := strings.Fields(query)
		bestIdx := -1
		bestDist := 0.0
		for i, part := range parts {
			t := strings.TrimRight(part, ",;)")
			suffix := part[len(t):]
			tv, ok := textutil.ParseNumber(t)
			if !ok {
				continue
			}
			// Skip terms inside quoted identifiers or literals; fields
			// containing quotes are not bare constants.
			if strings.ContainsAny(part, `"'`) {
				continue
			}
			dist := abs(tv - rv)
			if bestIdx < 0 || dist < bestDist {
				bestIdx = i
				bestDist = dist
				_ = suffix
			}
		}
		if bestIdx < 0 {
			return query
		}
		t := strings.TrimRight(parts[bestIdx], ",;)")
		suffix := parts[bestIdx][len(t):]
		if !textutil.RoundMatches(t, rv) {
			return query
		}
		parts[bestIdx] = "(" + cur + ")" + suffix
		return strings.Join(parts, " ")
	}
	literal := "'" + strings.ReplaceAll(res.Text(), "'", "''") + "'"
	if strings.Contains(query, literal) {
		return strings.Replace(query, literal, "("+cur+")", 1)
	}
	return query
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
