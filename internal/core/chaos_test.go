package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/llm"
	"repro/internal/llm/resilience"
	"repro/internal/llm/sim"
	"repro/internal/metrics"
	"repro/internal/schedule"
	"repro/internal/trace"
	"repro/internal/verify"
)

// chaosKnobs configure the resilience middleware of a test stack.
type chaosKnobs struct {
	faultRate  float64
	retries    int
	hedgeAfter time.Duration
	// tracer, when non-nil, is wired through every middleware layer so chaos
	// runs produce attempt-level traces (the golden-trace determinism gate).
	tracer *trace.Tracer
}

// resilientStack builds the standard four-method stack with fault injection
// and resilient middleware, mirroring cedar.New's wiring: sim → Faulty →
// Metered → Hedged → Retrier (inner to outer). The breaker is deliberately
// absent — its shared state is order-dependent, so it gets its own tests
// instead of a seat in the determinism matrix.
func resilientStack(t testing.TB, seed int64, k chaosKnobs) ([]verify.Method, *llm.Ledger) {
	t.Helper()
	ledger := llm.NewLedger()
	res := &metrics.Resilience{}
	client := func(model string) llm.Client {
		m, err := sim.New(model, seed)
		if err != nil {
			t.Fatal(err)
		}
		var c llm.Client = m
		if k.faultRate > 0 {
			c = &resilience.Faulty{
				Client:  c,
				Plan:    resilience.Plan{Seed: llm.SplitSeed(seed, "faults", model), Rate: k.faultRate},
				Metrics: res,
				Tracer:  k.tracer,
			}
		}
		c = &llm.Metered{Client: c, Ledger: ledger, Tracer: k.tracer}
		if k.hedgeAfter > 0 {
			c = &resilience.Hedged{Client: c, After: k.hedgeAfter, Metrics: res, Tracer: k.tracer}
		}
		if k.retries > 0 {
			c = &resilience.Retrier{
				Client:      c,
				MaxAttempts: k.retries + 1,
				Seed:        llm.SplitSeed(seed, "retry", model),
				Metrics:     res,
				Tracer:      k.tracer,
			}
		}
		return c
	}
	methods := []verify.Method{
		verify.NewOneShot(client(llm.ModelGPT35), llm.ModelGPT35, "oneshot-gpt3.5"),
		verify.NewOneShot(client(llm.ModelGPT4o), llm.ModelGPT4o, "oneshot-gpt4o"),
		verify.NewAgent(client(llm.ModelGPT4o), llm.ModelGPT4o, "agent-gpt4o", seed),
		verify.NewAgent(client(llm.ModelGPT41), llm.ModelGPT41, "agent-gpt4.1", seed+1),
	}
	return methods, ledger
}

// TestChaosDeterministicAcrossWorkerCounts is the chaos matrix: fault rate ×
// worker count, asserting that (a) verdicts and ledger totals are identical
// across worker counts under injected faults, and (b) no claim is lost —
// every claim ends verified, degraded to unverified, or explicitly failed
// with a typed transport error.
func TestChaosDeterministicAcrossWorkerCounts(t *testing.T) {
	docs, err := data.AggChecker(404)
	if err != nil {
		t.Fatal(err)
	}
	profDocs, evalDocs := docs[:8], docs[8:20]
	for _, rate := range []float64{0, 0.05, 0.2, 0.5} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%v", rate), func(t *testing.T) {
			k := chaosKnobs{faultRate: rate, retries: 2}
			if rate == 0.2 {
				// One cell exercises hedging on top of faults + retries.
				k.hedgeAfter = 2 * time.Second
			}
			build := func(t testing.TB, seed int64) ([]verify.Method, *llm.Ledger) {
				return resilientStack(t, seed, k)
			}
			gen := func() []*claim.Document { return claim.CloneDocuments(evalDocs) }

			base := snapshotRunWith(t, 404, 1, gen, profDocs, build)
			if len(base.results) == 0 {
				t.Fatal("no claims processed in baseline run")
			}
			assertNoClaimLost(t, base)
			assertQualityPartition(t, base)

			got := snapshotRunWith(t, 404, 8, gen, profDocs, build)
			assertNoClaimLost(t, got)
			assertQualityPartition(t, got)
			if got.quality != base.quality {
				t.Errorf("workers=8 quality %v != workers=1 %v", got.quality, base.quality)
			}
			if got.usage != base.usage {
				t.Errorf("workers=8 token usage %+v != workers=1 %+v", got.usage, base.usage)
			}
			if got.dollars != base.dollars {
				t.Errorf("workers=8 fees $%v != workers=1 $%v", got.dollars, base.dollars)
			}
			if got.calls != base.calls {
				t.Errorf("workers=8 calls %d != workers=1 %d", got.calls, base.calls)
			}
			if len(got.results) != len(base.results) {
				t.Fatalf("workers=8 produced %d results, workers=1 %d", len(got.results), len(base.results))
			}
			for i := range base.results {
				if got.results[i] != base.results[i] {
					t.Errorf("workers=8 claim %d result differs:\n got %+v\nwant %+v",
						i, got.results[i], base.results[i])
				}
			}
		})
	}
}

// assertNoClaimLost checks the accounting invariant of the failure model:
// every claim lands in exactly one terminal bucket.
func assertNoClaimLost(t *testing.T, snap runSnapshot) {
	t.Helper()
	for i, r := range snap.results {
		switch {
		case r.Verified:
			if r.Method == "" || r.Method == claim.MethodUnverified || r.Method == claim.MethodFailed {
				t.Errorf("claim %d verified but method is %q", i, r.Method)
			}
		case r.Method == claim.MethodFailed:
			if r.Failure == "" {
				t.Errorf("claim %d marked failed without a typed transport error", i)
			}
		case r.Method == claim.MethodUnverified:
			if r.Failure != "" {
				t.Errorf("claim %d unverified but carries transport failure %q (should be labeled failed)", i, r.Failure)
			}
		default:
			t.Errorf("claim %d lost: not verified, not unverified, not failed (method %q)", i, r.Method)
		}
		if r.Attempts == 0 {
			t.Errorf("claim %d was never attempted", i)
		}
	}
}

// assertQualityPartition checks the scoring invariant of the Failed bugfix:
// quality is computed over non-failed claims only, the confusion counts plus
// Failed partition the corpus exactly, and Failed agrees with the per-claim
// terminal labels.
func assertQualityPartition(t *testing.T, snap runSnapshot) {
	t.Helper()
	q := snap.quality
	if got, want := q.TP+q.FP+q.FN+q.TN+q.Failed, len(snap.results); got != want {
		t.Errorf("confusion counts + failed = %d, want %d claims (%+v)", got, want, q)
	}
	failed := 0
	for _, r := range snap.results {
		if r.Method == claim.MethodFailed {
			failed++
		}
	}
	if q.Failed != failed {
		t.Errorf("Quality.Failed = %d, but %d claims carry method %q", q.Failed, failed, claim.MethodFailed)
	}
}

// TestQualityPartitionProperty is the fault-rate sweep of the scoring fix:
// at every fault rate the confusion counts plus Failed sum to the corpus
// size, and at rate 0 (no transport loss) the quality equals the plain
// un-faulted stack's — the resilience middleware and the Failed accounting
// must not perturb clean-run numbers.
func TestQualityPartitionProperty(t *testing.T) {
	docs, err := data.AggChecker(404)
	if err != nil {
		t.Fatal(err)
	}
	profDocs, evalDocs := docs[:8], docs[8:20]
	gen := func() []*claim.Document { return claim.CloneDocuments(evalDocs) }

	plain := snapshotRun(t, 404, 1, gen, profDocs)
	for _, rate := range []float64{0, 0.1, 0.35, 0.6, 0.9} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%v", rate), func(t *testing.T) {
			build := func(t testing.TB, seed int64) ([]verify.Method, *llm.Ledger) {
				return resilientStack(t, seed, chaosKnobs{faultRate: rate, retries: 1})
			}
			snap := snapshotRunWith(t, 404, 4, gen, profDocs, build)
			assertQualityPartition(t, snap)
			if rate == 0 {
				if snap.quality.Failed != 0 {
					t.Errorf("rate 0 produced %d failed claims", snap.quality.Failed)
				}
				if snap.quality != plain.quality {
					t.Errorf("rate 0 quality %v != plain stack %v", snap.quality, plain.quality)
				}
			}
		})
	}
}

// TestBreakerDegradesToNextMethod pins the degradation path of the
// acceptance criteria: with the cheapest method's model 100% faulty behind a
// breaker, the breaker trips open, its claims shed at zero cost, and the
// scheduler's next methods still verify the document — the breaker converts
// "this model is down" into "use the next-cheapest method", never into an
// aborted document.
func TestBreakerDegradesToNextMethod(t *testing.T) {
	docs, err := data.AggChecker(999)
	if err != nil {
		t.Fatal(err)
	}
	evalDocs := claim.CloneDocuments(docs[8:14])

	seed := int64(999)
	ledger := llm.NewLedger()
	res := &metrics.Resilience{}
	sim35, err := sim.New(llm.ModelGPT35, seed)
	if err != nil {
		t.Fatal(err)
	}
	// gpt3.5 always fails with a retryable transient error; threshold 3
	// trips the breaker early in the run.
	broken := &resilience.Breaker{
		Client: &llm.Metered{
			Client: &resilience.Faulty{
				Client:  sim35,
				Plan:    resilience.Plan{Seed: 1, Rate: 1, Transient: 1},
				Metrics: res,
			},
			Ledger: ledger,
		},
		FailureThreshold: 3,
		Metrics:          res,
	}
	healthy := func(model string) llm.Client {
		m, err := sim.New(model, seed)
		if err != nil {
			t.Fatal(err)
		}
		return &llm.Metered{Client: m, Ledger: ledger}
	}
	methods := []verify.Method{
		verify.NewOneShot(broken, llm.ModelGPT35, "oneshot-gpt3.5"),
		verify.NewOneShot(healthy(llm.ModelGPT4o), llm.ModelGPT4o, "oneshot-gpt4o"),
		verify.NewAgent(healthy(llm.ModelGPT41), llm.ModelGPT41, "agent-gpt4.1", seed+1),
	}
	// Force a schedule that leads with the dead method so degradation is
	// actually exercised (a profiled schedule would simply skip it).
	plan := &schedule.Schedule{Steps: []schedule.Step{
		{Method: "oneshot-gpt3.5", Tries: 2},
		{Method: "oneshot-gpt4o", Tries: 2},
		{Method: "agent-gpt4.1", Tries: 2},
	}}
	p, err := NewWithSchedule(Config{Methods: methods, Seed: seed, Workers: 1}, plan)
	if err != nil {
		t.Fatal(err)
	}
	p.VerifyDocuments(evalDocs)

	verified, byDead := 0, 0
	for _, d := range evalDocs {
		for _, c := range d.Claims {
			if c.Result.Method == "oneshot-gpt3.5" {
				byDead++
			}
			if c.Result.Verified {
				verified++
			}
		}
	}
	if byDead != 0 {
		t.Errorf("%d claims credited to the dead method", byDead)
	}
	if verified == 0 {
		t.Fatal("no claim verified: breaker-open did not degrade to the next method")
	}
	if got := broken.State(); got != resilience.Open {
		t.Errorf("breaker state = %v, want open", got)
	}
	snap := res.Snapshot()
	if snap.BreakerTrips == 0 {
		t.Error("breaker never tripped despite a 100% faulty model")
	}
	if snap.BreakerSheds == 0 {
		t.Error("breaker never shed a call while open")
	}
	// Shed calls must be free: the dead model's ledger entries may contain
	// only the pre-trip failed attempts, each billing tokens, never a shed.
	for _, e := range ledger.Entries() {
		if e.Model == llm.ModelGPT35 && e.Calls > int(snap.Transient) {
			t.Errorf("gpt3.5 booked %d calls but only %d reached the provider", e.Calls, snap.Transient)
		}
	}
}
