package core

import (
	"testing"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/schedule"
	"repro/internal/verify"
)

// stack builds the standard four-method CEDAR stack of Section 7.1 —
// one-shot with GPT-3.5 and GPT-4o, agents with GPT-4o and GPT-4.1 — over
// fresh sim models metered into one ledger.
func stack(t testing.TB, seed int64) ([]verify.Method, *llm.Ledger) {
	t.Helper()
	ledger := llm.NewLedger()
	client := func(model string) llm.Client {
		m, err := sim.New(model, seed)
		if err != nil {
			t.Fatal(err)
		}
		return &llm.Metered{Client: m, Ledger: ledger}
	}
	methods := []verify.Method{
		verify.NewOneShot(client(llm.ModelGPT35), llm.ModelGPT35, "oneshot-gpt3.5"),
		verify.NewOneShot(client(llm.ModelGPT4o), llm.ModelGPT4o, "oneshot-gpt4o"),
		verify.NewAgent(client(llm.ModelGPT4o), llm.ModelGPT4o, "agent-gpt4o", seed),
		verify.NewAgent(client(llm.ModelGPT41), llm.ModelGPT41, "agent-gpt4.1", seed+1),
	}
	return methods, ledger
}

func TestPipelineEndToEnd(t *testing.T) {
	docs, err := data.AggChecker(101)
	if err != nil {
		t.Fatal(err)
	}
	profDocs := docs[:8]
	evalDocs := docs[8:28]

	methods, ledger := stack(t, 101)
	stats, err := profile.Run(methods, profDocs, ledger, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		t.Logf("profiled %-16s acc=%.2f cost=$%.5f wall=%v", s.Name, s.Accuracy, s.Cost, s.Wall)
		if s.Accuracy <= 0.2 || s.Accuracy > 1 {
			t.Errorf("%s accuracy %.2f implausible", s.Name, s.Accuracy)
		}
	}
	// Cost ordering must hold: one-shot gpt3.5 cheapest, agents dearest.
	byName := map[string]schedule.MethodStats{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	if byName["oneshot-gpt3.5"].Cost >= byName["oneshot-gpt4o"].Cost {
		t.Error("gpt3.5 one-shot should be cheaper than gpt4o one-shot")
	}
	if byName["oneshot-gpt4o"].Cost >= byName["agent-gpt4o"].Cost {
		t.Error("one-shot should be cheaper than agent on the same model")
	}

	p, err := New(Config{Methods: methods, Stats: stats, AccuracyTarget: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("schedule: %v", p.Schedule())
	if p.Schedule().Accuracy < 0.99 {
		t.Errorf("planned accuracy %.3f below target", p.Schedule().Accuracy)
	}

	ledger.Reset()
	p.VerifyDocuments(evalDocs)
	q := metrics.Evaluate(evalDocs)
	t.Logf("CEDAR on %d claims: %v, cost $%.3f", claim.TotalClaims(evalDocs), q, ledger.TotalDollars())
	if q.F1 < 0.4 {
		t.Errorf("CEDAR F1 %.2f too low", q.F1)
	}
	verified := 0
	for _, d := range evalDocs {
		for _, c := range d.Claims {
			if c.Result.Verified {
				verified++
				if c.Result.Query == "" || c.Result.Method == "" {
					t.Errorf("claim %s verified without query/method", c.ID)
				}
			}
		}
	}
	if float64(verified) < 0.8*float64(claim.TotalClaims(evalDocs)) {
		t.Errorf("only %d/%d claims verified at 99%% target", verified, claim.TotalClaims(evalDocs))
	}
}

func TestAccuracyTargetTradesCost(t *testing.T) {
	docs, err := data.AggChecker(202)
	if err != nil {
		t.Fatal(err)
	}
	profDocs := docs[:8]
	methods, ledger := stack(t, 202)
	stats, err := profile.Run(methods, profDocs, ledger, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	costs := map[float64]float64{}
	f1s := map[float64]float64{}
	for _, target := range []float64{0.6, 0.99} {
		evalDocs, err := data.AggChecker(203) // fresh identical corpus per run
		if err != nil {
			t.Fatal(err)
		}
		evalDocs = evalDocs[:16]
		p, err := New(Config{Methods: methods, Stats: stats, AccuracyTarget: target})
		if err != nil {
			t.Fatal(err)
		}
		ledger.Reset()
		p.VerifyDocuments(evalDocs)
		costs[target] = ledger.TotalDollars()
		f1s[target] = metrics.Evaluate(evalDocs).F1
		t.Logf("target %.2f: schedule %v -> F1 %.2f, cost $%.3f", target, p.Schedule(), f1s[target], costs[target])
	}
	if costs[0.6] >= costs[0.99] {
		t.Errorf("lower accuracy target must cost less: $%.4f vs $%.4f", costs[0.6], costs[0.99])
	}
}

func TestMultiStageCheaperThanBestSingleStage(t *testing.T) {
	// The headline claim: multi-stage verification approaches the F1 of
	// the strongest single-stage method at a fraction of its cost.
	methods, ledger := stack(t, 303)
	profDocs, err := data.AggChecker(303)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := profile.Run(methods, profDocs[:8], ledger, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}

	run := func(p *Pipeline) (metrics.Quality, float64) {
		// Full 392-claim corpus: per-seed variance on small subsets can
		// flip the F1 comparison by several points.
		evalDocs, err := data.AggChecker(304)
		if err != nil {
			t.Fatal(err)
		}
		ledger.Reset()
		p.VerifyDocuments(evalDocs)
		return metrics.Evaluate(evalDocs), ledger.TotalDollars()
	}

	multi, err := New(Config{Methods: methods, Stats: stats, AccuracyTarget: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	qMulti, costMulti := run(multi)

	single, err := NewWithSchedule(
		Config{Methods: methods, Stats: stats},
		SingleStageSchedule("agent-gpt4.1", 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	qSingle, costSingle := run(single)

	t.Logf("multi-stage: %v $%.3f | single agent-4.1: %v $%.3f", qMulti, costMulti, qSingle, costSingle)
	if costMulti >= costSingle {
		t.Errorf("multi-stage ($%.3f) should cost less than all-agent single stage ($%.3f)", costMulti, costSingle)
	}
	if costMulti > costSingle/3 {
		t.Errorf("multi-stage should cost a small fraction of all-agent: $%.3f vs $%.3f", costMulti, costSingle)
	}
	// Documented deviation (DESIGN.md §6): our multi-stage trails the best
	// single-stage agent by a handful of F1 points while costing a small
	// fraction; it must never collapse.
	if qMulti.F1 < qSingle.F1-0.15 {
		t.Errorf("multi-stage F1 %.2f collapses vs single-stage %.2f", qMulti.F1, qSingle.F1)
	}
}

func TestUnverifiableClaimsDefaultCorrect(t *testing.T) {
	docs, err := data.AggChecker(404)
	if err != nil {
		t.Fatal(err)
	}
	d := docs[0]
	methods, _ := stack(t, 404)
	// A schedule with zero tries everywhere verifies nothing.
	p, err := NewWithSchedule(Config{Methods: methods}, &schedule.Schedule{
		Steps: []schedule.Step{{Method: "oneshot-gpt3.5", Tries: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.VerifyDocument(d)
	for _, c := range d.Claims {
		if c.Result.Verified {
			t.Errorf("claim %s verified by empty schedule", c.ID)
		}
		if !c.Result.Correct {
			t.Errorf("unverifiable claim %s not defaulted to correct", c.ID)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("expected error with no methods")
	}
	methods, _ := stack(t, 1)
	_, err := NewWithSchedule(Config{Methods: methods}, &schedule.Schedule{
		Steps: []schedule.Step{{Method: "nope", Tries: 1}},
	})
	if err == nil {
		t.Error("expected unknown-method error")
	}
}

func TestMetricsEvaluate(t *testing.T) {
	mk := func(goldCorrect, verified, resultCorrect bool) *claim.Claim {
		return &claim.Claim{
			Gold:   claim.Gold{Correct: goldCorrect},
			Result: claim.Result{Verified: verified, Correct: resultCorrect},
		}
	}
	docs := []*claim.Document{{Claims: []*claim.Claim{
		mk(false, true, false), // TP: incorrect, flagged
		mk(true, true, false),  // FP: correct, flagged
		mk(false, false, true), // FN: incorrect, unverified -> default correct
		mk(true, true, true),   // TN
		mk(false, true, false), // TP
	}}}
	q := metrics.Evaluate(docs)
	if q.TP != 2 || q.FP != 1 || q.FN != 1 || q.TN != 1 {
		t.Fatalf("confusion = %+v", q)
	}
	if q.Precision != 2.0/3 || q.Recall != 2.0/3 {
		t.Errorf("p/r = %v/%v", q.Precision, q.Recall)
	}
}

func TestDefaultRetryTemperature(t *testing.T) {
	if DefaultRetryTemperature("oneshot-gpt3.5", 0) != 0 {
		t.Error("first try must be temperature 0")
	}
	if DefaultRetryTemperature("oneshot-gpt3.5", 1) != 0.25 {
		t.Error("one-shot retry must be 0.25")
	}
	if DefaultRetryTemperature("agent-gpt4o", 1) != 0.5 {
		t.Error("agent retry must be 0.5")
	}
}

func TestCostBudgetPlanning(t *testing.T) {
	methods, ledger := stack(t, 505)
	profDocs, err := data.AggChecker(505)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := profile.Run(methods, profDocs[:8], ledger, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A generous budget buys at least the accuracy of a tight one.
	tight, err := New(Config{Methods: methods, Stats: stats, CostBudget: 0.0003})
	if err != nil {
		t.Fatal(err)
	}
	rich, err := New(Config{Methods: methods, Stats: stats, CostBudget: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tight: %v\nrich:  %v", tight.Schedule(), rich.Schedule())
	if tight.Schedule().Cost > 0.0003 {
		t.Errorf("tight budget exceeded: %v", tight.Schedule().Cost)
	}
	if rich.Schedule().Accuracy < tight.Schedule().Accuracy {
		t.Errorf("rich budget bought less accuracy: %v vs %v",
			rich.Schedule().Accuracy, tight.Schedule().Accuracy)
	}
}

func TestVerifyDocumentsParallel(t *testing.T) {
	methods, ledger := stack(t, 606)
	profDocs, err := data.AggChecker(606)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := profile.Run(methods, profDocs[:8], ledger, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Methods: methods, Stats: stats, AccuracyTarget: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential and parallel runs on identical corpora must produce the
	// same verdicts at temperature 0 schedules (first tries); stochastic
	// retries may differ, so compare aggregate quality within tolerance
	// and every claim must be annotated.
	seqDocs, err := data.AggChecker(607)
	if err != nil {
		t.Fatal(err)
	}
	parDocs, err := data.AggChecker(607)
	if err != nil {
		t.Fatal(err)
	}
	ledger.Reset()
	p.VerifyDocuments(seqDocs)
	seqQ := metrics.Evaluate(seqDocs)
	ledger.Reset()
	p.VerifyDocumentsParallel(parDocs, 8)
	parQ := metrics.Evaluate(parDocs)
	t.Logf("sequential %v | parallel %v", seqQ, parQ)
	for _, d := range parDocs {
		for _, c := range d.Claims {
			if c.Result.Method == "" {
				t.Fatalf("claim %s not annotated in parallel run", c.ID)
			}
		}
	}
	if diff := parQ.F1 - seqQ.F1; diff > 0.08 || diff < -0.08 {
		t.Errorf("parallel quality diverges: %.3f vs %.3f", parQ.F1, seqQ.F1)
	}
	// Degenerate worker counts fall back safely.
	p.VerifyDocumentsParallel(parDocs[:1], 8)
	p.VerifyDocumentsParallel(parDocs, 1)
}

// TestPipelineInvariants property-checks the pipeline over random corpora:
// gold fields are never mutated, every claim receives exactly one verdict
// with a method label, and verified claims always carry an executable
// query.
func TestPipelineInvariants(t *testing.T) {
	for seed := int64(900); seed < 905; seed++ {
		docs, err := data.Generate(data.GenConfig{
			Seed: seed, Docs: 6, ClaimsPerDoc: 5,
			IncorrectRate: 0.3, AliasRate: 0.5, ShortPhraseRate: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		golds := map[string]claim.Gold{}
		for _, d := range docs {
			for _, c := range d.Claims {
				golds[c.ID] = c.Gold
			}
		}
		methods, ledger := stack(t, seed)
		stats, err := profile.Run(methods, docs[:2], ledger, profile.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{Methods: methods, Stats: stats, AccuracyTarget: 0.95})
		if err != nil {
			t.Fatal(err)
		}
		p.VerifyDocuments(docs)
		for _, d := range docs {
			for _, c := range d.Claims {
				if c.Gold != golds[c.ID] {
					t.Fatalf("seed %d: gold mutated for %s", seed, c.ID)
				}
				if c.Result.Method == "" {
					t.Fatalf("seed %d: claim %s without method label", seed, c.ID)
				}
				if c.Result.Verified && c.Result.Query == "" {
					t.Fatalf("seed %d: verified claim %s without query", seed, c.ID)
				}
				if c.Result.Verified && !c.Result.Executable {
					t.Fatalf("seed %d: verified claim %s not marked executable", seed, c.ID)
				}
				if !c.Result.Verified && !c.Result.Executable && !c.Result.Correct {
					t.Fatalf("seed %d: unverifiable claim %s not defaulted correct", seed, c.ID)
				}
			}
		}
	}
}
