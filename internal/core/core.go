// Package core implements CEDAR's multi-stage claim verification
// (Algorithms 1 and 2): plan an optimal verification schedule from
// profiling statistics and a user accuracy constraint, then run the
// scheduled methods over each document's claims — cheap methods first,
// harvesting few-shot samples from early successes, escalating to expensive
// methods only for claims the cheap ones could not verify.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/claim"
	"repro/internal/llm"
	"repro/internal/schedule"
	"repro/internal/sqldb"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Config assembles a verification pipeline.
type Config struct {
	// Methods are the available verification approaches.
	Methods []verify.Method
	// Stats are the profiling records aligned with Methods by name.
	Stats []schedule.MethodStats
	// AccuracyTarget is the user's accuracy constraint in (0, 1]; the
	// scheduler minimizes cost subject to it (Section 3).
	AccuracyTarget float64
	// CostBudget, when positive, switches planning to the inverse knob:
	// maximize modeled accuracy subject to an expected per-claim dollar
	// budget (an extension beyond the paper, which only takes accuracy
	// targets). When set, AccuracyTarget is ignored.
	CostBudget float64
	// MaxTries bounds retries per method in the schedule (default 2).
	MaxTries int
	// RetryTemperature returns the model temperature for the i-th try of
	// a method. The default follows Section 7.1: temperature 0 for the
	// first invocation, then 0.25 for one-shot methods and 0.5 for agent
	// methods.
	RetryTemperature func(methodName string, try int) float64
	// Seed is the base of the splittable seeding scheme: every model
	// invocation gets llm.SplitSeed(Seed, docID, claimIndex, method, try),
	// so temperature > 0 retries are reproducible per attempt identity and
	// results are bit-identical for any worker count.
	Seed int64
	// Workers bounds the number of concurrent claim verifications across
	// the pipeline (shared by all documents in flight). Values < 2 keep
	// every pass sequential. Parallelism never changes results — only
	// wall-clock time.
	Workers int
	// Tracer, when enabled, receives attempt identities and outcome spans:
	// the pipeline stamps every verify.Invocation with its
	// (doc, claim, method, try) key so middleware spans attribute correctly.
	// Nil disables tracing at zero cost.
	Tracer *trace.Tracer
}

// DefaultRetryTemperature is the Section 7.1 temperature ladder.
func DefaultRetryTemperature(methodName string, try int) float64 {
	if try == 0 {
		return 0
	}
	if strings.Contains(methodName, "agent") {
		return 0.5
	}
	return 0.25
}

// Pipeline is a planned multi-stage verifier.
type Pipeline struct {
	cfg      Config
	plan     *schedule.Schedule
	byName   map[string]verify.Method
	tempFunc func(string, int) float64
	// sem bounds in-flight claim attempts across all documents when
	// cfg.Workers > 1; nil means fully sequential passes.
	sem chan struct{}
}

// ErrUnknownMethod indicates the schedule references a method not in the
// config.
var ErrUnknownMethod = errors.New("core: schedule references unknown method")

// New plans the verification schedule (Algorithm 1 line 5) and returns the
// pipeline.
func New(cfg Config) (*Pipeline, error) {
	if len(cfg.Methods) == 0 {
		return nil, fmt.Errorf("core: no verification methods configured")
	}
	maxTries := cfg.MaxTries
	if maxTries <= 0 {
		maxTries = 2
	}
	var plan *schedule.Schedule
	var err error
	if cfg.CostBudget > 0 {
		plan, err = schedule.PlanBudget(cfg.Stats, maxTries, cfg.CostBudget)
	} else {
		plan, err = schedule.Plan(cfg.Stats, maxTries, cfg.AccuracyTarget)
	}
	if err != nil {
		return nil, fmt.Errorf("core: planning schedule: %w", err)
	}
	return newWithSchedule(cfg, plan)
}

// NewWithSchedule builds a pipeline around a fixed schedule, used by the
// distribution-shift experiment (Figure 7) to apply one document's schedule
// to another domain, and by single-stage baselines.
func NewWithSchedule(cfg Config, plan *schedule.Schedule) (*Pipeline, error) {
	if len(cfg.Methods) == 0 {
		return nil, fmt.Errorf("core: no verification methods configured")
	}
	return newWithSchedule(cfg, plan)
}

func newWithSchedule(cfg Config, plan *schedule.Schedule) (*Pipeline, error) {
	p := &Pipeline{
		cfg:      cfg,
		plan:     plan,
		byName:   make(map[string]verify.Method, len(cfg.Methods)),
		tempFunc: cfg.RetryTemperature,
	}
	if p.tempFunc == nil {
		p.tempFunc = DefaultRetryTemperature
	}
	if cfg.Workers > 1 {
		p.sem = make(chan struct{}, cfg.Workers)
	}
	for _, m := range cfg.Methods {
		p.byName[m.Name()] = m
	}
	for _, st := range plan.Steps {
		if st.Tries > 0 {
			if _, ok := p.byName[st.Method]; !ok {
				return nil, fmt.Errorf("%w: %q", ErrUnknownMethod, st.Method)
			}
		}
	}
	return p, nil
}

// Schedule returns the planned verification schedule.
func (p *Pipeline) Schedule() *schedule.Schedule { return p.plan }

// VerifyDocuments implements Algorithm 1 over a document collection. Claims
// are annotated in place.
func (p *Pipeline) VerifyDocuments(docs []*claim.Document) {
	for _, d := range docs {
		p.VerifyDocument(d)
	}
}

// VerifyDocumentsParallel verifies documents concurrently with the given
// number of workers. Documents are independent in Algorithm 1 (schedules,
// few-shot samples, and databases are all per-document) and every claim
// attempt owns a seed split from its identity, so parallelism — across
// documents here and across claims inside VerifyDocument — changes
// throughput but never results; the underlying ledger is safe for
// concurrent metering. workers < 2 falls back to the sequential path.
func (p *Pipeline) VerifyDocumentsParallel(docs []*claim.Document, workers int) {
	if workers < 2 || len(docs) < 2 {
		p.VerifyDocuments(docs)
		return
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	work := make(chan *claim.Document)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range work {
				p.VerifyDocument(d)
			}
		}()
	}
	for _, d := range docs {
		work <- d
	}
	close(work)
	wg.Wait()
}

// VerifyDocument runs the scheduled stages over one document's claims.
//
// Within each (step, try) the few-shot harvest keeps Algorithm 1's
// sequential semantics — claims are attempted in order until the first
// success, which seeds the later claims of that step — while the subsequent
// with-sample sweep fans out over the worker pool. Because every attempt's
// randomness is split from (document, claim index, method, try), the fan-out
// reorders only execution, never outcomes: any Workers value produces the
// same Results, byte for byte.
func (p *Pipeline) VerifyDocument(d *claim.Document) {
	// Claim indices are positions in the document, stable across passes, so
	// an attempt's seed does not depend on which claims earlier steps
	// already verified.
	index := make(map[*claim.Claim]int, len(d.Claims))
	for i, c := range d.Claims {
		index[c] = i
	}
	remaining := append([]*claim.Claim{}, d.Claims...)
	for _, step := range p.plan.Steps {
		if step.Tries == 0 || len(remaining) == 0 {
			continue
		}
		m := p.byName[step.Method]
		// Samples are document- and approach-specific (Section 4): reset
		// per step, harvested from the step's first success.
		var sample *verify.Sample
		for try := 0; try < step.Tries && len(remaining) > 0; try++ {
			temp := p.tempFunc(step.Method, try)
			// invFor binds an attempt's full identity: the seed split from
			// (doc, claim index, method, try) and the matching trace key, so
			// the span stream lines up one-to-one with seeded invocations.
			invFor := func(c *claim.Claim) verify.Invocation {
				return verify.Invocation{
					Temperature: temp,
					Seed: llm.SplitSeed(p.cfg.Seed,
						d.ID, strconv.Itoa(index[c]), step.Method, strconv.Itoa(try)),
					Attempt: trace.Key{Doc: d.ID, Claim: index[c], Method: step.Method, Try: try},
					Tracer:  p.cfg.Tracer,
				}
			}
			if sample == nil {
				s := p.harvestPass(m, remaining, d.Data, invFor)
				remaining = removeAll(remaining, s)
				if len(s) > 0 {
					sample = verify.MakeSample(s[0])
				}
			}
			if sample != nil && len(remaining) > 0 {
				s := p.samplePass(m, remaining, sample, d.Data, invFor)
				remaining = removeAll(remaining, s)
			}
		}
	}
	// Section 4's defaults for claims no approach could verify: if some
	// attempted translation was executable but never matched the claimed
	// value, the claim is marked incorrect; claims for which no executable
	// query was ever generated are assumed unverifiable from the data and
	// marked correct.
	for _, c := range remaining {
		c.Result.Verified = false
		c.Result.Correct = !c.Result.Executable
		if c.Result.Method == "" {
			// A recorded transport-failure class means the provider, not the
			// translation, is why the claim went unverified: label it
			// "failed" so operators can separate degraded claims from
			// genuinely unverifiable ones.
			if c.Result.Failure != "" {
				c.Result.Method = claim.MethodFailed
			} else {
				c.Result.Method = claim.MethodUnverified
			}
		}
	}
}

// harvestPass implements Algorithm 2's no-sample mode: attempt claims in
// order and return the first success, which the caller harvests as the
// step's few-shot sample. The scan is inherently sequential (later claims
// are only attempted when earlier ones failed), so it runs on the calling
// goroutine; each attempt still holds a worker slot to keep the global
// attempt bound when many documents are in flight.
func (p *Pipeline) harvestPass(m verify.Method, claims []*claim.Claim, db *sqldb.Database, invFor func(*claim.Claim) verify.Invocation) []*claim.Claim {
	for _, c := range claims {
		p.acquire()
		ok := verify.AttemptWith(m, c, db, invFor(c))
		p.release()
		if ok {
			return []*claim.Claim{c}
		}
	}
	return nil
}

// samplePass implements Algorithm 2's with-sample mode: verify every claim
// and return all successes. Attempts are mutually independent — each owns
// its claim, its seed, and a read-only view of the database — so they fan
// out over the worker pool; successes are collected in claim order, keeping
// the result identical to a sequential sweep.
func (p *Pipeline) samplePass(m verify.Method, claims []*claim.Claim, sample *verify.Sample, db *sqldb.Database, invFor func(*claim.Claim) verify.Invocation) []*claim.Claim {
	attempt := func(c *claim.Claim) bool {
		inv := invFor(c)
		inv.Sample = sample
		return verify.AttemptWith(m, c, db, inv)
	}
	var verified []*claim.Claim
	if p.sem == nil || len(claims) < 2 {
		for _, c := range claims {
			if attempt(c) {
				verified = append(verified, c)
			}
		}
		return verified
	}
	ok := make([]bool, len(claims))
	var wg sync.WaitGroup
	for i, c := range claims {
		wg.Add(1)
		go func(i int, c *claim.Claim) {
			defer wg.Done()
			p.acquire()
			defer p.release()
			ok[i] = attempt(c)
		}(i, c)
	}
	wg.Wait()
	for i, c := range claims {
		if ok[i] {
			verified = append(verified, c)
		}
	}
	return verified
}

// acquire takes a worker slot when the pool is bounded; release returns it.
func (p *Pipeline) acquire() {
	if p.sem != nil {
		p.sem <- struct{}{}
	}
}

func (p *Pipeline) release() {
	if p.sem != nil {
		<-p.sem
	}
}

func removeAll(claims, drop []*claim.Claim) []*claim.Claim {
	if len(drop) == 0 {
		return claims
	}
	dropSet := make(map[*claim.Claim]bool, len(drop))
	for _, c := range drop {
		dropSet[c] = true
	}
	out := claims[:0]
	for _, c := range claims {
		if !dropSet[c] {
			out = append(out, c)
		}
	}
	return out
}

// SingleStageSchedule builds a schedule applying one method with the given
// tries — the single-stage baselines of Figure 5.
func SingleStageSchedule(method string, tries int) *schedule.Schedule {
	return &schedule.Schedule{Steps: []schedule.Step{{Method: method, Tries: tries}}}
}
