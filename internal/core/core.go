// Package core implements CEDAR's multi-stage claim verification
// (Algorithms 1 and 2): plan an optimal verification schedule from
// profiling statistics and a user accuracy constraint, then run the
// scheduled methods over each document's claims — cheap methods first,
// harvesting few-shot samples from early successes, escalating to expensive
// methods only for claims the cheap ones could not verify.
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/claim"
	"repro/internal/schedule"
	"repro/internal/sqldb"
	"repro/internal/verify"
)

// Config assembles a verification pipeline.
type Config struct {
	// Methods are the available verification approaches.
	Methods []verify.Method
	// Stats are the profiling records aligned with Methods by name.
	Stats []schedule.MethodStats
	// AccuracyTarget is the user's accuracy constraint in (0, 1]; the
	// scheduler minimizes cost subject to it (Section 3).
	AccuracyTarget float64
	// CostBudget, when positive, switches planning to the inverse knob:
	// maximize modeled accuracy subject to an expected per-claim dollar
	// budget (an extension beyond the paper, which only takes accuracy
	// targets). When set, AccuracyTarget is ignored.
	CostBudget float64
	// MaxTries bounds retries per method in the schedule (default 2).
	MaxTries int
	// RetryTemperature returns the model temperature for the i-th try of
	// a method. The default follows Section 7.1: temperature 0 for the
	// first invocation, then 0.25 for one-shot methods and 0.5 for agent
	// methods.
	RetryTemperature func(methodName string, try int) float64
}

// DefaultRetryTemperature is the Section 7.1 temperature ladder.
func DefaultRetryTemperature(methodName string, try int) float64 {
	if try == 0 {
		return 0
	}
	if strings.Contains(methodName, "agent") {
		return 0.5
	}
	return 0.25
}

// Pipeline is a planned multi-stage verifier.
type Pipeline struct {
	cfg      Config
	plan     *schedule.Schedule
	byName   map[string]verify.Method
	tempFunc func(string, int) float64
}

// ErrUnknownMethod indicates the schedule references a method not in the
// config.
var ErrUnknownMethod = errors.New("core: schedule references unknown method")

// New plans the verification schedule (Algorithm 1 line 5) and returns the
// pipeline.
func New(cfg Config) (*Pipeline, error) {
	if len(cfg.Methods) == 0 {
		return nil, fmt.Errorf("core: no verification methods configured")
	}
	maxTries := cfg.MaxTries
	if maxTries <= 0 {
		maxTries = 2
	}
	var plan *schedule.Schedule
	var err error
	if cfg.CostBudget > 0 {
		plan, err = schedule.PlanBudget(cfg.Stats, maxTries, cfg.CostBudget)
	} else {
		plan, err = schedule.Plan(cfg.Stats, maxTries, cfg.AccuracyTarget)
	}
	if err != nil {
		return nil, fmt.Errorf("core: planning schedule: %w", err)
	}
	return newWithSchedule(cfg, plan)
}

// NewWithSchedule builds a pipeline around a fixed schedule, used by the
// distribution-shift experiment (Figure 7) to apply one document's schedule
// to another domain, and by single-stage baselines.
func NewWithSchedule(cfg Config, plan *schedule.Schedule) (*Pipeline, error) {
	if len(cfg.Methods) == 0 {
		return nil, fmt.Errorf("core: no verification methods configured")
	}
	return newWithSchedule(cfg, plan)
}

func newWithSchedule(cfg Config, plan *schedule.Schedule) (*Pipeline, error) {
	p := &Pipeline{
		cfg:      cfg,
		plan:     plan,
		byName:   make(map[string]verify.Method, len(cfg.Methods)),
		tempFunc: cfg.RetryTemperature,
	}
	if p.tempFunc == nil {
		p.tempFunc = DefaultRetryTemperature
	}
	for _, m := range cfg.Methods {
		p.byName[m.Name()] = m
	}
	for _, st := range plan.Steps {
		if st.Tries > 0 {
			if _, ok := p.byName[st.Method]; !ok {
				return nil, fmt.Errorf("%w: %q", ErrUnknownMethod, st.Method)
			}
		}
	}
	return p, nil
}

// Schedule returns the planned verification schedule.
func (p *Pipeline) Schedule() *schedule.Schedule { return p.plan }

// VerifyDocuments implements Algorithm 1 over a document collection. Claims
// are annotated in place.
func (p *Pipeline) VerifyDocuments(docs []*claim.Document) {
	for _, d := range docs {
		p.VerifyDocument(d)
	}
}

// VerifyDocumentsParallel verifies documents concurrently with the given
// number of workers. Documents are independent in Algorithm 1 (schedules,
// few-shot samples, and databases are all per-document), so parallelism
// changes throughput but not results; the underlying ledger is safe for
// concurrent metering. workers < 2 falls back to the sequential path.
func (p *Pipeline) VerifyDocumentsParallel(docs []*claim.Document, workers int) {
	if workers < 2 || len(docs) < 2 {
		p.VerifyDocuments(docs)
		return
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	work := make(chan *claim.Document)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range work {
				p.VerifyDocument(d)
			}
		}()
	}
	for _, d := range docs {
		work <- d
	}
	close(work)
	wg.Wait()
}

// VerifyDocument runs the scheduled stages over one document's claims.
func (p *Pipeline) VerifyDocument(d *claim.Document) {
	remaining := append([]*claim.Claim{}, d.Claims...)
	for _, step := range p.plan.Steps {
		if step.Tries == 0 || len(remaining) == 0 {
			continue
		}
		m := p.byName[step.Method]
		// Samples are document- and approach-specific (Section 4): reset
		// per step, harvested from the step's first success.
		var sample *verify.Sample
		for try := 0; try < step.Tries && len(remaining) > 0; try++ {
			temp := p.tempFunc(step.Method, try)
			if sample == nil {
				s := verifyPass(m, remaining, nil, d.Data, temp)
				remaining = removeAll(remaining, s)
				if len(s) > 0 {
					sample = verify.MakeSample(s[0])
				}
			}
			if sample != nil && len(remaining) > 0 {
				s := verifyPass(m, remaining, sample, d.Data, temp)
				remaining = removeAll(remaining, s)
			}
		}
	}
	// Section 4's defaults for claims no approach could verify: if some
	// attempted translation was executable but never matched the claimed
	// value, the claim is marked incorrect; claims for which no executable
	// query was ever generated are assumed unverifiable from the data and
	// marked correct.
	for _, c := range remaining {
		c.Result.Verified = false
		c.Result.Correct = !c.Result.Executable
		if c.Result.Method == "" {
			c.Result.Method = "unverified"
		}
	}
}

// verifyPass implements Algorithm 2: apply one verification method to the
// claims. Without a sample it returns immediately after the first success,
// so the caller can harvest it for few-shot learning; with a sample it
// verifies all claims and returns every success.
func verifyPass(m verify.Method, claims []*claim.Claim, sample *verify.Sample, db *sqldb.Database, temperature float64) []*claim.Claim {
	var verified []*claim.Claim
	for _, c := range claims {
		if !verify.Attempt(m, c, db, sample, temperature) {
			continue
		}
		if sample == nil {
			return []*claim.Claim{c}
		}
		verified = append(verified, c)
	}
	return verified
}

func removeAll(claims, drop []*claim.Claim) []*claim.Claim {
	if len(drop) == 0 {
		return claims
	}
	dropSet := make(map[*claim.Claim]bool, len(drop))
	for _, c := range drop {
		dropSet[c] = true
	}
	out := claims[:0]
	for _, c := range claims {
		if !dropSet[c] {
			out = append(out, c)
		}
	}
	return out
}

// SingleStageSchedule builds a schedule applying one method with the given
// tries — the single-stage baselines of Figure 5.
func SingleStageSchedule(method string, tries int) *schedule.Schedule {
	return &schedule.Schedule{Steps: []schedule.Step{{Method: method, Tries: tries}}}
}
