package core

import (
	"testing"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/verify"
)

// runSnapshot captures everything a verification run produces that the
// determinism contract covers: per-claim results, aggregate quality, and the
// ledger's token and fee totals.
type runSnapshot struct {
	results []claim.Result
	quality metrics.Quality
	usage   llm.Usage
	dollars float64
	calls   int
}

// stackBuilder constructs a method stack for a snapshot run; tests swap in
// builders with fault-injecting or resilient middleware.
type stackBuilder func(t testing.TB, seed int64) ([]verify.Method, *llm.Ledger)

func snapshotRun(t *testing.T, seed int64, workers int, gen func() []*claim.Document, profDocs []*claim.Document) runSnapshot {
	t.Helper()
	return snapshotRunWith(t, seed, workers, gen, profDocs, stack)
}

func snapshotRunWith(t *testing.T, seed int64, workers int, gen func() []*claim.Document, profDocs []*claim.Document, build stackBuilder) runSnapshot {
	t.Helper()
	methods, ledger := build(t, seed)
	stats, err := profile.Run(methods, profDocs, ledger, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Methods:        methods,
		Stats:          stats,
		AccuracyTarget: 0.99,
		Seed:           seed,
		Workers:        workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := gen()
	ledger.Reset()
	p.VerifyDocumentsParallel(docs, workers)
	snap := runSnapshot{
		quality: metrics.Evaluate(docs),
		usage:   ledger.TotalUsage(),
		dollars: ledger.TotalDollars(),
		calls:   ledger.TotalCalls(),
	}
	for _, d := range docs {
		for _, c := range d.Claims {
			snap.results = append(snap.results, c.Result)
		}
	}
	return snap
}

// TestVerifyDeterministicAcrossWorkerCounts is the tentpole property: for a
// fixed seed, every worker count must produce bit-identical per-claim
// results, identical quality metrics, and identical ledger token and fee
// totals. Claim-level parallelism may only change wall-clock time.
func TestVerifyDeterministicAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		name  string
		seed  int64
		gen   func(t *testing.T) ([]*claim.Document, []*claim.Document)
		build stackBuilder // nil = the plain stack
	}{
		{
			name: "AggChecker",
			seed: 404,
			gen: func(t *testing.T) ([]*claim.Document, []*claim.Document) {
				docs, err := data.AggChecker(404)
				if err != nil {
					t.Fatal(err)
				}
				return docs[8:20], docs[:8]
			},
		},
		{
			name: "JoinBench",
			seed: 405,
			gen: func(t *testing.T) ([]*claim.Document, []*claim.Document) {
				_, normalized, err := data.JoinBench(405)
				if err != nil {
					t.Fatal(err)
				}
				profFlat, _, err := data.JoinBench(406)
				if err != nil {
					t.Fatal(err)
				}
				return normalized, profFlat[:6]
			},
		},
		{
			// PR 1's guarantee must survive the resilience middleware: a
			// nonzero fault plan plus retries still yields bit-identical
			// runs at any worker count, because faults and backoff jitter
			// derive from request identity, never from arrival order.
			name: "AggCheckerFaulted",
			seed: 404,
			gen: func(t *testing.T) ([]*claim.Document, []*claim.Document) {
				docs, err := data.AggChecker(404)
				if err != nil {
					t.Fatal(err)
				}
				return docs[8:20], docs[:8]
			},
			build: func(t testing.TB, seed int64) ([]verify.Method, *llm.Ledger) {
				return resilientStack(t, seed, chaosKnobs{faultRate: 0.2, retries: 2})
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			evalDocs, profDocs := tc.gen(t)
			gen := func() []*claim.Document { return claim.CloneDocuments(evalDocs) }
			build := tc.build
			if build == nil {
				build = stack
			}
			base := snapshotRunWith(t, tc.seed, 1, gen, profDocs, build)
			if len(base.results) == 0 {
				t.Fatal("no claims verified in baseline run")
			}
			for _, workers := range []int{2, 8} {
				got := snapshotRunWith(t, tc.seed, workers, gen, profDocs, build)
				if got.quality != base.quality {
					t.Errorf("workers=%d quality %v != sequential %v", workers, got.quality, base.quality)
				}
				if got.usage != base.usage {
					t.Errorf("workers=%d token usage %+v != sequential %+v", workers, got.usage, base.usage)
				}
				if got.dollars != base.dollars {
					t.Errorf("workers=%d fees $%v != sequential $%v", workers, got.dollars, base.dollars)
				}
				if got.calls != base.calls {
					t.Errorf("workers=%d calls %d != sequential %d", workers, got.calls, base.calls)
				}
				if len(got.results) != len(base.results) {
					t.Fatalf("workers=%d produced %d results, sequential %d", workers, len(got.results), len(base.results))
				}
				for i := range base.results {
					if got.results[i] != base.results[i] {
						t.Errorf("workers=%d claim %d result differs:\n got %+v\nwant %+v",
							workers, i, got.results[i], base.results[i])
					}
				}
			}
		})
	}
}
