package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/profile"
	"repro/internal/trace"
)

// tracedRun executes one full profiled pipeline run with attempt-level
// tracing enabled and returns the sorted JSONL trace plus the ledger's call
// count. The tracer is reset after profiling so the trace covers exactly the
// evaluation run, mirroring how cedar.Verify and exp.runPipeline scope
// traces to a single run.
func tracedRun(t *testing.T, seed int64, workers int, faultRate float64, gen func() []*claim.Document, profDocs []*claim.Document) ([]byte, *trace.Tracer, int) {
	t.Helper()
	tracer := trace.New()
	methods, ledger := resilientStack(t, seed, chaosKnobs{faultRate: faultRate, retries: 2, tracer: tracer})
	stats, err := profile.Run(methods, profDocs, ledger, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Methods:        methods,
		Stats:          stats,
		AccuracyTarget: 0.99,
		Seed:           seed,
		Workers:        workers,
		Tracer:         tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := gen()
	ledger.Reset()
	tracer.Reset()
	p.VerifyDocumentsParallel(docs, workers)
	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tracer, ledger.TotalCalls()
}

// TestGoldenTraceDeterministicAcrossWorkers is the tentpole acceptance gate:
// the sorted JSONL trace of a run must be byte-identical across worker
// counts, with and without injected faults. Spans are keyed by attempt
// identity (doc, claim, method, try) and sequenced per key, so scheduling
// order must leave no imprint on the exported stream. The stack deliberately
// excludes the breaker and the cache, whose shared state is order-dependent
// (see DESIGN.md).
func TestGoldenTraceDeterministicAcrossWorkers(t *testing.T) {
	docs, err := data.AggChecker(404)
	if err != nil {
		t.Fatal(err)
	}
	profDocs, evalDocs := docs[:8], docs[8:20]
	gen := func() []*claim.Document { return claim.CloneDocuments(evalDocs) }

	for _, rate := range []float64{0, 0.2} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%v", rate), func(t *testing.T) {
			golden, tracer, calls := tracedRun(t, 404, 1, rate, gen, profDocs)
			if len(golden) == 0 {
				t.Fatal("sequential run produced an empty trace")
			}

			// Cross-check against the ledger: every booked model call must
			// appear as exactly one attempt span (valid here because the
			// golden stack has no breaker shedding calls and no cache).
			attempts := 0
			for _, s := range tracer.Spans() {
				if s.Kind == trace.KindAttempt {
					attempts++
				}
			}
			if attempts != calls {
				t.Errorf("trace has %d attempt spans but the ledger booked %d calls", attempts, calls)
			}

			got, _, _ := tracedRun(t, 404, 8, rate, gen, profDocs)
			if !bytes.Equal(golden, got) {
				t.Errorf("workers=8 trace differs from workers=1 (%d vs %d bytes)", len(got), len(golden))
				diffTraces(t, golden, got)
			}
		})
	}
}

// diffTraces reports the first differing JSONL line to make golden-trace
// failures debuggable without dumping megabytes.
func diffTraces(t *testing.T, want, got []byte) {
	t.Helper()
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			t.Logf("first divergence at line %d:\n want %s\n  got %s", i+1, wl[i], gl[i])
			return
		}
	}
	t.Logf("traces share a %d-line prefix; lengths differ (%d vs %d lines)", n, len(wl), len(gl))
}

// TestTraceSpansAreWellFormed sanity-checks the exported stream: every line
// parses as a span, the stream is sorted by the canonical order, attempt
// spans carry models and seeds, and every traced claim reaches a terminal
// outcome span.
func TestTraceSpansAreWellFormed(t *testing.T) {
	docs, err := data.AggChecker(404)
	if err != nil {
		t.Fatal(err)
	}
	profDocs, evalDocs := docs[:8], docs[8:20]
	gen := func() []*claim.Document { return claim.CloneDocuments(evalDocs) }
	raw, tracer, _ := tracedRun(t, 404, 4, 0.2, gen, profDocs)

	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(lines) != tracer.Len() {
		t.Fatalf("JSONL has %d lines, tracer holds %d spans", len(lines), tracer.Len())
	}
	for i, line := range lines {
		var s trace.Span
		if err := json.Unmarshal(line, &s); err != nil {
			t.Fatalf("line %d is not a valid span: %v", i+1, err)
		}
	}
	spans := tracer.Spans()
	perClaim := map[string]bool{}
	for i, s := range spans {
		if i > 0 && spans[i].Less(spans[i-1]) {
			t.Errorf("spans %d and %d out of canonical order", i-1, i)
		}
		switch s.Kind {
		case trace.KindAttempt:
			if s.Model == "" {
				t.Errorf("attempt span %d has no model", i)
			}
			if s.Key.Method == "" {
				t.Errorf("attempt span %d has no attempt identity", i)
			}
		case trace.KindOutcome:
			perClaim[fmt.Sprintf("%s/%d", s.Doc, s.Claim)] = true
		}
	}
	if want := claim.TotalClaims(gen()); len(perClaim) != want {
		t.Errorf("outcome spans cover %d claims, corpus has %d", len(perClaim), want)
	}
}
