package core

import (
	"bytes"
	"testing"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/sqldb"
)

// plancache_determinism_test.go extends the determinism contract to the SQL
// plan cache. claim.CloneDocuments shares each document's *sqldb.Database,
// so every verification run after the first executes against warm plan
// caches; verdicts, ledger fees, and normalized trace bytes must not notice.

// planCacheTotals sums plan-cache counters across the distinct databases of
// a document set.
func planCacheTotals(docs []*claim.Document) sqldb.PlanCacheStats {
	var total sqldb.PlanCacheStats
	seen := map[*sqldb.Database]bool{}
	for _, d := range docs {
		if d.Data == nil || seen[d.Data] {
			continue
		}
		seen[d.Data] = true
		st := d.Data.PlanCacheStats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Entries += st.Entries
	}
	return total
}

// TestVerifyDeterministicWithWarmPlanCache runs the join-heavy JoinBench
// workload cold, then re-runs it with fully warm plan caches at worker
// counts 1 and 8. Every snapshot field — per-claim results, quality, token
// usage, fees, call count — must be bit-identical to the cold run, and the
// caches must demonstrably serve hits in the warm runs.
func TestVerifyDeterministicWithWarmPlanCache(t *testing.T) {
	_, normalized, err := data.JoinBench(405)
	if err != nil {
		t.Fatal(err)
	}
	profFlat, _, err := data.JoinBench(406)
	if err != nil {
		t.Fatal(err)
	}
	evalDocs, profDocs := normalized, profFlat[:6]
	gen := func() []*claim.Document { return claim.CloneDocuments(evalDocs) }

	// Cold caches: flush whatever document generation itself executed.
	for _, d := range evalDocs {
		if d.Data != nil {
			d.Data.InvalidatePlans()
		}
	}
	cold := snapshotRun(t, 405, 1, gen, profDocs)
	if len(cold.results) == 0 {
		t.Fatal("no claims verified in cold run")
	}
	afterCold := planCacheTotals(evalDocs)
	if afterCold.Misses == 0 {
		t.Fatal("cold run never reached the plan cache; the workload is not exercising Query")
	}

	for _, workers := range []int{1, 8} {
		before := planCacheTotals(evalDocs)
		warm := snapshotRun(t, 405, workers, gen, profDocs)
		after := planCacheTotals(evalDocs)

		if after.Hits <= before.Hits {
			t.Errorf("workers=%d warm run gained no plan-cache hits (%d -> %d)", workers, before.Hits, after.Hits)
		}
		if warm.quality != cold.quality {
			t.Errorf("workers=%d warm quality %v != cold %v", workers, warm.quality, cold.quality)
		}
		if warm.usage != cold.usage {
			t.Errorf("workers=%d warm token usage %+v != cold %+v", workers, warm.usage, cold.usage)
		}
		if warm.dollars != cold.dollars {
			t.Errorf("workers=%d warm fees $%v != cold $%v", workers, warm.dollars, cold.dollars)
		}
		if warm.calls != cold.calls {
			t.Errorf("workers=%d warm calls %d != cold %d", workers, warm.calls, cold.calls)
		}
		if len(warm.results) != len(cold.results) {
			t.Fatalf("workers=%d warm produced %d results, cold %d", workers, len(warm.results), len(cold.results))
		}
		for i := range cold.results {
			if warm.results[i] != cold.results[i] {
				t.Errorf("workers=%d claim %d verdict changed on a warm cache:\nwarm %+v\ncold %+v",
					workers, i, warm.results[i], cold.results[i])
			}
		}
	}
}

// TestGoldenTraceUnchangedByWarmPlanCache asserts the stronger trace-level
// property: the sorted JSONL trace of a verification run is byte-identical
// whether plan caches are cold or warm, at worker counts 1 and 8.
func TestGoldenTraceUnchangedByWarmPlanCache(t *testing.T) {
	docs, err := data.AggChecker(404)
	if err != nil {
		t.Fatal(err)
	}
	profDocs, evalDocs := docs[:8], docs[8:20]
	gen := func() []*claim.Document { return claim.CloneDocuments(evalDocs) }

	for _, d := range evalDocs {
		if d.Data != nil {
			d.Data.InvalidatePlans()
		}
	}
	golden, _, _ := tracedRun(t, 404, 1, 0, gen, profDocs)
	if len(golden) == 0 {
		t.Fatal("cold run produced an empty trace")
	}
	if planCacheTotals(evalDocs).Entries == 0 {
		t.Fatal("cold traced run left the plan cache empty; the workload is not exercising Query")
	}
	for _, workers := range []int{1, 8} {
		got, _, _ := tracedRun(t, 404, workers, 0, gen, profDocs)
		if !bytes.Equal(golden, got) {
			t.Errorf("workers=%d warm-cache trace differs from cold sequential trace (%d vs %d bytes)",
				workers, len(got), len(golden))
			diffTraces(t, golden, got)
		}
	}
}
