package textutil

import (
	"strings"
	"unicode"
)

// Span identifies the position of a claim value inside a claim sentence as a
// token range [Start, End] (inclusive), mirroring the paper's c.span where
// both bounds index the sentence's whitespace tokens.
type Span struct {
	Start int
	End   int
}

// Valid reports whether the span denotes a non-empty in-order token range.
func (s Span) Valid() bool { return s.Start >= 0 && s.End >= s.Start }

// Width returns the number of tokens covered by the span.
func (s Span) Width() int {
	if !s.Valid() {
		return 0
	}
	return s.End - s.Start + 1
}

// Tokenize splits a sentence into whitespace-delimited tokens. Token
// indices returned by FindValueSpan and consumed by MaskSpan refer to this
// tokenization.
func Tokenize(s string) []string { return strings.Fields(s) }

// MaskSpan replaces the tokens covered by span with the single obfuscation
// token "x", implementing line 5 of Algorithm 4 (Pre_Proc). Punctuation
// attached to the final masked token is preserved so the masked sentence
// stays well-formed ("accidents," -> "x,").
func MaskSpan(sentence string, span Span) string {
	toks := Tokenize(sentence)
	if !span.Valid() || span.Start >= len(toks) {
		return sentence
	}
	end := span.End
	if end >= len(toks) {
		end = len(toks) - 1
	}
	suffix := trailingPunct(toks[end])
	masked := append([]string{}, toks[:span.Start]...)
	masked = append(masked, "x"+suffix)
	masked = append(masked, toks[end+1:]...)
	return strings.Join(masked, " ")
}

// MaskInContext replaces the original claim sentence inside its surrounding
// paragraph with the masked sentence, implementing line 7 of Algorithm 4.
// If the sentence does not occur verbatim in the paragraph the paragraph is
// returned unchanged together with ok=false.
func MaskInContext(paragraph, sentence, masked string) (string, bool) {
	if !strings.Contains(paragraph, sentence) {
		return paragraph, false
	}
	return strings.Replace(paragraph, sentence, masked, 1), true
}

// FindValueSpan locates the first token of the sentence whose numeric or
// textual content equals value, returning its span. Matching ignores
// surrounding punctuation and is case-insensitive; for multi-token values
// the full token run must match. ok=false when the value does not occur.
func FindValueSpan(sentence, value string) (Span, bool) {
	toks := Tokenize(sentence)
	want := Tokenize(value)
	if len(want) == 0 {
		return Span{Start: -1, End: -1}, false
	}
	// Two passes: exact textual token matches first, then numeric
	// equivalence ("2" vs "2.0", "two"). Exact-first keeps a digit value
	// like "1" from latching onto a spelled-out word ("number one") that
	// happens to appear earlier in the sentence.
	for _, exact := range []bool{true, false} {
		for i := 0; i+len(want) <= len(toks); i++ {
			match := true
			for j, w := range want {
				if !tokenEquals(toks[i+j], w, exact) {
					match = false
					break
				}
			}
			if match {
				return Span{Start: i, End: i + len(want) - 1}, true
			}
		}
	}
	return Span{Start: -1, End: -1}, false
}

// SpanText returns the raw text covered by span in the sentence.
func SpanText(sentence string, span Span) string {
	toks := Tokenize(sentence)
	if !span.Valid() || span.Start >= len(toks) {
		return ""
	}
	end := span.End
	if end >= len(toks) {
		end = len(toks) - 1
	}
	out := make([]string, 0, end-span.Start+1)
	for _, t := range toks[span.Start : end+1] {
		out = append(out, strings.TrimFunc(t, isPunct))
	}
	return strings.Join(out, " ")
}

func tokenEquals(tok, want string, exact bool) bool {
	tok = strings.TrimFunc(tok, isPunct)
	want = strings.TrimFunc(want, isPunct)
	if strings.EqualFold(tok, want) {
		return true
	}
	if exact {
		return false
	}
	// Numeric tokens compare by value ("2" matches "2.0").
	tv, tok1 := ParseNumber(tok)
	wv, ok2 := ParseNumber(want)
	return tok1 && ok2 && tv == wv
}

func isPunct(r rune) bool {
	return unicode.IsPunct(r) && r != '-' && r != '%' && r != '$'
}

func trailingPunct(tok string) string {
	i := len(tok)
	for i > 0 && isPunct(rune(tok[i-1])) {
		i--
	}
	return tok[i:]
}
