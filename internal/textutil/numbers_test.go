package textutil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseNumber(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"2", 2, true},
		{"3.14", 3.14, true},
		{"-7.5", -7.5, true},
		{"1,234", 1234, true},
		{"1,234,567.89", 1234567.89, true},
		{"$42", 42, true},
		{"37%", 37, true},
		{"two", 2, true},
		{"Twenty", 20, true},
		{"3.2 million", 3.2e6, true},
		{"1 billion", 1e9, true},
		{"", 0, false},
		{"Malaysia", 0, false},
		{"x", 0, false},
		{"12abc", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseNumber(c.in)
		if ok != c.ok || (ok && math.Abs(got-c.want) > 1e-9) {
			t.Errorf("ParseNumber(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestPrecision(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"3", 0},
		{"3.1", 1},
		{"3.14", 2},
		{"3.140", 3},
		{"-2.50", 2},
		{"1,234.5", 1},
		{"42%", 0},
		{"$19.99", 2},
	}
	for _, c := range cases {
		if got := Precision(c.in); got != c.want {
			t.Errorf("Precision(%q) = %d want %d", c.in, got, c.want)
		}
	}
}

// TestRoundMatchesExample41 pins the exact semantics of Example 4.1 in the
// paper: 3.140 matches "3.1" and "3" but not "3.143"; 3.143 matches "3.14".
func TestRoundMatchesExample41(t *testing.T) {
	cases := []struct {
		claim  string
		result float64
		want   bool
	}{
		{"3.1", 3.140, true},
		{"3", 3.140, true},
		{"3.143", 3.140, false},
		{"3.14", 3.143, true},
		{"2", 2.1, true},
		{"2", 2.6, false},
		{"2", 2.0, true},
		{"10", 9.6, true},
		{"10", 9.4, false},
		{"0.5", 0.49, true},
		{"0.5", 0.44, false},
	}
	for _, c := range cases {
		if got := RoundMatches(c.claim, c.result); got != c.want {
			t.Errorf("RoundMatches(%q, %v) = %v want %v", c.claim, c.result, got, c.want)
		}
	}
}

func TestRoundMatchesNonNumericClaim(t *testing.T) {
	if RoundMatches("hello", 3) {
		t.Error("non-numeric claim must not match any number")
	}
}

func TestSameOrderOfMagnitude(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{2, 3, true},
		{2, 20, true},   // adjacent magnitude allowed
		{2, 200, false}, // two magnitudes apart
		{0.5, 5, true},
		{-3, -4, true},
		{-3, 3, false}, // sign mismatch
		{0, 0, true},
		{0, 0.5, true},
		{0, 50, false},
		{1e6, 1.5e6, true},
		{1e6, 1e9, false},
	}
	for _, c := range cases {
		if got := SameOrderOfMagnitude(c.a, c.b); got != c.want {
			t.Errorf("SameOrderOfMagnitude(%v, %v) = %v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFormatNumber(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2, "2"},
		{-17, "-17"},
		{3.14, "3.14"},
		{3.140, "3.14"},
		{0.5, "0.5"},
		{1000000, "1000000"},
	}
	for _, c := range cases {
		if got := FormatNumber(c.in); got != c.want {
			t.Errorf("FormatNumber(%v) = %q want %q", c.in, got, c.want)
		}
	}
}

// Property: a result equal to the parsed claim value always round-matches
// the claim at any precision the claim states.
func TestRoundMatchesIdentityProperty(t *testing.T) {
	f := func(ip int16, frac uint8) bool {
		v := float64(ip) + float64(frac%100)/100
		claim := FormatNumber(RoundTo(v, 2))
		return RoundMatches(claim, RoundTo(v, 2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rounding to precision p yields a value within half an ulp of
// 10^-p of the input.
func TestRoundToBoundProperty(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(7))}
	f := func(raw int32, p uint8) bool {
		x := float64(raw) / 997.0
		prec := int(p % 6)
		r := RoundTo(x, prec)
		return math.Abs(r-x) <= 0.5*math.Pow(10, -float64(prec))+1e-12
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: ParseNumber round-trips FormatNumber for representable values.
func TestParseFormatRoundTrip(t *testing.T) {
	f := func(raw int32) bool {
		v := float64(raw) / 4.0
		got, ok := ParseNumber(FormatNumber(v))
		return ok && math.Abs(got-v) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsNumeric(t *testing.T) {
	if !IsNumeric("42") || !IsNumeric("two") || IsNumeric("Boeing") {
		t.Error("IsNumeric classification")
	}
}
