package textutil

import (
	"strings"
	"testing"
	"testing/quick"
)

const airlineSentence = "The two fatal accidents involving Malaysia Airlines this year were the first for the carrier since 1995."

func TestFindValueSpan(t *testing.T) {
	span, ok := FindValueSpan(airlineSentence, "two")
	if !ok || span.Start != 1 || span.End != 1 {
		t.Fatalf("FindValueSpan = %+v, %v; want {1 1}, true", span, ok)
	}
	// Numeric equivalence: "1995." token matches value "1995".
	span, ok = FindValueSpan(airlineSentence, "1995")
	if !ok || span.Start != 16 {
		t.Fatalf("FindValueSpan(1995) = %+v, %v", span, ok)
	}
	if _, ok := FindValueSpan(airlineSentence, "Boeing"); ok {
		t.Error("found span for absent value")
	}
}

func TestFindValueSpanMultiToken(t *testing.T) {
	s := "The winner was Lewis Hamilton at the race."
	span, ok := FindValueSpan(s, "Lewis Hamilton")
	if !ok || span.Start != 3 || span.End != 4 {
		t.Fatalf("got %+v, %v", span, ok)
	}
	if got := SpanText(s, span); got != "Lewis Hamilton" {
		t.Errorf("SpanText = %q", got)
	}
}

func TestMaskSpan(t *testing.T) {
	got := MaskSpan(airlineSentence, Span{Start: 1, End: 1})
	want := "The x fatal accidents involving Malaysia Airlines this year were the first for the carrier since 1995."
	if got != want {
		t.Errorf("MaskSpan = %q want %q", got, want)
	}
}

func TestMaskSpanPreservesTrailingPunct(t *testing.T) {
	s := "It rose to 42, according to the data."
	span, ok := FindValueSpan(s, "42")
	if !ok {
		t.Fatal("span not found")
	}
	got := MaskSpan(s, span)
	if !strings.Contains(got, "x,") {
		t.Errorf("trailing comma lost: %q", got)
	}
}

func TestMaskSpanMultiTokenValue(t *testing.T) {
	s := "The winner was Lewis Hamilton at the race."
	got := MaskSpan(s, Span{Start: 3, End: 4})
	want := "The winner was x at the race."
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestMaskSpanInvalid(t *testing.T) {
	if got := MaskSpan("a b c", Span{Start: -1, End: -1}); got != "a b c" {
		t.Errorf("invalid span must be identity, got %q", got)
	}
	if got := MaskSpan("a b c", Span{Start: 9, End: 9}); got != "a b c" {
		t.Errorf("out-of-range span must be identity, got %q", got)
	}
	// End clamped to sentence length.
	if got := MaskSpan("a b c", Span{Start: 2, End: 10}); got != "a b x" {
		t.Errorf("clamped span got %q", got)
	}
}

func TestMaskInContext(t *testing.T) {
	para := "Some intro. " + airlineSentence + " Some outro."
	masked := MaskSpan(airlineSentence, Span{Start: 1, End: 1})
	got, ok := MaskInContext(para, airlineSentence, masked)
	if !ok {
		t.Fatal("sentence not found in paragraph")
	}
	if strings.Contains(got, " two ") {
		t.Errorf("claim value leaked into context: %q", got)
	}
	if _, ok := MaskInContext("unrelated", airlineSentence, masked); ok {
		t.Error("MaskInContext reported success on absent sentence")
	}
}

// Property: masking never leaves the original claim-value token in place and
// keeps the token count consistent (span width collapses to one token).
func TestMaskSpanProperty(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	f := func(startRaw, widthRaw uint8) bool {
		start := int(startRaw) % len(words)
		width := 1 + int(widthRaw)%2
		if start+width > len(words) {
			width = len(words) - start
		}
		sentence := strings.Join(words, " ")
		span := Span{Start: start, End: start + width - 1}
		masked := MaskSpan(sentence, span)
		toks := Tokenize(masked)
		if len(toks) != len(words)-width+1 {
			return false
		}
		return toks[start] == "x"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpanWidth(t *testing.T) {
	if (Span{Start: 2, End: 4}).Width() != 3 {
		t.Error("width of 3-token span")
	}
	if (Span{Start: -1, End: -1}).Width() != 0 {
		t.Error("invalid span width")
	}
}
