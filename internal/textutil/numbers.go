// Package textutil provides text- and number-handling primitives shared by
// the CEDAR claim-verification pipeline: numeric parsing of claim values,
// precision-aware rounding comparison (Algorithm 3 of the paper), span
// masking (Algorithm 4), and lightweight tokenization.
package textutil

import (
	"math"
	"strconv"
	"strings"
)

// numberWords maps small spelled-out English numbers to their numeric value.
// Claims in prose frequently spell out small quantities ("two fatal
// accidents"); the verifier must treat them as numeric claim values.
var numberWords = map[string]float64{
	"zero": 0, "one": 1, "two": 2, "three": 3, "four": 4,
	"five": 5, "six": 6, "seven": 7, "eight": 8, "nine": 9,
	"ten": 10, "eleven": 11, "twelve": 12, "thirteen": 13,
	"fourteen": 14, "fifteen": 15, "sixteen": 16, "seventeen": 17,
	"eighteen": 18, "nineteen": 19, "twenty": 20, "thirty": 30,
	"forty": 40, "fifty": 50, "sixty": 60, "seventy": 70,
	"eighty": 80, "ninety": 90, "hundred": 100, "thousand": 1000,
	"million": 1e6, "billion": 1e9,
}

// ParseNumber extracts a numeric value from a claim-value string. It accepts
// plain decimals, thousands separators, leading currency symbols, trailing
// percent signs, magnitude suffixes ("3.2 million"), and spelled-out small
// numbers ("two"). The boolean result reports whether s denotes a number.
func ParseNumber(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	lower := strings.ToLower(s)
	if v, ok := numberWords[lower]; ok {
		return v, true
	}
	// Handle "3.2 million" style magnitude suffixes.
	if fields := strings.Fields(lower); len(fields) == 2 {
		if mult, ok := numberWords[fields[1]]; ok && mult >= 100 {
			if base, ok := ParseNumber(fields[0]); ok {
				return base * mult, true
			}
		}
	}
	cleaned := strings.TrimLeft(s, "$€£")
	cleaned = strings.TrimRight(cleaned, "%")
	cleaned = strings.ReplaceAll(cleaned, ",", "")
	cleaned = strings.TrimSpace(cleaned)
	v, err := strconv.ParseFloat(cleaned, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// IsNumeric reports whether s denotes a numeric claim value under the same
// lexical rules as ParseNumber.
func IsNumeric(s string) bool {
	_, ok := ParseNumber(s)
	return ok
}

// Precision returns the number of significant decimal places of a textual
// numeric claim value, e.g. Precision("3.14") = 2 and Precision("3") = 0.
// Trailing zeros are significant: Precision("3.140") = 3, matching the
// paper's GetPrecision semantics where the author's stated precision governs
// the rounding comparison.
func Precision(s string) int {
	s = strings.TrimSpace(s)
	s = strings.TrimLeft(s, "$€£")
	s = strings.TrimRight(s, "%")
	s = strings.ReplaceAll(s, ",", "")
	// Strip exponent part if present; precision of scientific notation is
	// taken from the mantissa.
	if i := strings.IndexAny(s, "eE"); i >= 0 {
		s = s[:i]
	}
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return 0
	}
	return len(s) - dot - 1
}

// RoundTo rounds x to prec decimal places using half-away-from-zero
// rounding, the convention used when prose rounds statistics.
func RoundTo(x float64, prec int) float64 {
	if prec < 0 {
		prec = 0
	}
	pow := math.Pow(10, float64(prec))
	return math.Round(x*pow) / pow
}

// RoundMatches implements the claim-validation comparison of Algorithm 3:
// the query result matches the claim value iff rounding the result to the
// claim's stated precision yields the claim value. Per Example 4.1 a query
// result of 3.140 matches claimed "3.1" and "3" but not "3.143", while a
// result of 3.143 matches "3.14".
func RoundMatches(claim string, result float64) bool {
	cv, ok := ParseNumber(claim)
	if !ok {
		return false
	}
	prec := Precision(claim)
	rounded := RoundTo(result, prec)
	// Compare at the claim's precision to avoid float representation noise.
	return math.Abs(rounded-cv) < 0.5*math.Pow(10, float64(-prec))*1e-6+1e-9
}

// SameOrderOfMagnitude implements the plausibility gate of CorrectQuery for
// numeric claims: a translated query is deemed plausible when its result is
// in the same order of magnitude as the claimed value. Zero values are
// treated as magnitude zero and only match values below one in absolute
// value; sign mismatches are implausible.
func SameOrderOfMagnitude(a, b float64) bool {
	if a == 0 && b == 0 {
		return true
	}
	// Zero claims (and zero results) are common for counts; a zero is
	// "near" any single-digit value, since off-by-small count errors are
	// exactly what the verification pipeline must examine rather than
	// reject as implausible.
	if a == 0 || b == 0 {
		return math.Abs(a+b) < 10
	}
	if (a < 0) != (b < 0) {
		return false
	}
	ma := math.Floor(math.Log10(math.Abs(a)))
	mb := math.Floor(math.Log10(math.Abs(b)))
	return math.Abs(ma-mb) <= 1
}

// FormatNumber renders a float the way query results are surfaced in agent
// observations and reconstruction: integers without a decimal point,
// fractional values with up to six significant decimals trimmed of trailing
// zeros.
func FormatNumber(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	s := strconv.FormatFloat(v, 'f', 6, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	return s
}
