package sqldb

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokQuotedIdent
	tokString
	tokNumber
	tokOp      // operators and punctuation: ( ) , . + - * / % = < > <= >= <> !=
	tokKeyword // recognized SQL keyword (uppercased in val)
)

type token struct {
	kind tokenKind
	val  string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "LIKE": true,
	"BETWEEN": true, "IS": true, "NULL": true, "DISTINCT": true, "ALL": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true,
	"CROSS": true, "ON": true, "ASC": true, "DESC": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "CAST": true,
	"TRUE": true, "FALSE": true, "EXISTS": true, "UNION": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes a SQL string. It is permissive about whitespace, supports
// double-quoted identifiers (possibly containing spaces, as produced by LLM
// translations of messy CSV headers), single-quoted string literals with ”
// escaping, and line comments introduced by --.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.peek(1) == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '"' || c == '`':
			if err := l.lexQuotedIdent(c); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9', c == '.' && isDigit(l.peek(1)):
			l.lexNumber()
		default:
			r, size := utf8.DecodeRuneInString(l.src[l.pos:])
			if r == utf8.RuneError && size <= 1 {
				return nil, fmt.Errorf("%w: invalid UTF-8 at %d", ErrSyntax, l.pos)
			}
			if isIdentStart(r) {
				l.lexIdent()
				continue
			}
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) peek(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.peek(1) == '\'' { // escaped quote
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, val: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("%w: unterminated string at %d", ErrSyntax, start)
}

func (l *lexer) lexQuotedIdent(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			if l.peek(1) == quote { // doubled quote character: escape
				b.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokQuotedIdent, val: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("%w: unterminated quoted identifier at %d", ErrSyntax, start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && isDigit(l.peek(1)):
			seenExp = true
			l.pos++
		case (c == '+' || c == '-') && seenExp && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'):
			l.pos++
		default:
			l.toks = append(l.toks, token{kind: tokNumber, val: l.src[start:l.pos], pos: start})
			return
		}
	}
	l.toks = append(l.toks, token{kind: tokNumber, val: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if (r == utf8.RuneError && size <= 1) || !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	raw := l.src[start:l.pos]
	upper := strings.ToUpper(raw)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, val: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, val: raw, pos: start})
	}
}

func (l *lexer) lexOp() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		l.toks = append(l.toks, token{kind: tokOp, val: two, pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '+', '-', '*', '/', '%', '=', '<', '>', ';':
		l.toks = append(l.toks, token{kind: tokOp, val: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("%w: unexpected character %q at %d", ErrSyntax, string(c), l.pos)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
