-- Curated differential corpus: each line runs through the row oracle, the
-- vectorized engine, and the cached Query path on both fixture catalogs.
-- Lines target known divergence hazards: NULL semantics, lossy float64
-- coercion above 2^53, mixed-kind columns, empty-input aggregates,
-- outer-join padding, correlated subqueries, and ORDER BY resolution.
SELECT id, n FROM t1
SELECT DISTINCT id FROM t1 ORDER BY 1 DESC
SELECT id, n, f FROM t1 WHERE n > 0 AND f < 10
SELECT id FROM t1 WHERE n IS NULL OR f IS NULL
SELECT s FROM t1 WHERE s LIKE '%a%'
SELECT m FROM t1 WHERE m = 7
SELECT m FROM t1 WHERE m = '7'
SELECT n, n * n FROM t1 WHERE n > 9007199254740990
SELECT n + 0.5 FROM t1 ORDER BY 1
SELECT id, n / 0 FROM t1
SELECT id, n % 4 FROM t1 WHERE n IS NOT NULL
SELECT COUNT(*), COUNT(n), COUNT(DISTINCT id) FROM t1
SELECT SUM(n), AVG(f), MIN(s), MAX(s) FROM t1
SELECT SUM(n), COUNT(*) FROM empty
SELECT MIN(id), MAX(w) FROM empty
SELECT id, COUNT(*) FROM t1 GROUP BY id ORDER BY 2 DESC, 1
SELECT id, SUM(n) FROM t1 GROUP BY id HAVING COUNT(*) > 3 ORDER BY 1
SELECT s, AVG(f) FROM t1 WHERE f IS NOT NULL GROUP BY s ORDER BY 2
SELECT id % 3, COUNT(*) FROM t1 GROUP BY id % 3 ORDER BY 1
SELECT a.id, b.tag FROM t1 a JOIN t2 b ON a.id = b.id ORDER BY 1, 2 LIMIT 20
SELECT a.id, b.v FROM t1 a LEFT JOIN t2 b ON a.id = b.id WHERE b.v IS NULL
SELECT COUNT(*) FROM t1 a JOIN t2 b ON a.id = b.id AND TRUE
SELECT COUNT(*) FROM t1 a JOIN t2 b ON a.n > b.v
SELECT a.id, t3.k FROM t1 a CROSS JOIN t3 ORDER BY 1, 2 LIMIT 15
SELECT a.id, b.id, t3.k FROM t1 a JOIN t2 b ON a.id = b.id LEFT JOIN t3 ON b.id = t3.k ORDER BY 1, 2, 3 LIMIT 25
SELECT b.tag, COUNT(*), SUM(a.n) FROM t1 a JOIN t2 b ON a.id = b.id GROUP BY b.tag ORDER BY 1
SELECT id FROM t1 WHERE id IN (SELECT id FROM t2 WHERE v > 0) ORDER BY 1
SELECT id FROM t1 WHERE id NOT IN (SELECT id FROM t2) ORDER BY 1
SELECT s FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.id = t1.id AND t2.v > 5)
SELECT id FROM t1 WHERE n > (SELECT AVG(v) FROM t2) ORDER BY 1
SELECT id, (SELECT MAX(v) FROM t2) FROM t1 LIMIT 3
SELECT CASE WHEN n > 0 THEN 'pos' WHEN n < 0 THEN 'neg' ELSE 'zero' END, COUNT(*) FROM t1 GROUP BY 1 ORDER BY 1
SELECT CAST(f AS INTEGER), CAST(id AS TEXT) FROM t1 WHERE f IS NOT NULL ORDER BY 1, 2 LIMIT 10
SELECT COALESCE(n, -999), NULLIF(id, 3) FROM t1 ORDER BY 1 LIMIT 10
SELECT LOWER(s), UPPER(s), LENGTH(s), TRIM(s) FROM t1 WHERE s IS NOT NULL ORDER BY 1 LIMIT 8
SELECT n AS val FROM t1 WHERE n BETWEEN -10 AND 30 ORDER BY val DESC LIMIT 7 OFFSET 2
SELECT 1 + 2, 'x', NULL, 4.5 / 1.5
SELECT id, f FROM t1 ORDER BY f DESC LIMIT 5
SELECT DISTINCT tag FROM t2 ORDER BY 1
SELECT airline FROM airlines WHERE fatal_accidents = 0 ORDER BY 1
SELECT a.airline, r.population FROM airlines a JOIN regions r ON a.region = r.region ORDER BY 1
SELECT a.airline, r.population FROM airlines a LEFT JOIN regions r ON a.region = r.region ORDER BY 1
SELECT region, SUM(fatal_accidents) FROM airlines GROUP BY region ORDER BY 1
SELECT COUNT(*) FROM airlines WHERE region IS NULL
