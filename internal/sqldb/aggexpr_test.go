package sqldb

import (
	"math"
	"strings"
	"testing"
)

// aggDB builds a small grouped fixture for aggregate-context expression
// evaluation.
func aggDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase("agg")
	tab := NewTable("sales", "region", "units", "price")
	rows := []struct {
		region string
		units  int64
		price  float64
	}{
		{"east", 10, 2.5},
		{"east", 20, 3.0},
		{"west", 5, 10.0},
		{"west", 15, 8.0},
		{"north", 0, 1.0},
	}
	for _, r := range rows {
		tab.MustAppendRow(Text(r.region), Int(r.units), Float(r.price))
	}
	db.AddTable(tab)
	return db
}

// TestAggregateExpressions exercises arithmetic, CASE, CAST, scalar
// functions, and logic operators in aggregate context (groupEnv.eval).
func TestAggregateExpressions(t *testing.T) {
	db := aggDB(t)
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT MAX(units) - MIN(units) FROM sales`, "20"},
		{`SELECT SUM(units) * 2 FROM sales`, "100"},
		{`SELECT CAST(SUM(units) AS REAL) / COUNT(*) FROM sales`, "10"},
		{`SELECT ROUND(AVG(price), 1) FROM sales`, "4.9"},
		{`SELECT CASE WHEN SUM(units) > 40 THEN 'many' ELSE 'few' END FROM sales`, "many"},
		{`SELECT CASE WHEN SUM(units) > 400 THEN 'many' END FROM sales`, "NULL"},
		{`SELECT COUNT(*) > 3 AND MAX(price) >= 10 FROM sales`, "true"},
		{`SELECT COUNT(*) > 30 OR MIN(units) = 0 FROM sales`, "true"},
		{`SELECT -MIN(units) FROM sales`, "0"},
		{`SELECT ABS(MIN(units) - MAX(units)) FROM sales`, "20"},
	}
	for _, c := range cases {
		v, err := QueryScalar(db, c.sql)
		if err != nil {
			t.Errorf("%s: %v", c.sql, err)
			continue
		}
		if v.String() != c.want {
			t.Errorf("%s = %q want %q", c.sql, v.String(), c.want)
		}
	}
}

func TestGroupedExpressionProjection(t *testing.T) {
	db := aggDB(t)
	res, err := Query(db, `SELECT region, SUM(units * 1) + 0 FROM sales GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// east=30, north=0, west=20
	if res.Rows[0][1].String() != "30" || res.Rows[2][1].String() != "20" {
		t.Errorf("grouped sums: %v", res)
	}
}

func TestHavingOnExpression(t *testing.T) {
	db := aggDB(t)
	res, err := Query(db, `SELECT region FROM sales GROUP BY region HAVING SUM(units) * 2 >= 40 ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // east (60), west (40)
		t.Fatalf("rows = %v", res)
	}
}

func TestValueConversions(t *testing.T) {
	if i, ok := Int(7).AsInt(); !ok || i != 7 {
		t.Error("Int.AsInt")
	}
	if i, ok := Float(7.0).AsInt(); !ok || i != 7 {
		t.Error("integral Float.AsInt")
	}
	if _, ok := Float(7.5).AsInt(); ok {
		t.Error("fractional Float.AsInt must fail")
	}
	if i, ok := Text(" 42 ").AsInt(); !ok || i != 42 {
		t.Error("Text.AsInt")
	}
	if _, ok := Text("abc").AsInt(); ok {
		t.Error("non-numeric Text.AsInt must fail")
	}
	if _, ok := Null().AsInt(); ok {
		t.Error("Null.AsInt must fail")
	}
	if f, ok := Bool(true).AsFloat(); !ok || f != 1 {
		t.Error("Bool.AsFloat")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool.AsBool")
	}
	if !Int(3).AsBool() || Int(0).AsBool() {
		t.Error("Int.AsBool")
	}
	if !Float(0.5).AsBool() || Float(0).AsBool() {
		t.Error("Float.AsBool")
	}
	if Null().AsBool() || Text("x").AsBool() {
		t.Error("Null/Text.AsBool must be false")
	}
	if Bool(true).String() != "true" || Bool(false).String() != "false" {
		t.Error("Bool.String")
	}
	if Bool(true).Text() != "true" {
		t.Error("Bool.Text")
	}
}

func TestValueKeyKinds(t *testing.T) {
	// Distinct kinds with same textual form must not collide as group
	// keys, except int/integral-float which intentionally coincide.
	keys := map[string]string{}
	for name, v := range map[string]Value{
		"null": Null(), "int5": Int(5), "float5.5": Float(5.5),
		"text5": Text("5"), "boolT": Bool(true), "boolF": Bool(false),
	} {
		k := v.key()
		if prev, dup := keys[k]; dup {
			t.Errorf("key collision between %s and %s", prev, name)
		}
		keys[k] = name
	}
	if Int(5).key() != Float(5).key() {
		t.Error("int and integral float must share group keys")
	}
}

func TestCastValueAll(t *testing.T) {
	db := aggDB(t)
	cases := []struct{ sql, want string }{
		{`SELECT CAST('12' AS INTEGER)`, "12"},
		{`SELECT CAST('3.5' AS REAL)`, "3.5"},
		{`SELECT CAST(42 AS TEXT)`, "42"},
		{`SELECT CAST(1 AS BOOLEAN)`, "true"},
		{`SELECT CAST(NULL AS INTEGER)`, "NULL"},
	}
	for _, c := range cases {
		v, err := QueryScalar(db, c.sql)
		if err != nil {
			t.Errorf("%s: %v", c.sql, err)
			continue
		}
		if v.String() != c.want {
			t.Errorf("%s = %q want %q", c.sql, v.String(), c.want)
		}
	}
	if _, err := QueryScalar(db, `SELECT CAST('abc' AS INTEGER)`); err == nil {
		t.Error("casting non-numeric text to INTEGER must fail")
	}
}

func TestCatalogHelpers(t *testing.T) {
	db := aggDB(t)
	if db.TotalRows() != 5 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
	cols := db.AllColumnNames()
	if len(cols) != 3 || cols[0] != "price" {
		t.Errorf("AllColumnNames = %v", cols)
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "sales" {
		t.Errorf("TableNames = %v", names)
	}
	// MustAppendRow panics on arity mismatch.
	defer func() {
		if recover() == nil {
			t.Error("MustAppendRow must panic on arity mismatch")
		}
	}()
	db.Table("sales").MustAppendRow(Text("only one"))
}

func TestASTRendering(t *testing.T) {
	// Exercise every AST node's SQL renderer through a parse round trip.
	queries := []string{
		`SELECT * FROM t`,
		`SELECT t.* FROM t`,
		`SELECT a FROM t WHERE b BETWEEN 1 AND 2`,
		`SELECT a FROM t WHERE b NOT BETWEEN 1 AND 2`,
		`SELECT a FROM t WHERE b IN (SELECT c FROM u)`,
		`SELECT a FROM t WHERE b IS NOT NULL`,
		`SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)`,
		`SELECT COUNT(DISTINCT a) FROM t`,
		`SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t`,
		`SELECT CAST(a AS BOOLEAN) FROM t`,
		`SELECT 'it''s' FROM t`,
		`SELECT a FROM t ORDER BY a DESC LIMIT 3 OFFSET 1`,
		`SELECT a AS "alias name" FROM t x CROSS JOIN u`,
		`SELECT -a, NOT b FROM t`,
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		rendered := stmt.SQL()
		if _, err := Parse(rendered); err != nil {
			t.Errorf("re-parse of %q -> %q: %v", q, rendered, err)
		}
		if !strings.HasPrefix(rendered, "SELECT") {
			t.Errorf("rendered %q", rendered)
		}
	}
}

func TestParseFromClause(t *testing.T) {
	fp := ParseFromClause(`"a" JOIN "b" ON "a"."k" = "b"."k"`)
	if fp == nil || fp.From.Name != "a" || len(fp.Joins) != 1 {
		t.Fatalf("ParseFromClause = %+v", fp)
	}
	if ParseFromClause("not a from clause (((") != nil {
		t.Error("invalid clause must return nil")
	}
}

func TestModuloAndDivEdge(t *testing.T) {
	db := aggDB(t)
	v, _ := QueryScalar(db, `SELECT 7.5 % 2`)
	if f, _ := v.AsFloat(); math.Abs(f-1.5) > 1e-12 {
		t.Errorf("float modulo = %v", v)
	}
	v, _ = QueryScalar(db, `SELECT 1 / 0`)
	if !v.IsNull() {
		t.Errorf("division by zero = %v, want NULL", v)
	}
	v, _ = QueryScalar(db, `SELECT 1 % 0`)
	if !v.IsNull() {
		t.Errorf("modulo by zero = %v, want NULL", v)
	}
}
