package sqldb

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type Kind
}

// Table is an in-memory relation: an ordered column list plus row storage.
type Table struct {
	Name    string
	Columns []Column
	Rows    [][]Value
}

// NewTable constructs an empty table with the given column names. Column
// types start as NULL and are refined as rows are appended.
func NewTable(name string, cols ...string) *Table {
	t := &Table{Name: name}
	for _, c := range cols {
		t.Columns = append(t.Columns, Column{Name: c, Type: KindNull})
	}
	return t
}

// AppendRow adds a row, refining column types from the appended values. The
// row length must match the column count.
func (t *Table) AppendRow(vals ...Value) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("table %s: row has %d values, want %d", t.Name, len(vals), len(t.Columns))
	}
	for i, v := range vals {
		t.Columns[i].Type = mergeKind(t.Columns[i].Type, v.Kind())
	}
	t.Rows = append(t.Rows, vals)
	return nil
}

// MustAppendRow is AppendRow but panics on arity mismatch; intended for
// static table construction in corpora and tests.
func (t *Table) MustAppendRow(vals ...Value) {
	if err := t.AppendRow(vals...); err != nil {
		panic(err)
	}
}

// ColumnIndex returns the position of the named column (case-insensitive),
// or -1 when absent.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the ordered column names.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// UniqueValues returns the distinct non-NULL values of the named column in
// first-appearance order. This backs the agent's unique_column_values tool.
func (t *Table) UniqueValues(column string) ([]Value, error) {
	idx := t.ColumnIndex(column)
	if idx < 0 {
		return nil, fmt.Errorf("%w: column %q in table %q", ErrUnknownColumn, column, t.Name)
	}
	seen := make(map[string]bool)
	var out []Value
	for _, row := range t.Rows {
		v := row[idx]
		if v.IsNull() {
			continue
		}
		k := v.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out, nil
}

// mergeKind widens a column type to accommodate a newly observed value kind.
func mergeKind(cur, next Kind) Kind {
	if next == KindNull {
		return cur
	}
	if cur == KindNull || cur == next {
		return next
	}
	if (cur == KindInt && next == KindFloat) || (cur == KindFloat && next == KindInt) {
		return KindFloat
	}
	return KindText
}

// Database is a named collection of tables. Catalog reads and writes are
// safe for concurrent use; the tables themselves must not be mutated after
// registration while queries run against them.
type Database struct {
	Name string

	mu      sync.RWMutex
	tables  map[string]*Table
	order   []string
	version uint64 // bumped on every catalog change; guards cached plans
	// tableVers records, per (lowercased) table name, the catalog version at
	// which that table last changed. Entries persist across RemoveTable (a
	// removal is a change), so a plan compiled against a since-removed table
	// can never read a stale stamp of zero.
	tableVers map[string]uint64

	plans planCache // parsed-plan / prepared-statement cache (stmt_cache.go)
}

// NewDatabase constructs an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: make(map[string]*Table), tableVers: make(map[string]uint64)}
}

// AddTable registers a table, replacing any previous table with the same
// (case-insensitive) name. Cached query plans that reference the table are
// invalidated: they may have bound column positions against the replaced
// schema. Plans over other tables stay cached.
func (d *Database) AddTable(t *Table) {
	d.mu.Lock()
	key := strings.ToLower(t.Name)
	if _, exists := d.tables[key]; !exists {
		d.order = append(d.order, key)
	}
	d.tables[key] = t
	d.version++
	if d.tableVers == nil {
		d.tableVers = make(map[string]uint64)
	}
	d.tableVers[key] = d.version
	d.mu.Unlock()
	d.plans.invalidate(key)
}

// RemoveTable drops the named table (case-insensitive) and invalidates
// cached plans referencing it. It reports whether the table existed.
func (d *Database) RemoveTable(name string) bool {
	d.mu.Lock()
	key := strings.ToLower(name)
	if _, exists := d.tables[key]; !exists {
		d.mu.Unlock()
		return false
	}
	delete(d.tables, key)
	for i, k := range d.order {
		if k == key {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.version++
	if d.tableVers == nil {
		d.tableVers = make(map[string]uint64)
	}
	d.tableVers[key] = d.version
	d.mu.Unlock()
	d.plans.invalidate(key)
	return true
}

// Table returns the named table (case-insensitive), or nil when absent.
func (d *Database) Table(name string) *Table {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.tables[strings.ToLower(name)]
}

// Version returns the catalog version, which increments on every AddTable.
// Cached plans carry the version they were compiled against.
func (d *Database) Version() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.version
}

// snapshotTables resolves the named tables and their combined change stamp
// in one atomic step, so a concurrent AddTable cannot hand an executor a
// table whose schema differs from the plan it is about to run. The stamp is
// the maximum per-table version over names: it moves only when one of the
// named tables changes, so churn on unrelated tables does not stale plans
// compiled against this set.
func (d *Database) snapshotTables(names []string) ([]*Table, uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*Table, len(names))
	var stamp uint64
	for i, n := range names {
		key := strings.ToLower(n)
		out[i] = d.tables[key]
		if v := d.tableVers[key]; v > stamp {
			stamp = v
		}
	}
	return out, stamp
}

// stampFor returns the combined change stamp of the named tables: the
// maximum catalog version at which any of them last changed (zero when none
// ever existed). Names must already be lowercased.
func (d *Database) stampFor(names []string) uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var stamp uint64
	for _, n := range names {
		if v := d.tableVers[n]; v > stamp {
			stamp = v
		}
	}
	return stamp
}

// Tables returns all tables in registration order.
func (d *Database) Tables() []*Table {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*Table, 0, len(d.order))
	for _, k := range d.order {
		out = append(out, d.tables[k])
	}
	return out
}

// TableNames returns the registered table names in registration order.
func (d *Database) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.order))
	for _, k := range d.order {
		out = append(out, d.tables[k].Name)
	}
	return out
}

// Schema renders a compact CREATE TABLE description of every table, used to
// fill the {db_schema} placeholder of the verification prompt templates.
func (d *Database) Schema() string {
	var b strings.Builder
	for _, t := range d.Tables() {
		fmt.Fprintf(&b, "CREATE TABLE \"%s\" (", t.Name)
		for i, c := range t.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "\"%s\" %s", c.Name, c.Type)
		}
		b.WriteString(");\n")
	}
	return b.String()
}

// SampleRows renders up to n example rows per table in a pipe-separated
// layout. Prompt templates like P1 ("Create Table + Select 3") include such
// samples to ground the model in actual data values.
func (d *Database) SampleRows(n int) string {
	var b strings.Builder
	for _, t := range d.Tables() {
		fmt.Fprintf(&b, "-- %s\n", t.Name)
		b.WriteString(strings.Join(t.ColumnNames(), " | "))
		b.WriteByte('\n')
		for i, row := range t.Rows {
			if i >= n {
				break
			}
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = v.String()
			}
			b.WriteString(strings.Join(cells, " | "))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TotalRows returns the number of rows across all tables, a size signal used
// by the TAPEX-style baseline whose flattening degrades with table size.
func (d *Database) TotalRows() int {
	n := 0
	for _, t := range d.Tables() {
		n += len(t.Rows)
	}
	return n
}

// AllColumnNames returns the sorted union of column names across tables.
func (d *Database) AllColumnNames() []string {
	set := make(map[string]bool)
	for _, t := range d.Tables() {
		for _, c := range t.Columns {
			set[c.Name] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// LoadCSV reads a table from CSV data: the first record provides column
// names, subsequent records become rows with literal type inference.
func LoadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("load csv %s: header: %w", name, err)
	}
	t := NewTable(name, header...)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("load csv %s: %w", name, err)
		}
		row := make([]Value, len(t.Columns))
		for i := range row {
			if i < len(rec) {
				row[i] = inferLiteral(rec[i])
			} else {
				row[i] = Null()
			}
		}
		t.Rows = append(t.Rows, row)
		for i, v := range row {
			t.Columns[i].Type = mergeKind(t.Columns[i].Type, v.Kind())
		}
	}
	return t, nil
}
