package sqldb

import "errors"

// Sentinel errors surfaced by the engine. Callers (in particular the agent's
// database_querying tool) match on these to produce targeted feedback.
var (
	// ErrSyntax indicates the query text could not be parsed.
	ErrSyntax = errors.New("sqldb: syntax error")
	// ErrUnknownTable indicates a FROM or JOIN references an absent table.
	ErrUnknownTable = errors.New("sqldb: unknown table")
	// ErrUnknownColumn indicates a column reference could not be resolved.
	ErrUnknownColumn = errors.New("sqldb: unknown column")
	// ErrNotScalar indicates a query expected to yield a single cell
	// returned zero rows, multiple rows, or multiple columns.
	ErrNotScalar = errors.New("sqldb: query result is not a single cell")
	// ErrType indicates an operator or function received incompatible
	// operand types.
	ErrType = errors.New("sqldb: type error")
	// ErrUnsupported indicates a recognized but unimplemented SQL feature.
	ErrUnsupported = errors.New("sqldb: unsupported SQL feature")
)
