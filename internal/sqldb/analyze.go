package sqldb

// Complexity summarizes the structural complexity of one SQL query along the
// dimensions reported in Table 3 of the paper: number of joins, GROUP BY
// clauses, subqueries, aggregate function calls, and distinct referenced
// columns.
type Complexity struct {
	Joins      int
	GroupBys   int
	Subqueries int
	Aggregates int
	Columns    int
}

// Analyze parses sql and computes its Complexity.
func Analyze(sql string) (Complexity, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return Complexity{}, err
	}
	return AnalyzeStmt(stmt), nil
}

// AnalyzeStmt computes the Complexity of a parsed statement, including the
// contributions of nested subqueries.
func AnalyzeStmt(stmt *SelectStmt) Complexity {
	a := &analyzer{cols: make(map[string]bool)}
	a.stmt(stmt, false)
	a.c.Columns = len(a.cols)
	return a.c
}

type analyzer struct {
	c    Complexity
	cols map[string]bool
}

func (a *analyzer) stmt(s *SelectStmt, nested bool) {
	if nested {
		a.c.Subqueries++
	}
	a.c.Joins += len(s.Joins)
	if len(s.GroupBy) > 0 {
		a.c.GroupBys++
	}
	for _, it := range s.Items {
		a.expr(it.Expr)
	}
	for _, j := range s.Joins {
		if j.On != nil {
			a.expr(j.On)
		}
	}
	if s.Where != nil {
		a.expr(s.Where)
	}
	for _, g := range s.GroupBy {
		a.expr(g)
	}
	if s.Having != nil {
		a.expr(s.Having)
	}
	for _, o := range s.OrderBy {
		a.expr(o.Expr)
	}
}

func (a *analyzer) expr(e Expr) {
	switch v := e.(type) {
	case *ColumnExpr:
		a.cols[normalizeCol(v.Name)] = true
	case *UnaryExpr:
		a.expr(v.Expr)
	case *BinaryExpr:
		a.expr(v.Left)
		a.expr(v.Right)
	case *BetweenExpr:
		a.expr(v.Expr)
		a.expr(v.Lo)
		a.expr(v.Hi)
	case *InExpr:
		a.expr(v.Expr)
		for _, it := range v.List {
			a.expr(it)
		}
		if v.Sub != nil {
			a.stmt(v.Sub, true)
		}
	case *IsNullExpr:
		a.expr(v.Expr)
	case *FuncExpr:
		if v.IsAggregate() {
			a.c.Aggregates++
		}
		for _, arg := range v.Args {
			a.expr(arg)
		}
	case *CastExpr:
		a.expr(v.Expr)
	case *CaseExpr:
		for _, w := range v.Whens {
			a.expr(w.Cond)
			a.expr(w.Then)
		}
		if v.Else != nil {
			a.expr(v.Else)
		}
	case *SubqueryExpr:
		a.stmt(v.Stmt, true)
	case *ExistsExpr:
		a.stmt(v.Stmt, true)
	}
}

func normalizeCol(name string) string {
	// Case-insensitive distinct-column counting.
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}
