package sqldb

import (
	"fmt"
	"strings"
)

// Expr is a SQL expression node.
type Expr interface {
	// SQL renders the expression back to SQL text.
	SQL() string
}

// quoteIdent renders an identifier in double quotes, doubling embedded
// quote characters so the result re-lexes to the same identifier.
func quoteIdent(name string) string {
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

// bareOrQuoted renders positions that are conventionally unquoted (table
// aliases, star qualifiers) bare when the name lexes as a plain identifier
// token, falling back to quoting otherwise.
func bareOrQuoted(name string) string {
	if isBareIdent(name) {
		return name
	}
	return quoteIdent(name)
}

func isBareIdent(name string) bool {
	if name == "" || keywords[strings.ToUpper(name)] {
		return false
	}
	for i, r := range name {
		if i == 0 && !isIdentStart(r) {
			return false
		}
		if i > 0 && !isIdentPart(r) {
			return false
		}
	}
	return true
}

// LiteralExpr is a constant value.
type LiteralExpr struct{ Val Value }

// SQL implements Expr.
func (e *LiteralExpr) SQL() string {
	if e.Val.Kind() == KindText {
		return "'" + strings.ReplaceAll(e.Val.Text(), "'", "''") + "'"
	}
	s := e.Val.String()
	// A float literal must render as one: FormatFloat('f', -1) drops the
	// decimal point for integral values (including negative zero), which
	// would round-trip to an integer literal and change result formatting.
	if e.Val.Kind() == KindFloat && !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// ColumnExpr references a column, optionally qualified by a table name or
// alias.
type ColumnExpr struct {
	Table string // optional qualifier
	Name  string
}

// SQL implements Expr.
func (e *ColumnExpr) SQL() string {
	if e.Table != "" {
		return quoteIdent(e.Table) + "." + quoteIdent(e.Name)
	}
	return quoteIdent(e.Name)
}

// StarExpr is the * projection (optionally table-qualified).
type StarExpr struct{ Table string }

// SQL implements Expr.
func (e *StarExpr) SQL() string {
	if e.Table != "" {
		return bareOrQuoted(e.Table) + ".*"
	}
	return "*"
}

// UnaryExpr applies a prefix operator: "-" or "NOT".
type UnaryExpr struct {
	Op   string
	Expr Expr
}

// SQL implements Expr.
func (e *UnaryExpr) SQL() string {
	if e.Op == "NOT" {
		return "NOT " + e.Expr.SQL()
	}
	return e.Op + e.Expr.SQL()
}

// BinaryExpr applies an infix operator: arithmetic, comparison, AND/OR,
// LIKE, or string concatenation (||).
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// SQL implements Expr.
func (e *BinaryExpr) SQL() string {
	return fmt.Sprintf("(%s %s %s)", e.Left.SQL(), e.Op, e.Right.SQL())
}

// BetweenExpr is `expr [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	Expr, Lo, Hi Expr
	Not          bool
}

// SQL implements Expr.
func (e *BetweenExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sBETWEEN %s AND %s)", e.Expr.SQL(), not, e.Lo.SQL(), e.Hi.SQL())
}

// InExpr is `expr [NOT] IN (list...)` or `expr [NOT] IN (subquery)`.
type InExpr struct {
	Expr Expr
	List []Expr
	Sub  *SelectStmt
	Not  bool
}

// SQL implements Expr.
func (e *InExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	if e.Sub != nil {
		return fmt.Sprintf("(%s %sIN (%s))", e.Expr.SQL(), not, e.Sub.SQL())
	}
	items := make([]string, len(e.List))
	for i, it := range e.List {
		items[i] = it.SQL()
	}
	return fmt.Sprintf("(%s %sIN (%s))", e.Expr.SQL(), not, strings.Join(items, ", "))
}

// IsNullExpr is `expr IS [NOT] NULL`.
type IsNullExpr struct {
	Expr Expr
	Not  bool
}

// SQL implements Expr.
func (e *IsNullExpr) SQL() string {
	if e.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", e.Expr.SQL())
	}
	return fmt.Sprintf("(%s IS NULL)", e.Expr.SQL())
}

// FuncExpr is a function call, covering both aggregates (COUNT, SUM, AVG,
// MIN, MAX) and scalar functions (ABS, ROUND, LOWER, ...). Name is
// uppercase. Star marks COUNT(*); Distinct marks COUNT(DISTINCT x) etc.
type FuncExpr struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

// SQL implements Expr.
func (e *FuncExpr) SQL() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.SQL()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", e.Name, d, strings.Join(args, ", "))
}

// IsAggregate reports whether the call is one of the aggregate functions.
func (e *FuncExpr) IsAggregate() bool {
	switch e.Name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// CastExpr is `CAST(expr AS type)`.
type CastExpr struct {
	Expr Expr
	Type Kind
}

// SQL implements Expr.
func (e *CastExpr) SQL() string {
	return fmt.Sprintf("CAST(%s AS %s)", e.Expr.SQL(), e.Type)
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // may be nil
}

// CaseWhen is one WHEN/THEN arm of a CASE expression.
type CaseWhen struct {
	Cond, Then Expr
}

// SQL implements Expr.
func (e *CaseExpr) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond.SQL(), w.Then.SQL())
	}
	if e.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", e.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}

// SubqueryExpr is a scalar subquery used as an expression.
type SubqueryExpr struct{ Stmt *SelectStmt }

// SQL implements Expr.
func (e *SubqueryExpr) SQL() string { return "(" + e.Stmt.SQL() + ")" }

// ExistsExpr is `EXISTS (subquery)`.
type ExistsExpr struct {
	Stmt *SelectStmt
	Not  bool
}

// SQL implements Expr.
func (e *ExistsExpr) SQL() string {
	if e.Not {
		return "NOT EXISTS (" + e.Stmt.SQL() + ")"
	}
	return "EXISTS (" + e.Stmt.SQL() + ")"
}

// SelectItem is one projection of a SELECT list with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef is one relation in the FROM clause with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// EffectiveName returns the alias if present, otherwise the table name.
func (t TableRef) EffectiveName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one JOIN in the FROM clause. Only inner and cross joins are
// executed; LEFT is parsed and rejected at execution with ErrUnsupported so
// the agent receives actionable feedback.
type JoinClause struct {
	Kind  string // "INNER", "CROSS", "LEFT"
	Table TableRef
	On    Expr // nil for CROSS
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     *TableRef // nil for table-less SELECT (e.g. SELECT 1+1)
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int // 0 when absent
}

// SQL renders the statement back to SQL text.
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.Expr.SQL())
		if it.Alias != "" {
			b.WriteString(" AS " + quoteIdent(it.Alias))
		}
	}
	if s.From != nil {
		b.WriteString(" FROM " + quoteIdent(s.From.Name))
		if s.From.Alias != "" {
			b.WriteString(" " + bareOrQuoted(s.From.Alias))
		}
	}
	for _, j := range s.Joins {
		fmt.Fprintf(&b, " %s JOIN %s", j.Kind, quoteIdent(j.Table.Name))
		if j.Table.Alias != "" {
			b.WriteString(" " + bareOrQuoted(j.Table.Alias))
		}
		if j.On != nil {
			b.WriteString(" ON " + j.On.SQL())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.SQL())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", s.Offset)
	}
	return b.String()
}
