package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement. A trailing semicolon and
// surrounding whitespace are tolerated; anything else after the statement is
// a syntax error.
func Parse(sql string) (*SelectStmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().val)
	}
	return stmt, nil
}

// FromParts is the FROM surface of a statement: the base table plus joins.
type FromParts struct {
	From  *TableRef
	Joins []JoinClause
}

// ParseFromClause parses a bare FROM-clause body such as
// `"t1" JOIN "t2" ON "t1"."k" = "t2"."k"` into its parts. It returns nil
// when the text does not parse.
func ParseFromClause(fromSQL string) *FromParts {
	stmt, err := Parse("SELECT 1 FROM " + fromSQL)
	if err != nil || stmt.From == nil {
		return nil
	}
	return &FromParts{From: stmt.From, Joins: stmt.Joins}
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token { return p.toks[p.pos] }

// next consumes and returns the current token. The trailing EOF token is
// never consumed so that error paths can always report a position.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(kind tokenKind, val string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	return val == "" || t.val == val
}

// accept consumes the current token when it matches, reporting success.
func (p *parser) accept(kind tokenKind, val string) bool {
	if p.at(kind, val) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, val string) (token, error) {
	if p.at(kind, val) {
		return p.next(), nil
	}
	want := val
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().val)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%w: %s at position %d in %q", ErrSyntax,
		fmt.Sprintf(format, args...), p.cur().pos, truncate(p.src, 120))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.accept(tokKeyword, "DISTINCT") {
		stmt.Distinct = true
	} else {
		p.accept(tokKeyword, "ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "FROM") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = &ref
		for {
			join, ok, err := p.parseJoin()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			stmt.Joins = append(stmt.Joins, join)
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
		if p.accept(tokKeyword, "OFFSET") {
			off, err := p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
			stmt.Offset = off
		}
	}
	if p.at(tokKeyword, "UNION") {
		return nil, fmt.Errorf("%w: UNION", ErrUnsupported)
	}
	return stmt, nil
}

func (p *parser) parseIntLiteral() (int, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.val)
	if err != nil {
		return 0, p.errf("invalid integer %q", t.val)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// table.* or bare *
	if p.at(tokOp, "*") {
		p.next()
		return SelectItem{Expr: &StarExpr{}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		t := p.next()
		if t.kind != tokIdent && t.kind != tokQuotedIdent && t.kind != tokString {
			return SelectItem{}, p.errf("expected alias after AS, found %q", t.val)
		}
		item.Alias = t.val
	} else if p.at(tokIdent, "") || p.at(tokQuotedIdent, "") {
		item.Alias = p.next().val
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.next()
	if t.kind != tokIdent && t.kind != tokQuotedIdent {
		return TableRef{}, p.errf("expected table name, found %q", t.val)
	}
	ref := TableRef{Name: t.val}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if p.at(tokIdent, "") || p.at(tokQuotedIdent, "") {
		ref.Alias = p.next().val
	}
	return ref, nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tokIdent && t.kind != tokQuotedIdent {
		return "", p.errf("expected identifier, found %q", t.val)
	}
	return t.val, nil
}

func (p *parser) parseJoin() (JoinClause, bool, error) {
	kind := ""
	switch {
	case p.accept(tokKeyword, "JOIN"):
		kind = "INNER"
	case p.at(tokKeyword, "INNER"):
		p.next()
		if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
			return JoinClause{}, false, err
		}
		kind = "INNER"
	case p.at(tokKeyword, "CROSS"):
		p.next()
		if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
			return JoinClause{}, false, err
		}
		kind = "CROSS"
	case p.at(tokKeyword, "LEFT"), p.at(tokKeyword, "RIGHT"):
		kind = p.next().val
		p.accept(tokKeyword, "OUTER")
		if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
			return JoinClause{}, false, err
		}
	case p.at(tokOp, ","):
		// Implicit cross join: FROM a, b
		p.next()
		kind = "CROSS"
	default:
		return JoinClause{}, false, nil
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return JoinClause{}, false, err
	}
	join := JoinClause{Kind: kind, Table: ref}
	if p.accept(tokKeyword, "ON") {
		cond, err := p.parseExpr()
		if err != nil {
			return JoinClause{}, false, err
		}
		join.On = cond
	} else if kind != "CROSS" {
		return JoinClause{}, false, p.errf("JOIN requires ON condition")
	}
	return join, true, nil
}

// parseExpr parses with precedence: OR < AND < NOT < comparison < additive
// < multiplicative < unary < primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokOp, "="), p.at(tokOp, "<"), p.at(tokOp, ">"),
			p.at(tokOp, "<="), p.at(tokOp, ">="), p.at(tokOp, "<>"), p.at(tokOp, "!="):
			op := p.next().val
			if op == "!=" {
				op = "<>"
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, Left: left, Right: right}
		case p.at(tokKeyword, "LIKE"):
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "LIKE", Left: left, Right: right}
		case p.at(tokKeyword, "IS"):
			p.next()
			not := p.accept(tokKeyword, "NOT")
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{Expr: left, Not: not}
		case p.at(tokKeyword, "IN"):
			p.next()
			in, err := p.parseInTail(left, false)
			if err != nil {
				return nil, err
			}
			left = in
		case p.at(tokKeyword, "BETWEEN"):
			p.next()
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BetweenExpr{Expr: left, Lo: lo, Hi: hi}
		case p.at(tokKeyword, "NOT"):
			// expr NOT IN / NOT LIKE / NOT BETWEEN
			save := p.pos
			p.next()
			switch {
			case p.accept(tokKeyword, "IN"):
				in, err := p.parseInTail(left, true)
				if err != nil {
					return nil, err
				}
				left = in
			case p.accept(tokKeyword, "LIKE"):
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &UnaryExpr{Op: "NOT", Expr: &BinaryExpr{Op: "LIKE", Left: left, Right: right}}
			case p.accept(tokKeyword, "BETWEEN"):
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokKeyword, "AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &BetweenExpr{Expr: left, Lo: lo, Hi: hi, Not: true}
			default:
				p.pos = save
				return left, nil
			}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseInTail(left Expr, not bool) (Expr, error) {
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	if p.at(tokKeyword, "SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &InExpr{Expr: left, Sub: sub, Not: not}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return &InExpr{Expr: left, List: list, Not: not}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "+") || p.at(tokOp, "-") || p.at(tokOp, "||") {
		op := p.next().val
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "*") || p.at(tokOp, "/") || p.at(tokOp, "%") {
		op := p.next().val
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Expr: e}, nil
	}
	if p.accept(tokOp, "+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.ContainsAny(t.val, ".eE") {
			f, err := strconv.ParseFloat(t.val, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", t.val)
			}
			return &LiteralExpr{Val: Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.val, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.val, 64)
			if ferr != nil {
				return nil, p.errf("invalid number %q", t.val)
			}
			return &LiteralExpr{Val: Float(f)}, nil
		}
		return &LiteralExpr{Val: Int(i)}, nil
	case t.kind == tokString:
		p.next()
		return &LiteralExpr{Val: Text(t.val)}, nil
	case t.kind == tokKeyword && t.val == "NULL":
		p.next()
		return &LiteralExpr{Val: Null()}, nil
	case t.kind == tokKeyword && t.val == "TRUE":
		p.next()
		return &LiteralExpr{Val: Bool(true)}, nil
	case t.kind == tokKeyword && t.val == "FALSE":
		p.next()
		return &LiteralExpr{Val: Bool(false)}, nil
	case t.kind == tokKeyword && t.val == "CAST":
		return p.parseCast()
	case t.kind == tokKeyword && t.val == "CASE":
		return p.parseCase()
	case t.kind == tokKeyword && t.val == "EXISTS":
		p.next()
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Stmt: sub}, nil
	case t.kind == tokOp && t.val == "(":
		p.next()
		if p.at(tokKeyword, "SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Stmt: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent || t.kind == tokQuotedIdent:
		return p.parseIdentExpr()
	}
	return nil, p.errf("unexpected token %q", t.val)
}

func (p *parser) parseCast() (Expr, error) {
	p.next() // CAST
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "AS"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var k Kind
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		k = KindInt
	case "REAL", "FLOAT", "DOUBLE", "DECIMAL", "NUMERIC":
		k = KindFloat
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		k = KindText
	case "BOOL", "BOOLEAN":
		k = KindBool
	default:
		return nil, p.errf("unknown cast type %q", name)
	}
	// Tolerate VARCHAR(255)-style length arguments.
	if p.accept(tokOp, "(") {
		if _, err := p.expect(tokNumber, ""); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return &CastExpr{Expr: e, Type: k}, nil
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // CASE
	ce := &CaseExpr{}
	for p.accept(tokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if _, err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) parseIdentExpr() (Expr, error) {
	first := p.next()
	// Function call?
	if first.kind == tokIdent && p.at(tokOp, "(") {
		return p.parseFuncCall(strings.ToUpper(first.val))
	}
	// Qualified reference table.column or table.*
	if p.accept(tokOp, ".") {
		if p.accept(tokOp, "*") {
			return &StarExpr{Table: first.val}, nil
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnExpr{Table: first.val, Name: col}, nil
	}
	return &ColumnExpr{Name: first.val}, nil
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	p.next() // (
	fe := &FuncExpr{Name: name}
	if p.accept(tokOp, "*") {
		fe.Star = true
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		if name != "COUNT" {
			return nil, p.errf("%s(*) is not valid", name)
		}
		return fe, nil
	}
	if p.accept(tokKeyword, "DISTINCT") {
		fe.Distinct = true
	}
	if !p.at(tokOp, ")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fe.Args = append(fe.Args, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return fe, nil
}
