package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// plancache_test.go covers the prepared-statement cache: normalized sharing,
// invalidation on catalog change, cap behaviour, hit determinism, and a
// 32-goroutine mixed prepare/execute/invalidate stress run under -race.

func TestPlanCacheNormalizedSharing(t *testing.T) {
	db := diffDB()
	// Three spellings of the same statement: canonical, extra whitespace,
	// and explicitly quoted identifiers. All must normalize identically and
	// share one *planEntry.
	spellings := []string{
		`SELECT id, n FROM t1 WHERE id = 3`,
		`SELECT   id ,  n   FROM t1   WHERE id = 3`,
		`SELECT "id", "n" FROM "t1" WHERE "id" = 3`,
	}
	norm0, err := Normalize(spellings[0])
	if err != nil {
		t.Fatal(err)
	}
	var first *planEntry
	for i, q := range spellings {
		n, err := Normalize(q)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", q, err)
		}
		if n != norm0 {
			t.Fatalf("spelling %d normalizes to %q, want %q", i, n, norm0)
		}
		e, err := db.plans.lookup(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if e.norm != norm0 {
			t.Fatalf("entry.norm = %q, want %q", e.norm, norm0)
		}
		if first == nil {
			first = e
		} else if e != first {
			t.Fatalf("spelling %d got a distinct plan entry; want shared pointer", i)
		}
	}
	st := db.PlanCacheStats()
	if st.Entries != 1 {
		t.Fatalf("Entries = %d after 3 spellings of one statement, want 1", st.Entries)
	}
	if st.Hits < 2 {
		t.Fatalf("Hits = %d, want >= 2 (normalized sharing should hit)", st.Hits)
	}

	// A structurally different statement must not share.
	other, err := db.plans.lookup(db, `SELECT id, n FROM t1 WHERE id = 4`)
	if err != nil {
		t.Fatal(err)
	}
	if other == first {
		t.Fatal("distinct statements share a plan entry")
	}
}

func TestPlanCacheHitDeterminism(t *testing.T) {
	db := diffDB()
	queries := []string{
		`SELECT id, COUNT(*), SUM(n) FROM t1 GROUP BY id ORDER BY 1`,
		`SELECT a.id, b.tag FROM t1 a JOIN t2 b ON a.id = b.id ORDER BY 1, 2`,
		`SELECT s FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.id = t1.id)`,
		`SELECT n AS val FROM t1 ORDER BY val DESC LIMIT 5`,
	}
	cold := make([]string, len(queries))
	for i, q := range queries {
		res, err := Query(db, q)
		if err != nil {
			t.Fatalf("cold %q: %v", q, err)
		}
		cold[i] = res.String()
	}
	before := db.PlanCacheStats()
	// Every query again, twice: all cache hits, bit-identical output.
	for pass := 0; pass < 2; pass++ {
		for i, q := range queries {
			res, err := Query(db, q)
			if err != nil {
				t.Fatalf("warm %q: %v", q, err)
			}
			if res.String() != cold[i] {
				t.Fatalf("warm result differs from cold for %q:\ncold:\n%s\nwarm:\n%s", q, cold[i], res.String())
			}
		}
	}
	after := db.PlanCacheStats()
	if after.Misses != before.Misses {
		t.Fatalf("warm passes caused %d new misses; want 0", after.Misses-before.Misses)
	}
	if got, want := after.Hits-before.Hits, uint64(2*len(queries)); got != want {
		t.Fatalf("warm passes produced %d hits, want %d", got, want)
	}
}

func TestPlanCacheInvalidationOnCatalogChange(t *testing.T) {
	db := diffDB()
	const q = `SELECT COUNT(*) FROM t2`
	res, err := Query(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if db.PlanCacheStats().Entries == 0 {
		t.Fatal("query did not populate the plan cache")
	}

	// Replace t2 with three rows; the cached plan must not survive.
	t2 := NewTable("t2", "id", "v", "tag")
	t2.MustAppendRow(Int(1), Float(1), Text("x"))
	t2.MustAppendRow(Int(2), Float(2), Text("y"))
	t2.MustAppendRow(Int(3), Float(3), Text("z"))
	db.AddTable(t2)

	if got := db.PlanCacheStats().Entries; got != 0 {
		t.Fatalf("Entries = %d after AddTable, want 0 (catalog change must flush)", got)
	}
	res2, err := Query(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows[0][0].String() != "3" {
		t.Fatalf("post-invalidation COUNT(*) = %s, want 3 (old: %s)", res2.Rows[0][0], res.Rows[0][0])
	}

	// Schema change: t2 loses column v. The cached join plan referencing v
	// must yield the row engine's unknown-column error, not stale data.
	const qv = `SELECT v FROM t2 ORDER BY 1`
	if _, err := Query(db, qv); err != nil {
		t.Fatal(err)
	}
	t2b := NewTable("t2", "id", "tag")
	t2b.MustAppendRow(Int(1), Text("x"))
	db.AddTable(t2b)
	_, qErr := Query(db, qv)
	stmt, _ := Parse(qv)
	_, rowErr := Exec(db, stmt)
	if rowErr == nil {
		t.Fatal("row engine accepted a dropped column")
	}
	if qErr == nil || qErr.Error() != rowErr.Error() {
		t.Fatalf("post-schema-change error mismatch:\nrow:   %v\nquery: %v", rowErr, qErr)
	}

	// InvalidatePlans is the manual form of the same flush.
	if _, err := Query(db, q); err != nil {
		t.Fatal(err)
	}
	db.InvalidatePlans()
	if got := db.PlanCacheStats().Entries; got != 0 {
		t.Fatalf("Entries = %d after InvalidatePlans, want 0", got)
	}
}

func TestPlanCacheCapFlush(t *testing.T) {
	db := diffDB()
	// Drive well past the cap with distinct statements; the cache must stay
	// bounded and every query must still answer correctly.
	for i := 0; i < planCacheCap+40; i++ {
		q := fmt.Sprintf("SELECT COUNT(*) FROM t1 WHERE id = %d", i%7)
		res, err := Query(db, q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("%q: %d rows", q, len(res.Rows))
		}
		// Distinct LIMIT makes every statement unique past the cap.
		if _, err := Query(db, fmt.Sprintf("SELECT id FROM t1 LIMIT %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.PlanCacheStats().Entries; got > planCacheCap {
		t.Fatalf("Entries = %d exceeds cap %d", got, planCacheCap)
	}
}

func TestPlanCacheParseErrorsNotCached(t *testing.T) {
	db := diffDB()
	for i := 0; i < 3; i++ {
		if _, err := Query(db, "SELEC nonsense FROM"); err == nil {
			t.Fatal("malformed statement accepted")
		}
	}
	if got := db.PlanCacheStats().Entries; got != 0 {
		t.Fatalf("Entries = %d after parse errors, want 0", got)
	}
}

// TestPlanCacheConcurrentStress runs 32 goroutines mixing prepared-statement
// lookups, query execution, catalog replacement, and explicit invalidation.
// Stable-table queries are asserted against row-oracle results computed up
// front; the volatile table is always replaced with identical content so its
// query has a stable answer no matter which catalog version serves it.
// Run with -race (make check does).
func TestPlanCacheConcurrentStress(t *testing.T) {
	db := diffDB()
	freshVolatile := func() *Table {
		v := NewTable("volatile", "id", "x")
		for i := 0; i < 8; i++ {
			v.MustAppendRow(Int(int64(i)), Int(int64(i*i)))
		}
		return v
	}
	db.AddTable(freshVolatile())

	stable := []string{
		`SELECT id, n FROM t1 WHERE id = 2 ORDER BY 2`,
		`SELECT id, COUNT(*) FROM t1 GROUP BY id ORDER BY 1`,
		`SELECT a.id, b.tag FROM t1 a JOIN t2 b ON a.id = b.id ORDER BY 1, 2`,
		`SELECT SUM(n), AVG(f) FROM t1`,
		`SELECT s FROM t1 WHERE s LIKE '%a%' ORDER BY 1`,
		`SELECT id FROM t1 WHERE id IN (SELECT id FROM t2 WHERE v > 0) ORDER BY 1`,
		`SELECT n AS val FROM t1 WHERE n BETWEEN -20 AND 40 ORDER BY val LIMIT 9`,
		`SELECT COUNT(*) FROM t1 a LEFT JOIN t2 b ON a.id = b.id`,
	}
	expected := make(map[string]string, len(stable)+1)
	for _, q := range stable {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Exec(db, stmt) // row oracle, bypassing the cache
		if err != nil {
			t.Fatal(err)
		}
		expected[q] = res.String()
	}
	const volQ = `SELECT COUNT(*), SUM(x) FROM volatile`
	{
		stmt, _ := Parse(volQ)
		res, err := Exec(db, stmt)
		if err != nil {
			t.Fatal(err)
		}
		expected[volQ] = res.String()
	}

	const goroutines = 32
	const iters = 200
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + gi)))
			for it := 0; it < iters; it++ {
				switch {
				case gi == 0 && it%5 == 0:
					// Catalog churn: replace volatile with identical content.
					db.AddTable(freshVolatile())
				case gi == 1 && it%7 == 0:
					db.InvalidatePlans()
				case gi == 2 && it%3 == 0:
					_ = db.PlanCacheStats()
					// Prepare without executing.
					if _, err := db.plans.lookup(db, stable[rng.Intn(len(stable))]); err != nil {
						errc <- err
						return
					}
				default:
					q := volQ
					if rng.Intn(4) != 0 {
						q = stable[rng.Intn(len(stable))]
					}
					res, err := Query(db, q)
					if err != nil {
						errc <- fmt.Errorf("goroutine %d: %q: %w", gi, q, err)
						return
					}
					if got := res.String(); got != expected[q] {
						errc <- fmt.Errorf("goroutine %d: %q diverged under concurrency:\ngot:\n%s\nwant:\n%s", gi, q, got, expected[q])
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// After the dust settles every stable query must still be correct and
	// the second run of each must be a cache hit.
	db.InvalidatePlans()
	for _, q := range stable {
		if res, err := Query(db, q); err != nil || res.String() != expected[q] {
			t.Fatalf("post-stress %q: err=%v", q, err)
		}
	}
	before := db.PlanCacheStats()
	for _, q := range stable {
		if res, err := Query(db, q); err != nil || res.String() != expected[q] {
			t.Fatalf("post-stress warm %q: err=%v", q, err)
		}
	}
	after := db.PlanCacheStats()
	if after.Hits-before.Hits != uint64(len(stable)) {
		t.Fatalf("post-stress warm pass: %d hits, want %d", after.Hits-before.Hits, len(stable))
	}
}

// TestPlanCacheSelectiveInvalidation is the regression test for the
// ingestion fix: catalog churn on one table must evict only the cached plans
// that reference it. Before the fix, any AddTable flushed the whole cache,
// so every dataset ingestion cold-started every other table's hot queries.
func TestPlanCacheSelectiveInvalidation(t *testing.T) {
	db := diffDB()
	stableQueries := []string{
		`SELECT id, n FROM t1 WHERE id = 2 ORDER BY 2`,
		`SELECT COUNT(*), SUM(n) FROM t1`,
		`SELECT a.id, b.tag FROM t1 a JOIN t2 b ON a.id = b.id ORDER BY 1, 2`,
	}
	for _, q := range stableQueries {
		if _, err := Query(db, q); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
	entries := db.PlanCacheStats().Entries
	if entries != len(stableQueries) {
		t.Fatalf("Entries = %d, want %d", entries, len(stableQueries))
	}

	// Churn an unrelated table repeatedly: the stable entries must survive
	// and keep hitting.
	for i := 0; i < 5; i++ {
		side := NewTable("ingested", "k", "v")
		side.MustAppendRow(Int(int64(i)), Text("x"))
		db.AddTable(side)
	}
	if got := db.PlanCacheStats().Entries; got != entries {
		t.Fatalf("Entries = %d after unrelated churn, want %d (selective invalidation)", got, entries)
	}
	before := db.PlanCacheStats()
	for _, q := range stableQueries {
		if _, err := Query(db, q); err != nil {
			t.Fatalf("warm %q: %v", q, err)
		}
	}
	after := db.PlanCacheStats()
	if got, want := after.Hits-before.Hits, uint64(len(stableQueries)); got != want {
		t.Fatalf("unrelated churn broke warm hits: %d hits, want %d", got, want)
	}

	// Churning a referenced table drops exactly the entries that mention it
	// — including the join — and leaves the rest.
	if _, err := Query(db, `SELECT COUNT(*) FROM ingested`); err != nil {
		t.Fatal(err)
	}
	t2 := NewTable("t2", "id", "v", "tag")
	t2.MustAppendRow(Int(1), Float(1), Text("x"))
	db.AddTable(t2)
	st := db.PlanCacheStats()
	// t1-only entries (2) plus the ingested entry survive; the t1⋈t2 join is gone.
	if st.Entries != 3 {
		t.Fatalf("Entries = %d after t2 churn, want 3", st.Entries)
	}
	res, err := Query(db, `SELECT a.id, b.tag FROM t1 a JOIN t2 b ON a.id = b.id ORDER BY 1, 2`)
	if err != nil {
		t.Fatal(err)
	}
	// t1 has four rows with id=1; the fresh t2 has exactly one matching row.
	if len(res.Rows) != 4 {
		t.Fatalf("recompiled join returned %d rows, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].String() != "x" {
			t.Fatalf("recompiled join read a stale t2 row: %v", row)
		}
	}

	// RemoveTable also invalidates only its own entries, and queries against
	// the removed table now fail like the row engine says they should.
	db.RemoveTable("ingested")
	if _, err := Query(db, `SELECT COUNT(*) FROM ingested`); err == nil {
		t.Fatal("query against removed table succeeded")
	}
	before = db.PlanCacheStats()
	for _, q := range stableQueries[:2] {
		if _, err := Query(db, q); err != nil {
			t.Fatalf("post-remove warm %q: %v", q, err)
		}
	}
	after = db.PlanCacheStats()
	if got, want := after.Hits-before.Hits, uint64(2); got != want {
		t.Fatalf("RemoveTable broke unrelated warm hits: %d, want %d", got, want)
	}

	// A subquery reference counts: churning the inner table must stale the
	// outer statement even though it scans only t1.
	sub := `SELECT COUNT(*) FROM t1 WHERE id IN (SELECT id FROM t2 WHERE v > 0)`
	first, err := Query(db, sub)
	if err != nil {
		t.Fatal(err)
	}
	t2c := NewTable("t2", "id", "v", "tag")
	t2c.MustAppendRow(Int(999), Float(1), Text("q"))
	db.AddTable(t2c)
	second, err := Query(db, sub)
	if err != nil {
		t.Fatal(err)
	}
	if second.String() == first.String() {
		t.Fatalf("subquery result did not change after inner-table churn: %s", second.String())
	}
}

// TestExplainQueryPushdown pins the explain surface the pushdown property
// tests rely on: safe predicates push into scans, unsafe ones stay residual,
// and the LEFT-join right side is never a push target.
func TestExplainQueryPushdown(t *testing.T) {
	db := diffDB()
	cases := []struct {
		sql  string
		want []string
	}{
		{`SELECT id FROM t1 WHERE n > 0`, []string{"scan t1 pushed=1", "residual=0"}},
		{`SELECT id FROM t1 WHERE n + 1 > 0`, []string{"scan t1 pushed=0", "residual=1"}},
		{`SELECT a.id FROM t1 a JOIN t2 b ON a.id = b.id WHERE a.n > 0 AND b.v < 5`,
			[]string{"scan t1 pushed=1", "inner join (hash) t2 pushed=1"}},
		{`SELECT a.id FROM t1 a LEFT JOIN t2 b ON a.id = b.id WHERE a.n > 0`,
			[]string{"scan t1 pushed=1", "left join (hash) t2 pushed=0"}},
		{`SELECT COUNT(*) FROM t1 a JOIN t2 b ON a.n > b.v`, []string{"inner join (nested-loop) t2"}},
	}
	for _, c := range cases {
		got, err := ExplainQuery(db, c.sql)
		if err != nil {
			t.Fatalf("%q: %v", c.sql, err)
		}
		for _, w := range c.want {
			if !strings.Contains(got, w) {
				t.Errorf("%q:\nexplain:\n%swant substring %q", c.sql, got, w)
			}
		}
	}
}
