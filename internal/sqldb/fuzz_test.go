package sqldb

import (
	"strings"
	"testing"
)

// FuzzParse drives the lexer/parser with arbitrary input; the invariant is
// "no panics, and whatever parses renders back to SQL that parses again".
// The seed corpus covers every statement shape; `go test` runs the seeds,
// `go test -fuzz=FuzzParse ./internal/sqldb` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT * FROM t`,
		`SELECT "a b" FROM "t t" WHERE x = 'y''z'`,
		`SELECT COUNT(DISTINCT a), SUM(b) FROM t GROUP BY c HAVING COUNT(*) > 1`,
		`SELECT a FROM t1 JOIN t2 ON t1.x = t2.x LEFT JOIN t3 ON t2.y = t3.y`,
		`SELECT (SELECT MAX(v) FROM u) - MIN(w) FROM t ORDER BY 1 DESC LIMIT 5 OFFSET 2`,
		`SELECT CASE WHEN a BETWEEN 1 AND 2 THEN 'x' ELSE 'y' END FROM t`,
		`SELECT CAST(a AS REAL) / 0, b % 3, -c FROM t WHERE d IN (1, 2) OR e LIKE '%q%'`,
		`SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)`,
		`SELECT 1e9, .5, 'unicode ✓'`,
		`SELECT -- comment
		 a FROM t;`,
		"SELECT `tick` FROM `t`",
		`SELECT a FROM t WHERE b IS NOT NULL AND NOT c`,
		// Shapes the verification prompt template elicits from the models
		// (see internal/prompts): percentage claims as a ratio of counting
		// subqueries, aggregates over joins, and correlated filters.
		`SELECT (SELECT COUNT(a) FROM t WHERE b = 1) * 100.0 / (SELECT COUNT(a) FROM t)`,
		`SELECT SUM(t1.b) FROM t1 JOIN t2 ON t1.k = t2.k WHERE t2.region = 'EU'`,
		`SELECT COUNT(*) FROM orders o JOIN items i ON o.id = i.order_id GROUP BY o.id HAVING SUM(i.qty) > 10`,
		`SELECT AVG(v) FROM t WHERE k IN (SELECT k FROM u WHERE u.flag = 1)`,
		`SELECT (SELECT COUNT(x) FROM t WHERE y = 'a' AND z = 'b') * 100.0 / (SELECT COUNT(x) FROM t WHERE z = 'b')`,
		`)(*&^%$#@!`,
		`SELECT`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := stmt.SQL()
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("rendered SQL does not re-parse:\ninput:    %q\nrendered: %q\nerr: %v", src, rendered, err)
		}
	})
}

// FuzzQuery additionally executes parsed statements against a fixed
// database; the invariant is "no panics" regardless of query semantics.
func FuzzQuery(f *testing.F) {
	db := NewDatabase("fz")
	tab := NewTable("t", "a", "b", "c")
	tab.MustAppendRow(Text("x"), Int(1), Float(1.5))
	tab.MustAppendRow(Text("y"), Int(2), Null())
	tab.MustAppendRow(Null(), Int(3), Float(-2.5))
	db.AddTable(tab)
	seeds := []string{
		`SELECT a, SUM(b) FROM t GROUP BY a ORDER BY 2 DESC`,
		`SELECT COUNT(*) FROM t t1 JOIN t t2 ON t1.b = t2.b`,
		`SELECT b / 0, b % 0 FROM t`,
		`SELECT MAX(a) FROM t WHERE c IS NULL`,
		`SELECT DISTINCT a FROM t WHERE b BETWEEN -5 AND 5`,
		`SELECT CASE WHEN a = 'x' THEN b END FROM t LIMIT 2 OFFSET 9`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 500 || strings.Count(src, "JOIN") > 3 {
			return // bound worst-case cross products
		}
		res, err := Query(db, src)
		if err != nil {
			return
		}
		_ = res.String()
	})
}

// FuzzParseAndExec separates the two stages FuzzQuery fuses: whatever Parse
// accepts must execute against a small multi-table catalog without panicking,
// and the statement's rendered SQL must execute to the same rows — so the
// parse/render/execute triangle stays consistent on fuzzer-mangled inputs.
// It doubles as a differential fuzz target: every statement also runs through
// the vectorized engine, which must never succeed where the row oracle fails
// and must agree bit-for-bit when both succeed.
func FuzzParseAndExec(f *testing.F) {
	db := NewDatabase("catalog")
	airlines := NewTable("airlines", "airline", "region", "fatal_accidents")
	airlines.MustAppendRow(Text("Aer Lingus"), Text("EU"), Int(0))
	airlines.MustAppendRow(Text("Malaysia Airlines"), Text("ASIA"), Int(2))
	airlines.MustAppendRow(Text("Qantas"), Null(), Int(0))
	db.AddTable(airlines)
	regions := NewTable("regions", "region", "population")
	regions.MustAppendRow(Text("EU"), Float(744.7))
	regions.MustAppendRow(Text("ASIA"), Float(4561.0))
	db.AddTable(regions)

	seeds := []string{
		`SELECT COUNT(*) FROM airlines WHERE fatal_accidents = 0`,
		`SELECT (SELECT COUNT(airline) FROM airlines WHERE region = 'EU') * 100.0 / (SELECT COUNT(airline) FROM airlines)`,
		`SELECT SUM(a.fatal_accidents) FROM airlines a JOIN regions r ON a.region = r.region WHERE r.population > 1000`,
		`SELECT airline FROM airlines WHERE region IN (SELECT region FROM regions WHERE population < 1000)`,
		`SELECT MAX(population) - MIN(population) FROM regions`,
		`SELECT r.region, COUNT(*) FROM airlines a JOIN regions r ON a.region = r.region GROUP BY r.region ORDER BY 2 DESC`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 500 || strings.Count(src, "JOIN") > 3 {
			return // bound worst-case cross products
		}
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		res, err := Exec(db, stmt)
		vecRes, vecErr := ExecVec(db, stmt)
		if err != nil {
			if vecErr == nil {
				t.Fatalf("vectorized engine succeeded where the row oracle fails:\ninput: %q\nrow err: %v\nvec: %s", src, err, vecRes.String())
			}
			return // semantic rejection is fine; panics are not
		}
		if vecErr == nil && res.String() != vecRes.String() {
			t.Fatalf("engines disagree:\ninput: %q\nrow:\n%s\nvec:\n%s", src, res.String(), vecRes.String())
		}
		rendered := stmt.SQL()
		res2, err := Query(db, rendered)
		if err != nil {
			t.Fatalf("rendered SQL fails to execute:\ninput:    %q\nrendered: %q\nerr: %v", src, rendered, err)
		}
		if res.String() != res2.String() {
			t.Fatalf("rendered SQL changes the result:\ninput:    %q\nrendered: %q\ngot:  %s\nwant: %s",
				src, rendered, res2.String(), res.String())
		}
	})
}

// FuzzPlanCacheKey attacks the plan cache's normalized keying with pairs of
// statements: two statements that normalize to the same text must share one
// plan entry (the prepared-statement sharing guarantee), and two that
// normalize differently must never collide into one entry (key injectivity —
// a collision would silently run the wrong plan).
func FuzzPlanCacheKey(f *testing.F) {
	pairs := [][2]string{
		{`SELECT a FROM t`, `SELECT  a  FROM  t`},
		{`SELECT a FROM t`, `SELECT "a" FROM "t"`},
		{`SELECT a FROM t`, `SELECT b FROM t`},
		{`SELECT a FROM t WHERE b = 1`, `SELECT a FROM t WHERE b = 1.0`},
		{`SELECT a FROM t LIMIT 1`, `SELECT a FROM t LIMIT 1 OFFSET 0`},
		{`SELECT COUNT(*) FROM t`, `SELECT COUNT(a) FROM t`},
		{`SELECT a FROM t ORDER BY 1`, `SELECT a FROM t ORDER BY 1 DESC`},
		{`SELECT 'x'`, `SELECT 'x '`},
	}
	for _, p := range pairs {
		f.Add(p[0], p[1])
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 300 || len(b) > 300 {
			return
		}
		na, errA := Normalize(a)
		nb, errB := Normalize(b)
		if errA != nil || errB != nil {
			return // unparsable input is never cached; nothing to key
		}
		db := NewDatabase("fz")
		tab := NewTable("t", "a", "b", "c")
		tab.MustAppendRow(Text("x"), Int(1), Float(1.5))
		db.AddTable(tab)

		ea, err := db.plans.lookup(db, a)
		if err != nil {
			t.Fatalf("lookup(%q) failed after Normalize succeeded: %v", a, err)
		}
		eb, err := db.plans.lookup(db, b)
		if err != nil {
			t.Fatalf("lookup(%q) failed after Normalize succeeded: %v", b, err)
		}
		if ea.norm != na || eb.norm != nb {
			t.Fatalf("cached entry norm drifted from Normalize:\nentry a: %q vs %q\nentry b: %q vs %q", ea.norm, na, eb.norm, nb)
		}
		if na == nb && ea != eb {
			t.Fatalf("equal normalized text did not share a plan:\na: %q\nb: %q\nnorm: %q", a, b, na)
		}
		if na != nb && ea == eb {
			t.Fatalf("plan cache collision:\na: %q -> %q\nb: %q -> %q", a, na, b, nb)
		}
		// Re-looking up a must hit the same normalized plan.
		ea2, err := db.plans.lookup(db, a)
		if err != nil || ea2.norm != na {
			t.Fatalf("re-lookup of %q: err=%v norm=%q want %q", a, err, ea2.norm, na)
		}
	})
}
