package sqldb

import (
	"strings"
	"testing"
)

// FuzzParse drives the lexer/parser with arbitrary input; the invariant is
// "no panics, and whatever parses renders back to SQL that parses again".
// The seed corpus covers every statement shape; `go test` runs the seeds,
// `go test -fuzz=FuzzParse ./internal/sqldb` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT * FROM t`,
		`SELECT "a b" FROM "t t" WHERE x = 'y''z'`,
		`SELECT COUNT(DISTINCT a), SUM(b) FROM t GROUP BY c HAVING COUNT(*) > 1`,
		`SELECT a FROM t1 JOIN t2 ON t1.x = t2.x LEFT JOIN t3 ON t2.y = t3.y`,
		`SELECT (SELECT MAX(v) FROM u) - MIN(w) FROM t ORDER BY 1 DESC LIMIT 5 OFFSET 2`,
		`SELECT CASE WHEN a BETWEEN 1 AND 2 THEN 'x' ELSE 'y' END FROM t`,
		`SELECT CAST(a AS REAL) / 0, b % 3, -c FROM t WHERE d IN (1, 2) OR e LIKE '%q%'`,
		`SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)`,
		`SELECT 1e9, .5, 'unicode ✓'`,
		`SELECT -- comment
		 a FROM t;`,
		"SELECT `tick` FROM `t`",
		`SELECT a FROM t WHERE b IS NOT NULL AND NOT c`,
		`)(*&^%$#@!`,
		`SELECT`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := stmt.SQL()
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("rendered SQL does not re-parse:\ninput:    %q\nrendered: %q\nerr: %v", src, rendered, err)
		}
	})
}

// FuzzQuery additionally executes parsed statements against a fixed
// database; the invariant is "no panics" regardless of query semantics.
func FuzzQuery(f *testing.F) {
	db := NewDatabase("fz")
	tab := NewTable("t", "a", "b", "c")
	tab.MustAppendRow(Text("x"), Int(1), Float(1.5))
	tab.MustAppendRow(Text("y"), Int(2), Null())
	tab.MustAppendRow(Null(), Int(3), Float(-2.5))
	db.AddTable(tab)
	seeds := []string{
		`SELECT a, SUM(b) FROM t GROUP BY a ORDER BY 2 DESC`,
		`SELECT COUNT(*) FROM t t1 JOIN t t2 ON t1.b = t2.b`,
		`SELECT b / 0, b % 0 FROM t`,
		`SELECT MAX(a) FROM t WHERE c IS NULL`,
		`SELECT DISTINCT a FROM t WHERE b BETWEEN -5 AND 5`,
		`SELECT CASE WHEN a = 'x' THEN b END FROM t LIMIT 2 OFFSET 9`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 500 || strings.Count(src, "JOIN") > 3 {
			return // bound worst-case cross products
		}
		res, err := Query(db, src)
		if err != nil {
			return
		}
		_ = res.String()
	})
}
