package sqldb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// diff_test.go is the differential harness gating the vectorized executor:
// every corpus query and thousands of generated queries run through both the
// row-at-a-time oracle and the vectorized engine. The contract has two
// layers: (1) whenever the vectorized engine succeeds its result must be
// bit-identical to the row engine's (including row order — both engines share
// finishSelect); (2) the production Query path (plan cache + vectorized with
// row fallback) must always be indistinguishable from the row oracle, result
// and error text alike.

// diffDB builds the generator fixture: overlapping join keys, NULLs in every
// column role, a mixed-kind column that defeats typed vectors, integers
// beyond 2^53 that exercise the lossy float64 coercion paths, and an empty
// table for empty-group aggregates.
func diffDB() *Database {
	db := NewDatabase("diff")

	t1 := NewTable("t1", "id", "n", "f", "s", "m")
	names := []Value{Text("alpha"), Text("beta"), Text("Gamma"), Text("delta "), Null()}
	mixed := []Value{Int(7), Text("7"), Float(2.5), Bool(true), Null(), Text("zz"), Int(1 << 55)}
	for i := 0; i < 25; i++ {
		n := Value(Int(int64(i*13%101 - 50)))
		if i%7 == 3 {
			n = Null()
		}
		f := Value(Float(float64(i)*1.25 - 8))
		if i%5 == 4 {
			f = Null()
		}
		t1.MustAppendRow(Int(int64(i%7)), n, f, names[i%len(names)], mixed[i%len(mixed)])
	}
	t1.MustAppendRow(Int(9), Int(9007199254740993), Float(1e15), Text("big"), Int(9007199254740995))
	db.AddTable(t1)

	t2 := NewTable("t2", "id", "v", "tag")
	for i := 0; i < 18; i++ {
		id := Value(Int(int64(i % 9)))
		if i%8 == 6 {
			id = Null()
		}
		v := Value(Float(float64(i*i)/4 - 3))
		if i%6 == 5 {
			v = Null()
		}
		t2.MustAppendRow(id, v, Text([]string{"x", "y", "z"}[i%3]))
	}
	db.AddTable(t2)

	t3 := NewTable("t3", "k", "flag", "z")
	t3.MustAppendRow(Int(1), Bool(true), Text("p"))
	t3.MustAppendRow(Int(2), Bool(false), Text("q"))
	t3.MustAppendRow(Int(3), Bool(true), Null())
	t3.MustAppendRow(Null(), Null(), Text("r"))
	db.AddTable(t3)

	empty := NewTable("empty", "id", "w")
	db.AddTable(empty)
	return db
}

// fuzzFixtureDB rebuilds the FuzzParseAndExec catalog so the stored fuzz
// corpus queries run against the schema they were minted for.
func fuzzFixtureDB() *Database {
	db := NewDatabase("catalog")
	airlines := NewTable("airlines", "airline", "region", "fatal_accidents")
	airlines.MustAppendRow(Text("Aer Lingus"), Text("EU"), Int(0))
	airlines.MustAppendRow(Text("Malaysia Airlines"), Text("ASIA"), Int(2))
	airlines.MustAppendRow(Text("Qantas"), Null(), Int(0))
	db.AddTable(airlines)
	regions := NewTable("regions", "region", "population")
	regions.MustAppendRow(Text("EU"), Float(744.7))
	regions.MustAppendRow(Text("ASIA"), Float(4561.0))
	db.AddTable(regions)
	return db
}

func valueEq(a, b Value) bool {
	return a.Kind() == b.Kind() && a.String() == b.String()
}

func sameResult(a, b *Result) bool {
	if len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if !valueEq(a.Rows[i][j], b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// sortedRows renders each row with kind tags and sorts, for order-normalized
// set comparison diagnostics.
func sortedRows(r *Result) []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		var b strings.Builder
		for _, v := range row {
			fmt.Fprintf(&b, "%d:%s|", v.Kind(), v.String())
		}
		out = append(out, b.String())
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// checkDifferential runs one query through the row oracle, the vectorized
// engine, and the production Query path, asserting the differential
// contract. It reports whether the vectorized engine handled the query
// (coverage accounting).
func checkDifferential(t *testing.T, db *Database, sql string) bool {
	t.Helper()
	stmt, perr := Parse(sql)
	qRes, qErr := Query(db, sql)
	if perr != nil {
		if qErr == nil {
			t.Fatalf("Query accepted a statement the parser rejects:\nsql: %q\nparse err: %v", sql, perr)
		}
		return false
	}
	rowRes, rowErr := Exec(db, stmt)
	vecRes, vecErr := ExecVec(db, stmt)

	// Layer 2: Query is indistinguishable from the row oracle.
	if rowErr != nil {
		if qErr == nil {
			t.Fatalf("Query succeeded where the row oracle errors:\nsql: %q\nrow err: %v\nquery result: %s", sql, rowErr, qRes.String())
		}
		if qErr.Error() != rowErr.Error() {
			t.Fatalf("Query error differs from the row oracle's:\nsql: %q\nrow:   %v\nquery: %v", sql, rowErr, qErr)
		}
	} else {
		if qErr != nil {
			t.Fatalf("Query errored where the row oracle succeeds:\nsql: %q\nerr: %v", sql, qErr)
		}
		if !sameResult(rowRes, qRes) {
			t.Fatalf("Query result differs from the row oracle:\nsql: %q\nrow:\n%s\nquery:\n%s", sql, rowRes.String(), qRes.String())
		}
	}

	// Layer 1: vectorized success implies bit-identical results. A
	// vectorized error is always permitted — the production path falls back
	// — but vectorized success where the row engine fails is a divergence.
	if vecErr != nil {
		return false
	}
	if rowErr != nil {
		t.Fatalf("vectorized engine succeeded where the row oracle errors:\nsql: %q\nrow err: %v\nvec result:\n%s", sql, rowErr, vecRes.String())
	}
	if !sameResult(rowRes, vecRes) {
		t.Fatalf("engines disagree:\nsql: %q\nrow:\n%s\nvec:\n%s\nrow sorted: %v\nvec sorted: %v",
			sql, rowRes.String(), vecRes.String(), sortedRows(rowRes), sortedRows(vecRes))
	}
	return true
}

// corpusQueries collects every stored query under testdata: go-fuzz corpus
// files (both seed-corpus directories and testdata/fuzz) and .sql line files.
func corpusQueries(t *testing.T) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir("testdata", func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, ".sql") {
			for _, line := range strings.Split(string(raw), "\n") {
				line = strings.TrimSpace(line)
				if line != "" && !strings.HasPrefix(line, "--") {
					out = append(out, line)
				}
			}
			return nil
		}
		lines := strings.Split(string(raw), "\n")
		if len(lines) == 0 || !strings.HasPrefix(lines[0], "go test fuzz") {
			return nil
		}
		for _, line := range lines[1:] {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") || !strings.HasSuffix(line, ")") {
				continue
			}
			if s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")")); err == nil {
				out = append(out, s)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no corpus queries found under testdata")
	}
	return out
}

// TestDifferentialCorpus runs every stored testdata query through both
// engines on both fixture catalogs (the corpus' native schema and the
// generator fixture, whose mismatching schema exercises the error surface).
func TestDifferentialCorpus(t *testing.T) {
	queries := corpusQueries(t)
	for _, db := range []*Database{fuzzFixtureDB(), diffDB()} {
		for _, q := range queries {
			checkDifferential(t, db, q)
		}
	}
	t.Logf("corpus: %d queries x 2 catalogs", len(queries))
}

// ---------------------------------------------------------------------------
// Random query generation.

type qgen struct{ rng *rand.Rand }

func (g *qgen) pick(ss ...string) string { return ss[g.rng.Intn(len(ss))] }

func (g *qgen) lit() string {
	switch g.rng.Intn(6) {
	case 0:
		return strconv.Itoa(g.rng.Intn(20) - 5)
	case 1:
		return g.pick("0.5", "-2.25", "100.0", "1.5")
	case 2:
		return g.pick("'alpha'", "'beta'", "'x'", "'7'", "''")
	case 3:
		return "NULL"
	case 4:
		return strconv.Itoa(g.rng.Intn(100))
	default:
		return g.pick("0", "1", "-1")
	}
}

func (g *qgen) col(cols []string) string { return cols[g.rng.Intn(len(cols))] }

// scalar generates a value-producing expression over the given columns.
func (g *qgen) scalar(cols []string, depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return g.col(cols)
		}
		return g.lit()
	}
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.scalar(cols, depth-1), g.pick("+", "-", "*", "/", "%"), g.scalar(cols, depth-1))
	case 1:
		return fmt.Sprintf("%s(%s)", g.pick("ABS", "LOWER", "UPPER", "LENGTH", "TRIM"), g.scalar(cols, depth-1))
	case 2:
		return fmt.Sprintf("COALESCE(%s, %s)", g.scalar(cols, depth-1), g.lit())
	case 3:
		return fmt.Sprintf("CASE WHEN %s THEN %s ELSE %s END", g.pred(cols, depth-1), g.scalar(cols, depth-1), g.scalar(cols, depth-1))
	case 4:
		return fmt.Sprintf("CAST(%s AS %s)", g.scalar(cols, depth-1), g.pick("INTEGER", "REAL", "TEXT"))
	case 5:
		return "-" + g.col(cols)
	default:
		return fmt.Sprintf("NULLIF(%s, %s)", g.scalar(cols, depth-1), g.lit())
	}
}

// pred generates a boolean expression over the given columns.
func (g *qgen) pred(cols []string, depth int) string {
	if depth <= 0 {
		return fmt.Sprintf("(%s %s %s)", g.col(cols), g.pick("=", "<>", "<", "<=", ">", ">="), g.lit())
	}
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.scalar(cols, depth-1), g.pick("=", "<>", "<", "<=", ">", ">="), g.scalar(cols, depth-1))
	case 1:
		return fmt.Sprintf("(%s AND %s)", g.pred(cols, depth-1), g.pred(cols, depth-1))
	case 2:
		return fmt.Sprintf("(%s OR %s)", g.pred(cols, depth-1), g.pred(cols, depth-1))
	case 3:
		return "NOT " + g.pred(cols, depth-1)
	case 4:
		return fmt.Sprintf("%s BETWEEN %s AND %s", g.col(cols), g.lit(), g.lit())
	case 5:
		return fmt.Sprintf("%s %sIN (%s, %s, %s)", g.col(cols), g.pick("", "NOT "), g.lit(), g.lit(), g.lit())
	case 6:
		return fmt.Sprintf("%s IS %sNULL", g.col(cols), g.pick("", "NOT "))
	default:
		return fmt.Sprintf("%s LIKE %s", g.col(cols), g.pick("'a%'", "'%e%'", "'_l%'", "'x'", "'%7%'"))
	}
}

func (g *qgen) agg(cols []string) string {
	switch g.rng.Intn(6) {
	case 0:
		return "COUNT(*)"
	case 1:
		return fmt.Sprintf("COUNT(DISTINCT %s)", g.col(cols))
	default:
		return fmt.Sprintf("%s(%s)", g.pick("COUNT", "SUM", "AVG", "MIN", "MAX"), g.scalar(cols, 1))
	}
}

func (g *qgen) tail(ncols int) string {
	var b strings.Builder
	if g.rng.Intn(3) == 0 {
		fmt.Fprintf(&b, " ORDER BY %d", 1+g.rng.Intn(ncols))
		if g.rng.Intn(2) == 0 {
			b.WriteString(" DESC")
		}
	}
	if g.rng.Intn(4) == 0 {
		fmt.Fprintf(&b, " LIMIT %d", g.rng.Intn(10))
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " OFFSET %d", g.rng.Intn(5))
		}
	}
	return b.String()
}

// query generates one complete SELECT statement against diffDB's schema.
func (g *qgen) query() string {
	t1 := []string{"id", "n", "f", "s", "m"}
	t2 := []string{"id", "v", "tag"}
	joined := []string{"a.id", "a.n", "a.f", "a.s", "b.id", "b.v", "b.tag"}

	switch g.rng.Intn(10) {
	case 0: // simple projection
		distinct := g.pick("", "DISTINCT ")
		items := []string{g.scalar(t1, 2), g.col(t1)}
		q := fmt.Sprintf("SELECT %s%s, %s FROM t1", distinct, items[0], items[1])
		if g.rng.Intn(2) == 0 {
			q += " WHERE " + g.pred(t1, 2)
		}
		return q + g.tail(2)
	case 1: // aliased projection with alias ORDER BY
		q := fmt.Sprintf("SELECT %s AS xx, %s AS yy FROM t1", g.scalar(t1, 2), g.scalar(t1, 1))
		if g.rng.Intn(2) == 0 {
			q += " WHERE " + g.pred(t1, 1)
		}
		return q + fmt.Sprintf(" ORDER BY %s%s LIMIT 12", g.pick("xx", "yy", "1", "2"), g.pick("", " DESC"))
	case 2: // equi join (hash path), pushdown candidates on both sides
		kind := g.pick("JOIN", "LEFT JOIN", "JOIN")
		q := fmt.Sprintf("SELECT a.id, b.tag, %s FROM t1 a %s t2 b ON a.id = b.id", g.scalar(joined, 1), kind)
		if g.rng.Intn(3) != 0 {
			q += " WHERE " + g.pred(joined, 2)
		}
		return q + g.tail(3)
	case 3: // non-equi ON (nested loop) or cross join
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("SELECT COUNT(*) FROM t1 a JOIN t2 b ON %s", g.pred(joined, 1))
		}
		return "SELECT a.id, t3.k FROM t1 a CROSS JOIN t3 WHERE " + g.pred([]string{"a.id", "t3.k", "t3.flag"}, 1) + g.tail(2)
	case 4: // grouped aggregation
		key := g.col(t1)
		q := fmt.Sprintf("SELECT %s, %s FROM t1", key, g.agg(t1))
		if g.rng.Intn(2) == 0 {
			q += " WHERE " + g.pred(t1, 1)
		}
		q += " GROUP BY " + key
		if g.rng.Intn(2) == 0 {
			q += " HAVING " + fmt.Sprintf("%s %s %s", g.agg(t1), g.pick(">", "<", ">=", "="), g.lit())
		}
		return q + g.pick("", " ORDER BY 2 DESC", " ORDER BY 1")
	case 5: // global aggregate, sometimes over the empty table
		tab, cols := "t1", t1
		if g.rng.Intn(4) == 0 {
			tab, cols = "empty", []string{"id", "w"}
		}
		q := fmt.Sprintf("SELECT %s, %s FROM %s", g.agg(cols), g.agg(cols), tab)
		if g.rng.Intn(3) == 0 {
			q += " WHERE " + g.pred(cols, 1)
		}
		return q
	case 6: // IN / EXISTS subqueries (correlated and not)
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("SELECT id, n FROM t1 WHERE id %sIN (SELECT id FROM t2 WHERE %s)%s",
				g.pick("", "NOT "), g.pred(t2, 1), g.tail(2))
		case 1:
			return fmt.Sprintf("SELECT s FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.id = t1.id AND %s)", g.pred(t2, 1))
		default:
			return fmt.Sprintf("SELECT id FROM t1 WHERE %s > (SELECT %s FROM t2)%s", g.col(t1), g.agg(t2), g.tail(1))
		}
	case 7: // scalar subquery in the projection
		return fmt.Sprintf("SELECT id, (SELECT %s FROM t2 WHERE %s) FROM t1 WHERE %s",
			g.agg(t2), g.pred(t2, 1), g.pred(t1, 1))
	case 8: // table-less SELECT
		return fmt.Sprintf("SELECT %s, %s", g.pick("1 + 2", "UPPER('ok')", "CASE WHEN 1 < 2 THEN 'y' ELSE 'n' END", "CAST('3' AS INTEGER)"), g.lit())
	default: // three-way join over normalized-style chains
		return fmt.Sprintf("SELECT a.id, COUNT(*) FROM t1 a JOIN t2 b ON a.id = b.id %s t3 ON %s GROUP BY a.id%s",
			g.pick("JOIN", "LEFT JOIN"), g.pick("b.id = t3.k", "t3.flag"), g.pick("", " ORDER BY 2 DESC, 1"))
	}
}

// TestDifferentialGenerated feeds >=1000 generated queries spanning every
// operator through the differential contract and requires the vectorized
// engine to actually cover a solid majority of them (guarding against the
// fallback silently swallowing the whole workload).
func TestDifferentialGenerated(t *testing.T) {
	const total = 1500
	g := &qgen{rng: rand.New(rand.NewSource(20260808))}
	db := diffDB()
	vec := 0
	for i := 0; i < total; i++ {
		q := g.query()
		if _, err := Parse(q); err != nil {
			t.Fatalf("generator produced unparsable SQL (generator bug): %q: %v", q, err)
		}
		if checkDifferential(t, db, q) {
			vec++
		}
	}
	t.Logf("generated: %d queries, vectorized coverage %d (%.1f%%)", total, vec, 100*float64(vec)/total)
	if vec < total/2 {
		t.Errorf("vectorized engine covered only %d/%d generated queries; expected a majority", vec, total)
	}
}

// TestDifferentialCatalogChurn re-runs a query mix while tables are replaced
// between batches, verifying the Query path stays oracle-identical across
// plan-cache invalidations.
func TestDifferentialCatalogChurn(t *testing.T) {
	g := &qgen{rng: rand.New(rand.NewSource(77))}
	db := diffDB()
	for round := 0; round < 6; round++ {
		for i := 0; i < 40; i++ {
			checkDifferential(t, db, g.query())
		}
		// Replace t2 with a reshuffled copy: same schema, different rows.
		t2 := NewTable("t2", "id", "v", "tag")
		for i := 0; i < 10+round; i++ {
			t2.MustAppendRow(Int(int64((i*3+round)%8)), Float(float64(i)-float64(round)), Text([]string{"x", "q"}[i%2]))
		}
		db.AddTable(t2)
	}
}
