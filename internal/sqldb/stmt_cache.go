package sqldb

import (
	"fmt"
	"strings"
	"sync"
)

// stmt_cache.go is the parsed-plan / prepared-statement cache. Plans are
// keyed twice: by the raw query text (the fast path — a repeated query skips
// the lexer and parser entirely) and by the normalized rendering of the
// parsed statement (stmt.SQL()), so differently spelled but structurally
// identical queries share one compiled plan. Entries carry the catalog
// version they were compiled against; AddTable flushes the cache and bumps
// the version, and a version mismatch at lookup or execution time forces
// recompilation, so no query ever runs against a plan bound to a previous
// schema. All operations are safe under concurrent verify workers.

// planCacheCap bounds the cache; reaching it flushes wholesale (the verify
// workloads cycle through a small set of template-generated queries, so an
// LRU would buy nothing over the simple scheme).
const planCacheCap = 512

// planEntry is one cached prepared statement: the parsed AST, its normalized
// text, and the compiled vectorized plan (nil when the statement is
// row-only).
type planEntry struct {
	stmt    *SelectStmt
	norm    string
	version uint64
	vp      *vecPlan
}

// exec runs the entry: the vectorized plan when present, with unconditional
// fallback to the row-engine oracle on any vectorized-execution error. The
// fallback guarantees callers observe exactly the row engine's results and
// error surface regardless of what the vectorized engine covers.
func (pe *planEntry) exec(db *Database) (*Result, error) {
	if pe.vp != nil {
		if res, err := pe.vp.run(db); err == nil {
			return res, nil
		}
	}
	return Exec(db, pe.stmt)
}

// planCache caches planEntries per database.
type planCache struct {
	mu     sync.Mutex
	byRaw  map[string]*planEntry
	byNorm map[string]*planEntry
	hits   uint64
	misses uint64
}

// lookup returns a prepared entry for sql, parsing and compiling on miss.
// Parse errors are returned verbatim and never cached.
func (c *planCache) lookup(db *Database, sql string) (*planEntry, error) {
	ver := db.Version()
	c.mu.Lock()
	if e, ok := c.byRaw[sql]; ok && e.version == ver {
		c.hits++
		c.mu.Unlock()
		return e, nil
	}
	c.mu.Unlock()

	stmt, err := Parse(sql)
	if err != nil {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return nil, err
	}
	norm := stmt.SQL()

	c.mu.Lock()
	if e, ok := c.byNorm[norm]; ok && e.version == ver {
		// A new raw spelling of an already-compiled plan: register the alias
		// and share the entry.
		c.hits++
		c.ensureMaps()
		if len(c.byRaw) < planCacheCap {
			c.byRaw[sql] = e
		}
		c.mu.Unlock()
		return e, nil
	}
	c.misses++
	c.mu.Unlock()

	e := &planEntry{stmt: stmt, norm: norm, version: ver, vp: compilePlan(db, stmt)}
	if e.vp != nil && e.vp.version != ver {
		// The catalog changed between the version read and compilation;
		// serve the entry uncached. Its execution falls back to the row
		// engine via the stale-plan guard, and the next lookup recompiles.
		return e, nil
	}
	c.mu.Lock()
	if len(c.byRaw) >= planCacheCap || len(c.byNorm) >= planCacheCap {
		c.flushLocked()
	}
	c.ensureMaps()
	c.byRaw[sql] = e
	c.byNorm[norm] = e
	c.mu.Unlock()
	return e, nil
}

func (c *planCache) ensureMaps() {
	if c.byRaw == nil {
		c.byRaw = make(map[string]*planEntry)
		c.byNorm = make(map[string]*planEntry)
	}
}

// flush drops every cached plan (catalog change, cap overflow).
func (c *planCache) flush() {
	c.mu.Lock()
	c.flushLocked()
	c.mu.Unlock()
}

func (c *planCache) flushLocked() {
	c.byRaw = nil
	c.byNorm = nil
}

// PlanCacheStats is a snapshot of a database's plan-cache counters.
type PlanCacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// PlanCacheStats returns cumulative hit/miss counters and the current entry
// count (distinct normalized plans).
func (d *Database) PlanCacheStats() PlanCacheStats {
	c := &d.plans
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.byNorm)}
}

// InvalidatePlans drops all cached plans, forcing the next execution of each
// query to re-parse and re-compile. Benchmarks use it to measure the cold
// path; AddTable invokes the same flush internally.
func (d *Database) InvalidatePlans() {
	d.plans.flush()
}

// Normalize parses sql and renders it back to canonical text — the plan
// cache's sharing key. Two queries normalize equal iff they parse to
// structurally identical statements.
func Normalize(sql string) (string, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return "", err
	}
	return stmt.SQL(), nil
}

// ExplainQuery describes how the vectorized engine would execute sql:
// per-scan pushed-down predicate counts, the join algorithm per join,
// residual filter count, and the pipeline kind. Statements outside the
// vectorizable surface report "row-only". Tests use it to assert that
// predicate pushdown actually occurs.
func ExplainQuery(db *Database, sql string) (string, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return "", err
	}
	p := compilePlan(db, stmt)
	if p == nil {
		return "row-only\n", nil
	}
	return p.explain(), nil
}

func (p *vecPlan) explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vectorized batch=%d\n", p.batch)
	for i, s := range p.scans {
		if i == 0 {
			fmt.Fprintf(&b, "scan %s pushed=%d\n", s.table, len(s.pushed))
			continue
		}
		j := p.joins[i-1]
		alg := "nested-loop"
		if j.hash {
			alg = "hash"
		}
		fmt.Fprintf(&b, "%s join (%s) %s pushed=%d\n",
			strings.ToLower(j.kind), alg, s.table, len(s.pushed))
	}
	fmt.Fprintf(&b, "residual=%d aggregated=%v\n", len(p.residual), p.aggregated)
	return b.String()
}
