package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// stmt_cache.go is the parsed-plan / prepared-statement cache. Plans are
// keyed twice: by the raw query text (the fast path — a repeated query skips
// the lexer and parser entirely) and by the normalized rendering of the
// parsed statement (stmt.SQL()), so differently spelled but structurally
// identical queries share one compiled plan. Entries record the tables they
// reference (including subqueries) and the combined change stamp of those
// tables at compile time; AddTable/RemoveTable drop only the entries that
// reference the changed table, and a stamp mismatch at lookup or execution
// time forces recompilation, so no query ever runs against a plan bound to
// a previous schema while catalog churn on unrelated tables leaves plans
// cached. All operations are safe under concurrent verify workers.

// planCacheCap bounds the cache; reaching it flushes wholesale (the verify
// workloads cycle through a small set of template-generated queries, so an
// LRU would buy nothing over the simple scheme).
const planCacheCap = 512

// planEntry is one cached prepared statement: the parsed AST, its normalized
// text, the (lowercased, sorted) tables the statement references, the
// combined change stamp of those tables at compile time, and the compiled
// vectorized plan (nil when the statement is row-only).
type planEntry struct {
	stmt    *SelectStmt
	norm    string
	tables  []string
	version uint64
	vp      *vecPlan
}

// exec runs the entry: the vectorized plan when present, with unconditional
// fallback to the row-engine oracle on any vectorized-execution error. The
// fallback guarantees callers observe exactly the row engine's results and
// error surface regardless of what the vectorized engine covers.
func (pe *planEntry) exec(db *Database) (*Result, error) {
	if pe.vp != nil {
		if res, err := pe.vp.run(db); err == nil {
			return res, nil
		}
	}
	return Exec(db, pe.stmt)
}

// planCache caches planEntries per database.
type planCache struct {
	mu     sync.Mutex
	byRaw  map[string]*planEntry
	byNorm map[string]*planEntry
	hits   uint64
	misses uint64
}

// lookup returns a prepared entry for sql, parsing and compiling on miss.
// Parse errors are returned verbatim and never cached. An entry is valid
// while the combined change stamp of its referenced tables still equals the
// stamp it was compiled at.
func (c *planCache) lookup(db *Database, sql string) (*planEntry, error) {
	c.mu.Lock()
	if e, ok := c.byRaw[sql]; ok && e.version == db.stampFor(e.tables) {
		c.hits++
		c.mu.Unlock()
		return e, nil
	}
	c.mu.Unlock()

	stmt, err := Parse(sql)
	if err != nil {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return nil, err
	}
	norm := stmt.SQL()

	c.mu.Lock()
	if e, ok := c.byNorm[norm]; ok && e.version == db.stampFor(e.tables) {
		// A new raw spelling of an already-compiled plan: register the alias
		// and share the entry.
		c.hits++
		c.ensureMaps()
		if len(c.byRaw) < planCacheCap {
			c.byRaw[sql] = e
		}
		c.mu.Unlock()
		return e, nil
	}
	c.misses++
	c.mu.Unlock()

	tables := tablesOf(stmt)
	stamp := db.stampFor(tables)
	e := &planEntry{stmt: stmt, norm: norm, tables: tables, version: stamp, vp: compilePlan(db, stmt)}
	if db.stampFor(tables) != stamp {
		// The catalog changed between the stamp read and compilation; serve
		// the entry uncached. Its execution falls back to the row engine via
		// the stale-plan guard, and the next lookup recompiles. The full
		// table set is compared (not vp.version, which stamps only the scan
		// tables) so a racing change to a subquery table is caught too.
		return e, nil
	}
	c.mu.Lock()
	if len(c.byRaw) >= planCacheCap || len(c.byNorm) >= planCacheCap {
		c.flushLocked()
	}
	c.ensureMaps()
	c.byRaw[sql] = e
	c.byNorm[norm] = e
	c.mu.Unlock()
	return e, nil
}

func (c *planCache) ensureMaps() {
	if c.byRaw == nil {
		c.byRaw = make(map[string]*planEntry)
		c.byNorm = make(map[string]*planEntry)
	}
}

// flush drops every cached plan (cap overflow, explicit invalidation).
func (c *planCache) flush() {
	c.mu.Lock()
	c.flushLocked()
	c.mu.Unlock()
}

func (c *planCache) flushLocked() {
	c.byRaw = nil
	c.byNorm = nil
}

// invalidate drops the cached plans that reference the given (lowercased)
// table, leaving every other entry in place. AddTable/RemoveTable call it so
// catalog churn — e.g. dataset ingestion — does not evict the hot plans of
// unrelated tables.
func (c *planCache) invalidate(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for raw, e := range c.byRaw {
		if e.references(table) {
			delete(c.byRaw, raw)
		}
	}
	for norm, e := range c.byNorm {
		if e.references(table) {
			delete(c.byNorm, norm)
		}
	}
}

// references reports whether the entry's statement mentions the table.
// Entry table lists are sorted, but they are short enough that a linear scan
// beats a binary search in practice.
func (pe *planEntry) references(table string) bool {
	for _, t := range pe.tables {
		if t == table {
			return true
		}
	}
	return false
}

// tablesOf collects every table name a statement references — FROM, joins,
// and subqueries anywhere in the expression tree — lowercased, deduplicated,
// and sorted. The plan cache uses the set to scope invalidation.
func tablesOf(stmt *SelectStmt) []string {
	set := make(map[string]bool)
	collectStmtTables(stmt, set)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func collectStmtTables(stmt *SelectStmt, set map[string]bool) {
	if stmt == nil {
		return
	}
	if stmt.From != nil {
		set[strings.ToLower(stmt.From.Name)] = true
	}
	for _, j := range stmt.Joins {
		set[strings.ToLower(j.Table.Name)] = true
		collectExprTables(j.On, set)
	}
	for _, it := range stmt.Items {
		collectExprTables(it.Expr, set)
	}
	collectExprTables(stmt.Where, set)
	for _, e := range stmt.GroupBy {
		collectExprTables(e, set)
	}
	collectExprTables(stmt.Having, set)
	for _, o := range stmt.OrderBy {
		collectExprTables(o.Expr, set)
	}
}

func collectExprTables(e Expr, set map[string]bool) {
	switch x := e.(type) {
	case *UnaryExpr:
		collectExprTables(x.Expr, set)
	case *BinaryExpr:
		collectExprTables(x.Left, set)
		collectExprTables(x.Right, set)
	case *BetweenExpr:
		collectExprTables(x.Expr, set)
		collectExprTables(x.Lo, set)
		collectExprTables(x.Hi, set)
	case *InExpr:
		collectExprTables(x.Expr, set)
		for _, it := range x.List {
			collectExprTables(it, set)
		}
		collectStmtTables(x.Sub, set)
	case *IsNullExpr:
		collectExprTables(x.Expr, set)
	case *FuncExpr:
		for _, a := range x.Args {
			collectExprTables(a, set)
		}
	case *CastExpr:
		collectExprTables(x.Expr, set)
	case *CaseExpr:
		for _, w := range x.Whens {
			collectExprTables(w.Cond, set)
			collectExprTables(w.Then, set)
		}
		collectExprTables(x.Else, set)
	case *SubqueryExpr:
		collectStmtTables(x.Stmt, set)
	case *ExistsExpr:
		collectStmtTables(x.Stmt, set)
	}
}

// PlanCacheStats is a snapshot of a database's plan-cache counters.
type PlanCacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// PlanCacheStats returns cumulative hit/miss counters and the current entry
// count (distinct normalized plans).
func (d *Database) PlanCacheStats() PlanCacheStats {
	c := &d.plans
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.byNorm)}
}

// InvalidatePlans drops all cached plans, forcing the next execution of each
// query to re-parse and re-compile. Benchmarks use it to measure the cold
// path; AddTable/RemoveTable instead invalidate only the entries referencing
// the changed table.
func (d *Database) InvalidatePlans() {
	d.plans.flush()
}

// Normalize parses sql and renders it back to canonical text — the plan
// cache's sharing key. Two queries normalize equal iff they parse to
// structurally identical statements.
func Normalize(sql string) (string, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return "", err
	}
	return stmt.SQL(), nil
}

// ExplainQuery describes how the vectorized engine would execute sql:
// per-scan pushed-down predicate counts, the join algorithm per join,
// residual filter count, and the pipeline kind. Statements outside the
// vectorizable surface report "row-only". Tests use it to assert that
// predicate pushdown actually occurs.
func ExplainQuery(db *Database, sql string) (string, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return "", err
	}
	p := compilePlan(db, stmt)
	if p == nil {
		return "row-only\n", nil
	}
	return p.explain(), nil
}

func (p *vecPlan) explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vectorized batch=%d\n", p.batch)
	for i, s := range p.scans {
		if i == 0 {
			fmt.Fprintf(&b, "scan %s pushed=%d\n", s.table, len(s.pushed))
			continue
		}
		j := p.joins[i-1]
		alg := "nested-loop"
		if j.hash {
			alg = "hash"
		}
		fmt.Fprintf(&b, "%s join (%s) %s pushed=%d\n",
			strings.ToLower(j.kind), alg, s.table, len(s.pushed))
	}
	fmt.Fprintf(&b, "residual=%d aggregated=%v\n", len(p.residual), p.aggregated)
	return b.String()
}
