package sqldb

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Result is a materialized query result.
type Result struct {
	Cols []string
	Rows [][]Value
}

// Scalar extracts the single cell of a 1x1 result.
func (r *Result) Scalar() (Value, error) {
	if len(r.Cols) != 1 || len(r.Rows) != 1 {
		return Null(), fmt.Errorf("%w: got %d column(s) x %d row(s)", ErrNotScalar, len(r.Cols), len(r.Rows))
	}
	return r.Rows[0][0], nil
}

// String renders the result as a compact pipe-separated table.
func (r *Result) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Cols, " | "))
	for _, row := range r.Rows {
		b.WriteByte('\n')
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		b.WriteString(strings.Join(cells, " | "))
	}
	return b.String()
}

// Engine executes parsed SELECT statements. Two implementations exist: Row,
// the original tree-walking row-at-a-time evaluator (kept as the semantic
// oracle), and Vectorized, the columnar batch executor. The differential
// test harness cross-checks one against the other.
type Engine interface {
	// Name identifies the engine in diagnostics and benchmarks.
	Name() string
	// ExecStmt executes stmt against db.
	ExecStmt(db *Database, stmt *SelectStmt) (*Result, error)
}

type rowEngine struct{}

func (rowEngine) Name() string { return "row" }
func (rowEngine) ExecStmt(db *Database, stmt *SelectStmt) (*Result, error) {
	return Exec(db, stmt)
}

type vecEngine struct{}

func (vecEngine) Name() string { return "vectorized" }
func (vecEngine) ExecStmt(db *Database, stmt *SelectStmt) (*Result, error) {
	return ExecVec(db, stmt)
}

// Row is the row-at-a-time oracle engine.
var Row Engine = rowEngine{}

// Vectorized is the columnar batch engine.
var Vectorized Engine = vecEngine{}

// Query parses and executes a SELECT statement against db. Parsed plans are
// cached on the database keyed by normalized query text, and execution runs
// on the vectorized engine; any vectorized-execution error falls back to the
// row-at-a-time oracle, so callers observe exactly the row engine's results
// and error surface.
func Query(db *Database, sql string) (*Result, error) {
	pe, err := db.plans.lookup(db, sql)
	if err != nil {
		return nil, err
	}
	return pe.exec(db)
}

// QueryScalar executes sql and returns its single-cell result. Queries used
// for claim verification must produce exactly one cell (Definition 2.4).
func QueryScalar(db *Database, sql string) (Value, error) {
	res, err := Query(db, sql)
	if err != nil {
		return Null(), err
	}
	return res.Scalar()
}

// Exec executes a parsed statement against db on the row-at-a-time
// evaluator — the semantic oracle the vectorized engine is differentially
// tested against, and the fallback Query runs when vectorized execution
// declines a statement.
func Exec(db *Database, stmt *SelectStmt) (*Result, error) {
	ex := &executor{db: db}
	return ex.execSelect(stmt, nil)
}

// colBind names one slot of a working row: the effective table name (alias)
// and the column name.
type colBind struct {
	table string
	name  string
}

// env gives expression evaluation access to the current working row and,
// through parent, to outer rows of enclosing (correlated) queries.
type env struct {
	binds  []colBind
	row    []Value
	parent *env
}

func (e *env) lookup(table, name string) (Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		for i, b := range cur.binds {
			if table != "" && !strings.EqualFold(b.table, table) {
				continue
			}
			if strings.EqualFold(b.name, name) {
				return cur.row[i], true
			}
		}
	}
	return Null(), false
}

type executor struct {
	db *Database
}

// workingSet is the row stream produced by FROM/JOIN evaluation.
type workingSet struct {
	binds []colBind
	rows  [][]Value
}

func (ex *executor) execSelect(stmt *SelectStmt, outer *env) (*Result, error) {
	ws, err := ex.buildFrom(stmt, outer)
	if err != nil {
		return nil, err
	}
	// WHERE
	if stmt.Where != nil {
		filtered := ws.rows[:0:0]
		for _, row := range ws.rows {
			e := &env{binds: ws.binds, row: row, parent: outer}
			v, err := ex.eval(stmt.Where, e)
			if err != nil {
				return nil, err
			}
			if v.AsBool() {
				filtered = append(filtered, row)
			}
		}
		ws.rows = filtered
	}
	items, err := expandStars(stmt.Items, ws.binds)
	if err != nil {
		return nil, err
	}
	aggregated := len(stmt.GroupBy) > 0 || stmt.Having != nil || itemsHaveAggregate(items)

	var out []outRow
	cols := projectionNames(items)

	if aggregated {
		groups, err := ex.groupRows(stmt, ws, outer)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			genv := &groupEnv{ex: ex, ws: ws, rows: g, outer: outer}
			if stmt.Having != nil {
				hv, err := genv.eval(stmt.Having)
				if err != nil {
					return nil, err
				}
				if !hv.AsBool() {
					continue
				}
			}
			row := outRow{}
			for _, it := range items {
				v, err := genv.eval(it.Expr)
				if err != nil {
					return nil, err
				}
				row.cells = append(row.cells, v)
			}
			for _, o := range stmt.OrderBy {
				v, err := ex.orderKey(o.Expr, items, row.cells, func(e Expr) (Value, error) { return genv.eval(e) })
				if err != nil {
					return nil, err
				}
				row.keys = append(row.keys, v)
			}
			out = append(out, row)
		}
	} else {
		for _, r := range ws.rows {
			e := &env{binds: ws.binds, row: r, parent: outer}
			row := outRow{}
			for _, it := range items {
				v, err := ex.eval(it.Expr, e)
				if err != nil {
					return nil, err
				}
				row.cells = append(row.cells, v)
			}
			for _, o := range stmt.OrderBy {
				v, err := ex.orderKey(o.Expr, items, row.cells, func(x Expr) (Value, error) { return ex.eval(x, e) })
				if err != nil {
					return nil, err
				}
				row.keys = append(row.keys, v)
			}
			out = append(out, row)
		}
		// Table-less SELECT (FROM absent) evaluates once over no bindings.
		if stmt.From == nil {
			e := &env{parent: outer}
			row := outRow{}
			for _, it := range items {
				v, err := ex.eval(it.Expr, e)
				if err != nil {
					return nil, err
				}
				row.cells = append(row.cells, v)
			}
			out = []outRow{row}
		}
	}

	return finishSelect(stmt, cols, out), nil
}

// outRow is one projected row awaiting the DISTINCT/ORDER BY/LIMIT tail.
type outRow struct {
	cells []Value
	keys  []Value // ORDER BY keys
}

// finishSelect applies the statement tail — DISTINCT, ORDER BY, OFFSET,
// LIMIT — and assembles the final result. Both engines share this code so
// ordering, deduplication, and truncation semantics cannot diverge.
func finishSelect(stmt *SelectStmt, cols []string, out []outRow) *Result {
	if stmt.Distinct {
		seen := make(map[string]bool)
		dedup := out[:0:0]
		for _, r := range out {
			var key strings.Builder
			for _, c := range r.cells {
				key.WriteString(c.key())
			}
			if !seen[key.String()] {
				seen[key.String()] = true
				dedup = append(dedup, r)
			}
		}
		out = dedup
	}

	if len(stmt.OrderBy) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			for k, o := range stmt.OrderBy {
				c, ok := out[i].keys[k].Compare(out[j].keys[k])
				if !ok {
					// NULLs sort first ascending.
					in, jn := out[i].keys[k].IsNull(), out[j].keys[k].IsNull()
					if in == jn {
						continue
					}
					if o.Desc {
						return jn
					}
					return in
				}
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	if stmt.Offset > 0 {
		if stmt.Offset >= len(out) {
			out = nil
		} else {
			out = out[stmt.Offset:]
		}
	}
	if stmt.Limit >= 0 && stmt.Limit < len(out) {
		out = out[:stmt.Limit]
	}

	res := &Result{Cols: cols}
	for _, r := range out {
		res.Rows = append(res.Rows, r.cells)
	}
	return res
}

// orderKey evaluates an ORDER BY expression, resolving bare names that match
// a projection alias to the already-computed cell.
func (ex *executor) orderKey(e Expr, items []SelectItem, cells []Value, evalFn func(Expr) (Value, error)) (Value, error) {
	if ce, ok := e.(*ColumnExpr); ok && ce.Table == "" {
		for i, it := range items {
			if strings.EqualFold(it.Alias, ce.Name) {
				return cells[i], nil
			}
		}
	}
	// ORDER BY ordinal (1-based).
	if le, ok := e.(*LiteralExpr); ok {
		if n, ok := le.Val.AsInt(); ok && n >= 1 && int(n) <= len(cells) {
			return cells[n-1], nil
		}
	}
	return evalFn(e)
}

func (ex *executor) buildFrom(stmt *SelectStmt, outer *env) (*workingSet, error) {
	if stmt.From == nil {
		return &workingSet{}, nil
	}
	ws, err := ex.scanTable(*stmt.From)
	if err != nil {
		return nil, err
	}
	for _, j := range stmt.Joins {
		if j.Kind == "RIGHT" {
			return nil, fmt.Errorf("%w: RIGHT JOIN", ErrUnsupported)
		}
		right, err := ex.scanTable(j.Table)
		if err != nil {
			return nil, err
		}
		joined, err := ex.joinSets(ws, right, j, outer)
		if err != nil {
			return nil, err
		}
		ws = joined
	}
	return ws, nil
}

// joinSets combines two working sets under a join clause. Simple equi-joins
// (ON a.x = b.y with one side per input) run as hash joins; everything else
// falls back to a nested loop with the ON predicate as filter.
func (ex *executor) joinSets(left, right *workingSet, j JoinClause, outer *env) (*workingSet, error) {
	joined := &workingSet{binds: append(append([]colBind{}, left.binds...), right.binds...)}
	if li, ri, ok := equiJoinColumns(j.On, left, right); ok {
		// Hash join: build on the right side, probe with the left.
		build := make(map[string][]int, len(right.rows))
		for idx, rr := range right.rows {
			v := rr[ri]
			if v.IsNull() {
				continue // NULL keys never match in SQL equality
			}
			build[joinKey(v)] = append(build[joinKey(v)], idx)
		}
		for _, lr := range left.rows {
			v := lr[li]
			var matches []int
			if !v.IsNull() {
				matches = build[joinKey(v)]
			}
			for _, idx := range matches {
				joined.rows = append(joined.rows, append(append([]Value{}, lr...), right.rows[idx]...))
			}
			if len(matches) == 0 && j.Kind == "LEFT" {
				joined.rows = append(joined.rows, append(append([]Value{}, lr...), nullRow(len(right.binds))...))
			}
		}
		return joined, nil
	}
	for _, lr := range left.rows {
		matched := false
		for _, rr := range right.rows {
			combined := append(append([]Value{}, lr...), rr...)
			if j.On != nil {
				e := &env{binds: joined.binds, row: combined, parent: outer}
				v, err := ex.eval(j.On, e)
				if err != nil {
					return nil, err
				}
				if !v.AsBool() {
					continue
				}
			}
			matched = true
			joined.rows = append(joined.rows, combined)
		}
		if !matched && j.Kind == "LEFT" {
			joined.rows = append(joined.rows, append(append([]Value{}, lr...), nullRow(len(right.binds))...))
		}
	}
	return joined, nil
}

// joinKey hashes a value for equi-join matching with the same numeric
// coercion Value.Compare applies (text "5" equals integer 5), so the hash
// path agrees with the nested-loop path.
func joinKey(v Value) string {
	if f, ok := v.AsFloat(); ok && v.Kind() != KindBool {
		return Float(f).key()
	}
	return v.key()
}

func nullRow(n int) []Value {
	nulls := make([]Value, n)
	for i := range nulls {
		nulls[i] = Null()
	}
	return nulls
}

// equiJoinColumns recognizes ON clauses of the form colA = colB where one
// column resolves in the left set and the other in the right, returning
// their slot indices. ok is false for any other predicate shape (the
// caller then nested-loops).
func equiJoinColumns(on Expr, left, right *workingSet) (li, ri int, ok bool) {
	be, isBin := on.(*BinaryExpr)
	if !isBin || be.Op != "=" {
		return 0, 0, false
	}
	lc, okL := be.Left.(*ColumnExpr)
	rc, okR := be.Right.(*ColumnExpr)
	if !okL || !okR {
		return 0, 0, false
	}
	// Each column must resolve unambiguously in exactly one side.
	tryResolve := func(c *ColumnExpr, ws *workingSet) (int, bool) {
		found := -1
		for i, b := range ws.binds {
			if c.Table != "" && !strings.EqualFold(b.table, c.Table) {
				continue
			}
			if strings.EqualFold(b.name, c.Name) {
				if found >= 0 {
					return -1, false // ambiguous
				}
				found = i
			}
		}
		return found, found >= 0
	}
	if l, okA := tryResolve(lc, left); okA {
		if r, okB := tryResolve(rc, right); okB {
			return l, r, true
		}
	}
	if l, okA := tryResolve(rc, left); okA {
		if r, okB := tryResolve(lc, right); okB {
			return l, r, true
		}
	}
	return 0, 0, false
}

func (ex *executor) scanTable(ref TableRef) (*workingSet, error) {
	t := ex.db.Table(ref.Name)
	if t == nil {
		return nil, fmt.Errorf("%w: %q (available: %s)", ErrUnknownTable, ref.Name,
			strings.Join(ex.db.TableNames(), ", "))
	}
	eff := ref.EffectiveName()
	ws := &workingSet{}
	for _, c := range t.Columns {
		ws.binds = append(ws.binds, colBind{table: eff, name: c.Name})
	}
	ws.rows = t.Rows
	return ws, nil
}

func expandStars(items []SelectItem, binds []colBind) ([]SelectItem, error) {
	var out []SelectItem
	for _, it := range items {
		star, ok := it.Expr.(*StarExpr)
		if !ok {
			out = append(out, it)
			continue
		}
		found := false
		for _, b := range binds {
			if star.Table != "" && !strings.EqualFold(b.table, star.Table) {
				continue
			}
			found = true
			out = append(out, SelectItem{Expr: &ColumnExpr{Table: b.table, Name: b.name}})
		}
		if !found && star.Table != "" {
			return nil, fmt.Errorf("%w: %q for %s.*", ErrUnknownTable, star.Table, star.Table)
		}
	}
	return out, nil
}

func projectionNames(items []SelectItem) []string {
	names := make([]string, len(items))
	for i, it := range items {
		switch {
		case it.Alias != "":
			names[i] = it.Alias
		default:
			if ce, ok := it.Expr.(*ColumnExpr); ok {
				names[i] = ce.Name
			} else {
				names[i] = it.Expr.SQL()
			}
		}
	}
	return names
}

func itemsHaveAggregate(items []SelectItem) bool {
	for _, it := range items {
		if exprHasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	switch v := e.(type) {
	case *FuncExpr:
		if v.IsAggregate() {
			return true
		}
		for _, a := range v.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *UnaryExpr:
		return exprHasAggregate(v.Expr)
	case *BinaryExpr:
		return exprHasAggregate(v.Left) || exprHasAggregate(v.Right)
	case *BetweenExpr:
		return exprHasAggregate(v.Expr) || exprHasAggregate(v.Lo) || exprHasAggregate(v.Hi)
	case *CastExpr:
		return exprHasAggregate(v.Expr)
	case *CaseExpr:
		for _, w := range v.Whens {
			if exprHasAggregate(w.Cond) || exprHasAggregate(w.Then) {
				return true
			}
		}
		if v.Else != nil {
			return exprHasAggregate(v.Else)
		}
	case *InExpr:
		if exprHasAggregate(v.Expr) {
			return true
		}
		for _, it := range v.List {
			if exprHasAggregate(it) {
				return true
			}
		}
	case *IsNullExpr:
		return exprHasAggregate(v.Expr)
	}
	return false
}

// groupRows partitions the working set by the GROUP BY keys. With no GROUP
// BY the entire set forms one group (even when empty, so that aggregates
// over empty inputs produce a row).
func (ex *executor) groupRows(stmt *SelectStmt, ws *workingSet, outer *env) ([][][]Value, error) {
	if len(stmt.GroupBy) == 0 {
		return [][][]Value{ws.rows}, nil
	}
	index := make(map[string]int)
	var groups [][][]Value
	for _, row := range ws.rows {
		e := &env{binds: ws.binds, row: row, parent: outer}
		var key strings.Builder
		for _, g := range stmt.GroupBy {
			v, err := ex.eval(g, e)
			if err != nil {
				return nil, err
			}
			key.WriteString(v.key())
		}
		k := key.String()
		i, ok := index[k]
		if !ok {
			i = len(groups)
			index[k] = i
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], row)
	}
	return groups, nil
}

// groupEnv evaluates expressions in aggregate context: aggregate calls fold
// over the group's rows; other expressions evaluate against the group's
// first row.
type groupEnv struct {
	ex    *executor
	ws    *workingSet
	rows  [][]Value
	outer *env
}

func (g *groupEnv) firstEnv() *env {
	if len(g.rows) == 0 {
		// Empty group (aggregate over empty input): all columns NULL.
		nulls := make([]Value, len(g.ws.binds))
		for i := range nulls {
			nulls[i] = Null()
		}
		return &env{binds: g.ws.binds, row: nulls, parent: g.outer}
	}
	return &env{binds: g.ws.binds, row: g.rows[0], parent: g.outer}
}

func (g *groupEnv) eval(e Expr) (Value, error) {
	switch v := e.(type) {
	case *FuncExpr:
		if v.IsAggregate() {
			return g.evalAggregate(v)
		}
		args := make([]Value, len(v.Args))
		for i, a := range v.Args {
			av, err := g.eval(a)
			if err != nil {
				return Null(), err
			}
			args[i] = av
		}
		return applyScalarFunc(v.Name, args)
	case *UnaryExpr:
		inner, err := g.eval(v.Expr)
		if err != nil {
			return Null(), err
		}
		return applyUnary(v.Op, inner)
	case *BinaryExpr:
		if v.Op == "AND" || v.Op == "OR" {
			l, err := g.eval(v.Left)
			if err != nil {
				return Null(), err
			}
			if v.Op == "AND" && !l.AsBool() {
				return Bool(false), nil
			}
			if v.Op == "OR" && l.AsBool() {
				return Bool(true), nil
			}
			r, err := g.eval(v.Right)
			if err != nil {
				return Null(), err
			}
			return Bool(r.AsBool()), nil
		}
		l, err := g.eval(v.Left)
		if err != nil {
			return Null(), err
		}
		r, err := g.eval(v.Right)
		if err != nil {
			return Null(), err
		}
		return applyBinary(v.Op, l, r)
	case *CastExpr:
		inner, err := g.eval(v.Expr)
		if err != nil {
			return Null(), err
		}
		return castValue(inner, v.Type)
	case *CaseExpr:
		for _, w := range v.Whens {
			c, err := g.eval(w.Cond)
			if err != nil {
				return Null(), err
			}
			if c.AsBool() {
				return g.eval(w.Then)
			}
		}
		if v.Else != nil {
			return g.eval(v.Else)
		}
		return Null(), nil
	default:
		return g.ex.eval(e, g.firstEnv())
	}
}

func (g *groupEnv) evalAggregate(f *FuncExpr) (Value, error) {
	// COUNT(*) counts rows.
	if f.Star {
		return Int(int64(len(g.rows))), nil
	}
	if len(f.Args) != 1 {
		return Null(), fmt.Errorf("%w: %s takes one argument", ErrType, f.Name)
	}
	var vals []Value
	seen := make(map[string]bool)
	for _, row := range g.rows {
		e := &env{binds: g.ws.binds, row: row, parent: g.outer}
		v, err := g.ex.eval(f.Args[0], e)
		if err != nil {
			return Null(), err
		}
		if v.IsNull() {
			continue
		}
		if f.Distinct {
			k := v.key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch f.Name {
	case "COUNT":
		return Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			fv, ok := v.AsFloat()
			if !ok {
				return Null(), fmt.Errorf("%w: %s over non-numeric value %q", ErrType, f.Name, v.String())
			}
			if v.Kind() != KindInt {
				allInt = false
			}
			sum += fv
		}
		if f.Name == "AVG" {
			return Float(sum / float64(len(vals))), nil
		}
		if allInt && sum == math.Trunc(sum) {
			return Int(int64(sum)), nil
		}
		return Float(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := v.Compare(best)
			if !ok {
				return Null(), fmt.Errorf("%w: %s over incomparable values", ErrType, f.Name)
			}
			if (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return Null(), fmt.Errorf("%w: aggregate %s", ErrUnsupported, f.Name)
}

// eval evaluates an expression in row context.
func (ex *executor) eval(e Expr, en *env) (Value, error) {
	switch v := e.(type) {
	case *LiteralExpr:
		return v.Val, nil
	case *ColumnExpr:
		val, ok := en.lookup(v.Table, v.Name)
		if !ok {
			return Null(), fmt.Errorf("%w: %q", ErrUnknownColumn, v.SQL())
		}
		return val, nil
	case *UnaryExpr:
		inner, err := ex.eval(v.Expr, en)
		if err != nil {
			return Null(), err
		}
		return applyUnary(v.Op, inner)
	case *BinaryExpr:
		if v.Op == "AND" || v.Op == "OR" {
			l, err := ex.eval(v.Left, en)
			if err != nil {
				return Null(), err
			}
			if v.Op == "AND" && !l.AsBool() {
				return Bool(false), nil
			}
			if v.Op == "OR" && l.AsBool() {
				return Bool(true), nil
			}
			r, err := ex.eval(v.Right, en)
			if err != nil {
				return Null(), err
			}
			return Bool(r.AsBool()), nil
		}
		l, err := ex.eval(v.Left, en)
		if err != nil {
			return Null(), err
		}
		r, err := ex.eval(v.Right, en)
		if err != nil {
			return Null(), err
		}
		return applyBinary(v.Op, l, r)
	case *BetweenExpr:
		x, err := ex.eval(v.Expr, en)
		if err != nil {
			return Null(), err
		}
		lo, err := ex.eval(v.Lo, en)
		if err != nil {
			return Null(), err
		}
		hi, err := ex.eval(v.Hi, en)
		if err != nil {
			return Null(), err
		}
		c1, ok1 := x.Compare(lo)
		c2, ok2 := x.Compare(hi)
		res := ok1 && ok2 && c1 >= 0 && c2 <= 0
		if v.Not {
			res = !res
		}
		return Bool(res), nil
	case *InExpr:
		return ex.evalIn(v, en)
	case *IsNullExpr:
		x, err := ex.eval(v.Expr, en)
		if err != nil {
			return Null(), err
		}
		res := x.IsNull()
		if v.Not {
			res = !res
		}
		return Bool(res), nil
	case *FuncExpr:
		if v.IsAggregate() {
			return Null(), fmt.Errorf("%w: aggregate %s outside aggregate context", ErrType, v.Name)
		}
		args := make([]Value, len(v.Args))
		for i, a := range v.Args {
			av, err := ex.eval(a, en)
			if err != nil {
				return Null(), err
			}
			args[i] = av
		}
		return applyScalarFunc(v.Name, args)
	case *CastExpr:
		inner, err := ex.eval(v.Expr, en)
		if err != nil {
			return Null(), err
		}
		return castValue(inner, v.Type)
	case *CaseExpr:
		for _, w := range v.Whens {
			c, err := ex.eval(w.Cond, en)
			if err != nil {
				return Null(), err
			}
			if c.AsBool() {
				return ex.eval(w.Then, en)
			}
		}
		if v.Else != nil {
			return ex.eval(v.Else, en)
		}
		return Null(), nil
	case *SubqueryExpr:
		res, err := ex.execSelect(v.Stmt, en)
		if err != nil {
			return Null(), err
		}
		if len(res.Cols) != 1 {
			return Null(), fmt.Errorf("%w: scalar subquery with %d columns", ErrNotScalar, len(res.Cols))
		}
		if len(res.Rows) == 0 {
			return Null(), nil
		}
		if len(res.Rows) > 1 {
			return Null(), fmt.Errorf("%w: scalar subquery returned %d rows", ErrNotScalar, len(res.Rows))
		}
		return res.Rows[0][0], nil
	case *ExistsExpr:
		res, err := ex.execSelect(v.Stmt, en)
		if err != nil {
			return Null(), err
		}
		found := len(res.Rows) > 0
		if v.Not {
			found = !found
		}
		return Bool(found), nil
	case *StarExpr:
		return Null(), fmt.Errorf("%w: * outside SELECT list", ErrSyntax)
	}
	return Null(), fmt.Errorf("%w: unhandled expression %T", ErrUnsupported, e)
}

func (ex *executor) evalIn(v *InExpr, en *env) (Value, error) {
	x, err := ex.eval(v.Expr, en)
	if err != nil {
		return Null(), err
	}
	var candidates []Value
	if v.Sub != nil {
		res, err := ex.execSelect(v.Sub, en)
		if err != nil {
			return Null(), err
		}
		if len(res.Cols) != 1 {
			return Null(), fmt.Errorf("%w: IN subquery with %d columns", ErrNotScalar, len(res.Cols))
		}
		for _, r := range res.Rows {
			candidates = append(candidates, r[0])
		}
	} else {
		for _, item := range v.List {
			c, err := ex.eval(item, en)
			if err != nil {
				return Null(), err
			}
			candidates = append(candidates, c)
		}
	}
	found := false
	for _, c := range candidates {
		if x.Equal(c) {
			found = true
			break
		}
	}
	if v.Not {
		found = !found
	}
	return Bool(found), nil
}

func applyUnary(op string, v Value) (Value, error) {
	switch op {
	case "-":
		switch v.Kind() {
		case KindInt:
			i, _ := v.AsInt()
			return Int(-i), nil
		case KindFloat:
			f, _ := v.AsFloat()
			return Float(-f), nil
		case KindNull:
			return Null(), nil
		}
		return Null(), fmt.Errorf("%w: unary - on %s", ErrType, v.Kind())
	case "NOT":
		if v.IsNull() {
			return Null(), nil
		}
		return Bool(!v.AsBool()), nil
	}
	return Null(), fmt.Errorf("%w: unary operator %q", ErrUnsupported, op)
}

func applyBinary(op string, l, r Value) (Value, error) {
	switch op {
	case "+", "-", "*", "/", "%":
		return applyArith(op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Bool(false), nil
		}
		c, ok := l.Compare(r)
		if !ok {
			// Incomparable values are unequal rather than an error: LLM
			// queries routinely compare text columns to numbers.
			return Bool(op == "<>"), nil
		}
		switch op {
		case "=":
			return Bool(c == 0), nil
		case "<>":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		case ">=":
			return Bool(c >= 0), nil
		}
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Bool(false), nil
		}
		return Bool(likeMatch(l.Text(), r.Text())), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Text(l.Text() + r.Text()), nil
	}
	return Null(), fmt.Errorf("%w: operator %q", ErrUnsupported, op)
}

func applyArith(op string, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	lf, ok1 := l.AsFloat()
	rf, ok2 := r.AsFloat()
	if !ok1 || !ok2 {
		return Null(), fmt.Errorf("%w: %s %s %s", ErrType, l.Kind(), op, r.Kind())
	}
	bothInt := l.Kind() == KindInt && r.Kind() == KindInt
	switch op {
	case "+":
		if bothInt {
			return Int(int64(lf) + int64(rf)), nil
		}
		return Float(lf + rf), nil
	case "-":
		if bothInt {
			return Int(int64(lf) - int64(rf)), nil
		}
		return Float(lf - rf), nil
	case "*":
		if bothInt {
			return Int(int64(lf) * int64(rf)), nil
		}
		return Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return Null(), nil
		}
		// Match DuckDB: division always yields a float, so percentage
		// queries like COUNT(...)*100.0/COUNT(...) behave as expected;
		// integer division of exact multiples stays integral.
		if bothInt && int64(lf)%int64(rf) == 0 {
			return Int(int64(lf) / int64(rf)), nil
		}
		return Float(lf / rf), nil
	case "%":
		if rf == 0 {
			return Null(), nil
		}
		if bothInt {
			return Int(int64(lf) % int64(rf)), nil
		}
		return Float(math.Mod(lf, rf)), nil
	}
	return Null(), fmt.Errorf("%w: operator %q", ErrUnsupported, op)
}

// likeMatch implements SQL LIKE with % and _ wildcards, case-insensitively
// (the common configuration for the engines CEDAR targets).
func likeMatch(s, pattern string) bool {
	s = strings.ToLower(s)
	pattern = strings.ToLower(pattern)
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func applyScalarFunc(name string, args []Value) (Value, error) {
	argc := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%w: %s expects %d argument(s), got %d", ErrType, name, n, len(args))
		}
		return nil
	}
	switch name {
	case "ABS":
		if err := argc(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		if args[0].Kind() == KindInt {
			i, _ := args[0].AsInt()
			if i < 0 {
				i = -i
			}
			return Int(i), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return Null(), fmt.Errorf("%w: ABS of %s", ErrType, args[0].Kind())
		}
		return Float(math.Abs(f)), nil
	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return Null(), fmt.Errorf("%w: ROUND expects 1 or 2 arguments", ErrType)
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return Null(), fmt.Errorf("%w: ROUND of %s", ErrType, args[0].Kind())
		}
		prec := int64(0)
		if len(args) == 2 {
			p, ok := args[1].AsInt()
			if !ok {
				return Null(), fmt.Errorf("%w: ROUND precision", ErrType)
			}
			prec = p
		}
		pow := math.Pow(10, float64(prec))
		r := math.Round(f*pow) / pow
		if prec <= 0 && r == math.Trunc(r) {
			return Int(int64(r)), nil
		}
		return Float(r), nil
	case "LOWER":
		if err := argc(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToLower(args[0].Text())), nil
	case "UPPER":
		if err := argc(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToUpper(args[0].Text())), nil
	case "LENGTH":
		if err := argc(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Int(int64(len(args[0].Text()))), nil
	case "TRIM":
		if err := argc(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.TrimSpace(args[0].Text())), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	case "NULLIF":
		if err := argc(2); err != nil {
			return Null(), err
		}
		if args[0].Equal(args[1]) {
			return Null(), nil
		}
		return args[0], nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return Null(), fmt.Errorf("%w: %s expects 2 or 3 arguments", ErrType, name)
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		s := args[0].Text()
		start, ok := args[1].AsInt()
		if !ok {
			return Null(), fmt.Errorf("%w: %s start", ErrType, name)
		}
		i := int(start) - 1 // SQL is 1-based
		if i < 0 {
			i = 0
		}
		if i > len(s) {
			return Text(""), nil
		}
		out := s[i:]
		if len(args) == 3 {
			n, ok := args[2].AsInt()
			if !ok {
				return Null(), fmt.Errorf("%w: %s length", ErrType, name)
			}
			if int(n) < len(out) {
				out = out[:n]
			}
		}
		return Text(out), nil
	}
	return Null(), fmt.Errorf("%w: function %s", ErrUnsupported, name)
}

func castValue(v Value, k Kind) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	switch k {
	case KindInt:
		if f, ok := v.AsFloat(); ok {
			return Int(int64(f)), nil
		}
		return Null(), fmt.Errorf("%w: cannot cast %q to INTEGER", ErrType, v.String())
	case KindFloat:
		if f, ok := v.AsFloat(); ok {
			return Float(f), nil
		}
		return Null(), fmt.Errorf("%w: cannot cast %q to REAL", ErrType, v.String())
	case KindText:
		return Text(v.String()), nil
	case KindBool:
		return Bool(v.AsBool()), nil
	}
	return Null(), fmt.Errorf("%w: cast to %s", ErrUnsupported, k)
}
