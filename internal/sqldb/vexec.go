package sqldb

import (
	"errors"
	"fmt"
	"math"
	"strconv"
)

// vexec.go is the vectorized runtime for plans produced by compilePlan: data
// flows through the operator tree as column batches (vbatch) instead of one
// row at a time. Scans stream fixed-size chunks and apply pushed-down filters
// per chunk; hash joins produce index pair lists and gather columns instead
// of materializing joined rows; aggregates fold typed vectors directly.
// Every scalar kernel either reuses the row engine's functions (applyBinary,
// applyScalarFunc, castValue, ...) or replicates their exact numeric
// behaviour — including the float64 coercion Value.Compare applies to
// integers — so that when vectorized execution succeeds its result is
// bit-identical to the row engine's. When it fails, callers fall back to the
// row engine, which reproduces the canonical error.

// errPlanStale reports that the catalog changed after the plan was compiled.
// Executors treat it like any vectorized-execution error: fall back to the
// row engine, which binds against the live catalog.
var errPlanStale = errors.New("sqldb: plan compiled against stale catalog")

// ExecVec executes a parsed statement on the vectorized engine without row
// fallback. It is the entry point the differential test harness drives; the
// production path (Query) instead runs cached plans with fallback.
func ExecVec(db *Database, stmt *SelectStmt) (*Result, error) {
	return ExecVecBatch(db, stmt, 0)
}

// ExecVecBatch is ExecVec with an explicit scan chunk size (<= 0 selects
// DefaultBatchSize); benchmarks use it to sweep batch sizes.
func ExecVecBatch(db *Database, stmt *SelectStmt, batch int) (*Result, error) {
	p := compilePlan(db, stmt)
	if p == nil {
		return nil, fmt.Errorf("%w: statement is not vectorizable", ErrUnsupported)
	}
	if batch > 0 {
		p.batch = batch
	}
	return p.run(db)
}

// vbatch is a horizontal slice of the working set in columnar form. cols is
// indexed by working-set slot (the plan's full bind layout); slots the plan
// does not need are nil.
type vbatch struct {
	n    int
	cols []*Vec
}

// vecCtx carries per-execution state: the row-engine executor used by
// fallback nodes and subqueries, and memos for evaluate-once subqueries and
// aggregate argument vectors. A fresh ctx per run keeps the shared cached
// plan immutable and race-free.
type vecCtx struct {
	ex    *executor
	binds []colBind

	subs map[interface{}]*subMemo
	aggs map[*gagg]*Vec
}

type subMemo struct {
	res *Result
	err error
}

// subResult executes an uncorrelated subquery at most once per statement
// execution, keyed by the plan node. Nodes call it only when at least one
// row reaches them, mirroring the row engine's reachability: a subquery the
// row engine never evaluates is never evaluated here either.
func (ctx *vecCtx) subResult(key interface{}, sub *SelectStmt) (*Result, error) {
	if m, ok := ctx.subs[key]; ok {
		return m.res, m.err
	}
	res, err := ctx.ex.execSelect(sub, nil)
	if ctx.subs == nil {
		ctx.subs = make(map[interface{}]*subMemo)
	}
	ctx.subs[key] = &subMemo{res: res, err: err}
	return res, err
}

// run executes the plan against db. Any returned error means "the vectorized
// engine cannot produce the row engine's result here" — the caller falls
// back; it never means the query itself is known to fail.
func (p *vecPlan) run(db *Database) (*Result, error) {
	names := make([]string, len(p.scans))
	for i, s := range p.scans {
		names[i] = s.table
	}
	tables, ver := db.snapshotTables(names)
	if ver != p.version {
		return nil, errPlanStale
	}
	for i, t := range tables {
		if t == nil || len(t.Columns) != p.scans[i].n {
			return nil, errPlanStale
		}
	}

	ctx := &vecCtx{ex: &executor{db: db}, binds: p.binds}

	b, err := p.buildBatch(ctx, tables)
	if err != nil {
		return nil, err
	}
	for _, f := range p.residual {
		b, err = filterBatch(ctx, b, f)
		if err != nil {
			return nil, err
		}
	}
	if p.aggregated {
		return p.runAgg(ctx, b)
	}
	return p.runRows(ctx, b)
}

// buildBatch scans and joins the FROM clause into one batch.
func (p *vecPlan) buildBatch(ctx *vecCtx, tables []*Table) (*vbatch, error) {
	if len(p.scans) == 0 {
		return &vbatch{cols: make([]*Vec, 0)}, nil
	}
	left, err := p.scanBatch(ctx, 0, tables[0])
	if err != nil {
		return nil, err
	}
	for ji := range p.joins {
		right, err := p.scanBatch(ctx, ji+1, tables[ji+1])
		if err != nil {
			return nil, err
		}
		left, err = p.joinBatch(ctx, left, right, ji)
		if err != nil {
			return nil, err
		}
	}
	return left, nil
}

// scanBatch streams table rows in chunks of p.batch, materializing the
// needed slots of scan si and applying its pushed-down filters chunk by
// chunk, so filtered rows never reach join or aggregation operators.
func (p *vecPlan) scanBatch(ctx *vecCtx, si int, t *Table) (*vbatch, error) {
	s := &p.scans[si]
	out := &vbatch{cols: make([]*Vec, len(p.binds))}
	for c := 0; c < s.n; c++ {
		if p.needed[s.base+c] {
			out.cols[s.base+c] = NewVec(vecKindHint(t.Columns[c].Type), len(t.Rows))
		}
	}
	rows := t.Rows
	for start := 0; start < len(rows); start += p.batch {
		end := start + p.batch
		if end > len(rows) {
			end = len(rows)
		}
		chunk := &vbatch{n: end - start, cols: make([]*Vec, len(p.binds))}
		for c := 0; c < s.n; c++ {
			slot := s.base + c
			if !p.needed[slot] {
				continue
			}
			cv := NewVec(vecKindHint(t.Columns[c].Type), end-start)
			for r := start; r < end; r++ {
				cv.Append(rows[r][c])
			}
			chunk.cols[slot] = cv
		}
		var err error
		for _, f := range s.pushed {
			chunk, err = filterBatch(ctx, chunk, f)
			if err != nil {
				return nil, err
			}
		}
		out.n += chunk.n
		for slot, cv := range chunk.cols {
			if cv != nil {
				out.cols[slot].AppendVec(cv)
			}
		}
	}
	return out, nil
}

// vecKindHint selects unboxed storage for columns whose observed type is
// uniformly integral or floating-point.
func vecKindHint(k Kind) Kind {
	if k == KindInt || k == KindFloat {
		return k
	}
	return KindNull
}

// filterBatch keeps the rows for which f evaluates truthy (Value.AsBool,
// so NULL filters out — the row engine's WHERE semantics).
func filterBatch(ctx *vecCtx, b *vbatch, f vexpr) (*vbatch, error) {
	fv, err := f.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	idx := make([]int, 0, b.n)
	for i := 0; i < b.n; i++ {
		if fv.At(i).AsBool() {
			idx = append(idx, i)
		}
	}
	if len(idx) == b.n {
		return b, nil
	}
	return gatherBatch(b, idx), nil
}

// gatherBatch builds a new batch keeping the selected row indices; nil
// (unneeded) columns stay nil.
func gatherBatch(b *vbatch, idx []int) *vbatch {
	out := &vbatch{n: len(idx), cols: make([]*Vec, len(b.cols))}
	for slot, cv := range b.cols {
		if cv != nil {
			out.cols[slot] = cv.Gather(idx)
		}
	}
	return out
}

// joinBatch joins the accumulated left batch with the freshly scanned right
// batch under join ji, mirroring joinSets: hash join on the recognized
// equi-join key (built on the right, probed in left order, NULL keys never
// matching, LEFT padding with NULLs), nested loop with per-row ON evaluation
// otherwise.
func (p *vecPlan) joinBatch(ctx *vecCtx, left, right *vbatch, ji int) (*vbatch, error) {
	j := &p.joins[ji]
	var li, ri []int
	if j.hash {
		leftKey, rightKey := left.cols[j.li], right.cols[j.ri]
		if fastJoinKeys(leftKey) && fastJoinKeys(rightKey) {
			// Typed numeric keys: joinKey reduces every numeric to its
			// float64 image (Float(f).key()), under which two values share a
			// key string iff they are equal as float64s — I-form below 1e15,
			// bit-exact F-form above, NaN-bearing vectors excluded by
			// fastJoinKeys. Hashing the float64 directly is therefore
			// match-identical and skips all key-string allocation.
			build := make(map[float64][]int, right.n)
			for i := 0; i < right.n; i++ {
				if rightKey.nulls[i] {
					continue // NULL keys never match in SQL equality
				}
				k := numAt(rightKey, i)
				build[k] = append(build[k], i)
			}
			for i := 0; i < left.n; i++ {
				var matches []int
				if !leftKey.nulls[i] {
					matches = build[numAt(leftKey, i)]
				}
				for _, m := range matches {
					li = append(li, i)
					ri = append(ri, m)
				}
				if len(matches) == 0 && j.kind == "LEFT" {
					li = append(li, i)
					ri = append(ri, -1)
				}
			}
		} else {
			build := make(map[string][]int, right.n)
			var kb []byte
			for i := 0; i < right.n; i++ {
				v := rightKey.At(i)
				if v.IsNull() {
					continue // NULL keys never match in SQL equality
				}
				kb = appendJoinKey(kb[:0], v)
				build[string(kb)] = append(build[string(kb)], i)
			}
			for i := 0; i < left.n; i++ {
				v := leftKey.At(i)
				var matches []int
				if !v.IsNull() {
					kb = appendJoinKey(kb[:0], v)
					matches = build[string(kb)] // alloc-free lookup
				}
				for _, m := range matches {
					li = append(li, i)
					ri = append(ri, m)
				}
				if len(matches) == 0 && j.kind == "LEFT" {
					li = append(li, i)
					ri = append(ri, -1)
				}
			}
		}
	} else {
		// Nested loop: combined rows are rebuilt and the ON predicate runs
		// on the row engine, over exactly the binds visible at this join
		// depth (matching env.lookup's scoping in joinSets).
		rightEnd := p.scans[ji+1].base + p.scans[ji+1].n
		binds := p.binds[:rightEnd]
		row := make([]Value, rightEnd)
		for i := 0; i < left.n; i++ {
			matched := false
			for k := 0; k < right.n; k++ {
				if j.on != nil {
					for s := 0; s < j.leftWidth; s++ {
						row[s] = left.cols[s].At(i)
					}
					for s := j.leftWidth; s < rightEnd; s++ {
						row[s] = right.cols[s].At(k)
					}
					en := &env{binds: binds, row: row}
					v, err := ctx.ex.eval(j.on, en)
					if err != nil {
						return nil, err
					}
					if !v.AsBool() {
						continue
					}
				}
				matched = true
				li = append(li, i)
				ri = append(ri, k)
			}
			if !matched && j.kind == "LEFT" {
				li = append(li, i)
				ri = append(ri, -1)
			}
		}
	}
	out := &vbatch{n: len(li), cols: make([]*Vec, len(p.binds))}
	for slot, cv := range left.cols {
		if cv != nil {
			out.cols[slot] = cv.Gather(li)
		}
	}
	for slot, cv := range right.cols {
		if cv != nil {
			out.cols[slot] = cv.Gather(ri)
		}
	}
	return out, nil
}

// fastJoinKeys reports whether the vector's join keys can hash by float64
// image: typed int vectors always qualify; typed float vectors qualify unless
// they carry a NaN, whose joinKey string (bit-exact F-form) matches other
// identical NaNs while float64 map keys never would.
func fastJoinKeys(v *Vec) bool {
	switch v.kind {
	case KindInt:
		return true
	case KindFloat:
		for _, f := range v.floats {
			if math.IsNaN(f) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// appendJoinKey appends joinKey(v) to dst without forcing a string
// allocation, mirroring joinKey/Float.key exactly: numerics (except BOOL)
// reduce to their float64 image — I-form for integral magnitudes below 1e15,
// bit-exact F-form otherwise — and everything else uses Value.key.
func appendJoinKey(dst []byte, v Value) []byte {
	if f, ok := v.AsFloat(); ok && v.kind != KindBool {
		if f == math.Trunc(f) && math.Abs(f) < 1e15 {
			dst = append(dst, 0, 'I')
			return strconv.AppendInt(dst, int64(f), 10)
		}
		dst = append(dst, 0, 'F')
		return strconv.AppendFloat(dst, f, 'b', -1, 64)
	}
	return append(dst, v.key()...)
}

// runRows projects a non-aggregated batch into result rows and applies the
// shared statement tail.
func (p *vecPlan) runRows(ctx *vecCtx, b *vbatch) (*Result, error) {
	var out []outRow
	if len(p.scans) > 0 {
		cells := make([]*Vec, len(p.itemsV))
		for k, iv := range p.itemsV {
			cv, err := iv.eval(ctx, b)
			if err != nil {
				return nil, err
			}
			cells[k] = cv
		}
		keys := make([]*Vec, len(p.orderV))
		for k, op := range p.orderV {
			if op.cellIdx < 0 {
				kv, err := op.ev.eval(ctx, b)
				if err != nil {
					return nil, err
				}
				keys[k] = kv
			}
		}
		for i := 0; i < b.n; i++ {
			r := outRow{cells: make([]Value, len(cells))}
			for k := range cells {
				r.cells[k] = cells[k].At(i)
			}
			if len(p.orderV) > 0 {
				r.keys = make([]Value, len(p.orderV))
				for k, op := range p.orderV {
					if op.cellIdx >= 0 {
						r.keys[k] = r.cells[op.cellIdx]
					} else {
						r.keys[k] = keys[k].At(i)
					}
				}
			}
			out = append(out, r)
		}
	} else {
		// Table-less SELECT: one row evaluated over no bindings, with no
		// ORDER BY keys — exactly the row engine's FROM-less branch.
		en := &env{}
		row := outRow{}
		for _, it := range p.items {
			v, err := ctx.ex.eval(it.Expr, en)
			if err != nil {
				return nil, err
			}
			row.cells = append(row.cells, v)
		}
		out = []outRow{row}
	}
	return finishSelect(p.stmt, p.cols, out), nil
}

// vgroup is one GROUP BY partition: row indices into the filtered batch.
type vgroup struct {
	b    *vbatch
	rows []int
}

// runAgg partitions the batch, applies HAVING, and projects each surviving
// group.
func (p *vecPlan) runAgg(ctx *vecCtx, b *vbatch) (*Result, error) {
	groups, err := p.partition(ctx, b)
	if err != nil {
		return nil, err
	}
	var out []outRow
	for _, rows := range groups {
		g := &vgroup{b: b, rows: rows}
		if p.havingG != nil {
			hv, err := p.havingG.eval(ctx, g)
			if err != nil {
				return nil, err
			}
			if !hv.AsBool() {
				continue
			}
		}
		row := outRow{}
		for _, ig := range p.itemsG {
			v, err := ig.eval(ctx, g)
			if err != nil {
				return nil, err
			}
			row.cells = append(row.cells, v)
		}
		for _, op := range p.orderG {
			if op.cellIdx >= 0 {
				row.keys = append(row.keys, row.cells[op.cellIdx])
			} else {
				v, err := op.gv.eval(ctx, g)
				if err != nil {
					return nil, err
				}
				row.keys = append(row.keys, v)
			}
		}
		out = append(out, row)
	}
	return finishSelect(p.stmt, p.cols, out), nil
}

// partition groups batch rows by the GROUP BY key vectors in first-appearance
// order. With no GROUP BY the whole batch is one group, even when empty, so
// aggregates over empty inputs still produce a row.
func (p *vecPlan) partition(ctx *vecCtx, b *vbatch) ([][]int, error) {
	if len(p.groupByV) == 0 {
		all := make([]int, b.n)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}, nil
	}
	keyVecs := make([]*Vec, len(p.groupByV))
	for k, gv := range p.groupByV {
		kv, err := gv.eval(ctx, b)
		if err != nil {
			return nil, err
		}
		keyVecs[k] = kv
	}
	index := make(map[string]int)
	var groups [][]int
	var kb []byte
	for i := 0; i < b.n; i++ {
		kb = kb[:0]
		for _, kv := range keyVecs {
			kb = kv.appendKey(i, kb)
		}
		gi, ok := index[string(kb)] // alloc-free lookup
		if !ok {
			gi = len(groups)
			index[string(kb)] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups, nil
}

// ---------------------------------------------------------------------------
// Row-context vectorized expressions.

// vexpr evaluates to one value per batch row.
type vexpr interface {
	eval(ctx *vecCtx, b *vbatch) (*Vec, error)
}

// typedNum reports whether the vector has unboxed numeric storage.
func typedNum(v *Vec) bool { return v.kind == KindInt || v.kind == KindFloat }

// numAt reads a typed vector's value as float64, the representation
// Value.Compare and applyArith reduce numerics to.
func numAt(v *Vec, i int) float64 {
	if v.kind == KindInt {
		return float64(v.ints[i])
	}
	return v.floats[i]
}

// mapVec evaluates f element-wise into a generic vector.
func mapVec(n int, f func(i int) (Value, error)) (*Vec, error) {
	out := NewVec(KindNull, n)
	for i := 0; i < n; i++ {
		v, err := f(i)
		if err != nil {
			return nil, err
		}
		out.any = append(out.any, v)
	}
	return out, nil
}

type vlit struct{ val Value }

func (v *vlit) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	out := NewVec(v.val.Kind(), b.n)
	for i := 0; i < b.n; i++ {
		out.Append(v.val)
	}
	return out, nil
}

type vcol struct{ slot int }

func (v *vcol) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	return b.cols[v.slot], nil
}

type vunary struct {
	op string
	x  vexpr
}

func (v *vunary) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	xv, err := v.x.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	return mapVec(b.n, func(i int) (Value, error) { return applyUnary(v.op, xv.At(i)) })
}

// vand and vor evaluate both sides over the whole batch; the row engine
// short-circuits per row, but since its result is Bool(l) op Bool(r) with
// AsBool(NULL)=false, eager evaluation yields identical values — it can only
// add errors, which trigger row fallback.
type vand struct{ l, r vexpr }

func (v *vand) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	lv, err := v.l.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	rv, err := v.r.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	return mapVec(b.n, func(i int) (Value, error) {
		return Bool(lv.At(i).AsBool() && rv.At(i).AsBool()), nil
	})
}

type vor struct{ l, r vexpr }

func (v *vor) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	lv, err := v.l.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	rv, err := v.r.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	return mapVec(b.n, func(i int) (Value, error) {
		return Bool(lv.At(i).AsBool() || rv.At(i).AsBool()), nil
	})
}

type vbin struct {
	op   string
	l, r vexpr
}

func (v *vbin) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	lv, err := v.l.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	rv, err := v.r.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	if typedNum(lv) && typedNum(rv) {
		switch v.op {
		case "=", "<>", "<", "<=", ">", ">=":
			return cmpKernel(v.op, lv, rv, b.n), nil
		case "+", "-", "*", "/", "%":
			return arithKernel(v.op, lv, rv, b.n), nil
		}
	}
	return mapVec(b.n, func(i int) (Value, error) { return applyBinary(v.op, lv.At(i), rv.At(i)) })
}

// cmpKernel compares two typed numeric vectors. Both operands pass through
// float64 — the same (lossy above 2^53) reduction Value.Compare applies — so
// the kernel and the row engine always agree.
func cmpKernel(op string, lv, rv *Vec, n int) *Vec {
	out := NewVec(KindNull, n)
	for i := 0; i < n; i++ {
		if lv.IsNullAt(i) || rv.IsNullAt(i) {
			out.any = append(out.any, Bool(false))
			continue
		}
		a, b := numAt(lv, i), numAt(rv, i)
		var res bool
		switch op {
		case "=":
			res = a == b
		case "<>":
			res = a != b
		case "<":
			res = a < b
		case "<=":
			res = a <= b
		case ">":
			res = a > b
		case ">=":
			res = a >= b
		}
		out.any = append(out.any, Bool(res))
	}
	return out
}

// arithKernel mirrors applyArith on typed numeric vectors, including its
// int64(float64(x)) round-trips for the both-integer branches and the
// divide-by-zero-yields-NULL rule.
func arithKernel(op string, lv, rv *Vec, n int) *Vec {
	bothInt := lv.kind == KindInt && rv.kind == KindInt
	hint := KindFloat
	if bothInt {
		hint = KindInt
	}
	out := NewVec(hint, n)
	for i := 0; i < n; i++ {
		if lv.IsNullAt(i) || rv.IsNullAt(i) {
			out.Append(Null())
			continue
		}
		lf, rf := numAt(lv, i), numAt(rv, i)
		switch op {
		case "+":
			if bothInt {
				out.Append(Int(int64(lf) + int64(rf)))
			} else {
				out.Append(Float(lf + rf))
			}
		case "-":
			if bothInt {
				out.Append(Int(int64(lf) - int64(rf)))
			} else {
				out.Append(Float(lf - rf))
			}
		case "*":
			if bothInt {
				out.Append(Int(int64(lf) * int64(rf)))
			} else {
				out.Append(Float(lf * rf))
			}
		case "/":
			switch {
			case rf == 0:
				out.Append(Null())
			case bothInt && int64(lf)%int64(rf) == 0:
				out.Append(Int(int64(lf) / int64(rf)))
			default:
				out.Append(Float(lf / rf))
			}
		case "%":
			switch {
			case rf == 0:
				out.Append(Null())
			case bothInt:
				out.Append(Int(int64(lf) % int64(rf)))
			default:
				out.Append(Float(math.Mod(lf, rf)))
			}
		}
	}
	return out
}

type vbetween struct {
	x, lo, hi vexpr
	not       bool
}

func (v *vbetween) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	xv, err := v.x.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	lov, err := v.lo.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	hiv, err := v.hi.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	return mapVec(b.n, func(i int) (Value, error) {
		x := xv.At(i)
		c1, ok1 := x.Compare(lov.At(i))
		c2, ok2 := x.Compare(hiv.At(i))
		res := ok1 && ok2 && c1 >= 0 && c2 <= 0
		if v.not {
			res = !res
		}
		return Bool(res), nil
	})
}

type vin struct {
	x    vexpr
	list []vexpr
	not  bool
}

func (v *vin) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	xv, err := v.x.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	lvs := make([]*Vec, len(v.list))
	for k, le := range v.list {
		lv, err := le.eval(ctx, b)
		if err != nil {
			return nil, err
		}
		lvs[k] = lv
	}
	return mapVec(b.n, func(i int) (Value, error) {
		x := xv.At(i)
		found := false
		for _, lv := range lvs {
			if x.Equal(lv.At(i)) {
				found = true
				break
			}
		}
		if v.not {
			found = !found
		}
		return Bool(found), nil
	})
}

type visnull struct {
	x   vexpr
	not bool
}

func (v *visnull) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	xv, err := v.x.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	return mapVec(b.n, func(i int) (Value, error) {
		res := xv.At(i).IsNull()
		if v.not {
			res = !res
		}
		return Bool(res), nil
	})
}

type vfunc struct {
	name string
	args []vexpr
}

func (v *vfunc) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	avs := make([]*Vec, len(v.args))
	for k, ae := range v.args {
		av, err := ae.eval(ctx, b)
		if err != nil {
			return nil, err
		}
		avs[k] = av
	}
	argv := make([]Value, len(v.args))
	return mapVec(b.n, func(i int) (Value, error) {
		for k := range avs {
			argv[k] = avs[k].At(i)
		}
		return applyScalarFunc(v.name, argv)
	})
}

type vcast struct {
	x    vexpr
	kind Kind
}

func (v *vcast) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	xv, err := v.x.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	return mapVec(b.n, func(i int) (Value, error) { return castValue(xv.At(i), v.kind) })
}

// vcase evaluates every arm over the batch, then selects per row. The row
// engine stops at the first truthy WHEN; eager arm evaluation selects the
// same value and can only add errors (→ row fallback).
type vcase struct {
	conds []vexpr
	thens []vexpr
	els   vexpr
}

func (v *vcase) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	cvs := make([]*Vec, len(v.conds))
	tvs := make([]*Vec, len(v.thens))
	for k := range v.conds {
		cv, err := v.conds[k].eval(ctx, b)
		if err != nil {
			return nil, err
		}
		cvs[k] = cv
		tv, err := v.thens[k].eval(ctx, b)
		if err != nil {
			return nil, err
		}
		tvs[k] = tv
	}
	var ev *Vec
	if v.els != nil {
		var err error
		ev, err = v.els.eval(ctx, b)
		if err != nil {
			return nil, err
		}
	}
	return mapVec(b.n, func(i int) (Value, error) {
		for k := range cvs {
			if cvs[k].At(i).AsBool() {
				return tvs[k].At(i), nil
			}
		}
		if ev != nil {
			return ev.At(i), nil
		}
		return Null(), nil
	})
}

// vsub is an uncorrelated scalar subquery: executed once, its single cell is
// broadcast. The scalar-shape checks mirror the row engine's SubqueryExpr
// case exactly.
type vsub struct{ sub *SelectStmt }

func (v *vsub) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	if b.n == 0 {
		return NewVec(KindNull, 0), nil
	}
	res, err := ctx.subResult(v, v.sub)
	if err != nil {
		return nil, err
	}
	if len(res.Cols) != 1 {
		return nil, fmt.Errorf("%w: scalar subquery with %d columns", ErrNotScalar, len(res.Cols))
	}
	val := Null()
	if len(res.Rows) > 1 {
		return nil, fmt.Errorf("%w: scalar subquery returned %d rows", ErrNotScalar, len(res.Rows))
	}
	if len(res.Rows) == 1 {
		val = res.Rows[0][0]
	}
	out := NewVec(val.Kind(), b.n)
	for i := 0; i < b.n; i++ {
		out.Append(val)
	}
	return out, nil
}

type vexists struct {
	sub *SelectStmt
	not bool
}

func (v *vexists) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	if b.n == 0 {
		return NewVec(KindNull, 0), nil
	}
	res, err := ctx.subResult(v, v.sub)
	if err != nil {
		return nil, err
	}
	found := len(res.Rows) > 0
	if v.not {
		found = !found
	}
	out := NewVec(KindNull, b.n)
	for i := 0; i < b.n; i++ {
		out.any = append(out.any, Bool(found))
	}
	return out, nil
}

type vinsub struct {
	x   vexpr
	sub *SelectStmt
	not bool
}

func (v *vinsub) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	xv, err := v.x.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	if b.n == 0 {
		return NewVec(KindNull, 0), nil
	}
	res, err := ctx.subResult(v, v.sub)
	if err != nil {
		return nil, err
	}
	if len(res.Cols) != 1 {
		return nil, fmt.Errorf("%w: IN subquery with %d columns", ErrNotScalar, len(res.Cols))
	}
	return mapVec(b.n, func(i int) (Value, error) {
		x := xv.At(i)
		found := false
		for _, r := range res.Rows {
			if x.Equal(r[0]) {
				found = true
				break
			}
		}
		if v.not {
			found = !found
		}
		return Bool(found), nil
	})
}

// vrowfb is the universal escape hatch: it rebuilds each batch row and
// evaluates the original expression on the row engine, preserving exact
// semantics (correlated subqueries, ambiguous shapes, canonical errors).
type vrowfb struct{ e Expr }

func (v *vrowfb) eval(ctx *vecCtx, b *vbatch) (*Vec, error) {
	row := make([]Value, len(ctx.binds))
	return mapVec(b.n, func(i int) (Value, error) {
		for s := range row {
			row[s] = b.cols[s].At(i)
		}
		en := &env{binds: ctx.binds, row: row}
		return ctx.ex.eval(v.e, en)
	})
}

// ---------------------------------------------------------------------------
// Aggregate-context expressions.

// gexpr evaluates to one value per group, mirroring groupEnv.eval.
type gexpr interface {
	eval(ctx *vecCtx, g *vgroup) (Value, error)
}

type glit struct{ val Value }

func (v *glit) eval(ctx *vecCtx, g *vgroup) (Value, error) { return v.val, nil }

// gcolfirst reads a column from the group's first row (all-NULL for an empty
// group), the row engine's semantics for bare columns under aggregation.
type gcolfirst struct{ slot int }

func (v *gcolfirst) eval(ctx *vecCtx, g *vgroup) (Value, error) {
	if len(g.rows) == 0 {
		return Null(), nil
	}
	return g.b.cols[v.slot].At(g.rows[0]), nil
}

type gunary struct {
	op string
	x  gexpr
}

func (v *gunary) eval(ctx *vecCtx, g *vgroup) (Value, error) {
	inner, err := v.x.eval(ctx, g)
	if err != nil {
		return Null(), err
	}
	return applyUnary(v.op, inner)
}

type gbin struct {
	op   string
	l, r gexpr
}

func (v *gbin) eval(ctx *vecCtx, g *vgroup) (Value, error) {
	if v.op == "AND" || v.op == "OR" {
		l, err := v.l.eval(ctx, g)
		if err != nil {
			return Null(), err
		}
		if v.op == "AND" && !l.AsBool() {
			return Bool(false), nil
		}
		if v.op == "OR" && l.AsBool() {
			return Bool(true), nil
		}
		r, err := v.r.eval(ctx, g)
		if err != nil {
			return Null(), err
		}
		return Bool(r.AsBool()), nil
	}
	l, err := v.l.eval(ctx, g)
	if err != nil {
		return Null(), err
	}
	r, err := v.r.eval(ctx, g)
	if err != nil {
		return Null(), err
	}
	return applyBinary(v.op, l, r)
}

type gscalar struct {
	name string
	args []gexpr
}

func (v *gscalar) eval(ctx *vecCtx, g *vgroup) (Value, error) {
	args := make([]Value, len(v.args))
	for i, a := range v.args {
		av, err := a.eval(ctx, g)
		if err != nil {
			return Null(), err
		}
		args[i] = av
	}
	return applyScalarFunc(v.name, args)
}

type gcast struct {
	x    gexpr
	kind Kind
}

func (v *gcast) eval(ctx *vecCtx, g *vgroup) (Value, error) {
	inner, err := v.x.eval(ctx, g)
	if err != nil {
		return Null(), err
	}
	return castValue(inner, v.kind)
}

type gcase struct {
	conds []gexpr
	thens []gexpr
	els   gexpr
}

func (v *gcase) eval(ctx *vecCtx, g *vgroup) (Value, error) {
	for k := range v.conds {
		c, err := v.conds[k].eval(ctx, g)
		if err != nil {
			return Null(), err
		}
		if c.AsBool() {
			return v.thens[k].eval(ctx, g)
		}
	}
	if v.els != nil {
		return v.els.eval(ctx, g)
	}
	return Null(), nil
}

// gfirstrow mirrors groupEnv.eval's default branch: evaluate the expression
// on the row engine against the group's first row (all-NULL when empty).
type gfirstrow struct{ e Expr }

func (v *gfirstrow) eval(ctx *vecCtx, g *vgroup) (Value, error) {
	row := make([]Value, len(ctx.binds))
	if len(g.rows) == 0 {
		for s := range row {
			row[s] = Null()
		}
	} else {
		r0 := g.rows[0]
		for s := range row {
			row[s] = g.b.cols[s].At(r0)
		}
	}
	en := &env{binds: ctx.binds, row: row}
	return ctx.ex.eval(v.e, en)
}

// gagg folds an aggregate over the group. The argument expression is
// evaluated once over the whole batch (memoized across groups and across the
// HAVING/items/ORDER BY positions that reference aggregates) and each group
// indexes into it; typed vectors take unboxed fold paths that reproduce
// evalAggregate's float64 arithmetic exactly.
type gagg struct {
	f   *FuncExpr
	arg vexpr
}

func (a *gagg) argVec(ctx *vecCtx, b *vbatch) (*Vec, error) {
	if av, ok := ctx.aggs[a]; ok {
		return av, nil
	}
	av, err := a.arg.eval(ctx, b)
	if err != nil {
		return nil, err
	}
	if ctx.aggs == nil {
		ctx.aggs = make(map[*gagg]*Vec)
	}
	ctx.aggs[a] = av
	return av, nil
}

func (a *gagg) eval(ctx *vecCtx, g *vgroup) (Value, error) {
	if a.f.Star {
		return Int(int64(len(g.rows))), nil
	}
	if len(a.f.Args) != 1 {
		return Null(), fmt.Errorf("%w: %s takes one argument", ErrType, a.f.Name)
	}
	av, err := a.argVec(ctx, g.b)
	if err != nil {
		return Null(), err
	}
	if !a.f.Distinct && typedNum(av) {
		return typedFold(a.f.Name, av, g.rows)
	}
	// Generic fold: mirror evalAggregate's collection (non-NULL values in
	// row order, DISTINCT by grouping key) and folding rules.
	var vals []Value
	var seen map[string]bool
	if a.f.Distinct {
		seen = make(map[string]bool)
	}
	for _, r := range g.rows {
		v := av.At(r)
		if v.IsNull() {
			continue
		}
		if a.f.Distinct {
			k := v.key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch a.f.Name {
	case "COUNT":
		return Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			fv, ok := v.AsFloat()
			if !ok {
				return Null(), fmt.Errorf("%w: %s over non-numeric value %q", ErrType, a.f.Name, v.String())
			}
			if v.Kind() != KindInt {
				allInt = false
			}
			sum += fv
		}
		if a.f.Name == "AVG" {
			return Float(sum / float64(len(vals))), nil
		}
		if allInt && sum == math.Trunc(sum) {
			return Int(int64(sum)), nil
		}
		return Float(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := v.Compare(best)
			if !ok {
				return Null(), fmt.Errorf("%w: %s over incomparable values", ErrType, a.f.Name)
			}
			if (a.f.Name == "MIN" && c < 0) || (a.f.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return Null(), fmt.Errorf("%w: aggregate %s", ErrUnsupported, a.f.Name)
}

// typedFold folds an aggregate over an unboxed numeric vector without
// boxing. All arithmetic goes through float64 — including MIN/MAX
// comparisons and SUM accumulation over integers — because that is what
// evalAggregate does via AsFloat/Compare.
func typedFold(name string, av *Vec, rows []int) (Value, error) {
	switch name {
	case "COUNT":
		n := int64(0)
		for _, r := range rows {
			if !av.nulls[r] {
				n++
			}
		}
		return Int(n), nil
	case "SUM", "AVG":
		sum := 0.0
		cnt := 0
		for _, r := range rows {
			if av.nulls[r] {
				continue
			}
			sum += numAt(av, r)
			cnt++
		}
		if cnt == 0 {
			return Null(), nil
		}
		if name == "AVG" {
			return Float(sum / float64(cnt)), nil
		}
		if av.kind == KindInt && sum == math.Trunc(sum) {
			return Int(int64(sum)), nil
		}
		return Float(sum), nil
	case "MIN", "MAX":
		best := -1
		for _, r := range rows {
			if av.nulls[r] {
				continue
			}
			if best < 0 {
				best = r
				continue
			}
			cur, b := numAt(av, r), numAt(av, best)
			if (name == "MIN" && cur < b) || (name == "MAX" && cur > b) {
				best = r
			}
		}
		if best < 0 {
			return Null(), nil
		}
		return av.At(best), nil
	}
	return Null(), fmt.Errorf("%w: aggregate %s", ErrUnsupported, name)
}
