package sqldb

import "strings"

// plan.go compiles parsed SELECT statements into vectorized plans: column
// references are bound to working-set slot positions once, WHERE conjuncts
// that provably cannot raise errors are pushed down into table scans, joins
// are classified as hash or nested-loop, and uncorrelated subqueries are
// marked for evaluate-once execution. Compilation never fails: statements
// (or sub-expressions) outside the vectorizable surface compile to row-engine
// fallback nodes, and a nil plan means "run the whole statement on the row
// engine". The compiled plan is immutable and safe for concurrent execution.

// DefaultBatchSize is the number of rows a vectorized scan processes per
// column chunk.
const DefaultBatchSize = 1024

// planScan describes one FROM/JOIN relation: its slot range in the full
// working-set layout plus any filter conjuncts pushed below the join.
type planScan struct {
	table  string  // catalog table name
	base   int     // first slot index in the working-set layout
	n      int     // column count (validated against the live table at exec)
	pushed []vexpr // pushdown filters, evaluated per scan chunk
}

// planJoin describes how the i+1'th relation joins the accumulated working
// set. Hash joins carry the two bound key slots; everything else keeps the
// original ON expression for the row-engine nested-loop mirror.
type planJoin struct {
	kind      string // "INNER", "CROSS", "LEFT"
	on        Expr   // nil for CROSS
	hash      bool
	li, ri    int // key slots (full layout) when hash
	leftWidth int // slots visible to the ON clause from the left side
}

// orderPlan is one compiled ORDER BY key. Exactly one of the three fields is
// active: cellIdx >= 0 reuses an already-projected cell (alias or ordinal
// reference, resolved at plan time exactly like the row engine's orderKey);
// otherwise ev (non-aggregated) or gv (aggregated) evaluates the key.
type orderPlan struct {
	cellIdx int
	ev      vexpr
	gv      gexpr
}

// vecPlan is a compiled, immutable, concurrently executable query plan.
type vecPlan struct {
	stmt    *SelectStmt
	version uint64 // catalog version the plan was bound against
	batch   int    // scan chunk size; DefaultBatchSize unless overridden

	scans    []planScan
	joins    []planJoin
	binds    []colBind
	needed   []bool // slots that must be materialized
	residual []vexpr

	items      []SelectItem // star-expanded projection
	cols       []string
	aggregated bool

	// Non-aggregated pipeline.
	itemsV []vexpr
	orderV []orderPlan

	// Aggregated pipeline.
	groupByV []vexpr
	itemsG   []gexpr
	havingG  gexpr
	orderG   []orderPlan
}

// compilePlan binds stmt against db's current catalog. It returns nil when
// the statement must run entirely on the row engine (RIGHT joins, unknown
// tables, or malformed projections — the row engine then produces its
// canonical error).
func compilePlan(db *Database, stmt *SelectStmt) *vecPlan {
	p := &vecPlan{stmt: stmt, batch: DefaultBatchSize}

	var names []string
	if stmt.From != nil {
		names = append(names, stmt.From.Name)
		for _, j := range stmt.Joins {
			if j.Kind == "RIGHT" {
				return nil
			}
			names = append(names, j.Table.Name)
		}
	} else if len(stmt.Joins) > 0 {
		return nil
	}
	tables, version := db.snapshotTables(names)
	p.version = version
	for _, t := range tables {
		if t == nil {
			return nil
		}
	}

	// Working-set layout: mirror buildFrom/scanTable bind order exactly.
	if stmt.From != nil {
		addScan := func(ref TableRef, t *Table) {
			s := planScan{table: ref.Name, base: len(p.binds), n: len(t.Columns)}
			eff := ref.EffectiveName()
			for _, c := range t.Columns {
				p.binds = append(p.binds, colBind{table: eff, name: c.Name})
			}
			p.scans = append(p.scans, s)
		}
		addScan(*stmt.From, tables[0])
		for i, j := range stmt.Joins {
			leftWidth := len(p.binds)
			addScan(j.Table, tables[i+1])
			pj := planJoin{kind: j.Kind, on: j.On, leftWidth: leftWidth}
			if li, ri, ok := equiJoinColumns(j.On,
				&workingSet{binds: p.binds[:leftWidth]},
				&workingSet{binds: p.binds[leftWidth:]}); ok {
				pj.hash, pj.li, pj.ri = true, li, leftWidth+ri
			}
			p.joins = append(p.joins, pj)
		}
	}

	items, err := expandStars(stmt.Items, p.binds)
	if err != nil {
		return nil
	}
	p.items = items
	p.cols = projectionNames(items)
	p.aggregated = len(stmt.GroupBy) > 0 || stmt.Having != nil || itemsHaveAggregate(items)

	c := &planCompiler{db: db, p: p, needed: make([]bool, len(p.binds))}

	// WHERE: split the top-level AND chain. Conjuncts are pushed into scans
	// only when the *entire* filter and every non-hash ON clause is in the
	// error-free expression subset — otherwise early filtering could skip
	// rows on which the row engine would have raised an error, and the two
	// engines would diverge on which queries fail at all.
	if stmt.Where != nil {
		conjuncts := splitConjuncts(stmt.Where)
		pushdownOK := true
		for _, cj := range conjuncts {
			if !safeExpr(cj, p.binds) {
				pushdownOK = false
				break
			}
		}
		if pushdownOK {
			for ji, j := range p.joins {
				// An ON clause sees the binds of the tables joined so far
				// plus its own right table.
				onEnd := p.scans[ji+1].base + p.scans[ji+1].n
				if !j.hash && j.on != nil && !safeExpr(j.on, p.binds[:onEnd]) {
					pushdownOK = false
					break
				}
			}
		}
		for _, cj := range conjuncts {
			si := -1
			if pushdownOK {
				si = c.pushTarget(cj)
			}
			if si >= 0 {
				p.scans[si].pushed = append(p.scans[si].pushed, c.compile(cj))
			} else {
				p.residual = append(p.residual, c.compile(cj))
			}
		}
	}

	if p.aggregated {
		for _, g := range stmt.GroupBy {
			p.groupByV = append(p.groupByV, c.compile(g))
		}
		if stmt.Having != nil {
			p.havingG = c.compileGroup(stmt.Having)
		}
		for _, it := range items {
			p.itemsG = append(p.itemsG, c.compileGroup(it.Expr))
		}
		for _, o := range stmt.OrderBy {
			op := staticOrderKey(o.Expr, items)
			if op.cellIdx < 0 {
				op.gv = c.compileGroup(o.Expr)
			}
			p.orderG = append(p.orderG, op)
		}
	} else {
		for _, it := range items {
			p.itemsV = append(p.itemsV, c.compile(it.Expr))
		}
		for _, o := range stmt.OrderBy {
			op := staticOrderKey(o.Expr, items)
			if op.cellIdx < 0 {
				op.ev = c.compile(o.Expr)
			}
			p.orderV = append(p.orderV, op)
		}
	}

	// Nested-loop joins and row-engine fallback nodes rebuild full rows, so
	// every slot must be materialized; otherwise scan only referenced slots.
	for _, j := range p.joins {
		if !j.hash {
			c.needsAll = true
		}
	}
	if c.needsAll {
		for i := range c.needed {
			c.needed[i] = true
		}
	} else {
		for _, j := range p.joins {
			if j.hash {
				c.needed[j.li] = true
				c.needed[j.ri] = true
			}
		}
	}
	p.needed = c.needed
	return p
}

// staticOrderKey resolves the row engine's orderKey shortcuts at plan time:
// a bare name matching a projection alias, or a literal ordinal within range,
// reuses the already-computed cell. cellIdx is -1 when the key needs its own
// evaluation.
func staticOrderKey(e Expr, items []SelectItem) orderPlan {
	if ce, ok := e.(*ColumnExpr); ok && ce.Table == "" {
		for i, it := range items {
			if strings.EqualFold(it.Alias, ce.Name) {
				return orderPlan{cellIdx: i}
			}
		}
	}
	if le, ok := e.(*LiteralExpr); ok {
		if n, ok := le.Val.AsInt(); ok && n >= 1 && int(n) <= len(items) {
			return orderPlan{cellIdx: int(n) - 1}
		}
	}
	return orderPlan{cellIdx: -1}
}

// splitConjuncts flattens a left-associative AND chain into its conjuncts.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

// resolveBind mirrors env.lookup over a static bind list: first match wins,
// with case-insensitive table-qualifier and name comparison.
func resolveBind(binds []colBind, table, name string) (int, bool) {
	for i, b := range binds {
		if table != "" && !strings.EqualFold(b.table, table) {
			continue
		}
		if strings.EqualFold(b.name, name) {
			return i, true
		}
	}
	return 0, false
}

// planCompiler carries shared state while lowering expressions.
type planCompiler struct {
	db       *Database
	p        *vecPlan
	needed   []bool
	needsAll bool
}

// fallback lowers e to per-row evaluation on the row engine: the node
// gathers each row of the batch into an env and delegates to executor.eval,
// so any expression shape stays supported with identical semantics.
func (c *planCompiler) fallback(e Expr) vexpr {
	c.needsAll = true
	return &vrowfb{e: e}
}

// compile lowers a row-context expression. It is total: unsupported or
// unresolvable shapes become row-engine fallback nodes.
func (c *planCompiler) compile(e Expr) vexpr {
	switch v := e.(type) {
	case *LiteralExpr:
		return &vlit{val: v.Val}
	case *ColumnExpr:
		slot, ok := resolveBind(c.p.binds, v.Table, v.Name)
		if !ok {
			return c.fallback(e)
		}
		c.needed[slot] = true
		return &vcol{slot: slot}
	case *UnaryExpr:
		return &vunary{op: v.Op, x: c.compile(v.Expr)}
	case *BinaryExpr:
		switch v.Op {
		case "AND":
			return &vand{l: c.compile(v.Left), r: c.compile(v.Right)}
		case "OR":
			return &vor{l: c.compile(v.Left), r: c.compile(v.Right)}
		}
		return &vbin{op: v.Op, l: c.compile(v.Left), r: c.compile(v.Right)}
	case *BetweenExpr:
		return &vbetween{x: c.compile(v.Expr), lo: c.compile(v.Lo), hi: c.compile(v.Hi), not: v.Not}
	case *InExpr:
		if v.Sub != nil {
			if c.uncorrelated(v.Sub) {
				return &vinsub{x: c.compile(v.Expr), sub: v.Sub, not: v.Not}
			}
			return c.fallback(e)
		}
		in := &vin{x: c.compile(v.Expr), not: v.Not}
		for _, it := range v.List {
			in.list = append(in.list, c.compile(it))
		}
		return in
	case *IsNullExpr:
		return &visnull{x: c.compile(v.Expr), not: v.Not}
	case *FuncExpr:
		if v.IsAggregate() {
			// Aggregate outside aggregate context: let the row engine raise
			// its canonical error if (and only if) a row reaches it.
			return c.fallback(e)
		}
		fn := &vfunc{name: v.Name}
		for _, a := range v.Args {
			fn.args = append(fn.args, c.compile(a))
		}
		return fn
	case *CastExpr:
		return &vcast{x: c.compile(v.Expr), kind: v.Type}
	case *CaseExpr:
		cs := &vcase{}
		for _, w := range v.Whens {
			cs.conds = append(cs.conds, c.compile(w.Cond))
			cs.thens = append(cs.thens, c.compile(w.Then))
		}
		if v.Else != nil {
			cs.els = c.compile(v.Else)
		}
		return cs
	case *SubqueryExpr:
		if c.uncorrelated(v.Stmt) {
			return &vsub{sub: v.Stmt}
		}
		return c.fallback(e)
	case *ExistsExpr:
		if c.uncorrelated(v.Stmt) {
			return &vexists{sub: v.Stmt, not: v.Not}
		}
		return c.fallback(e)
	default:
		return c.fallback(e)
	}
}

// compileGroup lowers an aggregate-context expression, mirroring
// groupEnv.eval's dispatch: aggregate calls fold over the group, the
// recognized scalar shapes recurse, and every other node evaluates against
// the group's first row on the row engine.
func (c *planCompiler) compileGroup(e Expr) gexpr {
	switch v := e.(type) {
	case *LiteralExpr:
		return &glit{val: v.Val}
	case *ColumnExpr:
		// groupEnv delegates bare columns to the first row's env; binding
		// the slot statically is the same lookup done once.
		slot, ok := resolveBind(c.p.binds, v.Table, v.Name)
		if !ok {
			return c.gdefault(e)
		}
		c.needed[slot] = true
		return &gcolfirst{slot: slot}
	case *FuncExpr:
		if v.IsAggregate() {
			g := &gagg{f: v}
			if !v.Star && len(v.Args) == 1 {
				g.arg = c.compile(v.Args[0])
			}
			return g
		}
		fn := &gscalar{name: v.Name}
		for _, a := range v.Args {
			fn.args = append(fn.args, c.compileGroup(a))
		}
		return fn
	case *UnaryExpr:
		return &gunary{op: v.Op, x: c.compileGroup(v.Expr)}
	case *BinaryExpr:
		return &gbin{op: v.Op, l: c.compileGroup(v.Left), r: c.compileGroup(v.Right)}
	case *CastExpr:
		return &gcast{x: c.compileGroup(v.Expr), kind: v.Type}
	case *CaseExpr:
		cs := &gcase{}
		for _, w := range v.Whens {
			cs.conds = append(cs.conds, c.compileGroup(w.Cond))
			cs.thens = append(cs.thens, c.compileGroup(w.Then))
		}
		if v.Else != nil {
			cs.els = c.compileGroup(v.Else)
		}
		return cs
	default:
		return c.gdefault(e)
	}
}

func (c *planCompiler) gdefault(e Expr) gexpr {
	c.needsAll = true
	return &gfirstrow{e: e}
}

// pushTarget returns the index of the single scan whose slots cover every
// column the conjunct references, provided that scan is not the padded side
// of a LEFT join (filtering it early would suppress padding the row engine
// emits and then filters). -1 means the conjunct stays in the residual
// filter.
func (c *planCompiler) pushTarget(e Expr) int {
	slots := map[int]bool{}
	if !collectSlots(e, c.p.binds, slots) || len(slots) == 0 {
		return -1
	}
	for si, s := range c.p.scans {
		if si > 0 && c.p.joins[si-1].kind == "LEFT" {
			continue
		}
		all := true
		for slot := range slots {
			if slot < s.base || slot >= s.base+s.n {
				all = false
				break
			}
		}
		if all {
			return si
		}
	}
	return -1
}

// collectSlots resolves every column reference in e against binds, recording
// the slots. It reports false when any reference fails to resolve (the
// conjunct then cannot be pushed).
func collectSlots(e Expr, binds []colBind, out map[int]bool) bool {
	switch v := e.(type) {
	case *LiteralExpr:
		return true
	case *ColumnExpr:
		slot, ok := resolveBind(binds, v.Table, v.Name)
		if !ok {
			return false
		}
		out[slot] = true
		return true
	case *UnaryExpr:
		return collectSlots(v.Expr, binds, out)
	case *BinaryExpr:
		return collectSlots(v.Left, binds, out) && collectSlots(v.Right, binds, out)
	case *BetweenExpr:
		return collectSlots(v.Expr, binds, out) && collectSlots(v.Lo, binds, out) && collectSlots(v.Hi, binds, out)
	case *InExpr:
		if v.Sub != nil {
			return false
		}
		if !collectSlots(v.Expr, binds, out) {
			return false
		}
		for _, it := range v.List {
			if !collectSlots(it, binds, out) {
				return false
			}
		}
		return true
	case *IsNullExpr:
		return collectSlots(v.Expr, binds, out)
	case *FuncExpr:
		for _, a := range v.Args {
			if !collectSlots(a, binds, out) {
				return false
			}
		}
		return true
	case *CaseExpr:
		for _, w := range v.Whens {
			if !collectSlots(w.Cond, binds, out) || !collectSlots(w.Then, binds, out) {
				return false
			}
		}
		if v.Else != nil {
			return collectSlots(v.Else, binds, out)
		}
		return true
	default:
		return false
	}
}

// safeExpr reports whether evaluating e can never return an error, for any
// row values. Only such expressions may be evaluated on a different row set
// than the row engine would evaluate them on (pushdown), because skipping an
// erroring row would change whether the whole query fails. The subset is
// deliberately conservative: column and literal operands, comparisons, LIKE,
// string concatenation, BETWEEN, IN over literals/columns, IS NULL, NOT,
// AND/OR, CASE over safe arms, and the scalar functions whose implementations
// are total once their (statically known) arity is right.
func safeExpr(e Expr, binds []colBind) bool {
	switch v := e.(type) {
	case *LiteralExpr:
		return true
	case *ColumnExpr:
		_, ok := resolveBind(binds, v.Table, v.Name)
		return ok
	case *UnaryExpr:
		return v.Op == "NOT" && safeExpr(v.Expr, binds)
	case *BinaryExpr:
		switch v.Op {
		case "=", "<>", "<", "<=", ">", ">=", "LIKE", "||", "AND", "OR":
			return safeExpr(v.Left, binds) && safeExpr(v.Right, binds)
		}
		return false // arithmetic can raise type errors
	case *BetweenExpr:
		return safeExpr(v.Expr, binds) && safeExpr(v.Lo, binds) && safeExpr(v.Hi, binds)
	case *InExpr:
		if v.Sub != nil {
			return false
		}
		if !safeExpr(v.Expr, binds) {
			return false
		}
		for _, it := range v.List {
			if !safeExpr(it, binds) {
				return false
			}
		}
		return true
	case *IsNullExpr:
		return safeExpr(v.Expr, binds)
	case *FuncExpr:
		switch v.Name {
		case "LOWER", "UPPER", "LENGTH", "TRIM":
			if len(v.Args) != 1 {
				return false
			}
		case "NULLIF":
			if len(v.Args) != 2 {
				return false
			}
		case "COALESCE":
		default:
			return false
		}
		for _, a := range v.Args {
			if !safeExpr(a, binds) {
				return false
			}
		}
		return true
	case *CaseExpr:
		for _, w := range v.Whens {
			if !safeExpr(w.Cond, binds) || !safeExpr(w.Then, binds) {
				return false
			}
		}
		if v.Else != nil {
			return safeExpr(v.Else, binds)
		}
		return true
	default:
		return false
	}
}

// uncorrelated reports whether every column reference inside sub (and its
// nested subqueries) resolves against the subquery chain's own FROM tables,
// i.e. the subquery never reads the enclosing query's row. Uncorrelated
// subqueries are evaluated once per statement execution instead of once per
// outer row. Unknown tables or unresolvable names conservatively count as
// correlated; per-row evaluation then reproduces the row engine's errors.
func (c *planCompiler) uncorrelated(sub *SelectStmt) bool {
	return c.subLocal(sub, nil)
}

// subLocal checks sub with the bind lists of enclosing *subqueries* stacked
// below it (the outer statement's binds are deliberately absent: resolving
// against them is what correlation means).
func (c *planCompiler) subLocal(sub *SelectStmt, outer [][]colBind) bool {
	binds, ok := c.subBinds(sub)
	if !ok {
		return false
	}
	stack := append([][]colBind{binds}, outer...)
	resolve := func(table, name string) bool {
		for _, bs := range stack {
			if _, ok := resolveBind(bs, table, name); ok {
				return true
			}
		}
		return false
	}
	var exprLocal func(e Expr) bool
	exprLocal = func(e Expr) bool {
		switch v := e.(type) {
		case nil:
			return true
		case *LiteralExpr, *StarExpr:
			return true
		case *ColumnExpr:
			return resolve(v.Table, v.Name)
		case *UnaryExpr:
			return exprLocal(v.Expr)
		case *BinaryExpr:
			return exprLocal(v.Left) && exprLocal(v.Right)
		case *BetweenExpr:
			return exprLocal(v.Expr) && exprLocal(v.Lo) && exprLocal(v.Hi)
		case *InExpr:
			if !exprLocal(v.Expr) {
				return false
			}
			for _, it := range v.List {
				if !exprLocal(it) {
					return false
				}
			}
			if v.Sub != nil {
				return c.subLocal(v.Sub, stack)
			}
			return true
		case *IsNullExpr:
			return exprLocal(v.Expr)
		case *FuncExpr:
			for _, a := range v.Args {
				if !exprLocal(a) {
					return false
				}
			}
			return true
		case *CastExpr:
			return exprLocal(v.Expr)
		case *CaseExpr:
			for _, w := range v.Whens {
				if !exprLocal(w.Cond) || !exprLocal(w.Then) {
					return false
				}
			}
			if v.Else != nil {
				return exprLocal(v.Else)
			}
			return true
		case *SubqueryExpr:
			return c.subLocal(v.Stmt, stack)
		case *ExistsExpr:
			return c.subLocal(v.Stmt, stack)
		default:
			return false
		}
	}
	if !exprLocal(sub.Where) || !exprLocal(sub.Having) {
		return false
	}
	for _, it := range sub.Items {
		if !exprLocal(it.Expr) {
			return false
		}
	}
	for _, j := range sub.Joins {
		if !exprLocal(j.On) {
			return false
		}
	}
	for _, g := range sub.GroupBy {
		if !exprLocal(g) {
			return false
		}
	}
	for _, o := range sub.OrderBy {
		if !exprLocal(o.Expr) {
			return false
		}
	}
	return true
}

// subBinds builds the bind list a subquery's FROM clause would produce, or
// reports failure for unknown tables.
func (c *planCompiler) subBinds(sub *SelectStmt) ([]colBind, bool) {
	if sub.From == nil {
		return nil, true
	}
	var binds []colBind
	add := func(ref TableRef) bool {
		t := c.db.Table(ref.Name)
		if t == nil {
			return false
		}
		eff := ref.EffectiveName()
		for _, col := range t.Columns {
			binds = append(binds, colBind{table: eff, name: col.Name})
		}
		return true
	}
	if !add(*sub.From) {
		return nil, false
	}
	for _, j := range sub.Joins {
		if !add(j.Table) {
			return nil, false
		}
	}
	return binds, true
}
