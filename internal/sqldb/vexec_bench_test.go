package sqldb

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchDB mirrors the fact/dim shape exp.SQLBench measures, at a fixed
// cardinality, so `go test -bench` can profile the engines directly.
func benchDB(n int) *Database {
	rng := rand.New(rand.NewSource(7))
	db := NewDatabase("bench")
	dimN := n / 8
	dim := NewTable("dim", "k", "name", "w")
	for i := 0; i < dimN; i++ {
		dim.MustAppendRow(Int(int64(i)), Text(fmt.Sprintf("d%03d", i%97)), Float(rng.Float64()*100))
	}
	db.AddTable(dim)
	fact := NewTable("fact", "id", "k", "v")
	for i := 0; i < n; i++ {
		k := Value(Int(int64(rng.Intn(dimN + dimN/4))))
		if rng.Intn(50) == 0 {
			k = Null()
		}
		fact.MustAppendRow(Int(int64(i)), k, Float(rng.Float64()*1000-200))
	}
	db.AddTable(fact)
	return db
}

const benchJoinAgg = `SELECT d.name, COUNT(*), SUM(f.v) FROM fact f JOIN dim d ON f.k = d.k GROUP BY d.name ORDER BY 2 DESC, 1`

func BenchmarkJoinAggRow(b *testing.B) {
	db := benchDB(16000)
	stmt, err := Parse(benchJoinAgg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(db, stmt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinAggVecWarm(b *testing.B) {
	db := benchDB(16000)
	if _, err := Query(db, benchJoinAgg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Query(db, benchJoinAgg); err != nil {
			b.Fatal(err)
		}
	}
}
