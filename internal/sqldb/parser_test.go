package sqldb

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicShapes(t *testing.T) {
	cases := []string{
		`SELECT * FROM t`,
		`SELECT a, b FROM t`,
		`SELECT t.* FROM t`,
		`SELECT DISTINCT a FROM t`,
		`SELECT a AS x FROM t`,
		`SELECT a x FROM t`,
		`SELECT COUNT(*) FROM t`,
		`SELECT COUNT(DISTINCT a) FROM t`,
		`SELECT a FROM t WHERE b = 1 AND c = 'x' OR NOT d < 2`,
		`SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1`,
		`SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 10 OFFSET 5`,
		`SELECT a FROM t1 JOIN t2 ON t1.id = t2.id`,
		`SELECT a FROM t1 INNER JOIN t2 ON t1.id = t2.id LEFT JOIN t3 ON t2.x = t3.x`,
		`SELECT a FROM t1 CROSS JOIN t2`,
		`SELECT a FROM t1, t2 WHERE t1.id = t2.id`,
		`SELECT a FROM t WHERE b IN (1, 2, 3)`,
		`SELECT a FROM t WHERE b IN (SELECT c FROM u)`,
		`SELECT a FROM t WHERE b NOT IN (1)`,
		`SELECT a FROM t WHERE b BETWEEN 1 AND 10`,
		`SELECT a FROM t WHERE b IS NULL`,
		`SELECT a FROM t WHERE b IS NOT NULL`,
		`SELECT a FROM t WHERE b LIKE '%x%'`,
		`SELECT a FROM t WHERE b NOT LIKE '%x%'`,
		`SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t`,
		`SELECT CAST(a AS REAL) FROM t`,
		`SELECT CAST(a AS VARCHAR(255)) FROM t`,
		`SELECT "col with spaces" FROM "my table"`,
		"SELECT `tick` FROM `t`",
		`SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a)`,
		`SELECT -a + 3.5e2 FROM t`,
		`SELECT a FROM t -- comment
		 WHERE b = 1`,
		`SELECT 'it''s escaped'`,
	}
	for _, c := range cases {
		if _, err := Parse(c); err != nil {
			t.Errorf("Parse(%q): %v", c, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELEC a FROM t`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t GROUP a`,
		`SELECT a FROM t ORDER a`,
		`SELECT a FROM t LIMIT x`,
		`SELECT COUNT( FROM t`,
		`SELECT SUM(*) FROM t`,
		`SELECT a FROM t JOIN u`,
		`SELECT a FROM t WHERE b IN`,
		`SELECT CAST(a AS BLOB) FROM t`,
		`SELECT CASE END FROM t`,
		`SELECT a FROM t WHERE b = #`,
		`SELECT "unterminated FROM t`,
	}
	for _, c := range cases {
		if _, err := Parse(c); !errors.Is(err, ErrSyntax) && !errors.Is(err, ErrUnsupported) {
			t.Errorf("Parse(%q): err = %v, want syntax error", c, err)
		}
	}
}

func TestParseSQLRoundTripProperty(t *testing.T) {
	// Property: rendering a parsed statement and re-parsing yields the same
	// rendered SQL (idempotent normal form).
	seeds := []string{
		`SELECT a FROM t WHERE b = 1`,
		`SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY 1 LIMIT 3`,
		`SELECT a FROM t1 JOIN t2 ON t1.x = t2.x WHERE t1.y IN (SELECT z FROM t3)`,
		`SELECT CASE WHEN a THEN 1 ELSE 2 END, CAST(b AS TEXT) FROM t`,
		`SELECT (SELECT MAX(x) FROM u) - MIN(y) FROM t`,
	}
	for _, s := range seeds {
		st1, err := Parse(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		r1 := st1.SQL()
		st2, err := Parse(r1)
		if err != nil {
			t.Fatalf("re-parse %q: %v", r1, err)
		}
		if r2 := st2.SQL(); r1 != r2 {
			t.Errorf("not idempotent:\n%s\n%s", r1, r2)
		}
	}
}

func TestLexerNeverPanicsProperty(t *testing.T) {
	// Property: arbitrary input never panics the lexer/parser; it either
	// parses or returns an error.
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnalyze(t *testing.T) {
	cases := []struct {
		sql  string
		want Complexity
	}{
		{
			`SELECT "fatal_accidents_00_14" FROM airlines WHERE airline = 'Malaysia Airlines'`,
			Complexity{Joins: 0, GroupBys: 0, Subqueries: 0, Aggregates: 0, Columns: 2},
		},
		{
			`SELECT COUNT(*) FROM t WHERE a = 1`,
			Complexity{Aggregates: 1, Columns: 1},
		},
		{
			`SELECT a, COUNT(*) FROM t GROUP BY a HAVING SUM(b) > 2`,
			Complexity{GroupBys: 1, Aggregates: 2, Columns: 2},
		},
		{
			`SELECT x FROM t WHERE y = (SELECT MAX(y) FROM t)`,
			Complexity{Subqueries: 1, Aggregates: 1, Columns: 2},
		},
		{
			`SELECT SUM(o.total) FROM orders o JOIN customers c ON o.cid = c.id JOIN x ON x.i = c.id`,
			Complexity{Joins: 2, Aggregates: 1, Columns: 4}, // id counted once across tables

		},
		{
			`SELECT (SELECT COUNT(a) FROM t WHERE b = 1) * 100.0 / (SELECT COUNT(a) FROM t)`,
			Complexity{Subqueries: 2, Aggregates: 2, Columns: 2},
		},
	}
	for _, c := range cases {
		got, err := Analyze(c.sql)
		if err != nil {
			t.Fatalf("Analyze(%q): %v", c.sql, err)
		}
		if got != c.want {
			t.Errorf("Analyze(%q) = %+v want %+v", c.sql, got, c.want)
		}
	}
}

func TestAnalyzeSyntaxError(t *testing.T) {
	if _, err := Analyze("not sql"); !errors.Is(err, ErrSyntax) {
		t.Errorf("err = %v", err)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Float(2.0), 0, true},
		{Float(3.5), Int(3), 1, true},
		{Text("a"), Text("b"), -1, true},
		{Text("a"), Text("a"), 0, true},
		{Bool(false), Bool(true), -1, true},
		{Null(), Int(1), 0, false},
		{Int(1), Null(), 0, false},
		{Text("5"), Int(5), 0, true},   // numeric coercion of text
		{Int(5), Text("5.0"), 0, true}, // both directions
		{Text("abc"), Int(5), 0, false},
	}
	for _, c := range cases {
		cmp, ok := c.a.Compare(c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%v, %v) = %d,%v want %d,%v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestValueGroupKeyProperty(t *testing.T) {
	// Property: equal values (after numeric coercion between int and
	// integral float) share a group key; unequal ints do not.
	f := func(a, b int32) bool {
		ka := Int(int64(a)).key()
		kf := Float(float64(a)).key()
		if ka != kf {
			return false
		}
		if a != b && Int(int64(a)).key() == Int(int64(b)).key() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "REAL",
		KindText: "TEXT", KindBool: "BOOLEAN",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Errorf("unknown kind: %q", Kind(99).String())
	}
}
