package sqldb

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// testDB builds the airline-safety style fixture used throughout the engine
// tests, mirroring the paper's running example.
func testDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase("airlinesafety")
	tab := NewTable("airlines", "airline", "avail_seat_km_per_week", "incidents_85_99", "fatal_accidents_00_14", "fatalities_00_14")
	rows := []struct {
		name  string
		seats int64
		inc   int64
		fatal int64
		fat   int64
	}{
		{"Aer Lingus", 320906734, 2, 0, 0},
		{"Aeroflot", 1197672318, 76, 1, 88},
		{"Malaysia Airlines", 1039171244, 3, 2, 537},
		{"United / Continental", 7139291291, 19, 2, 109},
		{"Delta / Northwest", 6525658894, 24, 2, 51},
		{"Southwest Airlines", 3276525770, 1, 0, 0},
	}
	for _, r := range rows {
		tab.MustAppendRow(Text(r.name), Int(r.seats), Int(r.inc), Int(r.fatal), Int(r.fat))
	}
	db.AddTable(tab)

	drinks := NewTable("drinks", "country", "beer_servings", "wine_servings")
	drinks.MustAppendRow(Text("France"), Int(127), Int(370))
	drinks.MustAppendRow(Text("USA"), Int(249), Int(84))
	drinks.MustAppendRow(Text("Germany"), Int(346), Int(175))
	drinks.MustAppendRow(Text("Italy"), Int(85), Int(237))
	db.AddTable(drinks)
	return db
}

func scalar(t *testing.T, db *Database, sql string) Value {
	t.Helper()
	v, err := QueryScalar(db, sql)
	if err != nil {
		t.Fatalf("QueryScalar(%q): %v", sql, err)
	}
	return v
}

func TestPaperRunningExample(t *testing.T) {
	db := testDB(t)
	v := scalar(t, db, `SELECT "fatal_accidents_00_14" FROM airlines WHERE airline = 'Malaysia Airlines'`)
	if got, _ := v.AsInt(); got != 2 {
		t.Errorf("got %v want 2", v)
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want float64
	}{
		{`SELECT COUNT(*) FROM airlines`, 6},
		{`SELECT COUNT(*) FROM airlines WHERE fatal_accidents_00_14 = 2`, 3},
		{`SELECT SUM(fatalities_00_14) FROM airlines`, 785},
		{`SELECT AVG(incidents_85_99) FROM airlines`, 125.0 / 6},
		{`SELECT MIN(incidents_85_99) FROM airlines`, 1},
		{`SELECT MAX(fatalities_00_14) FROM airlines`, 537},
		{`SELECT COUNT(DISTINCT fatal_accidents_00_14) FROM airlines`, 3},
		{`SELECT COUNT(airline) FROM airlines WHERE incidents_85_99 > 20`, 2},
	}
	for _, c := range cases {
		v := scalar(t, db, c.sql)
		f, ok := v.AsFloat()
		if !ok || math.Abs(f-c.want) > 1e-9 {
			t.Errorf("%s = %v want %v", c.sql, v, c.want)
		}
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	db := testDB(t)
	v := scalar(t, db, `SELECT COUNT(*) FROM airlines WHERE airline = 'Nope'`)
	if got, _ := v.AsInt(); got != 0 {
		t.Errorf("COUNT over empty = %v", v)
	}
	v = scalar(t, db, `SELECT SUM(fatalities_00_14) FROM airlines WHERE airline = 'Nope'`)
	if !v.IsNull() {
		t.Errorf("SUM over empty = %v, want NULL", v)
	}
}

func TestPercentageQueryPattern(t *testing.T) {
	// The prompt template in Figure 3 suggests this exact shape.
	db := testDB(t)
	sql := `SELECT (SELECT COUNT(airline) FROM airlines WHERE fatal_accidents_00_14 = 0) * 100.0 / (SELECT COUNT(airline) FROM airlines)`
	v := scalar(t, db, sql)
	f, _ := v.AsFloat()
	if math.Abs(f-100.0/3) > 1e-9 {
		t.Errorf("percentage = %v want %.4f", v, 100.0/3)
	}
}

func TestScalarSubqueryInWhere(t *testing.T) {
	db := testDB(t)
	v := scalar(t, db, `SELECT airline FROM airlines WHERE fatalities_00_14 = (SELECT MAX(fatalities_00_14) FROM airlines)`)
	if v.Text() != "Malaysia Airlines" {
		t.Errorf("got %q", v.Text())
	}
}

func TestCorrelatedSubquery(t *testing.T) {
	db := testDB(t)
	// Airlines whose fatalities exceed the average of all airlines.
	res, err := Query(db, `SELECT airline FROM airlines a WHERE a.fatalities_00_14 > (SELECT AVG(fatalities_00_14) FROM airlines) ORDER BY airline`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "Malaysia Airlines" {
		t.Errorf("rows = %v", res)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	res, err := Query(db, `SELECT fatal_accidents_00_14, COUNT(*) AS n FROM airlines GROUP BY fatal_accidents_00_14 HAVING COUNT(*) > 1 ORDER BY fatal_accidents_00_14`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res)
	}
	if n, _ := res.Rows[0][1].AsInt(); n != 2 { // two airlines with 0
		t.Errorf("group 0 count = %v", res.Rows[0][1])
	}
	if n, _ := res.Rows[1][1].AsInt(); n != 3 { // three airlines with 2
		t.Errorf("group 2 count = %v", res.Rows[1][1])
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := testDB(t)
	v := scalar(t, db, `SELECT airline FROM airlines ORDER BY fatalities_00_14 DESC LIMIT 1`)
	if v.Text() != "Malaysia Airlines" {
		t.Errorf("got %q", v.Text())
	}
	v = scalar(t, db, `SELECT airline FROM airlines ORDER BY fatalities_00_14 DESC LIMIT 1 OFFSET 1`)
	if v.Text() != "United / Continental" {
		t.Errorf("offset got %q", v.Text())
	}
	// ORDER BY alias and ordinal.
	v = scalar(t, db, `SELECT airline AS a FROM airlines ORDER BY a LIMIT 1`)
	if v.Text() != "Aer Lingus" {
		t.Errorf("alias order got %q", v.Text())
	}
	v = scalar(t, db, `SELECT airline FROM airlines ORDER BY 1 DESC LIMIT 1`)
	if v.Text() != "United / Continental" {
		t.Errorf("ordinal order got %q", v.Text())
	}
}

func TestJoin(t *testing.T) {
	db := NewDatabase("shop")
	orders := NewTable("orders", "id", "customer_id", "total")
	orders.MustAppendRow(Int(1), Int(10), Float(99.5))
	orders.MustAppendRow(Int(2), Int(11), Float(15.0))
	orders.MustAppendRow(Int(3), Int(10), Float(42.0))
	customers := NewTable("customers", "id", "name")
	customers.MustAppendRow(Int(10), Text("Ada"))
	customers.MustAppendRow(Int(11), Text("Bob"))
	db.AddTable(orders)
	db.AddTable(customers)

	v, err := QueryScalar(db, `SELECT SUM(o.total) FROM orders o JOIN customers c ON o.customer_id = c.id WHERE c.name = 'Ada'`)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsFloat(); f != 141.5 {
		t.Errorf("sum = %v", v)
	}

	// Three-way join via chained JOINs.
	items := NewTable("items", "order_id", "sku")
	items.MustAppendRow(Int(1), Text("X"))
	items.MustAppendRow(Int(3), Text("Y"))
	items.MustAppendRow(Int(2), Text("Z"))
	db.AddTable(items)
	v, err = QueryScalar(db, `SELECT COUNT(*) FROM customers c JOIN orders o ON o.customer_id = c.id JOIN items i ON i.order_id = o.id WHERE c.name = 'Ada'`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.AsInt(); n != 2 {
		t.Errorf("count = %v", v)
	}
}

func TestLeftJoin(t *testing.T) {
	db := NewDatabase("lj")
	a := NewTable("a", "id")
	a.MustAppendRow(Int(1))
	a.MustAppendRow(Int(2))
	b := NewTable("b", "id", "v")
	b.MustAppendRow(Int(1), Text("one"))
	db.AddTable(a)
	db.AddTable(b)
	res, err := Query(db, `SELECT a.id, b.v FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || !res.Rows[1][1].IsNull() {
		t.Errorf("left join rows = %v", res)
	}
}

func TestCrossJoin(t *testing.T) {
	db := testDB(t)
	v := scalar(t, db, `SELECT COUNT(*) FROM airlines, drinks`)
	if n, _ := v.AsInt(); n != 24 {
		t.Errorf("cross join count = %v", v)
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	res, err := Query(db, `SELECT DISTINCT fatal_accidents_00_14 FROM airlines ORDER BY fatal_accidents_00_14`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("distinct rows = %v", res)
	}
}

func TestExpressionsAndFunctions(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT 1 + 2 * 3`, "7"},
		{`SELECT (1 + 2) * 3`, "9"},
		{`SELECT 10 / 4`, "2.5"},
		{`SELECT 10 / 5`, "2"},
		{`SELECT 7 % 3`, "1"},
		{`SELECT -5`, "-5"},
		{`SELECT ABS(-4.5)`, "4.5"},
		{`SELECT ROUND(3.14159, 2)`, "3.14"},
		{`SELECT ROUND(2.5)`, "3"},
		{`SELECT LOWER('ABC')`, "abc"},
		{`SELECT UPPER('abc')`, "ABC"},
		{`SELECT LENGTH('hello')`, "5"},
		{`SELECT TRIM('  x  ')`, "x"},
		{`SELECT COALESCE(NULL, NULL, 'fallback')`, "fallback"},
		{`SELECT NULLIF(3, 3)`, "NULL"},
		{`SELECT NULLIF(3, 4)`, "3"},
		{`SELECT SUBSTR('abcdef', 2, 3)`, "bcd"},
		{`SELECT 'a' || 'b'`, "ab"},
		{`SELECT CAST(3.9 AS INTEGER)`, "3"},
		{`SELECT CAST(7 AS REAL) / 2`, "3.5"},
		{`SELECT CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END`, "b"},
		{`SELECT CASE WHEN 2 > 1 THEN 'a' END`, "a"},
	}
	for _, c := range cases {
		v := scalar(t, db, c.sql)
		if v.String() != c.want {
			t.Errorf("%s = %q want %q", c.sql, v.String(), c.want)
		}
	}
}

func TestPredicates(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want int64
	}{
		{`SELECT COUNT(*) FROM airlines WHERE incidents_85_99 BETWEEN 2 AND 20`, 3},
		{`SELECT COUNT(*) FROM airlines WHERE incidents_85_99 NOT BETWEEN 2 AND 20`, 3},
		{`SELECT COUNT(*) FROM airlines WHERE airline LIKE '%airlines%'`, 2},
		{`SELECT COUNT(*) FROM airlines WHERE airline LIKE 'Aer_Lingus'`, 1},
		{`SELECT COUNT(*) FROM airlines WHERE airline LIKE 'Aer_Lingus_'`, 0},
		{`SELECT COUNT(*) FROM airlines WHERE airline LIKE 'Aer L%'`, 1},
		{`SELECT COUNT(*) FROM airlines WHERE fatal_accidents_00_14 IN (1, 2)`, 4},
		{`SELECT COUNT(*) FROM airlines WHERE fatal_accidents_00_14 NOT IN (1, 2)`, 2},
		{`SELECT COUNT(*) FROM airlines WHERE airline IN (SELECT country FROM drinks)`, 0},
		{`SELECT COUNT(*) FROM airlines WHERE NOT fatal_accidents_00_14 = 0`, 4},
		{`SELECT COUNT(*) FROM airlines WHERE fatal_accidents_00_14 = 0 OR fatalities_00_14 > 500`, 3},
		{`SELECT COUNT(*) FROM airlines WHERE fatal_accidents_00_14 <> 0 AND incidents_85_99 < 10`, 1},
		{`SELECT COUNT(*) FROM drinks WHERE wine_servings >= 175`, 3},
		{`SELECT COUNT(*) FROM drinks WHERE country IS NOT NULL`, 4},
		{`SELECT COUNT(*) FROM drinks WHERE country IS NULL`, 0},
	}
	for _, c := range cases {
		v := scalar(t, db, c.sql)
		if n, _ := v.AsInt(); n != c.want {
			t.Errorf("%s = %v want %d", c.sql, v, c.want)
		}
	}
}

func TestExists(t *testing.T) {
	db := testDB(t)
	v := scalar(t, db, `SELECT COUNT(*) FROM drinks d WHERE EXISTS (SELECT 1 FROM airlines a WHERE a.fatalities_00_14 > d.wine_servings)`)
	if n, _ := v.AsInt(); n != 4 {
		t.Errorf("exists count = %v", v)
	}
}

func TestErrors(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want error
	}{
		{`SELECT`, ErrSyntax},
		{`FROM airlines`, ErrSyntax},
		{`SELECT * FROM missing`, ErrUnknownTable},
		{`SELECT nope FROM airlines`, ErrUnknownColumn},
		{`SELECT a.b FROM airlines`, ErrUnknownColumn},
		{`SELECT * FROM airlines UNION SELECT * FROM drinks`, ErrUnsupported},
		{`SELECT SUM(airline) FROM airlines`, ErrType},
		{`SELECT FOO(1)`, ErrUnsupported},
		{`SELECT 'unterminated`, ErrSyntax},
		{`SELECT COUNT(*) FROM airlines extra garbage (`, ErrSyntax},
	}
	for _, c := range cases {
		_, err := Query(db, c.sql)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.sql, err, c.want)
		}
	}
}

func TestScalarErrors(t *testing.T) {
	db := testDB(t)
	_, err := QueryScalar(db, `SELECT airline FROM airlines`)
	if !errors.Is(err, ErrNotScalar) {
		t.Errorf("multi-row scalar err = %v", err)
	}
	_, err = QueryScalar(db, `SELECT airline, incidents_85_99 FROM airlines LIMIT 1`)
	if !errors.Is(err, ErrNotScalar) {
		t.Errorf("multi-col scalar err = %v", err)
	}
	_, err = QueryScalar(db, `SELECT airline FROM airlines WHERE airline = 'Nope'`)
	if !errors.Is(err, ErrNotScalar) {
		t.Errorf("zero-row scalar err = %v", err)
	}
}

func TestNullSemantics(t *testing.T) {
	db := NewDatabase("nulls")
	tab := NewTable("t", "a", "b")
	tab.MustAppendRow(Int(1), Null())
	tab.MustAppendRow(Int(2), Int(20))
	tab.MustAppendRow(Null(), Int(30))
	db.AddTable(tab)

	v, _ := QueryScalar(db, `SELECT COUNT(*) FROM t WHERE b = 20`)
	if n, _ := v.AsInt(); n != 1 {
		t.Errorf("null eq = %v", v)
	}
	v, _ = QueryScalar(db, `SELECT COUNT(b) FROM t`)
	if n, _ := v.AsInt(); n != 2 {
		t.Errorf("COUNT skips nulls = %v", v)
	}
	v, _ = QueryScalar(db, `SELECT SUM(a) FROM t`)
	if n, _ := v.AsInt(); n != 3 {
		t.Errorf("SUM skips nulls = %v", v)
	}
	v, _ = QueryScalar(db, `SELECT 1 + NULL`)
	if !v.IsNull() {
		t.Errorf("1+NULL = %v", v)
	}
	v, _ = QueryScalar(db, `SELECT COUNT(*) FROM t WHERE a IS NULL`)
	if n, _ := v.AsInt(); n != 1 {
		t.Errorf("IS NULL = %v", v)
	}
}

func TestQuotedIdentifiersWithSpaces(t *testing.T) {
	db := NewDatabase("quoted")
	tab := NewTable("grand prix", "Driver Name", "Wins")
	tab.MustAppendRow(Text("Lewis"), Int(105))
	tab.MustAppendRow(Text("Michael"), Int(91))
	db.AddTable(tab)
	v, err := QueryScalar(db, `SELECT "Driver Name" FROM "grand prix" WHERE "Wins" = (SELECT MAX("Wins") FROM "grand prix")`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Text() != "Lewis" {
		t.Errorf("got %q", v.Text())
	}
}

func TestCaseInsensitiveNames(t *testing.T) {
	db := testDB(t)
	v := scalar(t, db, `SELECT COUNT(*) FROM AIRLINES WHERE AIRLINE = 'Aeroflot'`)
	if n, _ := v.AsInt(); n != 1 {
		t.Errorf("got %v", v)
	}
}

func TestStatementRoundTrip(t *testing.T) {
	// SQL() output must re-parse to an equivalent statement.
	queries := []string{
		`SELECT "fatal_accidents_00_14" FROM airlines WHERE airline = 'Malaysia Airlines'`,
		`SELECT COUNT(*) FROM airlines WHERE incidents_85_99 BETWEEN 2 AND 20`,
		`SELECT fatal_accidents_00_14, COUNT(*) FROM airlines GROUP BY fatal_accidents_00_14 HAVING COUNT(*) > 1 ORDER BY 1 DESC LIMIT 2`,
		`SELECT (SELECT COUNT(airline) FROM airlines WHERE fatal_accidents_00_14 = 0) * 100.0 / (SELECT COUNT(airline) FROM airlines)`,
		`SELECT DISTINCT airline FROM airlines WHERE airline LIKE '%air%' OR NOT incidents_85_99 = 1`,
	}
	db := testDB(t)
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		rendered := stmt.SQL()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse %q: %v", rendered, err)
		}
		r1, err := Exec(db, stmt)
		if err != nil {
			t.Fatalf("exec %q: %v", q, err)
		}
		r2, err := Exec(db, stmt2)
		if err != nil {
			t.Fatalf("exec re-parsed %q: %v", rendered, err)
		}
		if r1.String() != r2.String() {
			t.Errorf("round-trip result mismatch for %q:\n%s\nvs\n%s", q, r1, r2)
		}
	}
}

func TestResultString(t *testing.T) {
	db := testDB(t)
	res, err := Query(db, `SELECT airline, fatalities_00_14 FROM airlines WHERE fatalities_00_14 > 100 ORDER BY fatalities_00_14 DESC`)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "Malaysia Airlines | 537") {
		t.Errorf("result string = %q", s)
	}
}

func TestLoadCSV(t *testing.T) {
	csvData := "airline,crashes,rate\nAlpha,3,0.5\nBeta,0,\nGamma,12,1.25\n"
	tab, err := LoadCSV("safety", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Columns[1].Type != KindInt {
		t.Errorf("crashes type = %v", tab.Columns[1].Type)
	}
	if tab.Columns[2].Type != KindFloat {
		t.Errorf("rate type = %v", tab.Columns[2].Type)
	}
	if !tab.Rows[1][2].IsNull() {
		t.Errorf("empty cell should be NULL")
	}
	db := NewDatabase("d")
	db.AddTable(tab)
	v, err := QueryScalar(db, `SELECT SUM(crashes) FROM safety`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.AsInt(); n != 15 {
		t.Errorf("sum = %v", v)
	}
}

func TestUniqueValues(t *testing.T) {
	db := testDB(t)
	vals, err := db.Table("airlines").UniqueValues("fatal_accidents_00_14")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Errorf("unique = %v", vals)
	}
	if _, err := db.Table("airlines").UniqueValues("nope"); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("err = %v", err)
	}
}

func TestSchemaRendering(t *testing.T) {
	db := testDB(t)
	s := db.Schema()
	if !strings.Contains(s, `CREATE TABLE "airlines"`) || !strings.Contains(s, `"airline" TEXT`) {
		t.Errorf("schema = %q", s)
	}
	if !strings.Contains(s, `"incidents_85_99" INTEGER`) {
		t.Errorf("schema types missing: %q", s)
	}
	sr := db.SampleRows(2)
	if !strings.Contains(sr, "Aer Lingus") || strings.Count(sr, "\n") < 4 {
		t.Errorf("samples = %q", sr)
	}
}

func TestTableLessSelect(t *testing.T) {
	db := NewDatabase("empty")
	v, err := QueryScalar(db, `SELECT 40 + 2`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.AsInt(); n != 42 {
		t.Errorf("got %v", v)
	}
}

func TestSemicolonTolerated(t *testing.T) {
	db := testDB(t)
	if _, err := Query(db, `SELECT COUNT(*) FROM airlines;`); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
}
