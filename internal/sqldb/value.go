// Package sqldb implements the relational substrate CEDAR executes
// verification queries against. It is a self-contained, in-memory SQL engine
// (the paper uses DuckDB) with a lexer, recursive-descent parser, and a
// tree-walking evaluator covering the query surface exercised by the paper's
// workloads: aggregates, WHERE predicates, inner joins, GROUP BY/HAVING,
// scalar and IN subqueries (including correlated ones), ORDER BY/LIMIT,
// arithmetic, CAST, and a set of scalar functions.
package sqldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types of SQL values.
type Kind int

// Value kinds. Integers and floats are distinct so that COUNT stays integral
// while AVG produces floats, matching conventional SQL output formatting.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a dynamically typed SQL cell.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the SQL NULL value.
func Null() Value { return Value{kind: KindNull} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Text returns a string value.
func Text(v string) Value { return Value{kind: KindText, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind returns the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsNumeric reports whether the value is an integer or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsFloat converts numeric and boolean values to float64. ok is false for
// NULL and for text that does not parse as a number.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	case KindBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case KindText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// AsInt converts the value to int64 when it is integral. ok is false for
// NULL, non-numeric text, and floats with a fractional part.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		if v.f == math.Trunc(v.f) {
			return int64(v.f), true
		}
		return 0, false
	case KindText:
		i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			return 0, false
		}
		return i, true
	default:
		return 0, false
	}
}

// AsBool interprets the value as a SQL condition: booleans directly,
// numbers as non-zero, NULL as false (unknown).
func (v Value) AsBool() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	default:
		return false
	}
}

// Text returns the textual content of a TEXT value, or the formatted form
// of other kinds.
func (v Value) Text() string {
	if v.kind == KindText {
		return v.s
	}
	return v.String()
}

// String renders the value the way result cells are surfaced to the
// verification pipeline and the agent observation channel.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		s := strconv.FormatFloat(v.f, 'f', -1, 64)
		return s
	case KindText:
		return v.s
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Equal reports SQL equality between two values with numeric coercion and
// case-sensitive text comparison. Comparisons involving NULL are false.
func (v Value) Equal(o Value) bool {
	c, ok := v.Compare(o)
	return ok && c == 0
}

// Compare orders two values: -1, 0, or +1. Numeric values compare by value
// across int/float; text compares lexically; booleans false<true. ok is
// false when either side is NULL or the kinds are incomparable.
func (v Value) Compare(o Value) (int, bool) {
	if v.IsNull() || o.IsNull() {
		return 0, false
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.kind == KindText && o.kind == KindText {
		return strings.Compare(v.s, o.s), true
	}
	if v.kind == KindBool && o.kind == KindBool {
		switch {
		case v.b == o.b:
			return 0, true
		case !v.b:
			return -1, true
		default:
			return 1, true
		}
	}
	// Mixed text/number: attempt numeric coercion of the text side, the
	// permissive behaviour of engines like SQLite that claim queries rely
	// on when CSV columns are typed as text.
	if v.IsNumeric() && o.kind == KindText {
		if f, ok := o.AsFloat(); ok {
			return v.Compare(Float(f))
		}
	}
	if v.kind == KindText && o.IsNumeric() {
		if f, ok := v.AsFloat(); ok {
			return Float(f).Compare(o)
		}
	}
	return 0, false
}

// key returns a map key identifying the value for GROUP BY and DISTINCT.
func (v Value) key() string {
	switch v.kind {
	case KindNull:
		return "\x00N"
	case KindInt:
		return "\x00I" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		if v.f == math.Trunc(v.f) && math.Abs(v.f) < 1e15 {
			// Integral floats group with equal ints.
			return "\x00I" + strconv.FormatInt(int64(v.f), 10)
		}
		return "\x00F" + strconv.FormatFloat(v.f, 'b', -1, 64)
	case KindText:
		return "\x00T" + v.s
	case KindBool:
		if v.b {
			return "\x00B1"
		}
		return "\x00B0"
	default:
		return "\x00?"
	}
}

// Vec is a typed column vector: the unit of data the vectorized executor
// moves between operators. Columns whose values are uniformly integral or
// floating-point are stored unboxed (with a parallel null mask); columns
// that mix kinds demote to generic Value storage on first mismatch. All
// accessors reconstruct exactly the Value a row-at-a-time evaluator would
// have seen, so the two engines cannot diverge through storage.
type Vec struct {
	kind   Kind    // KindInt or KindFloat for unboxed storage, KindNull for generic
	ints   []int64 // unboxed values when kind == KindInt
	floats []float64
	nulls  []bool  // parallel null mask for unboxed storage
	any    []Value // generic storage when kind == KindNull
}

// NewVec returns an empty vector with storage hinted by kind (pass KindNull
// for generic storage) and capacity for n values.
func NewVec(kind Kind, n int) *Vec {
	switch kind {
	case KindInt:
		return &Vec{kind: KindInt, ints: make([]int64, 0, n), nulls: make([]bool, 0, n)}
	case KindFloat:
		return &Vec{kind: KindFloat, floats: make([]float64, 0, n), nulls: make([]bool, 0, n)}
	default:
		return &Vec{any: make([]Value, 0, n)}
	}
}

// Len returns the number of values in the vector.
func (v *Vec) Len() int {
	if v.kind == KindNull {
		return len(v.any)
	}
	return len(v.nulls)
}

// At returns the i'th value.
func (v *Vec) At(i int) Value {
	switch v.kind {
	case KindInt:
		if v.nulls[i] {
			return Null()
		}
		return Int(v.ints[i])
	case KindFloat:
		if v.nulls[i] {
			return Null()
		}
		return Float(v.floats[i])
	default:
		return v.any[i]
	}
}

// Append adds a value, demoting the vector to generic storage when the
// value's kind does not match the unboxed storage kind.
func (v *Vec) Append(val Value) {
	switch v.kind {
	case KindInt:
		switch val.kind {
		case KindInt:
			v.ints = append(v.ints, val.i)
			v.nulls = append(v.nulls, false)
			return
		case KindNull:
			v.ints = append(v.ints, 0)
			v.nulls = append(v.nulls, true)
			return
		}
	case KindFloat:
		switch val.kind {
		case KindFloat:
			v.floats = append(v.floats, val.f)
			v.nulls = append(v.nulls, false)
			return
		case KindNull:
			v.floats = append(v.floats, 0)
			v.nulls = append(v.nulls, true)
			return
		}
	default:
		v.any = append(v.any, val)
		return
	}
	v.demote()
	v.any = append(v.any, val)
}

// demote rewrites unboxed storage as generic Values.
func (v *Vec) demote() {
	n := v.Len()
	any := make([]Value, 0, n+1)
	for i := 0; i < n; i++ {
		any = append(any, v.At(i))
	}
	v.kind, v.ints, v.floats, v.nulls, v.any = KindNull, nil, nil, nil, any
}

// Gather returns a new vector holding v[idx[0]], v[idx[1]], ... A negative
// index yields NULL (used for the padding side of outer joins).
func (v *Vec) Gather(idx []int) *Vec {
	out := NewVec(v.kind, len(idx))
	switch v.kind {
	case KindInt:
		for _, i := range idx {
			if i < 0 || v.nulls[i] {
				out.ints = append(out.ints, 0)
				out.nulls = append(out.nulls, true)
			} else {
				out.ints = append(out.ints, v.ints[i])
				out.nulls = append(out.nulls, false)
			}
		}
	case KindFloat:
		for _, i := range idx {
			if i < 0 || v.nulls[i] {
				out.floats = append(out.floats, 0)
				out.nulls = append(out.nulls, true)
			} else {
				out.floats = append(out.floats, v.floats[i])
				out.nulls = append(out.nulls, false)
			}
		}
	default:
		for _, i := range idx {
			if i < 0 {
				out.any = append(out.any, Null())
			} else {
				out.any = append(out.any, v.any[i])
			}
		}
	}
	return out
}

// AppendVec appends all of o's values, with an unboxed bulk copy when both
// vectors share typed storage.
func (v *Vec) AppendVec(o *Vec) {
	if v.kind == o.kind && v.kind != KindNull {
		switch v.kind {
		case KindInt:
			v.ints = append(v.ints, o.ints...)
		case KindFloat:
			v.floats = append(v.floats, o.floats...)
		}
		v.nulls = append(v.nulls, o.nulls...)
		return
	}
	for i, n := 0, o.Len(); i < n; i++ {
		v.Append(o.At(i))
	}
}

// IsNullAt reports whether the i'th value is NULL without boxing it.
func (v *Vec) IsNullAt(i int) bool {
	if v.kind == KindNull {
		return v.any[i].IsNull()
	}
	return v.nulls[i]
}

// appendKey appends the i'th value's grouping key (Value.key) to dst. The
// unboxed integer path mirrors Value.key's "\x00I" + decimal form directly.
func (v *Vec) appendKey(i int, dst []byte) []byte {
	if v.kind == KindInt && !v.nulls[i] {
		dst = append(dst, 0, 'I')
		return strconv.AppendInt(dst, v.ints[i], 10)
	}
	return append(dst, v.At(i).key()...)
}

// inferLiteral converts raw text (e.g. from CSV ingestion) to the most
// specific value kind: integer, float, then text. Empty strings become NULL.
func inferLiteral(raw string) Value {
	t := strings.TrimSpace(raw)
	if t == "" {
		return Null()
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return Float(f)
	}
	return Text(raw)
}
