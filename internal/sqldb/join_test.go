package sqldb

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildJoinDB constructs two relations with a shared key and known join
// cardinalities for cross-checking hash vs nested-loop execution.
func buildJoinDB(rows int, rng *rand.Rand) *Database {
	db := NewDatabase("jj")
	a := NewTable("a", "id", "av")
	b := NewTable("b", "id", "bv")
	for i := 0; i < rows; i++ {
		a.MustAppendRow(Int(int64(rng.Intn(rows/2+1))), Int(int64(i)))
		b.MustAppendRow(Int(int64(rng.Intn(rows/2+1))), Int(int64(i*10)))
	}
	// Some NULL keys on both sides: they must never match.
	a.MustAppendRow(Null(), Int(-1))
	b.MustAppendRow(Null(), Int(-2))
	db.AddTable(a)
	db.AddTable(b)
	return db
}

// TestHashJoinMatchesNestedLoop cross-checks the hash-join fast path
// against the nested-loop fallback on random data: the equi-join form takes
// the hash path, an equivalent-but-obfuscated ON expression forces the
// nested loop, and both must agree.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		db := buildJoinDB(30, rng)
		hashed, err := Query(db, `SELECT COUNT(*) FROM a JOIN b ON a.id = b.id`)
		if err != nil {
			t.Fatal(err)
		}
		// (a.id = b.id) AND TRUE is not a bare equi-join, so it nested-loops.
		looped, err := Query(db, `SELECT COUNT(*) FROM a JOIN b ON a.id = b.id AND TRUE`)
		if err != nil {
			t.Fatal(err)
		}
		if hashed.String() != looped.String() {
			t.Fatalf("trial %d: hash %v vs loop %v", trial, hashed, looped)
		}
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	db := NewDatabase("lj")
	a := NewTable("a", "id")
	for i := 1; i <= 4; i++ {
		a.MustAppendRow(Int(int64(i)))
	}
	b := NewTable("b", "id", "v")
	b.MustAppendRow(Int(2), Text("two"))
	b.MustAppendRow(Int(4), Text("four"))
	db.AddTable(a)
	db.AddTable(b)
	res, err := Query(db, `SELECT a.id, b.v FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.Rows[0][1].IsNull() || res.Rows[1][1].Text() != "two" {
		t.Errorf("left join padding wrong: %v", res)
	}
}

func TestHashJoinNumericCoercion(t *testing.T) {
	// Text "5" must join with integer 5 on both execution paths, matching
	// Value.Compare's coercion.
	db := NewDatabase("co")
	a := NewTable("a", "k")
	a.MustAppendRow(Text("5"))
	a.MustAppendRow(Text("x"))
	b := NewTable("b", "k")
	b.MustAppendRow(Int(5))
	db.AddTable(a)
	db.AddTable(b)
	hashed, err := QueryScalar(db, `SELECT COUNT(*) FROM a JOIN b ON a.k = b.k`)
	if err != nil {
		t.Fatal(err)
	}
	looped, err := QueryScalar(db, `SELECT COUNT(*) FROM a JOIN b ON a.k = b.k AND TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	if hashed.String() != looped.String() || hashed.String() != "1" {
		t.Errorf("hash %v vs loop %v", hashed, looped)
	}
}

func TestEquiJoinDetection(t *testing.T) {
	db := buildJoinDB(5, rand.New(rand.NewSource(1)))
	// Non-equality ON must still work via nested loop.
	v, err := QueryScalar(db, `SELECT COUNT(*) FROM a JOIN b ON a.id < b.id`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.AsInt(); n <= 0 {
		t.Errorf("inequality join count = %v", v)
	}
	// ON referencing only one side falls back without error.
	if _, err := Query(db, `SELECT COUNT(*) FROM a JOIN b ON a.id = a.av`); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkHashVsNestedJoin quantifies the hash-join speedup the engine
// gets on equi-joins (the JoinBench workloads join per claim).
func BenchmarkHashVsNestedJoin(b *testing.B) {
	db := buildJoinDB(400, rand.New(rand.NewSource(7)))
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Query(db, `SELECT COUNT(*) FROM a JOIN b ON a.id = b.id`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nested", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Query(db, `SELECT COUNT(*) FROM a JOIN b ON a.id = b.id AND TRUE`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestJoinSelfConsistencyProperty: for random key ranges, COUNT over the
// join equals the sum over shared keys of the product of per-side
// multiplicities.
func TestJoinSelfConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(40)
		db := NewDatabase("p")
		a := NewTable("a", "k")
		b := NewTable("b", "k")
		countA := map[int64]int64{}
		countB := map[int64]int64{}
		for i := 0; i < n; i++ {
			ka := int64(rng.Intn(8))
			kb := int64(rng.Intn(8))
			a.MustAppendRow(Int(ka))
			b.MustAppendRow(Int(kb))
			countA[ka]++
			countB[kb]++
		}
		db.AddTable(a)
		db.AddTable(b)
		var want int64
		for k, ca := range countA {
			want += ca * countB[k]
		}
		v, err := QueryScalar(db, `SELECT COUNT(*) FROM a JOIN b ON a.k = b.k`)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := v.AsInt(); got != want {
			t.Fatalf("trial %d (n=%d): join count %d want %d", trial, n, got, want)
		}
	}
}

func ExampleQuery_join() {
	db := NewDatabase("shop")
	customers := NewTable("customers", "id", "name")
	customers.MustAppendRow(Int(1), Text("Ada"))
	orders := NewTable("orders", "customer_id", "total")
	orders.MustAppendRow(Int(1), Float(99.5))
	orders.MustAppendRow(Int(1), Float(0.5))
	db.AddTable(customers)
	db.AddTable(orders)
	v, _ := QueryScalar(db, `SELECT SUM(o.total) FROM orders o JOIN customers c ON o.customer_id = c.id WHERE c.name = 'Ada'`)
	fmt.Println(v)
	// Output: 100
}
