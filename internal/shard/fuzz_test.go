package shard

import (
	"fmt"
	"testing"
)

// FuzzRingAssign fuzzes the consistent-hash ring's three routing
// guarantees over arbitrary keys and membership shapes:
//
//   - deterministic: rings built in different membership orders assign the
//     key identically;
//   - total: every key maps to exactly one live replica, and never to a
//     removed one;
//   - minimal movement: removing a replica moves only keys it owned, and
//     re-adding it restores the original assignment exactly.
func FuzzRingAssign(f *testing.F) {
	f.Add([]byte("doc-1|claim"), uint8(4), uint8(1))
	f.Add([]byte{}, uint8(1), uint8(0))
	f.Add([]byte("\x00\xff fingerprint bytes"), uint8(9), uint8(7))
	f.Add([]byte("same"), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, key []byte, nNodes, victimIdx uint8) {
		n := int(nNodes)%12 + 1 // 1..12 replicas
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("http://r%d", i)
		}
		fwd := NewRing(16)
		rev := NewRing(16)
		for i := 0; i < n; i++ {
			fwd.Add(nodes[i])
			rev.Add(nodes[n-1-i])
		}

		owner, ok := fwd.Assign(key)
		if !ok {
			t.Fatalf("populated ring (%d nodes) failed to assign", n)
		}
		member := false
		for _, node := range nodes {
			if node == owner {
				member = true
			}
		}
		if !member {
			t.Fatalf("assigned %q, not a member of %v", owner, nodes)
		}
		if revOwner, _ := rev.Assign(key); revOwner != owner {
			t.Fatalf("insertion order changed assignment: %q vs %q", owner, revOwner)
		}

		victim := nodes[int(victimIdx)%n]
		fwd.Remove(victim)
		if n > 1 {
			after, ok := fwd.Assign(key)
			if !ok {
				t.Fatal("assignment lost after removing one of several replicas")
			}
			if after == victim {
				t.Fatalf("key still assigned to removed replica %q", victim)
			}
			// Minimal movement: a key not owned by the victim must not move.
			if owner != victim && after != owner {
				t.Fatalf("key moved %q -> %q though removed replica was %q", owner, after, victim)
			}
		} else if _, ok := fwd.Assign(key); ok {
			t.Fatal("empty ring still assigning")
		}
		fwd.Add(victim)
		if restored, _ := fwd.Assign(key); restored != owner {
			t.Fatalf("re-adding %q did not restore assignment: %q vs %q", victim, restored, owner)
		}
	})
}
