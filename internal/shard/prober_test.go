package shard

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// flakyProbe is a scriptable probe: per-node error queues consumed in order,
// empty queue meaning healthy.
type flakyProbe struct {
	mu   sync.Mutex
	errs map[string][]error
}

func (f *flakyProbe) fail(node string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.errs == nil {
		f.errs = make(map[string][]error)
	}
	for i := 0; i < n; i++ {
		f.errs[node] = append(f.errs[node], errors.New("connection refused"))
	}
}

func (f *flakyProbe) probe(_ context.Context, node string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	q := f.errs[node]
	if len(q) == 0 {
		return nil
	}
	f.errs[node] = q[1:]
	return q[0]
}

// The prober ejects after FailAfter consecutive failures, readmits after
// RecoverAfter consecutive probe successes, and keeps ring membership in
// sync through the OnEject/OnAdmit hooks — booking ejections as breaker
// trips and recovery probes as breaker probes.
func TestProberEjectAndReadmit(t *testing.T) {
	fp := &flakyProbe{}
	ring := ringOf(16, "a", "b")
	res := &metrics.Resilience{}
	p := &Prober{
		Probe: fp.probe, FailAfter: 2, RecoverAfter: 2,
		OnEject: func(n string) { ring.Remove(n) },
		OnAdmit: func(n string) { ring.Add(n) },
		Metrics: res,
	}
	p.Track("a")
	p.Track("b")
	ctx := context.Background()

	fp.fail("b", 2)
	p.Sweep(ctx) // b: failure 1 of 2 — still healthy
	if !p.IsHealthy("b") || !ring.Has("b") {
		t.Fatal("one failure ejected b; want FailAfter=2")
	}
	p.Sweep(ctx) // b: failure 2 — ejected
	if p.IsHealthy("b") || ring.Has("b") {
		t.Fatal("b not ejected after FailAfter consecutive failures")
	}
	if got := p.Healthy(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("healthy = %v, want [a]", got)
	}
	if res.BreakerTrips.Load() != 1 {
		t.Errorf("breaker trips = %d, want 1", res.BreakerTrips.Load())
	}

	p.Sweep(ctx) // recovery probe 1 of 2
	if p.IsHealthy("b") {
		t.Fatal("one good probe readmitted b; want RecoverAfter=2")
	}
	p.Sweep(ctx) // recovery probe 2 — readmitted
	if !p.IsHealthy("b") || !ring.Has("b") {
		t.Fatal("b not readmitted after RecoverAfter good probes")
	}
	if res.BreakerProbes.Load() != 2 {
		t.Errorf("breaker probes = %d, want 2", res.BreakerProbes.Load())
	}
}

// A failure while ejected restarts the recovery streak, and traffic-fed
// failures (ReportFailure) trip the breaker between sweeps.
func TestProberTrafficFedFailures(t *testing.T) {
	p := &Prober{Probe: func(context.Context, string) error { return nil }, FailAfter: 3, RecoverAfter: 2}
	p.Track("a")
	p.ReportFailure("a")
	p.ReportFailure("a")
	p.ReportSuccess("a") // success clears the streak
	p.ReportFailure("a")
	p.ReportFailure("a")
	if !p.IsHealthy("a") {
		t.Fatal("a ejected though no 3 consecutive failures accumulated")
	}
	p.ReportFailure("a")
	if p.IsHealthy("a") {
		t.Fatal("a not ejected after 3 consecutive failures")
	}
	p.ReportSuccess("a")
	p.ReportFailure("a") // failure while ejected restarts recovery
	p.ReportSuccess("a")
	if p.IsHealthy("a") {
		t.Fatal("a readmitted though the recovery streak was broken")
	}
	p.ReportSuccess("a")
	if !p.IsHealthy("a") {
		t.Fatal("a not readmitted after RecoverAfter consecutive successes")
	}
}

// Forget deregisters entirely: the node stops being probed or readmitted.
func TestProberForget(t *testing.T) {
	p := &Prober{Probe: func(context.Context, string) error { return nil }}
	p.Track("a")
	p.Track("b")
	p.Forget("b")
	if got := p.Tracked(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("tracked = %v, want [a]", got)
	}
	p.ReportSuccess("b") // no-op, must not resurrect
	if p.IsHealthy("b") {
		t.Fatal("forgotten replica reported healthy")
	}
}

// TestProberStressConcurrentReports races traffic-fed outcomes, sweeps, and
// membership changes across 32 goroutines; run under -race by `make shard`.
func TestProberStressConcurrentReports(t *testing.T) {
	fp := &flakyProbe{}
	ring := ringOf(16, nodeNames(4)...)
	p := &Prober{
		Probe: fp.probe, FailAfter: 2, RecoverAfter: 1,
		OnEject: func(n string) { ring.Remove(n) },
		OnAdmit: func(n string) { ring.Add(n) },
		Metrics: &metrics.Resilience{},
	}
	nodes := nodeNames(4)
	for _, n := range nodes {
		p.Track(n)
	}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := nodes[g%len(nodes)]
			for i := 0; i < 200; i++ {
				switch (g + i) % 4 {
				case 0:
					p.ReportFailure(node)
				case 1:
					p.ReportSuccess(node)
				case 2:
					p.Sweep(context.Background())
				default:
					p.IsHealthy(node)
					p.Healthy()
				}
			}
		}(g)
	}
	wg.Wait()
	// All probes succeed at rest, so two sweeps readmit everything.
	p.Sweep(context.Background())
	p.Sweep(context.Background())
	if got := p.Healthy(); !reflect.DeepEqual(got, nodes) {
		t.Fatalf("healthy after settle = %v, want %v", got, nodes)
	}
	for _, n := range nodes {
		if !ring.Has(n) {
			t.Fatalf("ring missing %s after settle", n)
		}
	}
	_ = fmt.Sprintf("%s", ring) // exercise String under race too
}
