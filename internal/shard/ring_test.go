package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return out
}

func ringOf(vnodes int, nodes ...string) *Ring {
	r := NewRing(vnodes)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// testKeys derives a deterministic key corpus from the routing fingerprint
// itself, so the distribution under test is the one production sees.
func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = Fingerprint("cfg", fmt.Sprintf("doc-%d", i), "sentence", "value")
	}
	return keys
}

// Assignment is a pure function of membership: insertion order, removals,
// and re-additions must not change where keys land.
func TestRingAssignmentIndependentOfHistory(t *testing.T) {
	nodes := nodeNames(5)
	a := ringOf(64, nodes...)
	b := NewRing(64)
	for i := len(nodes) - 1; i >= 0; i-- { // reverse insertion order
		b.Add(nodes[i])
	}
	// c takes a detour: extra members added then removed.
	c := ringOf(64, append([]string{"http://ghost-1", "http://ghost-2"}, nodes...)...)
	c.Remove("http://ghost-1")
	c.Remove("http://ghost-2")
	for _, key := range testKeys(500) {
		na, ok := a.Assign(key)
		if !ok {
			t.Fatal("assign failed on populated ring")
		}
		if nb, _ := b.Assign(key); nb != na {
			t.Fatalf("insertion order changed assignment: %q vs %q", na, nb)
		}
		if nc, _ := c.Assign(key); nc != na {
			t.Fatalf("membership detour changed assignment: %q vs %q", na, nc)
		}
	}
}

// Every key maps to exactly one live member; the empty ring reports !ok.
func TestRingAssignmentTotal(t *testing.T) {
	r := NewRing(32)
	if _, ok := r.Assign([]byte("k")); ok {
		t.Fatal("empty ring assigned a key")
	}
	nodes := nodeNames(4)
	for _, n := range nodes {
		r.Add(n)
	}
	member := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		member[n] = true
	}
	for _, key := range testKeys(1000) {
		n, ok := r.Assign(key)
		if !ok || !member[n] {
			t.Fatalf("key assigned to %q (ok=%v), want a live member", n, ok)
		}
	}
}

// Removing one of N replicas moves only that replica's keys (to successors)
// and re-adding it restores the original assignment exactly; the moved
// fraction stays near 1/N.
func TestRingMinimalMovement(t *testing.T) {
	nodes := nodeNames(8)
	r := ringOf(0, nodes...)
	keys := testKeys(4000)
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i], _ = r.Assign(k)
	}
	victim := nodes[3]
	r.Remove(victim)
	moved := 0
	for i, k := range keys {
		after, _ := r.Assign(k)
		if after == victim {
			t.Fatalf("key still assigned to removed replica %q", victim)
		}
		if after != before[i] {
			if before[i] != victim {
				t.Fatalf("key moved from %q to %q though %q was removed", before[i], after, victim)
			}
			moved++
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.04 || frac > 0.25 { // ideal 1/8 = 0.125 with vnode variance
		t.Errorf("removal moved %.1f%% of keys, want ~12.5%%", frac*100)
	}
	r.Add(victim)
	for i, k := range keys {
		if again, _ := r.Assign(k); again != before[i] {
			t.Fatalf("re-adding %q did not restore assignment: %q vs %q", victim, again, before[i])
		}
	}
}

// AssignN yields distinct replicas, owner first, stable per key.
func TestRingAssignNFailoverOrder(t *testing.T) {
	r := ringOf(0, nodeNames(4)...)
	for _, key := range testKeys(200) {
		owner, _ := r.Assign(key)
		order := r.AssignN(key, 3)
		if len(order) != 3 || order[0] != owner {
			t.Fatalf("AssignN = %v, want 3 distinct starting with owner %q", order, owner)
		}
		seen := map[string]bool{}
		for _, n := range order {
			if seen[n] {
				t.Fatalf("AssignN repeated %q: %v", n, order)
			}
			seen[n] = true
		}
		if got := r.AssignN(key, 10); len(got) != 4 {
			t.Fatalf("AssignN capped at %d, want membership size 4", len(got))
		}
	}
}

// Keyspace balance: with default vnodes no replica owns a wildly outsized
// share. This pins the vnode count as load-bearing, not cosmetic.
func TestRingBalance(t *testing.T) {
	nodes := nodeNames(4)
	r := ringOf(0, nodes...)
	counts := map[string]int{}
	keys := testKeys(8000)
	for _, k := range keys {
		n, _ := r.Assign(k)
		counts[n]++
	}
	for _, n := range nodes {
		frac := float64(counts[n]) / float64(len(keys))
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("replica %s owns %.1f%% of keys, want roughly 25%%", n, frac*100)
		}
	}
}

// TestRingStressConcurrentMembership races 32 goroutines of steady routing
// reads against continuous replica join/leave, mirroring a coordinator
// routing under churn. Run under -race by `make shard` (and `make race`).
// Invariants: assignments always land on some replica of the stable core,
// and after the churn settles the ring equals a freshly built one.
func TestRingStressConcurrentMembership(t *testing.T) {
	core := nodeNames(4)
	churn := make([]string, 8)
	for i := range churn {
		churn[i] = fmt.Sprintf("http://churn-%d:8080", i)
	}
	r := ringOf(32, core...)
	keys := testKeys(64)
	stable := make(map[string]bool, len(core))
	for _, n := range core {
		stable[n] = true
	}

	const (
		readers  = 24
		mutators = 8 // 32 goroutines total
		rounds   = 400
	)
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := keys[(g+i)%len(keys)]
				n, ok := r.Assign(key)
				if !ok {
					errs <- "assign failed with core replicas present"
					return
				}
				if !stable[n] && len(n) == 0 {
					errs <- "assigned empty node"
					return
				}
				if fo := r.AssignN(key, 3); len(fo) == 0 {
					errs <- "AssignN empty with core replicas present"
					return
				}
			}
		}(g)
	}
	for g := 0; g < mutators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			node := churn[g]
			for i := 0; i < rounds; i++ {
				if rng.Intn(2) == 0 {
					r.Add(node)
				} else {
					r.Remove(node)
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	// Settle: remove all churn nodes; the survivor must match a fresh ring.
	for _, n := range churn {
		r.Remove(n)
	}
	want := ringOf(32, core...)
	if !reflect.DeepEqual(r.Nodes(), want.Nodes()) {
		t.Fatalf("membership after churn = %v, want %v", r.Nodes(), want.Nodes())
	}
	for _, k := range testKeys(500) {
		got, _ := r.Assign(k)
		ref, _ := want.Assign(k)
		if got != ref {
			t.Fatalf("post-churn assignment diverged: %q vs fresh ring %q", got, ref)
		}
	}
}

// Fingerprint is injective over field boundaries: shifting bytes between
// adjacent fields must change the digest.
func TestFingerprintFieldBoundaries(t *testing.T) {
	a := Fingerprint("ab", "c")
	b := Fingerprint("a", "bc")
	if string(a) == string(b) {
		t.Fatal("fingerprint collided across field boundaries")
	}
	if string(Fingerprint("x")) != string(Fingerprint("x")) {
		t.Fatal("fingerprint not deterministic")
	}
}
