// Package shard is the coordination layer of CEDAR's sharded serving tier
// (DESIGN.md §13): a consistent-hash ring that deterministically assigns
// each verification request to one of N replica processes, a health prober
// that ejects dead or draining replicas from the ring (feeding the same
// circuit-breaker counters the LLM middleware uses), and a byte-level HTTP
// proxy that routes a request to its owner and fails over to the next live
// replica when the owner is unreachable.
//
// The shard key is the claim/config fingerprint (Fingerprint): a SHA-256
// digest of the request's document identity and claim text plus the serving
// configuration, built with the same length-prefixed field discipline as
// the verdict-memo keys in cedar/fingerprint.go. Because CEDAR verdicts are
// bit-identical across processes for the same (seed, database, claims) —
// the cross-process determinism contract of DESIGN.md §11 — *any* total
// assignment of requests to replicas yields the same verdicts; consistent
// hashing is chosen so that replica membership changes move only ~1/N of
// the keyspace (warm caches and verdict memos stay hot on the replicas that
// keep their keys).
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the number of ring points one replica contributes.
// 128 points per node keeps the keyspace split within a few percent of even
// for small clusters while staying cheap to rebuild on membership changes.
const DefaultVirtualNodes = 128

// point is one virtual node on the ring: a position in the uint64 hash
// space owned by a replica.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over replica names. Assignment is a pure
// function of (key, membership): two rings holding the same nodes assign
// every key identically regardless of the order nodes were added or
// removed, which is what lets independent coordinator processes route the
// same request to the same replica. Safe for concurrent use; reads
// (Assign/AssignN/Nodes) take a read lock, so routing scales across
// handler goroutines while membership changes are rare and exclusive.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	nodes  map[string]struct{}
	points []point // sorted by (hash, node)
}

// NewRing builds an empty ring with the given virtual-node count per
// replica (values < 1 use DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// pointHash places one virtual node: a digest of the node name and the
// vnode ordinal, length-prefixed so "ab"+1 and "a"+"b1" cannot collide.
func pointHash(node string, vnode int) uint64 {
	var buf [8]byte
	h := sha256.New()
	binary.LittleEndian.PutUint64(buf[:], uint64(len(node)))
	h.Write(buf[:])
	h.Write([]byte(node))
	binary.LittleEndian.PutUint64(buf[:], uint64(vnode))
	h.Write(buf[:])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a key on the ring.
func keyHash(key []byte) uint64 {
	sum := sha256.Sum256(key)
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a replica's virtual nodes. Adding a present node is a no-op;
// it reports whether membership changed.
func (r *Ring) Add(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return false
	}
	r.nodes[node] = struct{}{}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{hash: pointHash(node, v), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return true
}

// Remove deletes a replica's virtual nodes; only the removed node's keys
// move (to their next live successor). Reports whether membership changed.
func (r *Ring) Remove(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return false
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Has reports whether the node is a ring member.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.nodes[node]
	return ok
}

// Len returns the number of member replicas.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the member replicas in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Assign maps a key to its owning replica: the first virtual node clockwise
// from the key's position. ok is false only on an empty ring.
func (r *Ring) Assign(key []byte) (node string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.successor(keyHash(key))].node, true
}

// AssignN returns up to n distinct replicas in clockwise order from the
// key's position — the owner first, then the failover sequence a proxy
// walks when the owner is unreachable. The order is deterministic for a
// fixed membership, so every coordinator agrees on the fallback replica
// too, keeping warm state concentrated.
func (r *Ring) AssignN(key []byte, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	idx := r.successor(keyHash(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// successor finds the index of the first point with hash >= h, wrapping to
// 0 past the last point. Callers hold at least the read lock.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Fingerprint digests a sequence of string fields into a shard key with the
// same injective length-prefix discipline as cedar's verdict-memo keys:
// every field is preceded by its length, so distinct field sequences cannot
// collide by concatenation. The coordinator feeds it the serving config tag,
// the document ID, and each claim's text fields; equal requests hash equal
// in every coordinator process.
func Fingerprint(fields ...string) []byte {
	h := sha256.New()
	var buf [8]byte
	for _, f := range fields {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(f)))
		h.Write(buf[:])
		h.Write([]byte(f))
	}
	return h.Sum(nil)
}

// String renders membership for logs and status pages.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d replicas, %d vnodes each)", r.Len(), r.vnodes)
}
