package shard

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// replicaStub is a minimal replica endpoint recording what it served.
type replicaStub struct {
	name string
	ts   *httptest.Server
	mu   sync.Mutex
	hits int
	// status overrides the response code (0 = 200 echo).
	status int
}

func newReplicaStub(t *testing.T, name string) *replicaStub {
	t.Helper()
	r := &replicaStub{name: name}
	r.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		r.hits++
		status := r.status
		r.mu.Unlock()
		body, _ := io.ReadAll(req.Body)
		if status != 0 {
			w.WriteHeader(status)
			return
		}
		w.Write([]byte(r.name + ":" + string(body)))
	}))
	t.Cleanup(r.ts.Close)
	return r
}

func (r *replicaStub) setStatus(code int) {
	r.mu.Lock()
	r.status = code
	r.mu.Unlock()
}

func (r *replicaStub) served() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits
}

func proxyOver(stubs ...*replicaStub) (*Proxy, *Ring) {
	ring := NewRing(16)
	urls := make(map[string]string, len(stubs))
	for _, s := range stubs {
		ring.Add(s.name)
		urls[s.name] = s.ts.URL
	}
	return &Proxy{
		Ring:    ring,
		BaseURL: func(n string) string { return urls[n] },
		Client:  http.DefaultClient,
	}, ring
}

// The proxy relays the owner's response verbatim; non-503 statuses,
// including errors, are answers and never re-routed.
func TestProxyRoutesToOwner(t *testing.T) {
	a, b := newReplicaStub(t, "a"), newReplicaStub(t, "b")
	p, ring := proxyOver(a, b)
	key := Fingerprint("cfg", "doc-7")
	owner, _ := ring.Assign(key)
	res, err := p.Do(context.Background(), key, "/v1/verify", []byte(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != owner || res.Hops != 0 || res.Status != 200 {
		t.Fatalf("result = %+v, want owner %q at hop 0", res, owner)
	}
	if got := string(res.Body); got != owner+`:{"x":1}` {
		t.Fatalf("body = %q, not relayed verbatim", got)
	}

	// A 429 from the owner is an answer, not a failover trigger.
	ownerStub := a
	if owner == "b" {
		ownerStub = b
	}
	ownerStub.setStatus(http.StatusTooManyRequests)
	res, err = p.Do(context.Background(), key, "/v1/verify", nil)
	if err != nil || res.Status != http.StatusTooManyRequests || res.Node != owner {
		t.Fatalf("shed relay = %+v err=%v, want 429 from owner", res, err)
	}
}

// A dead owner fails over to the next distinct replica in ring order, and
// the failure is reported so the prober can eject it.
func TestProxyFailoverOnDeadOwner(t *testing.T) {
	a, b, c := newReplicaStub(t, "a"), newReplicaStub(t, "b"), newReplicaStub(t, "c")
	p, ring := proxyOver(a, b, c)
	var failed []string
	p.OnFailure = func(n string) { failed = append(failed, n) }
	key := Fingerprint("cfg", "doc-1")
	order := ring.AssignN(key, 3)
	stubs := map[string]*replicaStub{"a": a, "b": b, "c": c}
	stubs[order[0]].ts.Close() // kill the owner

	res, err := p.Do(context.Background(), key, "/v1/verify", []byte("req"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != order[1] || res.Hops != 1 {
		t.Fatalf("failover landed on %q hop %d, want successor %q hop 1", res.Node, res.Hops, order[1])
	}
	if len(failed) != 1 || failed[0] != order[0] {
		t.Fatalf("failures reported = %v, want the dead owner %q", failed, order[0])
	}
	if !strings.HasPrefix(string(res.Body), order[1]+":") {
		t.Fatalf("body %q not from successor", res.Body)
	}
}

// A draining owner (503) moves the request instead of surfacing the
// rejection — the drain-aware rebalance path — but when every replica is
// draining the 503 is relayed rather than looping.
func TestProxyDrainRehash(t *testing.T) {
	a, b := newReplicaStub(t, "a"), newReplicaStub(t, "b")
	p, ring := proxyOver(a, b)
	key := Fingerprint("cfg", "doc-2")
	order := ring.AssignN(key, 2)
	stubs := map[string]*replicaStub{"a": a, "b": b}
	stubs[order[0]].setStatus(http.StatusServiceUnavailable)

	res, err := p.Do(context.Background(), key, "/v1/verify", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != order[1] || res.Status != 200 {
		t.Fatalf("drain rehash = %+v, want 200 from %q", res, order[1])
	}

	stubs[order[1]].setStatus(http.StatusServiceUnavailable)
	res, err = p.Do(context.Background(), key, "/v1/verify", nil)
	if err != nil || res.Status != http.StatusServiceUnavailable {
		t.Fatalf("all-draining = %+v err=%v, want relayed 503", res, err)
	}
}

// killingReplica consumes the full request body — so the serve layer on a
// real replica would have admitted and verified the claims — then hijacks the
// connection and kills it without answering. This is the post-delivery
// failure window: the work happened, only the response was lost.
type killingReplica struct {
	ts        *httptest.Server
	mu        sync.Mutex
	processed int
}

func (k *killingReplica) count() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.processed
}

func newKillingReplica(t *testing.T) *killingReplica {
	t.Helper()
	k := &killingReplica{}
	k.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		io.Copy(io.Discard, req.Body) // the replica received everything
		k.mu.Lock()
		k.processed++
		k.mu.Unlock()
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close() // die before writing any response
	}))
	t.Cleanup(k.ts.Close)
	return k
}

// A replica that consumes the request and then dies must NOT be failed over:
// it may have verified the claims and booked their fees, so a retry on the
// ring successor would re-run the work and double-bill it. The proxy
// surfaces ErrAfterDelivery instead; the successor is never contacted.
func TestProxyNoRetryAfterDelivery(t *testing.T) {
	killer := newKillingReplica(t)
	successor := newReplicaStub(t, "b")
	ring := NewRing(16)
	ring.Add("a")
	ring.Add("b")
	urls := map[string]string{"a": killer.ts.URL, "b": successor.ts.URL}
	var failed []string
	p := &Proxy{
		Ring:      ring,
		BaseURL:   func(n string) string { return urls[n] },
		Client:    http.DefaultClient,
		OnFailure: func(n string) { failed = append(failed, n) },
	}

	// Find a key owned by the killing replica so the failover order is
	// killer-then-successor.
	var key []byte
	for i := 0; ; i++ {
		key = Fingerprint("cfg", "doc", string(rune('0'+i%10)), string(rune('a'+i/10)))
		if owner, _ := ring.Assign(key); owner == "a" {
			break
		}
	}

	_, err := p.Do(context.Background(), key, "/v1/verify", []byte(`{"claims":[{"sentence":"s","value":"v"}]}`))
	if err == nil {
		t.Fatal("post-delivery connection kill: want an error, got success")
	}
	if !errors.Is(err, ErrAfterDelivery) {
		t.Fatalf("error = %v, want ErrAfterDelivery", err)
	}
	if got := killer.count(); got != 1 {
		t.Fatalf("owner processed the request %d times, want exactly 1 (no proxy- or transport-level replay)", got)
	}
	if got := successor.served(); got != 0 {
		t.Fatalf("successor served %d request(s), want 0 — retrying delivered work duplicates claims and fees", got)
	}
	// The dead-after-delivery replica still feeds the breaker: it is sick,
	// even though its work must not move.
	if len(failed) != 1 || failed[0] != "a" {
		t.Fatalf("failures reported = %v, want exactly the delivered-to replica", failed)
	}
}

// A connection dying mid-response (status delivered, body truncated) is also
// post-delivery: the response was underway, so the work is done and must not
// be re-run on a successor.
func TestProxyNoRetryOnTruncatedResponse(t *testing.T) {
	var truncated *httptest.Server
	truncated = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		io.Copy(io.Discard, req.Body)
		w.Header().Set("Content-Length", "1024")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer truncated.Close()
	successor := newReplicaStub(t, "b")
	ring := NewRing(16)
	ring.Add("a")
	ring.Add("b")
	urls := map[string]string{"a": truncated.URL, "b": successor.ts.URL}
	p := &Proxy{Ring: ring, BaseURL: func(n string) string { return urls[n] }, Client: http.DefaultClient}

	var key []byte
	for i := 0; ; i++ {
		key = Fingerprint("trunc", "doc", string(rune('0'+i%10)), string(rune('a'+i/10)))
		if owner, _ := ring.Assign(key); owner == "a" {
			break
		}
	}
	_, err := p.Do(context.Background(), key, "/v1/verify", []byte("req"))
	if !errors.Is(err, ErrAfterDelivery) {
		t.Fatalf("truncated response error = %v, want ErrAfterDelivery", err)
	}
	if got := successor.served(); got != 0 {
		t.Fatalf("successor served %d request(s) after a truncated response, want 0", got)
	}
}

// With no live replicas the proxy reports ErrNoReplicas; with all replicas
// dead it returns the last transport error.
func TestProxyExhaustion(t *testing.T) {
	p := &Proxy{Ring: NewRing(8), BaseURL: func(string) string { return "" }}
	if _, err := p.Do(context.Background(), []byte("k"), "/x", nil); err != ErrNoReplicas {
		t.Fatalf("empty ring error = %v, want ErrNoReplicas", err)
	}
	a := newReplicaStub(t, "a")
	p2, _ := proxyOver(a)
	a.ts.Close()
	if _, err := p2.Do(context.Background(), Fingerprint("k"), "/x", nil); err == nil {
		t.Fatal("all replicas dead, want an error")
	}
}
