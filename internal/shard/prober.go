package shard

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Prober is the replica-level circuit breaker of the sharded tier: it
// tracks consecutive probe and traffic outcomes per replica and ejects a
// replica from membership after FailAfter consecutive failures, readmitting
// it after RecoverAfter consecutive successful probes. The state machine is
// the same closed → open → half-open shape as resilience.Breaker — a probe
// against an ejected replica is the half-open trial — and it books its
// transitions into the same metrics.Resilience counters (BreakerTrips for
// ejections, BreakerProbes for recovery probes against ejected replicas),
// so /v1/metrics reports replica ejection alongside model-level breaking.
//
// Failures reach the prober from two sides: the periodic health sweep
// (Probe against each replica's /healthz, where a draining replica answers
// 503) and the proxy's live traffic (ReportFailure on transport errors).
// Both feed one counter per replica, so a replica that is dead to traffic
// is ejected even between sweeps.
type Prober struct {
	// Probe checks one replica, nil error meaning healthy. Required.
	Probe func(ctx context.Context, node string) error
	// Interval paces Run's sweeps (default 500ms).
	Interval time.Duration
	// FailAfter is the consecutive-failure count that ejects a replica
	// (default 2: one failure is a blip, two in a row is an outage).
	FailAfter int
	// RecoverAfter is the consecutive successful probes that readmit an
	// ejected replica (default 2).
	RecoverAfter int
	// OnEject and OnAdmit fire on state transitions — the coordinator wires
	// them to Ring.Remove and Ring.Add so membership tracks health. Called
	// without internal locks held.
	OnEject func(node string)
	OnAdmit func(node string)
	// Metrics, when non-nil, receives breaker-counter bookings.
	Metrics *metrics.Resilience

	mu    sync.Mutex
	state map[string]*replicaState
}

// replicaState is one replica's health counters.
type replicaState struct {
	healthy   bool
	failures  int // consecutive, while healthy
	successes int // consecutive probe successes, while ejected
}

func (p *Prober) defaults() (failAfter, recoverAfter int, interval time.Duration) {
	failAfter, recoverAfter, interval = p.FailAfter, p.RecoverAfter, p.Interval
	if failAfter < 1 {
		failAfter = 2
	}
	if recoverAfter < 1 {
		recoverAfter = 2
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return failAfter, recoverAfter, interval
}

// Track registers a replica in the healthy state (new replicas are admitted
// optimistically; the first sweep corrects a wrong guess). Idempotent.
func (p *Prober) Track(node string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == nil {
		p.state = make(map[string]*replicaState)
	}
	if _, ok := p.state[node]; !ok {
		p.state[node] = &replicaState{healthy: true}
	}
}

// Forget deregisters a replica entirely (explicit deregistration, not
// ejection: it will not be probed for recovery).
func (p *Prober) Forget(node string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.state, node)
}

// Tracked returns all registered replicas, healthy or not, sorted.
func (p *Prober) Tracked() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.state))
	for n := range p.state {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Healthy returns the replicas currently admitted, sorted.
func (p *Prober) Healthy() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.state))
	for n, st := range p.state {
		if st.healthy {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// IsHealthy reports one replica's admission state.
func (p *Prober) IsHealthy(node string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[node]
	return ok && st.healthy
}

// ReportFailure books one failed interaction (probe or proxied request)
// with a replica, ejecting it once FailAfter consecutive failures
// accumulate. The proxy calls this on transport errors so live traffic
// trips the breaker between sweeps.
func (p *Prober) ReportFailure(node string) {
	failAfter, _, _ := p.defaults()
	p.mu.Lock()
	st, ok := p.state[node]
	if !ok || !st.healthy {
		if ok {
			st.successes = 0 // a failure while ejected restarts recovery
		}
		p.mu.Unlock()
		return
	}
	st.failures++
	tripped := st.failures >= failAfter
	if tripped {
		st.healthy = false
		st.failures = 0
		st.successes = 0
	}
	p.mu.Unlock()
	if tripped {
		if p.Metrics != nil {
			p.Metrics.BreakerTrips.Add(1)
		}
		if p.OnEject != nil {
			p.OnEject(node)
		}
	}
}

// ReportSuccess books one successful interaction: it clears a healthy
// replica's failure streak and advances an ejected replica toward
// readmission (probe successes only — Sweep calls this; the proxy never
// routes to ejected replicas, so its successes always land on the healthy
// branch).
func (p *Prober) ReportSuccess(node string) {
	_, recoverAfter, _ := p.defaults()
	p.mu.Lock()
	st, ok := p.state[node]
	if !ok {
		p.mu.Unlock()
		return
	}
	if st.healthy {
		st.failures = 0
		p.mu.Unlock()
		return
	}
	st.successes++
	admitted := st.successes >= recoverAfter
	if admitted {
		st.healthy = true
		st.failures = 0
		st.successes = 0
	}
	p.mu.Unlock()
	if admitted && p.OnAdmit != nil {
		p.OnAdmit(node)
	}
}

// Sweep probes every tracked replica once, feeding outcomes into the
// breaker state. Probes against ejected replicas are half-open trials and
// are booked as BreakerProbes.
func (p *Prober) Sweep(ctx context.Context) {
	for _, node := range p.Tracked() {
		healthy := p.IsHealthy(node)
		if !healthy && p.Metrics != nil {
			p.Metrics.BreakerProbes.Add(1)
		}
		if err := p.Probe(ctx, node); err != nil {
			p.ReportFailure(node)
		} else {
			p.ReportSuccess(node)
		}
	}
}

// Run sweeps at Interval until ctx is done. Call in a goroutine.
func (p *Prober) Run(ctx context.Context) {
	_, _, interval := p.defaults()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			p.Sweep(ctx)
		}
	}
}
