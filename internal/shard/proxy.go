package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
)

// maxProxyResponseBytes bounds one replica response the proxy buffers;
// matches the serve layer's request-body cap.
const maxProxyResponseBytes = 8 << 20

// ErrNoReplicas is returned when the ring has no live members to route to.
var ErrNoReplicas = errors.New("shard: no live replicas")

// ErrAfterDelivery marks a transport failure that happened after the request
// had already been delivered to a replica — the connection died mid-response,
// or reading the response body failed. The replica may have verified the
// claims and booked their fees, so retrying on a ring successor would re-run
// the work and double-bill it. The proxy surfaces these instead of failing
// over; callers decide whether to re-submit (safe only because verdict memos
// and the persistent store make a true re-run idempotent in results, though
// never in fees).
var ErrAfterDelivery = errors.New("shard: replica failed after the request was delivered")

// Result is one proxied exchange: which replica answered (after zero or
// more failovers), with what status and body.
type Result struct {
	// Node is the replica that produced the response; Hops counts the
	// replicas tried before it answered (0 = the key's owner answered).
	Node string
	Hops int
	// Status and Body are the replica's HTTP response, relayed verbatim.
	Status int
	Body   []byte
}

// Proxy routes one request body to the replica owning its shard key,
// failing over along the ring's deterministic successor order when a
// replica is unreachable or draining. It speaks bytes, not wire structs, so
// the serve layer's JSON surface passes through untouched — what a replica
// answered is exactly what the client sees.
type Proxy struct {
	// Ring assigns keys to replica names. Required.
	Ring *Ring
	// BaseURL resolves a replica name to its base URL ("http://host:port").
	// Required; the coordinator uses the URL itself as the name, making
	// this the identity function.
	BaseURL func(node string) string
	// Client issues the proxied requests (default http.DefaultClient; the
	// coordinator installs one with a pooled transport).
	Client *http.Client
	// Attempts bounds how many distinct replicas one request may try
	// (default 3, capped by live membership). The first is the owner.
	Attempts int
	// OnFailure and OnSuccess report per-replica transport outcomes — the
	// coordinator wires them into the Prober so live traffic feeds the
	// replica breaker. A drain rejection (503 from a draining replica)
	// counts as a failure: the replica asked for traffic to move.
	OnFailure func(node string)
	OnSuccess func(node string)
}

// retriable reports whether a replica response should move the request to
// the next replica instead of being relayed. Only 503 qualifies: the serve
// layer answers it exactly when draining (or, at the coordinator tier, when
// no replica is live), and the request was explicitly not admitted, so
// re-routing cannot duplicate work. Every other status — including 429
// shed and 5xx backend errors — is an answer about this request and is
// relayed to the caller.
func retriable(status int) bool { return status == http.StatusServiceUnavailable }

// Do routes body to the owner of key, walking the failover order on
// transport errors and drain rejections. It returns the first relayable
// response, or an error when every eligible replica failed.
func (p *Proxy) Do(ctx context.Context, key []byte, path string, body []byte) (Result, error) {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 3
	}
	nodes := p.Ring.AssignN(key, attempts)
	if len(nodes) == 0 {
		return Result{}, ErrNoReplicas
	}
	client := p.Client
	if client == nil {
		client = http.DefaultClient
	}
	var lastErr error
	for hop, node := range nodes {
		res, delivered, err := p.forward(ctx, client, node, path, body)
		if err != nil {
			if p.OnFailure != nil {
				p.OnFailure(node)
			}
			if delivered {
				// The request was fully handed to the replica before the
				// failure: it may have verified the claims and booked their
				// fees, and only the response was lost. Retrying on a
				// successor would duplicate that work, so this is an error,
				// never a failover.
				return Result{}, fmt.Errorf("replica %s: %v: %w", node, err, ErrAfterDelivery)
			}
			// Pre-delivery transport failure: the replica never received the
			// request. Feed the breaker and try the next successor — the
			// request was not processed, so moving it cannot lose or
			// duplicate claims.
			lastErr = fmt.Errorf("replica %s: %w", node, err)
			if ctx.Err() != nil {
				return Result{}, lastErr
			}
			continue
		}
		if retriable(res.Status) && hop < len(nodes)-1 {
			// Drain rejection: the replica refused admission. Rehash to the
			// next successor; its in-flight work finishes where it is.
			if p.OnFailure != nil {
				p.OnFailure(node)
			}
			lastErr = fmt.Errorf("replica %s: draining (503)", node)
			continue
		}
		if p.OnSuccess != nil {
			p.OnSuccess(node)
		}
		res.Hops = hop
		return res, nil
	}
	return Result{}, fmt.Errorf("shard: all %d replica(s) failed, last: %w", len(nodes), lastErr)
}

// deliveryTracker wraps a request body so forward can tell whether the
// transport finished writing the request before a failure. It deliberately
// exposes only Read: handing net/http a plain io.Reader (not *bytes.Reader)
// keeps it from deriving GetBody, so the transport cannot silently replay
// the request on its own — delivery accounting stays with the proxy.
type deliveryTracker struct {
	r    *bytes.Reader
	sent atomic.Bool
}

func (d *deliveryTracker) Read(p []byte) (int, error) {
	n, err := d.r.Read(p)
	if err == io.EOF {
		// The transport drained the body: the request was fully written to
		// the wire, so the replica may be processing it.
		d.sent.Store(true)
	}
	return n, err
}

// forward issues one POST to one replica. delivered reports whether the
// request reached the replica before any failure: true once the request body
// was fully written to the wire or a response status arrived (the replica
// necessarily read the request to answer), so any later error — connection
// dying mid-response, body read failing — happened after the replica may
// have started verifying.
func (p *Proxy) forward(ctx context.Context, client *http.Client, node, path string, body []byte) (res Result, delivered bool, err error) {
	tracker := &deliveryTracker{r: bytes.NewReader(body)}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.BaseURL(node)+path, tracker)
	if err != nil {
		return Result{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.ContentLength = int64(len(body))
	resp, err := client.Do(req)
	if err != nil {
		return Result{}, tracker.sent.Load(), err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyResponseBytes))
	if err != nil {
		return Result{}, true, err
	}
	return Result{Node: node, Status: resp.StatusCode, Body: b}, true, nil
}
