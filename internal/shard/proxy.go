package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxProxyResponseBytes bounds one replica response the proxy buffers;
// matches the serve layer's request-body cap.
const maxProxyResponseBytes = 8 << 20

// ErrNoReplicas is returned when the ring has no live members to route to.
var ErrNoReplicas = errors.New("shard: no live replicas")

// Result is one proxied exchange: which replica answered (after zero or
// more failovers), with what status and body.
type Result struct {
	// Node is the replica that produced the response; Hops counts the
	// replicas tried before it answered (0 = the key's owner answered).
	Node string
	Hops int
	// Status and Body are the replica's HTTP response, relayed verbatim.
	Status int
	Body   []byte
}

// Proxy routes one request body to the replica owning its shard key,
// failing over along the ring's deterministic successor order when a
// replica is unreachable or draining. It speaks bytes, not wire structs, so
// the serve layer's JSON surface passes through untouched — what a replica
// answered is exactly what the client sees.
type Proxy struct {
	// Ring assigns keys to replica names. Required.
	Ring *Ring
	// BaseURL resolves a replica name to its base URL ("http://host:port").
	// Required; the coordinator uses the URL itself as the name, making
	// this the identity function.
	BaseURL func(node string) string
	// Client issues the proxied requests (default http.DefaultClient; the
	// coordinator installs one with a pooled transport).
	Client *http.Client
	// Attempts bounds how many distinct replicas one request may try
	// (default 3, capped by live membership). The first is the owner.
	Attempts int
	// OnFailure and OnSuccess report per-replica transport outcomes — the
	// coordinator wires them into the Prober so live traffic feeds the
	// replica breaker. A drain rejection (503 from a draining replica)
	// counts as a failure: the replica asked for traffic to move.
	OnFailure func(node string)
	OnSuccess func(node string)
}

// retriable reports whether a replica response should move the request to
// the next replica instead of being relayed. Only 503 qualifies: the serve
// layer answers it exactly when draining (or, at the coordinator tier, when
// no replica is live), and the request was explicitly not admitted, so
// re-routing cannot duplicate work. Every other status — including 429
// shed and 5xx backend errors — is an answer about this request and is
// relayed to the caller.
func retriable(status int) bool { return status == http.StatusServiceUnavailable }

// Do routes body to the owner of key, walking the failover order on
// transport errors and drain rejections. It returns the first relayable
// response, or an error when every eligible replica failed.
func (p *Proxy) Do(ctx context.Context, key []byte, path string, body []byte) (Result, error) {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 3
	}
	nodes := p.Ring.AssignN(key, attempts)
	if len(nodes) == 0 {
		return Result{}, ErrNoReplicas
	}
	client := p.Client
	if client == nil {
		client = http.DefaultClient
	}
	var lastErr error
	for hop, node := range nodes {
		res, err := p.forward(ctx, client, node, path, body)
		if err != nil {
			// Transport failure: the replica never answered. Feed the
			// breaker and try the next successor — the request was not
			// processed, so moving it cannot lose or duplicate claims.
			if p.OnFailure != nil {
				p.OnFailure(node)
			}
			lastErr = fmt.Errorf("replica %s: %w", node, err)
			if ctx.Err() != nil {
				return Result{}, lastErr
			}
			continue
		}
		if retriable(res.Status) && hop < len(nodes)-1 {
			// Drain rejection: the replica refused admission. Rehash to the
			// next successor; its in-flight work finishes where it is.
			if p.OnFailure != nil {
				p.OnFailure(node)
			}
			lastErr = fmt.Errorf("replica %s: draining (503)", node)
			continue
		}
		if p.OnSuccess != nil {
			p.OnSuccess(node)
		}
		res.Hops = hop
		return res, nil
	}
	return Result{}, fmt.Errorf("shard: all %d replica(s) failed, last: %w", len(nodes), lastErr)
}

// forward issues one POST to one replica.
func (p *Proxy) forward(ctx context.Context, client *http.Client, node, path string, body []byte) (Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.BaseURL(node)+path, bytes.NewReader(body))
	if err != nil {
		return Result{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return Result{}, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyResponseBytes))
	if err != nil {
		return Result{}, err
	}
	return Result{Node: node, Status: resp.StatusCode, Body: b}, nil
}
