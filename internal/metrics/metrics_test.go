package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/claim"
)

func mkClaim(goldCorrect, predictedCorrect bool) *claim.Claim {
	return &claim.Claim{
		Gold:   claim.Gold{Correct: goldCorrect},
		Result: claim.Result{Verified: true, Correct: predictedCorrect},
	}
}

func TestEvaluateConfusion(t *testing.T) {
	docs := []*claim.Document{{Claims: []*claim.Claim{
		mkClaim(false, false), // TP
		mkClaim(false, false), // TP
		mkClaim(true, false),  // FP
		mkClaim(false, true),  // FN
		mkClaim(true, true),   // TN
		mkClaim(true, true),   // TN
	}}}
	q := Evaluate(docs)
	if q.TP != 2 || q.FP != 1 || q.FN != 1 || q.TN != 2 {
		t.Fatalf("confusion: %+v", q)
	}
	if math.Abs(q.Precision-2.0/3) > 1e-12 || math.Abs(q.Recall-2.0/3) > 1e-12 {
		t.Errorf("p/r = %v/%v", q.Precision, q.Recall)
	}
	if math.Abs(q.F1-2.0/3) > 1e-12 {
		t.Errorf("f1 = %v", q.F1)
	}
	if !strings.Contains(q.String(), "precision=66.7") {
		t.Errorf("String = %q", q.String())
	}
}

func TestEvaluateEmptyAndDegenerate(t *testing.T) {
	q := Evaluate(nil)
	if q.Precision != 0 || q.Recall != 0 || q.F1 != 0 {
		t.Errorf("empty corpus: %+v", q)
	}
	// All correct, none flagged: no division by zero.
	q = Evaluate([]*claim.Document{{Claims: []*claim.Claim{mkClaim(true, true)}}})
	if q.F1 != 0 || q.TN != 1 {
		t.Errorf("degenerate: %+v", q)
	}
}

// TestEvaluateUnverifiedDefaults pins the Section 4 default handling: an
// unverified claim marked correct counts as predicted-correct; an
// unverified claim with an executable query marked incorrect counts as
// flagged.
func TestEvaluateUnverifiedDefaults(t *testing.T) {
	docs := []*claim.Document{{Claims: []*claim.Claim{
		{Gold: claim.Gold{Correct: false}, Result: claim.Result{Verified: false, Correct: true}},                    // FN
		{Gold: claim.Gold{Correct: false}, Result: claim.Result{Verified: false, Correct: false, Executable: true}}, // TP via fallback
	}}}
	q := Evaluate(docs)
	if q.TP != 1 || q.FN != 1 {
		t.Errorf("fallback handling: %+v", q)
	}
}

// Property: F1 is the harmonic mean, always between min and max of P and R.
func TestF1BoundsProperty(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		var docs []*claim.Document
		d := &claim.Document{}
		for i := 0; i < int(tp%20); i++ {
			d.Claims = append(d.Claims, mkClaim(false, false))
		}
		for i := 0; i < int(fp%20); i++ {
			d.Claims = append(d.Claims, mkClaim(true, false))
		}
		for i := 0; i < int(fn%20); i++ {
			d.Claims = append(d.Claims, mkClaim(false, true))
		}
		docs = append(docs, d)
		q := Evaluate(docs)
		lo := math.Min(q.Precision, q.Recall)
		hi := math.Max(q.Precision, q.Recall)
		return q.F1 >= lo-1e-12 && q.F1 <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEvaluateExcludesFailedClaims pins the transport-failure scoring fix:
// a claim that died on a transport error carries no semantic verdict, so it
// must land in Failed — never in the confusion matrix, where its placeholder
// "correct" default would masquerade as a TN (or FP).
func TestEvaluateExcludesFailedClaims(t *testing.T) {
	failed := func(goldCorrect bool) *claim.Claim {
		return &claim.Claim{
			Gold:   claim.Gold{Correct: goldCorrect},
			Result: claim.Result{Correct: true, Method: claim.MethodFailed, Failure: "transient"},
		}
	}
	docs := []*claim.Document{{Claims: []*claim.Claim{
		mkClaim(false, false), // TP
		mkClaim(true, true),   // TN
		failed(true),
		failed(false), // gold-incorrect: scoring it would book a spurious FN
	}}}
	q := Evaluate(docs)
	if q.Failed != 2 {
		t.Errorf("Failed = %d want 2", q.Failed)
	}
	if q.TP != 1 || q.FP != 0 || q.FN != 0 || q.TN != 1 {
		t.Errorf("confusion polluted by failed claims: %+v", q)
	}
	if q.TP+q.FP+q.FN+q.TN+q.Failed != 4 {
		t.Errorf("counts do not partition the corpus: %+v", q)
	}
	if q.Precision != 1 || q.Recall != 1 {
		t.Errorf("p/r = %v/%v, failed claims leaked into the ratios", q.Precision, q.Recall)
	}
	if !strings.Contains(q.String(), "failed=2") {
		t.Errorf("String = %q, missing failed count", q.String())
	}
	// Clean runs keep the seed rendering: no failed tally shown.
	if s := Evaluate([]*claim.Document{{Claims: []*claim.Claim{mkClaim(true, true)}}}).String(); strings.Contains(s, "failed=") {
		t.Errorf("String = %q, failed tally shown for a clean run", s)
	}
}

func TestRunCost(t *testing.T) {
	rc := RunCost{Dollars: 2, Calls: 10, Wall: 30 * time.Minute, Claims: 100}
	if got := rc.Throughput(); math.Abs(got-200) > 1e-9 {
		t.Errorf("throughput = %v", got)
	}
	if got := rc.CostPerClaim(); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("cost/claim = %v", got)
	}
	zero := RunCost{}
	if zero.Throughput() != 0 || zero.CostPerClaim() != 0 {
		t.Error("zero run cost must not divide by zero")
	}
}
