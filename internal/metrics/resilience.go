package metrics

import (
	"fmt"
	"sync/atomic"
)

// Resilience aggregates operational counters from the llm/resilience
// middleware stack (retries, hedges, circuit-breaker activity, injected
// faults). One instance is shared by every model client of a system, so the
// counters describe a whole verification run. All fields are atomics; the
// struct is safe for concurrent use and must not be copied — snapshot it
// with Snapshot instead.
//
// Counter ownership: the Retrier books Attempts and Retries, the Faulty
// injector books Faults and the per-class counters, Hedged books Hedges and
// HedgeWins, and the Breaker books BreakerTrips, BreakerSheds, and
// BreakerProbes.
type Resilience struct {
	// Attempts counts individual completion attempts issued by the retry
	// middleware (first tries included).
	Attempts atomic.Int64
	// Retries counts attempts beyond the first of a logical call.
	Retries atomic.Int64
	// Faults counts injected transport failures, broken out per class below.
	Faults      atomic.Int64
	RateLimited atomic.Int64
	Timeouts    atomic.Int64
	Transient   atomic.Int64
	Permanent   atomic.Int64
	// Hedges counts backup completions fired; HedgeWins counts the subset
	// that finished before the primary.
	Hedges    atomic.Int64
	HedgeWins atomic.Int64
	// BreakerTrips counts closed/half-open -> open transitions; BreakerSheds
	// counts calls rejected while open; BreakerProbes counts half-open probe
	// admissions.
	BreakerTrips  atomic.Int64
	BreakerSheds  atomic.Int64
	BreakerProbes atomic.Int64
}

// ResilienceSnapshot is a plain-value copy of the counters at one instant.
type ResilienceSnapshot struct {
	Attempts, Retries                                   int64
	Faults, RateLimited, Timeouts, Transient, Permanent int64
	Hedges, HedgeWins                                   int64
	BreakerTrips, BreakerSheds, BreakerProbes           int64
}

// Snapshot reads all counters. Safe on a nil receiver (all-zero snapshot),
// so callers need not guard optional metrics.
func (r *Resilience) Snapshot() ResilienceSnapshot {
	if r == nil {
		return ResilienceSnapshot{}
	}
	return ResilienceSnapshot{
		Attempts:      r.Attempts.Load(),
		Retries:       r.Retries.Load(),
		Faults:        r.Faults.Load(),
		RateLimited:   r.RateLimited.Load(),
		Timeouts:      r.Timeouts.Load(),
		Transient:     r.Transient.Load(),
		Permanent:     r.Permanent.Load(),
		Hedges:        r.Hedges.Load(),
		HedgeWins:     r.HedgeWins.Load(),
		BreakerTrips:  r.BreakerTrips.Load(),
		BreakerSheds:  r.BreakerSheds.Load(),
		BreakerProbes: r.BreakerProbes.Load(),
	}
}

// String renders the snapshot as a one-line operational summary.
func (s ResilienceSnapshot) String() string {
	return fmt.Sprintf(
		"attempts=%d retries=%d faults=%d (429=%d timeout=%d 5xx=%d 4xx=%d) hedges=%d wins=%d breaker: trips=%d sheds=%d probes=%d",
		s.Attempts, s.Retries, s.Faults, s.RateLimited, s.Timeouts, s.Transient, s.Permanent,
		s.Hedges, s.HedgeWins, s.BreakerTrips, s.BreakerSheds, s.BreakerProbes)
}
