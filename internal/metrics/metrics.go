// Package metrics computes the evaluation measures of Section 7: precision,
// recall, and F1 over the "incorrect claim" class, plus cost and throughput
// aggregation for the figures.
package metrics

import (
	"fmt"
	"time"

	"repro/internal/claim"
)

// Quality holds the three result-quality metrics of the paper: recall (the
// ratio of incorrect claims identified), precision (the ratio of claims
// marked incorrect that are indeed incorrect), and their F1 combination.
type Quality struct {
	Precision float64
	Recall    float64
	F1        float64
	// Confusion counts for transparency.
	TP, FP, FN, TN int
	// Failed counts claims whose verification died on a transport error
	// (Result.Method == claim.MethodFailed). They carry no semantic verdict
	// — the default "correct" is a placeholder, not a prediction — so they
	// are excluded from the confusion matrix and reported separately.
	// Scoring them would let a 429 storm silently inflate TN (or FP when a
	// partial attempt happened to be executable).
	Failed int
}

// Evaluate scores verification results against gold labels over a corpus.
// A claim is "predicted incorrect" when its final verdict marks it
// incorrect — whether through a plausible verified query or through the
// Section 4 fallback for executable-but-unmatched translations.
// Transport-failed claims are tallied in Failed and skipped.
func Evaluate(docs []*claim.Document) Quality {
	var q Quality
	for _, d := range docs {
		for _, c := range d.Claims {
			if c.Result.Method == claim.MethodFailed {
				q.Failed++
				continue
			}
			predictedIncorrect := !c.Result.Correct
			goldIncorrect := !c.Gold.Correct
			switch {
			case predictedIncorrect && goldIncorrect:
				q.TP++
			case predictedIncorrect && !goldIncorrect:
				q.FP++
			case !predictedIncorrect && goldIncorrect:
				q.FN++
			default:
				q.TN++
			}
		}
	}
	if q.TP+q.FP > 0 {
		q.Precision = float64(q.TP) / float64(q.TP+q.FP)
	}
	if q.TP+q.FN > 0 {
		q.Recall = float64(q.TP) / float64(q.TP+q.FN)
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}

// String renders the quality as percentages, Table 2 style.
func (q Quality) String() string {
	s := fmt.Sprintf("precision=%.1f recall=%.1f f1=%.1f (tp=%d fp=%d fn=%d tn=%d",
		q.Precision*100, q.Recall*100, q.F1*100, q.TP, q.FP, q.FN, q.TN)
	if q.Failed > 0 {
		s += fmt.Sprintf(" failed=%d", q.Failed)
	}
	return s + ")"
}

// RunCost summarizes the resource consumption of one verification run.
type RunCost struct {
	Dollars float64
	Calls   int
	Wall    time.Duration
	Claims  int
}

// Throughput returns verified claims per simulated hour, the y-axis of
// Figure 5's throughput-quality plot.
func (r RunCost) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Claims) / r.Wall.Hours()
}

// CostPerClaim returns average dollars per claim.
func (r RunCost) CostPerClaim() float64 {
	if r.Claims == 0 {
		return 0
	}
	return r.Dollars / float64(r.Claims)
}
