package review

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func item(doc, cl string, disagreement, fee, weight float64) Item {
	return Item{
		DocID: doc, ClaimID: cl,
		Sentence: doc + " " + cl + " sentence", Value: "42",
		Disagreement: disagreement, FeeSunk: fee, Weight: weight,
	}
}

// Item IDs are a pure content fingerprint: stable across processes, distinct
// for distinct claims, and length-prefixed against concatenation collisions.
func TestReviewItemIDStable(t *testing.T) {
	a := ItemID("doc", "c1", "the sentence", "42")
	if b := ItemID("doc", "c1", "the sentence", "42"); b != a {
		t.Fatalf("same content hashed differently: %s vs %s", a, b)
	}
	if b := ItemID("doc", "c2", "the sentence", "42"); b == a {
		t.Fatal("distinct claims collided")
	}
	if b := ItemID("do", "cc1", "the sentence", "42"); b == a {
		t.Fatal("length-prefixing failed: shifted field boundary collided")
	}
	if len(a) != 16 {
		t.Fatalf("ID length = %d, want 16", len(a))
	}
}

// Pending order is deterministic — priority descending, ID ascending on ties
// — regardless of enqueue order.
func TestReviewPriorityOrderingDeterministic(t *testing.T) {
	items := []Item{
		item("d1", "c1", 1.0, 0.5, 1), // priority 1.5
		item("d1", "c2", 0.5, 0, 1),   // 0.5
		item("d2", "c1", 0.9, 1.0, 2), // 3.6
		item("d2", "c2", 0.5, 0, 1),   // 0.5: ties with d1/c2, ID breaks it
		item("d3", "c1", 0.67, 0.2, 1),
	}
	var want []Item
	for perm := 0; perm < 10; perm++ {
		q := NewQueue(0)
		r := rand.New(rand.NewSource(int64(perm)))
		for _, i := range r.Perm(len(items)) {
			if !q.Enqueue(items[i]) {
				t.Fatalf("perm %d: enqueue rejected %+v", perm, items[i])
			}
		}
		got := q.Pending(0)
		for i := range got {
			got[i].enqueuedAt = time.Time{} // wall clock, not part of the ordering contract
		}
		if perm == 0 {
			want = got
			for i := 1; i < len(want); i++ {
				a, b := want[i-1], want[i]
				if a.Priority < b.Priority || (a.Priority == b.Priority && a.ID >= b.ID) {
					t.Fatalf("order violated at %d: %+v before %+v", i, a, b)
				}
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("perm %d: pending order diverged:\n got %+v\nwant %+v", perm, got, want)
		}
	}
	if want[0].DocID != "d2" || want[0].ClaimID != "c1" {
		t.Fatalf("highest expected-value item = %s/%s, want d2/c1", want[0].DocID, want[0].ClaimID)
	}
}

// Resolve is idempotent: the first resolution wins, repeats — even with a
// contradictory verdict — return it unchanged, and a resolved claim cannot be
// re-enqueued by later traffic.
func TestReviewResolveIdempotent(t *testing.T) {
	q := NewQueue(0)
	it := item("d", "c1", 1, 0.2, 1)
	if !q.Enqueue(it) {
		t.Fatal("enqueue rejected")
	}
	id := q.Pending(0)[0].ID

	first, ok := q.Resolve(id, ResolutionOverturned, "bad join")
	if !ok || first.Resolution != ResolutionOverturned || first.Note != "bad join" {
		t.Fatalf("first resolve = %+v ok=%t", first, ok)
	}
	if len(q.Pending(0)) != 0 {
		t.Fatal("resolved item still pending")
	}
	second, ok := q.Resolve(id, ResolutionConfirmed, "actually fine")
	if !ok {
		t.Fatal("second resolve reported unknown id")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("second resolve changed the item:\nfirst  %+v\nsecond %+v", first, second)
	}
	if q.Enqueue(it) {
		t.Fatal("resolved claim was re-enqueued")
	}
	if st := q.Stats(); st.Resolved != 1 || st.Depth != 0 {
		t.Fatalf("stats = %+v, want resolved=1 depth=0", st)
	}
	if _, ok := q.Resolve("no-such-id", ResolutionConfirmed, ""); ok {
		t.Fatal("unknown id resolved")
	}
}

// Enqueue is idempotent by ID, rejects unreviewable (zero-disagreement)
// items, and at the cap keeps the highest-priority claims.
func TestReviewEnqueueBoundsAndIdempotency(t *testing.T) {
	q := NewQueue(2)
	if q.Enqueue(item("d", "agree", 0, 1, 1)) {
		t.Fatal("zero-disagreement item enqueued")
	}
	a, b := item("d", "a", 0.5, 0, 1), item("d", "b", 0.9, 0, 1)
	q.Enqueue(a)
	q.Enqueue(b)
	if !q.Enqueue(a) { // duplicate refreshes in place
		t.Fatal("pending duplicate rejected")
	}
	if st := q.Stats(); st.Depth != 2 || st.Enqueued != 2 {
		t.Fatalf("after duplicate: stats = %+v, want depth=2 enqueued=2", st)
	}
	// Outranking item evicts the lowest; underranking item is dropped.
	if !q.Enqueue(item("d", "hot", 1.0, 1, 1)) {
		t.Fatal("outranking item rejected at cap")
	}
	if q.Enqueue(item("d", "cold", 0.1, 0, 1)) {
		t.Fatal("underranking item admitted at cap")
	}
	got := q.Pending(0)
	if len(got) != 2 || got[0].ClaimID != "hot" || got[1].ClaimID != "b" {
		t.Fatalf("pending after eviction = %+v, want [hot b]", got)
	}
	if st := q.Stats(); st.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (one eviction, one rejection)", st.Dropped)
	}
}

// Stats reports depth, age of the oldest pending item, and the max priority.
func TestReviewStatsAge(t *testing.T) {
	q := NewQueue(0)
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }
	q.Enqueue(item("d", "c1", 0.9, 0, 1))
	now = now.Add(3 * time.Second)
	q.Enqueue(item("d", "c2", 0.5, 0, 1))
	now = now.Add(2 * time.Second)
	st := q.Stats()
	if st.Depth != 2 || st.OldestAge != 5*time.Second || st.MaxPriority != 0.9 {
		t.Fatalf("stats = %+v, want depth=2 oldest=5s maxPriority=0.9", st)
	}
}

// The queue is safe under concurrent enqueue/resolve/pending traffic.
func TestReviewConcurrentAccess(t *testing.T) {
	q := NewQueue(64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				it := item(fmt.Sprintf("d%d", g), fmt.Sprintf("c%d", i), 0.5+float64(i%5)/10, float64(i)/100, 1)
				q.Enqueue(it)
				if p := q.Pending(4); len(p) > 0 {
					q.Resolve(p[0].ID, ResolutionConfirmed, "")
				}
				q.Stats()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// An item evicted at the cap is gone, not resolved: resolving it reports
// ok=false, and — unlike a resolved claim — it may be legitimately
// re-enqueued by later traffic and then resolved normally.
func TestReviewResolveAfterCapEviction(t *testing.T) {
	q := NewQueue(1)
	cold := item("d", "cold", 0.2, 0, 1)
	if !q.Enqueue(cold) {
		t.Fatal("cold item rejected on an empty queue")
	}
	coldID := q.Pending(0)[0].ID
	if !q.Enqueue(item("d", "hot", 0.9, 0, 1)) {
		t.Fatal("outranking item rejected at cap")
	}

	// The eviction removed cold without a human verdict; resolving it must
	// fail rather than minting a resolution for an item nobody reviewed.
	if _, ok := q.Resolve(coldID, ResolutionConfirmed, ""); ok {
		t.Fatal("evicted item resolved; eviction must not imply resolution")
	}
	if st := q.Stats(); st.Resolved != 0 || st.Dropped != 1 || st.Depth != 1 {
		t.Fatalf("stats after evicted-resolve = %+v, want resolved=0 dropped=1 depth=1", st)
	}

	// Eviction is not a verdict: once capacity frees up the same claim can
	// come back and be resolved like any pending item.
	hotID := q.Pending(0)[0].ID
	if _, ok := q.Resolve(hotID, ResolutionConfirmed, ""); !ok {
		t.Fatal("pending hot item did not resolve")
	}
	if !q.Enqueue(cold) {
		t.Fatal("evicted (never-resolved) item rejected on re-enqueue")
	}
	if it, ok := q.Resolve(coldID, ResolutionOverturned, "second pass"); !ok || it.Resolution != ResolutionOverturned {
		t.Fatalf("re-enqueued item resolve = %+v ok=%t", it, ok)
	}
}

// A duplicate Enqueue — e.g. the same claim arriving twice through the
// sharded tier's failover proxy — refreshes the pending item in place: its
// priority follows the newest inputs, the enqueue counter does not double,
// and its position in review order moves with the refreshed priority.
func TestReviewDuplicateEnqueueRefreshesPriority(t *testing.T) {
	q := NewQueue(0)
	a := item("d", "a", 0.3, 0, 1)
	b := item("d", "b", 0.5, 0, 1)
	q.Enqueue(a)
	q.Enqueue(b)
	if got := q.Pending(0); got[0].ClaimID != "b" {
		t.Fatalf("initial order = [%s %s], want b first", got[0].ClaimID, got[1].ClaimID)
	}

	// Same claim, higher sunk fee: identical ID, so this refreshes a rather
	// than adding a second entry — and a now outranks b.
	a.FeeSunk = 3
	if !q.Enqueue(a) {
		t.Fatal("duplicate refresh rejected")
	}
	got := q.Pending(0)
	if len(got) != 2 || got[0].ClaimID != "a" {
		t.Fatalf("order after refresh = %+v, want a first", got)
	}
	if want := Priority(0.3, 3, 1); got[0].Priority != want {
		t.Fatalf("refreshed priority = %v, want %v", got[0].Priority, want)
	}
	if st := q.Stats(); st.Enqueued != 2 || st.Depth != 2 || st.Dropped != 0 {
		t.Fatalf("stats after refresh = %+v, want enqueued=2 depth=2 dropped=0", st)
	}
}
