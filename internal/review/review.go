// Package review implements CEDAR's mixed-initiative review queue: the
// holding pen for verdicts the pipeline is least sure about, ranked by the
// expected value of spending human attention on them. The Scrutinizer system
// (PAPERS.md) frames fact-checking as question selection — ask the human
// about the claims where a second opinion changes the most — and this package
// applies the same model to served verification: ambiguous verdicts
// (transport-failed, semantically exhausted, or verified only after method
// disagreement) are enqueued with a priority of
//
//	disagreement × (1 + fee sunk) × weight
//
// so the queue surfaces claims where the methods disagreed most, where the
// most money was already spent (sunk fees proxy for how hard the claim is —
// and how expensive re-running it would be), and which the caller weighted
// highest. Ordering is fully deterministic: priority descending, then item ID
// ascending, with IDs derived from a content fingerprint of the claim — the
// same queue contents rank identically on every replica.
//
// cedar-serve exposes the queue as GET /v1/review (pending items) and
// POST /v1/review/{id} (resolve); resolution is idempotent — the first
// resolution wins and repeats return it unchanged — so a retried resolve
// (e.g. through the failover proxy) cannot flip a verdict twice.
package review

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// Resolutions accepted by Queue.Resolve.
const (
	// ResolutionConfirmed records that the human agreed with the pipeline.
	ResolutionConfirmed = "confirmed"
	// ResolutionOverturned records that the human reversed the verdict.
	ResolutionOverturned = "overturned"
)

// ValidResolution reports whether r is an accepted resolution value.
func ValidResolution(r string) bool {
	return r == ResolutionConfirmed || r == ResolutionOverturned
}

// Item is one claim awaiting (or having received) human review. The JSON
// field names are the GET /v1/review wire surface (docs/CLI.md).
type Item struct {
	// ID is the deterministic content fingerprint from ItemID; it doubles as
	// the resolve-endpoint path element and the idempotency key.
	ID string `json:"id"`
	// DocID and ClaimID locate the claim; Sentence and Value reproduce it.
	DocID    string `json:"doc_id"`
	ClaimID  string `json:"claim_id"`
	Sentence string `json:"sentence,omitempty"`
	Value    string `json:"value,omitempty"`
	// Verified/Correct/Method/Attempts/Failure mirror the pipeline's verdict
	// (internal/claim.Result) so a reviewer sees what they are second-guessing.
	Verified bool   `json:"verified"`
	Correct  bool   `json:"correct"`
	Method   string `json:"method,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Failure  string `json:"failure,omitempty"`
	// Disagreement, FeeSunk, and Weight are the priority inputs; Priority is
	// their product (see Priority).
	Disagreement float64 `json:"disagreement"`
	FeeSunk      float64 `json:"fee_sunk"`
	Weight       float64 `json:"weight"`
	Priority     float64 `json:"priority"`
	// Resolution is empty while pending, else one of the Resolution*
	// constants; Note is the reviewer's free-form comment.
	Resolution string `json:"resolution,omitempty"`
	Note       string `json:"note,omitempty"`

	// enqueuedAt feeds the queue-age metric; wall clock, never part of the
	// determinism surface.
	enqueuedAt time.Time
}

// ItemID derives the deterministic identity of one reviewable claim from its
// content: the same claim enqueued on any replica — or enqueued twice — gets
// the same ID, which is what makes Enqueue and Resolve idempotent across the
// sharded tier. Fields are length-prefixed so no two distinct inputs collide
// by concatenation.
func ItemID(docID, claimID, sentence, value string) string {
	h := sha256.New()
	var n [8]byte
	for _, f := range []string{docID, claimID, sentence, value} {
		binary.BigEndian.PutUint64(n[:], uint64(len(f)))
		h.Write(n[:])
		h.Write([]byte(f))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Priority computes the expected-value-of-effort rank: disagreement across
// methods × (1 + fee already sunk) × claim weight. The 1+fee floor keeps a
// high-disagreement claim reviewable even when it cost nothing (e.g. it was
// answered from cache); a non-positive weight defaults to 1.
func Priority(disagreement, feeSunk, weight float64) float64 {
	if weight <= 0 {
		weight = 1
	}
	if feeSunk < 0 {
		feeSunk = 0
	}
	return disagreement * (1 + feeSunk) * weight
}

// Stats snapshots the queue for /v1/metrics.
type Stats struct {
	// Depth is the pending count; Enqueued/Resolved/Dropped are cumulative.
	Depth    int
	Enqueued int64
	Resolved int64
	Dropped  int64
	// OldestAge is the wall-clock age of the oldest pending item (zero when
	// empty); MaxPriority the highest pending priority.
	OldestAge   time.Duration
	MaxPriority float64
}

// Queue is a bounded, deterministic review queue. Safe for concurrent use.
type Queue struct {
	mu    sync.Mutex
	cap   int
	items map[string]*Item
	// resolved outlives the pending set so Resolve stays idempotent and a
	// resolved claim is not silently re-enqueued by later traffic.
	resolvedItems map[string]*Item

	enqueued, resolved, dropped int64

	// now is injectable for tests; defaults to time.Now.
	now func() time.Time
}

// DefaultCap bounds a queue built with NewQueue(0).
const DefaultCap = 256

// NewQueue builds a review queue holding at most capacity pending items
// (capacity <= 0 applies DefaultCap). At the cap, a new item evicts the
// lowest-priority pending item only if it outranks it; otherwise the new item
// is dropped — the queue keeps the claims most worth reviewing.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Queue{
		cap:           capacity,
		items:         make(map[string]*Item),
		resolvedItems: make(map[string]*Item),
		now:           time.Now,
	}
}

// Enqueue adds one item, deriving its ID (when empty) and Priority from its
// fields. It reports whether the item is pending afterwards. Enqueue is
// idempotent by ID: a pending duplicate is refreshed in place, an
// already-resolved ID is ignored (the human has spoken), and a zero
// disagreement is not reviewable and never enqueued.
func (q *Queue) Enqueue(it Item) bool {
	if it.ID == "" {
		it.ID = ItemID(it.DocID, it.ClaimID, it.Sentence, it.Value)
	}
	if it.Weight <= 0 {
		it.Weight = 1
	}
	it.Priority = Priority(it.Disagreement, it.FeeSunk, it.Weight)
	if it.Disagreement <= 0 {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, done := q.resolvedItems[it.ID]; done {
		return false
	}
	if existing, ok := q.items[it.ID]; ok {
		it.enqueuedAt = existing.enqueuedAt
		*existing = it
		return true
	}
	if len(q.items) >= q.cap {
		victim := q.lowestLocked()
		if victim == nil || victim.Priority >= it.Priority {
			q.dropped++
			return false
		}
		delete(q.items, victim.ID)
		q.dropped++
	}
	it.enqueuedAt = q.now()
	q.items[it.ID] = &it
	q.enqueued++
	return true
}

// lowestLocked finds the eviction victim: lowest priority, ties broken by
// highest ID so the ordering is the exact reverse of Pending's.
func (q *Queue) lowestLocked() *Item {
	var victim *Item
	for _, it := range q.items {
		if victim == nil || it.Priority < victim.Priority ||
			(it.Priority == victim.Priority && it.ID > victim.ID) {
			victim = it
		}
	}
	return victim
}

// Pending returns up to limit pending items (limit <= 0 returns all) in
// deterministic review order: priority descending, then ID ascending.
func (q *Queue) Pending(limit int) []Item {
	q.mu.Lock()
	out := make([]Item, 0, len(q.items))
	for _, it := range q.items {
		out = append(out, *it)
	}
	q.mu.Unlock()
	SortItems(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// SortItems orders items in review order: priority descending, ID ascending.
// Exported so the coordinator can merge replica queues into the same order.
func SortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Priority != items[j].Priority {
			return items[i].Priority > items[j].Priority
		}
		return items[i].ID < items[j].ID
	})
}

// Get returns one item, pending or resolved.
func (q *Queue) Get(id string) (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if it, ok := q.items[id]; ok {
		return *it, true
	}
	if it, ok := q.resolvedItems[id]; ok {
		return *it, true
	}
	return Item{}, false
}

// Resolve records the human verdict for one item and removes it from the
// pending set. Resolve is idempotent: resolving an already-resolved item
// returns it with its first resolution intact — later calls, whatever they
// say, change nothing. Unknown IDs report ok=false.
func (q *Queue) Resolve(id, resolution, note string) (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if it, ok := q.resolvedItems[id]; ok {
		return *it, true
	}
	it, ok := q.items[id]
	if !ok {
		return Item{}, false
	}
	delete(q.items, id)
	it.Resolution = resolution
	it.Note = note
	q.resolvedItems[id] = it
	q.resolved++
	return *it, true
}

// Stats snapshots the queue counters for /v1/metrics.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{
		Depth:    len(q.items),
		Enqueued: q.enqueued,
		Resolved: q.resolved,
		Dropped:  q.dropped,
	}
	var oldest time.Time
	for _, it := range q.items {
		if oldest.IsZero() || it.enqueuedAt.Before(oldest) {
			oldest = it.enqueuedAt
		}
		if it.Priority > st.MaxPriority {
			st.MaxPriority = it.Priority
		}
	}
	if !oldest.IsZero() {
		st.OldestAge = q.now().Sub(oldest)
	}
	return st
}
