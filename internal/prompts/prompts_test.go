package prompts

import (
	"strings"
	"testing"
)

const schemaSQL = `CREATE TABLE "airlines" ("airline" TEXT, "fatal_accidents_00_14" INTEGER);` + "\n"

func TestOneShotStructure(t *testing.T) {
	p := OneShot("The x fatal accidents claim.", "numeric", schemaSQL,
		Sample("sample claim", "SELECT 1"), "context paragraph")
	for _, want := range []string{
		ClaimOpen, ClaimClose, "numeric", SchemaIntro, "CREATE TABLE",
		SQLFence, SampleIntro, ContextIntro, "context paragraph", "percentages",
	} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
}

func TestAgentStructure(t *testing.T) {
	p := Agent("claim x.", "", schemaSQL, "", "ctx")
	for _, want := range []string{AgentMarker, ToolUniqueValues, ToolQuery, "Thought:", "Final Answer:"} {
		if !strings.Contains(p, want) {
			t.Errorf("agent prompt missing %q", want)
		}
	}
}

func TestExtractClaim(t *testing.T) {
	p := OneShot("My masked claim x.", "numeric", schemaSQL, "", "ctx")
	masked, typ, ok := ExtractClaim(p)
	if !ok || masked != "My masked claim x." || typ != "numeric" {
		t.Errorf("extract = %q %q %v", masked, typ, ok)
	}
	p = OneShot("Textual claim x.", "", schemaSQL, "", "ctx")
	_, typ, ok = ExtractClaim(p)
	if !ok || typ != "" {
		t.Errorf("empty type extract = %q %v", typ, ok)
	}
	if _, _, ok := ExtractClaim("no markers here"); ok {
		t.Error("extracted claim from unmarked text")
	}
}

func TestExtractContext(t *testing.T) {
	p := OneShot("c x.", "", schemaSQL, "", "the relevant paragraph")
	if got := ExtractContext(p); got != "the relevant paragraph" {
		t.Errorf("context = %q", got)
	}
	if got := ExtractContext("no marker"); got != "" {
		t.Errorf("absent context = %q", got)
	}
}

func TestHasSample(t *testing.T) {
	with := OneShot("c x.", "", schemaSQL, Sample("m", "SELECT 1"), "ctx")
	without := OneShot("c x.", "", schemaSQL, "", "ctx")
	if !HasSample(with) || HasSample(without) {
		t.Error("sample detection")
	}
}

func TestExtractSQL(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"text\n```sql\nSELECT 1\n```\nmore", "SELECT 1", true},
		{"```sql\nSELECT a FROM t WHERE b = 'x'\n```", "SELECT a FROM t WHERE b = 'x'", true},
		{"no fence but\nSELECT 2 FROM t\nhere", "SELECT 2 FROM t", true},
		{"only lowercase\nselect 3", "select 3", true},
		{"nothing SQL-ish at all", "", false},
		{"```sql\n\n```", "", false},
	}
	for _, c := range cases {
		got, ok := ExtractSQL(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ExtractSQL(%q) = %q,%v want %q,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestExtractSection(t *testing.T) {
	if s, ok := ExtractSection("a [x] b", "[", "]"); !ok || s != "x" {
		t.Errorf("section = %q %v", s, ok)
	}
	if _, ok := ExtractSection("a [x b", "[", "]"); ok {
		t.Error("unclosed section extracted")
	}
	if _, ok := ExtractSection("a x] b", "[", "]"); ok {
		t.Error("unopened section extracted")
	}
}
