// Package prompts holds the prompt templates of CEDAR's verification
// methods: the one-shot claim-to-SQL template of Figure 3 and the
// ReAct agent template of Section 5.3. The templates live in their own
// package because both the verification pipeline (which fills them) and the
// simulated models (which read them, the way a real LLM reads the prompt)
// need the same markers.
package prompts

import (
	"fmt"
	"strings"
)

// Markers used to delimit prompt sections. Extraction in the simulated
// models keys on these exact strings.
const (
	ClaimOpen    = `Given the claim "`
	ClaimClose   = `" where "x" is a "`
	TypeClose    = `" value`
	SchemaIntro  = "You must use the schema of the following tables:"
	SampleIntro  = "For example, given the claim"
	ContextIntro = "The following context information might help to form the SQL query."
	SQLFence     = "```sql"

	// AgentMarker distinguishes agent prompts from one-shot prompts.
	AgentMarker = "You have access to the following tools:"
	// ToolUniqueValues lets the agent list distinct values of a column.
	ToolUniqueValues = "unique_column_values"
	// ToolQuery lets the agent run a SQL query and receive comparative
	// feedback against the claim value.
	ToolQuery = "database_querying"
)

// OneShot renders the one-shot claim-to-SQL prompt of Figure 3.
// maskedClaim is the claim sentence with the value obfuscated as "x";
// valueType is "numeric" or empty; schemaSQL is the CREATE TABLE rendering
// of the database; sample is a previously solved claim/query pair (empty
// when none is available); context is the masked claim paragraph.
func OneShot(maskedClaim, valueType, schemaSQL, sample, context string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s%s%s%s, you must think about a question that generates \"x\" as the answer and then generate a SQL query to answer that question.\n",
		ClaimOpen, maskedClaim, ClaimClose, valueType, TypeClose)
	b.WriteString(SchemaIntro + "\n")
	b.WriteString(schemaSQL)
	b.WriteString("To query for percentages use the format \"SELECT (SELECT COUNT(column_name) FROM table WHERE equality_predicates) * 100.0 / (SELECT COUNT(column_name) FROM table WHERE equality_predicates)\". Other queries are of format \"SELECT aggregate_function(column_name) FROM table WHERE equality_predicates\".\n")
	b.WriteString("Wrap the SQL in " + SQLFence + " ```.\n")
	if sample != "" {
		b.WriteString(sample + "\n")
	}
	b.WriteString(ContextIntro + "\n")
	b.WriteString(context + "\n")
	return b.String()
}

// Sample renders the few-shot sample block included in prompts once a claim
// has been verified successfully (the {sample} placeholder of Figure 3).
func Sample(maskedClaim, query string) string {
	return fmt.Sprintf("%s \"%s\", to find the value for \"x\", generated SQL query would be \"%s\".",
		SampleIntro, maskedClaim, query)
}

// Agent renders the base prompt of the ReAct agent: the one-shot task
// description extended with tool descriptions and the thought/action
// protocol instructions (the LangChain-style ReAct template).
func Agent(maskedClaim, valueType, schemaSQL, sample, context string) string {
	var b strings.Builder
	b.WriteString(OneShot(maskedClaim, valueType, schemaSQL, sample, context))
	b.WriteString("\n" + AgentMarker + "\n")
	fmt.Fprintf(&b, "- %s: given a column name, returns the distinct values stored in that column.\n", ToolUniqueValues)
	fmt.Fprintf(&b, "- %s: given a SQL query, executes it on the data and returns the result together with feedback comparing it to the claimed value.\n", ToolQuery)
	b.WriteString(`Use the following format:
Thought: reason about what to do next
Action: the tool to use
Action Input: the input to the tool
Observation: the result of the action
... (Thought/Action/Action Input/Observation can repeat)
Thought: I now know the final answer.
Final Answer: the value of "x"
`)
	return b.String()
}

// ExtractSection returns the text between the first occurrence of open and
// the following occurrence of close. ok is false when either marker is
// missing.
func ExtractSection(text, open, close string) (string, bool) {
	_, rest, found := strings.Cut(text, open)
	if !found {
		return "", false
	}
	inner, _, found := strings.Cut(rest, close)
	if !found {
		return "", false
	}
	return inner, true
}

// ExtractClaim pulls the masked claim and value type out of a prompt.
func ExtractClaim(prompt string) (masked, valueType string, ok bool) {
	masked, ok = ExtractSection(prompt, ClaimOpen, ClaimClose)
	if !ok {
		return "", "", false
	}
	valueType, ok = ExtractSection(prompt, ClaimClose, TypeClose)
	if !ok {
		return masked, "", true
	}
	return masked, valueType, true
}

// ExtractContext pulls the context paragraph out of a prompt (everything
// after the context marker up to the next blank line or end).
func ExtractContext(prompt string) string {
	_, rest, found := strings.Cut(prompt, ContextIntro)
	if !found {
		return ""
	}
	rest = strings.TrimLeft(rest, "\n")
	if idx := strings.Index(rest, "\n\n"); idx >= 0 {
		rest = rest[:idx]
	}
	return strings.TrimSpace(rest)
}

// HasSample reports whether the prompt contains a few-shot sample.
func HasSample(prompt string) bool { return strings.Contains(prompt, SampleIntro) }

// ExtractSQL pulls the first fenced SQL block out of a model response. It
// tolerates a bare ``` fence and, failing that, a line starting with SELECT,
// the way CEDAR's post-processing extracts queries from chatty responses.
func ExtractSQL(response string) (string, bool) {
	if inner, ok := ExtractSection(response, SQLFence, "```"); ok {
		q := strings.TrimSpace(inner)
		if q != "" {
			return q, true
		}
	}
	for _, line := range strings.Split(response, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(strings.ToUpper(trimmed), "SELECT") {
			return trimmed, true
		}
	}
	return "", false
}
