package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Rollup accumulates the attempt spans of one group (a method or a model):
// counts, token and fee totals, and latency quantiles over the simulated
// per-attempt latency.
type Rollup struct {
	Name             string        `json:"name"`
	Attempts         int           `json:"attempts"`
	Errors           int           `json:"errors"`
	PromptTokens     int           `json:"ptok"`
	CompletionTokens int           `json:"ctok"`
	Fee              float64       `json:"fee"`
	P50              time.Duration `json:"p50_ns"`
	P95              time.Duration `json:"p95_ns"`
	P99              time.Duration `json:"p99_ns"`
}

// KindCount is the number of spans of one kind in a trace.
type KindCount struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
}

// OutcomeCount is the number of verification attempts ending in one outcome
// ("verified", "implausible", or a transport class).
type OutcomeCount struct {
	Outcome string `json:"outcome"`
	N       int    `json:"n"`
}

// Summary is the aggregate view over a span stream: per-method and per-model
// rollups of the attempt spans, outcome tallies of the verification attempts,
// and event counts per kind.
type Summary struct {
	Spans    int            `json:"spans"`
	Attempts int            `json:"attempts"`
	Fee      float64        `json:"fee"`
	ByMethod []Rollup       `json:"by_method"`
	ByModel  []Rollup       `json:"by_model"`
	Outcomes []OutcomeCount `json:"outcomes"`
	Kinds    []KindCount    `json:"kinds"`
}

// Aggregate folds a span stream into a Summary. Spans are processed in the
// canonical sorted order produced by Tracer.Spans, so floating-point fee
// accumulation is order-stable and the summary is as deterministic as the
// trace itself. Anonymous attempt spans (zero Key, e.g. profiling traffic)
// roll up under the method name "(untracked)".
func Aggregate(spans []Span) Summary {
	sum := Summary{Spans: len(spans)}
	byMethod := map[string]*Rollup{}
	byModel := map[string]*Rollup{}
	latByMethod := map[string][]time.Duration{}
	latByModel := map[string][]time.Duration{}
	outcomes := map[string]int{}
	kinds := map[string]int{}
	for _, s := range spans {
		kinds[s.Kind]++
		switch s.Kind {
		case KindAttempt:
			sum.Attempts++
			sum.Fee += s.Fee
			method := s.Method
			if method == "" {
				method = "(untracked)"
			}
			for _, g := range []struct {
				m   map[string]*Rollup
				lat map[string][]time.Duration
				key string
			}{
				{byMethod, latByMethod, method},
				{byModel, latByModel, s.Model},
			} {
				r := g.m[g.key]
				if r == nil {
					r = &Rollup{Name: g.key}
					g.m[g.key] = r
				}
				r.Attempts++
				if s.Outcome != OutcomeOK {
					r.Errors++
				}
				r.PromptTokens += s.PromptTokens
				r.CompletionTokens += s.CompletionTokens
				r.Fee += s.Fee
				g.lat[g.key] = append(g.lat[g.key], s.Latency)
			}
		case KindOutcome:
			outcomes[s.Outcome]++
		}
	}
	sum.ByMethod = finishRollups(byMethod, latByMethod)
	sum.ByModel = finishRollups(byModel, latByModel)
	for o, n := range outcomes {
		sum.Outcomes = append(sum.Outcomes, OutcomeCount{Outcome: o, N: n})
	}
	sort.Slice(sum.Outcomes, func(i, j int) bool { return sum.Outcomes[i].Outcome < sum.Outcomes[j].Outcome })
	for k, n := range kinds {
		sum.Kinds = append(sum.Kinds, KindCount{Kind: k, N: n})
	}
	sort.Slice(sum.Kinds, func(i, j int) bool { return sum.Kinds[i].Kind < sum.Kinds[j].Kind })
	return sum
}

func finishRollups(m map[string]*Rollup, lat map[string][]time.Duration) []Rollup {
	out := make([]Rollup, 0, len(m))
	for name, r := range m {
		ls := lat[name]
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		r.P50 = quantile(ls, 0.50)
		r.P95 = quantile(ls, 0.95)
		r.P99 = quantile(ls, 0.99)
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// quantile returns the q-th quantile of a sorted duration slice using the
// nearest-rank method (exact, order-stable — no interpolation arithmetic to
// drift across platforms).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Table renders the summary as a text report: the per-method and per-model
// rollups (attempts, errors, tokens, fee, latency quantiles), outcome
// tallies, and event counts.
func (s Summary) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d spans, %d model attempts, $%.4f total fee\n", s.Spans, s.Attempts, s.Fee)
	writeRollups := func(title string, rs []Rollup) {
		if len(rs) == 0 {
			return
		}
		fmt.Fprintf(&b, "\n%-18s %8s %6s %9s %9s %10s %10s %10s %10s\n",
			title, "attempts", "errs", "ptok", "ctok", "fee($)", "p50", "p95", "p99")
		for _, r := range rs {
			fmt.Fprintf(&b, "%-18s %8d %6d %9d %9d %10.4f %10v %10v %10v\n",
				r.Name, r.Attempts, r.Errors, r.PromptTokens, r.CompletionTokens, r.Fee,
				r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond), r.P99.Round(time.Millisecond))
		}
	}
	writeRollups("method", s.ByMethod)
	writeRollups("model", s.ByModel)
	if len(s.Outcomes) > 0 {
		b.WriteString("\noutcomes:")
		for _, o := range s.Outcomes {
			fmt.Fprintf(&b, " %s=%d", o.Outcome, o.N)
		}
		b.WriteByte('\n')
	}
	if len(s.Kinds) > 0 {
		b.WriteString("events:")
		for _, k := range s.Kinds {
			fmt.Fprintf(&b, " %s=%d", k.Kind, k.N)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Manifest describes the run a trace belongs to: the seed, worker count,
// corpus size, and the full option set that produced it. It is exported with
// the summary (not the JSONL span stream) because it names configuration —
// the worker count — that the determinism contract deliberately excludes
// from the byte-identical trace.
type Manifest struct {
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`
	Docs    int   `json:"docs"`
	Claims  int   `json:"claims"`
	// Options is the run's full configuration (e.g. cedar.Options),
	// serialized as-is.
	Options any `json:"options,omitempty"`
}

// JSON renders the manifest as a single JSON line.
func (m Manifest) JSON() string {
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Sprintf(`{"seed":%d,"error":%q}`, m.Seed, err.Error())
	}
	return string(raw)
}
