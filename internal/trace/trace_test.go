package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAssignsPerKeySequence(t *testing.T) {
	tr := New()
	a := Key{Doc: "d1", Claim: 0, Method: "oneshot", Try: 0}
	b := Key{Doc: "d1", Claim: 1, Method: "oneshot", Try: 0}
	tr.Record(Span{Key: a, Kind: KindAttempt})
	tr.Record(Span{Key: b, Kind: KindAttempt})
	tr.Record(Span{Key: a, Kind: KindFault})
	tr.Record(Span{Key: a, Kind: KindOutcome})
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("len = %d", len(spans))
	}
	// Sorted: a's three spans (seq 0,1,2) then b's one (seq 0).
	wantKinds := []string{KindAttempt, KindFault, KindOutcome, KindAttempt}
	wantSeqs := []int{0, 1, 2, 0}
	for i, s := range spans {
		if s.Kind != wantKinds[i] || s.Seq != wantSeqs[i] {
			t.Errorf("span %d = kind %s seq %d, want %s/%d", i, s.Kind, s.Seq, wantKinds[i], wantSeqs[i])
		}
	}
}

// TestSortedOrderIndependentOfRecordingOrder is the heart of the determinism
// contract: interleaving recordings from concurrent attempts must not change
// the canonical sorted stream, as long as each attempt's own spans stay in
// attempt order.
func TestSortedOrderIndependentOfRecordingOrder(t *testing.T) {
	mk := func(interleave bool) []byte {
		tr := New()
		a := Key{Doc: "d1", Claim: 0, Method: "m", Try: 0}
		b := Key{Doc: "d1", Claim: 1, Method: "m", Try: 0}
		if interleave {
			tr.Record(Span{Key: b, Kind: KindAttempt, Fee: 2})
			tr.Record(Span{Key: a, Kind: KindAttempt, Fee: 1})
			tr.Record(Span{Key: b, Kind: KindOutcome, Outcome: OutcomeVerified})
			tr.Record(Span{Key: a, Kind: KindOutcome, Outcome: OutcomeImplausible})
		} else {
			tr.Record(Span{Key: a, Kind: KindAttempt, Fee: 1})
			tr.Record(Span{Key: a, Kind: KindOutcome, Outcome: OutcomeImplausible})
			tr.Record(Span{Key: b, Kind: KindAttempt, Fee: 2})
			tr.Record(Span{Key: b, Kind: KindOutcome, Outcome: OutcomeVerified})
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(mk(false), mk(true)) {
		t.Errorf("sorted JSONL depends on recording order:\n%s\nvs\n%s", mk(false), mk(true))
	}
}

func TestNilTracerIsDisabledNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Record(Span{Kind: KindAttempt}) // must not panic
	tr.Reset()
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Error("nil tracer holds spans")
	}
}

// TestNilTracerRecordAllocatesNothing guards the zero-cost-when-disabled
// contract on the hot path: recording into a nil tracer must not allocate.
func TestNilTracerRecordAllocatesNothing(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			t.Fatal("unreachable")
		}
		tr.Record(Span{Kind: KindAttempt, Model: "m", Fee: 1})
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f per record, want 0", allocs)
	}
}

func TestTracerConcurrentRaceClean(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := Key{Doc: "d", Claim: g, Method: "m"}
			for i := 0; i < 50; i++ {
				tr.Record(Span{Key: k, Kind: KindAttempt})
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 32*50 {
		t.Fatalf("len = %d", tr.Len())
	}
	spans := tr.Spans()
	for i, s := range spans {
		if s.Seq != i%50 {
			t.Fatalf("span %d seq = %d, want %d", i, s.Seq, i%50)
		}
	}
}

func TestResetClearsSequenceState(t *testing.T) {
	tr := New()
	k := Key{Doc: "d"}
	tr.Record(Span{Key: k, Kind: KindAttempt})
	tr.Reset()
	tr.Record(Span{Key: k, Kind: KindAttempt})
	if got := tr.Spans()[0].Seq; got != 0 {
		t.Errorf("seq after reset = %d, want 0", got)
	}
}

func TestAggregateRollups(t *testing.T) {
	tr := New()
	k := func(c int) Key { return Key{Doc: "d", Claim: c, Method: "oneshot-gpt3.5", Try: 0} }
	for c := 0; c < 4; c++ {
		tr.Record(Span{Key: k(c), Kind: KindAttempt, Model: "gpt35",
			PromptTokens: 100, CompletionTokens: 10, Fee: 0.001,
			Latency: time.Duration(c+1) * time.Second, Outcome: OutcomeOK})
	}
	tr.Record(Span{Key: k(3), Kind: KindFault, Outcome: "transient"})
	tr.Record(Span{Key: k(3), Kind: KindAttempt, Model: "gpt35", Fee: 0.002,
		Latency: 10 * time.Second, Outcome: OutcomeError})
	for c := 0; c < 3; c++ {
		tr.Record(Span{Key: k(c), Kind: KindOutcome, Outcome: OutcomeVerified})
	}
	tr.Record(Span{Key: k(3), Kind: KindOutcome, Outcome: "transient"})

	sum := tr.Summary()
	if sum.Attempts != 5 {
		t.Fatalf("attempts = %d", sum.Attempts)
	}
	if len(sum.ByMethod) != 1 || len(sum.ByModel) != 1 {
		t.Fatalf("rollup groups: %d methods, %d models", len(sum.ByMethod), len(sum.ByModel))
	}
	m := sum.ByMethod[0]
	if m.Name != "oneshot-gpt3.5" || m.Attempts != 5 || m.Errors != 1 {
		t.Errorf("method rollup %+v", m)
	}
	if m.PromptTokens != 400 || m.CompletionTokens != 40 {
		t.Errorf("token totals %d/%d", m.PromptTokens, m.CompletionTokens)
	}
	if got := m.Fee; got < 0.0059 || got > 0.0061 {
		t.Errorf("fee = %v", got)
	}
	// Latencies {1s,2s,3s,4s,10s}: nearest-rank p50 = 3s, p95 = p99 = 10s.
	if m.P50 != 3*time.Second || m.P95 != 10*time.Second || m.P99 != 10*time.Second {
		t.Errorf("quantiles p50=%v p95=%v p99=%v", m.P50, m.P95, m.P99)
	}
	if len(sum.Outcomes) != 2 || sum.Outcomes[0].Outcome != "transient" || sum.Outcomes[1].N != 3 {
		t.Errorf("outcomes %+v", sum.Outcomes)
	}
	table := sum.Table()
	for _, want := range []string{"oneshot-gpt3.5", "gpt35", "verified=3", "fault=1"} {
		if !strings.Contains(table, want) {
			t.Errorf("Table() missing %q:\n%s", want, table)
		}
	}
}

func TestQuantileNearestRank(t *testing.T) {
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	ls := []time.Duration{1, 2, 3, 4}
	cases := []struct {
		q    float64
		want time.Duration
	}{{0.25, 1}, {0.5, 2}, {0.75, 3}, {0.99, 4}, {1, 4}}
	for _, c := range cases {
		if got := quantile(ls, c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestManifestJSON(t *testing.T) {
	m := Manifest{Seed: 7, Workers: 8, Docs: 3, Claims: 42, Options: map[string]int{"Retries": 2}}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(m.JSON()), &decoded); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if decoded["seed"].(float64) != 7 || decoded["claims"].(float64) != 42 {
		t.Errorf("manifest = %s", m.JSON())
	}
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	tr := New()
	tr.Record(Span{Key: Key{Doc: "d", Claim: 1, Method: "m", Try: 0}, Kind: KindAttempt,
		Model: "gpt", Temperature: 0.25, Seed: -12345, PromptTokens: 9, CompletionTokens: 4,
		Fee: 0.0001, Latency: 1500 * time.Millisecond, Outcome: OutcomeOK})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var s Span
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s != tr.Spans()[0] {
		t.Errorf("round trip changed span:\n got %+v\nwant %+v", s, tr.Spans()[0])
	}
}

// TestReplayNormalize pins the §11 normalization rules: persist_hit spans
// become ok-attempts, cache_hit/cache_wait/memo_mismatch spans vanish, and
// per-key sequence numbers are renumbered over what remains so a warm trace
// lines up span for span with its cold counterpart.
func TestReplayNormalize(t *testing.T) {
	k := Key{Doc: "d", Claim: 1, Method: "oneshot", Try: 1}
	other := Key{Doc: "d", Claim: 2, Method: "oneshot", Try: 1}
	cold := []Span{
		{Key: k, Seq: 0, Kind: KindAttempt, Model: "m", Fee: 0.5, Outcome: OutcomeOK},
		{Key: k, Seq: 1, Kind: KindOutcome, Outcome: OutcomeVerified},
		{Key: other, Seq: 0, Kind: KindCacheHit, Model: "m"},
		{Key: other, Seq: 1, Kind: KindAttempt, Model: "m", Fee: 0.5, Outcome: OutcomeOK},
		{Key: other, Seq: 2, Kind: KindOutcome, Outcome: OutcomeVerified},
	}
	warm := []Span{
		{Key: k, Seq: 0, Kind: KindPersistHit, Model: "m", Fee: 0.5, Outcome: OutcomeOK},
		{Key: k, Seq: 1, Kind: KindOutcome, Outcome: OutcomeVerified},
		{Key: other, Seq: 0, Kind: KindCacheWait, Model: "m", Outcome: OutcomeOK},
		{Key: other, Seq: 1, Kind: KindMemoMismatch, Outcome: OutcomeError},
		{Key: other, Seq: 2, Kind: KindPersistHit, Model: "m", Fee: 0.5, Outcome: OutcomeOK},
		{Key: other, Seq: 3, Kind: KindOutcome, Outcome: OutcomeVerified},
		// Arrival-order noise from a streamed run: dropped like routing spans.
		{Key: Key{Doc: "d", Method: "stream"}, Seq: 0, Kind: KindStreamAdmit, Detail: "arrival=3"},
		{Key: Key{Doc: "d", Method: "stream"}, Seq: 1, Kind: KindStreamResult},
	}
	nc, nw := ReplayNormalize(cold), ReplayNormalize(warm)
	if len(nc) != 4 || len(nw) != 4 {
		t.Fatalf("normalized lengths = %d/%d, want 4/4", len(nc), len(nw))
	}
	for i := range nc {
		if nc[i] != nw[i] {
			t.Errorf("span %d diverged after normalization:\n cold %+v\n warm %+v", i, nc[i], nw[i])
		}
	}
	if nc[0].Kind != KindAttempt || nc[0].Outcome != OutcomeOK {
		t.Errorf("persist_hit not rewritten to ok-attempt: %+v", nw[0])
	}
	// Renumbering: the surviving spans of `other` must be seq 0, 1.
	if nw[2].Seq != 0 || nw[3].Seq != 1 {
		t.Errorf("per-key seq not renumbered: %d, %d", nw[2].Seq, nw[3].Seq)
	}
	// Input order and content untouched (normalization copies).
	if warm[0].Kind != KindPersistHit || warm[2].Seq != 0 {
		t.Error("ReplayNormalize mutated its input")
	}
}
