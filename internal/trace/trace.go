// Package trace is CEDAR's attempt-level observability layer: a structured
// event stream recording where every token, dollar, and (simulated)
// millisecond of a verification run went. The paper's demo centers on
// inspectable verification — Figure 4 shows per-claim method traces and
// Section 7 reports cost/quality/throughput — and after claim-level
// parallelism (DESIGN.md §8) and resilient middleware (§9) the aggregate
// counters alone no longer explain a run. The trace does.
//
// The design follows the same identity discipline as the splittable seeding
// and the deterministic fault injector: every span is keyed by the attempt
// identity (document, claim index, method, try) it belongs to, and ordered
// within that identity by a per-key sequence number. Because one logical
// attempt executes on a single goroutine — retries, hedges, cache waits and
// all — the per-key order is a pure function of the attempt, never of how
// concurrent attempts interleave. Sorting the stream by (key, seq) therefore
// yields a byte-identical trace at any worker count, which makes the trace a
// correctness oracle for the determinism contract, not just a debugging aid.
// The two documented exceptions are the circuit breaker (shared state, §9)
// and per-attempt cache-hit attribution under single-flight (which attempt
// leads a concurrent miss is scheduling-dependent); both are off in the
// golden-trace gate.
//
// Tracing is zero-cost when disabled: a nil *Tracer is a valid no-op
// recorder, every producer guards with Enabled() before building a span, and
// Record on nil returns immediately without allocating.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Key identifies one pipeline attempt: which document, which claim (by its
// stable position in the document), which verification method, and which try
// of the schedule step. It is the same identity the pipeline feeds to
// llm.SplitSeed, so spans line up one-to-one with seeded model invocations.
// The zero Key labels anonymous traffic (e.g. profiling runs).
type Key struct {
	Doc    string `json:"doc"`
	Claim  int    `json:"claim"`
	Method string `json:"method"`
	Try    int    `json:"try"`
}

// Span kinds. KindAttempt is the canonical per-model-attempt record (one per
// completion reaching the metering layer); the remaining kinds annotate the
// attempt with middleware events.
const (
	// KindAttempt is one model completion: tokens, fee, simulated latency,
	// and an ok/error outcome. Recorded by llm.Metered.
	KindAttempt = "attempt"
	// KindCacheHit is a temperature-0 completion answered from cache without
	// invoking the model. Recorded by llm.Cached.
	KindCacheHit = "cache_hit"
	// KindCacheWait is a single-flight wait on a concurrent leader's model
	// call; counted as a hit (the model was not re-invoked). Recorded by
	// llm.Cached; Outcome reports whether the awaited leader succeeded.
	KindCacheWait = "cache_wait"
	// KindFault is an injected transport failure; Outcome carries the error
	// class. Recorded by resilience.Faulty.
	KindFault = "fault"
	// KindRetry is a backoff-then-retry decision; Latency carries the
	// deterministic jittered wait. Recorded by resilience.Retrier.
	KindRetry = "retry"
	// KindHedge is a backup completion fired against a slow primary;
	// KindHedgeWin marks the subset where the backup won the simulated race.
	// Recorded by resilience.Hedged.
	KindHedge    = "hedge"
	KindHedgeWin = "hedge_win"
	// Breaker events: a call shed by an open circuit, a trip into the open
	// state, and a half-open probe admission. Recorded by resilience.Breaker.
	// Breaker spans are order-dependent (DESIGN.md §9) and excluded from the
	// golden-trace determinism gate.
	KindBreakerShed  = "breaker_shed"
	KindBreakerTrip  = "breaker_trip"
	KindBreakerProbe = "breaker_probe"
	// KindThrottle is a real wall-clock sleep imposed by llm.Throttled;
	// Latency carries the scaled sleep. Recorded by llm.Throttled.
	KindThrottle = "throttle"
	// KindPersistHit is a temperature-0 completion answered from the
	// persistent result store (DESIGN.md §11) without invoking the model. The
	// span carries a full replica of the attempt it replays — tokens, the fee
	// the original attempt was billed, simulated latency — so a warm trace
	// normalized by ReplayNormalize is byte-identical to its cold
	// counterpart. The ledger books nothing for these. Recorded by
	// llm.Cached.
	KindPersistHit = "persist_hit"
	// KindMemoMismatch marks a verdict memo in the persistent store that
	// disagreed with the freshly computed verdict — the memo layer is a
	// validating oracle, not a bypass, so a mismatch is surfaced and the memo
	// overwritten rather than trusted. Recorded by cedar.System.
	KindMemoMismatch = "memo_mismatch"
	// KindOutcome is the terminal verdict of one verification attempt:
	// "verified", "implausible", or a transport-error class. Recorded by
	// verify.AttemptWith.
	KindOutcome = "outcome"
	// Shard-routing events recorded by the serve coordinator (DESIGN.md §13):
	// KindShardRoute says which replica answered a routed request (Detail
	// carries the replica, Outcome ok/error mirrors the relay), KindShardFailover
	// marks one hop off a dead or draining replica (Detail carries the replica
	// that was skipped). Both depend on topology and replica health — the same
	// workload routed over a different shard count produces different spans —
	// so ReplayNormalize drops them: verification spans, not routing spans,
	// are the cross-topology identity surface.
	KindShardRoute    = "shard_route"
	KindShardFailover = "shard_failover"
	// Streaming events recorded by the incremental pipeline (DESIGN.md §14):
	// KindStreamAdmit marks one document's admission into the bounded
	// in-flight window (Detail carries the arrival ordinal), KindStreamResult
	// marks its verdicts being emitted. Both depend on arrival order — the
	// same corpus streamed in a different order produces different stream
	// spans — so ReplayNormalize drops them: verification spans, not arrival
	// spans, are the stream-vs-batch identity surface.
	KindStreamAdmit  = "stream_admit"
	KindStreamResult = "stream_result"
	// KindIngestSample records a dataset-ingestion sampling decision (DESIGN.md
	// §15): Detail carries the dataset name, rows seen vs kept, the byte
	// budget outcome, and the reservoir seed. It describes how a catalog was
	// built, not how claims were verified — the same claims verify identically
	// against the sampled catalog regardless of where it was ingested — so
	// ReplayNormalize drops it from the cross-topology identity surface.
	KindIngestSample = "ingest_sample"
	// KindRouteScore and KindRoutePick record the cross-database routing of
	// one compound-claim sub-claim (DESIGN.md §16): the catalog's top
	// candidate scores, then the binding the seeded routing stage picked
	// (Outcome "picked" or "tie-break"). Both live under the parent claim's
	// identity with Method "route" and Try = sub-claim ordinal. They describe
	// how the claim was planned, not how its sub-claims were verified — a
	// coordinator plans routing once while its replicas never see the
	// compound claim — so ReplayNormalize drops them from the cross-topology
	// identity surface.
	KindRouteScore = "route_score"
	KindRoutePick  = "route_pick"
)

// Outcome values for KindAttempt and KindOutcome spans. Transport-error
// classes ("rate_limited", "timeout", ...) appear verbatim as outcomes of
// failed verification attempts.
const (
	OutcomeOK          = "ok"
	OutcomeError       = "error"
	OutcomeVerified    = "verified"
	OutcomeImplausible = "implausible"
)

// Span is one structured trace event. Fields irrelevant to a kind are left
// zero and omitted from the JSON encoding.
type Span struct {
	Key
	// Seq orders spans within one attempt identity; assigned by the Tracer.
	Seq int `json:"seq"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Model is the model name the event concerns.
	Model string `json:"model,omitempty"`
	// Temperature and Seed echo the request's sampling parameters; the seed
	// distinguishes a hedged backup (split seed) from its primary.
	Temperature float64 `json:"temp,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	// Token and fee accounting of one completion (KindAttempt only).
	PromptTokens     int     `json:"ptok,omitempty"`
	CompletionTokens int     `json:"ctok,omitempty"`
	Fee              float64 `json:"fee,omitempty"`
	// Latency is simulated wall time: the completion's latency for attempts,
	// the backoff wait for retries, the scaled sleep for throttle events.
	Latency time.Duration `json:"lat_ns,omitempty"`
	// Outcome is "ok"/"error" for attempts; "verified"/"implausible"/a
	// transport class for outcome spans; the fault class for fault spans.
	Outcome string `json:"outcome,omitempty"`
	// Detail carries kind-specific context (e.g. the retry ordinal).
	Detail string `json:"detail,omitempty"`
}

// Less orders spans by attempt identity, then per-key sequence — the
// canonical deterministic trace order. Exported so consumers of parsed JSONL
// streams can restore the order after filtering or merging.
func (s Span) Less(o Span) bool {
	if s.Doc != o.Doc {
		return s.Doc < o.Doc
	}
	if s.Claim != o.Claim {
		return s.Claim < o.Claim
	}
	if s.Method != o.Method {
		return s.Method < o.Method
	}
	if s.Try != o.Try {
		return s.Try < o.Try
	}
	return s.Seq < o.Seq
}

// Tracer collects spans from the middleware stack and the verification
// pipeline. It is safe for concurrent use, and a nil *Tracer is a valid
// disabled recorder: Enabled reports false and Record is a no-op, so the
// attempt hot path pays a single pointer comparison when tracing is off.
type Tracer struct {
	mu    sync.Mutex
	spans []Span
	seq   map[Key]int
}

// New constructs an enabled Tracer.
func New() *Tracer {
	return &Tracer{seq: make(map[Key]int)}
}

// Enabled reports whether spans are being recorded. Producers must guard
// span construction with it so disabled tracing allocates nothing.
func (t *Tracer) Enabled() bool { return t != nil }

// Record appends a span, assigning its per-key sequence number. Safe on a
// nil receiver (no-op).
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.seq == nil {
		t.seq = make(map[Key]int)
	}
	s.Seq = t.seq[s.Key]
	t.seq[s.Key] = s.Seq + 1
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Reset discards all recorded spans and sequence state.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.seq = make(map[Key]int)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in canonical order: sorted by
// attempt identity (doc, claim, method, try), then per-key sequence. For a
// deterministic workload this order — and therefore the serialized trace —
// is identical at any worker count.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// SortSpans restores canonical order — attempt identity, then per-key
// sequence — over a span slice, e.g. after merging per-run or per-replica
// streams.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Less(spans[j]) })
}

// WriteJSONL serializes the canonical sorted span stream, one JSON object
// per line — the -trace export format.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("trace: encoding span: %w", err)
		}
	}
	return bw.Flush()
}

// Summary aggregates the recorded spans (see Aggregate).
func (t *Tracer) Summary() Summary {
	return Aggregate(t.Spans())
}

// ReplayNormalize rewrites a canonical span stream into the form the
// cross-process determinism contract compares (DESIGN.md §11). A warm run
// answers persisted work with persist_hit spans instead of attempt spans, and
// cache_hit/cache_wait attribution is scheduling-dependent in both runs, so
// raw cold and warm traces differ even when the verification work is
// identical. Normalization removes exactly that replay noise:
//
//   - persist_hit spans become attempt spans with outcome "ok" (they carry a
//     full replica of the attempt they replay);
//   - cache_hit, cache_wait, and memo_mismatch spans are dropped;
//   - shard_route and shard_failover spans are dropped — routing is a
//     property of the serving topology, not of the verification work, and the
//     sharded-identity harness compares traces across shard counts;
//   - stream_admit and stream_result spans are dropped — arrival order is a
//     property of how documents were submitted, not of the verification work,
//     and the stream-determinism gate compares streamed traces against batch
//     runs;
//   - route_score and route_pick spans are dropped — compound-claim routing
//     is planned wherever the compound claim arrived (library, replica, or
//     coordinator), while the routed sub-claims verify elsewhere, and the
//     route gate compares traces across those topologies;
//   - per-key Seq is renumbered over what remains, since dropped and
//     rewritten spans consumed sequence slots.
//
// The input must be in canonical order (as returned by Tracer.Spans); the
// output is too. For a deterministic workload, ReplayNormalize(cold) and
// ReplayNormalize(warm) are equal span for span — byte-identical once
// serialized — which is the trace half of the cross-process contract.
func ReplayNormalize(spans []Span) []Span {
	out := make([]Span, 0, len(spans))
	seq := make(map[Key]int, 64)
	for _, s := range spans {
		switch s.Kind {
		case KindCacheHit, KindCacheWait, KindMemoMismatch, KindShardRoute, KindShardFailover,
			KindStreamAdmit, KindStreamResult, KindIngestSample,
			KindRouteScore, KindRoutePick:
			continue
		case KindPersistHit:
			s.Kind = KindAttempt
			s.Outcome = OutcomeOK
		}
		s.Seq = seq[s.Key]
		seq[s.Key] = s.Seq + 1
		out = append(out, s)
	}
	return out
}
