package exp

import (
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestShardBenchJSONShape pins the JSON schema of BENCH_shard.json: one row
// type shared by aggregate, per-replica, and single-process servebench
// cells. Plot scripts and EXPERIMENTS.md read these names; changing them is
// an artifact-format break and must show up here.
func TestShardBenchJSONShape(t *testing.T) {
	res := &ShardBenchResult{
		Clients:       2,
		ThrottleScale: 0.5,
		Rows: []ServeBenchRow{
			{Shards: 2, Scope: "aggregate", Workers: 1, Requests: 2, Claims: 2,
				ReqPerSec: 4, E2E: serve.LatencyQuantiles{N: 2, P50: 1, P95: 2, P99: 2}, Dollars: 0.25},
			{Shards: 2, Scope: "replica-1", Workers: 1, Requests: 2, Claims: 2,
				ReqPerSec: 4, E2E: serve.LatencyQuantiles{N: 2, P50: 1, P95: 2, P99: 2}, Dollars: 0.25},
			// A single-process servebench cell rides the same schema with the
			// topology fields omitted.
			{Workers: 8, FaultRate: 0.2, Requests: 48, Claims: 96, ReqPerSec: 10},
		},
	}
	got, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "clients": 2,
  "throttle_scale": 0.5,
  "rows": [
    {
      "shards": 2,
      "scope": "aggregate",
      "workers": 1,
      "fault_rate": 0,
      "requests": 2,
      "claims": 2,
      "req_per_sec": 4,
      "e2e_ms": {
        "n": 2,
        "p50": 1,
        "p95": 2,
        "p99": 2
      },
      "sim_attempt_ms": {
        "n": 0,
        "p50": 0,
        "p95": 0,
        "p99": 0
      },
      "dollars": 0.25
    },
    {
      "shards": 2,
      "scope": "replica-1",
      "workers": 1,
      "fault_rate": 0,
      "requests": 2,
      "claims": 2,
      "req_per_sec": 4,
      "e2e_ms": {
        "n": 2,
        "p50": 1,
        "p95": 2,
        "p99": 2
      },
      "sim_attempt_ms": {
        "n": 0,
        "p50": 0,
        "p95": 0,
        "p99": 0
      },
      "dollars": 0.25
    },
    {
      "workers": 8,
      "fault_rate": 0.2,
      "requests": 48,
      "claims": 96,
      "req_per_sec": 10,
      "e2e_ms": {
        "n": 0,
        "p50": 0,
        "p95": 0,
        "p99": 0
      },
      "sim_attempt_ms": {
        "n": 0,
        "p50": 0,
        "p95": 0,
        "p99": 0
      },
      "dollars": 0
    }
  ]
}`
	if string(got) != want {
		t.Errorf("BENCH_shard.json shape changed:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestShardBenchSweepSmall runs a shrunken sweep end to end — real replicas,
// real coordinator, real HTTP load — and checks the accounting: every client
// request lands on exactly one replica, the aggregate row sums its replicas,
// and the fee totals are non-zero (replicas did real verification work).
func TestShardBenchSweepSmall(t *testing.T) {
	res, err := ShardBenchWith(17, ShardBenchConfig{
		Clients:       32,
		Shards:        []int{1, 2},
		ThrottleScale: 0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	// One aggregate row plus one row per replica, per topology.
	if len(res.Rows) != 2+3 {
		t.Fatalf("got %d rows, want 5:\n%s", len(res.Rows), res.Render())
	}
	for _, shards := range []int{1, 2} {
		agg := res.aggregate(shards)
		if agg == nil {
			t.Fatalf("no aggregate row for %d shards", shards)
		}
		if agg.Requests != 32 {
			t.Errorf("%d shards: aggregate requests = %d, want 32", shards, agg.Requests)
		}
		if agg.Dollars <= 0 {
			t.Errorf("%d shards: aggregate fee = %v, want > 0", shards, agg.Dollars)
		}
		sumReq, sumClaims, replicas := 0, 0, 0
		for _, row := range res.Rows {
			if row.Shards != shards || !strings.HasPrefix(row.Scope, "replica-") {
				continue
			}
			replicas++
			sumReq += row.Requests
			sumClaims += row.Claims
		}
		if replicas != shards {
			t.Errorf("%d shards: %d replica rows", shards, replicas)
		}
		// Zero lost, zero duplicated: replica-received requests sum exactly
		// to the client count (health probes hit /healthz, not /v1/verify).
		if sumReq != 32 {
			t.Errorf("%d shards: replicas received %d requests in total, want 32", shards, sumReq)
		}
		if sumClaims != agg.Claims {
			t.Errorf("%d shards: replica claims sum %d != aggregate %d", shards, sumClaims, agg.Claims)
		}
	}
}
