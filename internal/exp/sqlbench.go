package exp

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/sqldb"
)

// sqlbench.go measures what the vectorized columnar executor and the plan
// cache buy over the row-at-a-time oracle on JoinBench-shaped workloads:
// equi-join + aggregation, pushdown-eligible filtered aggregation, and
// outer-join anti-semi patterns, at several cardinalities. Every timed cell
// first cross-checks that both engines return bit-identical results — a
// benchmark over diverging engines would be meaningless.

// SQLBenchRow is one (cardinality, query) cell of the engine comparison.
type SQLBenchRow struct {
	Cardinality int    // rows in the fact table
	Query       string // workload label
	RowNS       int64  // row oracle, prepared statement, ns/exec
	VecColdNS   int64  // vectorized, plan compiled every exec (cold cache)
	VecWarmNS   int64  // vectorized through the plan cache, all hits
	SpeedupCold float64
	SpeedupWarm float64
	Match       bool
}

// SQLBatchRow is one cell of the batch-size sweep on the largest fact table.
type SQLBatchRow struct {
	Cardinality int
	Query       string
	Batch       int
	VecNS       int64
}

// SQLBenchResult backs EXPERIMENTS.md's vectorized-executor table and
// BENCH_sql.json (cedar-bench -sqlbench-json).
type SQLBenchResult struct {
	Rows    []SQLBenchRow
	Batches []SQLBatchRow
}

// sqlBenchDB builds a fact/dim pair shaped like JoinBench's normalized
// output: an n-row fact table with a skewed, partially NULL join key and a
// dimension table with n/8 unique keys.
func sqlBenchDB(seed int64, n int) *sqldb.Database {
	rng := rand.New(rand.NewSource(seed))
	db := sqldb.NewDatabase("sqlbench")
	dimN := n / 8
	if dimN < 4 {
		dimN = 4
	}
	dim := sqldb.NewTable("dim", "k", "name", "w")
	for i := 0; i < dimN; i++ {
		dim.MustAppendRow(sqldb.Int(int64(i)), sqldb.Text(fmt.Sprintf("d%03d", i%97)), sqldb.Float(rng.Float64()*100))
	}
	db.AddTable(dim)
	fact := sqldb.NewTable("fact", "id", "k", "v")
	for i := 0; i < n; i++ {
		k := sqldb.Value(sqldb.Int(int64(rng.Intn(dimN + dimN/4)))) // ~20% dangling keys
		if rng.Intn(50) == 0 {
			k = sqldb.Null()
		}
		fact.MustAppendRow(sqldb.Int(int64(i)), k, sqldb.Float(rng.Float64()*1000-200))
	}
	db.AddTable(fact)
	return db
}

// sqlBenchQueries are the timed workloads. join-agg is the acceptance
// workload: hash equi-join into grouped aggregation.
var sqlBenchQueries = []struct{ name, sql string }{
	{"join-agg", `SELECT d.name, COUNT(*), SUM(f.v) FROM fact f JOIN dim d ON f.k = d.k GROUP BY d.name ORDER BY 2 DESC, 1`},
	{"filter-agg", `SELECT COUNT(*), SUM(v), AVG(v) FROM fact WHERE k < 40 AND v > 0`},
	{"left-join", `SELECT COUNT(*) FROM fact f LEFT JOIN dim d ON f.k = d.k WHERE d.w IS NULL`},
}

// timeExec reports the mean ns/exec of f, calibrating repetitions so each
// cell runs long enough to be stable without dominating the experiment.
func timeExec(f func() error) (int64, error) {
	start := time.Now()
	if err := f(); err != nil {
		return 0, err
	}
	once := time.Since(start)
	reps := int(80 * time.Millisecond / (once + 1))
	if reps < 3 {
		reps = 3
	}
	if reps > 500 {
		reps = 500
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / int64(reps), nil
}

// SQLBench runs the engine comparison. workers is accepted for registry
// symmetry; the measurement is deliberately single-threaded (concurrent
// correctness is the test suite's job, not the benchmark's).
func SQLBench(seed int64, _ int) (*SQLBenchResult, error) {
	res := &SQLBenchResult{}
	cards := []int{1000, 4000, 16000}
	for _, n := range cards {
		db := sqlBenchDB(seed, n)
		for _, q := range sqlBenchQueries {
			stmt, err := sqldb.Parse(q.sql)
			if err != nil {
				return nil, fmt.Errorf("sqlbench %s: %w", q.name, err)
			}
			rowRes, err := sqldb.Exec(db, stmt)
			if err != nil {
				return nil, fmt.Errorf("sqlbench %s (row): %w", q.name, err)
			}
			vecRes, err := sqldb.ExecVec(db, stmt)
			if err != nil {
				return nil, fmt.Errorf("sqlbench %s (vec): %w", q.name, err)
			}
			qRes, err := sqldb.Query(db, q.sql) // also warms the plan cache
			if err != nil {
				return nil, fmt.Errorf("sqlbench %s (query): %w", q.name, err)
			}
			match := rowRes.String() == vecRes.String() && rowRes.String() == qRes.String()

			rowNS, err := timeExec(func() error { _, err := sqldb.Exec(db, stmt); return err })
			if err != nil {
				return nil, err
			}
			coldNS, err := timeExec(func() error { _, err := sqldb.ExecVec(db, stmt); return err })
			if err != nil {
				return nil, err
			}
			warmNS, err := timeExec(func() error { _, err := sqldb.Query(db, q.sql); return err })
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, SQLBenchRow{
				Cardinality: n, Query: q.name,
				RowNS: rowNS, VecColdNS: coldNS, VecWarmNS: warmNS,
				SpeedupCold: float64(rowNS) / float64(coldNS),
				SpeedupWarm: float64(rowNS) / float64(warmNS),
				Match:       match,
			})
		}
	}

	// Batch-size sweep on the largest table's acceptance workload.
	db := sqlBenchDB(seed, cards[len(cards)-1])
	stmt, err := sqldb.Parse(sqlBenchQueries[0].sql)
	if err != nil {
		return nil, err
	}
	for _, batch := range []int{64, 256, 1024, 4096} {
		batch := batch
		ns, err := timeExec(func() error { _, err := sqldb.ExecVecBatch(db, stmt, batch); return err })
		if err != nil {
			return nil, err
		}
		res.Batches = append(res.Batches, SQLBatchRow{
			Cardinality: cards[len(cards)-1], Query: sqlBenchQueries[0].name, Batch: batch, VecNS: ns,
		})
	}
	return res, nil
}

// Render prints the engine comparison and the batch sweep.
func (r *SQLBenchResult) Render() string {
	var b strings.Builder
	b.WriteString("Vectorized executor vs row oracle on JoinBench-shaped tables (DESIGN.md §12).\n")
	fmt.Fprintf(&b, "%-7s %-11s %12s %12s %12s %8s %8s %6s\n",
		"Rows", "Query", "Row ns", "VecCold ns", "VecWarm ns", "xCold", "xWarm", "Match")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7d %-11s %12d %12d %12d %7.1fx %7.1fx %6v\n",
			row.Cardinality, row.Query, row.RowNS, row.VecColdNS, row.VecWarmNS,
			row.SpeedupCold, row.SpeedupWarm, row.Match)
	}
	b.WriteString("\nBatch-size sweep (cold plans):\n")
	fmt.Fprintf(&b, "%-7s %-11s %6s %12s\n", "Rows", "Query", "Batch", "Vec ns")
	for _, row := range r.Batches {
		fmt.Fprintf(&b, "%-7d %-11s %6d %12d\n", row.Cardinality, row.Query, row.Batch, row.VecNS)
	}
	return b.String()
}

// CSV renders one series per comparison row; the batch sweep follows with a
// distinct series label.
func (r *SQLBenchResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows)+len(r.Batches))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			"engines", fmt.Sprintf("%d", row.Cardinality), row.Query, "",
			fmt.Sprintf("%d", row.RowNS), fmt.Sprintf("%d", row.VecColdNS), fmt.Sprintf("%d", row.VecWarmNS),
			f(row.SpeedupCold), f(row.SpeedupWarm), fmt.Sprintf("%v", row.Match),
		})
	}
	for _, row := range r.Batches {
		rows = append(rows, []string{
			"batches", fmt.Sprintf("%d", row.Cardinality), row.Query, fmt.Sprintf("%d", row.Batch),
			"", fmt.Sprintf("%d", row.VecNS), "", "", "", "",
		})
	}
	return csvString([]string{"series", "cardinality", "query", "batch",
		"row_ns", "vec_cold_ns", "vec_warm_ns", "speedup_cold", "speedup_warm", "match"}, rows)
}

// JSON renders the result for BENCH_sql.json (cedar-bench -sqlbench-json).
func (r *SQLBenchResult) JSON() ([]byte, error) {
	type row struct {
		Cardinality int     `json:"cardinality"`
		Query       string  `json:"query"`
		RowNS       int64   `json:"row_ns"`
		VecColdNS   int64   `json:"vec_cold_ns"`
		VecWarmNS   int64   `json:"vec_warm_ns"`
		SpeedupCold float64 `json:"speedup_cold"`
		SpeedupWarm float64 `json:"speedup_warm"`
		Match       bool    `json:"match"`
	}
	type batchRow struct {
		Cardinality int    `json:"cardinality"`
		Query       string `json:"query"`
		Batch       int    `json:"batch"`
		VecNS       int64  `json:"vec_ns"`
	}
	out := struct {
		Experiment string     `json:"experiment"`
		Rows       []row      `json:"rows"`
		Batches    []batchRow `json:"batches"`
	}{Experiment: "sqlbench"}
	for _, rw := range r.Rows {
		out.Rows = append(out.Rows, row{
			Cardinality: rw.Cardinality, Query: rw.Query,
			RowNS: rw.RowNS, VecColdNS: rw.VecColdNS, VecWarmNS: rw.VecWarmNS,
			SpeedupCold: rw.SpeedupCold, SpeedupWarm: rw.SpeedupWarm, Match: rw.Match,
		})
	}
	for _, rw := range r.Batches {
		out.Batches = append(out.Batches, batchRow{
			Cardinality: rw.Cardinality, Query: rw.Query, Batch: rw.Batch, VecNS: rw.VecNS,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
