package exp

import (
	"fmt"
	"strings"

	"repro/internal/claim"
	"repro/internal/core"
)

// Fig5Point is one point of Figure 5's cost-quality and throughput-quality
// trade-off plots.
type Fig5Point struct {
	// Label names the configuration: "cedar@0.90" or a single-stage
	// method name.
	Label string
	// MultiStage distinguishes CEDAR's threshold sweep from the
	// single-stage baselines.
	MultiStage bool
	// Threshold is the accuracy target (multi-stage points only).
	Threshold float64
	// PlannedCost is the scheduler's modeled expected cost per claim
	// (multi-stage points only); monotone in the threshold by
	// construction, unlike realized dollars which carry sampling noise.
	PlannedCost float64
	F1          float64
	Dollars     float64
	// ThroughputPerHour is verified claims per simulated hour.
	ThroughputPerHour float64
}

// Fig5Result reproduces Figure 5 on the AggChecker corpus.
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5Thresholds is the accuracy-threshold sweep of the multi-stage curve.
var Fig5Thresholds = []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.99}

// Fig5 sweeps CEDAR's accuracy threshold and runs each verification method
// as a single-stage baseline (two tries, matching the retry budget the
// scheduler typically assigns).
func Fig5(seed int64, workers int) (*Fig5Result, error) {
	evalDocs, err := claimSource(seed)
	if err != nil {
		return nil, err
	}
	profDocs, err := claimSource(profileSeed(seed))
	if err != nil {
		return nil, err
	}
	profDocs = profDocs[:8]

	stack, err := NewStack(seed)
	if err != nil {
		return nil, err
	}
	stack.Workers = workers
	stats, err := stack.Profile(profDocs)
	if err != nil {
		return nil, err
	}

	res := &Fig5Result{}
	for _, th := range Fig5Thresholds {
		docs := claim.CloneDocuments(evalDocs)
		q, rc, p, err := stack.RunCEDAR(stats, th, docs)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig5Point{
			Label:             fmt.Sprintf("cedar@%.2f", th),
			MultiStage:        true,
			Threshold:         th,
			PlannedCost:       p.Schedule().Cost,
			F1:                q.F1,
			Dollars:           rc.Dollars,
			ThroughputPerHour: rc.Throughput(),
		})
	}
	for _, m := range stack.Methods {
		docs := claim.CloneDocuments(evalDocs)
		q, rc, err := stack.RunSchedule(core.SingleStageSchedule(m.Name(), 2), docs)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig5Point{
			Label:             m.Name(),
			F1:                q.F1,
			Dollars:           rc.Dollars,
			ThroughputPerHour: rc.Throughput(),
		})
	}
	return res, nil
}

func claimSource(seed int64) ([]*claim.Document, error) {
	docs, err := aggCheckerGen(seed)
	if err != nil {
		return nil, err
	}
	return docs, nil
}

// aggCheckerGen is indirected for tests that shrink the corpus.
var aggCheckerGen = standardDatasets()[0].gen

// Point returns the named point, or nil.
func (r *Fig5Result) Point(label string) *Fig5Point {
	for i := range r.Points {
		if r.Points[i].Label == label {
			return &r.Points[i]
		}
	}
	return nil
}

// Render prints both trade-off series.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: cost-quality and throughput-quality trade-offs on AggChecker.\n")
	fmt.Fprintf(&b, "%-16s %10s %12s %16s\n", "Configuration", "F1", "Cost ($)", "Claims/hour")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-16s %10s %12.4f %16.1f\n", p.Label, pct(p.F1), p.Dollars, p.ThroughputPerHour)
	}
	return b.String()
}
