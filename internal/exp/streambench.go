package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/claim"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/serve"
)

// Streambench defaults. The stack is throttled exactly like shardbench —
// every model attempt sleeps a fraction of its simulated latency — so
// verification takes real wall time and the thing streaming is supposed to
// buy, early verdicts, is measurable rather than noise.
const (
	streamBenchDocs     = 24
	streamBenchThrottle = 0.003
)

// StreamBenchConfig tunes the comparison; zero values take the defaults.
// Tests shrink Docs to keep the suite fast.
type StreamBenchConfig struct {
	Docs          int
	ThrottleScale float64
}

// StreamBenchRow is one delivery mode's measurement over the same corpus.
type StreamBenchRow struct {
	// Mode is "batch" (one POST /v1/verify/batch, verdicts arrive with the
	// final response) or "stream" (POST /v1/verify/stream, verdicts arrive
	// per document as micro-batches land).
	Mode   string `json:"mode"`
	Docs   int    `json:"docs"`
	Claims int    `json:"claims"`
	// TTFVMS is time-to-first-verdict: how long the caller waited before
	// the first claim verdict was readable. For batch mode that is the
	// whole response; for stream mode, the first NDJSON verdict line.
	TTFVMS float64 `json:"ttfv_ms"`
	// WallMS is end-to-end wall time until the last verdict (and summary)
	// arrived.
	WallMS float64 `json:"wall_ms"`
	// ClaimsPerSec is sustained verified-claim throughput over WallMS.
	ClaimsPerSec float64 `json:"claims_per_sec"`
	Dollars      float64 `json:"dollars"`
}

// StreamBenchResult compares streamed against batched delivery of the same
// corpus on the same server. Its JSON rendering is the BENCH_stream.json
// artifact (cedar-bench -stream-json). Verdicts are bit-identical across the
// two modes — the `make stream` gate proves that — so the rows differ only
// in delivery shape: streaming should cut time-to-first-verdict by roughly
// the document count while sustaining comparable claims/sec.
type StreamBenchResult struct {
	ThrottleScale float64          `json:"throttle_scale"`
	Rows          []StreamBenchRow `json:"rows"`
}

// StreamBench runs the default comparison. The workers flag is ignored: the
// server verifies with one worker on purpose (like a shardbench replica), so
// wall time is dominated by awaiting throttled model calls — the regime
// where delivery order is visible.
func StreamBench(seed int64, workers int) (*StreamBenchResult, error) {
	_ = workers
	return StreamBenchWith(seed, StreamBenchConfig{})
}

// StreamBenchWith runs the comparison with explicit knobs.
func StreamBenchWith(seed int64, cfg StreamBenchConfig) (*StreamBenchResult, error) {
	if cfg.Docs == 0 {
		cfg.Docs = streamBenchDocs
	}
	if cfg.ThrottleScale == 0 {
		cfg.ThrottleScale = streamBenchThrottle
	}
	res := &StreamBenchResult{ThrottleScale: cfg.ThrottleScale}
	// Each mode gets a fresh server so cross-mode state (metrics, review
	// queue) cannot bleed; determinism makes the verdicts identical anyway.
	for _, mode := range []string{"batch", "stream"} {
		row, err := streamBenchCell(seed, cfg, mode)
		if err != nil {
			return nil, fmt.Errorf("streambench %s: %w", mode, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// streamBenchCell boots one throttled single-worker server, delivers the
// corpus in the given mode, and measures time-to-first-verdict and wall time
// from the caller's side of the socket.
func streamBenchCell(seed int64, cfg StreamBenchConfig, mode string) (*StreamBenchRow, error) {
	stack, err := NewStackResilient(seed, ResilienceOptions{ThrottleScale: cfg.ThrottleScale})
	if err != nil {
		return nil, err
	}
	stack.Workers = 1
	profDocs, err := data.AggChecker(profileSeed(seed))
	if err != nil {
		return nil, err
	}
	stats, err := stack.Profile(profDocs[:6])
	if err != nil {
		return nil, err
	}
	pipe, err := core.New(core.Config{
		Methods:        stack.Methods,
		Stats:          stats,
		AccuracyTarget: 0.99,
		Seed:           seed,
		Workers:        1,
	})
	if err != nil {
		return nil, err
	}
	docs, err := data.AggChecker(seed)
	if err != nil {
		return nil, err
	}
	source := docs[0]

	var dollars float64
	backend := serve.BackendFunc(func(batch []*claim.Document) (serve.RunStats, error) {
		stack.Ledger.Reset()
		pipe.VerifyDocumentsParallel(batch, 1)
		st := serve.RunStats{
			Claims:  claim.TotalClaims(batch),
			Dollars: stack.Ledger.TotalDollars(),
			Calls:   stack.Ledger.TotalCalls(),
		}
		dollars += st.Dollars
		return st, nil
	})
	srv, err := serve.New(serve.Config{
		Backend:        backend,
		DB:             source.Data,
		DocID:          source.ID,
		BatchWait:      -1,
		QueueDepth:     2 * cfg.Docs,
		RequestTimeout: 10 * time.Minute,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}()

	inputs, totalClaims, err := streamBenchInputs(source, cfg.Docs)
	if err != nil {
		return nil, err
	}
	var ttfv, wall time.Duration
	switch mode {
	case "batch":
		ttfv, wall, err = streamBenchBatch(ts.URL, inputs, totalClaims)
	case "stream":
		ttfv, wall, err = streamBenchStream(ts.URL, inputs, totalClaims)
	default:
		err = fmt.Errorf("unknown mode %q", mode)
	}
	if err != nil {
		return nil, err
	}
	return &StreamBenchRow{
		Mode:         mode,
		Docs:         len(inputs),
		Claims:       totalClaims,
		TTFVMS:       float64(ttfv) / float64(time.Millisecond),
		WallMS:       float64(wall) / float64(time.Millisecond),
		ClaimsPerSec: float64(totalClaims) / wall.Seconds(),
		Dollars:      dollars,
	}, nil
}

// streamBenchInputs renders the corpus: n documents, each the source
// document's first claim under a distinct doc_id — the same one-dataset,
// many-readers workload shardbench routes.
func streamBenchInputs(source *claim.Document, n int) ([]serve.DocumentInput, int, error) {
	if len(source.Claims) == 0 {
		return nil, 0, fmt.Errorf("source document %s has no claims", source.ID)
	}
	c := source.Claims[0]
	inputs := make([]serve.DocumentInput, 0, n)
	for i := 0; i < n; i++ {
		inputs = append(inputs, serve.DocumentInput{
			DocID: fmt.Sprintf("reader-%d", i),
			Claims: []serve.ClaimInput{{
				ID:       c.ID,
				Sentence: c.Sentence,
				Value:    c.Value,
				Context:  c.Context,
			}},
		})
	}
	return inputs, n * 1, nil
}

// streamBenchBatch delivers the corpus as one POST /v1/verify/batch. The
// first verdict is readable only when the whole response is: TTFV ≈ wall.
func streamBenchBatch(baseURL string, inputs []serve.DocumentInput, wantClaims int) (ttfv, wall time.Duration, err error) {
	body, err := json.Marshal(serve.BatchRequest{Documents: inputs})
	if err != nil {
		return 0, 0, err
	}
	started := time.Now()
	resp, err := http.Post(baseURL+"/v1/verify/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("batch status %d", resp.StatusCode)
	}
	var out serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0, err
	}
	wall = time.Since(started)
	got := 0
	for _, d := range out.Documents {
		got += len(d.Claims)
	}
	if got != wantClaims {
		return 0, 0, fmt.Errorf("batch answered %d claims, want %d", got, wantClaims)
	}
	return wall, wall, nil
}

// streamBenchStream delivers the same corpus as POST /v1/verify/stream and
// clocks the first verdict line as it is read off the socket.
func streamBenchStream(baseURL string, inputs []serve.DocumentInput, wantClaims int) (ttfv, wall time.Duration, err error) {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, in := range inputs {
		if err := enc.Encode(in); err != nil {
			return 0, 0, err
		}
	}
	started := time.Now()
	resp, err := http.Post(baseURL+"/v1/verify/stream", "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("stream status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	verdicts := 0
	for {
		var ev serve.StreamEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return 0, 0, err
		}
		switch ev.Event {
		case "verdict":
			if verdicts == 0 {
				ttfv = time.Since(started)
			}
			verdicts++
		case "error":
			return 0, 0, fmt.Errorf("stream error event: %+v", ev.Error)
		}
	}
	wall = time.Since(started)
	if verdicts != wantClaims {
		return 0, 0, fmt.Errorf("stream answered %d verdicts, want %d", verdicts, wantClaims)
	}
	return ttfv, wall, nil
}

// JSON renders the BENCH_stream.json artifact.
func (r *StreamBenchResult) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// row returns the named mode's row, if present.
func (r *StreamBenchResult) row(mode string) *StreamBenchRow {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render prints the comparison with the stream's time-to-first-verdict
// speedup over batch delivery.
func (r *StreamBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "throttle scale %g\n", r.ThrottleScale)
	fmt.Fprintf(&b, "%-7s %6s %7s %12s %12s %12s %10s\n",
		"mode", "docs", "claims", "ttfv", "wall", "claims/s", "fee($)")
	batch := r.row("batch")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7s %6d %7d %10.1fms %10.1fms %12.1f %10.4f\n",
			row.Mode, row.Docs, row.Claims, row.TTFVMS, row.WallMS, row.ClaimsPerSec, row.Dollars)
	}
	if st := r.row("stream"); st != nil && batch != nil && st.TTFVMS > 0 {
		fmt.Fprintf(&b, "first verdict %.1fx sooner streamed than batched\n", batch.TTFVMS/st.TTFVMS)
	}
	return b.String()
}

// CSV renders one row per delivery mode.
func (r *StreamBenchResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Mode, fmt.Sprintf("%d", row.Docs), fmt.Sprintf("%d", row.Claims),
			f(row.TTFVMS), f(row.WallMS), f(row.ClaimsPerSec), f(row.Dollars),
		})
	}
	return csvString([]string{"mode", "docs", "claims", "ttfv_ms", "wall_ms",
		"claims_per_sec", "dollars"}, rows)
}
