package exp

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/sqldb"
)

// IngestBenchRow reports one (format, row budget) ingestion configuration
// over the synthetic sales corpus.
type IngestBenchRow struct {
	Format    string
	Budget    int // row budget (0 = ingest defaults, no sampling at this size)
	RowsTotal int
	RowsKept  int
	Bytes     int64
	Sampled   bool
	Wall      time.Duration
	// RowsPerSec is scanned input rows per real second of ingestion.
	RowsPerSec float64
	// Claims counts the auto-generated surface claims.
	Claims int
	// Stable reports that re-ingesting the identical input reproduced the
	// identical catalog fingerprint (the determinism contract sampling
	// depends on).
	Stable bool
}

// IngestVerifyRow reports the end-to-end half of the benchmark: CEDAR
// verifying the generated surface of an ingested (and sampled) dataset,
// with half the claims deliberately falsified.
type IngestVerifyRow struct {
	Claims    int
	Falsified int
	Quality   metrics.Quality
	Cost      metrics.RunCost
}

// IngestBenchResult reproduces the onboarding table of EXPERIMENTS.md.
type IngestBenchResult struct {
	Rows      int
	Configs   []IngestBenchRow
	Verify    IngestVerifyRow
	AllStable bool
}

// IngestBench measures dynamic dataset onboarding (docs/DATA.md): parse and
// type-inference throughput for CSV vs NDJSON at full size and under a
// reservoir row budget, fingerprint stability across re-ingestion, and the
// cost and quality of CEDAR verifying the auto-generated claim surface of
// the sampled dataset after half its claims are falsified.
func IngestBench(seed int64, workers int) (*IngestBenchResult, error) {
	return ingestBenchSized(seed, workers, 20000)
}

// ingestBenchSized is IngestBench at an explicit corpus size (tests shrink
// it).
func ingestBenchSized(seed int64, workers, rows int) (*IngestBenchResult, error) {
	csvBlob, ndjsonBlob := ingestBenchCorpus(seed, rows)
	res := &IngestBenchResult{Rows: rows, AllStable: true}

	type config struct {
		format string
		blob   string
		budget int
	}
	configs := []config{
		{"csv", csvBlob, 0},
		{"csv", csvBlob, rows / 10},
		{"ndjson", ndjsonBlob, 0},
		{"ndjson", ndjsonBlob, rows / 10},
	}
	var verifyDS *ingest.Dataset
	var verifyDB *sqldb.Database
	for _, c := range configs {
		opts := ingest.Options{Table: "sales", Format: c.format, SampleRows: c.budget, Seed: seed}
		start := time.Now()
		ir, err := ingest.Ingest(strings.NewReader(c.blob), opts)
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("ingestbench %s/%d: %w", c.format, c.budget, err)
		}
		again, err := ingest.Ingest(strings.NewReader(c.blob), opts)
		if err != nil {
			return nil, fmt.Errorf("ingestbench %s/%d re-ingest: %w", c.format, c.budget, err)
		}
		db := sqldb.NewDatabase("sales")
		ds, err := ingest.NewRegistry(db, nil, ingest.Options{}).Add(ir)
		if err != nil {
			return nil, fmt.Errorf("ingestbench %s/%d surface: %w", c.format, c.budget, err)
		}
		stable := ir.Fingerprint == again.Fingerprint
		if !stable {
			res.AllStable = false
		}
		rps := 0.0
		if wall > 0 {
			rps = float64(ir.RowsTotal) / wall.Seconds()
		}
		res.Configs = append(res.Configs, IngestBenchRow{
			Format: c.format, Budget: c.budget,
			RowsTotal: ir.RowsTotal, RowsKept: ir.RowsKept, Bytes: ir.BytesRead,
			Sampled: ir.Sampled, Wall: wall, RowsPerSec: rps,
			Claims: len(ds.Surface.Claims), Stable: stable,
		})
		// The sampled CSV configuration feeds the verification phase.
		if c.format == "csv" && c.budget > 0 {
			verifyDS, verifyDB = ds, db
		}
	}

	verify, err := ingestBenchVerify(seed, workers, verifyDB, verifyDS)
	if err != nil {
		return nil, err
	}
	res.Verify = *verify
	return res, nil
}

// ingestBenchVerify runs CEDAR over the generated surface with every second
// claim falsified, so the quality numbers exercise both verdict directions.
func ingestBenchVerify(seed int64, workers int, db *sqldb.Database, ds *ingest.Dataset) (*IngestVerifyRow, error) {
	doc := &claim.Document{ID: "ingestbench-sales", Domain: "ingest", Data: db}
	falsified := 0
	for i, sc := range ds.Surface.Claims {
		sentence, value := sc.Sentence, sc.Value
		correct := true
		if i%2 == 1 {
			wrong := value + "7" // still locatable, never equal to the gold value
			sentence = strings.Replace(sentence, value, wrong, 1)
			value = wrong
			correct = false
			falsified++
		}
		c, err := claim.New(sc.ID, sentence, value, sc.Context)
		if err != nil {
			return nil, fmt.Errorf("ingestbench claim %s: %w", sc.ID, err)
		}
		c.Gold = claim.Gold{Query: sc.Query, Correct: correct}
		doc.Claims = append(doc.Claims, c)
	}

	stack, err := NewStackResilient(seed, DefaultResilience)
	if err != nil {
		return nil, err
	}
	stack.Workers = workers
	profDocs, err := data.AggChecker(profileSeed(seed))
	if err != nil {
		return nil, err
	}
	if len(profDocs) > 8 {
		profDocs = profDocs[:8]
	}
	stats, err := stack.Profile(profDocs)
	if err != nil {
		return nil, err
	}
	q, rc, _, err := stack.RunCEDAR(stats, 0.99, []*claim.Document{doc})
	if err != nil {
		return nil, err
	}
	return &IngestVerifyRow{Claims: len(doc.Claims), Falsified: falsified, Quality: q, Cost: rc}, nil
}

// ingestBenchCorpus renders one deterministic synthetic sales table as CSV
// and NDJSON (same records, same order).
func ingestBenchCorpus(seed int64, rows int) (csvBlob, ndjsonBlob string) {
	rng := rand.New(rand.NewSource(seed ^ 0x1e9e57))
	regions := []string{"north", "south", "east", "west"}
	products := []string{"widget", "gadget", "sprocket", "gizmo", "doohickey"}
	var cb, nb strings.Builder
	cb.WriteString("region,product,units,revenue,discounted,day\n")
	for i := 0; i < rows; i++ {
		region := regions[rng.Intn(len(regions))]
		product := products[rng.Intn(len(products))]
		units := rng.Intn(500)
		revenue := float64(rng.Intn(1_000_000)) / 100
		discounted := rng.Intn(2) == 1
		day := fmt.Sprintf("2024-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))
		fmt.Fprintf(&cb, "%s,%s,%d,%.2f,%t,%s\n", region, product, units, revenue, discounted, day)
		fmt.Fprintf(&nb, `{"region":%q,"product":%q,"units":%d,"revenue":%.2f,"discounted":%t,"day":%q}`+"\n",
			region, product, units, revenue, discounted, day)
	}
	return cb.String(), nb.String()
}

// Render prints the onboarding table.
func (r *IngestBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dynamic dataset onboarding over a %d-row synthetic sales corpus (docs/DATA.md).\n", r.Rows)
	fmt.Fprintf(&b, "%-8s %8s %9s %8s %10s %8s %10s %7s %7s\n",
		"Format", "Budget", "Scanned", "Kept", "Bytes", "Sampled", "Rows/s", "Claims", "Stable")
	for _, row := range r.Configs {
		budget := "-"
		if row.Budget > 0 {
			budget = fmt.Sprintf("%d", row.Budget)
		}
		fmt.Fprintf(&b, "%-8s %8s %9d %8d %10d %8t %10.0f %7d %7t\n",
			row.Format, budget, row.RowsTotal, row.RowsKept, row.Bytes,
			row.Sampled, row.RowsPerSec, row.Claims, row.Stable)
	}
	v := r.Verify
	fmt.Fprintf(&b, "surface verification (sampled csv, %d claims, %d falsified): ", v.Claims, v.Falsified)
	fmt.Fprintf(&b, "P=%s R=%s F1=%s, cost $%.4f (%d calls)\n",
		pct(v.Quality.Precision), pct(v.Quality.Recall), pct(v.Quality.F1), v.Cost.Dollars, v.Cost.Calls)
	if r.AllStable {
		b.WriteString("fingerprints: every re-ingest reproduced its catalog bit for bit\n")
	} else {
		b.WriteString("fingerprints: RE-INGEST DIVERGED\n")
	}
	return b.String()
}

// CSV renders one row per configuration.
func (r *IngestBenchResult) CSV() string {
	rows := make([][]string, 0, len(r.Configs))
	for _, row := range r.Configs {
		rows = append(rows, []string{
			row.Format, fmt.Sprintf("%d", row.Budget), fmt.Sprintf("%d", row.RowsTotal),
			fmt.Sprintf("%d", row.RowsKept), fmt.Sprintf("%d", row.Bytes),
			fmt.Sprintf("%t", row.Sampled), f(row.RowsPerSec),
			fmt.Sprintf("%d", row.Claims), fmt.Sprintf("%t", row.Stable),
		})
	}
	return csvString([]string{"format", "budget", "rows_total", "rows_kept", "bytes",
		"sampled", "rows_per_sec", "claims", "stable"}, rows)
}

// JSON renders the result for BENCH_ingest.json (cedar-bench -ingest-json).
func (r *IngestBenchResult) JSON() ([]byte, error) {
	type row struct {
		Format     string  `json:"format"`
		Budget     int     `json:"budget"`
		RowsTotal  int     `json:"rows_total"`
		RowsKept   int     `json:"rows_kept"`
		Bytes      int64   `json:"bytes"`
		Sampled    bool    `json:"sampled"`
		WallMS     int64   `json:"wall_ms"`
		RowsPerSec float64 `json:"rows_per_sec"`
		Claims     int     `json:"claims"`
		Stable     bool    `json:"stable"`
	}
	out := struct {
		Experiment string `json:"experiment"`
		Rows       int    `json:"rows"`
		AllStable  bool   `json:"all_stable"`
		Configs    []row  `json:"configs"`
		Verify     struct {
			Claims    int     `json:"claims"`
			Falsified int     `json:"falsified"`
			Precision float64 `json:"precision"`
			Recall    float64 `json:"recall"`
			F1        float64 `json:"f1"`
			Dollars   float64 `json:"dollars"`
			Calls     int     `json:"calls"`
		} `json:"verify"`
	}{Experiment: "ingestbench", Rows: r.Rows, AllStable: r.AllStable}
	for _, rw := range r.Configs {
		out.Configs = append(out.Configs, row{
			Format: rw.Format, Budget: rw.Budget, RowsTotal: rw.RowsTotal,
			RowsKept: rw.RowsKept, Bytes: rw.Bytes, Sampled: rw.Sampled,
			WallMS: rw.Wall.Milliseconds(), RowsPerSec: rw.RowsPerSec,
			Claims: rw.Claims, Stable: rw.Stable,
		})
	}
	out.Verify.Claims = r.Verify.Claims
	out.Verify.Falsified = r.Verify.Falsified
	out.Verify.Precision = r.Verify.Quality.Precision
	out.Verify.Recall = r.Verify.Quality.Recall
	out.Verify.F1 = r.Verify.Quality.F1
	out.Verify.Dollars = r.Verify.Cost.Dollars
	out.Verify.Calls = r.Verify.Cost.Calls
	return json.MarshalIndent(out, "", "  ")
}
