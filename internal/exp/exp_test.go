package exp

import (
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/metrics"
)

// TestTable2Shape verifies the headline result: CEDAR has the best F1 on
// every dataset, TAPEX is strong on TabFact but zero on AggChecker, the
// AggChecker baseline does not support textual claims, and P1/P2 trail due
// to low precision.
func TestTable2Shape(t *testing.T) {
	res, err := Table2(17, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	for _, ds := range []string{"AggChecker", "TabFact", "WikiText"} {
		cedar := res.Row(ds, "CEDAR")
		if cedar == nil {
			t.Fatalf("missing CEDAR row for %s", ds)
		}
		for _, sys := range []string{"AggC", "TAPEX", "P1", "P2"} {
			row := res.Row(ds, sys)
			if row == nil {
				t.Fatalf("missing %s row for %s", sys, ds)
			}
			if row.Supported && row.Quality.F1 >= cedar.Quality.F1 {
				t.Errorf("%s: %s F1 %.1f >= CEDAR %.1f", ds, sys, row.Quality.F1*100, cedar.Quality.F1*100)
			}
		}
	}
	if res.Row("AggChecker", "TAPEX").Quality.F1 > 0.05 {
		t.Errorf("TAPEX must collapse on AggChecker, F1 %.2f", res.Row("AggChecker", "TAPEX").Quality.F1)
	}
	if res.Row("TabFact", "TAPEX").Quality.F1 < 0.5 {
		t.Errorf("TAPEX must be the strongest baseline on TabFact, F1 %.2f", res.Row("TabFact", "TAPEX").Quality.F1)
	}
	if res.Row("WikiText", "AggC").Supported {
		t.Error("AggChecker baseline must be unsupported on textual claims")
	}
	// P1/P2 precision clearly below CEDAR's on AggChecker.
	for _, sys := range []string{"P1", "P2"} {
		if p := res.Row("AggChecker", sys).Quality.Precision; p >= res.Row("AggChecker", "CEDAR").Quality.Precision {
			t.Errorf("%s precision %.2f not below CEDAR", sys, p)
		}
	}
	if !strings.Contains(res.Render(), "F1 score") {
		t.Error("render missing F1 rows")
	}
}

func TestCostsShape(t *testing.T) {
	res, err := Costs(19, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	byName := map[string]CostsRow{}
	for _, r := range res.Rows {
		byName[r.Dataset] = r
	}
	agg, tf, wt := byName["AggChecker"], byName["TabFact"], byName["WikiText"]
	if agg.Claims != 392 || tf.Claims != 100 || wt.Claims != 50 {
		t.Errorf("claim counts: %d/%d/%d", agg.Claims, tf.Claims, wt.Claims)
	}
	// The paper's cost ordering: AggChecker ($18.12) far above TabFact
	// ($1.46) and WikiText ($1.9).
	if agg.Dollars <= tf.Dollars || agg.Dollars <= wt.Dollars {
		t.Errorf("AggChecker must be the most expensive: %v vs %v / %v", agg.Dollars, tf.Dollars, wt.Dollars)
	}
	if agg.Dollars < 4*tf.Dollars {
		t.Errorf("AggChecker should cost several times TabFact: %v vs %v", agg.Dollars, tf.Dollars)
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(23, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	// The planned expected cost must be monotone in the threshold (it
	// comes off the Pareto frontier); realized dollars may wiggle between
	// near-equal schedules but must stay loosely aligned.
	var prevPlanned, prevDollars float64 = -1, -1
	for _, th := range Fig5Thresholds {
		p := res.Point(pointLabel(th))
		if p == nil {
			t.Fatalf("missing point for threshold %v", th)
		}
		if p.PlannedCost < prevPlanned-1e-12 {
			t.Errorf("planned cost not monotone at threshold %v: %v < %v", th, p.PlannedCost, prevPlanned)
		}
		if p.Dollars < prevDollars*0.9 {
			t.Errorf("realized cost collapses at threshold %v: %v << %v", th, p.Dollars, prevDollars)
		}
		prevPlanned, prevDollars = p.PlannedCost, p.Dollars
	}
	lo, hi := res.Point(pointLabel(0.5)), res.Point(pointLabel(0.99))
	if hi.Dollars < 1.3*lo.Dollars {
		t.Errorf("threshold sweep must span costs: %v vs %v", lo.Dollars, hi.Dollars)
	}
	if hi.F1 <= lo.F1 {
		t.Errorf("higher threshold must raise F1: %v vs %v", hi.F1, lo.F1)
	}
	// CEDAR at 99% must dominate the strongest single-stage agent on cost
	// with comparable-or-better F1 (the Figure 5 headline).
	agent := res.Point(MethodAgent41)
	if agent == nil {
		t.Fatal("missing single-stage agent point")
	}
	if hi.Dollars >= agent.Dollars/2 {
		t.Errorf("CEDAR@0.99 should cost well under the all-agent run: %v vs %v", hi.Dollars, agent.Dollars)
	}
	if hi.F1 < agent.F1-0.12 {
		t.Errorf("CEDAR@0.99 F1 %.2f collapses vs agent %.2f", hi.F1, agent.F1)
	}
	// Throughput: the cheap one-shot single stage processes claims faster
	// than the agent stage.
	oneshot := res.Point(MethodOneShot35)
	if oneshot.ThroughputPerHour <= agent.ThroughputPerHour {
		t.Errorf("one-shot throughput %v must exceed agent %v", oneshot.ThroughputPerHour, agent.ThroughputPerHour)
	}
}

func pointLabel(th float64) string {
	switch th {
	case 0.5:
		return "cedar@0.50"
	case 0.7:
		return "cedar@0.70"
	case 0.8:
		return "cedar@0.80"
	case 0.9:
		return "cedar@0.90"
	case 0.95:
		return "cedar@0.95"
	default:
		return "cedar@0.99"
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(29, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	if len(res.Docs) != 8 {
		t.Fatalf("expected 8 documents, got %d", len(res.Docs))
	}
	// Unit conversions cost at most a few F1 points overall; both runs
	// must stay strong (paper: 94.7% aligned vs 88.9% converted).
	if res.OverallAligned < 0.55 {
		t.Errorf("aligned F1 %.2f too low", res.OverallAligned)
	}
	if res.OverallConverted < res.OverallAligned-0.35 {
		t.Errorf("conversion degradation too large: %.2f vs %.2f", res.OverallConverted, res.OverallAligned)
	}
	// Most documents should be (nearly) unaffected.
	unaffected := 0
	for _, d := range res.Docs {
		if d.DeltaF1 >= -0.05 {
			unaffected++
		}
	}
	if unaffected < len(res.Docs)/2 {
		t.Errorf("only %d/%d documents unaffected by unit conversion", unaffected, len(res.Docs))
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(31)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	agg := res.Row("AggChecker")
	tf := res.Row("TabFact")
	jb := res.Row("JoinBench")
	if agg == nil || tf == nil || jb == nil || res.Row("WikiText") == nil {
		t.Fatal("missing dataset rows")
	}
	// Shapes from the paper's Table 3: no joins outside JoinBench, TabFact
	// simpler than AggChecker, JoinBench with joins.
	if agg.AvgJoins != 0 || tf.AvgJoins != 0 {
		t.Error("flat datasets must have no joins")
	}
	if jb.AvgJoins <= 0 || jb.MaxJoins < 1 {
		t.Errorf("JoinBench must require joins: %+v", jb)
	}
	if tf.AvgAgg >= agg.AvgAgg {
		t.Errorf("TabFact (%.2f) must use fewer aggregates than AggChecker (%.2f)", tf.AvgAgg, agg.AvgAgg)
	}
	if tf.AvgSubQ >= agg.AvgSubQ {
		t.Errorf("TabFact (%.2f) must use fewer subqueries than AggChecker (%.2f)", tf.AvgSubQ, agg.AvgSubQ)
	}
	// WikiText includes most-common-value claims, the only GROUP BY source
	// (the paper's Table 3 shows 0.22/1 for WikiText).
	if wt := res.Row("WikiText"); wt.AvgGroupBy <= 0 || wt.MaxGroupBy != 1 {
		t.Errorf("WikiText GroupBy stats = %.2f/%d", wt.AvgGroupBy, wt.MaxGroupBy)
	}
	if agg.Queries != 392 || tf.Queries != 100 {
		t.Errorf("query counts %d/%d", agg.Queries, tf.Queries)
	}
}

func TestJoinBenchShape(t *testing.T) {
	res, err := JoinBench(37, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	// Normalization must not collapse F1 but must raise costs notably
	// (the paper measures a ~3x factor).
	if res.NormalizedF1 < res.FlatF1-0.2 {
		t.Errorf("normalization collapsed F1: %.2f vs %.2f", res.NormalizedF1, res.FlatF1)
	}
	if res.CostFactor() < 1.2 {
		t.Errorf("normalization should raise costs, factor %.2f", res.CostFactor())
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(41, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	if len(res.Points) != 32 { // 8 schedules x 4 domains
		t.Fatalf("expected 32 points, got %d", len(res.Points))
	}
	// The paper's robustness claim: most cross-domain applications stay
	// within 2x cost and 0.1 F1 loss.
	if frac := res.WithinBounds(2, 0.1); frac < 0.6 {
		t.Errorf("only %.0f%% of cross-domain points within bounds", frac*100)
	}
}

func TestModelFitShape(t *testing.T) {
	res, err := ModelFit(43, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	if len(res.Points) != len(Fig5Thresholds) {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Realized <= 0 || p.Realized > 1 {
			t.Errorf("realized %v at threshold %v", p.Realized, p.Threshold)
		}
	}
	// The independence assumptions overestimate, but not catastrophically:
	// the model must stay within 15 points of reality for scheduling to
	// work (the extended report's conclusion).
	if gap := res.MaxOverestimate(); gap < -0.05 || gap > 0.15 {
		t.Errorf("max overestimate %.3f outside plausible band", gap)
	}
}

// TestCSVEmitters ensures every experiment result renders parseable CSV
// with the expected header and row counts.
func TestCSVEmitters(t *testing.T) {
	t3, err := Table3(47)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, t3.CSV(), "dataset", 4)
	jb, err := JoinBench(47, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, jb.CSV(), "schema", 2)
	f6, err := Fig6(47, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, f6.CSV(), "document", 8)
}

func checkCSV(t *testing.T, out, firstCol string, rows int) {
	t.Helper()
	r := csv.NewReader(strings.NewReader(out))
	records, err := r.ReadAll()
	if err != nil {
		t.Fatalf("CSV parse: %v\n%s", err, out)
	}
	if len(records) != rows+1 {
		t.Errorf("rows = %d want %d", len(records)-1, rows)
	}
	if records[0][0] != firstCol {
		t.Errorf("header starts with %q want %q", records[0][0], firstCol)
	}
}

// TestStackResilientDeterministic runs an experiment stack under injected
// faults with retries at workers 1 and 8 and requires identical quality and
// cost, mirroring the cedar-bench -fault-rate flag path.
func TestStackResilientDeterministic(t *testing.T) {
	ro := ResilienceOptions{FaultRate: 0.2, Retries: 2}
	runAt := func(workers int) (metrics.Quality, metrics.RunCost, int64) {
		stack, err := NewStackResilient(17, ro)
		if err != nil {
			t.Fatal(err)
		}
		stack.Workers = workers
		docs, err := data.AggChecker(17)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := stack.Profile(docs[:6])
		if err != nil {
			t.Fatal(err)
		}
		q, rc, _, err := stack.RunCEDAR(stats, 0.95, docs[6:14])
		if err != nil {
			t.Fatal(err)
		}
		return q, rc, stack.Resilience.Snapshot().Faults
	}
	q1, rc1, faults := runAt(1)
	if faults == 0 {
		t.Fatal("fault plan injected nothing at rate 0.2")
	}
	q8, rc8, _ := runAt(8)
	if q1 != q8 {
		t.Errorf("quality differs across workers: %v vs %v", q1, q8)
	}
	if rc1 != rc8 {
		t.Errorf("run cost differs across workers: %+v vs %+v", rc1, rc8)
	}
}

// NewStack must honor the package default the commands set from flags.
func TestDefaultResilienceApplied(t *testing.T) {
	old := DefaultResilience
	defer func() { DefaultResilience = old }()
	DefaultResilience = ResilienceOptions{FaultRate: 1, Retries: 0}
	stack, err := NewStack(23)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := data.AggChecker(23)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stack.Profile(docs[:2]); err != nil {
		t.Fatal(err)
	}
	if stack.Resilience.Snapshot().Faults == 0 {
		t.Error("DefaultResilience fault plan ignored by NewStack")
	}
}
