// Package exp contains one driver per table and figure of the paper's
// evaluation (Section 7). Each driver generates its workload, runs CEDAR
// and/or the baselines, and returns a result whose Render method prints the
// same rows/series the paper reports. The drivers are used by the
// cedar-bench command and by the repository's benchmark suite.
package exp

import (
	"fmt"

	"repro/internal/claim"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/schedule"
	"repro/internal/verify"
)

// Stack bundles the standard CEDAR verification methods of Section 7.1 —
// one-shot with GPT-3.5 and GPT-4o, agents with GPT-4o and GPT-4.1 — with
// the ledger metering all of them.
type Stack struct {
	Methods []verify.Method
	Ledger  *llm.Ledger
	// Workers bounds concurrent claim verification in pipeline runs; values
	// < 2 run sequentially. Results are identical for any worker count (the
	// splittable seeding of internal/core), so experiments may parallelize
	// freely without perturbing reported numbers.
	Workers int

	seed int64
}

// Canonical method labels used across experiments.
const (
	MethodOneShot35 = "oneshot-gpt3.5"
	MethodOneShot4o = "oneshot-gpt4o"
	MethodAgent4o   = "agent-gpt4o"
	MethodAgent41   = "agent-gpt4.1"
)

// NewStack builds the method stack over fresh simulated models.
func NewStack(seed int64) (*Stack, error) {
	ledger := llm.NewLedger()
	client := func(model string) (llm.Client, error) {
		m, err := sim.New(model, seed)
		if err != nil {
			return nil, err
		}
		return &llm.Metered{Client: m, Ledger: ledger}, nil
	}
	c35, err := client(llm.ModelGPT35)
	if err != nil {
		return nil, err
	}
	c4o, err := client(llm.ModelGPT4o)
	if err != nil {
		return nil, err
	}
	c41, err := client(llm.ModelGPT41)
	if err != nil {
		return nil, err
	}
	return &Stack{
		seed: seed,
		Methods: []verify.Method{
			verify.NewOneShot(c35, llm.ModelGPT35, MethodOneShot35),
			verify.NewOneShot(c4o, llm.ModelGPT4o, MethodOneShot4o),
			verify.NewAgent(c4o, llm.ModelGPT4o, MethodAgent4o, seed),
			verify.NewAgent(c41, llm.ModelGPT41, MethodAgent41, seed+1),
		},
		Ledger: ledger,
	}, nil
}

// Profile estimates method statistics on a held-out corpus.
func (s *Stack) Profile(profDocs []*claim.Document) ([]schedule.MethodStats, error) {
	return profile.Run(s.Methods, profDocs, s.Ledger, profile.Options{})
}

// RunCEDAR plans a schedule at the accuracy target, verifies the documents,
// and returns the quality metrics plus the run's resource consumption.
func (s *Stack) RunCEDAR(stats []schedule.MethodStats, target float64, docs []*claim.Document) (metrics.Quality, metrics.RunCost, *core.Pipeline, error) {
	p, err := core.New(core.Config{Methods: s.Methods, Stats: stats, AccuracyTarget: target, Seed: s.seed, Workers: s.Workers})
	if err != nil {
		return metrics.Quality{}, metrics.RunCost{}, nil, err
	}
	q, rc := s.runPipeline(p, docs)
	return q, rc, p, nil
}

// RunSchedule verifies the documents under a fixed schedule.
func (s *Stack) RunSchedule(plan *schedule.Schedule, docs []*claim.Document) (metrics.Quality, metrics.RunCost, error) {
	p, err := core.NewWithSchedule(core.Config{Methods: s.Methods, Seed: s.seed, Workers: s.Workers}, plan)
	if err != nil {
		return metrics.Quality{}, metrics.RunCost{}, err
	}
	q, rc := s.runPipeline(p, docs)
	return q, rc, nil
}

func (s *Stack) runPipeline(p *core.Pipeline, docs []*claim.Document) (metrics.Quality, metrics.RunCost) {
	s.Ledger.Reset()
	p.VerifyDocumentsParallel(docs, s.Workers)
	rc := metrics.RunCost{
		Dollars: s.Ledger.TotalDollars(),
		Calls:   s.Ledger.TotalCalls(),
		Wall:    s.Ledger.TotalWall(),
		Claims:  claim.TotalClaims(docs),
	}
	s.Ledger.Reset()
	return metrics.Evaluate(docs), rc
}

// profileSeed offsets a corpus seed to derive the held-out profiling corpus
// for the same benchmark shape.
func profileSeed(seed int64) int64 { return seed + 1000003 }

// datasetSpec names a benchmark and its generator.
type datasetSpec struct {
	name string
	gen  func(seed int64) ([]*claim.Document, error)
}

func standardDatasets() []datasetSpec {
	return []datasetSpec{
		{name: "AggChecker", gen: data.AggChecker},
		{name: "TabFact", gen: data.TabFact},
		{name: "WikiText", gen: data.WikiText},
	}
}

func pct(x float64) string { return fmt.Sprintf("%.1f", x*100) }
