// Package exp contains one driver per table and figure of the paper's
// evaluation (Section 7). Each driver generates its workload, runs CEDAR
// and/or the baselines, and returns a result whose Render method prints the
// same rows/series the paper reports. The drivers are used by the
// cedar-bench command and by the repository's benchmark suite.
package exp

import (
	"fmt"
	"time"

	"repro/internal/claim"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/llm"
	"repro/internal/llm/resilience"
	"repro/internal/llm/sim"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/schedule"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Stack bundles the standard CEDAR verification methods of Section 7.1 —
// one-shot with GPT-3.5 and GPT-4o, agents with GPT-4o and GPT-4.1 — with
// the ledger metering all of them.
type Stack struct {
	Methods []verify.Method
	Ledger  *llm.Ledger
	// Resilience accumulates operational counters from the resilience
	// middleware when the stack was built with nontrivial ResilienceOptions.
	Resilience *metrics.Resilience
	// Workers bounds concurrent claim verification in pipeline runs; values
	// < 2 run sequentially. Results are identical for any worker count (the
	// splittable seeding of internal/core), so experiments may parallelize
	// freely without perturbing reported numbers.
	Workers int
	// Tracer is the attempt-level span recorder wired through the middleware
	// when the stack was built with ResilienceOptions.Tracer; pipeline runs
	// thread it into core.Config so spans carry attempt identities.
	Tracer *trace.Tracer
	// Caches are the per-model completion caches, present only when the
	// stack was built with ResilienceOptions.Store; kept so experiments can
	// report persisted-hit counts.
	Caches []*llm.Cached

	seed int64
}

// Canonical method labels used across experiments.
const (
	MethodOneShot35 = "oneshot-gpt3.5"
	MethodOneShot4o = "oneshot-gpt4o"
	MethodAgent4o   = "agent-gpt4o"
	MethodAgent41   = "agent-gpt4.1"
)

// ResilienceOptions configure the optional resilience middleware of an
// experiment stack, mirroring the knobs of cedar.Options.
type ResilienceOptions struct {
	// FaultRate injects deterministic transport failures at this per-attempt
	// probability; 0 disables injection.
	FaultRate float64
	// Retries is the number of additional attempts per failed retryable call.
	Retries int
	// Timeout bounds one logical call's simulated wall time across retries.
	Timeout time.Duration
	// HedgeAfter races a backup completion once the primary exceeds this
	// simulated latency.
	HedgeAfter time.Duration
	// BreakerThreshold trips a per-model circuit breaker after this many
	// consecutive failures (order-dependent; see resilience.Breaker).
	BreakerThreshold int
	// Tracer, when non-nil, records attempt-level spans from every middleware
	// layer (see internal/trace); nil disables tracing.
	Tracer *trace.Tracer
	// Store, when non-nil, installs a temperature-0 completion cache backed
	// by this persistent result store between the meter and the hedger —
	// the same position cedar.New wires it (DESIGN.md §11). Cached hits,
	// in-memory or persisted, are never billed.
	Store *store.Store
	// ThrottleScale, when positive, wraps the simulated models in
	// llm.Throttled so every attempt pays this fraction of its simulated
	// latency as a real sleep. Wait-bound benchmarks (shardbench) use it to
	// model provider-latency-bound serving: a replica's throughput is then
	// capped by awaiting responses, not by CPU, which is what replica
	// fan-out actually buys back.
	ThrottleScale float64
}

// DefaultResilience is applied by NewStack; the cedar-bench and
// cedar-profile commands set it from their flags so every experiment driver
// picks the knobs up without each driver threading them through.
var DefaultResilience ResilienceOptions

// NewStack builds the method stack over fresh simulated models, applying
// DefaultResilience.
func NewStack(seed int64) (*Stack, error) {
	return NewStackResilient(seed, DefaultResilience)
}

// NewStackResilient builds the method stack with explicit resilience knobs.
// Middleware order matches cedar.New: sim → Faulty → Metered → [Cached] →
// Hedged → Retrier → Breaker (inner to outer), so failed attempts are billed,
// cache hits are free, and the breaker sees logical post-retry outcomes.
func NewStackResilient(seed int64, ro ResilienceOptions) (*Stack, error) {
	ledger := llm.NewLedger()
	res := &metrics.Resilience{}
	var caches []*llm.Cached
	client := func(model string) (llm.Client, error) {
		m, err := sim.New(model, seed)
		if err != nil {
			return nil, err
		}
		var c llm.Client = m
		if ro.ThrottleScale > 0 {
			// Innermost, directly over the model: every attempt — including
			// ones a fault injector or retrier will discard — pays its wire
			// time, matching how bench_test.go measures worker speedups.
			c = &llm.Throttled{Client: c, Scale: ro.ThrottleScale, Tracer: ro.Tracer}
		}
		if ro.FaultRate > 0 {
			c = &resilience.Faulty{
				Client:  c,
				Plan:    resilience.Plan{Seed: llm.SplitSeed(seed, "faults", model), Rate: ro.FaultRate},
				Metrics: res,
				Tracer:  ro.Tracer,
			}
		}
		c = &llm.Metered{Client: c, Ledger: ledger, Tracer: ro.Tracer}
		if ro.Store != nil {
			// Outside the meter so hits — in-memory or persisted — are free,
			// matching cedar.New's placement.
			cached := llm.NewCached(c, 0)
			cached.Tracer = ro.Tracer
			cached.Persist = ro.Store
			caches = append(caches, cached)
			c = cached
		}
		if ro.HedgeAfter > 0 {
			c = &resilience.Hedged{Client: c, After: ro.HedgeAfter, Metrics: res, Tracer: ro.Tracer}
		}
		if ro.Retries > 0 || ro.Timeout > 0 {
			c = &resilience.Retrier{
				Client:      c,
				MaxAttempts: ro.Retries + 1,
				Deadline:    ro.Timeout,
				Seed:        llm.SplitSeed(seed, "retry", model),
				Metrics:     res,
				Tracer:      ro.Tracer,
			}
		}
		if ro.BreakerThreshold > 0 {
			c = &resilience.Breaker{Client: c, FailureThreshold: ro.BreakerThreshold, Metrics: res, Tracer: ro.Tracer}
		}
		return c, nil
	}
	c35, err := client(llm.ModelGPT35)
	if err != nil {
		return nil, err
	}
	c4o, err := client(llm.ModelGPT4o)
	if err != nil {
		return nil, err
	}
	c41, err := client(llm.ModelGPT41)
	if err != nil {
		return nil, err
	}
	return &Stack{
		seed: seed,
		Methods: []verify.Method{
			verify.NewOneShot(c35, llm.ModelGPT35, MethodOneShot35),
			verify.NewOneShot(c4o, llm.ModelGPT4o, MethodOneShot4o),
			verify.NewAgent(c4o, llm.ModelGPT4o, MethodAgent4o, seed),
			verify.NewAgent(c41, llm.ModelGPT41, MethodAgent41, seed+1),
		},
		Ledger:     ledger,
		Resilience: res,
		Tracer:     ro.Tracer,
		Caches:     caches,
	}, nil
}

// PersistedHits sums disk-store hits across the stack's per-model caches;
// zero when the stack has no store.
func (s *Stack) PersistedHits() int64 {
	var total int64
	for _, c := range s.Caches {
		_, hits := c.PersistStats()
		total += int64(hits)
	}
	return total
}

// Profile estimates method statistics on a held-out corpus.
func (s *Stack) Profile(profDocs []*claim.Document) ([]schedule.MethodStats, error) {
	return profile.Run(s.Methods, profDocs, s.Ledger, profile.Options{})
}

// RunCEDAR plans a schedule at the accuracy target, verifies the documents,
// and returns the quality metrics plus the run's resource consumption.
func (s *Stack) RunCEDAR(stats []schedule.MethodStats, target float64, docs []*claim.Document) (metrics.Quality, metrics.RunCost, *core.Pipeline, error) {
	p, err := core.New(core.Config{Methods: s.Methods, Stats: stats, AccuracyTarget: target, Seed: s.seed, Workers: s.Workers, Tracer: s.Tracer})
	if err != nil {
		return metrics.Quality{}, metrics.RunCost{}, nil, err
	}
	q, rc := s.runPipeline(p, docs)
	return q, rc, p, nil
}

// RunSchedule verifies the documents under a fixed schedule.
func (s *Stack) RunSchedule(plan *schedule.Schedule, docs []*claim.Document) (metrics.Quality, metrics.RunCost, error) {
	p, err := core.NewWithSchedule(core.Config{Methods: s.Methods, Seed: s.seed, Workers: s.Workers, Tracer: s.Tracer}, plan)
	if err != nil {
		return metrics.Quality{}, metrics.RunCost{}, err
	}
	q, rc := s.runPipeline(p, docs)
	return q, rc, nil
}

func (s *Stack) runPipeline(p *core.Pipeline, docs []*claim.Document) (metrics.Quality, metrics.RunCost) {
	s.Ledger.Reset()
	// Like the ledger, a trace covers exactly one pipeline run.
	s.Tracer.Reset()
	p.VerifyDocumentsParallel(docs, s.Workers)
	rc := metrics.RunCost{
		Dollars: s.Ledger.TotalDollars(),
		Calls:   s.Ledger.TotalCalls(),
		Wall:    s.Ledger.TotalWall(),
		Claims:  claim.TotalClaims(docs),
	}
	s.Ledger.Reset()
	return metrics.Evaluate(docs), rc
}

// profileSeed offsets a corpus seed to derive the held-out profiling corpus
// for the same benchmark shape.
func profileSeed(seed int64) int64 { return seed + 1000003 }

// datasetSpec names a benchmark and its generator.
type datasetSpec struct {
	name string
	gen  func(seed int64) ([]*claim.Document, error)
}

func standardDatasets() []datasetSpec {
	return []datasetSpec{
		{name: "AggChecker", gen: data.AggChecker},
		{name: "TabFact", gen: data.TabFact},
		{name: "WikiText", gen: data.WikiText},
	}
}

func pct(x float64) string { return fmt.Sprintf("%.1f", x*100) }
