package exp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/claim"
)

// ModelFitPoint compares the scheduler's modeled verification probability
// (Theorem 6.2, under the independence assumptions 1 and 2) with the
// realized fraction of claims verified by the planned schedule.
type ModelFitPoint struct {
	Threshold float64
	Schedule  string
	Modeled   float64
	Realized  float64
}

// ModelFitResult reproduces the extended technical report's assessment of
// the independence assumptions: the accuracy model overestimates when
// retries correlate (the same hard claim fails every method), but remains
// accurate enough for effective scheduling.
type ModelFitResult struct {
	Points []ModelFitPoint
}

// ModelFit sweeps accuracy thresholds on the AggChecker corpus, recording
// modeled vs realized verification rates per planned schedule.
func ModelFit(seed int64, workers int) (*ModelFitResult, error) {
	evalDocs, err := claimSource(seed)
	if err != nil {
		return nil, err
	}
	profDocs, err := claimSource(profileSeed(seed))
	if err != nil {
		return nil, err
	}
	profDocs = profDocs[:8]
	stack, err := NewStack(seed)
	if err != nil {
		return nil, err
	}
	stack.Workers = workers
	stats, err := stack.Profile(profDocs)
	if err != nil {
		return nil, err
	}
	res := &ModelFitResult{}
	for _, th := range Fig5Thresholds {
		docs := claim.CloneDocuments(evalDocs)
		_, _, p, err := stack.RunCEDAR(stats, th, docs)
		if err != nil {
			return nil, err
		}
		verified := 0
		for _, d := range docs {
			for _, c := range d.Claims {
				if c.Result.Verified {
					verified++
				}
			}
		}
		res.Points = append(res.Points, ModelFitPoint{
			Threshold: th,
			Schedule:  p.Schedule().String(),
			Modeled:   p.Schedule().Accuracy,
			Realized:  float64(verified) / float64(claim.TotalClaims(docs)),
		})
	}
	return res, nil
}

// MaxOverestimate returns the largest modeled-minus-realized gap across the
// sweep; positive values quantify the cost of the independence assumptions.
func (r *ModelFitResult) MaxOverestimate() float64 {
	worst := math.Inf(-1)
	for _, p := range r.Points {
		if gap := p.Modeled - p.Realized; gap > worst {
			worst = gap
		}
	}
	return worst
}

// Render prints the comparison.
func (r *ModelFitResult) Render() string {
	var b strings.Builder
	b.WriteString("Model fit: modeled (Thm 6.2) vs realized verification rates.\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %8s  %s\n", "Threshold", "Modeled", "Realized", "Gap", "Schedule")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10.2f %10s %10s %+8.3f  %s\n",
			p.Threshold, pct(p.Modeled), pct(p.Realized), p.Modeled-p.Realized, p.Schedule)
	}
	fmt.Fprintf(&b, "max overestimate: %.3f (positive gaps are the cost of Assumptions 1 & 2)\n", r.MaxOverestimate())
	return b.String()
}
