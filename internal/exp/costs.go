package exp

import (
	"fmt"
	"strings"

	"repro/internal/claim"
)

// CostsRow reports CEDAR's verification fees on one dataset at the 99%
// accuracy threshold (the cost paragraph of Section 7.2).
type CostsRow struct {
	Dataset string
	Claims  int
	Dollars float64
	Calls   int
	F1      float64
}

// CostsResult reproduces the Section 7.2 cost report.
type CostsResult struct {
	Rows []CostsRow
}

// Costs runs CEDAR at the 99% threshold over the three standard datasets
// and reports dollar fees. Absolute amounts differ from the paper (the
// models are simulated and the corpora synthetic); the shape to check is
// AggChecker >> TabFact and WikiText, since AggChecker has ~4x the claims
// and the hardest ones.
func Costs(seed int64, workers int) (*CostsResult, error) {
	res := &CostsResult{}
	for _, ds := range standardDatasets() {
		evalDocs, err := ds.gen(seed)
		if err != nil {
			return nil, err
		}
		profDocs, err := ds.gen(profileSeed(seed))
		if err != nil {
			return nil, err
		}
		if len(profDocs) > 8 {
			profDocs = profDocs[:8]
		}
		stack, err := NewStack(seed)
		if err != nil {
			return nil, err
		}
		stack.Workers = workers
		stats, err := stack.Profile(profDocs)
		if err != nil {
			return nil, err
		}
		docs := claim.CloneDocuments(evalDocs)
		q, rc, _, err := stack.RunCEDAR(stats, 0.99, docs)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, CostsRow{
			Dataset: ds.name,
			Claims:  claim.TotalClaims(docs),
			Dollars: rc.Dollars,
			Calls:   rc.Calls,
			F1:      q.F1,
		})
	}
	return res, nil
}

// Render prints the cost report.
func (r *CostsResult) Render() string {
	var b strings.Builder
	b.WriteString("Verification fees of CEDAR at the 99% accuracy threshold (Section 7.2).\n")
	fmt.Fprintf(&b, "%-12s %8s %12s %8s %8s\n", "Dataset", "Claims", "Cost ($)", "Calls", "F1")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %8d %12.4f %8d %8s\n", row.Dataset, row.Claims, row.Dollars, row.Calls, pct(row.F1))
	}
	return b.String()
}
