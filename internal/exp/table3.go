package exp

import (
	"fmt"
	"strings"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/sqldb"
)

// Table3Row holds the per-query average and maximum complexity statistics
// of one dataset (Table 3).
type Table3Row struct {
	Dataset                                        string
	AvgJoins, AvgGroupBy, AvgSubQ, AvgAgg, AvgCols float64
	MaxJoins, MaxGroupBy, MaxSubQ, MaxAgg, MaxCols int
	Queries                                        int
}

// Table3Result reproduces Table 3: query complexity across data sets.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 analyzes the gold queries of all four benchmarks.
func Table3(seed int64) (*Table3Result, error) {
	res := &Table3Result{}
	for _, ds := range standardDatasets() {
		docs, err := ds.gen(seed)
		if err != nil {
			return nil, err
		}
		row, err := analyzeCorpus(ds.name, docs)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	_, normalized, err := data.JoinBench(seed)
	if err != nil {
		return nil, err
	}
	row, err := analyzeCorpus("JoinBench", normalized)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

func analyzeCorpus(name string, docs []*claim.Document) (Table3Row, error) {
	row := Table3Row{Dataset: name}
	var sumJ, sumG, sumS, sumA, sumC int
	for _, d := range docs {
		for _, c := range d.Claims {
			cx, err := sqldb.Analyze(c.Gold.Query)
			if err != nil {
				return row, fmt.Errorf("exp: analyze %s gold %q: %w", c.ID, c.Gold.Query, err)
			}
			row.Queries++
			sumJ += cx.Joins
			sumG += cx.GroupBys
			sumS += cx.Subqueries
			sumA += cx.Aggregates
			sumC += cx.Columns
			row.MaxJoins = maxInt(row.MaxJoins, cx.Joins)
			row.MaxGroupBy = maxInt(row.MaxGroupBy, cx.GroupBys)
			row.MaxSubQ = maxInt(row.MaxSubQ, cx.Subqueries)
			row.MaxAgg = maxInt(row.MaxAgg, cx.Aggregates)
			row.MaxCols = maxInt(row.MaxCols, cx.Columns)
		}
	}
	if row.Queries > 0 {
		n := float64(row.Queries)
		row.AvgJoins = float64(sumJ) / n
		row.AvgGroupBy = float64(sumG) / n
		row.AvgSubQ = float64(sumS) / n
		row.AvgAgg = float64(sumA) / n
		row.AvgCols = float64(sumC) / n
	}
	return row, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Row returns the named dataset's row, or nil.
func (r *Table3Result) Row(dataset string) *Table3Row {
	for i := range r.Rows {
		if r.Rows[i].Dataset == dataset {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render prints the avg/max table in the paper's layout.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: query complexity statistics across data sets (avg/max).\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s\n", "Data set", "Joins", "GroupBy", "SubQ", "Agg", "Cols")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %7.2f/%2d %7.2f/%2d %7.2f/%2d %7.2f/%2d %7.2f/%2d\n",
			row.Dataset,
			row.AvgJoins, row.MaxJoins,
			row.AvgGroupBy, row.MaxGroupBy,
			row.AvgSubQ, row.MaxSubQ,
			row.AvgAgg, row.MaxAgg,
			row.AvgCols, row.MaxCols)
	}
	return b.String()
}
