package exp

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRouteBenchExperiment(t *testing.T) {
	res, err := RouteBench(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutingAccuracy < 0.9 {
		t.Fatalf("routing accuracy %.3f below the 0.9 acceptance floor", res.RoutingAccuracy)
	}
	if len(res.Rows) != 2 || res.Rows[0].Mode != "routed" || res.Rows[1].Mode != "home-db" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	routed, base := res.Rows[0], res.Rows[1]
	if routed.SubClaims != res.SubClaims || routed.RouteDollars <= 0 {
		t.Errorf("routed row fee accounting: %+v", routed)
	}
	if base.SubClaims != 0 || base.RouteDollars != 0 {
		t.Errorf("baseline row booked routing work: %+v", base)
	}
	q := routed.Quality
	if got := q.TP + q.FP + q.FN + q.TN + q.Failed; got != res.Claims {
		t.Errorf("routed partition: %d cells, %d claims", got, res.Claims)
	}
	// Routing is the point: it must flag more of the planted incorrect
	// conjuncts than verifying compound claims whole against the wrong
	// database.
	if routed.Quality.F1 <= base.Quality.F1 {
		t.Errorf("routed F1 %.3f not above home-db baseline %.3f", routed.Quality.F1, base.Quality.F1)
	}
	if res.PricedSchedule == res.BaseSchedule || res.PricedSchedule == "" {
		t.Errorf("priced schedule %q vs base %q", res.PricedSchedule, res.BaseSchedule)
	}

	if !strings.Contains(res.Render(), "routing accuracy") {
		t.Error("render missing accuracy line")
	}
	if !strings.Contains(res.CSV(), "route_dollars") {
		t.Error("csv missing header")
	}
	blob, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Experiment      string  `json:"experiment"`
		RoutingAccuracy float64 `json:"routing_accuracy"`
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Experiment != "routebench" || decoded.RoutingAccuracy != res.RoutingAccuracy {
		t.Errorf("json round-trip: %+v", decoded)
	}
}
