package exp

import (
	"fmt"
	"strings"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/schedule"
)

// Fig7Point is one marker of Figure 7: a schedule profiled on one document
// applied to one domain's claims, positioned by its cost overhead and F1
// loss relative to that domain's own schedule.
type Fig7Point struct {
	ProfileDoc    string
	ProfileDomain string
	EvalDomain    string
	CostOverhead  float64
	F1Loss        float64
	CrossDomain   bool
}

// Fig7Result reproduces the distribution-shift study of Section 7.3.3.
type Fig7Result struct {
	Points []Fig7Point
}

// Fig7 profiles CEDAR's methods on eight single documents (two per
// AggChecker domain), plans one schedule per profile, and applies every
// schedule to every domain's evaluation claims.
func Fig7(seed int64, workers int) (*Fig7Result, error) {
	docs, err := data.AggChecker(seed)
	if err != nil {
		return nil, err
	}
	byDomain := map[string][]*claim.Document{}
	var domains []string
	for _, d := range docs {
		if len(byDomain[d.Domain]) == 0 {
			domains = append(domains, d.Domain)
		}
		byDomain[d.Domain] = append(byDomain[d.Domain], d)
	}

	stack, err := NewStack(seed)
	if err != nil {
		return nil, err
	}
	stack.Workers = workers

	// Two profiling documents per domain; evaluation uses the remaining
	// documents of each domain.
	type profiled struct {
		docID  string
		domain string
		plan   *schedule.Schedule
	}
	var plans []profiled
	evalSets := map[string][]*claim.Document{}
	for _, dom := range domains {
		ds := byDomain[dom]
		if len(ds) < 4 {
			return nil, fmt.Errorf("exp: domain %s has too few documents", dom)
		}
		for _, pd := range ds[:2] {
			stats, err := stack.Profile([]*claim.Document{pd})
			if err != nil {
				return nil, err
			}
			plan, err := schedule.Plan(stats, 2, 0.99)
			if err != nil {
				return nil, err
			}
			plans = append(plans, profiled{docID: pd.ID, domain: dom, plan: plan})
		}
		evalSets[dom] = ds[2:]
	}

	// Run every schedule on every domain.
	type runKey struct {
		planIdx int
		domain  string
	}
	f1s := map[runKey]float64{}
	costs := map[runKey]float64{}
	for i, p := range plans {
		for _, dom := range domains {
			evalDocs := claim.CloneDocuments(evalSets[dom])
			q, rc, err := stack.RunSchedule(p.plan, evalDocs)
			if err != nil {
				return nil, err
			}
			f1s[runKey{i, dom}] = q.F1
			costs[runKey{i, dom}] = rc.Dollars
		}
	}

	// Reference per domain: the best same-domain schedule (by F1, then
	// cost) — domain-specific profiling is the baseline the paper
	// compares against.
	ref := map[string]runKey{}
	for _, dom := range domains {
		best := runKey{-1, dom}
		for i, p := range plans {
			if p.domain != dom {
				continue
			}
			k := runKey{i, dom}
			if best.planIdx < 0 || f1s[k] > f1s[best] ||
				(f1s[k] == f1s[best] && costs[k] < costs[best]) {
				best = k
			}
		}
		ref[dom] = best
	}

	res := &Fig7Result{}
	for i, p := range plans {
		for _, dom := range domains {
			k := runKey{i, dom}
			r := ref[dom]
			overhead := 1.0
			if costs[r] > 0 {
				overhead = costs[k] / costs[r]
			}
			res.Points = append(res.Points, Fig7Point{
				ProfileDoc:    p.docID,
				ProfileDomain: p.domain,
				EvalDomain:    dom,
				CostOverhead:  overhead,
				F1Loss:        f1s[r] - f1s[k],
				CrossDomain:   p.domain != dom,
			})
		}
	}
	return res, nil
}

// WithinBounds returns the fraction of cross-domain points with cost
// overhead below maxOverhead and F1 loss below maxLoss (the paper reports
// 80% within factor 2 and 0.1).
func (r *Fig7Result) WithinBounds(maxOverhead, maxLoss float64) float64 {
	total, ok := 0, 0
	for _, p := range r.Points {
		if !p.CrossDomain {
			continue
		}
		total++
		if p.CostOverhead <= maxOverhead && p.F1Loss <= maxLoss {
			ok++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}

// Render prints the scatter points.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: cost overhead vs F1 loss across profiling domains.\n")
	fmt.Fprintf(&b, "%-12s %-14s %-14s %12s %8s\n", "Profile doc", "Profile dom", "Eval dom", "CostOverhead", "F1 loss")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s %-14s %-14s %12.2f %+8.3f\n",
			p.ProfileDoc, p.ProfileDomain, p.EvalDomain, p.CostOverhead, p.F1Loss)
	}
	fmt.Fprintf(&b, "cross-domain points within (2x cost, 0.1 F1): %.0f%%\n",
		r.WithinBounds(2, 0.1)*100)
	return b.String()
}
