package exp

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/cedar"
	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/route"
)

// RouteBenchRow reports one verification mode over the cross-database corpus
// — Table-2-style quality and cost, side by side.
type RouteBenchRow struct {
	// Mode is "routed" (decompose + route + recombine) or "home-db" (every
	// claim, compound included, verified whole against its document's home
	// database — what a router-less CEDAR deployment would do).
	Mode         string
	Quality      cedar.Quality
	Dollars      float64
	RouteDollars float64
	Calls        int
	SubClaims    int
}

// RouteBenchResult reproduces the cross-database routing table of
// EXPERIMENTS.md (DESIGN.md §16).
type RouteBenchResult struct {
	Docs     int
	Claims   int
	Compound int
	// SubClaims is the corpus's total conjunct count.
	SubClaims int
	// RoutingAccuracy is the fraction of conjuncts the planner bound to
	// their gold (database, table) entry.
	RoutingAccuracy float64
	// Ties counts bindings decided by the seeded tie-break.
	Ties int
	Rows []RouteBenchRow
	// BaseSchedule is the planned verification schedule; PricedSchedule is
	// the same schedule with the routing stage's fee and wrong-routing risk
	// applied by the DP planner (reporting-only; verification always runs
	// BaseSchedule).
	BaseSchedule   string
	PricedSchedule string
}

// RouteBench measures cross-database claim routing end to end: routing
// accuracy of the catalog search + seeded pick against gold labels, then
// verdict quality and cost of routed verification versus the home-database
// baseline over the same claims.
func RouteBench(seed int64, workers int) (*RouteBenchResult, error) {
	corpus, err := data.RouteBench(seed)
	if err != nil {
		return nil, err
	}
	res := &RouteBenchResult{
		Docs:      len(corpus.Docs),
		Claims:    claim.TotalClaims(corpus.Docs),
		Compound:  len(corpus.Gold),
		SubClaims: corpus.SubClaims,
	}

	// Routing accuracy, measured on the library planner the verification
	// path itself uses.
	cat := route.NewCatalog(corpus.Databases...)
	plan := route.PlanDocuments(corpus.Docs, cat, route.Options{Seed: seed})
	total, correct := 0, 0
	for _, r := range plan.Routed {
		gold := corpus.Gold[r.Claim.ID]
		if len(gold) != len(r.Units) {
			return nil, fmt.Errorf("routebench: claim %s planned %d units, gold has %d", r.Claim.ID, len(r.Units), len(gold))
		}
		for i, u := range r.Units {
			total++
			if u.Entry.Name() == gold[i] {
				correct++
			}
			if u.Tied {
				res.Ties++
			}
		}
	}
	if total != corpus.SubClaims {
		return nil, fmt.Errorf("routebench: planned %d sub-claims, corpus has %d", total, corpus.SubClaims)
	}
	res.RoutingAccuracy = float64(correct) / float64(total)

	profDocs, err := data.AggChecker(profileSeed(seed))
	if err != nil {
		return nil, err
	}
	if len(profDocs) > 8 {
		profDocs = profDocs[:8]
	}
	run := func(routed bool) (*RouteBenchRow, *cedar.System, error) {
		sys, err := cedar.New(cedar.Options{
			Seed: seed, AccuracyTarget: 0.99, Workers: workers, Route: routed,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := sys.ProfileOn(profDocs); err != nil {
			return nil, nil, err
		}
		if routed {
			if err := sys.SetCatalog(corpus.Databases...); err != nil {
				return nil, nil, err
			}
		}
		docs := claim.CloneDocuments(corpus.Docs)
		rep, err := sys.Verify(docs)
		if err != nil {
			return nil, nil, err
		}
		mode := "home-db"
		if routed {
			mode = "routed"
		}
		return &RouteBenchRow{
			Mode: mode, Quality: rep.Quality, Dollars: rep.Dollars,
			RouteDollars: rep.RouteDollars, Calls: rep.Calls,
			SubClaims: rep.RoutedSubClaims,
		}, sys, nil
	}
	routedRow, routedSys, err := run(true)
	if err != nil {
		return nil, err
	}
	baseRow, _, err := run(false)
	if err != nil {
		return nil, err
	}
	res.Rows = []RouteBenchRow{*routedRow, *baseRow}
	res.BaseSchedule = routedSys.Schedule()
	res.PricedSchedule = routedSys.RoutedSchedule()
	return res, nil
}

// Render prints the routing table.
func (r *RouteBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-database claim routing over %d docs, %d claims (%d compound, %d conjuncts).\n",
		r.Docs, r.Claims, r.Compound, r.SubClaims)
	fmt.Fprintf(&b, "routing accuracy %s (%d tie-breaks)\n", pct(r.RoutingAccuracy), r.Ties)
	fmt.Fprintf(&b, "%-8s %7s %7s %7s %7s %9s %10s %6s %5s\n",
		"Mode", "P", "R", "F1", "Failed", "Cost", "RouteFee", "Calls", "Subs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %7s %7s %7s %7d %9.4f %10.4f %6d %5d\n",
			row.Mode, pct(row.Quality.Precision), pct(row.Quality.Recall), pct(row.Quality.F1),
			row.Quality.Failed, row.Dollars, row.RouteDollars, row.Calls, row.SubClaims)
	}
	fmt.Fprintf(&b, "verification schedule: %s\n", r.BaseSchedule)
	fmt.Fprintf(&b, "priced routed schedule: %s\n", r.PricedSchedule)
	return b.String()
}

// CSV renders one row per mode.
func (r *RouteBenchResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Mode, f(row.Quality.Precision), f(row.Quality.Recall), f(row.Quality.F1),
			fmt.Sprintf("%d", row.Quality.Failed), f(row.Dollars), f(row.RouteDollars),
			fmt.Sprintf("%d", row.Calls), fmt.Sprintf("%d", row.SubClaims),
		})
	}
	return csvString([]string{"mode", "precision", "recall", "f1", "failed",
		"dollars", "route_dollars", "calls", "sub_claims"}, rows)
}

// JSON renders the result for BENCH_route.json (cedar-bench -route-json).
func (r *RouteBenchResult) JSON() ([]byte, error) {
	type row struct {
		Mode         string  `json:"mode"`
		Precision    float64 `json:"precision"`
		Recall       float64 `json:"recall"`
		F1           float64 `json:"f1"`
		Failed       int     `json:"failed"`
		Dollars      float64 `json:"dollars"`
		RouteDollars float64 `json:"route_dollars"`
		Calls        int     `json:"calls"`
		SubClaims    int     `json:"sub_claims"`
	}
	out := struct {
		Experiment      string  `json:"experiment"`
		Docs            int     `json:"docs"`
		Claims          int     `json:"claims"`
		Compound        int     `json:"compound"`
		SubClaims       int     `json:"sub_claims"`
		RoutingAccuracy float64 `json:"routing_accuracy"`
		Ties            int     `json:"ties"`
		Rows            []row   `json:"rows"`
		BaseSchedule    string  `json:"base_schedule"`
		PricedSchedule  string  `json:"priced_schedule"`
	}{
		Experiment: "routebench", Docs: r.Docs, Claims: r.Claims,
		Compound: r.Compound, SubClaims: r.SubClaims,
		RoutingAccuracy: r.RoutingAccuracy, Ties: r.Ties,
		BaseSchedule: r.BaseSchedule, PricedSchedule: r.PricedSchedule,
	}
	for _, rw := range r.Rows {
		out.Rows = append(out.Rows, row{
			Mode: rw.Mode, Precision: rw.Quality.Precision, Recall: rw.Quality.Recall,
			F1: rw.Quality.F1, Failed: rw.Quality.Failed, Dollars: rw.Dollars,
			RouteDollars: rw.RouteDollars, Calls: rw.Calls, SubClaims: rw.SubClaims,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
