package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"repro/internal/claim"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/serve"
	"repro/internal/trace"
)

// ServingResilience is the recommended middleware configuration for serving
// mode, used as the cedar-serve flag defaults. A batch run can afford to
// fail a claim and report it; an interactive service should spend tokens to
// avoid making the caller retry. Hence: two retries (recovers virtually all
// transient faults at the fault rates measured in EXPERIMENTS.md), a
// per-call deadline above the slowest method's p99 simulated latency
// (~2.4s) with backoff headroom, and a hedge just beyond it so tail calls
// race a backup instead of stalling a whole micro-batch. The breaker stays
// off by default because its shared state is order-dependent (DESIGN.md
// §9): enabling it is an explicit operator choice to trade bit-determinism
// for load shedding.
func ServingResilience() ResilienceOptions {
	return ResilienceOptions{
		Retries:    2,
		Timeout:    30 * time.Second,
		HedgeAfter: 5 * time.Second,
	}
}

// ServeBenchRow is one cell of a serving-mode throughput table. The same
// schema covers single-process servebench cells and the shardbench sweep's
// per-replica and aggregate rows, so BENCH_shard.json needs no second row
// type: Shards/Scope are zero for a single-process cell, and a shard row
// carries the topology it was measured under. The JSON names are a pinned
// artifact surface (see TestShardBenchJSONShape).
type ServeBenchRow struct {
	// Shards is the replica count of the topology this row was measured
	// under; 0 for a single-process servebench cell.
	Shards int `json:"shards,omitempty"`
	// Scope names what the row covers: "aggregate" for whole-tier
	// throughput, "replica-N" for one replica's share, empty for a
	// single-process cell.
	Scope     string  `json:"scope,omitempty"`
	Workers   int     `json:"workers"`
	FaultRate float64 `json:"fault_rate"`
	// Requests served and claims verified.
	Requests int `json:"requests"`
	Claims   int `json:"claims"`
	// ReqPerSec is served throughput over the measurement wall time.
	ReqPerSec float64 `json:"req_per_sec"`
	// E2E are end-to-end request latency quantiles (admission to response,
	// real wall clock) as reported by the server's own GET /v1/metrics.
	E2E serve.LatencyQuantiles `json:"e2e_ms"`
	// SimAttempt are the per-attempt simulated-latency quantiles of the
	// slowest method observed, from the tracer rollups behind /v1/metrics.
	SimAttempt serve.LatencyQuantiles `json:"sim_attempt_ms"`
	// Dollars is the total fee of the served traffic.
	Dollars float64 `json:"dollars"`
}

// ServeBenchResult is the serving-mode counterpart of the batch throughput
// tables: requests/sec and latency quantiles under load, per worker count
// and fault rate.
type ServeBenchResult struct {
	Rows []ServeBenchRow
}

// serveBenchRequests is the load per matrix cell: enough concurrent
// requests to keep several micro-batches in flight without making
// `cedar-bench servebench` take minutes.
const (
	serveBenchRequests = 48
	serveBenchClients  = 16
)

// ServeBench boots an in-process cedar-serve instance per (workers, fault
// rate) cell, fires a fixed concurrent request load at POST /v1/verify, and
// reads the resulting throughput and latency quantiles back from the
// server's GET /v1/metrics endpoint — the table is built from the serving
// observability surface, not from instrumentation bolted onto the test.
// Every request carries the same database's claims under a distinct doc_id,
// modeling many readers verifying claims against one dataset.
func ServeBench(seed int64, workers int) (*ServeBenchResult, error) {
	// The worker count is this table's independent variable, so the matrix
	// is fixed at {1, 8} (matching the batch throughput tables) rather than
	// taking the -workers flag.
	_ = workers
	workerCounts := []int{1, 8}
	res := &ServeBenchResult{}
	for _, w := range workerCounts {
		for _, fr := range []float64{0, 0.2} {
			row, err := serveBenchCell(seed, w, fr)
			if err != nil {
				return nil, fmt.Errorf("servebench workers=%d fault=%.1f: %w", w, fr, err)
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

func serveBenchCell(seed int64, workers int, faultRate float64) (*ServeBenchRow, error) {
	tracer := trace.New()
	ro := ServingResilience()
	ro.FaultRate = faultRate
	ro.Tracer = tracer
	stack, err := NewStackResilient(seed, ro)
	if err != nil {
		return nil, err
	}
	stack.Workers = workers
	stack.Tracer = tracer
	profDocs, err := data.AggChecker(profileSeed(seed))
	if err != nil {
		return nil, err
	}
	stats, err := stack.Profile(profDocs[:6])
	if err != nil {
		return nil, err
	}
	pipe, err := core.New(core.Config{
		Methods:        stack.Methods,
		Stats:          stats,
		AccuracyTarget: 0.99,
		Seed:           seed,
		Workers:        workers,
		Tracer:         tracer,
	})
	if err != nil {
		return nil, err
	}
	docs, err := data.AggChecker(seed)
	if err != nil {
		return nil, err
	}
	// The workload database and claims: one dataset, many readers.
	source := docs[0]

	// The batch loop serializes backend calls, and the totals are read only
	// after every response has arrived, so plain accumulation is safe.
	var dollars float64
	var claims int
	backend := serve.BackendFunc(func(batch []*claim.Document) (serve.RunStats, error) {
		stack.Ledger.Reset()
		tracer.Reset()
		pipe.VerifyDocumentsParallel(batch, workers)
		st := serve.RunStats{
			Claims:  claim.TotalClaims(batch),
			Dollars: stack.Ledger.TotalDollars(),
			Calls:   stack.Ledger.TotalCalls(),
		}
		dollars += st.Dollars
		claims += st.Claims
		return st, nil
	})
	srv, err := serve.New(serve.Config{
		Backend:    backend,
		DB:         source.Data,
		DocID:      source.ID,
		MaxBatch:   serveBenchClients,
		QueueDepth: serveBenchRequests,
		Tracer:     tracer,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, err := verifyRequestBody(source)
	if err != nil {
		return nil, err
	}
	started := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, serveBenchClients)
	// Pre-filled and closed before the clients start, so a client erroring
	// out early never strands a blocked sender.
	reqs := make(chan int, serveBenchRequests)
	for i := 0; i < serveBenchRequests; i++ {
		reqs <- i
	}
	close(reqs)
	for c := 0; c < serveBenchClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range reqs {
				payload := strings.Replace(body, `"doc_id":"DOC"`, fmt.Sprintf(`"doc_id":"req-%d"`, i), 1)
				resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader([]byte(payload)))
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("request %d: status %d", i, resp.StatusCode)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(started)
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	met, err := fetchMetrics(ts.URL)
	if err != nil {
		return nil, err
	}
	row := &ServeBenchRow{
		Workers:   workers,
		FaultRate: faultRate,
		Requests:  serveBenchRequests,
		Claims:    claims,
		ReqPerSec: float64(serveBenchRequests) / wall.Seconds(),
		E2E:       met.LatencyMS,
		Dollars:   dollars,
	}
	// Report the slowest method's simulated-latency quantiles — the tail
	// that hedging and batching are supposed to hide.
	for _, m := range met.Methods {
		if m.SimLatencyMS.P99 > row.SimAttempt.P99 {
			row.SimAttempt = m.SimLatencyMS
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, err
	}
	return row, nil
}

// verifyRequestBody renders one document's claims as a POST /v1/verify body
// with a DOC placeholder for the per-request document ID.
func verifyRequestBody(doc *claim.Document) (string, error) {
	req := serve.VerifyRequest{DocID: "DOC"}
	for _, c := range doc.Claims {
		req.Claims = append(req.Claims, serve.ClaimInput{
			ID:       c.ID,
			Sentence: c.Sentence,
			Value:    c.Value,
			Context:  c.Context,
		})
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func fetchMetrics(baseURL string) (*serve.MetricsResponse, error) {
	resp, err := http.Get(baseURL + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var met serve.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		return nil, err
	}
	return &met, nil
}

// Render prints the serving-mode throughput matrix.
func (r *ServeBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-6s %9s %8s %10s %10s %10s %10s %12s %10s\n",
		"workers", "fault", "requests", "claims", "req/s", "e2e p50", "e2e p95", "e2e p99", "sim p99", "fee($)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %-6.1f %9d %8d %10.1f %9.1fms %9.1fms %9.1fms %11.0fms %10.4f\n",
			row.Workers, row.FaultRate, row.Requests, row.Claims, row.ReqPerSec,
			row.E2E.P50, row.E2E.P95, row.E2E.P99, row.SimAttempt.P99, row.Dollars)
	}
	return b.String()
}

// CSV renders the matrix as one row per (workers, fault rate) cell.
func (r *ServeBenchResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Workers), f(row.FaultRate),
			fmt.Sprintf("%d", row.Requests), fmt.Sprintf("%d", row.Claims),
			f(row.ReqPerSec), f(row.E2E.P50), f(row.E2E.P95), f(row.E2E.P99),
			f(row.SimAttempt.P99), f(row.Dollars),
		})
	}
	return csvString([]string{"workers", "fault_rate", "requests", "claims",
		"req_per_sec", "e2e_p50_ms", "e2e_p95_ms", "e2e_p99_ms", "sim_attempt_p99_ms", "dollars"}, rows)
}
