package exp

import (
	"testing"
)

// TestStreamBenchJSONShape pins the JSON schema of BENCH_stream.json.
// EXPERIMENTS.md reads these names; changing them is an artifact-format
// break and must show up here.
func TestStreamBenchJSONShape(t *testing.T) {
	res := &StreamBenchResult{
		ThrottleScale: 0.5,
		Rows: []StreamBenchRow{
			{Mode: "batch", Docs: 2, Claims: 2, TTFVMS: 10, WallMS: 10, ClaimsPerSec: 200, Dollars: 0.25},
			{Mode: "stream", Docs: 2, Claims: 2, TTFVMS: 5, WallMS: 10, ClaimsPerSec: 200, Dollars: 0.25},
		},
	}
	got, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "throttle_scale": 0.5,
  "rows": [
    {
      "mode": "batch",
      "docs": 2,
      "claims": 2,
      "ttfv_ms": 10,
      "wall_ms": 10,
      "claims_per_sec": 200,
      "dollars": 0.25
    },
    {
      "mode": "stream",
      "docs": 2,
      "claims": 2,
      "ttfv_ms": 5,
      "wall_ms": 10,
      "claims_per_sec": 200,
      "dollars": 0.25
    }
  ]
}`
	if string(got) != want {
		t.Errorf("BENCH_stream.json shape changed:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestStreamBenchSmall runs a shrunken comparison end to end — real server,
// real sockets — and checks the accounting: both modes verify the full
// corpus, fees match across modes (same work, different delivery), and the
// stream's first verdict never waits for the whole corpus.
func TestStreamBenchSmall(t *testing.T) {
	res, err := StreamBenchWith(17, StreamBenchConfig{
		Docs:          6,
		ThrottleScale: 0.0005,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Render())
	batch, stream := res.row("batch"), res.row("stream")
	if batch == nil || stream == nil {
		t.Fatalf("missing a mode row:\n%s", res.Render())
	}
	for _, row := range []*StreamBenchRow{batch, stream} {
		if row.Docs != 6 || row.Claims != 6 {
			t.Errorf("%s row covered %d docs / %d claims, want 6/6", row.Mode, row.Docs, row.Claims)
		}
		if row.Dollars <= 0 {
			t.Errorf("%s fee = %v, want > 0 (real verification ran)", row.Mode, row.Dollars)
		}
		if row.TTFVMS <= 0 || row.WallMS < row.TTFVMS {
			t.Errorf("%s timings inconsistent: ttfv %.2fms wall %.2fms", row.Mode, row.TTFVMS, row.WallMS)
		}
	}
	// Identical work in both modes bills identical fees (determinism).
	if diff := batch.Dollars - stream.Dollars; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("fees differ across delivery modes: batch $%v stream $%v", batch.Dollars, stream.Dollars)
	}
	// The defining property: a streamed corpus yields its first verdict
	// before the whole corpus is done. (Batch TTFV is its wall by
	// construction; wall clocks are noisy, so allow generous slack.)
	if stream.TTFVMS >= stream.WallMS {
		t.Errorf("stream first verdict at %.2fms of %.2fms wall: nothing streamed early", stream.TTFVMS, stream.WallMS)
	}
}
