package exp

import "testing"

// The onboarding benchmark must be deterministic per seed: every re-ingest
// reproduces its fingerprint, and the verification phase flags exactly the
// falsified half it was given (the surface claims are generated true).
func TestIngestBenchSmall(t *testing.T) {
	res, err := ingestBenchSized(17, 2, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllStable {
		t.Error("re-ingest fingerprints diverged")
	}
	if len(res.Configs) != 4 {
		t.Fatalf("got %d configs, want 4", len(res.Configs))
	}
	for _, row := range res.Configs {
		if row.RowsTotal != 600 {
			t.Errorf("%s/%d scanned %d rows, want 600", row.Format, row.Budget, row.RowsTotal)
		}
		wantKept := 600
		if row.Budget > 0 {
			wantKept = row.Budget
			if !row.Sampled {
				t.Errorf("%s/%d did not sample", row.Format, row.Budget)
			}
		}
		if row.RowsKept != wantKept {
			t.Errorf("%s/%d kept %d rows, want %d", row.Format, row.Budget, row.RowsKept, wantKept)
		}
		if row.Claims == 0 {
			t.Errorf("%s/%d generated no surface claims", row.Format, row.Budget)
		}
	}
	// CSV and NDJSON carry the same records, so at equal budgets they keep
	// the same number of rows and generate the same number of claims.
	if res.Configs[0].Claims != res.Configs[2].Claims {
		t.Errorf("csv surface %d claims, ndjson %d", res.Configs[0].Claims, res.Configs[2].Claims)
	}
	v := res.Verify
	if v.Claims == 0 || v.Falsified == 0 || v.Falsified >= v.Claims {
		t.Fatalf("verification phase: %d claims, %d falsified", v.Claims, v.Falsified)
	}
	if v.Cost.Calls == 0 {
		t.Error("verification made no model calls")
	}
	if v.Quality.TP+v.Quality.FP+v.Quality.FN+v.Quality.TN+v.Quality.Failed != v.Claims {
		t.Errorf("confusion matrix does not cover all claims: %+v", v.Quality)
	}

	// Stable across invocations: the whole result (modulo wall timings) must
	// reproduce.
	again, err := ingestBenchSized(17, 4, 600)
	if err != nil {
		t.Fatal(err)
	}
	if again.Verify.Quality != res.Verify.Quality {
		t.Errorf("verification quality diverged across runs:\n%+v\n%+v", res.Verify.Quality, again.Verify.Quality)
	}
	if _, err := res.JSON(); err != nil {
		t.Fatal(err)
	}
	if res.Render() == "" || res.CSV() == "" {
		t.Error("empty rendering")
	}
}
