package exp

import (
	"fmt"
	"strings"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/metrics"
)

// Fig6Doc is one bar of Figure 6: the F1 change on one document when its
// claims require unit conversions.
type Fig6Doc struct {
	DocID     string
	Aligned   float64 // per-document F1 with matching units
	Converted float64 // per-document F1 with converted units
	DeltaF1   float64
}

// Fig6Result reproduces the unit-conversion study of Section 7.3.1.
type Fig6Result struct {
	Docs []Fig6Doc
	// OverallAligned and OverallConverted are corpus-level F1 scores (the
	// paper reports 94.7% aligned vs 88.9% converted).
	OverallAligned   float64
	OverallConverted float64
}

// Fig6 verifies the paired unit-conversion benchmark with CEDAR at the 99%
// threshold: once with claims in the data's units, once with claims in
// converted units. The paper's benchmark has only 20 claims, so a single
// draw is statistically fragile; the overall scores aggregate three
// replica corpora (60 claims) while the per-document bars show the first
// replica, matching the paper's 8 documents.
func Fig6(seed int64, workers int) (*Fig6Result, error) {
	var aligned, converted []*claim.Document
	for r := int64(0); r < 3; r++ {
		a, err := data.UnitConv(seed+r, true)
		if err != nil {
			return nil, err
		}
		c, err := data.UnitConv(seed+r, false)
		if err != nil {
			return nil, err
		}
		aligned = append(aligned, a...)
		converted = append(converted, c...)
	}
	// Profile on a mixed corpus covering both unit treatments: schedules
	// must be provisioned for claims that need conversions, otherwise the
	// cheap stage's (deceptively high) aligned-only success rate starves
	// the schedule of capable methods.
	profAligned, err := data.UnitConv(profileSeed(seed), true)
	if err != nil {
		return nil, err
	}
	profConverted, err := data.UnitConv(profileSeed(seed), false)
	if err != nil {
		return nil, err
	}
	profDocs := append(profAligned, profConverted...)

	stack, err := NewStack(seed)
	if err != nil {
		return nil, err
	}
	stack.Workers = workers
	stats, err := stack.Profile(profDocs)
	if err != nil {
		return nil, err
	}
	alignedRun := claim.CloneDocuments(aligned)
	if _, _, _, err := stack.RunCEDAR(stats, 0.99, alignedRun); err != nil {
		return nil, err
	}
	convertedRun := claim.CloneDocuments(converted)
	if _, _, _, err := stack.RunCEDAR(stats, 0.99, convertedRun); err != nil {
		return nil, err
	}

	res := &Fig6Result{
		OverallAligned:   metrics.Evaluate(alignedRun).F1,
		OverallConverted: metrics.Evaluate(convertedRun).F1,
	}
	for i := 0; i < 8 && i < len(alignedRun); i++ {
		fa := docF1(alignedRun[i])
		fc := docF1(convertedRun[i])
		res.Docs = append(res.Docs, Fig6Doc{
			DocID:     alignedRun[i].ID,
			Aligned:   fa,
			Converted: fc,
			DeltaF1:   fc - fa,
		})
	}
	return res, nil
}

// docF1 computes a per-document F1, defining the empty-confusion case (no
// incorrect claims and no flags) as a perfect 1.0 so unaffected documents
// show a zero delta.
func docF1(d *claim.Document) float64 {
	q := metrics.Evaluate([]*claim.Document{d})
	if q.TP+q.FP+q.FN == 0 {
		return 1
	}
	return q.F1
}

// Render prints the per-document deltas and the overall scores.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: change in F1 due to unit conversions (per document).\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s\n", "Document", "Aligned", "Converted", "dF1")
	for _, d := range r.Docs {
		fmt.Fprintf(&b, "%-12s %10s %10s %+10.1f\n", d.DocID, pct(d.Aligned), pct(d.Converted), d.DeltaF1*100)
	}
	fmt.Fprintf(&b, "overall: aligned F1=%s converted F1=%s\n", pct(r.OverallAligned), pct(r.OverallConverted))
	return b.String()
}
