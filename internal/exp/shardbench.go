package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"repro/internal/claim"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/schedule"
	"repro/internal/serve"
	"repro/internal/shard"
)

// Shardbench defaults: the sweep fires one request per client goroutine at
// each topology of the shard ladder. All clients share one bounded
// http.Client, so ten thousand concurrent callers multiplex over a few
// hundred sockets — the coordinator, not the bench, absorbs the fan-out
// (and the process stays far from typical fd limits).
const (
	shardBenchClients  = 10000
	shardBenchMaxConns = 256
	// shardBenchThrottle makes serving wait-bound: every model attempt
	// sleeps this fraction of its simulated latency (llm.Throttled), so a
	// replica's throughput is capped by awaiting provider responses — the
	// regime where adding replicas buys real wall-clock throughput even on
	// one core, because N batch loops await concurrently.
	shardBenchThrottle = 0.003
)

// shardBenchShards is the topology ladder, matching the determinism
// harness's shard counts.
var shardBenchShards = []int{1, 2, 4, 8}

// ShardBenchConfig tunes the sweep; zero values take the package defaults.
// Tests shrink Clients and Shards to keep the suite fast.
type ShardBenchConfig struct {
	Clients       int
	Shards        []int
	ThrottleScale float64
}

// ShardBenchResult is the sharded-serving throughput sweep: per-replica and
// aggregate ServeBenchRows per topology, one schema throughout. Its JSON
// rendering is the BENCH_shard.json artifact (cedar-bench -shard-json).
type ShardBenchResult struct {
	Clients       int             `json:"clients"`
	ThrottleScale float64         `json:"throttle_scale"`
	Rows          []ServeBenchRow `json:"rows"`
}

// ShardBench runs the default sweep. The workers flag is ignored: each
// replica verifies with one worker on purpose, so per-replica throughput is
// bound by one scheduler loop awaiting throttled model calls — the
// single-process ceiling the coordinator exists to break.
func ShardBench(seed int64, workers int) (*ShardBenchResult, error) {
	_ = workers
	return ShardBenchWith(seed, ShardBenchConfig{})
}

// ShardBenchWith runs the sweep with explicit knobs.
func ShardBenchWith(seed int64, cfg ShardBenchConfig) (*ShardBenchResult, error) {
	if cfg.Clients == 0 {
		cfg.Clients = shardBenchClients
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = shardBenchShards
	}
	if cfg.ThrottleScale == 0 {
		cfg.ThrottleScale = shardBenchThrottle
	}
	// Profile once, unthrottled, and share the stats: every replica then
	// runs the same schedule (how a fleet would ship one cedar-profile
	// artifact to all replicas), and the profiling pass does not pay the
	// throttle sleep.
	profStack, err := NewStackResilient(seed, ResilienceOptions{})
	if err != nil {
		return nil, err
	}
	profDocs, err := data.AggChecker(profileSeed(seed))
	if err != nil {
		return nil, err
	}
	stats, err := profStack.Profile(profDocs[:6])
	if err != nil {
		return nil, err
	}
	docs, err := data.AggChecker(seed)
	if err != nil {
		return nil, err
	}
	source := docs[0]

	res := &ShardBenchResult{Clients: cfg.Clients, ThrottleScale: cfg.ThrottleScale}
	for _, shards := range cfg.Shards {
		rows, err := shardBenchCell(seed, cfg, shards, stats, source)
		if err != nil {
			return nil, fmt.Errorf("shardbench shards=%d: %w", shards, err)
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// shardBenchReplica is one booted replica of a topology.
type shardBenchReplica struct {
	srv *serve.Server
	ts  *httptest.Server
}

// shardBenchCell boots one topology — N replicas behind a coordinator —
// fires the client load, and reads per-replica and aggregate rows back from
// the tier's own /v1/metrics surfaces.
func shardBenchCell(seed int64, cfg ShardBenchConfig, shards int, stats []schedule.MethodStats, source *claim.Document) (rows []ServeBenchRow, err error) {
	replicas := make([]*shardBenchReplica, 0, shards)
	defer func() {
		for _, rep := range replicas {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_ = rep.srv.Shutdown(ctx)
			cancel()
			rep.ts.Close()
		}
	}()
	urls := make([]string, 0, shards)
	for i := 0; i < shards; i++ {
		rep, err := newShardBenchReplica(seed, cfg, stats, source)
		if err != nil {
			return nil, err
		}
		replicas = append(replicas, rep)
		urls = append(urls, rep.ts.URL)
	}

	coord, err := serve.NewCoordinator(serve.CoordinatorConfig{
		RouteKey: func(docID string, claims []serve.ClaimInput) []byte {
			return shard.Fingerprint("shardbench", docID)
		},
		DocID:          source.ID,
		Replicas:       urls,
		RequestTimeout: 10 * time.Minute,
	})
	if err != nil {
		return nil, err
	}
	coordTS := httptest.NewServer(coord)
	defer func() {
		coordTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = coord.Shutdown(ctx)
		cancel()
	}()

	body, err := shardBenchBody(source)
	if err != nil {
		return nil, err
	}
	// One bounded client for every goroutine: concurrency at the HTTP layer
	// is capped by the transport, and callers past the cap queue for a
	// socket instead of opening one — so replica queues stay shallow and
	// nothing sheds regardless of the client count.
	client := &http.Client{
		Timeout: 10 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        shardBenchMaxConns,
			MaxIdleConnsPerHost: shardBenchMaxConns,
			MaxConnsPerHost:     shardBenchMaxConns,
		},
	}
	defer client.CloseIdleConnections()
	errs := make(chan error, cfg.Clients)
	started := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := strings.Replace(body, `"doc_id":"DOC"`, fmt.Sprintf(`"doc_id":"req-%d"`, i), 1)
			resp, err := client.Post(coordTS.URL+"/v1/verify", "application/json", bytes.NewReader([]byte(payload)))
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", i, resp.StatusCode)
			}
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	wall := time.Since(started)
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	// The aggregate row reads the coordinator's own metrics (end-to-end
	// latency as the caller saw it); per-replica rows read each replica's.
	coordMet, err := fetchMetrics(coordTS.URL)
	if err != nil {
		return nil, err
	}
	agg := ServeBenchRow{
		Shards:    shards,
		Scope:     "aggregate",
		Workers:   1,
		Requests:  cfg.Clients,
		ReqPerSec: float64(cfg.Clients) / wall.Seconds(),
		E2E:       coordMet.LatencyMS,
	}
	for i, rep := range replicas {
		met, err := fetchMetrics(rep.ts.URL)
		if err != nil {
			return nil, err
		}
		row := ServeBenchRow{
			Shards:    shards,
			Scope:     fmt.Sprintf("replica-%d", i+1),
			Workers:   1,
			Requests:  int(met.Requests.Received),
			Claims:    int(met.Verify.Claims),
			ReqPerSec: float64(met.Requests.Received) / wall.Seconds(),
			E2E:       met.LatencyMS,
			Dollars:   met.Verify.Dollars,
		}
		agg.Claims += row.Claims
		agg.Dollars += row.Dollars
		rows = append(rows, row)
	}
	// Aggregate first, then the replicas it sums.
	return append([]ServeBenchRow{agg}, rows...), nil
}

// newShardBenchReplica boots one replica: a throttled single-worker stack
// (provider-latency-bound, like a real replica awaiting an LLM API) behind
// the serving batch loop.
func newShardBenchReplica(seed int64, cfg ShardBenchConfig, stats []schedule.MethodStats, source *claim.Document) (*shardBenchReplica, error) {
	stack, err := NewStackResilient(seed, ResilienceOptions{ThrottleScale: cfg.ThrottleScale})
	if err != nil {
		return nil, err
	}
	stack.Workers = 1
	pipe, err := core.New(core.Config{
		Methods:        stack.Methods,
		Stats:          stats,
		AccuracyTarget: 0.99,
		Seed:           seed,
		Workers:        1,
	})
	if err != nil {
		return nil, err
	}
	backend := serve.BackendFunc(func(batch []*claim.Document) (serve.RunStats, error) {
		stack.Ledger.Reset()
		pipe.VerifyDocumentsParallel(batch, 1)
		return serve.RunStats{
			Claims:  claim.TotalClaims(batch),
			Dollars: stack.Ledger.TotalDollars(),
			Calls:   stack.Ledger.TotalCalls(),
		}, nil
	})
	srv, err := serve.New(serve.Config{
		Backend:        backend,
		DB:             source.Data,
		DocID:          source.ID,
		MaxBatch:       16,
		BatchWait:      -1,
		QueueDepth:     2 * shardBenchMaxConns,
		RequestTimeout: 10 * time.Minute,
	})
	if err != nil {
		return nil, err
	}
	return &shardBenchReplica{srv: srv, ts: httptest.NewServer(srv)}, nil
}

// shardBenchBody renders the per-request payload: the source document's
// first claim only, so the sweep measures serving-tier throughput rather
// than per-document verification depth.
func shardBenchBody(source *claim.Document) (string, error) {
	if len(source.Claims) == 0 {
		return "", fmt.Errorf("source document %s has no claims", source.ID)
	}
	c := source.Claims[0]
	req := serve.VerifyRequest{DocID: "DOC", Claims: []serve.ClaimInput{{
		ID:       c.ID,
		Sentence: c.Sentence,
		Value:    c.Value,
		Context:  c.Context,
	}}}
	raw, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// JSON renders the BENCH_shard.json artifact.
func (r *ShardBenchResult) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// aggregate returns the aggregate row of one topology, if present.
func (r *ShardBenchResult) aggregate(shards int) *ServeBenchRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Shards == shards && row.Scope == "aggregate" {
			return row
		}
	}
	return nil
}

// Render prints the sweep with per-topology speedup over the single-replica
// aggregate.
func (r *ShardBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d concurrent clients, throttle scale %g\n", r.Clients, r.ThrottleScale)
	fmt.Fprintf(&b, "%-7s %-11s %9s %8s %10s %8s %10s %10s %10s\n",
		"shards", "scope", "requests", "claims", "req/s", "speedup", "e2e p50", "e2e p99", "fee($)")
	base := r.aggregate(r.Rows[0].Shards)
	for _, row := range r.Rows {
		speedup := "-"
		if row.Scope == "aggregate" && base != nil && base.ReqPerSec > 0 {
			speedup = fmt.Sprintf("%.2fx", row.ReqPerSec/base.ReqPerSec)
		}
		fmt.Fprintf(&b, "%-7d %-11s %9d %8d %10.1f %8s %9.1fms %9.1fms %10.4f\n",
			row.Shards, row.Scope, row.Requests, row.Claims, row.ReqPerSec, speedup,
			row.E2E.P50, row.E2E.P99, row.Dollars)
	}
	return b.String()
}

// CSV renders one row per (topology, scope).
func (r *ShardBenchResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Shards), row.Scope,
			fmt.Sprintf("%d", row.Requests), fmt.Sprintf("%d", row.Claims),
			f(row.ReqPerSec), f(row.E2E.P50), f(row.E2E.P95), f(row.E2E.P99), f(row.Dollars),
		})
	}
	return csvString([]string{"shards", "scope", "requests", "claims",
		"req_per_sec", "e2e_p50_ms", "e2e_p95_ms", "e2e_p99_ms", "dollars"}, rows)
}
