package exp

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/claim"
	"repro/internal/llm"
	"repro/internal/llm/sim"
	"repro/internal/metrics"
)

// Table2Row is one (dataset, system) cell group of Table 2.
type Table2Row struct {
	Dataset string
	System  string
	// Supported is false where the paper reports "-" (AggChecker baseline
	// on textual claims).
	Supported bool
	Quality   metrics.Quality
	// Dollars is the verification fee of the run (reported for CEDAR in
	// Section 7.2's cost paragraph).
	Dollars float64
}

// Table2Result reproduces Table 2: result quality of CEDAR and the four
// baselines on AggChecker, TabFact, and WikiText.
type Table2Result struct {
	Rows []Table2Row
}

// Systems compared in Table 2, in column order.
var table2Systems = []string{"CEDAR", "AggC", "TAPEX", "P1", "P2"}

// Table2 runs the comparison. The accuracy threshold for CEDAR is the
// paper's default of 99%.
func Table2(seed int64, workers int) (*Table2Result, error) {
	res := &Table2Result{}
	for _, ds := range standardDatasets() {
		evalDocs, err := ds.gen(seed)
		if err != nil {
			return nil, fmt.Errorf("exp: generate %s: %w", ds.name, err)
		}
		profDocs, err := ds.gen(profileSeed(seed))
		if err != nil {
			return nil, err
		}
		if len(profDocs) > 8 {
			profDocs = profDocs[:8]
		}

		// CEDAR at the 99% accuracy threshold.
		stack, err := NewStack(seed)
		if err != nil {
			return nil, err
		}
		stack.Workers = workers
		stats, err := stack.Profile(profDocs)
		if err != nil {
			return nil, err
		}
		cedarDocs := claim.CloneDocuments(evalDocs)
		q, rc, _, err := stack.RunCEDAR(stats, 0.99, cedarDocs)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{
			Dataset: ds.name, System: "CEDAR", Supported: true, Quality: q, Dollars: rc.Dollars,
		})

		// Baselines.
		model35, err := sim.New(llm.ModelGPT35, seed)
		if err != nil {
			return nil, err
		}
		textual := ds.name == "WikiText"
		for _, b := range []baselines.Baseline{
			baselines.AggChecker{},
			baselines.NewTAPEX(seed),
			baselines.NewP1(model35, llm.ModelGPT35),
			baselines.NewP2(model35, llm.ModelGPT35),
		} {
			docs := claim.CloneDocuments(evalDocs)
			baselines.VerifyAll(b, docs)
			name := b.Name()
			if name == "AggChecker" {
				name = "AggC"
			}
			res.Rows = append(res.Rows, Table2Row{
				Dataset:   ds.name,
				System:    name,
				Supported: !(name == "AggC" && textual),
				Quality:   metrics.Evaluate(docs),
			})
		}
	}
	return res, nil
}

// Row returns the row for a (dataset, system) pair, or nil.
func (r *Table2Result) Row(dataset, system string) *Table2Row {
	for i := range r.Rows {
		if r.Rows[i].Dataset == dataset && r.Rows[i].System == system {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render prints the table in the paper's layout: per dataset, rows for
// precision / recall / F1 across the five systems.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Comparing result quality of CEDAR and baselines.\n")
	fmt.Fprintf(&b, "%-12s %-10s %8s %8s %8s %8s %8s\n", "Dataset", "Metric", table2Systems[0], table2Systems[1], table2Systems[2], table2Systems[3], table2Systems[4])
	datasets := []string{"AggChecker", "TabFact", "WikiText"}
	for _, ds := range datasets {
		for _, metric := range []string{"Precision", "Recall", "F1 score"} {
			fmt.Fprintf(&b, "%-12s %-10s", ds, metric)
			for _, sys := range table2Systems {
				row := r.Row(ds, sys)
				if row == nil || !row.Supported {
					fmt.Fprintf(&b, " %8s", "-")
					continue
				}
				var v float64
				switch metric {
				case "Precision":
					v = row.Quality.Precision
				case "Recall":
					v = row.Quality.Recall
				default:
					v = row.Quality.F1
				}
				fmt.Fprintf(&b, " %8s", pct(v))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
