package exp

import (
	"fmt"
	"strings"

	"repro/internal/claim"
	"repro/internal/data"
)

// JoinBenchResult reproduces Section 7.3.2: normalizing the schemas keeps
// F1 roughly unchanged but raises verification costs (the paper measures
// $1.2 -> $3.7), because join queries push more claims to the expensive
// agent stages.
type JoinBenchResult struct {
	FlatF1            float64
	NormalizedF1      float64
	FlatDollars       float64
	NormalizedDollars float64
	Claims            int
}

// JoinBench runs CEDAR at the 99% threshold over the same claims on flat
// and normalized databases.
func JoinBench(seed int64, workers int) (*JoinBenchResult, error) {
	flat, normalized, err := data.JoinBench(seed)
	if err != nil {
		return nil, err
	}
	profFlat, _, err := data.JoinBench(profileSeed(seed))
	if err != nil {
		return nil, err
	}

	stack, err := NewStack(seed)
	if err != nil {
		return nil, err
	}
	stack.Workers = workers
	stats, err := stack.Profile(profFlat)
	if err != nil {
		return nil, err
	}

	res := &JoinBenchResult{Claims: claim.TotalClaims(flat)}
	flatRun := claim.CloneDocuments(flat)
	qf, rcf, _, err := stack.RunCEDAR(stats, 0.99, flatRun)
	if err != nil {
		return nil, err
	}
	res.FlatF1 = qf.F1
	res.FlatDollars = rcf.Dollars

	normRun := claim.CloneDocuments(normalized)
	qn, rcn, _, err := stack.RunCEDAR(stats, 0.99, normRun)
	if err != nil {
		return nil, err
	}
	res.NormalizedF1 = qn.F1
	res.NormalizedDollars = rcn.Dollars
	return res, nil
}

// CostFactor returns the cost multiplication due to normalization.
func (r *JoinBenchResult) CostFactor() float64 {
	if r.FlatDollars == 0 {
		return 0
	}
	return r.NormalizedDollars / r.FlatDollars
}

// Render prints the comparison.
func (r *JoinBenchResult) Render() string {
	var b strings.Builder
	b.WriteString("JoinBench (Section 7.3.2): verification across schema normalization.\n")
	fmt.Fprintf(&b, "%-12s %10s %12s\n", "Schema", "F1", "Cost ($)")
	fmt.Fprintf(&b, "%-12s %10s %12.4f\n", "flat", pct(r.FlatF1), r.FlatDollars)
	fmt.Fprintf(&b, "%-12s %10s %12.4f\n", "normalized", pct(r.NormalizedF1), r.NormalizedDollars)
	fmt.Fprintf(&b, "cost factor: %.2fx over %d claims\n", r.CostFactor(), r.Claims)
	return b.String()
}
