package exp

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// CSV emitters: every experiment result can render its rows/series as CSV
// for plotting the paper's figures with external tools
// (cedar-bench -csv <experiment>).

func csvString(header []string, rows [][]string) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(header)
	_ = w.WriteAll(rows)
	w.Flush()
	return b.String()
}

func f(v float64) string { return fmt.Sprintf("%.6f", v) }

// CSV renders Table 2 as one row per (dataset, system).
func (r *Table2Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset, row.System, fmt.Sprintf("%v", row.Supported),
			f(row.Quality.Precision), f(row.Quality.Recall), f(row.Quality.F1),
			f(row.Dollars),
		})
	}
	return csvString([]string{"dataset", "system", "supported", "precision", "recall", "f1", "dollars"}, rows)
}

// CSV renders the cost report.
func (r *CostsResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset, fmt.Sprintf("%d", row.Claims), f(row.Dollars),
			fmt.Sprintf("%d", row.Calls), f(row.F1),
		})
	}
	return csvString([]string{"dataset", "claims", "dollars", "calls", "f1"}, rows)
}

// CSV renders the Figure 5 series (both axes per point).
func (r *Fig5Result) CSV() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Label, fmt.Sprintf("%v", p.MultiStage), f(p.Threshold),
			f(p.F1), f(p.Dollars), f(p.ThroughputPerHour),
		})
	}
	return csvString([]string{"label", "multistage", "threshold", "f1", "dollars", "claims_per_hour"}, rows)
}

// CSV renders the Figure 6 per-document bars.
func (r *Fig6Result) CSV() string {
	rows := make([][]string, 0, len(r.Docs))
	for _, d := range r.Docs {
		rows = append(rows, []string{d.DocID, f(d.Aligned), f(d.Converted), f(d.DeltaF1)})
	}
	return csvString([]string{"document", "aligned_f1", "converted_f1", "delta_f1"}, rows)
}

// CSV renders Table 3.
func (r *Table3Result) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset, fmt.Sprintf("%d", row.Queries),
			f(row.AvgJoins), fmt.Sprintf("%d", row.MaxJoins),
			f(row.AvgGroupBy), fmt.Sprintf("%d", row.MaxGroupBy),
			f(row.AvgSubQ), fmt.Sprintf("%d", row.MaxSubQ),
			f(row.AvgAgg), fmt.Sprintf("%d", row.MaxAgg),
			f(row.AvgCols), fmt.Sprintf("%d", row.MaxCols),
		})
	}
	return csvString([]string{
		"dataset", "queries", "avg_joins", "max_joins", "avg_groupby", "max_groupby",
		"avg_subq", "max_subq", "avg_agg", "max_agg", "avg_cols", "max_cols",
	}, rows)
}

// CSV renders the JoinBench comparison.
func (r *JoinBenchResult) CSV() string {
	return csvString(
		[]string{"schema", "f1", "dollars"},
		[][]string{
			{"flat", f(r.FlatF1), f(r.FlatDollars)},
			{"normalized", f(r.NormalizedF1), f(r.NormalizedDollars)},
		})
}

// CSV renders the Figure 7 scatter points.
func (r *Fig7Result) CSV() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.ProfileDoc, p.ProfileDomain, p.EvalDomain,
			f(p.CostOverhead), f(p.F1Loss), fmt.Sprintf("%v", p.CrossDomain),
		})
	}
	return csvString([]string{"profile_doc", "profile_domain", "eval_domain", "cost_overhead", "f1_loss", "cross_domain"}, rows)
}

// CSV renders the model-fit sweep.
func (r *ModelFitResult) CSV() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{f(p.Threshold), f(p.Modeled), f(p.Realized), p.Schedule})
	}
	return csvString([]string{"threshold", "modeled", "realized", "schedule"}, rows)
}
