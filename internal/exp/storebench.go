package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/claim"
	"repro/internal/data"
	"repro/internal/store"
)

// StoreBenchRow reports one phase of the persistent-store benchmark: the
// cold run pays for every model invocation and populates the store, the
// warm run rebuilds the whole stack over the same directory and answers
// persisted work from disk.
type StoreBenchRow struct {
	Phase         string
	Dollars       float64
	Calls         int
	PersistedHits int64
	// HitRate is the fraction of the phase's temperature-0 invocations
	// answered from the persistent store instead of a (billed) model call.
	HitRate  float64
	SimWall  time.Duration
	RealWall time.Duration
	F1       float64
}

// StoreBenchResult reproduces the cold-vs-warm table of DESIGN.md §11 /
// EXPERIMENTS.md.
type StoreBenchResult struct {
	Dataset string
	Rows    []StoreBenchRow
	// VerdictsMatch confirms the store is a pure accelerator: the warm run's
	// per-claim results are identical to the cold run's.
	VerdictsMatch bool
}

// StoreBench measures what -cache-dir buys across process restarts: it runs
// the AggChecker evaluation cold (empty store) and warm (fresh stack, same
// directory) and reports fees, calls, persisted-hit rate, and wall time for
// each phase. The warm phase re-profiles at full price — profiling traffic
// is anonymous and never reads the store (DESIGN.md §11) — so the schedule
// is derived identically in both phases; only the evaluation run is metered
// here, mirroring the other experiments.
func StoreBench(seed int64, workers int) (*StoreBenchResult, error) {
	dir, err := os.MkdirTemp("", "cedar-storebench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	res := &StoreBenchResult{Dataset: "AggChecker", VerdictsMatch: true}
	var coldResults []claim.Result
	for _, phase := range []string{"cold", "warm"} {
		st, err := store.Open(dir)
		if err != nil {
			return nil, err
		}
		ro := DefaultResilience
		ro.Store = st
		stack, err := NewStackResilient(seed, ro)
		if err != nil {
			st.Close()
			return nil, err
		}
		stack.Workers = workers
		evalDocs, err := data.AggChecker(seed)
		if err != nil {
			st.Close()
			return nil, err
		}
		profDocs, err := data.AggChecker(profileSeed(seed))
		if err != nil {
			st.Close()
			return nil, err
		}
		if len(profDocs) > 8 {
			profDocs = profDocs[:8]
		}
		stats, err := stack.Profile(profDocs)
		if err != nil {
			st.Close()
			return nil, err
		}
		docs := claim.CloneDocuments(evalDocs)
		preHits := stack.PersistedHits()
		start := time.Now()
		q, rc, _, err := stack.RunCEDAR(stats, 0.99, docs)
		realWall := time.Since(start)
		if err != nil {
			st.Close()
			return nil, err
		}
		hits := stack.PersistedHits() - preHits
		if err := st.Close(); err != nil {
			return nil, err
		}

		var results []claim.Result
		for _, d := range docs {
			for _, c := range d.Claims {
				results = append(results, c.Result)
			}
		}
		switch phase {
		case "cold":
			coldResults = results
		case "warm":
			if len(results) != len(coldResults) {
				res.VerdictsMatch = false
			} else {
				for i := range results {
					if results[i] != coldResults[i] {
						res.VerdictsMatch = false
						break
					}
				}
			}
		}

		rate := 0.0
		if total := hits + int64(rc.Calls); total > 0 {
			rate = float64(hits) / float64(total)
		}
		res.Rows = append(res.Rows, StoreBenchRow{
			Phase:         phase,
			Dollars:       rc.Dollars,
			Calls:         rc.Calls,
			PersistedHits: hits,
			HitRate:       rate,
			SimWall:       rc.Wall,
			RealWall:      realWall,
			F1:            q.F1,
		})
	}
	return res, nil
}

// Render prints the cold-vs-warm comparison.
func (r *StoreBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Persistent result store (-cache-dir), cold vs warm on %s (DESIGN.md §11).\n", r.Dataset)
	fmt.Fprintf(&b, "%-6s %10s %8s %10s %9s %12s %12s %8s\n",
		"Phase", "Cost ($)", "Calls", "PersHits", "HitRate", "SimWall", "RealWall", "F1")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6s %10.4f %8d %10d %9s %12v %12v %8s\n",
			row.Phase, row.Dollars, row.Calls, row.PersistedHits, pct(row.HitRate),
			row.SimWall.Round(time.Millisecond), row.RealWall.Round(time.Millisecond), pct(row.F1))
	}
	if r.VerdictsMatch {
		b.WriteString("verdicts: warm run bit-identical to cold\n")
	} else {
		b.WriteString("verdicts: WARM RUN DIVERGED FROM COLD\n")
	}
	return b.String()
}

// CSV renders one row per phase.
func (r *StoreBenchResult) CSV() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Phase, f(row.Dollars), fmt.Sprintf("%d", row.Calls),
			fmt.Sprintf("%d", row.PersistedHits), f(row.HitRate),
			fmt.Sprintf("%d", row.SimWall.Milliseconds()),
			fmt.Sprintf("%d", row.RealWall.Milliseconds()),
			f(row.F1), fmt.Sprintf("%v", r.VerdictsMatch),
		})
	}
	return csvString([]string{"phase", "dollars", "calls", "persisted_hits", "hit_rate",
		"sim_wall_ms", "real_wall_ms", "f1", "verdicts_match"}, rows)
}

// JSON renders the result for BENCH_store.json (cedar-bench -store-json).
func (r *StoreBenchResult) JSON() ([]byte, error) {
	type row struct {
		Phase         string  `json:"phase"`
		Dollars       float64 `json:"dollars"`
		Calls         int     `json:"calls"`
		PersistedHits int64   `json:"persisted_hits"`
		HitRate       float64 `json:"hit_rate"`
		SimWallMS     int64   `json:"sim_wall_ms"`
		RealWallMS    int64   `json:"real_wall_ms"`
		F1            float64 `json:"f1"`
	}
	out := struct {
		Experiment    string `json:"experiment"`
		Dataset       string `json:"dataset"`
		VerdictsMatch bool   `json:"verdicts_match"`
		Rows          []row  `json:"rows"`
	}{Experiment: "storebench", Dataset: r.Dataset, VerdictsMatch: r.VerdictsMatch}
	for _, rw := range r.Rows {
		out.Rows = append(out.Rows, row{
			Phase: rw.Phase, Dollars: rw.Dollars, Calls: rw.Calls,
			PersistedHits: rw.PersistedHits, HitRate: rw.HitRate,
			SimWallMS: rw.SimWall.Milliseconds(), RealWallMS: rw.RealWall.Milliseconds(),
			F1: rw.F1,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
