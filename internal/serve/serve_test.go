package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/claim"
	"repro/internal/sqldb"
)

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// gatedBackend is a fake Backend that marks every claim verified-correct and
// can block inside VerifyDocuments until released, letting tests hold a
// micro-batch in flight while they probe admission behavior.
type gatedBackend struct {
	mu      sync.Mutex
	batches [][]*claim.Document
	// entered receives one signal per VerifyDocuments call, as it starts.
	entered chan struct{}
	// gate, when non-nil, blocks each VerifyDocuments call until it can
	// receive (or the channel closes).
	gate chan struct{}
}

func (b *gatedBackend) VerifyDocuments(docs []*claim.Document) (RunStats, error) {
	if b.entered != nil {
		b.entered <- struct{}{}
	}
	if b.gate != nil {
		<-b.gate
	}
	b.mu.Lock()
	b.batches = append(b.batches, docs)
	b.mu.Unlock()
	n := 0
	for _, d := range docs {
		for _, c := range d.Claims {
			c.Result.Verified = true
			c.Result.Correct = true
			c.Result.Method = "fake"
			c.Result.Query = "SELECT 1"
			n++
		}
	}
	return RunStats{Claims: n, Dollars: 0.01 * float64(n), Calls: n}, nil
}

func (b *gatedBackend) batchSizes() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	sizes := make([]int, len(b.batches))
	for i, docs := range b.batches {
		sizes[i] = len(docs)
	}
	return sizes
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = sqldb.NewDatabase("testdb")
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

func postVerify(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/verify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, dst any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

func errorCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	var eb ErrorBody
	decodeInto(t, resp, &eb)
	return eb.Error.Code
}

const claimBody = `{"claims":[{"sentence":"The answer is 42.","value":"42"}]}`

func TestVerifySingleDocument(t *testing.T) {
	be := &gatedBackend{}
	_, ts := newTestServer(t, Config{Backend: be, BatchWait: -1})
	resp := postVerify(t, ts.URL, claimBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out VerifyResponse
	decodeInto(t, resp, &out)
	// Defaults match the cedar CLI: doc_id from the database name, claim IDs
	// from position.
	if out.DocID != "testdb" {
		t.Errorf("doc_id = %q, want testdb", out.DocID)
	}
	if len(out.Claims) != 1 || out.Claims[0].ID != "c1" {
		t.Fatalf("claims = %+v, want one claim with ID c1", out.Claims)
	}
	if !out.Claims[0].Verified || !out.Claims[0].Correct || out.Claims[0].Method != "fake" {
		t.Errorf("claim result = %+v, want verified correct via fake", out.Claims[0])
	}
	if out.Batch.Docs != 1 || out.Batch.Claims != 1 || out.Batch.Calls != 1 {
		t.Errorf("batch stats = %+v, want 1 doc / 1 claim / 1 call", out.Batch)
	}
}

func TestVerifyBatchSharesOneRun(t *testing.T) {
	be := &gatedBackend{}
	_, ts := newTestServer(t, Config{Backend: be, BatchWait: -1})
	body := `{"documents":[
		{"doc_id":"a","claims":[{"sentence":"x is 1.","value":"1"}]},
		{"doc_id":"b","claims":[{"id":"k","sentence":"y is 2.","value":"2"},{"sentence":"z is 3.","value":"3"}]}]}`
	resp, err := http.Post(ts.URL+"/v1/verify/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out BatchResponse
	decodeInto(t, resp, &out)
	if len(out.Documents) != 2 || out.Documents[0].DocID != "a" || out.Documents[1].DocID != "b" {
		t.Fatalf("documents = %+v", out.Documents)
	}
	if out.Documents[1].Claims[0].ID != "k" || out.Documents[1].Claims[1].ID != "c2" {
		t.Errorf("claim IDs = %+v, want explicit k then default c2", out.Documents[1].Claims)
	}
	if out.Batch.Docs != 2 || out.Batch.Claims != 3 {
		t.Errorf("batch stats = %+v, want 2 docs / 3 claims", out.Batch)
	}
	if sizes := be.batchSizes(); len(sizes) != 1 || sizes[0] != 2 {
		t.Errorf("backend batches = %v, want one batch of 2 documents", sizes)
	}
}

// Concurrent requests arriving while a batch is in flight coalesce into one
// backend run.
func TestMicroBatchCoalescing(t *testing.T) {
	be := &gatedBackend{entered: make(chan struct{}, 8), gate: make(chan struct{})}
	srv, ts := newTestServer(t, Config{Backend: be, MaxBatch: 8, BatchWait: 50 * time.Millisecond})

	results := make(chan int, 4)
	post := func() {
		resp := postVerify(t, ts.URL, claimBody)
		resp.Body.Close()
		results <- resp.StatusCode
	}
	// First request starts a batch; the backend blocks on the gate.
	go post()
	<-be.entered
	// Three more requests queue while the first batch is in flight.
	for i := 0; i < 3; i++ {
		go post()
	}
	waitForQueue(t, srv, 3)
	// Release both batches.
	close(be.gate)
	<-be.entered
	for i := 0; i < 4; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("request status = %d, want 200", code)
		}
	}
	if sizes := be.batchSizes(); len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 3 {
		t.Errorf("backend batches = %v, want [1 3] (three queued requests coalesced)", sizes)
	}
}

func TestAdmissionControlSheds429(t *testing.T) {
	be := &gatedBackend{entered: make(chan struct{}, 8), gate: make(chan struct{})}
	defer close(be.gate)
	srv, ts := newTestServer(t, Config{
		Backend: be, MaxBatch: 1, QueueDepth: 1, RetryAfter: 7 * time.Second,
	})

	codes := make(chan int, 2)
	post := func() {
		resp := postVerify(t, ts.URL, claimBody)
		resp.Body.Close()
		codes <- resp.StatusCode
	}
	// One request in flight (backend blocked), one filling the queue.
	go post()
	<-be.entered
	go post()
	waitForQueue(t, srv, 1)

	// The queue is full: the next request sheds deterministically.
	resp := postVerify(t, ts.URL, claimBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q (configured hint)", got, "7")
	}
	if code := errorCode(t, resp); code != CodeOverloaded {
		t.Errorf("error code = %q, want %q", code, CodeOverloaded)
	}
}

func TestGracefulDrain(t *testing.T) {
	be := &gatedBackend{entered: make(chan struct{}, 8), gate: make(chan struct{})}
	srv, ts := newTestServer(t, Config{Backend: be, BatchWait: -1})

	// One request in flight when the drain starts.
	inflight := make(chan *http.Response, 1)
	go func() {
		resp := postVerify(t, ts.URL, claimBody)
		inflight <- resp
	}()
	<-be.entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	waitFor(t, srv.Draining, "server to start draining")

	// New work is rejected with 503 while draining; health flips too.
	resp := postVerify(t, ts.URL, claimBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status during drain = %d, want 503", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeDraining {
		t.Errorf("error code = %q, want %q", code, CodeDraining)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", hz.StatusCode)
	}

	// The in-flight request still completes with its verdicts.
	close(be.gate)
	r := <-inflight
	if r.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", r.StatusCode)
	}
	var out VerifyResponse
	decodeInto(t, r, &out)
	if len(out.Claims) != 1 || !out.Claims[0].Verified {
		t.Errorf("in-flight claims = %+v, want the verified verdict", out.Claims)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Shutdown is idempotent.
	ctx, cancel := contextWithTimeout(time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// Expired deadlines answer 504 on both paths: a request whose batch is in
// flight when its deadline passes loses only its response (the work is
// billed), while a request still queued is dropped before any claim is
// attempted.
func TestRequestDeadline504(t *testing.T) {
	be := &gatedBackend{entered: make(chan struct{}, 8), gate: make(chan struct{})}
	_, ts := newTestServer(t, Config{
		Backend: be, MaxBatch: 1, BatchWait: -1, RequestTimeout: 30 * time.Millisecond,
	})
	codes := make(chan int, 1)
	go func() {
		resp := postVerify(t, ts.URL, claimBody)
		resp.Body.Close()
		codes <- resp.StatusCode
	}()
	<-be.entered // first batch blocked on the gate, its 30ms deadline ticking
	// The second request queues behind it and expires before its batch starts.
	resp := postVerify(t, ts.URL, claimBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued request status = %d, want 504", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeDeadlineExceeded {
		t.Errorf("error code = %q, want %q", code, CodeDeadlineExceeded)
	}
	// By now the first request's deadline has passed too — mid-batch, so its
	// handler also answers 504 even though the batch still completes.
	if code := <-codes; code != http.StatusGatewayTimeout {
		t.Fatalf("in-flight request status = %d, want 504", code)
	}
	close(be.gate)
	// Only the first request's document ever reaches the backend: the
	// expired queued job is dropped at batch start.
	waitFor(t, func() bool { return len(be.batchSizes()) >= 1 }, "first batch to record")
	total := 0
	for _, n := range be.batchSizes() {
		total += n
	}
	if total != 1 {
		t.Errorf("backend verified %d documents, want 1 (expired queued job dropped)", total)
	}
}

func TestBadRequests(t *testing.T) {
	be := &gatedBackend{}
	_, ts := newTestServer(t, Config{Backend: be, BatchWait: -1})
	cases := []struct {
		name, path, body string
	}{
		{"malformed json", "/v1/verify", `{"claims":`},
		{"unknown field", "/v1/verify", `{"claimz":[]}`},
		{"no claims", "/v1/verify", `{"claims":[]}`},
		{"value not in sentence", "/v1/verify", `{"claims":[{"sentence":"The answer is 42.","value":"7"}]}`},
		{"empty batch", "/v1/verify/batch", `{"documents":[]}`},
		{"bad batch document", "/v1/verify/batch", `{"documents":[{"doc_id":"a","claims":[]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if code := errorCode(t, resp); code != CodeBadRequest {
				t.Errorf("error code = %q, want %q", code, CodeBadRequest)
			}
		})
	}
	if sizes := be.batchSizes(); len(sizes) != 0 {
		t.Errorf("backend ran %v batches for bad requests, want none", sizes)
	}
}

func TestStatusAndMetrics(t *testing.T) {
	be := &gatedBackend{}
	_, ts := newTestServer(t, Config{Backend: be, BatchWait: -1, Schedule: "sp->agent"})
	for i := 0; i < 3; i++ {
		resp := postVerify(t, ts.URL, claimBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	decodeInto(t, resp, &st)
	if st.State != "serving" || st.Schedule != "sp->agent" || st.QueueCap != 64 || st.MaxBatch != 8 {
		t.Errorf("status = %+v", st)
	}
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var met MetricsResponse
	decodeInto(t, mresp, &met)
	if met.Requests.Received != 3 {
		t.Errorf("requests received = %d, want 3", met.Requests.Received)
	}
	if met.Verify.Docs != 3 || met.Verify.Claims != 3 || met.Verify.Calls != 3 {
		t.Errorf("verify counters = %+v, want 3 docs/claims/calls", met.Verify)
	}
	if met.LatencyMS.N != 3 || met.LatencyMS.P99 < met.LatencyMS.P50 {
		t.Errorf("latency quantiles = %+v", met.LatencyMS)
	}
	if met.Resilience != nil {
		t.Errorf("resilience section present without a snapshot source: %+v", met.Resilience)
	}
}

func TestBackendErrorAnswers500(t *testing.T) {
	be := BackendFunc(func(docs []*claim.Document) (RunStats, error) {
		return RunStats{}, fmt.Errorf("model meltdown")
	})
	_, ts := newTestServer(t, Config{Backend: be, BatchWait: -1})
	resp := postVerify(t, ts.URL, claimBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeInternal {
		t.Errorf("error code = %q, want %q", code, CodeInternal)
	}
}

// waitForQueue polls until the server's queue holds n requests.
func waitForQueue(t *testing.T, srv *Server, n int) {
	t.Helper()
	waitFor(t, func() bool { return srv.QueueDepth() >= n }, fmt.Sprintf("queue depth %d", n))
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
