package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/claim"
	"repro/internal/sqldb"
)

// countingBackend tags claims like tagBackend and additionally counts how
// many claims and dollars it has booked, so tests can prove work ran exactly
// once.
type countingBackend struct {
	tag     string
	mu      sync.Mutex
	claims  int
	dollars float64
}

func (b *countingBackend) VerifyDocuments(docs []*claim.Document) (RunStats, error) {
	n := 0
	for _, d := range docs {
		for _, c := range d.Claims {
			c.Result.Verified = true
			c.Result.Correct = true
			c.Result.Method = b.tag
			n++
		}
	}
	st := RunStats{Claims: n, Dollars: 0.01 * float64(n), Calls: n}
	b.mu.Lock()
	b.claims += n
	b.dollars += st.Dollars
	b.mu.Unlock()
	return st, nil
}

func (b *countingBackend) totals() (int, float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.claims, b.dollars
}

// A coordinator stream routes each document to its ring owner and relays the
// verdict events back in arrival order, with stream-global indices and
// summed summary.
func TestCoordinatorStreamRoutesAndMergesInOrder(t *testing.T) {
	a := newReplica(t, Config{Backend: tagBackend("replica-a"), BatchWait: -1})
	b := newReplica(t, Config{Backend: tagBackend("replica-b"), BatchWait: -1})
	c, ts := newTestCoordinator(t, CoordinatorConfig{}, a, b)
	tags := map[string]string{a.ts.URL: "replica-a", b.ts.URL: "replica-b"}

	docA, docB := docOwnedBy(t, c, a.ts.URL), docOwnedBy(t, c, b.ts.URL)
	ids := []string{docA, docB, docA + "-x"}
	var lines []string
	for _, id := range ids {
		lines = append(lines, streamDocLine(id, "1"))
	}
	resp := postStream(t, ts.URL, strings.Join(lines, "\n")+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	verdicts, errs, sum := splitEvents(t, readEvents(t, resp))
	if len(errs) != 0 || len(verdicts) != 3 {
		t.Fatalf("stream = %d verdicts %d errors, want 3/0: %+v", len(verdicts), len(errs), errs)
	}
	for i, id := range ids {
		ev := verdicts[i]
		if ev.DocID != id || ev.Index != i {
			t.Errorf("verdict[%d] = doc %q index %d, want %q/%d (arrival order)", i, ev.DocID, ev.Index, id, i)
		}
		owner, _ := c.Owner(testRouteKey(id, nil))
		if ev.Claim == nil || ev.Claim.Method != tags[owner] {
			t.Errorf("doc %q served by %v, want owner %q", id, ev.Claim, tags[owner])
		}
	}
	// Calls and fees are exact: 1 call at $0.01 per claim, booked once even
	// when two relayed documents coalesce into one replica micro-batch.
	if sum.Docs != 3 || sum.Claims != 3 || sum.Calls != 3 ||
		sum.Dollars < 0.03-1e-9 || sum.Dollars > 0.03+1e-9 {
		t.Errorf("summary = %+v, want docs=3 claims=3 calls=3 dollars=0.03", sum)
	}
}

// The coordinator merges every replica's review queue into one
// deterministically ranked list, and broadcasts resolutions so the whole
// tier agrees with the human — idempotently.
func TestCoordinatorReviewFanoutAndResolve(t *testing.T) {
	a := newReplica(t, Config{Backend: BackendFunc(reviewBackend), BatchWait: -1})
	b := newReplica(t, Config{Backend: BackendFunc(reviewBackend), BatchWait: -1})
	c, ts := newTestCoordinator(t, CoordinatorConfig{}, a, b)

	docA, docB := docOwnedBy(t, c, a.ts.URL), docOwnedBy(t, c, b.ts.URL)
	body := streamDocLine(docA, "fail") + "\n" + streamDocLine(docB, "3") + "\n"
	verdicts, errs, sum := splitEvents(t, readEvents(t, postStream(t, ts.URL, body)))
	if len(errs) != 0 || len(verdicts) != 2 || sum.Reviewed != 2 {
		t.Fatalf("stream = %+v errors %+v reviewed %d, want 2 reviewed verdicts", verdicts, errs, sum.Reviewed)
	}
	if verdicts[0].ReviewID == "" || verdicts[1].ReviewID == "" {
		t.Fatal("review IDs not preserved through the coordinator relay")
	}

	// Merged list: the failed claim (disagreement 1.0) outranks the
	// three-attempt claim (2/3), whichever replica holds it.
	resp, err := http.Get(ts.URL + "/v1/review")
	if err != nil {
		t.Fatal(err)
	}
	var list ReviewListResponse
	decodeInto(t, resp, &list)
	if len(list.Items) != 2 || list.Stats.Depth != 2 {
		t.Fatalf("merged review list = %+v, want both replicas' items", list)
	}
	if list.Items[0].ID != verdicts[0].ReviewID || list.Items[0].Disagreement != 1 {
		t.Fatalf("merged head = %+v, want the failed claim first", list.Items[0])
	}

	// Resolution through the coordinator reaches the replica that holds the
	// item; resolving again is idempotent; unknown IDs 404.
	id := verdicts[1].ReviewID
	r1, err := http.Post(ts.URL+"/v1/review/"+id, "application/json",
		strings.NewReader(`{"resolution":"confirmed","note":"lgtm"}`))
	if err != nil {
		t.Fatal(err)
	}
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("resolve via coordinator: status %d", r1.StatusCode)
	}
	var resolved map[string]any
	decodeInto(t, r1, &resolved)
	if resolved["resolution"] != "confirmed" {
		t.Fatalf("resolved = %+v", resolved)
	}
	r2, err := http.Post(ts.URL+"/v1/review/"+id, "application/json",
		strings.NewReader(`{"resolution":"overturned"}`))
	if err != nil {
		t.Fatal(err)
	}
	var again map[string]any
	decodeInto(t, r2, &again)
	if again["resolution"] != "confirmed" {
		t.Fatalf("re-resolve flipped the verdict: %+v", again)
	}
	r3, err := http.Post(ts.URL+"/v1/review/ffffffffffffffff", "application/json",
		strings.NewReader(`{"resolution":"confirmed"}`))
	if err != nil {
		t.Fatal(err)
	}
	if r3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id via coordinator: status %d", r3.StatusCode)
	}
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/review")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &list)
	if len(list.Items) != 1 || list.Stats.Resolved != 1 {
		t.Fatalf("after resolve: %+v, want one pending one resolved", list)
	}
}

// killingReplicaServer wraps a real replica Server: verification requests
// run to completion against the inner backend — claims verified, fees booked
// — and then the connection dies without a byte of response. This is the
// worst post-delivery failure: work done, answer lost.
func killingReplicaServer(t *testing.T, inner *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			inner.ServeHTTP(w, r) // healthz etc. answer normally
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("killing replica read: %v", err)
			return
		}
		req := httptest.NewRequest(r.Method, r.URL.String(), strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, req) // the work happens — and is billed
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("killing replica: no hijacker")
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close() // die after delivery, before any response
	}))
	t.Cleanup(ts.Close)
	return ts
}

// The duplicate-work regression, end to end at the claims-and-fees level: a
// replica that dies after receiving (and running) a streamed request must
// NOT be failed over — the coordinator reports replica_lost and the ring
// successor never re-executes the claims, so fees are booked exactly once.
func TestCoordinatorStreamNoDuplicateWorkAfterReplicaLoss(t *testing.T) {
	killerBackend := &countingBackend{tag: "killer"}
	killerSrv, err := New(Config{Backend: killerBackend, DB: sqldb.NewDatabase("testdb"), BatchWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = killerSrv.Shutdown(ctx)
	})
	killerTS := killingReplicaServer(t, killerSrv)

	successorBackend := &countingBackend{tag: "successor"}
	successor := newReplica(t, Config{Backend: successorBackend, BatchWait: -1})

	c, ts := newTestCoordinator(t, CoordinatorConfig{Attempts: 3},
		&replicaFixture{srv: killerSrv, ts: killerTS}, successor)

	docID := docOwnedBy(t, c, killerTS.URL)
	resp := postStream(t, ts.URL, streamDocLine(docID, "1")+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (stream errors are in-band)", resp.StatusCode)
	}
	verdicts, errs, sum := splitEvents(t, readEvents(t, resp))
	if len(verdicts) != 0 || sum.Docs != 0 {
		t.Fatalf("got verdicts %+v summary %+v from a lost replica", verdicts, sum)
	}
	if len(errs) != 1 || errs[0].Error == nil || errs[0].Error.Code != CodeReplicaLost {
		t.Fatalf("errors = %+v, want one replica_lost", errs)
	}

	// The claims ran exactly once, on the replica that died; the successor
	// never saw them and no fee was booked twice.
	kc, kd := killerBackend.totals()
	sc, sd := successorBackend.totals()
	if kc != 1 {
		t.Errorf("killer backend verified %d claims, want 1 (work delivered before death)", kc)
	}
	if sc != 0 || sd != 0 {
		t.Errorf("successor backend verified %d claims ($%v): post-delivery failure was retried", sc, sd)
	}
	if want := 0.01; kd != want {
		t.Errorf("fees booked = $%v, want $%v exactly once", kd, want)
	}

	// The unary route refuses the same retry, with the HTTP-level 502.
	uresp := postVerify(t, ts.URL, verifyBody(docID))
	if uresp.StatusCode != http.StatusBadGateway {
		t.Fatalf("unary via lost replica: status %d, want 502", uresp.StatusCode)
	}
	if code := errorCode(t, uresp); code != CodeReplicaLost {
		t.Fatalf("unary error code = %q, want %q", code, CodeReplicaLost)
	}
	if kc, _ := killerBackend.totals(); kc != 2 {
		t.Errorf("killer backend after unary = %d claims, want 2", kc)
	}
	if sc, _ := successorBackend.totals(); sc != 0 {
		t.Errorf("successor re-executed the unary claims: %d", sc)
	}
}

// A pre-delivery failure still fails over: a replica that is simply down
// routes around, and the stream completes on the successor.
func TestCoordinatorStreamFailsOverDeadReplica(t *testing.T) {
	deadTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok") // healthy at registration...
	}))
	successorBackend := &countingBackend{tag: "successor"}
	successor := newReplica(t, Config{Backend: successorBackend, BatchWait: -1})
	c, ts := newTestCoordinator(t, CoordinatorConfig{Attempts: 3},
		&replicaFixture{srv: successor.srv, ts: deadTS}, successor)

	docID := docOwnedBy(t, c, deadTS.URL)
	deadTS.Close() // ...but gone before the request: connection refused, nothing delivered
	resp := postStream(t, ts.URL, streamDocLine(docID, "1")+"\n")
	verdicts, errs, sum := splitEvents(t, readEvents(t, resp))
	if len(errs) != 0 || len(verdicts) != 1 || sum.Docs != 1 {
		t.Fatalf("failover stream = %d verdicts %+v, want the successor's verdict", len(verdicts), errs)
	}
	if verdicts[0].Claim.Method != "successor" {
		t.Errorf("served by %q, want successor", verdicts[0].Claim.Method)
	}
	if sc, _ := successorBackend.totals(); sc != 1 {
		t.Errorf("successor verified %d claims, want 1", sc)
	}
}
