package serve

import (
	"context"
	"time"

	"repro/internal/claim"
	"repro/internal/trace"
)

// job is one admitted request waiting for a micro-batch slot: the
// request's documents, its context (deadline + client disconnect), and the
// channel its batch outcome is delivered on.
type job struct {
	docs []*claim.Document
	ctx  context.Context
	// done receives exactly one jobResult; buffered so the batch loop never
	// blocks on a handler that already gave up.
	done chan jobResult
}

// jobResult is the batch outcome delivered to one job's handler. The job's
// documents are annotated in place by the backend; the handler reads them
// only after receiving this (the channel send orders the memory accesses).
type jobResult struct {
	stats BatchStats
	// batch numbers the micro-batch run the job rode in (1-based; zero on
	// error results). Stats cover the whole batch, so a consumer holding
	// several jobs — the stream handler — sums fee totals once per distinct
	// batch number instead of once per job.
	batch int64
	err   error
}

func newJob(ctx context.Context, docs []*claim.Document) *job {
	return &job{docs: docs, ctx: ctx, done: make(chan jobResult, 1)}
}

// batchLoop is the single goroutine that converts the admitted-request
// queue into pipeline runs. One loop — not one per batch — so runs are
// serialized exactly as the run-scoped ledger and tracer require, and so a
// closed queue drains in admission order before the loop exits.
func (s *Server) batchLoop() {
	defer close(s.loopDone)
	for {
		j, ok := <-s.queue
		if !ok {
			return
		}
		batch := []*job{j}
		// Linger for BatchWait to coalesce concurrent arrivals, but never
		// beyond MaxBatch documents. A closed queue ends the linger early;
		// buffered jobs still arrive before ok turns false, so drain order
		// is preserved.
		if s.cfg.BatchWait > 0 {
			timer := time.NewTimer(s.cfg.BatchWait)
		gather:
			for s.batchDocs(batch) < s.cfg.MaxBatch {
				select {
				case nj, ok := <-s.queue:
					if !ok {
						break gather
					}
					batch = append(batch, nj)
				case <-timer.C:
					break gather
				}
			}
			timer.Stop()
		} else {
			// Immediate mode: take only what is already queued.
			for s.batchDocs(batch) < s.cfg.MaxBatch {
				select {
				case nj, ok := <-s.queue:
					if !ok {
						goto run
					}
					batch = append(batch, nj)
				default:
					goto run
				}
			}
		}
	run:
		s.runBatch(batch)
	}
}

// batchDocs counts the documents gathered so far; the batch size limit is
// in documents (the pipeline's unit of work), not requests.
func (s *Server) batchDocs(batch []*job) int {
	n := 0
	for _, j := range batch {
		n += len(j.docs)
	}
	return n
}

// runBatch verifies one micro-batch: jobs whose context already expired are
// dropped (their claims are never attempted, so nothing is billed for
// them), the rest share a single backend run, and every job is answered
// with the batch totals.
func (s *Server) runBatch(batch []*job) {
	live := batch[:0]
	var docs []*claim.Document
	for _, j := range batch {
		if err := j.ctx.Err(); err != nil {
			j.done <- jobResult{err: err}
			continue
		}
		live = append(live, j)
		docs = append(docs, j.docs...)
	}
	if len(docs) == 0 {
		return
	}
	stats, err := s.cfg.Backend.VerifyDocuments(docs)
	bs := BatchStats{Docs: len(docs), Claims: stats.Claims, Dollars: stats.Dollars, Calls: stats.Calls}
	if err == nil {
		s.met.recordBatch(bs)
		s.harvestTrace()
	}
	s.batchSeq++ // only written here, on the single batch-loop goroutine
	for _, j := range live {
		j.done <- jobResult{stats: bs, batch: s.batchSeq, err: err}
	}
}

// harvestTrace folds the just-finished run's spans into the cumulative
// per-method metrics. The backend resets the tracer at each run start, so
// the spans visible here belong to exactly one micro-batch.
func (s *Server) harvestTrace() {
	if !s.cfg.Tracer.Enabled() {
		return
	}
	for _, sp := range s.cfg.Tracer.Spans() {
		if sp.Kind != trace.KindAttempt {
			continue
		}
		s.met.recordAttempt(sp)
	}
}
