package serve

import (
	"sort"
	"sync"
	"time"

	"repro/internal/trace"
)

// latencyWindowSize bounds the sliding windows behind the /v1/metrics
// quantiles. Counters and fee totals are exact and cumulative; quantiles
// cover the most recent window of samples so a long-lived server reports
// current behavior, not its whole history, at bounded memory.
const latencyWindowSize = 4096

// serveMetrics accumulates the server's operational counters. All methods
// are safe for concurrent use.
type serveMetrics struct {
	mu sync.Mutex

	requests         int64 // verification requests received (both routes)
	rejectedDraining int64
	shedOverload     int64
	deadlineExpired  int64
	badRequests      int64
	internalErrors   int64

	batches int64
	docs    int64
	claims  int64
	dollars float64
	calls   int64

	// streams counts POST /v1/verify/stream sessions; streamDocs the
	// documents answered through them (also counted in docs above — streamed
	// documents ride ordinary micro-batches).
	streams    int64
	streamDocs int64

	e2e     *window
	methods map[string]*methodAgg
}

// methodAgg is the cumulative per-method view fed from attempt spans.
type methodAgg struct {
	attempts, errors         int64
	promptTokens, compTokens int64
	fee                      float64
	lat                      *window
}

func newServeMetrics() *serveMetrics {
	return &serveMetrics{e2e: newWindow(latencyWindowSize), methods: make(map[string]*methodAgg)}
}

func (m *serveMetrics) inc(field *int64) {
	m.mu.Lock()
	*field++
	m.mu.Unlock()
}

func (m *serveMetrics) recordRequest(elapsed time.Duration) {
	m.mu.Lock()
	m.requests++
	m.e2e.add(elapsed)
	m.mu.Unlock()
}

func (m *serveMetrics) recordBatch(bs BatchStats) {
	m.mu.Lock()
	m.batches++
	m.docs += int64(bs.Docs)
	m.claims += int64(bs.Claims)
	m.dollars += bs.Dollars
	m.calls += int64(bs.Calls)
	m.mu.Unlock()
}

func (m *serveMetrics) addStreamDoc() {
	m.mu.Lock()
	m.streamDocs++
	m.mu.Unlock()
}

func (m *serveMetrics) recordAttempt(sp trace.Span) {
	method := sp.Method
	if method == "" {
		method = "(untracked)"
	}
	m.mu.Lock()
	a := m.methods[method]
	if a == nil {
		a = &methodAgg{lat: newWindow(latencyWindowSize)}
		m.methods[method] = a
	}
	a.attempts++
	if sp.Outcome != trace.OutcomeOK {
		a.errors++
	}
	a.promptTokens += int64(sp.PromptTokens)
	a.compTokens += int64(sp.CompletionTokens)
	a.fee += sp.Fee
	a.lat.add(sp.Latency)
	m.mu.Unlock()
}

// MetricsResponse is the body answering GET /v1/metrics.
type MetricsResponse struct {
	// Requests tallies admission outcomes since startup.
	Requests RequestCounters `json:"requests"`
	// Verify tallies micro-batch runs: batches, documents, claims, and the
	// cumulative fee/call totals of everything served.
	Verify VerifyCounters `json:"verify"`
	// LatencyMS gives end-to-end request latency quantiles (receive to
	// respond, real wall clock) over the most recent window of requests.
	LatencyMS LatencyQuantiles `json:"latency_ms"`
	// Methods breaks attempts down per verification method (cumulative
	// counts and fees; simulated-latency quantiles over a recent window).
	// Present only when the server was built with a tracer.
	Methods []MethodMetrics `json:"methods,omitempty"`
	// Resilience snapshots the middleware counters (retries, faults,
	// hedges, breaker activity); present when the server exposes them. On a
	// coordinator, breaker_trips/breaker_probes count replica ejections and
	// recovery probes of the replica-level breaker.
	Resilience *ResilienceCounters `json:"resilience,omitempty"`
	// Stream tallies the incremental verification surface; present on
	// servers and coordinators that route POST /v1/verify/stream.
	Stream *StreamCounters `json:"stream,omitempty"`
	// Review snapshots the human-review queue (depth, age, throughput).
	Review *ReviewCounters `json:"review,omitempty"`
	// Shard describes the routing tier; present only on coordinators.
	Shard *ShardCounters `json:"shard,omitempty"`
}

// StreamCounters tallies the streaming surface.
type StreamCounters struct {
	// Sessions counts stream requests; Docs the documents answered through
	// them (each also counted in verify.docs — streamed documents ride
	// ordinary micro-batches).
	Sessions int64 `json:"sessions"`
	Docs     int64 `json:"docs"`
	// Window echoes the configured in-flight bound per stream.
	Window int `json:"window"`
}

// ReviewCounters snapshots the review queue for /v1/metrics and /v1/review.
type ReviewCounters struct {
	// Depth is the pending count; Enqueued/Resolved/Dropped are cumulative.
	Depth    int   `json:"depth"`
	Enqueued int64 `json:"enqueued"`
	Resolved int64 `json:"resolved"`
	Dropped  int64 `json:"dropped"`
	// OldestAgeMS ages the oldest pending item; MaxPriority ranks the head.
	OldestAgeMS int64   `json:"oldest_age_ms"`
	MaxPriority float64 `json:"max_priority"`
}

// ShardCounters is the coordinator's routing rollup.
type ShardCounters struct {
	// Replicas is the registered count; Healthy how many are in the ring.
	Replicas int `json:"replicas"`
	Healthy  int `json:"healthy"`
	// Routed counts proxied requests; Failovers counts hops off a dead or
	// draining replica onto a ring successor.
	Routed    int64 `json:"routed"`
	Failovers int64 `json:"failovers"`
	// Ejections and Readmissions count replica-breaker state changes.
	Ejections    int64 `json:"ejections"`
	Readmissions int64 `json:"readmissions"`
}

// RequestCounters tallies admission and completion outcomes.
type RequestCounters struct {
	Received         int64 `json:"received"`
	ShedOverload     int64 `json:"shed_overload"`     // answered 429
	RejectedDraining int64 `json:"rejected_draining"` // answered 503
	DeadlineExpired  int64 `json:"deadline_expired"`  // answered 504
	BadRequests      int64 `json:"bad_requests"`      // answered 400
	InternalErrors   int64 `json:"internal_errors"`   // answered 500
}

// VerifyCounters tallies verification work done.
type VerifyCounters struct {
	Batches int64   `json:"batches"`
	Docs    int64   `json:"docs"`
	Claims  int64   `json:"claims"`
	Dollars float64 `json:"dollars"`
	Calls   int64   `json:"calls"`
}

// LatencyQuantiles are nearest-rank quantiles in milliseconds.
type LatencyQuantiles struct {
	N   int     `json:"n"`
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// MethodMetrics is the served-traffic rollup for one verification method.
type MethodMetrics struct {
	Name             string  `json:"name"`
	Attempts         int64   `json:"attempts"`
	Errors           int64   `json:"errors"`
	PromptTokens     int64   `json:"ptok"`
	CompletionTokens int64   `json:"ctok"`
	Fee              float64 `json:"fee"`
	// SimLatencyMS quantiles cover the method's recent attempts' simulated
	// per-attempt latency (what the tracer's rollups report).
	SimLatencyMS LatencyQuantiles `json:"sim_latency_ms"`
}

// ResilienceCounters mirrors metrics.ResilienceSnapshot with stable JSON
// names for the API surface.
type ResilienceCounters struct {
	Attempts      int64 `json:"attempts"`
	Retries       int64 `json:"retries"`
	Faults        int64 `json:"faults"`
	RateLimited   int64 `json:"rate_limited"`
	Timeouts      int64 `json:"timeouts"`
	Transient     int64 `json:"transient"`
	Permanent     int64 `json:"permanent"`
	Hedges        int64 `json:"hedges"`
	HedgeWins     int64 `json:"hedge_wins"`
	BreakerTrips  int64 `json:"breaker_trips"`
	BreakerSheds  int64 `json:"breaker_sheds"`
	BreakerProbes int64 `json:"breaker_probes"`
}

// snapshot renders the metrics wire body.
func (m *serveMetrics) snapshot() MetricsResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := MetricsResponse{
		Requests: RequestCounters{
			Received:         m.requests,
			ShedOverload:     m.shedOverload,
			RejectedDraining: m.rejectedDraining,
			DeadlineExpired:  m.deadlineExpired,
			BadRequests:      m.badRequests,
			InternalErrors:   m.internalErrors,
		},
		Verify: VerifyCounters{
			Batches: m.batches,
			Docs:    m.docs,
			Claims:  m.claims,
			Dollars: m.dollars,
			Calls:   m.calls,
		},
		LatencyMS: m.e2e.quantiles(),
		Stream:    &StreamCounters{Sessions: m.streams, Docs: m.streamDocs},
	}
	names := make([]string, 0, len(m.methods))
	for name := range m.methods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := m.methods[name]
		out.Methods = append(out.Methods, MethodMetrics{
			Name:             name,
			Attempts:         a.attempts,
			Errors:           a.errors,
			PromptTokens:     a.promptTokens,
			CompletionTokens: a.compTokens,
			Fee:              a.fee,
			SimLatencyMS:     a.lat.quantiles(),
		})
	}
	return out
}

// window is a fixed-capacity ring of duration samples; quantiles are
// computed over whatever it currently holds.
type window struct {
	buf  []time.Duration
	next int
}

func newWindow(capacity int) *window { return &window{buf: make([]time.Duration, 0, capacity)} }

func (w *window) add(d time.Duration) {
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, d)
		return
	}
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
}

// quantiles computes nearest-rank p50/p95/p99 in milliseconds — the same
// estimator internal/trace uses, so served and traced quantiles compare.
func (w *window) quantiles() LatencyQuantiles {
	n := len(w.buf)
	if n == 0 {
		return LatencyQuantiles{}
	}
	sorted := make([]time.Duration, n)
	copy(sorted, w.buf)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) float64 {
		r := int(q*float64(n) + 0.999999)
		if r < 1 {
			r = 1
		}
		if r > n {
			r = n
		}
		return float64(sorted[r-1]) / float64(time.Millisecond)
	}
	return LatencyQuantiles{N: n, P50: rank(0.50), P95: rank(0.95), P99: rank(0.99)}
}
