package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/claim"
	"repro/internal/route"
	"repro/internal/shard"
)

// RouteConfig enables cross-database claim routing at the coordinator
// (DESIGN.md §16): compound claims decompose before sharding, each sub-claim
// fans out to the replica owning its *routed* fingerprint, and the
// sub-verdicts recombine at the coordinator in caller order. The
// configuration must mirror the replicas' (same catalog database contents,
// same seed) so a sub-claim planned here binds exactly as it would have on a
// route-enabled replica or in the library.
type RouteConfig struct {
	// Catalog indexes the routable (database, table) entries.
	Catalog *route.Catalog
	// Seed is the routing tie-break seed — the replicas' verification seed.
	Seed int64
	// TopK bounds the candidate tables per sub-claim (0 = route.DefaultTopK).
	TopK int
}

// planRouted converts wire documents into the domain model (applying the
// doc-ID and claim-ID defaults the replicas would apply) and plans routing
// over them. It returns nil when routing changes nothing — malformed claims,
// no compound claims, or nothing routable — in which case the caller falls
// back to the raw relay path, byte-for-byte what a route-less coordinator
// does.
func (c *Coordinator) planRouted(inputs []DocumentInput) (*route.Plan, []*claim.Document) {
	rc := c.cfg.Route
	if rc == nil || rc.Catalog == nil || rc.Catalog.Len() == 0 {
		return nil, nil
	}
	docs := make([]*claim.Document, 0, len(inputs))
	for _, in := range inputs {
		docID := in.DocID
		if docID == "" {
			docID = c.cfg.DocID
		}
		doc := &claim.Document{ID: docID, Domain: "serve"}
		for i, ci := range in.Claims {
			id := ci.ID
			if id == "" {
				id = fmt.Sprintf("c%d", i+1)
			}
			cl, err := claim.New(id, ci.Sentence, ci.Value, ci.Context)
			if err != nil {
				// Let the replica produce the canonical validation error.
				return nil, nil
			}
			doc.Claims = append(doc.Claims, cl)
		}
		docs = append(docs, doc)
	}
	plan := route.PlanDocuments(docs, rc.Catalog, route.Options{
		Seed:   rc.Seed,
		TopK:   rc.TopK,
		Tracer: c.cfg.Tracer,
	})
	if len(plan.Routed) == 0 {
		return nil, nil
	}
	return plan, docs
}

// wireDocument renders one expanded document back onto the wire with its
// identities pinned — the IDs are routing and seeding identities now, so the
// replicas must not re-default them.
func wireDocument(d *claim.Document) DocumentInput {
	in := DocumentInput{DocID: d.ID, Claims: make([]ClaimInput, 0, len(d.Claims))}
	for _, cl := range d.Claims {
		in.Claims = append(in.Claims, ClaimInput{
			ID: cl.ID, Sentence: cl.Sentence, Value: cl.Value, Context: cl.Context,
		})
	}
	return in
}

// wireResult converts a replica's claim verdict back into the domain result
// recombination runs on. The wire does not carry Executable; Combine ANDs it
// but no wire output reads it, so false is safe.
func wireResult(cr ClaimResult) claim.Result {
	return claim.Result{
		Correct:  cr.Correct,
		Verified: cr.Verified,
		Method:   cr.Method,
		Query:    cr.Query,
		Attempts: cr.Attempts,
		Failure:  cr.Failure,
	}
}

// verifyExpanded fans the plan's expanded documents out across the ring —
// each document routed by its own (routed) fingerprint, grouped per owning
// replica into one sub-batch each — writes the replica verdicts back into
// the expanded documents, and returns the summed batch stats. A nil error
// with a non-nil shard.Result means a replica answered non-OK and its
// response should be relayed.
func (c *Coordinator) verifyExpanded(ctx context.Context, plan *route.Plan) (BatchStats, *shard.Result, error) {
	type group struct {
		idxs []int // indices into plan.Expanded
		key  []byte
	}
	groups := make(map[string]*group)
	order := make([]string, 0, 4) // deterministic fan-out order
	wire := make([]DocumentInput, len(plan.Expanded))
	for i, d := range plan.Expanded {
		wire[i] = wireDocument(d)
		key, _ := c.routeKey(d.ID, wire[i].Claims)
		owner, ok := c.ring.Assign(key)
		if !ok {
			return BatchStats{}, nil, shard.ErrNoReplicas
		}
		g := groups[owner]
		if g == nil {
			g = &group{key: key}
			groups[owner] = g
			order = append(order, owner)
		}
		g.idxs = append(g.idxs, i)
	}

	type outcome struct {
		res    shard.Result
		err    error
		parsed BatchResponse
	}
	outcomes := make([]outcome, len(order))
	var wg sync.WaitGroup
	for gi, owner := range order {
		g := groups[owner]
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			out := outcome{}
			docs := make([]DocumentInput, len(g.idxs))
			for j, idx := range g.idxs {
				docs[j] = wire[idx]
			}
			body, err := json.Marshal(BatchRequest{Documents: docs})
			if err == nil {
				out.res, err = c.proxy.Do(ctx, g.key, "/v1/verify/batch", body)
			}
			if err == nil && out.res.Status == http.StatusOK {
				err = json.Unmarshal(out.res.Body, &out.parsed)
			}
			out.err = err
			outcomes[gi] = out
		}(gi, g)
	}
	wg.Wait()

	var stats BatchStats
	for gi, owner := range order {
		o := outcomes[gi]
		if o.err != nil {
			return BatchStats{}, nil, o.err
		}
		if o.res.Status != http.StatusOK {
			res := o.res
			return BatchStats{}, &res, nil
		}
		g := groups[owner]
		c.routed.Add(1)
		c.traceRoute(plan.Expanded[g.idxs[0]].ID, o.res)
		for j, idx := range g.idxs {
			if j >= len(o.parsed.Documents) {
				return BatchStats{}, nil, fmt.Errorf("replica %s returned %d documents for %d", o.res.Node, len(o.parsed.Documents), len(g.idxs))
			}
			dst := plan.Expanded[idx]
			src := o.parsed.Documents[j].Claims
			for k, cl := range dst.Claims {
				if k < len(src) {
					cl.Result = wireResult(src[k])
				}
			}
		}
		stats.Docs += o.parsed.Batch.Docs
		stats.Claims += o.parsed.Batch.Claims
		stats.Dollars += o.parsed.Batch.Dollars
		stats.Calls += o.parsed.Batch.Calls
	}
	// The coordinator made the routing decisions, so it books their fees —
	// exactly what the library path adds to Report.Dollars.
	stats.Dollars += plan.Fee
	plan.Recombine()
	// Fees and calls sum across the unit verifications, but doc/claim counts
	// describe the caller's request — a direct route-enabled replica reports
	// the original counts, not the expanded units, and so do we.
	stats.Docs = len(plan.Original)
	stats.Claims = 0
	for _, d := range plan.Original {
		stats.Claims += len(d.Claims)
	}
	return stats, nil, nil
}

// tryRoutedVerify handles POST /v1/verify when routing applies to the
// request's claims. It reports whether it wrote a response; false means the
// request has no routable compound claims and the ordinary relay path should
// run.
func (c *Coordinator) tryRoutedVerify(ctx context.Context, w http.ResponseWriter, started time.Time, req VerifyRequest) bool {
	plan, docs := c.planRouted([]DocumentInput{{DocID: req.DocID, Claims: req.Claims}})
	if plan == nil {
		return false
	}
	stats, relayRes, err := c.verifyExpanded(ctx, plan)
	if err != nil {
		c.renderProxyError(w, err)
		return true
	}
	if relayRes != nil {
		c.countRelay(relayRes.Status)
		relay(w, *relayRes)
		return true
	}
	doc := docs[0]
	dr := documentResult(doc)
	c.met.recordRequest(time.Since(started))
	writeJSON(w, http.StatusOK, VerifyResponse{DocID: doc.ID, Claims: dr.Claims, Batch: stats})
	return true
}

// tryRoutedVerifyBatch is tryRoutedVerify for POST /v1/verify/batch: the
// merged response carries the caller's documents in caller order, with
// compound-claim verdicts recombined from their routed sub-claims.
func (c *Coordinator) tryRoutedVerifyBatch(ctx context.Context, w http.ResponseWriter, started time.Time, req BatchRequest) bool {
	plan, docs := c.planRouted(req.Documents)
	if plan == nil {
		return false
	}
	stats, relayRes, err := c.verifyExpanded(ctx, plan)
	if err != nil {
		c.renderProxyError(w, err)
		return true
	}
	if relayRes != nil {
		c.countRelay(relayRes.Status)
		relay(w, *relayRes)
		return true
	}
	merged := BatchResponse{Documents: make([]DocumentResult, len(docs)), Batch: stats}
	for i, d := range docs {
		merged.Documents[i] = documentResult(d)
	}
	c.met.recordRequest(time.Since(started))
	writeJSON(w, http.StatusOK, merged)
	return true
}
