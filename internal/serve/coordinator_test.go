package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/claim"
	"repro/internal/shard"
	"repro/internal/trace"
)

// tagBackend marks every claim verified with the replica's tag as the
// method, so tests can see which replica served a routed request.
func tagBackend(tag string) BackendFunc {
	return func(docs []*claim.Document) (RunStats, error) {
		n := 0
		for _, d := range docs {
			for _, c := range d.Claims {
				c.Result.Verified = true
				c.Result.Correct = true
				c.Result.Method = tag
				n++
			}
		}
		return RunStats{Claims: n, Dollars: 0.01 * float64(n), Calls: n}, nil
	}
}

// testRouteKey routes on the document ID alone, which lets tests hunt for a
// doc ID owned by a chosen replica.
func testRouteKey(docID string, _ []ClaimInput) []byte {
	return shard.Fingerprint("test-cfg", docID)
}

// replicaFixture is one replica Server behind a real listener.
type replicaFixture struct {
	srv *Server
	ts  *httptest.Server
}

func newReplica(t *testing.T, cfg Config) *replicaFixture {
	t.Helper()
	srv, ts := newTestServer(t, cfg)
	return &replicaFixture{srv: srv, ts: ts}
}

func newTestCoordinator(t *testing.T, cfg CoordinatorConfig, replicas ...*replicaFixture) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.RouteKey == nil {
		cfg.RouteKey = testRouteKey
	}
	if cfg.DocID == "" {
		cfg.DocID = "testdb"
	}
	for _, r := range replicas {
		cfg.Replicas = append(cfg.Replicas, r.ts.URL)
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	})
	return c, ts
}

// docOwnedBy hunts for a document ID the ring assigns to the given replica.
func docOwnedBy(t *testing.T, c *Coordinator, replicaURL string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		docID := fmt.Sprintf("doc-%d", i)
		if owner, ok := c.Owner(testRouteKey(docID, nil)); ok && owner == replicaURL {
			return docID
		}
	}
	t.Fatalf("no document ID routed to %s", replicaURL)
	return ""
}

func verifyBody(docID string) string {
	return fmt.Sprintf(`{"doc_id":%q,"claims":[{"sentence":"The answer is 42.","value":"42"}]}`, docID)
}

// A routed request is served by the ring owner of its shard key, and the
// replica's response — including its batch stats — relays verbatim.
func TestCoordinatorRoutesVerifyToOwner(t *testing.T) {
	a := newReplica(t, Config{Backend: tagBackend("replica-a"), BatchWait: -1})
	b := newReplica(t, Config{Backend: tagBackend("replica-b"), BatchWait: -1})
	c, ts := newTestCoordinator(t, CoordinatorConfig{}, a, b)
	tags := map[string]string{a.ts.URL: "replica-a", b.ts.URL: "replica-b"}

	for _, rep := range []*replicaFixture{a, b} {
		docID := docOwnedBy(t, c, rep.ts.URL)
		resp := postVerify(t, ts.URL, verifyBody(docID))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		var out VerifyResponse
		decodeInto(t, resp, &out)
		if out.DocID != docID || len(out.Claims) != 1 {
			t.Fatalf("response = %+v, want doc %s with one claim", out, docID)
		}
		if out.Claims[0].Method != tags[rep.ts.URL] {
			t.Errorf("doc %s served by %q, want owner %q", docID, out.Claims[0].Method, tags[rep.ts.URL])
		}
		if out.Batch.Docs != 1 || out.Batch.Claims != 1 {
			t.Errorf("batch stats = %+v, not relayed", out.Batch)
		}
	}
}

// A batch fans out by owner, merges in the caller's document order, and sums
// the sub-batch stats. Replica-side validation errors relay through.
func TestCoordinatorBatchFanoutMergesInOrder(t *testing.T) {
	a := newReplica(t, Config{Backend: tagBackend("replica-a"), BatchWait: -1})
	b := newReplica(t, Config{Backend: tagBackend("replica-b"), BatchWait: -1})
	c, ts := newTestCoordinator(t, CoordinatorConfig{}, a, b)

	// Interleave docs owned by each replica so the merge has to reorder.
	docA1, docB1 := docOwnedBy(t, c, a.ts.URL), docOwnedBy(t, c, b.ts.URL)
	ids := []string{docA1, docB1, docA1 + "-x", docB1 + "-x"}
	var docs []string
	for _, id := range ids {
		docs = append(docs, fmt.Sprintf(`{"doc_id":%q,"claims":[{"sentence":"n is 1.","value":"1"}]}`, id))
	}
	body := `{"documents":[` + strings.Join(docs, ",") + `]}`
	resp, err := http.Post(ts.URL+"/v1/verify/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out BatchResponse
	decodeInto(t, resp, &out)
	if len(out.Documents) != 4 {
		t.Fatalf("documents = %d, want 4", len(out.Documents))
	}
	for i, id := range ids {
		if out.Documents[i].DocID != id {
			t.Errorf("documents[%d] = %q, want %q (original order)", i, out.Documents[i].DocID, id)
		}
	}
	if out.Batch.Docs != 4 || out.Batch.Claims != 4 || out.Batch.Calls != 4 {
		t.Errorf("summed batch stats = %+v, want 4 docs/claims/calls", out.Batch)
	}

	// A bad document fails the whole batch with the replica's 400 relayed.
	bad := fmt.Sprintf(`{"documents":[{"doc_id":%q,"claims":[{"sentence":"n is 1.","value":"7"}]}]}`, docA1)
	resp, err = http.Post(ts.URL+"/v1/verify/batch", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch status = %d, want relayed 400", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeBadRequest {
		t.Errorf("error code = %q, want %q", code, CodeBadRequest)
	}
}

// Replicas join and leave at runtime via /v1/replicas; the roster shows in
// /v1/status and routing follows membership.
func TestCoordinatorReplicaRegistration(t *testing.T) {
	a := newReplica(t, Config{Backend: tagBackend("replica-a"), BatchWait: -1})
	b := newReplica(t, Config{Backend: tagBackend("replica-b"), BatchWait: -1})
	c, ts := newTestCoordinator(t, CoordinatorConfig{}, a)

	resp, err := http.Post(ts.URL+"/v1/replicas", "application/json",
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, b.ts.URL)))
	if err != nil {
		t.Fatal(err)
	}
	var roster []ReplicaStatus
	decodeInto(t, resp, &roster)
	if len(roster) != 2 || !roster[0].Healthy || !roster[1].Healthy {
		t.Fatalf("roster after join = %+v, want two healthy replicas", roster)
	}

	st := fetchStatus(t, ts.URL)
	if st.Role != "coordinator" || len(st.Replicas) != 2 {
		t.Fatalf("status = %+v, want coordinator role with 2 replicas", st)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/replicas?url="+b.ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, dresp, &roster)
	if len(roster) != 1 || roster[0].URL != a.ts.URL {
		t.Fatalf("roster after leave = %+v, want only %s", roster, a.ts.URL)
	}
	if owner, ok := c.Owner(testRouteKey("any", nil)); !ok || owner != a.ts.URL {
		t.Errorf("owner after leave = %q (ok=%v), want %s", owner, ok, a.ts.URL)
	}
}

func fetchStatus(t *testing.T, base string) StatusResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	decodeInto(t, resp, &st)
	return st
}

func fetchCoordMetrics(t *testing.T, base string) MetricsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var met MetricsResponse
	decodeInto(t, resp, &met)
	return met
}

// A dead replica's requests fail over to the ring successor with an
// identical (deterministic) answer, the failure books a failover and — once
// the streak trips — an ejection visible in /v1/metrics and /v1/status.
func TestCoordinatorFailoverAndEjection(t *testing.T) {
	a := newReplica(t, Config{Backend: tagBackend("replica-a"), BatchWait: -1})
	b := newReplica(t, Config{Backend: tagBackend("replica-b"), BatchWait: -1})
	c, ts := newTestCoordinator(t, CoordinatorConfig{
		ProbeInterval: time.Hour, // traffic-fed failures only: deterministic
		FailAfter:     2,
	}, a, b)

	docID := docOwnedBy(t, c, a.ts.URL)
	a.ts.Close() // replica dies abruptly

	for i := 0; i < 2; i++ {
		resp := postVerify(t, ts.URL, verifyBody(docID))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200 via failover", resp.StatusCode)
		}
		var out VerifyResponse
		decodeInto(t, resp, &out)
		if out.Claims[0].Method != "replica-b" {
			t.Fatalf("served by %q, want failover to replica-b", out.Claims[0].Method)
		}
	}

	met := fetchCoordMetrics(t, ts.URL)
	if met.Shard == nil {
		t.Fatal("metrics missing shard section")
	}
	if met.Shard.Failovers < 2 || met.Shard.Ejections != 1 {
		t.Errorf("shard counters = %+v, want >=2 failovers and 1 ejection", met.Shard)
	}
	if met.Resilience == nil || met.Resilience.BreakerTrips != 1 {
		t.Errorf("resilience = %+v, want 1 breaker trip for the ejection", met.Resilience)
	}
	st := fetchStatus(t, ts.URL)
	healthy := map[string]bool{}
	for _, rep := range st.Replicas {
		healthy[rep.URL] = rep.Healthy
	}
	if healthy[a.ts.URL] || !healthy[b.ts.URL] {
		t.Errorf("replica health = %v, want a ejected and b healthy", healthy)
	}

	// After ejection the dead replica is out of the ring: requests route
	// straight to b with no further failover hops.
	before := met.Shard.Failovers
	resp := postVerify(t, ts.URL, verifyBody(docID))
	resp.Body.Close()
	if got := fetchCoordMetrics(t, ts.URL).Shard.Failovers; got != before {
		t.Errorf("failovers grew %d -> %d after ejection; want direct routing", before, got)
	}
}

// Regression for graceful drain under coordinator rebalance: a replica
// receiving SIGTERM (Server.Shutdown) finishes its in-flight batch while the
// coordinator rehashes new requests for its keyspace onto the successor —
// nothing is lost, nothing is verified twice.
func TestCoordinatorDrainRebalance(t *testing.T) {
	gated := &gatedBackend{entered: make(chan struct{}, 8), gate: make(chan struct{})}
	a := newReplica(t, Config{Backend: gated, BatchWait: -1})
	b := newReplica(t, Config{Backend: tagBackend("replica-b"), BatchWait: -1})
	c, ts := newTestCoordinator(t, CoordinatorConfig{
		ProbeInterval: 10 * time.Millisecond,
		FailAfter:     1,
		RecoverAfter:  1 << 30, // a draining replica never readmits mid-test
	}, a, b)
	docID := docOwnedBy(t, c, a.ts.URL)

	// One request in flight on the draining replica when the drain starts.
	inflight := make(chan *http.Response, 1)
	go func() {
		inflight <- postVerify(t, ts.URL, verifyBody(docID))
	}()
	<-gated.entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := contextWithTimeout(10 * time.Second)
		defer cancel()
		shutdownErr <- a.srv.Shutdown(ctx)
	}()
	waitFor(t, a.srv.Draining, "replica to start draining")

	// New requests for the draining replica's keyspace rehash to the
	// successor (via 503-failover first, then ejection by the health probe).
	resp := postVerify(t, ts.URL, verifyBody(docID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rehashed request status = %d, want 200", resp.StatusCode)
	}
	var out VerifyResponse
	decodeInto(t, resp, &out)
	if out.Claims[0].Method != "replica-b" {
		t.Fatalf("rehashed request served by %q, want replica-b", out.Claims[0].Method)
	}
	waitFor(t, func() bool { return !c.prober.IsHealthy(a.ts.URL) }, "draining replica to be ejected")

	// The in-flight request completes on its original owner with verdicts.
	close(gated.gate)
	r := <-inflight
	if r.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", r.StatusCode)
	}
	var inOut VerifyResponse
	decodeInto(t, r, &inOut)
	if len(inOut.Claims) != 1 || !inOut.Claims[0].Verified || inOut.Claims[0].Method != "fake" {
		t.Fatalf("in-flight claims = %+v, want the gated replica's verdict", inOut.Claims)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("replica Shutdown: %v", err)
	}
	// Exactly one batch ever reached the draining replica: the in-flight one.
	if sizes := gated.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Errorf("draining replica batches = %v, want exactly the in-flight document", sizes)
	}
}

// The coordinator's own surface: healthz follows replica availability and
// drain state; routing spans are recorded and normalized away.
func TestCoordinatorHealthzAndRouteSpans(t *testing.T) {
	tr := trace.New()
	a := newReplica(t, Config{Backend: tagBackend("replica-a"), BatchWait: -1})
	c, ts := newTestCoordinator(t, CoordinatorConfig{Tracer: tr}, a)

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 with a live replica", hz.StatusCode)
	}

	resp := postVerify(t, ts.URL, verifyBody("doc-1"))
	resp.Body.Close()
	routes := 0
	for _, sp := range tr.Spans() {
		if sp.Kind == trace.KindShardRoute {
			routes++
		}
	}
	if routes != 1 {
		t.Errorf("shard_route spans = %d, want 1", routes)
	}
	for _, sp := range trace.ReplayNormalize(tr.Spans()) {
		if sp.Kind == trace.KindShardRoute || sp.Kind == trace.KindShardFailover {
			t.Fatalf("ReplayNormalize kept routing span %+v", sp)
		}
	}

	// No replicas -> healthz 503 and verify 503 draining-equivalent.
	c.deregister(a.ts.URL)
	hz, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz with empty ring = %d, want 503", hz.StatusCode)
	}
	resp = postVerify(t, ts.URL, verifyBody("doc-1"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("verify with empty ring = %d, want 503", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeDraining {
		t.Errorf("error code = %q, want %q", code, CodeDraining)
	}

	// Shutdown flips the coordinator itself to draining.
	ctx, cancel := contextWithTimeout(2 * time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp = postVerify(t, ts.URL, verifyBody("doc-1"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("verify while draining = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}
