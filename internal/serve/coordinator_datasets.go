package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// coordinator_datasets.go fans the /v1/datasets routes out across the
// replica tier. Unlike verification requests — routed to one owner by shard
// key — a dataset mutation must reach every replica: ring routing is only
// deterministic when all replicas hold the same catalog, so a claim over an
// ingested table verifies identically wherever its key lands. POST relays
// the raw body to every healthy replica and fails if any replica fails
// (ingestion is deterministic, so replicas that did succeed hold the same
// catalog a retry will re-apply idempotently); reads answer from the first
// healthy replica; DELETE broadcasts and succeeds if any replica knew the
// dataset.

// coordRoutesDatasets registers the dataset routes on the coordinator mux.
func (c *Coordinator) coordRoutesDatasets(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/datasets", c.handleDatasetBroadcastCreate)
	mux.HandleFunc("GET /v1/datasets", c.handleDatasetRelayList)
	mux.HandleFunc("GET /v1/datasets/{name}", c.handleDatasetRelayGet)
	mux.HandleFunc("DELETE /v1/datasets/{name}", c.handleDatasetBroadcastDelete)
}

// forward sends one request with an arbitrary method/content type to a
// replica, returning status and body.
func (c *Coordinator) forward(ctx context.Context, method, url, contentType string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxDatasetBody))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// relayRaw writes a replica's (status, body) response verbatim.
func relayRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// handleDatasetBroadcastCreate answers POST /v1/datasets by replaying the
// request body on every healthy replica. All replicas must succeed: a
// partial catalog would break routing determinism, so any failure fails the
// request (naming the replica), and the caller re-POSTs — ingestion is
// deterministic, so replicas that already applied it converge idempotently.
func (c *Coordinator) handleDatasetBroadcastCreate(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if c.rejectDraining(w) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxDatasetBody))
	if err != nil {
		c.met.inc(&c.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("reading request body: %v", err), 0)
		return
	}
	replicas := c.healthyReplicas()
	if len(replicas) == 0 {
		c.met.inc(&c.met.rejectedDraining)
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "no live replicas", 0)
		return
	}
	ctx, cancel := c.requestContext(r)
	defer cancel()
	path := "/v1/datasets"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	contentType := r.Header.Get("Content-Type")
	var first []byte
	for _, node := range replicas {
		status, respBody, err := c.forward(ctx, http.MethodPost, node+path, contentType, body)
		if err != nil {
			c.met.inc(&c.met.internalErrors)
			writeError(w, http.StatusBadGateway, CodeInternal,
				fmt.Sprintf("replica %s: %v (catalog may be partially applied; re-POST to converge)", node, err), 0)
			return
		}
		if status != http.StatusOK {
			// The replica rejected the ingestion (bad data, name collision).
			// Replicas are deterministic, so the first rejection speaks for
			// the tier; relay its error envelope.
			c.countRelay(status)
			relayRaw(w, status, respBody)
			return
		}
		if first == nil {
			first = respBody
		}
	}
	c.met.recordRequest(time.Since(started))
	relayRaw(w, http.StatusOK, first)
}

// handleDatasetRelayList answers GET /v1/datasets from the first healthy
// replica — every replica holds the same registry when mutations flow
// through this coordinator.
func (c *Coordinator) handleDatasetRelayList(w http.ResponseWriter, r *http.Request) {
	c.relayDatasetGet(w, r, "/v1/datasets")
}

// handleDatasetRelayGet answers GET /v1/datasets/{name} likewise.
func (c *Coordinator) handleDatasetRelayGet(w http.ResponseWriter, r *http.Request) {
	c.relayDatasetGet(w, r, "/v1/datasets/"+url.PathEscape(r.PathValue("name")))
}

func (c *Coordinator) relayDatasetGet(w http.ResponseWriter, r *http.Request, path string) {
	ctx, cancel := c.requestContext(r)
	defer cancel()
	for _, node := range c.healthyReplicas() {
		status, body, err := c.forward(ctx, http.MethodGet, node+path, "", nil)
		if err != nil {
			continue
		}
		c.countRelay(status)
		relayRaw(w, status, body)
		return
	}
	c.met.inc(&c.met.rejectedDraining)
	writeError(w, http.StatusServiceUnavailable, CodeDraining, "no live replicas", 0)
}

// handleDatasetBroadcastDelete answers DELETE /v1/datasets/{name} on every
// healthy replica. Idempotent by construction: the request succeeds if any
// replica knew the dataset (404s elsewhere mean an earlier partial delete
// already removed it there), and 404s only if every replica answered 404.
func (c *Coordinator) handleDatasetBroadcastDelete(w http.ResponseWriter, r *http.Request) {
	if c.rejectDraining(w) {
		return
	}
	replicas := c.healthyReplicas()
	if len(replicas) == 0 {
		c.met.inc(&c.met.rejectedDraining)
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "no live replicas", 0)
		return
	}
	ctx, cancel := c.requestContext(r)
	defer cancel()
	path := "/v1/datasets/" + url.PathEscape(r.PathValue("name"))
	var deleted []byte
	for _, node := range replicas {
		status, body, err := c.forward(ctx, http.MethodDelete, node+path, "", nil)
		if err != nil {
			c.met.inc(&c.met.internalErrors)
			writeError(w, http.StatusBadGateway, CodeInternal,
				fmt.Sprintf("replica %s: %v (delete may be partially applied; re-DELETE to converge)", node, err), 0)
			return
		}
		if status == http.StatusOK && deleted == nil {
			deleted = body
		}
	}
	if deleted == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "no dataset with that name", 0)
		return
	}
	relayRaw(w, http.StatusOK, deleted)
}
