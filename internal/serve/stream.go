package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/claim"
	"repro/internal/review"
	"repro/internal/verify"
)

// The streaming verification surface: POST /v1/verify/stream turns the
// request/response server into an incremental pipeline. The client writes
// NDJSON documents (the DocumentInput shape, one per line) and reads NDJSON
// StreamEvents back — per-claim verdicts as soon as each document's
// micro-batch lands, then a closing summary. Two invariants anchor it:
//
//   - Backpressure, not buffering: at most Config.StreamWindow documents per
//     stream are admitted but unanswered. Past the window the server simply
//     stops reading the request body, which TCP turns into client-side
//     backpressure; a slow producer costs the server nothing and a fast one
//     cannot queue unbounded work.
//   - Determinism survives streaming: every streamed document becomes an
//     ordinary micro-batch job through the same admission queue and batch
//     loop as POST /v1/verify, and CEDAR's splittable seeding makes verdicts
//     independent of batch composition and arrival order — so a streamed
//     corpus answers bit-identically to the same corpus POSTed as one batch
//     (the `make stream` gate proves it end to end).
//
// Ambiguous verdicts — transport-failed, semantically exhausted, or settled
// only after method disagreement — are enqueued for human review on every
// verification route; stream events carry the review ID inline.

// streamPending is one admitted stream document awaiting its verdicts.
type streamPending struct {
	j     *job
	doc   *claim.Document
	index int
}

// admitStream admits one streamed document's job, blocking while the queue
// is full instead of shedding with 429: the stream window already bounds
// what one stream can pin, so waiting for a slot is backpressure, not
// unbounded queueing. Draining and deadline still reject, shaped like the
// unary admission errors.
func (s *Server) admitStream(ctx context.Context, docs []*claim.Document) (*job, *apiError) {
	j := newJob(ctx, docs)
	for {
		s.mu.RLock()
		if s.draining {
			s.mu.RUnlock()
			s.met.inc(&s.met.rejectedDraining)
			return nil, &apiError{status: http.StatusServiceUnavailable, code: CodeDraining,
				msg: "server is draining; retry against another replica"}
		}
		select {
		case s.queue <- j:
			s.mu.RUnlock()
			return j, nil
		default:
		}
		s.mu.RUnlock()
		select {
		case <-ctx.Done():
			s.met.inc(&s.met.deadlineExpired)
			return nil, &apiError{status: http.StatusGatewayTimeout, code: CodeDeadlineExceeded,
				msg: "request deadline expired waiting for an admission slot"}
		case <-time.After(time.Millisecond):
		}
	}
}

// reviewVerdict enqueues one verified claim for human review when its
// verdict is ambiguous, returning the review ID ("" when the claim was not
// enqueued — agreement, an already-resolved ID, or a full queue it did not
// outrank). feeSunk is the claim's share of its batch's fee.
func (s *Server) reviewVerdict(doc *claim.Document, c *claim.Claim, feeSunk float64) string {
	d := verify.Disagreement(c.Result)
	if d <= 0 {
		return ""
	}
	ok := s.review.Enqueue(review.Item{
		DocID:        doc.ID,
		ClaimID:      c.ID,
		Sentence:     c.Sentence,
		Value:        c.Value,
		Verified:     c.Result.Verified,
		Correct:      c.Result.Correct,
		Method:       c.Result.Method,
		Attempts:     c.Result.Attempts,
		Failure:      c.Result.Failure,
		Disagreement: d,
		FeeSunk:      feeSunk,
		Weight:       1,
	})
	if !ok {
		return ""
	}
	return review.ItemID(doc.ID, c.ID, c.Sentence, c.Value)
}

// reviewDocuments runs reviewVerdict over every claim of a finished batch,
// returning how many were enqueued. The unary and batch handlers call it for
// its side effect; the stream handler re-derives per-claim IDs itself so it
// can put them on the wire.
func (s *Server) reviewDocuments(docs []*claim.Document, stats BatchStats) int {
	fee := feeShare(stats)
	n := 0
	for _, doc := range docs {
		for _, c := range doc.Claims {
			if s.reviewVerdict(doc, c, fee) != "" {
				n++
			}
		}
	}
	return n
}

// feeShare is the per-claim share of a batch's fee — the "fee sunk" input of
// the review priority.
func feeShare(stats BatchStats) float64 {
	if stats.Claims <= 0 {
		return 0
	}
	return stats.Dollars / float64(stats.Claims)
}

// handleVerifyStream answers POST /v1/verify/stream. A reader goroutine
// decodes and admits documents — it stalls (and stops reading the socket)
// whenever the in-flight window is full — while the handler goroutine awaits
// each document's batch in arrival order and streams its verdict events. The
// split means verification of document N+1..N+window proceeds while document
// N's verdicts are being written.
func (s *Server) handleVerifyStream(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	ctx, cancel := s.requestContext(r)
	defer cancel()
	s.met.inc(&s.met.streams)

	pending := make(chan streamPending, s.cfg.StreamWindow)
	// readerErr holds at most one terminal input-side error, read only after
	// pending closes (the channel buffer orders the memory accesses).
	readerErr := make(chan ErrorDetail, 1)
	go func() {
		defer close(pending)
		dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		for index := 0; ; index++ {
			var in DocumentInput
			if err := dec.Decode(&in); err != nil {
				if err == io.EOF {
					return
				}
				s.met.inc(&s.met.badRequests)
				readerErr <- ErrorDetail{Code: CodeBadRequest,
					Message: fmt.Sprintf("decoding stream document %d: %v", index, err)}
				return
			}
			doc, err := s.buildDocument(in)
			if err != nil {
				s.met.inc(&s.met.badRequests)
				readerErr <- ErrorDetail{Code: CodeBadRequest,
					Message: fmt.Sprintf("stream document %d: %v", index, err)}
				return
			}
			j, aerr := s.admitStream(ctx, []*claim.Document{doc})
			if aerr != nil {
				readerErr <- ErrorDetail{Code: aerr.code, Message: aerr.msg}
				return
			}
			select {
			case pending <- streamPending{j: j, doc: doc, index: index}:
			case <-ctx.Done():
				// The client is gone (or the deadline hit) with the window
				// full. The admitted job's done channel is buffered, so the
				// batch loop finishes it without anyone waiting.
				return
			}
		}
	}()

	// Headers commit before the first verdict; from here on, failures are
	// in-band error events, not HTTP statuses. Full duplex keeps the request
	// body readable after the first write — without it, an HTTP/1.x server
	// discards unread input once the response starts, truncating the stream.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev StreamEvent) {
		_ = enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	var sum StreamSummary
	// Stream documents may coalesce into shared micro-batches; fee totals
	// are summed once per distinct batch, not once per document.
	seenBatch := make(map[int64]bool)
	for p := range pending {
		res, aerr := s.await(ctx, p.j)
		if aerr != nil {
			emit(StreamEvent{Event: "error", DocID: p.doc.ID, Index: p.index,
				Error: &ErrorDetail{Code: aerr.code, Message: aerr.msg}})
			if ctx.Err() != nil {
				// Client gone or stream deadline hit: stop writing. Jobs still
				// pending complete in the batch loop against their buffered
				// done channels — a dead client never wedges the batcher.
				break
			}
			continue
		}
		fee := feeShare(res.stats)
		dr := documentResult(p.doc)
		for ci := range dr.Claims {
			cr := dr.Claims[ci]
			id := s.reviewVerdict(p.doc, p.doc.Claims[ci], fee)
			if id != "" {
				sum.Reviewed++
			}
			emit(StreamEvent{Event: "verdict", DocID: dr.DocID, Index: p.index, Claim: &cr, ReviewID: id})
		}
		sum.Docs++
		sum.Claims += len(dr.Claims)
		if !seenBatch[res.batch] {
			seenBatch[res.batch] = true
			sum.Dollars += res.stats.Dollars
			sum.Calls += res.stats.Calls
			sum.Batches = append(sum.Batches, res.batch)
		}
		s.met.addStreamDoc()
	}
	select {
	case ed := <-readerErr:
		emit(StreamEvent{Event: "error", Index: sum.Docs, Error: &ed})
	default:
	}
	if ctx.Err() == nil {
		s.met.recordRequest(time.Since(started))
	}
	emit(StreamEvent{Event: "summary", Index: sum.Docs, Summary: &sum})
}

// reviewCounters renders a queue snapshot onto the wire shape shared by
// GET /v1/review and the /v1/metrics review section.
func reviewCounters(st review.Stats) ReviewCounters {
	return ReviewCounters{
		Depth:       st.Depth,
		Enqueued:    st.Enqueued,
		Resolved:    st.Resolved,
		Dropped:     st.Dropped,
		OldestAgeMS: st.OldestAge.Milliseconds(),
		MaxPriority: st.MaxPriority,
	}
}

// handleReviewList answers GET /v1/review: the pending review items in
// deterministic review order (priority descending, ID ascending), optionally
// truncated by ?limit=N.
func (s *Server) handleReviewList(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.met.inc(&s.met.badRequests)
			writeError(w, http.StatusBadRequest, CodeBadRequest, "limit must be a non-negative integer", 0)
			return
		}
		limit = n
	}
	items := s.review.Pending(limit)
	if items == nil {
		items = []review.Item{}
	}
	writeJSON(w, http.StatusOK, ReviewListResponse{Items: items, Stats: reviewCounters(s.review.Stats())})
}

// handleReviewResolve answers POST /v1/review/{id}: it records the human
// verdict for one pending item and returns the resolved item. Resolution is
// idempotent — the first resolution wins and repeats return it unchanged —
// so a retried resolve (e.g. replayed through the failover proxy) cannot
// flip a verdict twice.
func (s *Server) handleReviewResolve(w http.ResponseWriter, r *http.Request) {
	var req ReviewResolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if !review.ValidResolution(req.Resolution) {
		s.met.inc(&s.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("resolution must be %q or %q", review.ResolutionConfirmed, review.ResolutionOverturned), 0)
		return
	}
	it, ok := s.review.Resolve(r.PathValue("id"), req.Resolution, req.Note)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no review item with that id", 0)
		return
	}
	writeJSON(w, http.StatusOK, it)
}
