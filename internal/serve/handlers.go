package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/claim"
)

// maxBodyBytes caps request bodies; claim batches are text, so 8 MiB is
// generous while still bounding what one request can pin in memory.
const maxBodyBytes = 8 << 20

// routes builds the HTTP surface. Every route is documented in docs/CLI.md;
// doclint guards the flag surface, the e2e tests guard these.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/verify/batch", s.handleVerifyBatch)
	mux.HandleFunc("POST /v1/verify/stream", s.handleVerifyStream)
	mux.HandleFunc("GET /v1/review", s.handleReviewList)
	mux.HandleFunc("POST /v1/review/{id}", s.handleReviewResolve)
	mux.HandleFunc("POST /v1/datasets", s.handleDatasetCreate)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleDatasetGet)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDatasetDelete)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// requestContext applies the configured per-request deadline on top of the
// client's own cancellation.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// decodeBody strictly decodes a JSON request body into dst.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.met.inc(&s.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("decoding request body: %v", err), 0)
		return false
	}
	return true
}

// buildDocuments converts the wire documents of one request.
func (s *Server) buildDocuments(ins []DocumentInput) ([]*claim.Document, error) {
	docs := make([]*claim.Document, 0, len(ins))
	for i, in := range ins {
		doc, err := s.buildDocument(in)
		if err != nil {
			return nil, fmt.Errorf("documents[%d]: %w", i, err)
		}
		docs = append(docs, doc)
	}
	return docs, nil
}

// serveDocuments is the shared verification path of both POST routes:
// admit the documents as one job, wait for its micro-batch, and return the
// batch stats. A non-nil apiError was already counted and must be rendered.
func (s *Server) serveDocuments(ctx context.Context, docs []*claim.Document) (BatchStats, *apiError) {
	j, aerr := s.admit(ctx, docs)
	if aerr != nil {
		return BatchStats{}, aerr
	}
	res, aerr := s.await(ctx, j)
	if aerr != nil {
		return BatchStats{}, aerr
	}
	return res.stats, nil
}

// handleVerify answers POST /v1/verify: one document's claims, one verdict
// set. Internally it is the single-document case of the batch path.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	var req VerifyRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	doc, err := s.buildDocument(DocumentInput{DocID: req.DocID, Claims: req.Claims})
	if err != nil {
		s.met.inc(&s.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	stats, aerr := s.serveDocuments(ctx, []*claim.Document{doc})
	if aerr != nil {
		s.renderError(w, aerr)
		return
	}
	s.reviewDocuments([]*claim.Document{doc}, stats)
	dr := documentResult(doc)
	s.met.recordRequest(time.Since(started))
	writeJSON(w, http.StatusOK, VerifyResponse{DocID: dr.DocID, Claims: dr.Claims, Batch: stats})
}

// handleVerifyBatch answers POST /v1/verify/batch: several documents
// verified together. The whole request is admitted as one job, so its
// documents always share a run and the response's batch totals cover at
// least them.
func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Documents) == 0 {
		s.met.inc(&s.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest, "batch request has no documents", 0)
		return
	}
	docs, err := s.buildDocuments(req.Documents)
	if err != nil {
		s.met.inc(&s.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	stats, aerr := s.serveDocuments(ctx, docs)
	if aerr != nil {
		s.renderError(w, aerr)
		return
	}
	s.reviewDocuments(docs, stats)
	out := BatchResponse{Batch: stats}
	for _, d := range docs {
		out.Documents = append(out.Documents, documentResult(d))
	}
	s.met.recordRequest(time.Since(started))
	writeJSON(w, http.StatusOK, out)
}

// handleStatus answers GET /v1/status with the serving state.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	state := "serving"
	if s.Draining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		State:        state,
		QueueDepth:   len(s.queue),
		QueueCap:     s.cfg.QueueDepth,
		MaxBatch:     s.cfg.MaxBatch,
		BatchWaitMS:  s.cfg.BatchWait.Milliseconds(),
		StreamWindow: s.cfg.StreamWindow,
		Schedule:     s.cfg.Schedule,
		UptimeMS:     time.Since(s.start).Milliseconds(),
	})
}

// handleMetrics answers GET /v1/metrics with the cumulative counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body := s.met.snapshot()
	body.Stream.Window = s.cfg.StreamWindow
	rc := reviewCounters(s.review.Stats())
	body.Review = &rc
	if s.cfg.Resilience != nil {
		rs := s.cfg.Resilience()
		body.Resilience = &ResilienceCounters{
			Attempts:      rs.Attempts,
			Retries:       rs.Retries,
			Faults:        rs.Faults,
			RateLimited:   rs.RateLimited,
			Timeouts:      rs.Timeouts,
			Transient:     rs.Transient,
			Permanent:     rs.Permanent,
			Hedges:        rs.Hedges,
			HedgeWins:     rs.HedgeWins,
			BreakerTrips:  rs.BreakerTrips,
			BreakerSheds:  rs.BreakerSheds,
			BreakerProbes: rs.BreakerProbes,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleHealthz answers GET /healthz: 200 "ok" while serving, 503 while
// draining so orchestrators stop routing here during shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// renderError writes an admission/await error with its envelope and, for
// shed responses, the Retry-After hint.
func (s *Server) renderError(w http.ResponseWriter, e *apiError) {
	retry := time.Duration(0)
	if e.retryAfter {
		retry = s.cfg.RetryAfter
	}
	writeError(w, e.status, e.code, e.msg, retry)
}
