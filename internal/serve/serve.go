// Package serve is CEDAR's request/response layer: a long-running HTTP
// server that turns the batch verification pipeline into an interactive
// service. The demo paper frames claim verification as something a reader
// does while reading — submit a claim, get a verdict — which needs a
// serving surface with production manners, not a one-shot CLI run.
//
// The package converts the run-scoped subsystems built for batch mode
// (bounded worker pool, resilience middleware, fee ledger, tracer) to
// request-scoped lifetimes with three mechanisms:
//
//   - Micro-batching: incoming requests queue as documents and a single
//     batch loop coalesces up to MaxBatch of them into one pipeline run
//     (the run remains the unit of ledger/tracer scope, now holding one
//     micro-batch instead of one corpus). Documents are independent under
//     CEDAR's splittable seeding, so batch composition affects fees
//     attribution and latency only — never a request's verdicts, which stay
//     bit-identical to a CLI run of the same (doc_id, claims).
//   - Admission control: a bounded queue sheds excess load with 429 +
//     Retry-After before it ties up memory, and a draining server answers
//     503 so load balancers fail over cleanly.
//   - Deadlines and drain: each request carries a context deadline — a
//     request whose context expires before its batch starts is dropped from
//     the batch, and one that expires mid-run gets 504 while the batch
//     completes (the work is billed; the response is lost). Shutdown stops
//     intake, verifies everything already admitted, then returns.
//
// Beyond the unary routes, POST /v1/verify/stream accepts an NDJSON stream
// of documents and streams per-claim verdicts back as their micro-batches
// land, holding at most StreamWindow documents in flight (backpressure, not
// buffering); verdicts the pipeline is least sure about are queued for human
// review (internal/review), exposed via GET /v1/review and resolved via
// POST /v1/review/{id}.
//
// The HTTP surface (POST /v1/verify, POST /v1/verify/batch,
// POST /v1/verify/stream, GET /v1/review, POST /v1/review/{id},
// GET /v1/status, GET /v1/metrics, GET /healthz) is documented in
// docs/CLI.md; doclint keeps that document in sync with the binary's flags.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/claim"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/review"
	"repro/internal/sqldb"
	"repro/internal/trace"
)

// RunStats are the run totals a Backend reports for one micro-batch.
type RunStats struct {
	// Claims is the number of claims the run verified.
	Claims int
	// Dollars is the run's simulated LLM fee; Calls its model invocations.
	Dollars float64
	Calls   int
}

// Backend verifies one micro-batch of documents as a single request-scoped
// run, annotating claims in place. cedar.System.Verify satisfies the
// contract via a small adapter in cmd/cedar-serve; tests substitute fakes.
// The server serializes calls (one batch loop), so implementations need not
// be safe for concurrent use.
type Backend interface {
	VerifyDocuments(docs []*claim.Document) (RunStats, error)
}

// BackendFunc adapts a function to the Backend interface.
type BackendFunc func(docs []*claim.Document) (RunStats, error)

// VerifyDocuments implements Backend.
func (f BackendFunc) VerifyDocuments(docs []*claim.Document) (RunStats, error) { return f(docs) }

// Config assembles a Server.
type Config struct {
	// Backend runs micro-batches; required.
	Backend Backend
	// DB is the database claims are verified against; required.
	DB *sqldb.Database
	// DocID is the default document ID for requests that omit doc_id. It
	// seeds verification, so it defaults to the database name — the same
	// ID the cedar CLI derives, preserving CLI/HTTP bit-identity.
	DocID string
	// MaxBatch caps documents per micro-batch (default 8).
	MaxBatch int
	// BatchWait is how long the batch loop lingers for more requests after
	// the first of a batch arrives (default 2ms). Zero keeps the default;
	// negative flushes immediately (every request rides alone, useful in
	// determinism tests).
	BatchWait time.Duration
	// QueueDepth caps requests admitted but not yet batched (default 64).
	// At the cap, requests shed with 429 and a Retry-After hint.
	QueueDepth int
	// RequestTimeout bounds one request's end-to-end wait, propagated via
	// context (default 60s; negative disables).
	RequestTimeout time.Duration
	// RetryAfter is the Retry-After hint on 429 responses (default: the
	// expected time to drain one full queue, QueueDepth/MaxBatch batch
	// waits, floored at 1s). Fixed by configuration, so shedding behavior
	// is deterministic and testable.
	RetryAfter time.Duration
	// StreamWindow bounds the documents one POST /v1/verify/stream request
	// may have admitted but not yet answered (default 4). The stream reader
	// stops consuming input — real backpressure, pushed to the client's TCP
	// window — instead of buffering past it.
	StreamWindow int
	// ReviewCap bounds the review queue's pending set (default
	// review.DefaultCap). At the cap, new items evict only lower-priority
	// ones; the queue keeps the claims most worth a human's attention.
	ReviewCap int
	// Schedule optionally names the planned verification schedule for
	// GET /v1/status.
	Schedule string
	// Resilience optionally snapshots the middleware counters for
	// GET /v1/metrics (nil omits the section).
	Resilience func() metrics.ResilienceSnapshot
	// Tracer, when non-nil, must be the tracer installed in the backend
	// system. The server reads it after each micro-batch (the backend
	// resets it per run) to accumulate per-method attempt rollups for
	// GET /v1/metrics.
	Tracer *trace.Tracer
	// Datasets is the ingested-dataset registry behind the /v1/datasets
	// routes. When nil, New builds an in-memory registry over DB (datasets
	// then live only as long as the process); cmd/cedar-serve passes one
	// backed by the System's persistent store so ingested catalogs survive
	// restarts.
	Datasets *ingest.Registry
}

// Server is the cedar-serve HTTP handler plus its batching machinery. Build
// one with New, serve it with net/http, and stop it with Shutdown.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan *job
	// mu guards draining and orders it against queue close: handlers hold
	// the read lock across the draining check and the (non-blocking) queue
	// send, so Shutdown cannot close the queue between the two.
	mu       sync.RWMutex
	draining bool
	// loopDone closes when the batch loop has drained the queue and exited.
	loopDone chan struct{}
	// batchSeq numbers micro-batch runs; touched only by the batch loop.
	batchSeq int64
	start    time.Time
	met      *serveMetrics
	// review holds verdicts ambiguous enough to deserve a human look,
	// ranked by expected value of review (see internal/review).
	review *review.Queue
}

// New validates the configuration, applies defaults, starts the batch loop,
// and returns the server. Callers own its lifecycle: serve it as an
// http.Handler and call Shutdown to drain.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("serve: Config.Backend is required")
	}
	if cfg.DB == nil {
		return nil, fmt.Errorf("serve: Config.DB is required")
	}
	if cfg.DocID == "" {
		cfg.DocID = cfg.DB.Name
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.BatchWait == 0 {
		cfg.BatchWait = 2 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.StreamWindow <= 0 {
		cfg.StreamWindow = 4
	}
	if cfg.ReviewCap <= 0 {
		cfg.ReviewCap = review.DefaultCap
	}
	if cfg.Datasets == nil {
		cfg.Datasets = ingest.NewRegistry(cfg.DB, nil, ingest.Options{})
	}
	if cfg.RetryAfter <= 0 {
		wait := cfg.BatchWait
		if wait < 0 {
			wait = 0
		}
		cfg.RetryAfter = time.Duration((cfg.QueueDepth+cfg.MaxBatch-1)/cfg.MaxBatch) * wait
		if cfg.RetryAfter < time.Second {
			cfg.RetryAfter = time.Second
		}
	}
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *job, cfg.QueueDepth),
		loopDone: make(chan struct{}),
		start:    time.Now(),
		met:      newServeMetrics(),
		review:   review.NewQueue(cfg.ReviewCap),
	}
	s.mux = s.routes()
	go s.batchLoop()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// QueueDepth returns the number of requests admitted but not yet batched.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Review exposes the server's review queue (never nil after New). Test and
// cmd hook; HTTP clients use GET /v1/review and POST /v1/review/{id}.
func (s *Server) Review() *review.Queue { return s.review }

// Shutdown drains the server gracefully: new requests are rejected with 503
// immediately, every request already admitted is verified and answered, and
// Shutdown returns once the batch loop has exited — or with ctx's error if
// the deadline expires first (the loop keeps draining regardless; admitted
// work is never abandoned). Safe to call more than once.
//
// Callers running an http.Server should call Shutdown here first, then
// http.Server.Shutdown, so in-flight handlers get their responses before
// the listener closes; cmd/cedar-serve wires SIGTERM to exactly that
// sequence.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	select {
	case <-s.loopDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with %d request(s) still queued", len(s.queue))
	}
}
