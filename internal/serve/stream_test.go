package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/claim"
)

// reviewBackend verifies claims with verdicts keyed on the claim value, so
// tests can provoke review-worthy ambiguity deterministically: "fail" is a
// transport-failed claim (disagreement 1.0), "3" a verdict that needed three
// attempts (disagreement 2/3), anything else a clean first-try verification
// (disagreement 0, never reviewed).
func reviewBackend(docs []*claim.Document) (RunStats, error) {
	n := 0
	for _, d := range docs {
		for _, c := range d.Claims {
			n++
			switch c.Value {
			case "fail":
				c.Result.Method = claim.MethodFailed
				c.Result.Failure = "timeout"
				c.Result.Attempts = 2
				c.Result.Correct = true
			case "3":
				c.Result.Verified = true
				c.Result.Correct = true
				c.Result.Method = "agg"
				c.Result.Attempts = 3
			default:
				c.Result.Verified = true
				c.Result.Correct = true
				c.Result.Method = "fake"
				c.Result.Attempts = 1
			}
		}
	}
	return RunStats{Claims: n, Dollars: 0.02 * float64(n), Calls: n}, nil
}

func streamDocLine(docID string, values ...string) string {
	var claims []string
	for _, v := range values {
		claims = append(claims, fmt.Sprintf(`{"sentence":"The value is %s.","value":%q}`, v, v))
	}
	return fmt.Sprintf(`{"doc_id":%q,"claims":[%s]}`, docID, strings.Join(claims, ","))
}

func postStream(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/verify/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readEvents(t *testing.T, resp *http.Response) []StreamEvent {
	t.Helper()
	defer resp.Body.Close()
	var evs []StreamEvent
	dec := json.NewDecoder(resp.Body)
	for {
		var ev StreamEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	return evs
}

// splitEvents partitions a stream into verdicts, errors, and the summary.
func splitEvents(t *testing.T, evs []StreamEvent) (verdicts, errors []StreamEvent, sum StreamSummary) {
	t.Helper()
	if len(evs) == 0 || evs[len(evs)-1].Event != "summary" {
		t.Fatalf("stream did not end with a summary: %+v", evs)
	}
	sum = *evs[len(evs)-1].Summary
	for _, ev := range evs[:len(evs)-1] {
		switch ev.Event {
		case "verdict":
			verdicts = append(verdicts, ev)
		case "error":
			errors = append(errors, ev)
		default:
			t.Fatalf("unexpected event %+v", ev)
		}
	}
	return verdicts, errors, sum
}

// A streamed corpus answers with one verdict event per claim, in arrival
// order, each identical to what the unary route reports for the same claim,
// then a summary covering the whole stream.
func TestStreamVerifyDeliversVerdictsInOrder(t *testing.T) {
	be := &gatedBackend{}
	_, ts := newTestServer(t, Config{Backend: be, BatchWait: -1})
	body := streamDocLine("d0", "1", "2") + "\n" + streamDocLine("d1", "3") + "\n" + streamDocLine("d2", "4") + "\n"
	resp := postStream(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q, want application/x-ndjson", ct)
	}
	verdicts, errs, sum := splitEvents(t, readEvents(t, resp))
	if len(errs) != 0 {
		t.Fatalf("unexpected error events: %+v", errs)
	}
	wantOrder := []struct {
		doc, claim string
		index      int
	}{
		{"d0", "c1", 0}, {"d0", "c2", 0}, {"d1", "c1", 1}, {"d2", "c1", 2},
	}
	if len(verdicts) != len(wantOrder) {
		t.Fatalf("verdicts = %d, want %d", len(verdicts), len(wantOrder))
	}
	for i, want := range wantOrder {
		ev := verdicts[i]
		if ev.DocID != want.doc || ev.Index != want.index || ev.Claim == nil || ev.Claim.ID != want.claim {
			t.Errorf("verdict[%d] = %+v, want doc %s claim %s index %d", i, ev, want.doc, want.claim, want.index)
		}
		if ev.Claim != nil && (!ev.Claim.Verified || !ev.Claim.Correct || ev.Claim.Method != "fake") {
			t.Errorf("verdict[%d] claim = %+v, not the backend's verdict", i, ev.Claim)
		}
	}
	if sum.Docs != 3 || sum.Claims != 4 || sum.Reviewed != 0 {
		t.Errorf("summary = %+v, want docs=3 claims=4 reviewed=0", sum)
	}
	if sum.Dollars <= 0 || sum.Calls != 4 {
		t.Errorf("summary accounting = %+v, want positive dollars and 4 calls", sum)
	}
}

// The stream window is real backpressure: with the backend wedged, the
// server stops reading the request body after window+1 admissions instead of
// buffering the client's backlog, and the admission queue never grows past
// the window.
func TestStreamBackpressureBoundsInFlight(t *testing.T) {
	be := &gatedBackend{entered: make(chan struct{}, 64), gate: make(chan struct{})}
	srv, ts := newTestServer(t, Config{Backend: be, BatchWait: -1, MaxBatch: 1, StreamWindow: 1})

	pr, pw := io.Pipe()
	const total = 12
	go func() {
		for i := 0; i < total; i++ {
			_, _ = io.WriteString(pw, streamDocLine(fmt.Sprintf("d%d", i), "1")+"\n")
		}
		pw.Close()
	}()
	respCh := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/verify/stream", "application/x-ndjson", pr)
		if err != nil {
			t.Error(err)
			respCh <- nil
			return
		}
		respCh <- resp
	}()

	<-be.entered // first micro-batch is in flight and wedged
	// Give the reader every chance to run ahead; the window must stop it.
	time.Sleep(150 * time.Millisecond)
	if depth := srv.QueueDepth(); depth > 2 {
		t.Errorf("queue depth = %d while wedged; window did not apply backpressure", depth)
	}
	close(be.gate) // release every batch
	resp := <-respCh
	if resp == nil {
		t.Fatal("stream request failed")
	}
	verdicts, errs, sum := splitEvents(t, readEvents(t, resp))
	if len(errs) != 0 || len(verdicts) != total || sum.Docs != total {
		t.Fatalf("after release: %d verdicts, %d errors, summary %+v; want %d verdicts", len(verdicts), len(errs), sum, total)
	}
	for i, ev := range verdicts {
		if ev.Index != i {
			t.Fatalf("verdict[%d].Index = %d; arrival order lost", i, ev.Index)
		}
	}
}

// A client that disconnects mid-stream must not wedge the batcher: admitted
// work completes against buffered result channels, later requests are
// served, and shutdown drains cleanly.
func TestStreamClientDisconnectDoesNotWedgeBatcher(t *testing.T) {
	be := &gatedBackend{entered: make(chan struct{}, 64), gate: make(chan struct{})}
	srv, ts := newTestServer(t, Config{Backend: be, BatchWait: -1, MaxBatch: 1, StreamWindow: 2})

	pr, pw := io.Pipe()
	go func() {
		for i := 0; i < 6; i++ {
			if _, err := io.WriteString(pw, streamDocLine(fmt.Sprintf("d%d", i), "1")+"\n"); err != nil {
				return
			}
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/verify/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, err = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errCh <- err
	}()

	<-be.entered // first batch wedged with more documents queued behind it
	cancel()     // client walks away mid-stream
	pw.Close()
	<-errCh        // transport observed the disconnect
	close(be.gate) // let the wedged batches finish

	// The batcher must still serve new requests promptly...
	done := make(chan *http.Response, 1)
	go func() { done <- postVerify(t, ts.URL, claimBody) }()
	select {
	case resp := <-done:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-disconnect verify status = %d, want 200", resp.StatusCode)
		}
		resp.Body.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("verify after stream disconnect hung: batcher wedged")
	}
	// ...and drain without waiting on the dead client.
	sctx, scancel := contextWithTimeout(5 * time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown after disconnect: %v", err)
	}
}

// A unary client that disconnects mid-run gets dropped without wedging the
// batch loop (its result channel is buffered), and the server keeps serving.
func TestUnaryClientDisconnectDoesNotWedgeBatcher(t *testing.T) {
	be := &gatedBackend{entered: make(chan struct{}, 64), gate: make(chan struct{})}
	srv, ts := newTestServer(t, Config{Backend: be, BatchWait: -1, MaxBatch: 1})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/verify", strings.NewReader(claimBody))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	<-be.entered // the request's batch is in flight
	cancel()     // client disconnects mid-run
	if err := <-errCh; err == nil {
		t.Fatal("expected the canceled request to fail client-side")
	}
	close(be.gate)

	done := make(chan *http.Response, 1)
	go func() { done <- postVerify(t, ts.URL, claimBody) }()
	select {
	case resp := <-done:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-disconnect verify status = %d, want 200", resp.StatusCode)
		}
		resp.Body.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("verify after unary disconnect hung: batcher wedged")
	}
	sctx, scancel := contextWithTimeout(5 * time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown after disconnect: %v", err)
	}
}

// Malformed input mid-stream ends the stream with an in-band error event;
// verdicts already earned still arrive, and the summary still closes the
// stream.
func TestStreamBadInputMidStream(t *testing.T) {
	be := &gatedBackend{}
	_, ts := newTestServer(t, Config{Backend: be, BatchWait: -1})
	body := streamDocLine("d0", "1") + "\n" + "this is not json\n" + streamDocLine("d2", "2") + "\n"
	resp := postStream(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (stream errors are in-band)", resp.StatusCode)
	}
	verdicts, errs, sum := splitEvents(t, readEvents(t, resp))
	if len(verdicts) != 1 || verdicts[0].DocID != "d0" {
		t.Fatalf("verdicts = %+v, want exactly d0's", verdicts)
	}
	if len(errs) != 1 || errs[0].Error == nil || errs[0].Error.Code != CodeBadRequest {
		t.Fatalf("errors = %+v, want one bad_request", errs)
	}
	if sum.Docs != 1 {
		t.Errorf("summary = %+v, want docs=1", sum)
	}
}

// Ambiguous verdicts flow into the review queue from every verification
// route; stream events carry the review ID inline; the queue lists pending
// items in priority order and resolves idempotently.
func TestReviewQueueEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Backend: BackendFunc(reviewBackend), BatchWait: -1})

	// One streamed document: a failed claim (disagreement 1.0), a
	// three-attempt claim (2/3), and a clean one (never reviewed).
	resp := postStream(t, ts.URL, streamDocLine("d0", "fail", "3", "7")+"\n")
	verdicts, errs, sum := splitEvents(t, readEvents(t, resp))
	if len(errs) != 0 || len(verdicts) != 3 {
		t.Fatalf("stream = %d verdicts %d errors, want 3/0", len(verdicts), len(errs))
	}
	if verdicts[0].ReviewID == "" || verdicts[1].ReviewID == "" || verdicts[2].ReviewID != "" {
		t.Fatalf("review IDs = %q %q %q, want set/set/empty",
			verdicts[0].ReviewID, verdicts[1].ReviewID, verdicts[2].ReviewID)
	}
	if sum.Reviewed != 2 {
		t.Errorf("summary reviewed = %d, want 2", sum.Reviewed)
	}

	// The unary route reviews too.
	uresp := postVerify(t, ts.URL, `{"doc_id":"d1","claims":[{"sentence":"The value is fail.","value":"fail"}]}`)
	if uresp.StatusCode != http.StatusOK {
		t.Fatalf("unary status = %d", uresp.StatusCode)
	}
	uresp.Body.Close()

	// Pending list: priority descending — both failed claims (1.0) outrank
	// the retried claim (2/3); ties break by ID ascending.
	lresp, err := http.Get(ts.URL + "/v1/review")
	if err != nil {
		t.Fatal(err)
	}
	var list ReviewListResponse
	decodeInto(t, lresp, &list)
	if len(list.Items) != 3 || list.Stats.Depth != 3 {
		t.Fatalf("review list = %d items depth %d, want 3/3", len(list.Items), list.Stats.Depth)
	}
	if list.Items[0].Disagreement != 1 || list.Items[1].Disagreement != 1 {
		t.Fatalf("head of queue = %+v, want the failed claims first", list.Items[:2])
	}
	if list.Items[0].ID >= list.Items[1].ID {
		t.Errorf("equal-priority items not ID-ordered: %q then %q", list.Items[0].ID, list.Items[1].ID)
	}
	for _, it := range list.Items[:2] {
		if it.Method != claim.MethodFailed || it.Failure != "timeout" || it.FeeSunk <= 0 {
			t.Errorf("item %+v missing verdict context", it)
		}
	}

	// ?limit truncates deterministically.
	lresp, err = http.Get(ts.URL + "/v1/review?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	var limited ReviewListResponse
	decodeInto(t, lresp, &limited)
	if len(limited.Items) != 1 || limited.Items[0].ID != list.Items[0].ID {
		t.Fatalf("limited list = %+v, want just the head", limited.Items)
	}

	// Resolve is idempotent: the first resolution wins.
	id := verdicts[0].ReviewID
	r1, err := http.Post(ts.URL+"/v1/review/"+id, "application/json",
		strings.NewReader(`{"resolution":"overturned","note":"spot check"}`))
	if err != nil {
		t.Fatal(err)
	}
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("resolve status = %d", r1.StatusCode)
	}
	var it1 map[string]any
	decodeInto(t, r1, &it1)
	if it1["resolution"] != "overturned" || it1["note"] != "spot check" {
		t.Fatalf("resolved item = %+v", it1)
	}
	r2, err := http.Post(ts.URL+"/v1/review/"+id, "application/json",
		strings.NewReader(`{"resolution":"confirmed"}`))
	if err != nil {
		t.Fatal(err)
	}
	var it2 map[string]any
	decodeInto(t, r2, &it2)
	if it2["resolution"] != "overturned" {
		t.Fatalf("second resolve changed the verdict: %+v", it2)
	}

	// Unknown IDs 404; invalid resolutions 400.
	r3, err := http.Post(ts.URL+"/v1/review/ffffffffffffffff", "application/json",
		strings.NewReader(`{"resolution":"confirmed"}`))
	if err != nil {
		t.Fatal(err)
	}
	if r3.StatusCode != http.StatusNotFound || errorCode(t, r3) != CodeNotFound {
		t.Fatalf("unknown id: status %d", r3.StatusCode)
	}
	r4, err := http.Post(ts.URL+"/v1/review/"+verdicts[1].ReviewID, "application/json",
		strings.NewReader(`{"resolution":"maybe"}`))
	if err != nil {
		t.Fatal(err)
	}
	if r4.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad resolution: status %d", r4.StatusCode)
	}
	io.Copy(io.Discard, r4.Body)
	r4.Body.Close()

	// Metrics expose the queue and the stream surface.
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var met MetricsResponse
	decodeInto(t, mresp, &met)
	if met.Review == nil || met.Review.Depth != 2 || met.Review.Resolved != 1 || met.Review.Enqueued != 3 {
		t.Fatalf("metrics review = %+v, want depth=2 resolved=1 enqueued=3", met.Review)
	}
	if met.Stream == nil || met.Stream.Sessions != 1 || met.Stream.Docs != 1 || met.Stream.Window == 0 {
		t.Fatalf("metrics stream = %+v, want sessions=1 docs=1 window>0", met.Stream)
	}
}

// A draining server ends a stream with an in-band draining error, mirroring
// the unary 503.
func TestStreamRejectsWhileDraining(t *testing.T) {
	be := &gatedBackend{}
	srv, ts := newTestServer(t, Config{Backend: be, BatchWait: -1})
	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp := postStream(t, ts.URL, streamDocLine("d0", "1")+"\n")
	verdicts, errs, _ := splitEvents(t, readEvents(t, resp))
	if len(verdicts) != 0 || len(errs) != 1 || errs[0].Error.Code != CodeDraining {
		t.Fatalf("draining stream = %d verdicts, errors %+v; want one draining error", len(verdicts), errs)
	}
}
