package serve

import (
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/ingest"
	"repro/internal/trace"
)

// datasets.go is the dynamic dataset onboarding surface (docs/DATA.md):
// POST /v1/datasets ingests a CSV/JSON body (raw or multipart) into the
// server's catalog through its ingest.Registry, generating the verification
// surface; GET lists or inspects datasets; DELETE removes one. In the
// sharded tier the coordinator fans these routes out so every replica holds
// the same catalog and ring routing stays deterministic (a claim over an
// ingested table verifies identically whichever replica owns its key).

// maxDatasetBody caps an ingestion request body. It is deliberately larger
// than maxBodyBytes (datasets are data, not claim text) and one byte past
// the largest ingest budget this server would read anyway, so the ingest
// layer — not the transport — decides where to truncate.
const maxDatasetBody = ingest.DefaultMaxBytes + 1

// DatasetResponse answers POST /v1/datasets and GET /v1/datasets/{name}.
type DatasetResponse struct {
	// Dataset is the ingestion summary (schema, row counts, sampling
	// decision, fingerprint).
	Dataset *ingest.Result `json:"dataset"`
	// Surface is the generated verification surface; omitted from list
	// entries.
	Surface *ingest.Surface `json:"surface,omitempty"`
}

// DatasetListResponse answers GET /v1/datasets in ingestion order.
type DatasetListResponse struct {
	Datasets []*ingest.Result `json:"datasets"`
}

// DatasetDeleteResponse answers DELETE /v1/datasets/{name}.
type DatasetDeleteResponse struct {
	Deleted string `json:"deleted"`
}

// datasetOptions reads the ingestion options of one request from URL query
// parameters (raw bodies) or multipart form values, which share names:
// name, format, sample_rows, max_bytes, seed.
func datasetOptions(get func(string) string) (ingest.Options, error) {
	opts := ingest.Options{
		Table:  strings.TrimSpace(get("name")),
		Format: get("format"),
	}
	if opts.Table == "" {
		return opts, fmt.Errorf("dataset name is required (query parameter or form value %q)", "name")
	}
	for _, p := range []struct {
		key string
		dst func(int64)
	}{
		{"sample_rows", func(v int64) { opts.SampleRows = int(v) }},
		{"max_bytes", func(v int64) { opts.MaxBytes = v }},
		{"seed", func(v int64) { opts.Seed = v }},
	} {
		raw := get(p.key)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("%s must be an integer, got %q", p.key, raw)
		}
		p.dst(v)
	}
	return opts, nil
}

// handleDatasetCreate answers POST /v1/datasets. Two body shapes are
// accepted: multipart/form-data with the data under the "file" field and
// options as form values, or the raw CSV/NDJSON/JSON bytes with options as
// query parameters.
func (s *Server) handleDatasetCreate(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.met.inc(&s.met.rejectedDraining)
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining", 0)
		return
	}
	var (
		opts ingest.Options
		body io.Reader
		err  error
	)
	mediaType, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mediaType == "multipart/form-data" {
		mr, ferr := r.MultipartReader()
		if ferr != nil {
			s.met.inc(&s.met.badRequests)
			writeError(w, http.StatusBadRequest, CodeBadRequest, ferr.Error(), 0)
			return
		}
		// Walk parts in order, collecting option values until the file part;
		// options must precede the file in the form for streaming's sake.
		fields := map[string]string{}
		var filePart io.Reader
		for filePart == nil {
			part, perr := mr.NextPart()
			if perr == io.EOF {
				break
			}
			if perr != nil {
				s.met.inc(&s.met.badRequests)
				writeError(w, http.StatusBadRequest, CodeBadRequest, perr.Error(), 0)
				return
			}
			if part.FormName() == "file" {
				filePart = part
				break
			}
			val, verr := io.ReadAll(io.LimitReader(part, 1024))
			if verr != nil {
				s.met.inc(&s.met.badRequests)
				writeError(w, http.StatusBadRequest, CodeBadRequest, verr.Error(), 0)
				return
			}
			fields[part.FormName()] = string(val)
		}
		if filePart == nil {
			s.met.inc(&s.met.badRequests)
			writeError(w, http.StatusBadRequest, CodeBadRequest, `multipart body needs a "file" field (after any option fields)`, 0)
			return
		}
		opts, err = datasetOptions(func(k string) string {
			if v, ok := fields[k]; ok {
				return v
			}
			return r.URL.Query().Get(k)
		})
		body = filePart
	} else {
		opts, err = datasetOptions(r.URL.Query().Get)
		body = io.LimitReader(r.Body, maxDatasetBody)
	}
	if err != nil {
		s.met.inc(&s.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}

	ds, err := s.cfg.Datasets.IngestFrom(body, opts)
	if err != nil {
		s.met.inc(&s.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	if t := s.cfg.Tracer; t.Enabled() {
		t.Record(trace.Span{
			Key:    trace.Key{Doc: s.cfg.DocID, Method: "ingest"},
			Kind:   trace.KindIngestSample,
			Detail: ds.Info.SampleDetail(),
		})
	}
	writeJSON(w, http.StatusOK, DatasetResponse{Dataset: ds.Info, Surface: ds.Surface})
}

// handleDatasetList answers GET /v1/datasets with the registered datasets'
// summaries, in ingestion order.
func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	list := s.cfg.Datasets.List()
	out := DatasetListResponse{Datasets: make([]*ingest.Result, 0, len(list))}
	for _, ds := range list {
		out.Datasets = append(out.Datasets, ds.Info)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDatasetGet answers GET /v1/datasets/{name} with the full dataset
// record, surface included.
func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	ds := s.cfg.Datasets.Get(r.PathValue("name"))
	if ds == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "no dataset with that name", 0)
		return
	}
	writeJSON(w, http.StatusOK, DatasetResponse{Dataset: ds.Info, Surface: ds.Surface})
}

// handleDatasetDelete answers DELETE /v1/datasets/{name}. Base tables (the
// -csv fixtures) are not datasets and cannot be deleted here.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.met.inc(&s.met.rejectedDraining)
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining", 0)
		return
	}
	name := r.PathValue("name")
	ok, err := s.cfg.Datasets.Delete(name)
	if err != nil {
		s.met.inc(&s.met.internalErrors)
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no dataset with that name", 0)
		return
	}
	writeJSON(w, http.StatusOK, DatasetDeleteResponse{Deleted: name})
}
