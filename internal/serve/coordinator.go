package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/trace"
)

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// RouteKey derives the shard key of one document: the claim/config
	// fingerprint routed on the hash ring. Required. cmd/cedar-serve builds
	// it from the serving config tag, the document ID, and the claim texts
	// via shard.Fingerprint.
	RouteKey func(docID string, claims []ClaimInput) []byte
	// DocID is the default document ID for requests that omit doc_id. It
	// must match the replicas' default (their database name) so the
	// coordinator routes a defaulted request by the same identity the
	// replica will verify under.
	DocID string
	// Replicas are the initial replica base URLs; more can join at runtime
	// via POST /v1/replicas.
	Replicas []string
	// Client issues proxied requests and health probes. The default pools
	// connections per replica so tens of thousands of concurrent clients
	// multiplex over a bounded set of coordinator->replica sockets.
	Client *http.Client
	// ProbeInterval paces health sweeps (default 500ms); FailAfter and
	// RecoverAfter are the replica breaker's trip and readmission streaks
	// (default 2 each — see shard.Prober).
	ProbeInterval time.Duration
	FailAfter     int
	RecoverAfter  int
	// Attempts bounds the replicas one request may try, owner first
	// (default 3).
	Attempts int
	// StreamWindow bounds the documents one POST /v1/verify/stream request
	// may have in flight across replicas (default 4). Each document is
	// proxied to the replica owning its shard key; the window is the
	// coordinator's own backpressure bound, independent of the replicas'.
	StreamWindow int
	// RequestTimeout bounds one proxied request end to end (default 60s;
	// negative disables).
	RequestTimeout time.Duration
	// Schedule optionally names the replicas' verification schedule for
	// GET /v1/status.
	Schedule string
	// Tracer, when non-nil, records shard_route/shard_failover spans for
	// every proxied request. These are topology-dependent and dropped by
	// trace.ReplayNormalize.
	Tracer *trace.Tracer
	// Route, when non-nil, enables cross-database claim routing at the
	// coordinator (DESIGN.md §16): compound claims decompose here and each
	// sub-claim fans out to the replica owning its routed fingerprint, with
	// verdicts recombined in caller order. Requests without compound claims
	// take the ordinary relay path untouched.
	Route *RouteConfig
}

// Coordinator is the sharding front end of the serving tier: an
// http.Handler exposing the same /v1 verification surface as Server, but
// answering by routing each request to the replica owning its claim/config
// fingerprint on a consistent-hash ring. Replicas register and deregister
// at runtime; a health prober ejects dead or draining replicas (rehashing
// their keyspace onto ring successors) and readmits them when they recover.
// Because verdicts are deterministic per (doc_id, claims) regardless of
// which replica verifies them, routing affects throughput and fee
// attribution only — never responses.
type Coordinator struct {
	cfg    CoordinatorConfig
	client *http.Client
	ring   *shard.Ring
	prober *shard.Prober
	proxy  *shard.Proxy
	mux    *http.ServeMux
	res    *metrics.Resilience
	met    *serveMetrics
	start  time.Time

	routed       atomic.Int64
	failovers    atomic.Int64
	ejections    atomic.Int64
	readmissions atomic.Int64

	mu       sync.RWMutex
	draining bool
	// stopProber cancels the sweep loop; proberDone closes when it exits.
	stopProber context.CancelFunc
	proberDone chan struct{}
}

// NewCoordinator validates the configuration, registers the initial
// replicas, starts the health-probe loop, and returns the coordinator.
// Callers own its lifecycle: serve it as an http.Handler and call Shutdown
// to stop probing and drain.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.RouteKey == nil {
		return nil, fmt.Errorf("serve: CoordinatorConfig.RouteKey is required")
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.StreamWindow <= 0 {
		cfg.StreamWindow = 4
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			MaxConnsPerHost:     512,
		}}
	}
	c := &Coordinator{
		cfg:        cfg,
		client:     client,
		ring:       shard.NewRing(0),
		res:        &metrics.Resilience{},
		met:        newServeMetrics(),
		start:      time.Now(),
		proberDone: make(chan struct{}),
	}
	c.prober = &shard.Prober{
		Probe:        c.probe,
		Interval:     cfg.ProbeInterval,
		FailAfter:    cfg.FailAfter,
		RecoverAfter: cfg.RecoverAfter,
		OnEject: func(node string) {
			c.ring.Remove(node)
			c.ejections.Add(1)
		},
		OnAdmit: func(node string) {
			c.ring.Add(node)
			c.readmissions.Add(1)
		},
		Metrics: c.res,
	}
	c.proxy = &shard.Proxy{
		Ring:     c.ring,
		BaseURL:  func(node string) string { return node },
		Client:   client,
		Attempts: cfg.Attempts,
		OnFailure: func(node string) {
			c.failovers.Add(1)
			c.prober.ReportFailure(node)
		},
		OnSuccess: c.prober.ReportSuccess,
	}
	for _, url := range cfg.Replicas {
		c.register(url)
	}
	c.mux = c.routes()
	ctx, cancel := context.WithCancel(context.Background())
	c.stopProber = cancel
	go func() {
		defer close(c.proberDone)
		c.prober.Run(ctx)
	}()
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// routes builds the coordinator's HTTP surface: the Server verification
// routes (proxied) plus the replica-registration endpoint.
func (c *Coordinator) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", c.handleVerify)
	mux.HandleFunc("POST /v1/verify/batch", c.handleVerifyBatch)
	mux.HandleFunc("POST /v1/verify/stream", c.handleVerifyStream)
	mux.HandleFunc("GET /v1/review", c.handleReviewList)
	mux.HandleFunc("POST /v1/review/{id}", c.handleReviewResolve)
	c.coordRoutesDatasets(mux)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	mux.HandleFunc("GET /v1/metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("POST /v1/replicas", c.handleReplicaJoin)
	mux.HandleFunc("DELETE /v1/replicas", c.handleReplicaLeave)
	return mux
}

// probe checks one replica's /healthz. A draining replica answers 503, so a
// replica beginning graceful shutdown is ejected within FailAfter sweeps and
// its keyspace rehashes while its in-flight work completes where it is.
func (c *Coordinator) probe(ctx context.Context, node string) error {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return nil
}

// register admits one replica (idempotent).
func (c *Coordinator) register(url string) {
	c.prober.Track(url)
	c.ring.Add(url)
}

// deregister withdraws one replica entirely — explicit leave, not ejection,
// so it stops being probed for readmission.
func (c *Coordinator) deregister(url string) {
	c.prober.Forget(url)
	c.ring.Remove(url)
}

// Owner reports which replica a shard key routes to. Test hook.
func (c *Coordinator) Owner(key []byte) (string, bool) { return c.ring.Assign(key) }

// Replicas snapshots the registered replicas and their health, sorted.
func (c *Coordinator) Replicas() []ReplicaStatus {
	tracked := c.prober.Tracked()
	out := make([]ReplicaStatus, 0, len(tracked))
	for _, url := range tracked {
		out = append(out, ReplicaStatus{URL: url, Healthy: c.prober.IsHealthy(url)})
	}
	return out
}

// Draining reports whether the coordinator has stopped admitting work.
func (c *Coordinator) Draining() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.draining
}

// Shutdown stops admitting requests (503 draining, like Server) and stops
// the probe loop. The replicas drain themselves; the coordinator holds no
// queued work of its own. Safe to call more than once.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.stopProber()
	select {
	case <-c.proberDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// requestContext applies the configured per-request deadline.
func (c *Coordinator) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if c.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// decodeBody strictly decodes a JSON request body into dst, preserving the
// raw bytes so a valid body can be relayed verbatim.
func (c *Coordinator) decodeBody(w http.ResponseWriter, r *http.Request, dst any) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err == nil {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		err = dec.Decode(dst)
	}
	if err != nil {
		c.met.inc(&c.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("decoding request body: %v", err), 0)
		return nil, false
	}
	return body, true
}

// rejectDraining answers a request arriving after Shutdown.
func (c *Coordinator) rejectDraining(w http.ResponseWriter) bool {
	if !c.Draining() {
		return false
	}
	c.met.inc(&c.met.rejectedDraining)
	writeError(w, http.StatusServiceUnavailable, CodeDraining, "coordinator is draining", 0)
	return true
}

// routeKey derives one document's shard key, applying the doc_id default the
// replica will apply, so the coordinator and replica agree on the identity.
func (c *Coordinator) routeKey(docID string, claims []ClaimInput) ([]byte, string) {
	if docID == "" {
		docID = c.cfg.DocID
	}
	return c.cfg.RouteKey(docID, claims), docID
}

// traceRoute records the routing spans of one proxied exchange.
func (c *Coordinator) traceRoute(docID string, res shard.Result) {
	t := c.cfg.Tracer
	if !t.Enabled() {
		return
	}
	key := trace.Key{Doc: docID, Method: "route"}
	if res.Hops > 0 {
		t.Record(trace.Span{Key: key, Kind: trace.KindShardFailover,
			Detail: fmt.Sprintf("%d hop(s)", res.Hops)})
	}
	outcome := trace.OutcomeOK
	if res.Status != http.StatusOK {
		outcome = trace.OutcomeError
	}
	t.Record(trace.Span{Key: key, Kind: trace.KindShardRoute, Detail: res.Node, Outcome: outcome})
}

// countRelay books the coordinator's view of a relayed replica response.
func (c *Coordinator) countRelay(status int) {
	switch status {
	case http.StatusTooManyRequests:
		c.met.inc(&c.met.shedOverload)
	case http.StatusServiceUnavailable:
		c.met.inc(&c.met.rejectedDraining)
	case http.StatusGatewayTimeout:
		c.met.inc(&c.met.deadlineExpired)
	case http.StatusBadRequest:
		c.met.inc(&c.met.badRequests)
	case http.StatusInternalServerError:
		c.met.inc(&c.met.internalErrors)
	}
}

// proxyErrorDetail classifies a proxy failure and books its metric: an empty
// ring is a drain-equivalent 503; a replica that died after the request was
// delivered is 502/replica_lost — the work may have run and been billed, so
// the proxy refused to retry it elsewhere and the caller decides whether
// re-submitting (verdict-safe; only fees recur) is acceptable; anything else
// is a 500 naming the last replica error.
func (c *Coordinator) proxyErrorDetail(err error) (int, ErrorDetail) {
	switch {
	case err == shard.ErrNoReplicas:
		c.met.inc(&c.met.rejectedDraining)
		return http.StatusServiceUnavailable, ErrorDetail{Code: CodeDraining, Message: "no live replicas"}
	case errors.Is(err, shard.ErrAfterDelivery):
		c.met.inc(&c.met.internalErrors)
		return http.StatusBadGateway, ErrorDetail{Code: CodeReplicaLost, Message: err.Error()}
	default:
		c.met.inc(&c.met.internalErrors)
		return http.StatusInternalServerError, ErrorDetail{Code: CodeInternal, Message: err.Error()}
	}
}

// renderProxyError maps a proxy failure onto the error envelope.
func (c *Coordinator) renderProxyError(w http.ResponseWriter, err error) {
	status, det := c.proxyErrorDetail(err)
	writeError(w, status, det.Code, det.Message, 0)
}

// relay writes a replica's response verbatim.
func relay(w http.ResponseWriter, res shard.Result) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.Status)
	_, _ = w.Write(res.Body)
}

// handleVerify proxies POST /v1/verify to the replica owning the request's
// shard key, failing over along the ring when the owner is dead or draining.
func (c *Coordinator) handleVerify(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if c.rejectDraining(w) {
		return
	}
	var req VerifyRequest
	body, ok := c.decodeBody(w, r, &req)
	if !ok {
		return
	}
	ctx, cancel := c.requestContext(r)
	defer cancel()
	if c.cfg.Route != nil && c.tryRoutedVerify(ctx, w, started, req) {
		return
	}
	key, docID := c.routeKey(req.DocID, req.Claims)
	res, err := c.proxy.Do(ctx, key, "/v1/verify", body)
	if err != nil {
		c.renderProxyError(w, err)
		return
	}
	c.routed.Add(1)
	c.traceRoute(docID, res)
	c.countRelay(res.Status)
	if res.Status == http.StatusOK {
		c.met.recordRequest(time.Since(started))
	}
	relay(w, res)
}

// handleVerifyBatch proxies POST /v1/verify/batch: documents are grouped by
// owning replica, the sub-batches fan out concurrently, and the responses
// merge back in the caller's document order with summed batch stats. Every
// document still rides a replica micro-batch, so fee attribution follows the
// replica that did the work.
func (c *Coordinator) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if c.rejectDraining(w) {
		return
	}
	var req BatchRequest
	if _, ok := c.decodeBody(w, r, &req); !ok {
		return
	}
	if len(req.Documents) == 0 {
		c.met.inc(&c.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest, "batch request has no documents", 0)
		return
	}
	ctx, cancel := c.requestContext(r)
	defer cancel()
	if c.cfg.Route != nil && c.tryRoutedVerifyBatch(ctx, w, started, req) {
		return
	}

	// Partition by owner. Assignment is read once per document; a membership
	// change mid-request is handled by the proxy's failover, not re-grouped.
	type group struct {
		idxs  []int
		docs  []DocumentInput
		key   []byte
		docID string
	}
	groups := make(map[string]*group)
	order := make([]string, 0, 4) // deterministic fan-out order for tests
	for i, in := range req.Documents {
		key, docID := c.routeKey(in.DocID, in.Claims)
		owner, ok := c.ring.Assign(key)
		if !ok {
			c.renderProxyError(w, shard.ErrNoReplicas)
			return
		}
		g := groups[owner]
		if g == nil {
			g = &group{key: key, docID: docID}
			groups[owner] = g
			order = append(order, owner)
		}
		g.idxs = append(g.idxs, i)
		g.docs = append(g.docs, in)
	}

	type outcome struct {
		firstIdx int
		res      shard.Result
		err      error
		parsed   BatchResponse
	}
	outcomes := make([]outcome, len(order))
	var wg sync.WaitGroup
	for gi, owner := range order {
		g := groups[owner]
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			out := outcome{firstIdx: g.idxs[0]}
			body, err := json.Marshal(BatchRequest{Documents: g.docs})
			if err == nil {
				out.res, err = c.proxy.Do(ctx, g.key, "/v1/verify/batch", body)
			}
			if err == nil && out.res.Status == http.StatusOK {
				err = json.Unmarshal(out.res.Body, &out.parsed)
			}
			out.err = err
			outcomes[gi] = out
		}(gi, g)
	}
	wg.Wait()

	// Any sub-batch failure fails the request; report the failure covering
	// the earliest document so the error is stable under re-grouping.
	failed := -1
	for gi := range outcomes {
		o := &outcomes[gi]
		if o.err == nil && o.res.Status == http.StatusOK {
			continue
		}
		if failed < 0 || o.firstIdx < outcomes[failed].firstIdx {
			failed = gi
		}
	}
	if failed >= 0 {
		o := outcomes[failed]
		if o.err != nil {
			c.renderProxyError(w, o.err)
			return
		}
		c.routed.Add(1)
		c.traceRoute(groups[order[failed]].docID, o.res)
		c.countRelay(o.res.Status)
		relay(w, o.res)
		return
	}

	merged := BatchResponse{Documents: make([]DocumentResult, len(req.Documents))}
	for gi, owner := range order {
		o := outcomes[gi]
		g := groups[owner]
		c.routed.Add(1)
		c.traceRoute(g.docID, o.res)
		for j, idx := range g.idxs {
			if j < len(o.parsed.Documents) {
				merged.Documents[idx] = o.parsed.Documents[j]
			}
		}
		merged.Batch.Docs += o.parsed.Batch.Docs
		merged.Batch.Claims += o.parsed.Batch.Claims
		merged.Batch.Dollars += o.parsed.Batch.Dollars
		merged.Batch.Calls += o.parsed.Batch.Calls
	}
	c.met.recordRequest(time.Since(started))
	writeJSON(w, http.StatusOK, merged)
}

// handleStatus answers GET /v1/status with the coordinator role and the
// replica roster.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	state := "serving"
	if c.Draining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		State:    state,
		Schedule: c.cfg.Schedule,
		UptimeMS: time.Since(c.start).Milliseconds(),
		Role:     "coordinator",
		Replicas: c.Replicas(),
	})
}

// handleMetrics answers GET /v1/metrics: the coordinator's own request
// counters plus the shard section and the replica-breaker counters.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body := c.met.snapshot()
	body.Stream.Window = c.cfg.StreamWindow
	rs := c.res.Snapshot()
	body.Resilience = &ResilienceCounters{
		BreakerTrips:  rs.BreakerTrips,
		BreakerSheds:  rs.BreakerSheds,
		BreakerProbes: rs.BreakerProbes,
	}
	replicas := c.Replicas()
	healthy := 0
	for _, rep := range replicas {
		if rep.Healthy {
			healthy++
		}
	}
	body.Shard = &ShardCounters{
		Replicas:     len(replicas),
		Healthy:      healthy,
		Routed:       c.routed.Load(),
		Failovers:    c.failovers.Load(),
		Ejections:    c.ejections.Load(),
		Readmissions: c.readmissions.Load(),
	}
	writeJSON(w, http.StatusOK, body)
}

// handleHealthz answers 200 while at least one replica is live, 503 while
// draining or with an empty ring, so an upstream balancer can fail away from
// a coordinator that cannot serve.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if c.Draining() || c.ring.Len() == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "unavailable")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleReplicaJoin admits a replica announced via POST /v1/replicas.
func (c *Coordinator) handleReplicaJoin(w http.ResponseWriter, r *http.Request) {
	var req ReplicaRequest
	if _, ok := c.decodeBody(w, r, &req); !ok {
		return
	}
	if req.URL == "" {
		c.met.inc(&c.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest, "replica url is required", 0)
		return
	}
	c.register(req.URL)
	writeJSON(w, http.StatusOK, c.Replicas())
}

// handleReplicaLeave withdraws a replica via DELETE /v1/replicas?url=...;
// replicas call it as the first step of graceful shutdown so new work
// rehashes immediately while they drain what they already admitted.
func (c *Coordinator) handleReplicaLeave(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		c.met.inc(&c.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest, "replica url query parameter is required", 0)
		return
	}
	c.deregister(url)
	writeJSON(w, http.StatusOK, c.Replicas())
}
