package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/claim"
	"repro/internal/review"
)

// Wire types of the cedar-serve HTTP API (documented in docs/CLI.md). The
// JSON field names are a compatibility surface: doclint and the API
// reference both name them, so renames are breaking changes.

// ClaimInput is one claim as submitted by a client — the same shape the
// cedar CLI's -claims file uses, so a claims file can be POSTed verbatim as
// the "claims" array of a request.
type ClaimInput struct {
	// ID identifies the claim in the response; defaults to "c<position>".
	ID string `json:"id,omitempty"`
	// Sentence is the claim sentence.
	Sentence string `json:"sentence"`
	// Value is the claimed value as it appears in the sentence.
	Value string `json:"value"`
	// Context is the optional paragraph containing the sentence.
	Context string `json:"context,omitempty"`
}

// DocumentInput is one batch-request entry: a set of claims verified as one
// document. DocID seeds every attempt, so a fixed (doc_id, claims) pair
// reproduces bit-identically regardless of what else shares the micro-batch.
type DocumentInput struct {
	// DocID defaults to the server's database name — the same document ID
	// the cedar CLI derives, which makes served runs reproduce CLI runs.
	DocID string `json:"doc_id,omitempty"`
	// Claims are the claims to verify, in order (order determines seeding).
	Claims []ClaimInput `json:"claims"`
}

// VerifyRequest is the body of POST /v1/verify: one document's claims.
type VerifyRequest struct {
	DocID  string       `json:"doc_id,omitempty"`
	Claims []ClaimInput `json:"claims"`
}

// BatchRequest is the body of POST /v1/verify/batch.
type BatchRequest struct {
	Documents []DocumentInput `json:"documents"`
}

// ClaimResult is one claim's verdict.
type ClaimResult struct {
	ID       string `json:"id"`
	Correct  bool   `json:"correct"`
	Verified bool   `json:"verified"`
	Method   string `json:"method,omitempty"`
	Query    string `json:"query,omitempty"`
	// Attempts counts the method invocations spent on the claim; more than
	// one means the methods disagreed before a verdict landed, which feeds
	// the review queue's disagreement score.
	Attempts int `json:"attempts,omitempty"`
	// Failure is the transport-error class when the claim's method is
	// "failed" — the provider, not the translation, is why it went
	// unverified (see internal/claim).
	Failure string `json:"failure,omitempty"`
}

// DocumentResult is the verdict set for one submitted document.
type DocumentResult struct {
	DocID  string        `json:"doc_id"`
	Claims []ClaimResult `json:"claims"`
}

// BatchStats describes the micro-batch a request rode in. Fees are
// accounted per batch (the run is the billing unit), so Dollars/Calls cover
// every document of the batch, not just the caller's; Docs and Claims say
// how many that was. A request submitted alone — or any POST /v1/verify/batch
// sized at least MaxBatch — gets totals covering exactly its own claims.
type BatchStats struct {
	// Docs is the number of documents the micro-batch verified.
	Docs int `json:"docs"`
	// Claims is the total number of claims across those documents.
	Claims int `json:"claims"`
	// Dollars is the batch run's simulated LLM fee.
	Dollars float64 `json:"dollars"`
	// Calls is the batch run's model invocation count.
	Calls int `json:"calls"`
}

// VerifyResponse is the body answering POST /v1/verify.
type VerifyResponse struct {
	DocID  string        `json:"doc_id"`
	Claims []ClaimResult `json:"claims"`
	Batch  BatchStats    `json:"batch"`
}

// BatchResponse is the body answering POST /v1/verify/batch.
type BatchResponse struct {
	Documents []DocumentResult `json:"documents"`
	Batch     BatchStats       `json:"batch"`
}

// StreamEvent is one NDJSON line of a POST /v1/verify/stream response. The
// request body is itself NDJSON — one DocumentInput per line — and the
// response interleaves three event kinds: "verdict" (one claim's result, as
// soon as its document's micro-batch lands), "error" (a per-document or
// stream-level failure carrying the standard error detail), and a final
// "summary". Index is the 0-based arrival ordinal of the document the event
// belongs to; it is meaningful on verdict and error events only.
type StreamEvent struct {
	Event string `json:"event"`
	DocID string `json:"doc_id,omitempty"`
	Index int    `json:"index"`
	// Claim is the verdict payload of a "verdict" event.
	Claim *ClaimResult `json:"claim,omitempty"`
	// ReviewID is set on a "verdict" event whose claim was enqueued for
	// human review; resolve it via POST /v1/review/{id}.
	ReviewID string `json:"review_id,omitempty"`
	// Error is the failure payload of an "error" event.
	Error *ErrorDetail `json:"error,omitempty"`
	// Summary is the closing payload of a "summary" event.
	Summary *StreamSummary `json:"summary,omitempty"`
}

// StreamSummary closes a verification stream. Like BatchStats, Dollars and
// Calls cover the micro-batches the stream's documents rode in — which may
// include other requests' claims coalesced into the same runs.
type StreamSummary struct {
	// Docs and Claims count what this stream submitted and had verified.
	Docs   int `json:"docs"`
	Claims int `json:"claims"`
	// Dollars and Calls total the batch runs that carried those documents.
	Dollars float64 `json:"dollars"`
	Calls   int     `json:"calls"`
	// Reviewed counts this stream's claims enqueued for human review.
	Reviewed int `json:"reviewed"`
	// Batches lists the distinct micro-batch ordinals (1-based, server-local)
	// whose totals Dollars and Calls summed, in first-seen order. A consumer
	// holding several streams against one server — the coordinator's relay
	// merge — uses it to count a shared batch's fee once, not once per
	// stream.
	Batches []int64 `json:"batches,omitempty"`
}

// ReviewListResponse is the body answering GET /v1/review.
type ReviewListResponse struct {
	// Items are the pending review items in deterministic review order:
	// priority descending, then ID ascending.
	Items []review.Item `json:"items"`
	// Stats snapshots the queue counters (same shape as /v1/metrics review).
	Stats ReviewCounters `json:"stats"`
}

// ReviewResolveRequest is the body of POST /v1/review/{id}.
type ReviewResolveRequest struct {
	// Resolution is "confirmed" or "overturned".
	Resolution string `json:"resolution"`
	// Note is the reviewer's optional free-form comment.
	Note string `json:"note,omitempty"`
}

// StatusResponse is the body answering GET /v1/status.
type StatusResponse struct {
	// State is "serving" or "draining".
	State string `json:"state"`
	// QueueDepth is the number of requests waiting for a micro-batch slot;
	// QueueCap is the admission limit above which requests shed with 429.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// MaxBatch and BatchWaitMS echo the coalescing configuration.
	MaxBatch    int   `json:"max_batch"`
	BatchWaitMS int64 `json:"batch_wait_ms"`
	// StreamWindow is the per-stream in-flight document bound of
	// POST /v1/verify/stream; zero on coordinators (the replicas enforce it).
	StreamWindow int `json:"stream_window,omitempty"`
	// Schedule is the planned verification schedule serving requests.
	Schedule string `json:"schedule,omitempty"`
	// UptimeMS is wall time since the server started.
	UptimeMS int64 `json:"uptime_ms"`
	// Role distinguishes the serving tiers: "" or "replica" for a plain
	// server, "coordinator" for the sharding front end.
	Role string `json:"role,omitempty"`
	// Replicas lists the coordinator's registered replicas and their health;
	// present only on coordinators.
	Replicas []ReplicaStatus `json:"replicas,omitempty"`
}

// ReplicaStatus is one registered replica as seen by the coordinator.
type ReplicaStatus struct {
	// URL is the replica's base URL — also its name on the hash ring.
	URL string `json:"url"`
	// Healthy reports whether the replica is currently in the ring; an
	// ejected replica stays registered and is probed for readmission.
	Healthy bool `json:"healthy"`
}

// ReplicaRequest is the body of POST /v1/replicas: a replica announcing
// itself to (or, with the DELETE method, withdrawing from) a coordinator.
type ReplicaRequest struct {
	URL string `json:"url"`
}

// ErrorBody is the uniform error envelope: every non-2xx response carries
// {"error": {"code", "message"}}. Codes are stable strings (docs/CLI.md):
// bad_request, overloaded, draining, deadline_exceeded, internal, not_found,
// replica_lost.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the code/message pair inside an ErrorBody.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes of the ErrorBody envelope.
const (
	CodeBadRequest       = "bad_request"
	CodeOverloaded       = "overloaded"
	CodeDraining         = "draining"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeInternal         = "internal"
	// CodeNotFound answers a resolve of an unknown review item.
	CodeNotFound = "not_found"
	// CodeReplicaLost reports a replica that failed after a request was
	// delivered to it: the work may have run (and been billed), so the
	// coordinator must not silently retry it elsewhere — the caller decides
	// whether re-submitting is acceptable (it is always verdict-safe;
	// determinism makes re-verification idempotent, only fees recur).
	CodeReplicaLost = "replica_lost"
)

// buildDocument converts one wire document into the domain model, defaulting
// the document ID to the server's database name and claim IDs to their
// positions — the exact defaults the cedar CLI applies, preserving the
// CLI/HTTP bit-identity contract.
func (s *Server) buildDocument(in DocumentInput) (*claim.Document, error) {
	if len(in.Claims) == 0 {
		return nil, fmt.Errorf("document %q has no claims", in.DocID)
	}
	docID := in.DocID
	if docID == "" {
		docID = s.cfg.DocID
	}
	doc := &claim.Document{ID: docID, Domain: "serve", Data: s.cfg.DB}
	for i, ci := range in.Claims {
		id := ci.ID
		if id == "" {
			id = fmt.Sprintf("c%d", i+1)
		}
		c, err := claim.New(id, ci.Sentence, ci.Value, ci.Context)
		if err != nil {
			return nil, err
		}
		doc.Claims = append(doc.Claims, c)
	}
	return doc, nil
}

// documentResult snapshots a verified document's claim annotations.
func documentResult(doc *claim.Document) DocumentResult {
	out := DocumentResult{DocID: doc.ID, Claims: make([]ClaimResult, 0, len(doc.Claims))}
	for _, c := range doc.Claims {
		out.Claims = append(out.Claims, ClaimResult{
			ID:       c.ID,
			Correct:  c.Result.Correct,
			Verified: c.Result.Verified,
			Method:   c.Result.Method,
			Query:    c.Result.Query,
			Attempts: c.Result.Attempts,
			Failure:  c.Result.Failure,
		})
	}
	return out
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeError writes the uniform error envelope; retryAfter > 0 adds a
// Retry-After header (seconds, rounded up) per RFC 9110 §10.2.3.
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: msg}})
}
