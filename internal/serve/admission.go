package serve

import (
	"context"
	"net/http"

	"repro/internal/claim"
)

// apiError carries an HTTP status plus the error-envelope fields from the
// admission layer back to the handler that must render it.
type apiError struct {
	status     int
	code, msg  string
	retryAfter bool
}

// admit applies admission control and enqueues a job for the batch loop:
//
//   - a draining server rejects with 503/draining (the load balancer's cue
//     to fail over; nothing is lost — the request was never admitted);
//   - a full queue sheds with 429/overloaded and the configured Retry-After
//     hint, bounding queued memory and tail latency deterministically
//     instead of letting the backlog grow without limit.
//
// Admission is the only gate: once admit returns a job, the batch loop
// guarantees a result (or the request's own context expiring).
func (s *Server) admit(ctx context.Context, docs []*claim.Document) (*job, *apiError) {
	j := newJob(ctx, docs)
	// The read lock spans the draining check and the send so Shutdown's
	// close(queue) cannot interleave; the send is non-blocking, so the lock
	// is held only momentarily and a full queue becomes shed, not blocking.
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		s.met.inc(&s.met.rejectedDraining)
		return nil, &apiError{status: http.StatusServiceUnavailable, code: CodeDraining,
			msg: "server is draining; retry against another replica"}
	}
	select {
	case s.queue <- j:
		return j, nil
	default:
		s.met.inc(&s.met.shedOverload)
		return nil, &apiError{status: http.StatusTooManyRequests, code: CodeOverloaded,
			msg: "verification queue is full", retryAfter: true}
	}
}

// await blocks until the job's batch completes or the request context
// expires, mapping each outcome to its HTTP shape.
func (s *Server) await(ctx context.Context, j *job) (jobResult, *apiError) {
	select {
	case res := <-j.done:
		if res.err != nil {
			if res.err == context.DeadlineExceeded || res.err == context.Canceled {
				// The deadline expired while the job was still queued: the
				// batch loop dropped it before attempting any claim.
				s.met.inc(&s.met.deadlineExpired)
				return res, &apiError{status: http.StatusGatewayTimeout, code: CodeDeadlineExceeded,
					msg: "request deadline expired before its batch started"}
			}
			s.met.inc(&s.met.internalErrors)
			return res, &apiError{status: http.StatusInternalServerError, code: CodeInternal, msg: res.err.Error()}
		}
		return res, nil
	case <-ctx.Done():
		// The batch is running (or about to): the claims will be verified
		// and billed, but this caller is no longer waiting for them.
		s.met.inc(&s.met.deadlineExpired)
		return jobResult{}, &apiError{status: http.StatusGatewayTimeout, code: CodeDeadlineExceeded,
			msg: "request deadline expired while its batch was in flight"}
	}
}
