package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/review"
)

// The coordinator's streaming surface mirrors the replica's: NDJSON
// documents in, NDJSON events out. Each document is proxied — as its own
// one-document stream — to the replica owning its shard key, up to
// StreamWindow documents concurrently; events relay back in arrival order
// with review IDs preserved (they are content fingerprints, identical on
// every replica). The review surface fans out: GET /v1/review merges every
// healthy replica's queue into one deterministically ranked list, and
// POST /v1/review/{id} broadcasts the resolution so a claim rehashed across
// replicas resolves everywhere it was enqueued.

// streamRelay is the outcome of proxying one streamed document.
type streamRelay struct {
	docID  string
	node   string        // the replica that answered (fee-dedup key)
	events []StreamEvent // verdict events, review IDs preserved
	sum    StreamSummary // the replica's per-document summary
	errDet *ErrorDetail  // terminal failure for this document
}

// handleVerifyStream answers POST /v1/verify/stream on the coordinator. A
// reader goroutine decodes, routes, and dispatches documents — stalling when
// StreamWindow relays are in flight — while the handler goroutine writes
// each document's events in arrival order.
func (c *Coordinator) handleVerifyStream(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if c.rejectDraining(w) {
		return
	}
	ctx, cancel := c.requestContext(r)
	defer cancel()
	c.met.inc(&c.met.streams)

	results := make(chan chan streamRelay, c.cfg.StreamWindow)
	readerErr := make(chan ErrorDetail, 1)
	go func() {
		defer close(results)
		dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		for index := 0; ; index++ {
			var in DocumentInput
			if err := dec.Decode(&in); err != nil {
				if err == io.EOF {
					return
				}
				c.met.inc(&c.met.badRequests)
				readerErr <- ErrorDetail{Code: CodeBadRequest,
					Message: fmt.Sprintf("decoding stream document %d: %v", index, err)}
				return
			}
			ch := make(chan streamRelay, 1)
			select {
			case results <- ch:
			case <-ctx.Done():
				return
			}
			go func(in DocumentInput) { ch <- c.relayStreamDoc(ctx, in) }(in)
		}
	}()

	// Full duplex keeps the request body readable after the first write —
	// without it, an HTTP/1.x server discards unread input once the response
	// starts, truncating the stream.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev StreamEvent) {
		_ = enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	var sum StreamSummary
	// Relay summaries report whole-batch totals. Two of this stream's
	// documents coalesced into one micro-batch on their shared replica would
	// double-count, so fees sum once per distinct (replica, batch ordinal) —
	// the ordinals ride back on the relay summary's Batches field.
	seenBatch := make(map[string]bool)
	index := 0
	for ch := range results {
		rel := <-ch
		if rel.errDet != nil {
			emit(StreamEvent{Event: "error", DocID: rel.docID, Index: index, Error: rel.errDet})
			index++
			continue
		}
		for _, ev := range rel.events {
			ev.Index = index // the stream-global arrival ordinal, not the replica's
			emit(ev)
		}
		sum.Docs++
		sum.Claims += rel.sum.Claims
		sum.Reviewed += rel.sum.Reviewed
		fresh := true
		for _, b := range rel.sum.Batches {
			key := rel.node + "#" + strconv.FormatInt(b, 10)
			if seenBatch[key] {
				fresh = false
			}
			seenBatch[key] = true
		}
		if fresh {
			sum.Dollars += rel.sum.Dollars
			sum.Calls += rel.sum.Calls
		}
		c.met.addStreamDoc()
		index++
	}
	select {
	case ed := <-readerErr:
		emit(StreamEvent{Event: "error", Index: index, Error: &ed})
	default:
	}
	if ctx.Err() == nil {
		c.met.recordRequest(time.Since(started))
	}
	emit(StreamEvent{Event: "summary", Index: sum.Docs, Summary: &sum})
}

// relayStreamDoc proxies one streamed document to the replica owning its
// shard key as a one-document stream, and parses the replica's event lines
// back. A replica lost after delivery surfaces as a replica_lost error event
// (the proxy refuses to failover work that may already have run and billed);
// pre-delivery failures failed over transparently inside the proxy.
func (c *Coordinator) relayStreamDoc(ctx context.Context, in DocumentInput) streamRelay {
	key, docID := c.routeKey(in.DocID, in.Claims)
	rel := streamRelay{docID: docID}
	body, err := json.Marshal(in)
	if err != nil {
		c.met.inc(&c.met.internalErrors)
		rel.errDet = &ErrorDetail{Code: CodeInternal, Message: err.Error()}
		return rel
	}
	body = append(body, '\n')
	res, err := c.proxy.Do(ctx, key, "/v1/verify/stream", body)
	if err != nil {
		_, det := c.proxyErrorDetail(err)
		rel.errDet = &det
		return rel
	}
	rel.node = res.Node
	c.routed.Add(1)
	c.traceRoute(docID, res)
	c.countRelay(res.Status)
	if res.Status != http.StatusOK {
		var eb ErrorBody
		if json.Unmarshal(res.Body, &eb) == nil && eb.Error.Code != "" {
			rel.errDet = &eb.Error
		} else {
			rel.errDet = &ErrorDetail{Code: CodeInternal,
				Message: fmt.Sprintf("replica answered status %d", res.Status)}
		}
		return rel
	}
	sc := bufio.NewScanner(bytes.NewReader(res.Body))
	sc.Buffer(make([]byte, 0, 64<<10), maxBodyBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			rel.errDet = &ErrorDetail{Code: CodeInternal,
				Message: fmt.Sprintf("parsing replica stream: %v", err)}
			return rel
		}
		switch ev.Event {
		case "verdict":
			rel.events = append(rel.events, ev)
		case "summary":
			if ev.Summary != nil {
				rel.sum = *ev.Summary
			}
		case "error":
			det := ErrorDetail{Code: CodeInternal, Message: "replica stream error"}
			if ev.Error != nil {
				det = *ev.Error
			}
			rel.errDet = &det
			return rel
		}
	}
	if err := sc.Err(); err != nil {
		rel.errDet = &ErrorDetail{Code: CodeInternal,
			Message: fmt.Sprintf("reading replica stream: %v", err)}
	}
	return rel
}

// healthyReplicas lists the replicas currently in the ring, in roster order.
func (c *Coordinator) healthyReplicas() []string {
	var out []string
	for _, node := range c.prober.Tracked() {
		if c.prober.IsHealthy(node) {
			out = append(out, node)
		}
	}
	return out
}

// handleReviewList answers GET /v1/review by merging every healthy replica's
// pending queue. Item IDs are content fingerprints and the rank order is
// deterministic, so the merged list is identical however the keyspace is
// currently sharded; duplicates (a claim enqueued on two replicas across a
// rehash) collapse by ID.
func (c *Coordinator) handleReviewList(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			c.met.inc(&c.met.badRequests)
			writeError(w, http.StatusBadRequest, CodeBadRequest, "limit must be a non-negative integer", 0)
			return
		}
		limit = n
	}
	var (
		items []review.Item
		seen  = map[string]bool{}
		stats ReviewCounters
	)
	for _, node := range c.healthyReplicas() {
		var parsed ReviewListResponse
		if err := c.getJSON(r.Context(), node+"/v1/review", &parsed); err != nil {
			c.met.inc(&c.met.internalErrors)
			writeError(w, http.StatusBadGateway, CodeInternal,
				fmt.Sprintf("replica %s: %v", node, err), 0)
			return
		}
		for _, it := range parsed.Items {
			if !seen[it.ID] {
				seen[it.ID] = true
				items = append(items, it)
			}
		}
		stats.Enqueued += parsed.Stats.Enqueued
		stats.Resolved += parsed.Stats.Resolved
		stats.Dropped += parsed.Stats.Dropped
		if parsed.Stats.OldestAgeMS > stats.OldestAgeMS {
			stats.OldestAgeMS = parsed.Stats.OldestAgeMS
		}
		if parsed.Stats.MaxPriority > stats.MaxPriority {
			stats.MaxPriority = parsed.Stats.MaxPriority
		}
	}
	review.SortItems(items)
	if limit > 0 && len(items) > limit {
		items = items[:limit]
	}
	if items == nil {
		items = []review.Item{}
	}
	stats.Depth = len(seen)
	writeJSON(w, http.StatusOK, ReviewListResponse{Items: items, Stats: stats})
}

// handleReviewResolve broadcasts POST /v1/review/{id} to every healthy
// replica: the item lives on the replica that verified the claim, but after
// a rehash it may be pending on more than one, and resolving everywhere —
// idempotently, first resolution wins — keeps the tier agreeing with the
// human. The first replica that knows the item answers for the tier.
func (c *Coordinator) handleReviewResolve(w http.ResponseWriter, r *http.Request) {
	var req ReviewResolveRequest
	body, ok := c.decodeBody(w, r, &req)
	if !ok {
		return
	}
	if !review.ValidResolution(req.Resolution) {
		c.met.inc(&c.met.badRequests)
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("resolution must be %q or %q", review.ResolutionConfirmed, review.ResolutionOverturned), 0)
		return
	}
	path := "/v1/review/" + url.PathEscape(r.PathValue("id"))
	var (
		resolved  []byte
		reachable bool
	)
	for _, node := range c.healthyReplicas() {
		status, respBody, err := c.postJSON(r.Context(), node+path, body)
		if err != nil {
			continue
		}
		reachable = true
		if status == http.StatusOK && resolved == nil {
			resolved = respBody
		}
	}
	switch {
	case resolved != nil:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(resolved)
	case reachable:
		writeError(w, http.StatusNotFound, CodeNotFound, "no review item with that id", 0)
	default:
		c.met.inc(&c.met.rejectedDraining)
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "no live replicas", 0)
	}
}

// getJSON fetches and decodes one replica JSON endpoint.
func (c *Coordinator) getJSON(ctx context.Context, url string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(dst)
}

// postJSON posts one JSON body to a replica, returning status and body.
func (c *Coordinator) postJSON(ctx context.Context, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}
