package agent

import "testing"

func TestRoutePickArgmax(t *testing.T) {
	idx, tied := RoutePick(1, "k", []string{"a", "b", "c"}, []float64{0.2, 0.9, 0.5})
	if idx != 1 || tied {
		t.Fatalf("idx=%d tied=%v, want 1/false", idx, tied)
	}
}

func TestRoutePickDeterministic(t *testing.T) {
	names := []string{"a", "b", "c"}
	scores := []float64{0.5, 0.5, 0.5}
	i1, t1 := RoutePick(42, "doc\x000\x000", names, scores)
	i2, t2 := RoutePick(42, "doc\x000\x000", names, scores)
	if i1 != i2 || t1 != t2 {
		t.Fatal("RoutePick not deterministic")
	}
	if !t1 {
		t.Fatal("equal scores must report tied")
	}
}

func TestRoutePickTieBandEps(t *testing.T) {
	// Scores within eps of the best tie; scores further away never win.
	names := []string{"near", "best", "far"}
	scores := []float64{0.9 - 5e-10, 0.9, 0.3}
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		idx, tied := RoutePick(int64(i), "k", names, scores)
		if !tied {
			t.Fatal("band of two must report tied")
		}
		if idx == 2 {
			t.Fatal("far candidate won a tie it was not in")
		}
		seen[idx] = true
	}
	if !seen[0] || !seen[1] {
		t.Error("seeded tie-break never varied across 64 seeds")
	}
}

func TestRoutePickKeySensitivity(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	scores := []float64{1, 1, 1, 1}
	seen := make(map[int]bool)
	for _, key := range []string{"k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8"} {
		idx, _ := RoutePick(7, key, names, scores)
		seen[idx] = true
	}
	if len(seen) < 2 {
		t.Error("tie-break ignored the routing key")
	}
}

func TestRoutePickPanics(t *testing.T) {
	cases := []struct {
		name   string
		names  []string
		scores []float64
	}{
		{"empty", nil, nil},
		{"mismatched", []string{"a"}, []float64{1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			RoutePick(1, "k", tc.names, tc.scores)
		})
	}
}
