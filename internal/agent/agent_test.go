package agent

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/llm"
)

// scriptedClient replays a fixed sequence of completions.
type scriptedClient struct {
	turns []string
	calls int
	// lastMessages captures the conversation of the final call.
	lastMessages []llm.Message
}

func (s *scriptedClient) Complete(req llm.Request) (llm.Response, error) {
	s.lastMessages = req.Messages
	if s.calls >= len(s.turns) {
		return llm.Response{}, errors.New("script exhausted")
	}
	content := s.turns[s.calls]
	s.calls++
	return llm.Response{Content: content, Usage: llm.Usage{PromptTokens: 10, CompletionTokens: 5}}, nil
}

func echoTool(name string) Tool {
	return FuncTool{ToolName: name, Fn: func(in string) string { return "echo:" + in }}
}

func TestRunHappyPath(t *testing.T) {
	client := &scriptedClient{turns: []string{
		"Thought: try a query\nAction: database_querying\nAction Input: SELECT 1",
		"Thought: check values\nAction: unique_column_values\nAction Input: country",
		"Thought: I now know the final answer.\nFinal Answer: 84",
	}}
	r := &Runner{Client: client, Model: "m", QueryToolName: "database_querying"}
	trace, err := r.Run("base prompt", []Tool{echoTool("database_querying"), echoTool("unique_column_values")})
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Finished || trace.FinalAnswer != "84" {
		t.Errorf("trace = %+v", trace)
	}
	if len(trace.Queries) != 1 || trace.Queries[0] != "SELECT 1" {
		t.Errorf("queries = %v", trace.Queries)
	}
	if len(trace.Steps) != 3 {
		t.Errorf("steps = %d", len(trace.Steps))
	}
	if trace.Steps[0].Observation != "echo:SELECT 1" {
		t.Errorf("observation = %q", trace.Steps[0].Observation)
	}
	// The conversation must accumulate assistant turns and observations.
	joined := llm.PromptText(client.lastMessages)
	if !strings.Contains(joined, "Observation: echo:SELECT 1") {
		t.Errorf("conversation missing observation: %q", joined)
	}
	if !strings.Contains(joined, "base prompt") {
		t.Error("conversation missing base prompt")
	}
}

func TestRunUnknownTool(t *testing.T) {
	client := &scriptedClient{turns: []string{
		"Thought: hm\nAction: bogus_tool\nAction Input: x",
		"Thought: I now know the final answer.\nFinal Answer: done",
	}}
	r := &Runner{Client: client, Model: "m", QueryToolName: "database_querying"}
	trace, err := r.Run("base", []Tool{echoTool("database_querying")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.Steps[0].Observation, "unknown tool") {
		t.Errorf("observation = %q", trace.Steps[0].Observation)
	}
	if len(trace.Queries) != 0 {
		t.Error("bogus tool must not log queries")
	}
}

func TestRunNoProgress(t *testing.T) {
	client := &scriptedClient{turns: []string{"I am confused and will ramble without any action."}}
	r := &Runner{Client: client, Model: "m"}
	_, err := r.Run("base", nil)
	if !errors.Is(err, ErrNoProgress) {
		t.Errorf("err = %v", err)
	}
}

func TestRunIterationCap(t *testing.T) {
	turns := make([]string, 20)
	for i := range turns {
		turns[i] = fmt.Sprintf("Thought: again\nAction: q\nAction Input: SELECT %d", i)
	}
	client := &scriptedClient{turns: turns}
	r := &Runner{Client: client, Model: "m", MaxIters: 3, QueryToolName: "q"}
	trace, err := r.Run("base", []Tool{echoTool("q")})
	if err != nil {
		t.Fatal(err)
	}
	if trace.Finished {
		t.Error("capped run must not be finished")
	}
	if len(trace.Queries) != 3 {
		t.Errorf("queries = %d want 3 (cap)", len(trace.Queries))
	}
}

func TestRunClientError(t *testing.T) {
	client := &scriptedClient{} // immediately exhausted
	r := &Runner{Client: client, Model: "m"}
	if _, err := r.Run("base", nil); err == nil {
		t.Error("expected client error to propagate")
	}
}

func TestParseTurn(t *testing.T) {
	tn := parseTurn("Thought: think\nAction: t\nAction Input: in\ntrailing")
	if tn.thought != "think" || tn.action != "t" || tn.input != "in" || tn.finished {
		t.Errorf("turn = %+v", tn)
	}
	tn = parseTurn("Thought: done\nFinal Answer: 42")
	if !tn.finished || tn.final != "42" {
		t.Errorf("final turn = %+v", tn)
	}
	// Final answer may be empty text but still terminal.
	tn = parseTurn("Final Answer:")
	if !tn.finished {
		t.Error("empty final answer must finish")
	}
}

func TestTraceString(t *testing.T) {
	tr := &Trace{
		Steps: []Step{
			{Thought: "try a query", Action: "database_querying", Input: "SELECT 1", Observation: "Result: 1"},
			{Thought: "done"},
		},
		FinalAnswer: "1",
		Finished:    true,
	}
	s := tr.String()
	for _, want := range []string{"Thought: try a query", "Action: database_querying", "Action Input: SELECT 1", "Observation: Result: 1", "Final Answer: 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %q:\n%s", want, s)
		}
	}
	unfinished := &Trace{}
	if strings.Contains(unfinished.String(), "Final Answer") {
		t.Error("unfinished trace must not claim a final answer")
	}
}
