package agent

import (
	"encoding/binary"
	"hash/fnv"
)

// routeEps is the score band within which two routing candidates are
// considered tied; embedding cosines are floats and exact equality would
// make ties scheduling-fragile to reproduce in tests.
const routeEps = 1e-9

// RoutePick is the routing stage's binding decision (DESIGN.md §16): given
// the candidate names and scores for one sub-claim, it returns the index of
// the chosen candidate. The top score wins outright; candidates within
// routeEps of the top form a tie set, broken by the smallest seeded FNV hash
// of (seed, key, name) — deterministic for a fixed seed and claim identity,
// but unbiased across claims — with lexicographic order as the final
// tie-break. tied reports whether more than one candidate was in the band.
//
// RoutePick never fails: an all-zero score vector still yields a
// deterministic pick. It panics only on empty or mismatched inputs, which
// are programmer errors.
func RoutePick(seed int64, key string, names []string, scores []float64) (idx int, tied bool) {
	if len(names) == 0 || len(names) != len(scores) {
		panic("agent: RoutePick needs equal-length non-empty names and scores")
	}
	best := scores[0]
	for _, s := range scores[1:] {
		if s > best {
			best = s
		}
	}
	chosen, chosenHash := -1, uint64(0)
	n := 0
	for i, s := range scores {
		if best-s > routeEps {
			continue
		}
		n++
		h := routeHash(seed, key, names[i])
		if chosen < 0 || h < chosenHash || (h == chosenHash && names[i] < names[chosen]) {
			chosen, chosenHash = i, h
		}
	}
	return chosen, n > 1
}

// routeHash mixes the seed, the sub-claim's routing identity, and a
// candidate name into a 64-bit value.
func routeHash(seed int64, key, name string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(name))
	return h.Sum64()
}
