// Package agent implements the iterative ReAct loop of Algorithm 7: the
// language model is invoked repeatedly, each turn producing a thought and
// optionally an action (a tool invocation); tool outputs are fed back as
// observations until the model emits a final answer. Queries issued through
// the database tool are logged for the query-reconstruction post-processing
// stage (Algorithm 9).
package agent

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/llm"
	tracing "repro/internal/trace"
)

// Tool is a function the agent may invoke.
type Tool interface {
	// Name is the identifier the model uses in Action lines.
	Name() string
	// Run executes the tool and returns the observation text.
	Run(input string) string
}

// Step is one thought/action/observation turn.
type Step struct {
	Thought     string
	Action      string
	Input       string
	Observation string
}

// Trace is the full record of one agent run.
type Trace struct {
	Steps []Step
	// Queries lists every input sent to the database-querying tool, in
	// order — the query list Q of Algorithm 7.
	Queries []string
	// FinalAnswer is the model's answer text ("" when the iteration cap
	// was hit before an answer).
	FinalAnswer string
	// Finished reports whether the model produced a final answer.
	Finished bool
}

// ErrNoProgress is returned when the model output contains neither an
// action nor a final answer.
var ErrNoProgress = errors.New("agent: model output contains no action or final answer")

// Runner executes ReAct conversations.
type Runner struct {
	Client      llm.Client
	Model       string
	Temperature float64
	// Seed is threaded into every completion request of the conversation
	// (constant across turns, so the trajectory stays coherent); retries
	// with distinct seeds sample distinct trajectories at temperature > 0.
	Seed int64
	// MaxIters caps the number of model invocations (default 8).
	MaxIters int
	// QueryToolName identifies the tool whose inputs are logged as
	// queries (Algorithm 7's DatabaseQuerying check).
	QueryToolName string
	// Attempt is the pipeline attempt identity this conversation serves;
	// stamped on every completion request so middleware trace spans (one per
	// ReAct turn) attribute to the right attempt.
	Attempt tracing.Key
}

// Run drives the loop: invoke the model, parse its turn, execute tools, and
// append observations until a final answer or the iteration cap.
func (r *Runner) Run(basePrompt string, tools []Tool) (*Trace, error) {
	maxIters := r.MaxIters
	if maxIters <= 0 {
		maxIters = 8
	}
	byName := make(map[string]Tool, len(tools))
	for _, t := range tools {
		byName[t.Name()] = t
	}
	messages := []llm.Message{{Role: llm.RoleUser, Content: basePrompt}}
	trace := &Trace{}
	for iter := 0; iter < maxIters; iter++ {
		resp, err := r.Client.Complete(llm.Request{
			Model:       r.Model,
			Messages:    messages,
			Temperature: r.Temperature,
			Seed:        r.Seed,
			Attempt:     r.Attempt,
		})
		if err != nil {
			return trace, fmt.Errorf("agent: model invocation: %w", err)
		}
		turn := parseTurn(resp.Content)
		if turn.final != "" || turn.finished {
			trace.FinalAnswer = turn.final
			trace.Finished = true
			trace.Steps = append(trace.Steps, Step{Thought: turn.thought})
			return trace, nil
		}
		if turn.action == "" {
			return trace, fmt.Errorf("%w: %q", ErrNoProgress, truncate(resp.Content, 120))
		}
		obs := ""
		if tool, ok := byName[turn.action]; ok {
			obs = tool.Run(turn.input)
		} else {
			obs = fmt.Sprintf("Error: unknown tool %q; available tools: %s", turn.action, toolNames(tools))
		}
		if turn.action == r.QueryToolName {
			trace.Queries = append(trace.Queries, turn.input)
		}
		trace.Steps = append(trace.Steps, Step{
			Thought:     turn.thought,
			Action:      turn.action,
			Input:       turn.input,
			Observation: obs,
		})
		messages = append(messages,
			llm.Message{Role: llm.RoleAssistant, Content: resp.Content},
			llm.Message{Role: llm.RoleUser, Content: "Observation: " + obs},
		)
	}
	return trace, nil
}

func toolNames(tools []Tool) string {
	names := make([]string, len(tools))
	for i, t := range tools {
		names[i] = t.Name()
	}
	return strings.Join(names, ", ")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

type turn struct {
	thought  string
	action   string
	input    string
	final    string
	finished bool
}

// parseTurn extracts the thought, action, and final answer from one model
// completion in ReAct format.
func parseTurn(content string) turn {
	var t turn
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "Thought:"):
			t.thought = strings.TrimSpace(strings.TrimPrefix(line, "Thought:"))
		case strings.HasPrefix(line, "Action:"):
			t.action = strings.TrimSpace(strings.TrimPrefix(line, "Action:"))
		case strings.HasPrefix(line, "Action Input:"):
			t.input = strings.TrimSpace(strings.TrimPrefix(line, "Action Input:"))
		case strings.HasPrefix(line, "Final Answer:"):
			t.final = strings.TrimSpace(strings.TrimPrefix(line, "Final Answer:"))
			t.finished = true
		}
	}
	return t
}

// String renders the trace in the Figure 4 layout: thoughts, actions, tool
// inputs, and observations in order, ending with the final answer.
func (t *Trace) String() string {
	var b strings.Builder
	for _, s := range t.Steps {
		if s.Thought != "" {
			fmt.Fprintf(&b, "Thought: %s\n", s.Thought)
		}
		if s.Action != "" {
			fmt.Fprintf(&b, "Action: %s\nAction Input: %s\nObservation: %s\n", s.Action, s.Input, s.Observation)
		}
	}
	if t.Finished {
		fmt.Fprintf(&b, "Final Answer: %s\n", t.FinalAnswer)
	}
	return b.String()
}

// FuncTool adapts a function to the Tool interface.
type FuncTool struct {
	ToolName string
	Fn       func(input string) string
}

// Name implements Tool.
func (f FuncTool) Name() string { return f.ToolName }

// Run implements Tool.
func (f FuncTool) Run(input string) string { return f.Fn(input) }
