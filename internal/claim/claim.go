// Package claim defines the core domain model of CEDAR: documents, claims,
// and verification outcomes (Definitions 2.1–2.6 of the paper).
package claim

import (
	"fmt"
	"strings"

	"repro/internal/sqldb"
	"repro/internal/textutil"
)

// Claim is a verifiable statement: a sentence containing a claim value at a
// known token span, plus surrounding context (Definition 2.2).
type Claim struct {
	// ID uniquely identifies the claim within its benchmark.
	ID string
	// Sentence is the claim sentence.
	Sentence string
	// Span is the token position of the claim value within Sentence.
	Span textutil.Span
	// Context is the paragraph containing the claim sentence.
	Context string
	// Value is the claimed value as it appears in the text.
	Value string

	// Gold holds evaluation-only ground truth. Verification methods must
	// never read it; it exists so benchmarks can score results.
	Gold Gold

	// Result is filled in by verification.
	Result Result
}

// New builds a claim from a sentence, the claimed value as it appears in
// the sentence, and the surrounding context paragraph, locating the value's
// token span automatically. It is the shared constructor behind
// cedar.NewClaim and the cedar-serve wire decoder, so every ingress path
// (library, CLI, HTTP) produces identical claim structures.
func New(id, sentence, value, context string) (*Claim, error) {
	span, ok := textutil.FindValueSpan(sentence, value)
	if !ok {
		return nil, fmt.Errorf("claim: value %q does not occur in sentence %q", value, sentence)
	}
	if context == "" {
		context = sentence
	}
	if !strings.Contains(context, sentence) {
		context = context + " " + sentence
	}
	return &Claim{
		ID:       id,
		Sentence: sentence,
		Span:     span,
		Context:  context,
		Value:    value,
	}, nil
}

// Gold is ground truth attached to generated claims for scoring.
type Gold struct {
	// Query is a SQL query representing the claim semantics.
	Query string
	// Correct is whether the claim is actually correct.
	Correct bool
	// Difficulty in [0,1] summarizes how hard translation is expected to
	// be; used only for corpus statistics, never by verification.
	Difficulty float64
}

// Terminal Result.Method labels for claims no method verified.
// MethodUnverified marks semantic exhaustion (every translation was
// implausible); MethodFailed marks transport loss (the last attempt died on
// a provider error, recorded in Result.Failure) — the claim never got a full
// verification, so scoring must not treat its default verdict as a real one.
const (
	MethodUnverified = "unverified"
	MethodFailed     = "failed"
)

// Result is the verification outcome for one claim (Definition 2.6).
type Result struct {
	// Verified is true when some verification method produced a plausible
	// query for the claim.
	Verified bool
	// Correct is the verdict: true when the claim is marked correct.
	// Unverifiable claims are marked correct by default, per Section 4.
	Correct bool
	// Query is the SQL query used for verification (empty if none).
	Query string
	// Executable records that at least one attempted translation executed
	// to a single-cell result, even if it failed the plausibility gate.
	// Per Section 4, claims that remain unverified but had executable
	// queries are marked incorrect; only claims with no executable query
	// at all default to correct.
	Executable bool
	// Method names the verification approach that succeeded.
	Method string
	// Attempts counts how many method invocations were spent on the claim.
	Attempts int
	// Failure names the transport-error class of the last failed attempt
	// ("rate_limited", "timeout", "transient", "permanent", "circuit_open")
	// so an unverified claim can be distinguished as "provider failed us"
	// rather than "every translation was implausible". Empty for semantic
	// failures and cleared by each new attempt.
	Failure string
	// Trace is a human-readable log of the last verification attempt: the
	// model response for one-shot methods, the thought/action/observation
	// transcript for agents (the Figure 4 view of the paper).
	Trace string
}

// IsNumeric reports whether the claim value is numeric (Definition 2.2
// distinguishes numeric from textual claims).
func (c *Claim) IsNumeric() bool { return textutil.IsNumeric(c.Value) }

// ValueType returns the {type} placeholder content for prompt templates:
// "numeric" for numeric claims and the empty string otherwise, as specified
// in Section 5.2.
func (c *Claim) ValueType() string {
	if c.IsNumeric() {
		return "numeric"
	}
	return ""
}

// Masked returns the claim sentence with the value span obfuscated and the
// context paragraph with the sentence replaced by its masked form
// (Algorithm 4).
func (c *Claim) Masked() (sentence, context string) {
	masked := textutil.MaskSpan(c.Sentence, c.Span)
	ctx, _ := textutil.MaskInContext(c.Context, c.Sentence, masked)
	return masked, ctx
}

// Document is a text document whose claims refer to an attached relational
// database (Definition 2.1).
type Document struct {
	// ID uniquely identifies the document within its benchmark.
	ID string
	// Title is a human-readable headline.
	Title string
	// Domain labels the document source category (538, StackOverflow,
	// NYTimes, Wikipedia); Figure 7 groups documents by it.
	Domain string
	// Claims are the claims extracted from the document.
	Claims []*Claim
	// Data is the relational database the claims refer to.
	Data *sqldb.Database
}

// String summarizes the document.
func (d *Document) String() string {
	return fmt.Sprintf("doc %s (%s): %d claims over db %s", d.ID, d.Domain, len(d.Claims), d.Data.Name)
}

// Text assembles the document's readable article body: each claim's context
// paragraph, deduplicated in order (claims generated from the same
// paragraph share it). This is the "text document" of Definition 2.1 as a
// reader would see it.
func (d *Document) Text() string {
	seen := make(map[string]bool)
	var paras []string
	for _, c := range d.Claims {
		p := c.Context
		if p == "" {
			p = c.Sentence
		}
		if !seen[p] {
			seen[p] = true
			paras = append(paras, p)
		}
	}
	return strings.Join(paras, "\n\n")
}

// CloneDocuments deep-copies a corpus (documents and claims, sharing the
// immutable databases) so multiple systems can verify the same benchmark
// without seeing each other's annotations.
func CloneDocuments(docs []*Document) []*Document {
	out := make([]*Document, 0, len(docs))
	for _, d := range docs {
		nd := *d
		nd.Claims = make([]*Claim, 0, len(d.Claims))
		for _, c := range d.Claims {
			cc := *c
			cc.Result = Result{}
			nd.Claims = append(nd.Claims, &cc)
		}
		out = append(out, &nd)
	}
	return out
}

// CountIncorrect returns how many claims are incorrect under the gold
// labels, a corpus statistic used by benchmark reports.
func CountIncorrect(docs []*Document) int {
	n := 0
	for _, d := range docs {
		for _, c := range d.Claims {
			if !c.Gold.Correct {
				n++
			}
		}
	}
	return n
}

// TotalClaims returns the number of claims across documents.
func TotalClaims(docs []*Document) int {
	n := 0
	for _, d := range docs {
		n += len(d.Claims)
	}
	return n
}
