package claim

import (
	"strings"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/textutil"
)

func sampleClaim() *Claim {
	sentence := "The two fatal accidents involving Malaysia Airlines this year were the first for the carrier since 1995."
	span, _ := textutil.FindValueSpan(sentence, "two")
	return &Claim{
		ID:       "c1",
		Sentence: sentence,
		Span:     span,
		Context:  "Intro text. " + sentence + " Outro text.",
		Value:    "two",
	}
}

func TestIsNumericAndValueType(t *testing.T) {
	c := sampleClaim()
	if !c.IsNumeric() || c.ValueType() != "numeric" {
		t.Errorf("spelled-out number should be numeric: %v %q", c.IsNumeric(), c.ValueType())
	}
	c.Value = "Malaysia Airlines"
	if c.IsNumeric() || c.ValueType() != "" {
		t.Errorf("textual value misclassified: %v %q", c.IsNumeric(), c.ValueType())
	}
}

func TestMasked(t *testing.T) {
	c := sampleClaim()
	masked, ctx := c.Masked()
	if strings.Contains(masked, " two ") {
		t.Errorf("value leaked: %q", masked)
	}
	if !strings.Contains(masked, " x ") {
		t.Errorf("mask token missing: %q", masked)
	}
	if !strings.Contains(ctx, masked) || !strings.Contains(ctx, "Intro text.") {
		t.Errorf("context masking wrong: %q", ctx)
	}
}

func TestCloneDocuments(t *testing.T) {
	db := sqldb.NewDatabase("d")
	orig := []*Document{{
		ID:     "doc",
		Domain: "538",
		Data:   db,
		Claims: []*Claim{
			{ID: "a", Value: "1", Result: Result{Verified: true, Correct: false, Query: "SELECT 1"}},
			{ID: "b", Value: "2", Gold: Gold{Correct: true}},
		},
	}}
	clone := CloneDocuments(orig)
	if len(clone) != 1 || len(clone[0].Claims) != 2 {
		t.Fatalf("clone shape: %+v", clone)
	}
	// Results are cleared; gold labels and identity are preserved; the
	// database is shared.
	if clone[0].Claims[0].Result.Verified || clone[0].Claims[0].Result.Query != "" {
		t.Error("clone kept verification results")
	}
	if !clone[0].Claims[1].Gold.Correct || clone[0].Claims[1].ID != "b" {
		t.Error("clone lost gold/identity")
	}
	if clone[0].Data != db {
		t.Error("clone must share the immutable database")
	}
	// Mutating the clone must not touch the original.
	clone[0].Claims[0].Result.Verified = true
	clone[0].Claims[0].Value = "mutated"
	if orig[0].Claims[0].Value == "mutated" {
		t.Error("clone aliases original claims")
	}
}

func TestCorpusCounts(t *testing.T) {
	docs := []*Document{
		{Claims: []*Claim{{Gold: Gold{Correct: true}}, {Gold: Gold{Correct: false}}}},
		{Claims: []*Claim{{Gold: Gold{Correct: false}}}},
	}
	if TotalClaims(docs) != 3 {
		t.Errorf("TotalClaims = %d", TotalClaims(docs))
	}
	if CountIncorrect(docs) != 2 {
		t.Errorf("CountIncorrect = %d", CountIncorrect(docs))
	}
}

func TestDocumentString(t *testing.T) {
	d := &Document{ID: "x", Domain: "538", Data: sqldb.NewDatabase("db"), Claims: []*Claim{{}}}
	s := d.String()
	if !strings.Contains(s, "x") || !strings.Contains(s, "1 claims") {
		t.Errorf("String = %q", s)
	}
}

func TestDocumentText(t *testing.T) {
	d := &Document{Claims: []*Claim{
		{Sentence: "S1.", Context: "Intro. S1. More."},
		{Sentence: "S2.", Context: "Intro. S1. More."}, // shared paragraph
		{Sentence: "S3.", Context: "Second para. S3."},
		{Sentence: "S4."}, // no context: sentence stands alone
	}}
	text := d.Text()
	if strings.Count(text, "Intro. S1. More.") != 1 {
		t.Errorf("shared paragraph duplicated:\n%s", text)
	}
	if !strings.Contains(text, "Second para.") || !strings.Contains(text, "S4.") {
		t.Errorf("missing paragraphs:\n%s", text)
	}
	if strings.Count(text, "\n\n") != 2 {
		t.Errorf("paragraph separation wrong:\n%q", text)
	}
}
