// Package embed provides the sentence-embedding substrate used by CEDAR's
// textual-claim validation. The paper uses the MiniLM-L6 model to compare a
// claimed textual value against a query result; this package substitutes a
// deterministic hashed character-n-gram embedding. Like a learned sentence
// encoder (and unlike exact string matching) it is tolerant of case
// differences, abbreviations, extra tokens, and small spelling mistakes,
// which is exactly the property the 0.7/0.8 similarity thresholds in
// CorrectQuery/CorrectClaim rely on.
package embed

import (
	"hash/fnv"
	"math"
	"strings"
	"unicode"
)

// Dim is the dimensionality of embedding vectors. 256 buckets keep
// collisions rare for the short spans (names, titles, categories) that
// textual claims compare.
const Dim = 256

// Vector is a dense embedding of a short text span.
type Vector [Dim]float64

// Embed maps text to its embedding vector. The embedding hashes character
// trigrams of the normalized text (lowercased, punctuation stripped, padded
// per word) into Dim buckets and L2-normalizes the result. Identical texts
// embed identically; texts sharing most trigrams land close in cosine space.
func Embed(text string) Vector {
	var v Vector
	for _, gram := range trigrams(text) {
		h := fnv.New32a()
		_, _ = h.Write([]byte(gram))
		idx := int(h.Sum32() % uint32(Dim))
		v[idx]++
	}
	norm := 0.0
	for _, x := range v {
		norm += x * x
	}
	if norm == 0 {
		return v
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] /= norm
	}
	return v
}

// Cosine returns the cosine similarity of two vectors in [-1, 1] (here
// always [0, 1] since components are non-negative). Zero vectors have
// similarity zero to everything.
func Cosine(a, b Vector) float64 {
	dot := 0.0
	for i := range a {
		dot += a[i] * b[i]
	}
	if dot > 1 {
		dot = 1 // guard float drift past the normalization bound
	}
	return dot
}

// Similarity is the convenience composition Cosine(Embed(a), Embed(b)).
func Similarity(a, b string) float64 {
	return Cosine(Embed(a), Embed(b))
}

// Normalize lowercases text, maps punctuation to spaces, and collapses
// whitespace — the token normal form shared by embedding and the simulated
// model's entity matching.
func Normalize(text string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(text) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		default:
			b.WriteByte(' ')
		}
	}
	return strings.Join(strings.Fields(b.String()), " ")
}

// trigrams produces padded character trigrams per word of the normalized
// text, plus whole-word unigram features that boost exact token overlap.
func trigrams(text string) []string {
	norm := Normalize(text)
	if norm == "" {
		return nil
	}
	var grams []string
	for _, word := range strings.Fields(norm) {
		grams = append(grams, "#w:"+word)
		padded := "^" + word + "$"
		if len(padded) < 3 {
			grams = append(grams, padded)
			continue
		}
		for i := 0; i+3 <= len(padded); i++ {
			grams = append(grams, padded[i:i+3])
		}
	}
	return grams
}
