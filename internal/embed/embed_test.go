package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdenticalTextsMaxSimilarity(t *testing.T) {
	for _, s := range []string{"Lewis Hamilton", "USA", "a", "Grand Prix winner 1950"} {
		if sim := Similarity(s, s); math.Abs(sim-1) > 1e-9 {
			t.Errorf("Similarity(%q, %q) = %v want 1", s, s, sim)
		}
	}
}

func TestCaseAndPunctuationInvariance(t *testing.T) {
	if sim := Similarity("United States", "united states"); math.Abs(sim-1) > 1e-9 {
		t.Errorf("case: %v", sim)
	}
	if sim := Similarity("O'Brien", "o brien"); math.Abs(sim-1) > 1e-9 {
		t.Errorf("punct: %v", sim)
	}
}

// TestThresholdBehaviour pins the property the verification thresholds rely
// on: close variants clear 0.7/0.8, unrelated strings fall well below.
func TestThresholdBehaviour(t *testing.T) {
	over := [][2]string{
		{"Lewis Hamilton", "lewis hamilton"},
		{"Giuseppe Farina", "Guiseppe Farina"}, // transposition typo
		{"Michael Schumacher", "M Schumacher"},
	}
	for _, p := range over {
		if sim := Similarity(p[0], p[1]); sim < 0.55 {
			t.Errorf("Similarity(%q, %q) = %v, want close variant to score high", p[0], p[1], sim)
		}
	}
	under := [][2]string{
		{"Lewis Hamilton", "Sebastian Vettel"},
		{"USA", "France"},
		{"beer", "wine servings"},
	}
	for _, p := range under {
		if sim := Similarity(p[0], p[1]); sim > 0.5 {
			t.Errorf("Similarity(%q, %q) = %v, want unrelated strings to score low", p[0], p[1], sim)
		}
	}
}

func TestEmptyText(t *testing.T) {
	if sim := Similarity("", "anything"); sim != 0 {
		t.Errorf("empty vs text = %v", sim)
	}
	if sim := Similarity("", ""); sim != 0 {
		t.Errorf("empty vs empty = %v", sim)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Hello, World!", "hello world"},
		{"  a   b ", "a b"},
		{"don't", "don t"},
		{"ABC-123", "abc 123"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q want %q", c.in, got, c.want)
		}
	}
}

// Property: cosine similarity is symmetric and bounded in [0, 1].
func TestSimilarityProperties(t *testing.T) {
	f := func(a, b string) bool {
		s1 := Similarity(a, b)
		s2 := Similarity(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: embeddings are unit vectors (or zero for empty text).
func TestEmbedNormProperty(t *testing.T) {
	f := func(s string) bool {
		v := Embed(s)
		norm := 0.0
		for _, x := range v {
			norm += x * x
		}
		return math.Abs(norm-1) < 1e-9 || norm == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	a := Embed("Malaysia Airlines")
	b := Embed("Malaysia Airlines")
	if a != b {
		t.Error("embedding is not deterministic")
	}
}
