package ingest

import (
	"strings"
	"testing"
)

// FuzzTypeInference throws adversarial CSV/JSON at the full ingestion path
// and checks the invariants that matter downstream: no panics, every kept
// row matches the final column set, inferred column types agree with the
// stored sqldb kinds, and re-ingesting identical bytes reproduces the same
// fingerprint (the determinism gates depend on that).
func FuzzTypeInference(f *testing.F) {
	f.Add("a,b\n1,2\n")
	f.Add("\xEF\xBB\xBFa,b\n1,2,3\n4\n")
	f.Add("x\n1\n2.5\nNaN\ntrue\n2024-01-02\n")
	f.Add(`{"a":1}` + "\n" + `{"b":"x","a":2.5}` + "\n")
	f.Add(`[{"k":null},{"k":[1,2]},{"k":{"n":1}}]`)
	f.Add("col with space,\"quoted,comma\"\n\"multi\nline\",7\n")
	f.Add(strings.Repeat("a", 1<<16) + ",b\n1,2\n")
	f.Add("a,a,A\n1,2,3\n")
	f.Add("{\"\\u0000\":1}\n")
	f.Add("1e308,1e309,-0\n")
	f.Fuzz(func(t *testing.T, data string) {
		for _, format := range []string{"auto", "csv", "ndjson", "json"} {
			res, err := Ingest(strings.NewReader(data), Options{
				Table:      "fuzz",
				Format:     format,
				SampleRows: 64,
				MaxBytes:   1 << 16,
			})
			if err != nil {
				continue
			}
			if res.Table == nil || len(res.Columns) == 0 {
				t.Fatalf("format %s: nil table without error", format)
			}
			if len(res.Columns) != len(res.Table.Columns) {
				t.Fatalf("format %s: %d infos vs %d columns", format, len(res.Columns), len(res.Table.Columns))
			}
			for _, row := range res.Table.Rows {
				if len(row) != len(res.Table.Columns) {
					t.Fatalf("format %s: row width %d, want %d", format, len(row), len(res.Table.Columns))
				}
				for i, v := range row {
					if v.IsNull() {
						continue
					}
					if want := res.Table.Columns[i].Type; v.Kind() != want {
						// Mixed columns widen to TEXT storage, but every
						// stored value must then be stringly classified.
						t.Fatalf("format %s: col %s value kind %v under declared %v",
							format, res.Table.Columns[i].Name, v.Kind(), want)
					}
				}
			}
			if res.RowsKept > 64 {
				t.Fatalf("format %s: reservoir overflowed: %d rows", format, res.RowsKept)
			}
			again, err := Ingest(strings.NewReader(data), Options{
				Table: "fuzz", Format: format, SampleRows: 64, MaxBytes: 1 << 16,
			})
			if err != nil {
				t.Fatalf("format %s: second ingest failed after first succeeded: %v", format, err)
			}
			if again.Fingerprint != res.Fingerprint {
				t.Fatalf("format %s: re-ingest fingerprint drifted", format)
			}
			// A decoded record must reproduce the catalog bit-identically.
			dec, err := decodeDataset(encodeDataset(res))
			if err != nil {
				t.Fatalf("format %s: codec: %v", format, err)
			}
			if tableFingerprint(dec.Table) != res.Fingerprint {
				t.Fatalf("format %s: codec round-trip changed the table", format)
			}
		}
	})
}
