package ingest

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/sqldb"
)

// persist.go encodes ingested catalogs for internal/store. Records live
// under the "d\x00" key prefix (completions use "c\x00", verdict memos
// "m\x00"); a manifest record lists the registered dataset names in
// ingestion order, and deletion rewrites the manifest — the store is
// append-only with last-write-wins semantics, so absence from the manifest
// is the tombstone. The codec is length-prefixed and versioned; a decoded
// table is bit-identical to the encoded one (column kinds are restored
// explicitly, not re-inferred), which is what makes cold-vs-warm verdicts
// reproduce.

const (
	datasetPrefix   = "d\x00"
	manifestKey     = "d\x00\x00manifest"
	datasetCodecVer = 1
)

func datasetKey(name string) []byte {
	return []byte(datasetPrefix + lowerName(name))
}

func lowerName(name string) string {
	b := []byte(name)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// enc is a minimal append-only encoder: u8/u32/u64/f64 little-endian,
// strings length-prefixed with u32.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)    { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string)  { e.u32(uint32(len(s))); e.b = append(e.b, s...) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

// dec is the matching decoder; all methods report malformed input as errors
// rather than panicking, since store bytes cross process boundaries.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("ingest: corrupt dataset record: short %s at offset %d", what, d.off)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail("u8")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// encodeDataset serializes a Result (table + ingestion metadata).
func encodeDataset(r *Result) []byte {
	e := &enc{}
	e.u8(datasetCodecVer)
	e.str(r.Name)
	e.str(r.Format)
	e.u64(uint64(r.RowsTotal))
	e.u64(uint64(r.BytesRead))
	var flags uint8
	if r.Sampled {
		flags |= 1
	}
	if r.Truncated {
		flags |= 2
	}
	if r.HeaderDetected {
		flags |= 4
	}
	e.u8(flags)
	e.u64(uint64(r.SampleSeed))
	e.str(r.Fingerprint)
	e.u32(uint32(len(r.Columns)))
	for _, c := range r.Columns {
		e.str(c.Name)
		e.str(c.Type)
		e.u32(uint32(c.Nulls))
	}
	t := r.Table
	e.str(t.Name)
	e.u32(uint32(len(t.Columns)))
	for _, c := range t.Columns {
		e.str(c.Name)
		e.u8(uint8(c.Type))
	}
	e.u32(uint32(len(t.Rows)))
	for _, row := range t.Rows {
		for _, v := range row {
			e.u8(uint8(v.Kind()))
			switch v.Kind() {
			case sqldb.KindInt:
				i, _ := v.AsInt()
				e.u64(uint64(i))
			case sqldb.KindFloat:
				f, _ := v.AsFloat()
				e.f64(f)
			case sqldb.KindText:
				e.str(v.Text())
			case sqldb.KindBool:
				if v.AsBool() {
					e.u8(1)
				} else {
					e.u8(0)
				}
			}
		}
	}
	return e.b
}

// decodeDataset restores a Result from its encoded form.
func decodeDataset(b []byte) (*Result, error) {
	d := &dec{b: b}
	if v := d.u8(); d.err == nil && v != datasetCodecVer {
		return nil, fmt.Errorf("ingest: dataset record version %d, want %d", v, datasetCodecVer)
	}
	r := &Result{}
	r.Name = d.str()
	r.Format = d.str()
	r.RowsTotal = int(d.u64())
	r.BytesRead = int64(d.u64())
	flags := d.u8()
	r.Sampled = flags&1 != 0
	r.Truncated = flags&2 != 0
	r.HeaderDetected = flags&4 != 0
	r.SampleSeed = int64(d.u64())
	r.Fingerprint = d.str()
	ncols := int(d.u32())
	for i := 0; i < ncols && d.err == nil; i++ {
		r.Columns = append(r.Columns, ColumnInfo{Name: d.str(), Type: d.str(), Nulls: int(d.u32())})
	}
	t := &sqldb.Table{Name: d.str()}
	ntc := int(d.u32())
	for i := 0; i < ntc && d.err == nil; i++ {
		name := d.str()
		kind := sqldb.Kind(d.u8())
		t.Columns = append(t.Columns, sqldb.Column{Name: name, Type: kind})
	}
	nrows := int(d.u32())
	for i := 0; i < nrows && d.err == nil; i++ {
		row := make([]sqldb.Value, ntc)
		for j := 0; j < ntc; j++ {
			switch sqldb.Kind(d.u8()) {
			case sqldb.KindNull:
				row[j] = sqldb.Null()
			case sqldb.KindInt:
				row[j] = sqldb.Int(int64(d.u64()))
			case sqldb.KindFloat:
				row[j] = sqldb.Float(d.f64())
			case sqldb.KindText:
				row[j] = sqldb.Text(d.str())
			case sqldb.KindBool:
				row[j] = sqldb.Bool(d.u8() == 1)
			default:
				d.fail("value kind")
			}
		}
		if d.err == nil {
			t.Rows = append(t.Rows, row)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	r.Table = t
	r.RowsKept = len(t.Rows)
	return r, nil
}

// encodeManifest serializes the ordered dataset name list.
func encodeManifest(names []string) []byte {
	e := &enc{}
	e.u8(datasetCodecVer)
	e.u32(uint32(len(names)))
	for _, n := range names {
		e.str(n)
	}
	return e.b
}

// decodeManifest restores the ordered dataset name list.
func decodeManifest(b []byte) ([]string, error) {
	d := &dec{b: b}
	if v := d.u8(); d.err == nil && v != datasetCodecVer {
		return nil, fmt.Errorf("ingest: manifest version %d, want %d", v, datasetCodecVer)
	}
	n := int(d.u32())
	out := make([]string, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.str())
	}
	if d.err != nil {
		return nil, d.err
	}
	return out, nil
}
