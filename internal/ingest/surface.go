package ingest

import (
	"fmt"
	"strings"

	"repro/internal/nl"
	"repro/internal/sqldb"
	"repro/internal/textutil"
)

// surface.go derives the verification surface of an ingested table the way
// dynamic-graphql-api derives an API from an introspected schema: every
// column yields filter/aggregate query templates mechanically, and each
// template that evaluates to a usable scalar yields a synthetic claim that
// is true by construction (its value is the gold query's own result). The
// claims exercise only sentence templates the nl parser round-trips via its
// lexicon fallbacks, so they verify on an unmodified pipeline.

// Template is one mechanically derived query form over an ingested column.
type Template struct {
	// Column is the subject column ("" for table-level templates).
	Column string `json:"column,omitempty"`
	// Kind names the query form: count_all, lookup, sum, avg, min, max,
	// count, or filter (the parameterized form, with a ? placeholder).
	Kind string `json:"kind"`
	// SQL is the query text; filter templates carry a ? placeholder.
	SQL string `json:"sql"`
}

// SurfaceClaim is one synthetic, true-by-construction claim.
type SurfaceClaim struct {
	ID string `json:"id"`
	// Sentence contains Value verbatim; Context is a one-line intro the
	// verification methods can read.
	Sentence string `json:"sentence"`
	Value    string `json:"value"`
	Context  string `json:"context"`
	// Query is the gold SQL the value was computed from.
	Query string `json:"query"`
}

// Surface is the generated verification surface of one dataset.
type Surface struct {
	// Entity is the column identifying rows (used for lookups), or "".
	Entity    string         `json:"entity,omitempty"`
	Templates []Template     `json:"templates"`
	Claims    []SurfaceClaim `json:"claims"`
}

// BuildSurface generates the verification surface for the named table. The
// table must already be registered in db (gold values are computed by
// executing the generated SQL against it). Generation is deterministic: no
// randomness, claims in column order.
func BuildSurface(db *sqldb.Database, tableName string) (*Surface, error) {
	t := db.Table(tableName)
	if t == nil {
		return nil, fmt.Errorf("ingest: table %q not registered", tableName)
	}
	schema := nl.SchemaFromDatabase(db)
	var st *nl.SchemaTable
	for i := range schema.Tables {
		if strings.EqualFold(schema.Tables[i].Name, tableName) {
			st = &schema.Tables[i]
			break
		}
	}
	if st == nil {
		return nil, fmt.Errorf("ingest: table %q missing from schema", tableName)
	}
	lex := nl.DefaultLexicon()
	noun := lex.TableNoun(t.Name)
	ent := nl.EntityColumnOf(st)

	s := &Surface{Entity: ent}
	addClaim := func(spec *nl.Spec, kind string) {
		sql, err := nl.BuildSQL(schema, spec)
		if err != nil {
			return
		}
		s.Templates = append(s.Templates, Template{Column: spec.Column, Kind: kind, SQL: sql})
		gold, err := sqldb.QueryScalar(db, sql)
		if err != nil || gold.IsNull() {
			return
		}
		var display string
		if gold.Kind() == sqldb.KindText {
			display = gold.Text()
		} else {
			f, ok := gold.AsFloat()
			if !ok {
				return
			}
			prec := 0
			if f != float64(int64(f)) {
				prec = 2
			}
			display = textutil.FormatNumber(textutil.RoundTo(f, prec))
		}
		if display == "" || (spec.FilterVal != "" && display == spec.FilterVal) {
			return
		}
		sentence := nl.RenderSentence(spec, lex, nl.RenderOptions{Value: display})
		if _, ok := textutil.FindValueSpan(sentence, display); !ok {
			return
		}
		col := spec.Column
		if col == "" {
			col = "rows"
		}
		s.Claims = append(s.Claims, SurfaceClaim{
			ID:       fmt.Sprintf("%s-%s-%s", strings.ToLower(t.Name), kind, strings.ToLower(col)),
			Sentence: sentence,
			Value:    display,
			Context:  fmt.Sprintf("This article summarizes data about %s.", noun),
			Query:    sql,
		})
	}

	if ent != "" {
		addClaim(&nl.Spec{Kind: nl.KindCountAll, EntityCol: ent, Noun: noun}, "count_all")
	}

	// The lookup entity: the first row with a non-null entity value.
	lookupEntity := ""
	if ent != "" {
		if idx := t.ColumnIndex(ent); idx >= 0 {
			for _, row := range t.Rows {
				if !row[idx].IsNull() && row[idx].Text() != "" {
					lookupEntity = row[idx].Text()
					break
				}
			}
		}
	}

	for _, c := range t.Columns {
		if c.Type != sqldb.KindInt && c.Type != sqldb.KindFloat {
			continue
		}
		if strings.EqualFold(c.Name, ent) {
			continue
		}
		if lookupEntity != "" {
			addClaim(&nl.Spec{Kind: nl.KindLookup, Column: c.Name, EntityCol: ent, EntityVal: lookupEntity, Noun: noun}, "lookup")
		}
		addClaim(&nl.Spec{Kind: nl.KindSum, Column: c.Name, Noun: noun}, "sum")
		addClaim(&nl.Spec{Kind: nl.KindAvg, Column: c.Name, Noun: noun}, "avg")
		addClaim(&nl.Spec{Kind: nl.KindMin, Column: c.Name, Noun: noun}, "min")
		addClaim(&nl.Spec{Kind: nl.KindMax, Column: c.Name, Noun: noun}, "max")
	}

	// Count with a filter over the entity column's first value: "Exactly x
	// <noun> recorded <entity> of <v>."
	if ent != "" && lookupEntity != "" {
		addClaim(&nl.Spec{Kind: nl.KindCount, FilterCol: ent, FilterVal: lookupEntity, FilterIsText: true, Noun: noun}, "count")
	}

	// Parameterized per-column filter templates round out the surface.
	for _, c := range t.Columns {
		s.Templates = append(s.Templates, Template{
			Column: c.Name,
			Kind:   "filter",
			SQL:    fmt.Sprintf(`SELECT COUNT(*) FROM "%s" WHERE "%s" = ?`, t.Name, c.Name),
		})
	}

	if len(s.Claims) == 0 {
		return nil, fmt.Errorf("ingest: table %q yields no verifiable claims (no usable columns)", tableName)
	}
	return s, nil
}
