// Package ingest turns user-supplied CSV and JSON data into sqldb catalogs
// with an auto-generated verification surface. It is the dynamic-dataset
// onboarding layer (DESIGN.md §15): type inference over raw cells, an
// Evergreen-style row/byte budget with deterministic reservoir sampling so
// oversized inputs stay affordable, per-column query templates plus
// synthetic claims derived mechanically from the inferred schema, and a
// store-backed registry that persists ingested catalogs across restarts.
package ingest

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/sqldb"
)

// Default ingestion budgets. DefaultSampleRows bounds the rows a catalog
// keeps (reservoir-sampled beyond it); DefaultMaxBytes bounds the input
// bytes read before the parser stops at the last complete record.
const (
	DefaultSampleRows = 50000
	DefaultMaxBytes   = 32 << 20
)

// maxColumns bounds the inferred column count; wider inputs are rejected as
// malformed rather than ingested into an unusably wide catalog.
const maxColumns = 512

// Options configure one ingestion.
type Options struct {
	// Table is the catalog name the dataset registers under. Required.
	Table string
	// Format is "csv", "ndjson", "json" (array of objects), or "auto"/""
	// to sniff from the content (and filename, for File).
	Format string
	// SampleRows caps the rows kept; excess rows are reservoir-sampled
	// deterministically. <= 0 selects DefaultSampleRows.
	SampleRows int
	// MaxBytes caps the input bytes read; the parser stops at the last
	// complete record inside the budget. <= 0 selects DefaultMaxBytes.
	MaxBytes int64
	// Seed salts the sampling reservoir. The same (table, seed, content)
	// triple reproduces the same sample bit-identically on any machine.
	Seed int64
}

func (o Options) sampleRows() int {
	if o.SampleRows <= 0 {
		return DefaultSampleRows
	}
	return o.SampleRows
}

func (o Options) maxBytes() int64 {
	if o.MaxBytes <= 0 {
		return DefaultMaxBytes
	}
	return o.MaxBytes
}

// ColumnInfo describes one inferred column.
type ColumnInfo struct {
	// Name is the cleaned column name.
	Name string `json:"name"`
	// Type is the inferred ingest type: int, float, bool, date, or string.
	Type string `json:"type"`
	// Nulls counts NULL cells among the kept rows.
	Nulls int `json:"nulls"`
}

// Result is one completed ingestion: the built table plus everything the
// caller needs to report, persist, and reason about determinism.
type Result struct {
	// Table is the built catalog table (name = Options.Table).
	Table *sqldb.Table `json:"-"`
	// Name echoes Options.Table.
	Name string `json:"name"`
	// Format is the resolved input format.
	Format string `json:"format"`
	// Columns are the inferred columns in input order.
	Columns []ColumnInfo `json:"columns"`
	// RowsTotal counts the records scanned (within the byte budget);
	// RowsKept counts the rows stored, after sampling.
	RowsTotal int `json:"rows_total"`
	RowsKept  int `json:"rows_kept"`
	// BytesRead is the input bytes consumed.
	BytesRead int64 `json:"bytes_read"`
	// Sampled reports that RowsTotal exceeded the row budget and the kept
	// rows are a deterministic reservoir sample.
	Sampled bool `json:"sampled"`
	// Truncated reports that the byte budget cut the input off at the last
	// complete record.
	Truncated bool `json:"truncated"`
	// HeaderDetected reports whether a CSV first record was taken as the
	// header (always true for JSON inputs, whose keys name the columns).
	HeaderDetected bool `json:"header_detected"`
	// SampleSeed is the effective reservoir seed, recorded so the sampling
	// decision is reproducible (and traceable) across processes.
	SampleSeed int64 `json:"sample_seed"`
	// Fingerprint is a content hash of the built table (schema + rows);
	// equal fingerprints guarantee bit-identical catalogs, which is what
	// the re-ingest idempotency and cold/warm determinism gates compare.
	Fingerprint string `json:"fingerprint"`
}

// SampleDetail renders the sampling decision for a trace span's Detail
// field: dataset, rows seen/kept, bytes, and the reservoir seed.
func (r *Result) SampleDetail() string {
	return fmt.Sprintf("dataset=%s rows=%d kept=%d bytes=%d sampled=%v truncated=%v seed=%d",
		r.Name, r.RowsTotal, r.RowsKept, r.BytesRead, r.Sampled, r.Truncated, r.SampleSeed)
}

// File ingests a file, sniffing the format from the extension when Options.
// Format is empty/auto: .csv, .ndjson/.jsonl, .json.
func File(path string, opts Options) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if opts.Format == "" || opts.Format == "auto" {
		switch strings.ToLower(filepath.Ext(path)) {
		case ".csv":
			opts.Format = "csv"
		case ".ndjson", ".jsonl":
			opts.Format = "ndjson"
		case ".json":
			opts.Format = "json"
		}
	}
	if opts.Table == "" {
		base := filepath.Base(path)
		opts.Table = strings.TrimSuffix(base, filepath.Ext(base))
	}
	return Ingest(f, opts)
}

// Ingest reads one dataset from r under the options' budget and builds its
// catalog table. The reader is consumed at most MaxBytes+1 bytes.
func Ingest(r io.Reader, opts Options) (*Result, error) {
	if strings.TrimSpace(opts.Table) == "" {
		return nil, fmt.Errorf("ingest: table name is required")
	}

	budget := opts.maxBytes()
	raw, err := io.ReadAll(io.LimitReader(r, budget+1))
	if err != nil {
		return nil, fmt.Errorf("ingest %s: read: %w", opts.Table, err)
	}
	truncated := false
	if int64(len(raw)) > budget {
		truncated = true
		raw = raw[:budget]
	}
	raw = bytes.TrimPrefix(raw, []byte{0xEF, 0xBB, 0xBF}) // UTF-8 BOM

	format := opts.Format
	if format == "" || format == "auto" {
		format = sniffFormat(raw)
	}

	res := &Result{
		Name:      opts.Table,
		Format:    format,
		BytesRead: int64(len(raw)),
		Truncated: truncated,
	}

	rows := newRowAccumulator(opts)
	switch format {
	case "csv":
		err = parseCSV(raw, truncated, res, rows)
	case "ndjson":
		err = parseNDJSON(raw, truncated, res, rows)
	case "json":
		err = parseJSONArray(raw, truncated, res, rows)
	default:
		return nil, fmt.Errorf("ingest %s: unsupported format %q", opts.Table, format)
	}
	if err != nil {
		return nil, err
	}
	if len(rows.cols) == 0 {
		return nil, fmt.Errorf("ingest %s: no columns found", opts.Table)
	}
	if len(rows.cols) > maxColumns {
		return nil, fmt.Errorf("ingest %s: %d columns exceeds the %d-column limit", opts.Table, len(rows.cols), maxColumns)
	}

	res.SampleSeed = sampleSeed(opts)
	kept := rows.kept
	if rows.seen > opts.sampleRows() {
		res.Sampled = true
	}

	t := sqldb.NewTable(opts.Table)
	for i, c := range rows.cols {
		t.Columns = append(t.Columns, sqldb.Column{Name: c.name, Type: rows.colTypes[i].sqlKind()})
	}
	nulls := make([]int, len(rows.cols))
	for _, row := range kept {
		// Rows were accumulated before the final column set settled (JSON
		// objects can introduce keys late); pad to full width.
		for len(row) < len(rows.cols) {
			row = append(row, sqldb.Null())
		}
		for i, v := range row {
			// Values classified before the column widened (an int cell in a
			// column that later proved float or string) coerce to the final
			// column kind so stored kinds always match the declared schema.
			row[i] = coerce(v, t.Columns[i].Type)
			if v.IsNull() {
				nulls[i]++
			}
		}
		t.Rows = append(t.Rows, row)
	}

	res.Table = t
	res.RowsTotal = rows.seen
	res.RowsKept = len(t.Rows)
	for i, c := range rows.cols {
		res.Columns = append(res.Columns, ColumnInfo{Name: c.name, Type: rows.colTypes[i].String(), Nulls: nulls[i]})
	}
	res.Fingerprint = tableFingerprint(t)
	return res, nil
}

// coerce converts a value to the declared column kind. Only widening
// conversions occur in practice: int → float, and anything → text.
func coerce(v sqldb.Value, kind sqldb.Kind) sqldb.Value {
	if v.IsNull() || v.Kind() == kind {
		return v
	}
	switch kind {
	case sqldb.KindFloat:
		if f, ok := v.AsFloat(); ok {
			return sqldb.Float(f)
		}
	case sqldb.KindText:
		return sqldb.Text(v.String())
	}
	return v
}

// sniffFormat guesses the format from content: a leading '[' is a JSON
// array, '{' is NDJSON, anything else CSV.
func sniffFormat(raw []byte) string {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '[':
			return "json"
		case '{':
			return "ndjson"
		default:
			return "csv"
		}
	}
	return "csv"
}

// sampleSeed derives the effective reservoir seed from the table name and
// the caller's salt — stable across processes, independent of wall clock.
func sampleSeed(opts Options) int64 {
	h := sha256.Sum256([]byte(fmt.Sprintf("ingest-sample|%s|%d", strings.ToLower(opts.Table), opts.Seed)))
	return int64(binary.LittleEndian.Uint64(h[:8]) &^ (1 << 63))
}

// column is one inferred column under construction.
type column struct {
	name string
}

// rowAccumulator collects parsed rows through the deterministic reservoir:
// the first cap rows are kept verbatim; each later row replaces a random
// kept row with probability cap/seen, which yields a uniform sample of the
// scanned prefix under any input size.
type rowAccumulator struct {
	cols     []column
	colTypes []ColType
	byName   map[string]int
	kept     [][]sqldb.Value
	seen     int
	cap      int
	rng      *rand.Rand
}

func newRowAccumulator(opts Options) *rowAccumulator {
	return &rowAccumulator{
		byName: make(map[string]int),
		cap:    opts.sampleRows(),
		rng:    rand.New(rand.NewSource(sampleSeed(opts))),
	}
}

// columnIndex returns the index of the named column, adding it on first
// sight.
func (a *rowAccumulator) columnIndex(name string) int {
	key := strings.ToLower(name)
	if i, ok := a.byName[key]; ok {
		return i
	}
	i := len(a.cols)
	a.cols = append(a.cols, column{name: name})
	a.colTypes = append(a.colTypes, ColUnknown)
	a.byName[key] = i
	return i
}

// add pushes one parsed row (already aligned to a.cols, possibly shorter)
// through the reservoir.
func (a *rowAccumulator) add(row []sqldb.Value) {
	a.seen++
	if len(a.kept) < a.cap {
		a.kept = append(a.kept, row)
		return
	}
	if j := a.rng.Intn(a.seen); j < a.cap {
		a.kept[j] = row
	}
}

// parseCSV ingests CSV content: header detection on the first record,
// ragged rows padded with NULL or truncated to the header width.
func parseCSV(raw []byte, truncated bool, res *Result, acc *rowAccumulator) error {
	if truncated {
		// Drop the partial trailing record the byte budget cut through.
		if i := bytes.LastIndexByte(raw, '\n'); i >= 0 {
			raw = raw[:i+1]
		} else {
			raw = nil
		}
	}
	cr := csv.NewReader(bytes.NewReader(raw))
	cr.FieldsPerRecord = -1
	cr.LazyQuotes = true
	first, err := cr.Read()
	if err == io.EOF {
		return fmt.Errorf("ingest %s: empty input", res.Name)
	}
	if err != nil {
		return fmt.Errorf("ingest %s: csv: %w", res.Name, err)
	}
	var pending [][]string
	if looksLikeHeader(first) {
		res.HeaderDetected = true
		for i, h := range first {
			acc.columnIndex(cleanColumnName(h, i))
		}
	} else {
		for i := range first {
			acc.columnIndex("col" + fmt.Sprint(i+1))
		}
		pending = append(pending, first)
	}
	appendRec := func(rec []string) {
		// Ragged rows: extra cells extend the column set only when the
		// header was synthetic; with a detected header they are dropped.
		if !res.HeaderDetected {
			for len(acc.cols) < len(rec) && len(acc.cols) < maxColumns {
				acc.columnIndex("col" + fmt.Sprint(len(acc.cols)+1))
			}
		}
		row := make([]sqldb.Value, len(acc.cols))
		for i := range row {
			if i < len(rec) {
				v, ct := classify(rec[i])
				row[i] = v
				acc.colTypes[i] = mergeColType(acc.colTypes[i], ct)
			} else {
				row[i] = sqldb.Null()
			}
		}
		acc.add(row)
	}
	for _, rec := range pending {
		appendRec(rec)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("ingest %s: csv record %d: %w", res.Name, acc.seen+1, err)
		}
		appendRec(rec)
	}
	return nil
}

// parseNDJSON ingests newline-delimited JSON objects. Keys are read in
// document order so column order is deterministic; a truncated final line is
// dropped when the byte budget cut through it.
func parseNDJSON(raw []byte, truncated bool, res *Result, acc *rowAccumulator) error {
	if truncated {
		if i := bytes.LastIndexByte(raw, '\n'); i >= 0 {
			raw = raw[:i+1]
		} else {
			raw = nil
		}
	}
	res.HeaderDetected = true
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(text))
		dec.UseNumber()
		row, err := decodeObjectRow(dec, acc)
		if err != nil {
			return fmt.Errorf("ingest %s: ndjson line %d: %w", res.Name, line, err)
		}
		acc.add(row)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("ingest %s: ndjson: %w", res.Name, err)
	}
	return nil
}

// parseJSONArray ingests a JSON array of objects, decoding elements
// incrementally. When the byte budget truncated the array, rows parsed
// before the cut are kept.
func parseJSONArray(raw []byte, truncated bool, res *Result, acc *rowAccumulator) error {
	res.HeaderDetected = true
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("ingest %s: json: %w", res.Name, err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("ingest %s: json: expected an array of objects", res.Name)
	}
	for dec.More() {
		row, err := decodeObjectRow(dec, acc)
		if err != nil {
			if truncated {
				// The budget cut mid-element; keep what parsed cleanly.
				return nil
			}
			return fmt.Errorf("ingest %s: json element %d: %w", res.Name, acc.seen+1, err)
		}
		acc.add(row)
	}
	if _, err := dec.Token(); err != nil && !truncated {
		return fmt.Errorf("ingest %s: json: %w", res.Name, err)
	}
	return nil
}

// decodeObjectRow decodes one JSON object into a row aligned to the
// accumulator's columns, reading keys in document order.
func decodeObjectRow(dec *json.Decoder, acc *rowAccumulator) ([]sqldb.Value, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, fmt.Errorf("expected an object, got %v", tok)
	}
	row := make([]sqldb.Value, len(acc.cols))
	for i := range row {
		row[i] = sqldb.Null()
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		key, ok := keyTok.(string)
		if !ok {
			return nil, fmt.Errorf("expected an object key, got %v", keyTok)
		}
		var rawVal json.RawMessage
		if err := dec.Decode(&rawVal); err != nil {
			return nil, err
		}
		name := cleanColumnName(key, len(acc.cols))
		idx := acc.columnIndex(name)
		for len(row) <= idx {
			row = append(row, sqldb.Null())
		}
		v, ct, err := classifyJSON(rawVal)
		if err != nil {
			return nil, fmt.Errorf("key %q: %w", key, err)
		}
		row[idx] = v
		if idx < len(acc.colTypes) {
			acc.colTypes[idx] = mergeColType(acc.colTypes[idx], ct)
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return nil, err
	}
	return row, nil
}

// classifyJSON converts one raw JSON value into its sqldb value and ingest
// type. Strings go through the same textual classifier as CSV cells (so
// dates and null tokens behave identically across formats); numbers keep
// their JSON int/float distinction; nested arrays/objects stringify.
func classifyJSON(raw json.RawMessage) (sqldb.Value, ColType, error) {
	t := bytes.TrimSpace(raw)
	if len(t) == 0 || bytes.Equal(t, []byte("null")) {
		return sqldb.Null(), ColUnknown, nil
	}
	switch t[0] {
	case '"':
		var s string
		if err := json.Unmarshal(t, &s); err != nil {
			return sqldb.Null(), ColUnknown, err
		}
		v, ct := classify(s)
		return v, ct, nil
	case 't', 'f':
		var b bool
		if err := json.Unmarshal(t, &b); err != nil {
			return sqldb.Null(), ColUnknown, err
		}
		return sqldb.Bool(b), ColBool, nil
	case '[', '{':
		return sqldb.Text(string(t)), ColString, nil
	default:
		var n json.Number
		if err := json.Unmarshal(t, &n); err != nil {
			return sqldb.Null(), ColUnknown, err
		}
		if i, err := n.Int64(); err == nil {
			return sqldb.Int(i), ColInt, nil
		}
		f, err := n.Float64()
		if err != nil {
			return sqldb.Null(), ColUnknown, err
		}
		return sqldb.Float(f), ColFloat, nil
	}
}

// tableFingerprint hashes a table's schema and rows; equal fingerprints mean
// bit-identical catalogs.
func tableFingerprint(t *sqldb.Table) string {
	h := sha256.New()
	fmt.Fprintf(h, "table|%s|%d|%d\n", strings.ToLower(t.Name), len(t.Columns), len(t.Rows))
	for _, c := range t.Columns {
		fmt.Fprintf(h, "col|%s|%d\n", strings.ToLower(c.Name), int(c.Type))
	}
	for _, row := range t.Rows {
		for _, v := range row {
			fmt.Fprintf(h, "%d|%s\n", int(v.Kind()), v.String())
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
