package ingest

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/sqldb"
	"repro/internal/store"
)

// Dataset is one registered dataset: its ingestion result plus the surface
// generated from the registered table.
type Dataset struct {
	// Info is the ingestion result (Info.Table is the registered table).
	Info *Result
	// Surface is the auto-generated verification surface.
	Surface *Surface
}

// Registry manages the ingested datasets of one database: registration into
// the catalog, surface generation, and (when a store is attached)
// persistence across restarts. Base tables — anything in the database the
// registry did not add — are never touched. All methods are safe for
// concurrent use.
type Registry struct {
	mu sync.Mutex
	db *sqldb.Database
	st *store.Store // nil = in-memory only
	// defaults fill unset budget fields of ingestion options.
	defaults Options
	byName   map[string]*Dataset
	order    []string // lowercased names, ingestion order
}

// NewRegistry constructs a registry over db. st may be nil (datasets then
// live only as long as the process). defaults supply SampleRows/MaxBytes/
// Seed for ingestions that leave them zero.
func NewRegistry(db *sqldb.Database, st *store.Store, defaults Options) *Registry {
	return &Registry{db: db, st: st, defaults: defaults, byName: make(map[string]*Dataset)}
}

// Defaults returns the registry's default ingestion budgets.
func (r *Registry) Defaults() Options { return r.defaults }

// fill merges the registry defaults into opts.
func (r *Registry) fill(opts Options) Options {
	if opts.SampleRows <= 0 {
		opts.SampleRows = r.defaults.SampleRows
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = r.defaults.MaxBytes
	}
	if opts.Seed == 0 {
		opts.Seed = r.defaults.Seed
	}
	return opts
}

// IngestBytes ingests raw request bytes via Ingest (with the registry
// defaults filling unset budgets) and registers the result.
func (r *Registry) IngestBytes(data []byte, opts Options) (*Dataset, error) {
	return r.IngestFrom(strings.NewReader(string(data)), opts)
}

// IngestFrom ingests from a reader (with the registry defaults filling
// unset budgets) and registers the result. It is the one-call path the
// serve handlers use; the reader is consumed at most MaxBytes+1 bytes.
func (r *Registry) IngestFrom(rd io.Reader, opts Options) (*Dataset, error) {
	res, err := Ingest(rd, r.fill(opts))
	if err != nil {
		return nil, err
	}
	return r.Add(res)
}

// Add registers an ingestion result: the table enters the database catalog,
// the surface is generated, and the dataset is persisted when a store is
// attached. Re-adding an existing dataset replaces it (idempotent for equal
// content); a name colliding with a base table is rejected.
func (r *Registry) Add(res *Result) (*Dataset, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(res.Name)
	if _, isDataset := r.byName[key]; !isDataset && r.db.Table(res.Name) != nil {
		return nil, fmt.Errorf("ingest: table %q already exists and is not an ingested dataset", res.Name)
	}
	r.db.AddTable(res.Table)
	surface, err := BuildSurface(r.db, res.Name)
	if err != nil {
		// Roll the catalog back so a surfaceless table does not linger.
		if _, was := r.byName[key]; !was {
			r.db.RemoveTable(res.Name)
		}
		return nil, err
	}
	ds := &Dataset{Info: res, Surface: surface}
	if _, existed := r.byName[key]; !existed {
		r.order = append(r.order, key)
	}
	r.byName[key] = ds
	if r.st != nil {
		if err := r.st.Put(datasetKey(res.Name), encodeDataset(res)); err != nil {
			return nil, fmt.Errorf("ingest: persist %s: %w", res.Name, err)
		}
		if err := r.writeManifestLocked(); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// Get returns the named dataset, or nil.
func (r *Registry) Get(name string) *Dataset {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[strings.ToLower(name)]
}

// List returns the registered datasets in ingestion order.
func (r *Registry) List() []*Dataset {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Dataset, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.byName[k])
	}
	return out
}

// Delete removes a dataset from the registry and the catalog, and rewrites
// the persisted manifest so the dataset stays gone after a restart. It
// reports whether the dataset existed; base tables are not deletable.
func (r *Registry) Delete(name string) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := r.byName[key]; !ok {
		return false, nil
	}
	delete(r.byName, key)
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.db.RemoveTable(name)
	if r.st != nil {
		if err := r.writeManifestLocked(); err != nil {
			return true, err
		}
	}
	return true, nil
}

// LoadPersisted restores every manifest-listed dataset from the store into
// the registry and catalog, in manifest (= original ingestion) order so the
// rebuilt catalog fingerprints identically. Missing or undecodable records
// are errors: a half-restored catalog would silently change verdicts.
func (r *Registry) LoadPersisted() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.st == nil {
		return 0, nil
	}
	raw, ok := r.st.Get([]byte(manifestKey))
	if !ok {
		return 0, nil
	}
	names, err := decodeManifest(raw)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, name := range names {
		if _, already := r.byName[strings.ToLower(name)]; already {
			continue
		}
		if err := r.loadLocked(name); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// LoadDataset restores one named dataset from the store. Unlike
// LoadPersisted it pulls in only what the caller asked for, so a run that
// names specific datasets does not change its database fingerprint when
// unrelated datasets share the store.
func (r *Registry) LoadDataset(name string) (*Dataset, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(name)
	if ds, already := r.byName[key]; already {
		return ds, nil
	}
	if r.st == nil {
		return nil, fmt.Errorf("ingest: dataset %q: no store attached", name)
	}
	if err := r.loadLocked(name); err != nil {
		return nil, err
	}
	return r.byName[key], nil
}

// loadLocked restores one dataset record into the registry and catalog.
func (r *Registry) loadLocked(name string) error {
	key := strings.ToLower(name)
	rec, ok := r.st.Get(datasetKey(name))
	if !ok {
		return fmt.Errorf("ingest: dataset %q not found in store", name)
	}
	res, err := decodeDataset(rec)
	if err != nil {
		return fmt.Errorf("ingest: dataset %q: %w", name, err)
	}
	if r.db.Table(res.Name) != nil {
		return fmt.Errorf("ingest: persisted dataset %q collides with an existing table", res.Name)
	}
	r.db.AddTable(res.Table)
	surface, err := BuildSurface(r.db, res.Name)
	if err != nil {
		return fmt.Errorf("ingest: dataset %q: %w", name, err)
	}
	r.byName[key] = &Dataset{Info: res, Surface: surface}
	r.order = append(r.order, key)
	return nil
}

// writeManifestLocked persists the current dataset name list (display case
// preserved via each dataset's Info.Name).
func (r *Registry) writeManifestLocked() error {
	names := make([]string, 0, len(r.order))
	for _, k := range r.order {
		names = append(names, r.byName[k].Info.Name)
	}
	if err := r.st.Put([]byte(manifestKey), encodeManifest(names)); err != nil {
		return fmt.Errorf("ingest: persist manifest: %w", err)
	}
	return nil
}
