package ingest

import (
	"strings"
	"testing"

	"repro/cedar"
	"repro/internal/data"
	"repro/internal/route"
	"repro/internal/sqldb"
)

// A compound claim spanning an ingested CSV table and a compiled-in schema
// routes each conjunct to its own table: onboarding a dataset makes it a
// first-class routing target next to the tables the binary shipped with.
func TestRouteAcrossIngestedAndCompiledTables(t *testing.T) {
	db := sqldb.NewDatabase("ops")
	airlines := sqldb.NewTable("airlines", "airline", "incidents_85_99", "fatal_accidents_00_14")
	airlines.MustAppendRow(sqldb.Text("Aeroflot"), sqldb.Int(76), sqldb.Int(1))
	airlines.MustAppendRow(sqldb.Text("Malaysia Airlines"), sqldb.Int(3), sqldb.Int(2))
	db.AddTable(airlines)

	reg := NewRegistry(db, nil, Options{Seed: 5})
	const drinksCSV = "country,beer_servings,wine_servings\nFrance,127,370\nGermany,346,175\n"
	ds, err := reg.IngestBytes([]byte(drinksCSV), Options{Table: "drinks"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Info.RowsKept != 2 {
		t.Fatalf("ingested %d rows, want 2", ds.Info.RowsKept)
	}

	cat := route.NewCatalog(db)
	if cat.Len() != 2 {
		t.Fatalf("catalog indexed %d tables, want 2 (compiled-in + ingested)", cat.Len())
	}

	sentence := "Malaysia Airlines recorded 2 fatal accidents, and France recorded 370 wine servings."
	subs := route.Decompose(sentence, "2", "")
	if len(subs) != 2 {
		t.Fatalf("decomposed into %d sub-claims, want 2: %+v", len(subs), subs)
	}
	wantEntries := []string{"ops/airlines", "ops/drinks"}
	for i, sub := range subs {
		entry, _, _ := cat.Bind(5, 0, "ops", 0, i, sub)
		if entry == nil {
			t.Fatalf("sub %d did not bind", i)
		}
		if entry.Name() != wantEntries[i] {
			t.Errorf("sub %d (%q) bound to %s, want %s", i, sub.Sentence, entry.Name(), wantEntries[i])
		}
	}

	// End to end: the routed verification recombines sub-verdicts across the
	// compiled-in and ingested tables under one compound claim.
	sys, err := cedar.New(cedar.Options{Seed: 5, AccuracyTarget: 0.99, Route: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	profDocs, err := data.AggChecker(1005)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ProfileOn(profDocs[:6]); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetCatalog(db); err != nil {
		t.Fatal(err)
	}
	c, err := cedar.NewClaim("x1", sentence, "2", "")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.VerifyClaims("ops", db, []*cedar.Claim{c})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoutedSubClaims != 2 {
		t.Fatalf("routed %d sub-claims, want 2", rep.RoutedSubClaims)
	}
	if !strings.HasPrefix(c.Result.Method, "route(") {
		t.Fatalf("method = %q, want route(...)", c.Result.Method)
	}
	if !c.Result.Correct || !c.Result.Verified {
		t.Errorf("compound claim over true conjuncts = %+v, want verified correct", c.Result)
	}

	// Dropping the ingested dataset shrinks the routing surface again.
	if ok, err := reg.Delete("drinks"); err != nil || !ok {
		t.Fatalf("delete drinks: ok=%t err=%v", ok, err)
	}
	if cat := route.NewCatalog(db); cat.Len() != 1 {
		t.Fatalf("catalog after delete indexed %d tables, want 1", cat.Len())
	}
}

// Regression test for dataset DELETE and the plan cache: dropping an
// ingested dataset must evict every cached plan citing its table — above all
// cross-table joins against compiled-in tables — while unrelated hot plans
// stay warm, and a post-delete query against the dropped table must error
// rather than answer from a stale plan.
func TestDatasetDeleteEvictsCrossTablePlans(t *testing.T) {
	db := sqldb.NewDatabase("ops")
	base := sqldb.NewTable("regions", "region", "population")
	base.MustAppendRow(sqldb.Text("north"), sqldb.Int(100))
	base.MustAppendRow(sqldb.Text("south"), sqldb.Int(200))
	db.AddTable(base)

	reg := NewRegistry(db, nil, Options{Seed: 5})
	const salesByRegion = "region,units\nnorth,12\nsouth,7\n"
	if _, err := reg.IngestBytes([]byte(salesByRegion), Options{Table: "sales"}); err != nil {
		t.Fatal(err)
	}

	// Surface generation during ingestion caches its own plans; measure this
	// test's queries relative to that baseline.
	preloaded := db.PlanCacheStats().Entries
	queries := []string{
		`SELECT COUNT(*) FROM regions`,
		`SELECT COUNT(*) FROM sales`,
		`SELECT a.region, b.units FROM regions a JOIN sales b ON a.region = b.region ORDER BY 1`,
	}
	for _, q := range queries {
		if _, err := sqldb.Query(db, q); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
	if got := db.PlanCacheStats().Entries; got != preloaded+len(queries) {
		t.Fatalf("Entries = %d, want %d", got, preloaded+len(queries))
	}

	if ok, err := reg.Delete("sales"); err != nil || !ok {
		t.Fatalf("delete sales: ok=%t err=%v", ok, err)
	}
	// Every plan citing sales is gone — the sales scan, the cross-table join,
	// and ingestion's own surface plans — while regions-only plans survive.
	if got := db.PlanCacheStats().Entries; got >= preloaded+len(queries) {
		t.Fatalf("Entries after DELETE = %d, want eviction below %d", got, preloaded+len(queries))
	}
	before := db.PlanCacheStats()
	if _, err := sqldb.Query(db, queries[0]); err != nil {
		t.Fatal(err)
	}
	after := db.PlanCacheStats()
	if after.Hits-before.Hits != 1 || after.Misses != before.Misses {
		t.Fatalf("surviving plan not warm: hits %d->%d misses %d->%d",
			before.Hits, after.Hits, before.Misses, after.Misses)
	}
	// No stale answers: both evicted statements must now fail on the missing
	// table instead of executing their old plans.
	for _, q := range queries[1:] {
		if _, err := sqldb.Query(db, q); err == nil {
			t.Errorf("%q answered after its table was deleted", q)
		}
	}
}
