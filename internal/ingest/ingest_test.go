package ingest

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/store"
)

const salesCSV = `region,product,units,revenue,discounted,day
north,widget,12,1034.50,true,2024-01-02
south,gadget,7,812.25,false,2024-01-03
east,widget,31,2200.00,false,2024-01-04
west,sprocket,5,NA,true,2024-01-05
north,gadget,19,1500.75,false,2024-01-06
`

func mustIngest(t *testing.T, data string, opts Options) *Result {
	t.Helper()
	res, err := Ingest(strings.NewReader(data), opts)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	return res
}

func TestIngestCSVTypes(t *testing.T) {
	res := mustIngest(t, salesCSV, Options{Table: "sales"})
	if !res.HeaderDetected {
		t.Fatal("header not detected")
	}
	if res.Format != "csv" {
		t.Fatalf("format = %q, want csv", res.Format)
	}
	if res.RowsTotal != 5 || res.RowsKept != 5 {
		t.Fatalf("rows = %d/%d, want 5/5", res.RowsKept, res.RowsTotal)
	}
	want := map[string]string{
		"region": "string", "product": "string", "units": "int",
		"revenue": "float", "discounted": "bool", "day": "date",
	}
	if len(res.Columns) != len(want) {
		t.Fatalf("columns = %d, want %d", len(res.Columns), len(want))
	}
	for _, c := range res.Columns {
		if want[c.Name] != c.Type {
			t.Errorf("column %s type = %s, want %s", c.Name, c.Type, want[c.Name])
		}
	}
	// The NA cell must be NULL, and dates normalized to ISO.
	var revNulls int
	for _, c := range res.Columns {
		if c.Name == "revenue" {
			revNulls = c.Nulls
		}
	}
	if revNulls != 1 {
		t.Fatalf("revenue nulls = %d, want 1", revNulls)
	}
	dayIdx := res.Table.ColumnIndex("day")
	if got := res.Table.Rows[0][dayIdx].Text(); got != "2024-01-02" {
		t.Fatalf("day[0] = %q, want ISO date", got)
	}
}

func TestIngestCSVNoHeader(t *testing.T) {
	res := mustIngest(t, "1,alpha\n2,beta\n3,gamma\n", Options{Table: "t"})
	if res.HeaderDetected {
		t.Fatal("numeric first row misdetected as header")
	}
	if res.RowsTotal != 3 {
		t.Fatalf("rows = %d, want 3 (first row is data)", res.RowsTotal)
	}
	if res.Columns[0].Name != "col1" || res.Columns[1].Name != "col2" {
		t.Fatalf("synthetic names = %v", res.Columns)
	}
	if res.Columns[0].Type != "int" || res.Columns[1].Type != "string" {
		t.Fatalf("types = %s/%s", res.Columns[0].Type, res.Columns[1].Type)
	}
}

func TestIngestCSVRaggedAndBOM(t *testing.T) {
	data := "\xEF\xBB\xBFa,b\n1,2,3\n4\n"
	res := mustIngest(t, data, Options{Table: "ragged"})
	if !res.HeaderDetected {
		t.Fatal("BOM broke header detection")
	}
	if len(res.Columns) != 2 {
		t.Fatalf("columns = %d, want 2 (extra cell dropped under detected header)", len(res.Columns))
	}
	// Short row pads with NULL.
	if !res.Table.Rows[1][1].IsNull() {
		t.Fatal("short row not NULL-padded")
	}
}

func TestIngestMixedNumericWidensToFloat(t *testing.T) {
	res := mustIngest(t, "x\n1\n2.5\n3\n", Options{Table: "m"})
	if res.Columns[0].Type != "float" {
		t.Fatalf("type = %s, want float", res.Columns[0].Type)
	}
	if res.Table.Columns[0].Type != sqldb.KindFloat {
		t.Fatalf("sql kind = %v, want float", res.Table.Columns[0].Type)
	}
}

func TestIngestNDJSON(t *testing.T) {
	data := `{"name":"ada","score":10}
{"score":7.5,"name":"grace","extra":"late"}

{"name":"edsger","score":null}
`
	res := mustIngest(t, data, Options{Table: "people"})
	if res.Format != "ndjson" {
		t.Fatalf("format = %q", res.Format)
	}
	if res.RowsTotal != 3 {
		t.Fatalf("rows = %d, want 3 (blank line skipped)", res.RowsTotal)
	}
	// Column order follows first sight: name, score, extra.
	names := []string{res.Columns[0].Name, res.Columns[1].Name, res.Columns[2].Name}
	if names[0] != "name" || names[1] != "score" || names[2] != "extra" {
		t.Fatalf("column order = %v", names)
	}
	if res.Columns[1].Type != "float" {
		t.Fatalf("score type = %s, want float (int ∪ float)", res.Columns[1].Type)
	}
	// Row 1 lacks "extra": padded NULL.
	if !res.Table.Rows[0][2].IsNull() {
		t.Fatal("missing key not NULL")
	}
}

func TestIngestJSONArray(t *testing.T) {
	data := `[ {"city":"oslo","pop":700000}, {"city":"bergen","pop":290000} ]`
	res := mustIngest(t, data, Options{Table: "cities"})
	if res.Format != "json" {
		t.Fatalf("format = %q", res.Format)
	}
	if res.RowsTotal != 2 {
		t.Fatalf("rows = %d", res.RowsTotal)
	}
	if res.Columns[1].Type != "int" {
		t.Fatalf("pop type = %s", res.Columns[1].Type)
	}
}

func TestIngestSamplingDeterministic(t *testing.T) {
	var b strings.Builder
	b.WriteString("id,v\n")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i, i*3)
	}
	opts := Options{Table: "big", SampleRows: 50, Seed: 7}
	r1 := mustIngest(t, b.String(), opts)
	r2 := mustIngest(t, b.String(), opts)
	if !r1.Sampled || r1.RowsKept != 50 || r1.RowsTotal != 1000 {
		t.Fatalf("sampled=%v kept=%d total=%d", r1.Sampled, r1.RowsKept, r1.RowsTotal)
	}
	if r1.Fingerprint != r2.Fingerprint {
		t.Fatalf("same (content, table, seed) fingerprints differ: %s vs %s", r1.Fingerprint, r2.Fingerprint)
	}
	// A different seed selects a different reservoir.
	r3 := mustIngest(t, b.String(), Options{Table: "big", SampleRows: 50, Seed: 8})
	if r3.Fingerprint == r1.Fingerprint {
		t.Fatal("different seeds produced identical samples (vanishingly unlikely)")
	}
	if r1.SampleSeed == 0 || r1.SampleSeed == opts.Seed {
		t.Fatalf("SampleSeed = %d, want derived value", r1.SampleSeed)
	}
}

func TestIngestByteBudgetTruncates(t *testing.T) {
	var b strings.Builder
	b.WriteString("id,v\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i, i)
	}
	full := mustIngest(t, b.String(), Options{Table: "t"})
	cut := mustIngest(t, b.String(), Options{Table: "t", MaxBytes: 64})
	if !cut.Truncated {
		t.Fatal("Truncated not set")
	}
	if cut.RowsTotal >= full.RowsTotal || cut.RowsTotal == 0 {
		t.Fatalf("truncated rows = %d (full %d)", cut.RowsTotal, full.RowsTotal)
	}
	if cut.BytesRead > 64 {
		t.Fatalf("BytesRead = %d > budget", cut.BytesRead)
	}
}

func TestIngestErrors(t *testing.T) {
	if _, err := Ingest(strings.NewReader("a,b\n1,2\n"), Options{}); err == nil {
		t.Fatal("missing table name accepted")
	}
	if _, err := Ingest(strings.NewReader(""), Options{Table: "t"}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Ingest(strings.NewReader("[1,2,3]"), Options{Table: "t", Format: "json"}); err == nil {
		t.Fatal("array of scalars accepted")
	}
	if _, err := Ingest(strings.NewReader("x"), Options{Table: "t", Format: "tsv"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestBuildSurfaceClaims(t *testing.T) {
	res := mustIngest(t, salesCSV, Options{Table: "sales"})
	db := sqldb.NewDatabase("ingested")
	db.AddTable(res.Table)
	s, err := BuildSurface(db, "sales")
	if err != nil {
		t.Fatalf("BuildSurface: %v", err)
	}
	if s.Entity == "" {
		t.Fatal("no entity column found (region is TEXT)")
	}
	if len(s.Claims) == 0 {
		t.Fatal("no claims generated")
	}
	kinds := map[string]bool{}
	for _, c := range s.Claims {
		// Every claim is true by construction: the gold query re-evaluates
		// to the rendered value.
		v, err := sqldb.QueryScalar(db, c.Query)
		if err != nil {
			t.Fatalf("claim %s: gold query: %v", c.ID, err)
		}
		if v.IsNull() {
			t.Fatalf("claim %s: gold query is NULL", c.ID)
		}
		if !strings.Contains(c.Sentence, c.Value) {
			t.Fatalf("claim %s: sentence %q lacks value %q", c.ID, c.Sentence, c.Value)
		}
		parts := strings.SplitN(c.ID, "-", 3)
		kinds[parts[1]] = true
	}
	for _, k := range []string{"count_all", "sum", "min", "max"} {
		if !kinds[k] {
			t.Errorf("no %s claim generated (have %v)", k, kinds)
		}
	}
	// Filter templates cover every column with a ? placeholder.
	filters := 0
	for _, tm := range s.Templates {
		if tm.Kind == "filter" {
			filters++
			if !strings.Contains(tm.SQL, "?") {
				t.Fatalf("filter template lacks placeholder: %s", tm.SQL)
			}
		}
	}
	if filters != len(res.Columns) {
		t.Fatalf("filter templates = %d, want %d", filters, len(res.Columns))
	}
}

func TestDatasetCodecRoundTrip(t *testing.T) {
	res := mustIngest(t, salesCSV, Options{Table: "Sales", Seed: 3})
	got, err := decodeDataset(encodeDataset(res))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Fingerprint != res.Fingerprint {
		t.Fatalf("fingerprint drifted: %s vs %s", got.Fingerprint, res.Fingerprint)
	}
	if fp := tableFingerprint(got.Table); fp != res.Fingerprint {
		t.Fatalf("decoded table re-fingerprints to %s, want %s", fp, res.Fingerprint)
	}
	if got.Name != "Sales" || got.SampleSeed != res.SampleSeed || got.RowsTotal != res.RowsTotal {
		t.Fatalf("metadata drifted: %+v", got)
	}
	if len(got.Columns) != len(res.Columns) || got.Columns[2].Type != "int" {
		t.Fatalf("columns drifted: %+v", got.Columns)
	}
	// Corrupt records error instead of panicking.
	enc := encodeDataset(res)
	for _, cut := range []int{0, 1, 5, len(enc) / 2, len(enc) - 1} {
		if _, err := decodeDataset(enc[:cut]); err == nil {
			t.Fatalf("truncated record (%d bytes) decoded without error", cut)
		}
	}
}

func TestRegistryPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	db := sqldb.NewDatabase("d")
	reg := NewRegistry(db, st, Options{})
	res := mustIngest(t, salesCSV, Options{Table: "sales"})
	if _, err := reg.Add(res); err != nil {
		t.Fatalf("Add: %v", err)
	}
	res2 := mustIngest(t, `[{"name":"x","n":1},{"name":"y","n":2}]`, Options{Table: "pairs"})
	if _, err := reg.Add(res2); err != nil {
		t.Fatalf("Add pairs: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Warm restart: a fresh registry over a fresh DB restores both datasets
	// in order with identical fingerprints.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	db2 := sqldb.NewDatabase("d")
	reg2 := NewRegistry(db2, st2, Options{})
	n, err := reg2.LoadPersisted()
	if err != nil {
		t.Fatalf("LoadPersisted: %v", err)
	}
	if n != 2 {
		t.Fatalf("restored %d datasets, want 2", n)
	}
	list := reg2.List()
	if len(list) != 2 || list[0].Info.Name != "sales" || list[1].Info.Name != "pairs" {
		t.Fatalf("restore order wrong: %v", list)
	}
	if list[0].Info.Fingerprint != res.Fingerprint {
		t.Fatal("restored fingerprint differs")
	}
	if db2.Table("sales") == nil || db2.Table("pairs") == nil {
		t.Fatal("restored tables missing from catalog")
	}

	// Delete persists: after another restart the dataset stays gone.
	if ok, err := reg2.Delete("sales"); !ok || err != nil {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	if db2.Table("sales") != nil {
		t.Fatal("deleted table still in catalog")
	}
	st2.Close()
	st3, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen 2: %v", err)
	}
	defer st3.Close()
	db3 := sqldb.NewDatabase("d")
	reg3 := NewRegistry(db3, st3, Options{})
	if n, err := reg3.LoadPersisted(); err != nil || n != 1 {
		t.Fatalf("after delete: restored %d (%v), want 1", n, err)
	}
	if reg3.Get("sales") != nil {
		t.Fatal("deleted dataset resurrected")
	}
}

func TestRegistryProtectsBaseTables(t *testing.T) {
	db := sqldb.NewDatabase("d")
	base := sqldb.NewTable("base")
	base.Columns = []sqldb.Column{{Name: "id", Type: sqldb.KindInt}}
	base.Rows = [][]sqldb.Value{{sqldb.Int(1)}}
	db.AddTable(base)
	reg := NewRegistry(db, nil, Options{})
	res := mustIngest(t, "id\n2\n", Options{Table: "base"})
	if _, err := reg.Add(res); err == nil {
		t.Fatal("ingest over a base table accepted")
	}
	if ok, _ := reg.Delete("base"); ok {
		t.Fatal("base table deletable through registry")
	}
	// Re-adding an ingested dataset is allowed (replacement).
	res2 := mustIngest(t, salesCSV, Options{Table: "sales"})
	if _, err := reg.Add(res2); err != nil {
		t.Fatalf("Add: %v", err)
	}
	res3 := mustIngest(t, salesCSV, Options{Table: "sales"})
	if _, err := reg.Add(res3); err != nil {
		t.Fatalf("re-Add: %v", err)
	}
	if len(reg.List()) != 1 {
		t.Fatal("replacement duplicated the dataset")
	}
}

func TestCleanColumnName(t *testing.T) {
	cases := map[string]string{
		"Revenue (USD)": "revenue_usd",
		"  first name ": "first_name",
		"__x__":         "x",
		"%%%":           "col3",
		"A1":            "a1",
	}
	for in, want := range cases {
		if got := cleanColumnName(in, 2); got != want {
			t.Errorf("cleanColumnName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestClassifyEdgeCases(t *testing.T) {
	if v, ct := classify("  NaN "); !v.IsNull() || ct != ColUnknown {
		t.Fatal("NaN not a null token")
	}
	if _, ct := classify("+Inf"); ct != ColString {
		t.Fatal("Inf leaked through as float")
	}
	if v, ct := classify("TRUE"); ct != ColBool || !v.AsBool() {
		t.Fatal("TRUE not boolean")
	}
	if v, ct := classify("Jan 2, 2024"); ct != ColDate || v.Text() != "2024-01-02" {
		t.Fatalf("date spelling not normalized: %v", v.Text())
	}
}
