package ingest

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/sqldb"
)

// infer.go classifies raw cell text into the ingest type lattice. The
// lattice is wider than sqldb's value kinds — it distinguishes booleans and
// dates — but every type maps onto a sqldb kind for storage: dates have no
// native kind in the engine, so they store as TEXT in a normalized form that
// compares lexicographically in chronological order.

// ColType is the inferred type of an ingested column.
type ColType int

// Ingest column types, ordered roughly by specificity. mergeColType widens
// along this lattice: Int ∪ Float = Float, Bool/Date ∪ anything else =
// String, and Unknown (all NULLs so far) adopts whatever appears.
const (
	ColUnknown ColType = iota
	ColInt
	ColFloat
	ColBool
	ColDate
	ColString
)

// String names the type the way docs/DATA.md's inference table does.
func (t ColType) String() string {
	switch t {
	case ColInt:
		return "int"
	case ColFloat:
		return "float"
	case ColBool:
		return "bool"
	case ColDate:
		return "date"
	case ColString:
		return "string"
	default:
		return "unknown"
	}
}

// sqlKind maps an ingest type to the sqldb kind its values store as.
func (t ColType) sqlKind() sqldb.Kind {
	switch t {
	case ColInt:
		return sqldb.KindInt
	case ColFloat:
		return sqldb.KindFloat
	case ColBool:
		return sqldb.KindBool
	case ColDate, ColString:
		return sqldb.KindText
	default:
		return sqldb.KindNull
	}
}

// nullTokens are the case-insensitive spellings ingested as SQL NULL.
var nullTokens = map[string]bool{
	"": true, "null": true, "na": true, "n/a": true, "nan": true,
}

// dateLayouts are the accepted date spellings, tried in order. Every layout
// normalizes to ISO "2006-01-02" for storage.
var dateLayouts = []string{
	"2006-01-02",
	"2006/01/02",
	"01/02/2006",
	"Jan 2, 2006",
	"2 Jan 2006",
}

// classify converts one raw cell into its sqldb value and ingest type.
// Null tokens classify as (NULL, ColUnknown) so they never narrow a column.
func classify(raw string) (sqldb.Value, ColType) {
	t := strings.TrimSpace(raw)
	if nullTokens[strings.ToLower(t)] {
		return sqldb.Null(), ColUnknown
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return sqldb.Int(i), ColInt
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		// Infinities would otherwise sneak through ParseFloat; treat them as
		// text so aggregates stay finite. (NaN spellings are null tokens.)
		if !strings.ContainsAny(t, "iI") {
			return sqldb.Float(f), ColFloat
		}
	}
	switch strings.ToLower(t) {
	case "true", "false":
		return sqldb.Bool(strings.ToLower(t) == "true"), ColBool
	}
	for _, layout := range dateLayouts {
		if d, err := time.Parse(layout, t); err == nil {
			return sqldb.Text(d.Format("2006-01-02")), ColDate
		}
	}
	return sqldb.Text(t), ColString
}

// mergeColType widens a column's type to cover a newly observed cell type.
func mergeColType(cur, next ColType) ColType {
	if next == ColUnknown {
		return cur
	}
	if cur == ColUnknown || cur == next {
		return next
	}
	if (cur == ColInt && next == ColFloat) || (cur == ColFloat && next == ColInt) {
		return ColFloat
	}
	return ColString
}

// looksLikeHeader decides whether a CSV first record is a header: every cell
// must be non-empty, classify as plain text (a numeric, boolean, or date
// first row is data), and the names must be unique case-insensitively.
func looksLikeHeader(rec []string) bool {
	if len(rec) == 0 {
		return false
	}
	seen := make(map[string]bool, len(rec))
	for _, cell := range rec {
		t := strings.TrimSpace(cell)
		if t == "" {
			return false
		}
		if _, ct := classify(t); ct != ColString {
			return false
		}
		k := strings.ToLower(t)
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}

// cleanColumnName normalizes a header cell into a SQL-friendly column name:
// trimmed, lowercased, interior whitespace and punctuation collapsed to
// underscores. Empty results fall back to a positional name.
func cleanColumnName(raw string, pos int) string {
	t := strings.TrimSpace(raw)
	var b strings.Builder
	lastUnderscore := true // suppress leading underscores
	for _, r := range strings.ToLower(t) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnderscore = false
		default:
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	name := strings.TrimSuffix(b.String(), "_")
	if name == "" {
		name = "col" + strconv.Itoa(pos+1)
	}
	return name
}
