package llm

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCountTokens(t *testing.T) {
	if CountTokens("") != 0 {
		t.Error("empty text must cost zero tokens")
	}
	if got := CountTokens("word"); got != 1 {
		t.Errorf("short word = %d", got)
	}
	long := strings.Repeat("abcdefgh ", 100)
	got := CountTokens(long)
	if got < 150 || got > 300 {
		t.Errorf("long text tokens = %d, want ~225", got)
	}
	// Many short words: word count dominates the char/4 estimate.
	if got := CountTokens("a b c d e f"); got != 6 {
		t.Errorf("short words = %d want 6", got)
	}
}

func TestCountTokensMonotoneProperty(t *testing.T) {
	f := func(a, b string) bool {
		return CountTokens(a+b) >= CountTokens(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPricingCost(t *testing.T) {
	p := Pricing{InPer1K: 1.0, OutPer1K: 2.0}
	got := p.Cost(Usage{PromptTokens: 500, CompletionTokens: 250})
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("cost = %v want 1.0", got)
	}
}

func TestPricingLatency(t *testing.T) {
	p := Pricing{TokensPerSecond: 100, PerCallOverhead: 100 * time.Millisecond}
	lat := p.Latency(Usage{PromptTokens: 1000, CompletionTokens: 100})
	// 100ms overhead + 1s generation + 1s ingestion
	want := 100*time.Millisecond + time.Second + time.Second
	if lat != want {
		t.Errorf("latency = %v want %v", lat, want)
	}
	zero := Pricing{PerCallOverhead: time.Second}
	if zero.Latency(Usage{CompletionTokens: 50}) != time.Second {
		t.Error("zero speed must fall back to overhead")
	}
}

func TestModelPricesOrdered(t *testing.T) {
	// The schedule must preserve the paper's cost ordering: GPT-3.5 is the
	// cheap model, GPT-4o and GPT-4.1 are the expensive ones.
	cheap := DefaultPricing[ModelGPT35]
	for _, m := range []string{ModelGPT4o, ModelGPT41} {
		p := DefaultPricing[m]
		if p.InPer1K <= cheap.InPer1K || p.OutPer1K <= cheap.OutPer1K {
			t.Errorf("%s not more expensive than GPT-3.5", m)
		}
	}
}

func TestPriceForUnknownModel(t *testing.T) {
	if PriceFor("mystery").InPer1K <= 0 {
		t.Error("unknown model must get a non-zero fallback price")
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Record(ModelGPT35, Usage{PromptTokens: 1000, CompletionTokens: 1000}, time.Second)
	l.Record(ModelGPT4o, Usage{PromptTokens: 1000, CompletionTokens: 1000}, 2*time.Second)
	l.Record(ModelGPT35, Usage{PromptTokens: 500, CompletionTokens: 0}, time.Second)

	if l.TotalCalls() != 3 {
		t.Errorf("calls = %d", l.TotalCalls())
	}
	wantDollars := 0.0005 + 0.0015 + 0.0025 + 0.01 + 0.00025
	if math.Abs(l.TotalDollars()-wantDollars) > 1e-9 {
		t.Errorf("dollars = %v want %v", l.TotalDollars(), wantDollars)
	}
	if l.TotalWall() != 4*time.Second {
		t.Errorf("wall = %v", l.TotalWall())
	}
	if u := l.TotalUsage(); u.Total() != 4500 {
		t.Errorf("usage = %+v", u)
	}
	entries := l.Entries()
	if len(entries) != 2 || entries[0].Model != ModelGPT35 || entries[0].Calls != 2 {
		t.Errorf("entries = %+v", entries)
	}
	if !strings.Contains(l.String(), "total: $") {
		t.Errorf("String() = %q", l.String())
	}
	l.Reset()
	if l.TotalCalls() != 0 {
		t.Error("reset failed")
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				l.Record(ModelGPT4o, Usage{PromptTokens: 10, CompletionTokens: 5}, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if l.TotalCalls() != 1000 {
		t.Errorf("calls = %d want 1000", l.TotalCalls())
	}
}

type fixedClient struct{ resp Response }

func (f fixedClient) Complete(Request) (Response, error) { return f.resp, nil }

func TestMetered(t *testing.T) {
	l := NewLedger()
	c := &Metered{Client: fixedClient{resp: Response{
		Content: "ok",
		Usage:   Usage{PromptTokens: 100, CompletionTokens: 10},
		Latency: time.Second,
	}}, Ledger: l}
	resp, err := c.Complete(Request{Model: ModelGPT35})
	if err != nil || resp.Content != "ok" {
		t.Fatalf("resp = %+v err = %v", resp, err)
	}
	if l.TotalCalls() != 1 || l.TotalUsage().Total() != 110 {
		t.Errorf("ledger = %+v", l.Entries())
	}
}

func TestPromptText(t *testing.T) {
	got := PromptText([]Message{{Role: RoleSystem, Content: "a"}, {Role: RoleUser, Content: "b"}})
	if got != "a\nb" {
		t.Errorf("PromptText = %q", got)
	}
}

func TestUsageAdd(t *testing.T) {
	u := Usage{PromptTokens: 1, CompletionTokens: 2}.Add(Usage{PromptTokens: 3, CompletionTokens: 4})
	if u.PromptTokens != 4 || u.CompletionTokens != 6 || u.Total() != 10 {
		t.Errorf("usage = %+v", u)
	}
}

func TestCountMessageTokens(t *testing.T) {
	msgs := []Message{
		{Role: RoleSystem, Content: "You are helpful."},
		{Role: RoleUser, Content: "Hello there, how are you today my friend?"},
	}
	got := CountMessageTokens(msgs)
	want := CountTokens(msgs[0].Content) + CountTokens(msgs[1].Content) + 8
	if got != want {
		t.Errorf("CountMessageTokens = %d want %d", got, want)
	}
}
