package llm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stableClient is a thread-safe fake provider whose response depends only on
// the request (unlike countingClient's call-numbered replies), so concurrent
// callers can assert exact contents; it tallies actual invocations.
type stableClient struct {
	invocations atomic.Int64
}

func (c *stableClient) Complete(req Request) (Response, error) {
	c.invocations.Add(1)
	return Response{
		Content: "echo: " + PromptText(req.Messages),
		Usage:   Usage{PromptTokens: 10, CompletionTokens: 5},
		Latency: time.Microsecond,
	}, nil
}

// TestLedgerConcurrentRecording hammers one ledger from 32 goroutines and
// checks that no bookings are lost and the fee equals the fee of the same
// usage recorded serially (run under -race via make check).
func TestLedgerConcurrentRecording(t *testing.T) {
	const goroutines = 32
	const perGoroutine = 200
	ledger := NewLedger()
	u := Usage{PromptTokens: 7, CompletionTokens: 3}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			model := ModelGPT35
			if g%2 == 1 {
				model = ModelGPT4o
			}
			for i := 0; i < perGoroutine; i++ {
				ledger.Record(model, u, time.Millisecond)
			}
		}(g)
	}
	wg.Wait()

	want := NewLedger()
	for i := 0; i < goroutines*perGoroutine/2; i++ {
		want.Record(ModelGPT35, u, time.Millisecond)
		want.Record(ModelGPT4o, u, time.Millisecond)
	}
	if got := ledger.TotalCalls(); got != goroutines*perGoroutine {
		t.Errorf("calls = %d, want %d", got, goroutines*perGoroutine)
	}
	if got, w := ledger.TotalUsage(), want.TotalUsage(); got != w {
		t.Errorf("usage = %+v, want %+v", got, w)
	}
	// Fees must be bit-identical to the serial booking, not merely close:
	// Record recomputes from accumulated integer token counts.
	if got, w := ledger.TotalDollars(), want.TotalDollars(); got != w {
		t.Errorf("dollars = %v, want %v", got, w)
	}
	if got, w := ledger.TotalWall(), want.TotalWall(); got != w {
		t.Errorf("wall = %v, want %v", got, w)
	}
}

// TestCachedConcurrentSingleFlight fires 32 goroutines at a shared cache,
// all repeatedly requesting the same small set of temperature-0 prompts, and
// checks the underlying client was invoked exactly once per distinct prompt.
func TestCachedConcurrentSingleFlight(t *testing.T) {
	const goroutines = 32
	const perGoroutine = 50
	const distinctPrompts = 4
	client := &stableClient{}
	cache := NewCached(client, 0)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				prompt := fmt.Sprintf("prompt-%d", (g+i)%distinctPrompts)
				resp, err := cache.Complete(Request{
					Model:    ModelGPT35,
					Messages: []Message{{Role: RoleUser, Content: prompt}},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if want := "echo: " + prompt; resp.Content != want {
					t.Errorf("content = %q, want %q", resp.Content, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := client.invocations.Load(); got != distinctPrompts {
		t.Errorf("client invoked %d times, want %d (single-flight must deduplicate concurrent misses)", got, distinctPrompts)
	}
	calls, hits := cache.Stats()
	if calls != goroutines*perGoroutine {
		t.Errorf("cache lookups = %d, want %d", calls, goroutines*perGoroutine)
	}
	if hits != calls-distinctPrompts {
		t.Errorf("hits = %d, want %d", hits, calls-distinctPrompts)
	}
}

// TestMeteredConcurrentBilling drives a metered client from 32 goroutines
// and checks the ledger booked every call exactly once.
func TestMeteredConcurrentBilling(t *testing.T) {
	const goroutines = 32
	const perGoroutine = 100
	client := &stableClient{}
	ledger := NewLedger()
	metered := &Metered{Client: client, Ledger: ledger}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				if _, err := metered.Complete(Request{
					Model:    ModelGPT4o,
					Messages: []Message{{Role: RoleUser, Content: fmt.Sprintf("q-%d-%d", g, i)}},
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := ledger.TotalCalls(); got != goroutines*perGoroutine {
		t.Errorf("ledger calls = %d, want %d", got, goroutines*perGoroutine)
	}
	wantUsage := Usage{PromptTokens: 10 * goroutines * perGoroutine, CompletionTokens: 5 * goroutines * perGoroutine}
	if got := ledger.TotalUsage(); got != wantUsage {
		t.Errorf("usage = %+v, want %+v", got, wantUsage)
	}
	if got, want := ledger.TotalDollars(), PriceFor(ModelGPT4o).Cost(wantUsage); got != want {
		t.Errorf("dollars = %v, want %v", got, want)
	}
}
