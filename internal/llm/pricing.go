package llm

import "time"

// Pricing is a model's fee schedule in dollars per 1,000 tokens, plus its
// simulated generation speed for the throughput axis of Figure 5.
type Pricing struct {
	InPer1K  float64 // $ per 1K prompt tokens
	OutPer1K float64 // $ per 1K completion tokens
	// TokensPerSecond is the simulated completion speed. Larger models
	// stream slower; latency also includes PerCallOverhead.
	TokensPerSecond float64
	PerCallOverhead time.Duration
}

// Cost returns the dollar fee of a usage record under this schedule.
func (p Pricing) Cost(u Usage) float64 {
	return float64(u.PromptTokens)/1000*p.InPer1K + float64(u.CompletionTokens)/1000*p.OutPer1K
}

// Latency returns the simulated wall time of a completion under this
// schedule.
func (p Pricing) Latency(u Usage) time.Duration {
	if p.TokensPerSecond <= 0 {
		return p.PerCallOverhead
	}
	gen := time.Duration(float64(u.CompletionTokens) / p.TokensPerSecond * float64(time.Second))
	// Prompt ingestion is an order of magnitude faster than generation.
	ingest := time.Duration(float64(u.PromptTokens) / (10 * p.TokensPerSecond) * float64(time.Second))
	return p.PerCallOverhead + gen + ingest
}

// Canonical model names of the simulated GPT family used across the
// repository. The fee schedules mirror the published OpenAI prices at the
// time of the paper's evaluation, so relative cost ratios between methods
// match the paper's.
const (
	ModelGPT35 = "sim-gpt-3.5-turbo"
	ModelGPT4o = "sim-gpt-4o"
	ModelGPT41 = "sim-gpt-4.1"
)

// DefaultPricing is the fee schedule per canonical model.
var DefaultPricing = map[string]Pricing{
	ModelGPT35: {InPer1K: 0.0005, OutPer1K: 0.0015, TokensPerSecond: 120, PerCallOverhead: 300 * time.Millisecond},
	ModelGPT4o: {InPer1K: 0.0025, OutPer1K: 0.0100, TokensPerSecond: 70, PerCallOverhead: 500 * time.Millisecond},
	ModelGPT41: {InPer1K: 0.0020, OutPer1K: 0.0080, TokensPerSecond: 50, PerCallOverhead: 600 * time.Millisecond},
}

// PriceFor returns the fee schedule of a model name, defaulting to the
// GPT-4o schedule for unknown names so cost accounting never silently
// reports zero.
func PriceFor(model string) Pricing {
	if p, ok := DefaultPricing[model]; ok {
		return p
	}
	return DefaultPricing[ModelGPT4o]
}
