package llm

import (
	"encoding/binary"
	"hash/fnv"
)

// SplitSeed derives an independent sub-seed from a base seed and a list of
// identity parts — the splittable seeding scheme behind CEDAR's deterministic
// parallelism. The verification pipeline keys each model invocation on
// (document ID, claim index, method name, try number); because every attempt
// owns its seed, outcomes depend only on the attempt's identity, never on how
// concurrent attempts interleave, so any worker count reproduces the same
// results bit for bit.
//
// The derivation is FNV-64a over the base seed and the NUL-separated parts.
// It is stable across runs and platforms; it is not cryptographic.
func SplitSeed(base int64, parts ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	_, _ = h.Write(buf[:])
	for _, p := range parts {
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(p))
	}
	return int64(h.Sum64())
}
