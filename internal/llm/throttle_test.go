package llm

import (
	"errors"
	"testing"
	"time"
)

// latentErrClient fails every call but reports nonzero latency and usage, as
// a timed-out or 5xx-failed provider call does: the work was done, the
// content was lost.
type latentErrClient struct {
	latency time.Duration
	usage   Usage
	err     error
}

func (c *latentErrClient) Complete(req Request) (Response, error) {
	return Response{Usage: c.usage, Latency: c.latency}, c.err
}

// Regression: Throttled used to return early on error without sleeping, so
// fault-heavy benchmark runs cost zero wall time and looked dishonestly
// fast. Failed attempts must pay their latency.
func TestThrottledSleepsOnError(t *testing.T) {
	wantErr := errors.New("boom")
	c := &Throttled{
		Client: &latentErrClient{latency: 500 * time.Millisecond, err: wantErr},
		Scale:  0.05, // 500ms simulated -> 25ms real
	}
	start := time.Now()
	resp, err := c.Complete(Request{Model: ModelGPT4o})
	elapsed := time.Since(start)
	if !errors.Is(err, wantErr) {
		t.Fatalf("error not propagated: got %v", err)
	}
	if resp.Latency != 500*time.Millisecond {
		t.Fatalf("latency not propagated: got %v", resp.Latency)
	}
	if elapsed < 20*time.Millisecond {
		t.Errorf("Throttled returned in %v on error; failed attempts must pay scaled latency (~25ms)", elapsed)
	}
}

// Metered must bill failed attempts that consumed resources: tokens for
// transient/timeout failures, wall time for rate-limited round trips.
func TestMeteredBillsFailedAttempts(t *testing.T) {
	t.Run("transient failure bills tokens and wall", func(t *testing.T) {
		led := NewLedger()
		m := &Metered{
			Client: &latentErrClient{
				latency: 300 * time.Millisecond,
				usage:   Usage{PromptTokens: 120, CompletionTokens: 40},
				err:     errors.New("transient"),
			},
			Ledger: led,
		}
		if _, err := m.Complete(Request{Model: ModelGPT4o}); err == nil {
			t.Fatal("expected error")
		}
		if got := led.TotalCalls(); got != 1 {
			t.Fatalf("TotalCalls = %d, want 1 (failed call consumed tokens)", got)
		}
		if got := led.TotalUsage().Total(); got != 160 {
			t.Fatalf("TotalUsage = %d tokens, want 160", got)
		}
		if got := led.TotalWall(); got != 300*time.Millisecond {
			t.Fatalf("TotalWall = %v, want 300ms", got)
		}
		if led.TotalDollars() <= 0 {
			t.Fatal("failed attempt with usage must still incur a fee")
		}
	})

	t.Run("rate-limited round trip bills wall only", func(t *testing.T) {
		led := NewLedger()
		m := &Metered{
			Client: &latentErrClient{latency: 80 * time.Millisecond, err: errors.New("429")},
			Ledger: led,
		}
		if _, err := m.Complete(Request{Model: ModelGPT35}); err == nil {
			t.Fatal("expected error")
		}
		if got := led.TotalCalls(); got != 1 {
			t.Fatalf("TotalCalls = %d, want 1", got)
		}
		if got := led.TotalUsage().Total(); got != 0 {
			t.Fatalf("TotalUsage = %d tokens, want 0 (rejected before processing)", got)
		}
		if got := led.TotalWall(); got != 80*time.Millisecond {
			t.Fatalf("TotalWall = %v, want 80ms", got)
		}
	})

	t.Run("cost-free rejection goes unbooked", func(t *testing.T) {
		led := NewLedger()
		m := &Metered{
			Client: &latentErrClient{err: errors.New("circuit open")},
			Ledger: led,
		}
		if _, err := m.Complete(Request{Model: ModelGPT4o}); err == nil {
			t.Fatal("expected error")
		}
		if got := led.TotalCalls(); got != 0 {
			t.Fatalf("TotalCalls = %d, want 0 (shed calls never reached the provider)", got)
		}
	})
}
