package llm

import (
	"time"

	"repro/internal/trace"
)

// Throttled wraps a Client and sleeps a scaled fraction of each response's
// simulated latency before returning it. The simulated models compute
// per-call latency (see Pricing.Latency) but return instantly; production
// LLM APIs do not. Throttled restores that wait, so worker-pool speedups can
// be measured as real wall-clock gains: with N workers, N calls' latencies
// overlap instead of accumulating — exactly the effect claim-level
// parallelism buys against a network-bound provider.
type Throttled struct {
	// Client is the underlying completion provider.
	Client Client
	// Scale multiplies the simulated latency before sleeping; 1.0 sleeps
	// the full simulated wall time, 0.001 compresses seconds to
	// milliseconds (useful in benchmarks). Zero or negative disables the
	// sleep, making Throttled a no-op wrapper.
	Scale float64
	// Tracer, when enabled, records a throttle span per imposed sleep.
	Tracer *trace.Tracer
}

// Complete implements Client.
func (t *Throttled) Complete(req Request) (Response, error) {
	resp, err := t.Client.Complete(req)
	// Failed calls pay their latency too: a rate-limited round trip or a
	// timed-out generation occupies the wire just like a success, and
	// skipping the sleep on error would make fault-heavy benchmarks look
	// faster than the failures they model.
	if t.Scale > 0 && resp.Latency > 0 {
		sleep := time.Duration(float64(resp.Latency) * t.Scale)
		if t.Tracer.Enabled() {
			t.Tracer.Record(trace.Span{Key: req.Attempt, Kind: trace.KindThrottle, Model: req.Model, Latency: sleep})
		}
		time.Sleep(sleep)
	}
	return resp, err
}
