package llm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// Ledger accumulates token usage, dollar fees, and simulated wall time per
// model across a verification run. It is safe for concurrent use.
type Ledger struct {
	mu      sync.Mutex
	byModel map[string]*LedgerEntry
}

// LedgerEntry is the accumulated record for one model.
type LedgerEntry struct {
	Model   string
	Calls   int
	Usage   Usage
	Dollars float64
	Wall    time.Duration
}

// NewLedger constructs an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{byModel: make(map[string]*LedgerEntry)}
}

// Record books one completion against the ledger.
func (l *Ledger) Record(model string, u Usage, latency time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.byModel[model]
	if !ok {
		e = &LedgerEntry{Model: model}
		l.byModel[model] = e
	}
	e.Calls++
	e.Usage = e.Usage.Add(u)
	// Recompute the fee from the accumulated usage instead of summing
	// per-call fees: Cost is linear in token counts, so the value is the
	// same, but it no longer depends on the floating-point order in which
	// concurrent completions land — a prerequisite for bit-identical fee
	// totals under claim-level parallelism.
	e.Dollars = PriceFor(model).Cost(e.Usage)
	e.Wall += latency
}

// TotalDollars returns the accumulated fee across all models. Models are
// summed in name order so the float result is identical run to run (map
// iteration order would reorder the additions).
func (l *Ledger) TotalDollars() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.byModel))
	for name := range l.byModel {
		names = append(names, name)
	}
	sort.Strings(names)
	total := 0.0
	for _, name := range names {
		total += l.byModel[name].Dollars
	}
	return total
}

// TotalCalls returns the number of completions booked.
func (l *Ledger) TotalCalls() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.byModel {
		n += e.Calls
	}
	return n
}

// TotalWall returns the accumulated simulated wall time. Multi-stage
// verification is sequential per claim, so summed latency is the simulated
// elapsed time used to derive throughput.
func (l *Ledger) TotalWall() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	var w time.Duration
	for _, e := range l.byModel {
		w += e.Wall
	}
	return w
}

// TotalUsage returns the accumulated token usage across models.
func (l *Ledger) TotalUsage() Usage {
	l.mu.Lock()
	defer l.mu.Unlock()
	var u Usage
	for _, e := range l.byModel {
		u = u.Add(e.Usage)
	}
	return u
}

// Entries returns per-model records sorted by model name.
func (l *Ledger) Entries() []LedgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LedgerEntry, 0, len(l.byModel))
	for _, e := range l.byModel {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// Reset clears the ledger.
func (l *Ledger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byModel = make(map[string]*LedgerEntry)
}

// String renders a per-model cost report.
func (l *Ledger) String() string {
	var b strings.Builder
	for _, e := range l.Entries() {
		fmt.Fprintf(&b, "%-20s calls=%-5d prompt=%-8d completion=%-8d $%.4f\n",
			e.Model, e.Calls, e.Usage.PromptTokens, e.Usage.CompletionTokens, e.Dollars)
	}
	fmt.Fprintf(&b, "total: $%.4f over %d calls", l.TotalDollars(), l.TotalCalls())
	return b.String()
}

// Metered wraps a Client so that every completion is booked in the ledger
// and, when tracing is enabled, recorded as one attempt span.
type Metered struct {
	Client Client
	Ledger *Ledger
	Tracer *trace.Tracer
}

// Complete implements Client.
func (m *Metered) Complete(req Request) (Response, error) {
	resp, err := m.Client.Complete(req)
	// Failed attempts are billed when they cost something: a transient 5xx
	// or timeout consumed the tokens even though the content is lost, and a
	// 429 round trip still spent wall time. Only cost-free rejections (a
	// zero Response, e.g. a shed from an open circuit breaker) go unbooked.
	booked := err == nil || resp.Usage.Total() > 0 || resp.Latency > 0
	if m.Ledger != nil && booked {
		m.Ledger.Record(req.Model, resp.Usage, resp.Latency)
	}
	if m.Tracer.Enabled() && booked {
		outcome := trace.OutcomeOK
		if err != nil {
			outcome = trace.OutcomeError
		}
		m.Tracer.Record(trace.Span{
			Key:              req.Attempt,
			Kind:             trace.KindAttempt,
			Model:            req.Model,
			Temperature:      req.Temperature,
			Seed:             req.Seed,
			PromptTokens:     resp.Usage.PromptTokens,
			CompletionTokens: resp.Usage.CompletionTokens,
			Fee:              PriceFor(req.Model).Cost(resp.Usage),
			Latency:          resp.Latency,
			Outcome:          outcome,
		})
	}
	return resp, err
}
