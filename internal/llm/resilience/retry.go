package resilience

import (
	"fmt"
	"time"

	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Retrier wraps a Client and retries retryable transport failures with
// capped exponential backoff. Jitter is deterministic: the delay before the
// i-th retry of a request is derived from (Seed, request key, i), so a
// retried run reproduces the same backoff schedule at any worker count —
// there is no shared random stream for concurrent callers to perturb.
//
// Backoff waits are charged to the logical call's simulated wall time (the
// returned Response.Latency spans all attempts plus waits); Sleep can
// additionally impose them in real time for wall-clock deployments.
type Retrier struct {
	// Client is the underlying completion provider.
	Client llm.Client
	// MaxAttempts is the total attempt budget per logical call, first try
	// included (default 3).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: retry i waits
	// min(MaxDelay, BaseDelay<<i) scaled by deterministic jitter in
	// [0.5, 1). Default 200ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff wait (default 5s).
	MaxDelay time.Duration
	// Deadline bounds the simulated wall time of one logical call across
	// attempts and backoff waits; once exceeded the call fails with
	// ErrTimeout instead of retrying further. 0 disables the deadline.
	Deadline time.Duration
	// Seed drives the jitter derivation.
	Seed int64
	// Sleep, when non-nil, is invoked with each backoff wait so real
	// deployments (and tests observing the schedule) pay it in wall time;
	// nil charges simulated time only, keeping chaos tests fast.
	Sleep func(time.Duration)
	// Metrics, when non-nil, receives attempt and retry counters.
	Metrics *metrics.Resilience
	// Tracer, when enabled, records a retry span per backoff decision; the
	// span's Latency is the deterministic jittered wait and Detail the retry
	// ordinal.
	Tracer *trace.Tracer
}

// Complete implements llm.Client.
func (r *Retrier) Complete(req llm.Request) (llm.Response, error) {
	attempts := r.MaxAttempts
	if attempts < 1 {
		attempts = 3
	}
	key := requestKey(req)
	var elapsed time.Duration
	var resp llm.Response
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if r.Metrics != nil {
			r.Metrics.Attempts.Add(1)
			if attempt > 0 {
				r.Metrics.Retries.Add(1)
			}
		}
		resp, err = r.Client.Complete(req)
		elapsed += resp.Latency
		if err == nil {
			resp.Latency = elapsed
			return resp, nil
		}
		if !Retryable(err) {
			return resp, err
		}
		if r.Deadline > 0 && elapsed >= r.Deadline {
			return resp, fmt.Errorf("%w: %v elapsed of %v deadline (last: %v)", ErrTimeout, elapsed, r.Deadline, err)
		}
		if attempt < attempts-1 {
			d := r.backoff(key, attempt)
			elapsed += d
			if r.Deadline > 0 && elapsed >= r.Deadline {
				return resp, fmt.Errorf("%w: %v elapsed of %v deadline (last: %v)", ErrTimeout, elapsed, r.Deadline, err)
			}
			if r.Tracer.Enabled() {
				r.Tracer.Record(trace.Span{
					Key: req.Attempt, Kind: trace.KindRetry, Model: req.Model,
					Seed: req.Seed, Latency: d, Detail: fmt.Sprintf("retry %d", attempt+1),
				})
			}
			if r.Sleep != nil {
				r.Sleep(d)
			}
		}
	}
	return resp, err
}

// backoff returns the deterministic jittered wait before retry `attempt`.
func (r *Retrier) backoff(key uint64, attempt int) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	max := r.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	jitter := 0.5 + 0.5*unit(mix(r.Seed, key, attempt, 'b'))
	return time.Duration(float64(d) * jitter)
}
