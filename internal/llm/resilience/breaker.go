package resilience

import (
	"fmt"
	"sync"

	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// State is a circuit breaker's position.
type State int32

const (
	// Closed admits every call (healthy provider).
	Closed State = iota
	// Open sheds every call until the cooldown elapses.
	Open
	// HalfOpen admits a single probe call to test recovery.
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Breaker wraps a Client with a per-model circuit breaker. Consecutive
// failures trip it Open; while Open it rejects calls with ErrCircuitOpen
// (zero cost — the provider is never contacted), which the pipeline treats
// as "this method is unavailable", letting the scheduler degrade the claim
// to the next-cheapest method instead of aborting the document. After
// Cooldown shed calls, the breaker goes HalfOpen and admits one probe: a
// successful probe closes the circuit, a failed one reopens it.
//
// The cooldown is counted in shed calls rather than wall time so breaker
// behavior is reproducible in tests without a clock.
//
// Determinism trade-off: unlike every other middleware here, the breaker's
// state is shared across concurrent callers, so *which* calls get shed
// depends on arrival order. Enabling it trades across-worker-count
// bit-determinism for genuine load shedding — it is off by default and
// excluded from the chaos determinism matrix; its own tests pin behavior at
// workers=1 and assert invariants (not exact schedules) under race.
type Breaker struct {
	// Client is the underlying completion provider.
	Client llm.Client
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker (default 5).
	FailureThreshold int
	// Cooldown is the number of shed calls after which a half-open probe is
	// admitted (default 8).
	Cooldown int
	// Metrics, when non-nil, receives breaker counters.
	Metrics *metrics.Resilience
	// Tracer, when enabled, records breaker_shed / breaker_probe /
	// breaker_trip spans. Breaker spans inherit the state machine's
	// order-dependence and are excluded from the golden-trace gate (the
	// breaker is off there).
	Tracer *trace.Tracer

	mu      sync.Mutex
	state   State
	fails   int
	sheds   int
	probing bool
}

// Complete implements llm.Client.
func (b *Breaker) Complete(req llm.Request) (llm.Response, error) {
	admitted, probed := b.admit()
	if !admitted {
		if b.Metrics != nil {
			b.Metrics.BreakerSheds.Add(1)
		}
		if b.Tracer.Enabled() {
			b.Tracer.Record(trace.Span{Key: req.Attempt, Kind: trace.KindBreakerShed, Model: req.Model})
		}
		return llm.Response{}, fmt.Errorf("%w: model %s shedding load", ErrCircuitOpen, req.Model)
	}
	if probed && b.Tracer.Enabled() {
		b.Tracer.Record(trace.Span{Key: req.Attempt, Kind: trace.KindBreakerProbe, Model: req.Model})
	}
	resp, err := b.Client.Complete(req)
	if b.settle(err) && b.Tracer.Enabled() {
		b.Tracer.Record(trace.Span{Key: req.Attempt, Kind: trace.KindBreakerTrip, Model: req.Model})
	}
	return resp, err
}

// admit decides whether a call may proceed, advancing Open toward HalfOpen
// as shed calls accumulate. probed reports that this admission is a
// half-open recovery probe.
func (b *Breaker) admit() (admitted, probed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true, false
	case Open:
		b.sheds++
		cooldown := b.Cooldown
		if cooldown <= 0 {
			cooldown = 8
		}
		if b.sheds > cooldown {
			b.state = HalfOpen
			b.probing = true
			if b.Metrics != nil {
				b.Metrics.BreakerProbes.Add(1)
			}
			return true, true
		}
		return false, false
	case HalfOpen:
		if b.probing {
			b.sheds++
			return false, false
		}
		b.probing = true
		if b.Metrics != nil {
			b.Metrics.BreakerProbes.Add(1)
		}
		return true, true
	default:
		return true, false
	}
}

// settle folds an admitted call's outcome into the state machine and reports
// whether the outcome tripped the breaker open.
func (b *Breaker) settle(err error) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = Closed
		b.fails = 0
		b.sheds = 0
		b.probing = false
		return false
	}
	switch b.state {
	case HalfOpen:
		b.state = Open
		b.sheds = 0
		b.probing = false
		if b.Metrics != nil {
			b.Metrics.BreakerTrips.Add(1)
		}
		return true
	default:
		b.fails++
		threshold := b.FailureThreshold
		if threshold <= 0 {
			threshold = 5
		}
		if b.fails >= threshold && b.state == Closed {
			b.state = Open
			b.sheds = 0
			if b.Metrics != nil {
				b.Metrics.BreakerTrips.Add(1)
			}
			return true
		}
		return false
	}
}

// State reports the breaker's current position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
