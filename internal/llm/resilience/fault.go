package resilience

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"sync"

	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Plan is a deterministic fault schedule. Whether the n-th call of a given
// request identity fails — and with which error class — is a pure function
// of (Plan.Seed, request key, n), the same splittable-seeding idea behind
// llm.SplitSeed: identical runs inject identical fault sequences no matter
// how concurrent attempts interleave, so chaos runs are reproducible test
// fixtures rather than flakes.
type Plan struct {
	// Seed drives all fault randomness of this plan.
	Seed int64
	// Rate is the per-attempt fault probability in [0, 1]; 0 disables the
	// plan entirely.
	Rate float64
	// Class mix weights (relative, need not sum to 1). All-zero weights
	// default to {RateLimited: 1, Timeout: 1, Transient: 2, Permanent: 0} —
	// a provider that mostly throws retryable failures.
	RateLimited, Timeout, Transient, Permanent float64
}

func (p Plan) weights() (rl, to, tr, pm float64) {
	rl, to, tr, pm = p.RateLimited, p.Timeout, p.Transient, p.Permanent
	if rl == 0 && to == 0 && tr == 0 && pm == 0 {
		return 1, 1, 2, 0
	}
	return rl, to, tr, pm
}

// fault returns the injected error for the occ-th call of a request
// identity, or nil for a clean call.
func (p Plan) fault(key uint64, occ int) error {
	if p.Rate <= 0 {
		return nil
	}
	if unit(mix(p.Seed, key, occ, 'f')) >= p.Rate {
		return nil
	}
	rl, to, tr, pm := p.weights()
	total := rl + to + tr + pm
	if total <= 0 {
		return ErrTransient
	}
	v := unit(mix(p.Seed, key, occ, 'c')) * total
	switch {
	case v < rl:
		return ErrRateLimited
	case v < rl+to:
		return ErrTimeout
	case v < rl+to+tr:
		return ErrTransient
	default:
		return ErrPermanent
	}
}

// unit maps a hash to a uniform float in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// mix hashes a plan seed, request key, attempt ordinal, and a purpose tag
// into an independent draw.
func mix(seed int64, key uint64, occ int, tag byte) uint64 {
	h := fnv.New64a()
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], key)
	binary.LittleEndian.PutUint64(buf[16:], uint64(occ))
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte{tag})
	return h.Sum64()
}

// requestKey identifies a request by (model, prompt, seed). Two requests
// with the same key are the same logical attempt identity; the pipeline's
// per-(doc, claim, method, try) seeding guarantees distinct attempts get
// distinct keys, which is what makes per-key occurrence counting
// order-independent.
func requestKey(req llm.Request) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(req.Model))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(llm.PromptText(req.Messages)))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(req.Seed))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write(buf[:])
	return h.Sum64()
}

// Faulty wraps a Client and injects Plan-scheduled transport failures. Each
// request identity owns its fault sequence: the k-th retry of one logical
// call draws fault k of that identity, independent of every other claim in
// flight, so worker counts and interleavings never change which calls fail.
//
// Failure cost model: rate-limited calls are rejected before processing (no
// tokens, only the per-call overhead of the round trip); timeouts and
// transient/permanent failures happen after the provider has done the work,
// so the underlying completion's tokens and latency are paid — the content
// is simply lost. Timed-out calls additionally pay double latency (the full
// generation plus the wait before the client gives up).
type Faulty struct {
	// Client is the underlying completion provider.
	Client llm.Client
	// Plan schedules the faults.
	Plan Plan
	// Metrics, when non-nil, receives fault counters.
	Metrics *metrics.Resilience
	// Tracer, when enabled, records a fault span per injection; the span's
	// Outcome carries the error class. Fault spans are deterministic because
	// the schedule is identity-keyed, so they participate in the golden
	// trace.
	Tracer *trace.Tracer

	mu          sync.Mutex
	occurrences map[uint64]int
}

// Complete implements llm.Client.
func (f *Faulty) Complete(req llm.Request) (llm.Response, error) {
	if f.Plan.Rate <= 0 {
		return f.Client.Complete(req)
	}
	key := requestKey(req)
	f.mu.Lock()
	if f.occurrences == nil {
		f.occurrences = make(map[uint64]int)
	}
	occ := f.occurrences[key]
	f.occurrences[key] = occ + 1
	f.mu.Unlock()

	fault := f.Plan.fault(key, occ)
	if fault == nil {
		return f.Client.Complete(req)
	}
	f.count(fault)
	if f.Tracer.Enabled() {
		class, _ := Classify(fault)
		f.Tracer.Record(trace.Span{Key: req.Attempt, Kind: trace.KindFault, Model: req.Model, Seed: req.Seed, Outcome: class})
	}
	if errors.Is(fault, ErrRateLimited) {
		return llm.Response{Latency: llm.PriceFor(req.Model).PerCallOverhead}, fault
	}
	resp, err := f.Client.Complete(req)
	if err != nil {
		return resp, err
	}
	resp.Content = ""
	if errors.Is(fault, ErrTimeout) {
		resp.Latency *= 2
	}
	return resp, fault
}

func (f *Faulty) count(fault error) {
	if f.Metrics == nil {
		return
	}
	f.Metrics.Faults.Add(1)
	switch {
	case errors.Is(fault, ErrRateLimited):
		f.Metrics.RateLimited.Add(1)
	case errors.Is(fault, ErrTimeout):
		f.Metrics.Timeouts.Add(1)
	case errors.Is(fault, ErrTransient):
		f.Metrics.Transient.Add(1)
	case errors.Is(fault, ErrPermanent):
		f.Metrics.Permanent.Add(1)
	}
}
