package resilience

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/metrics"
)

// flakyClient fails while broken is set and succeeds otherwise; safe for
// concurrent use.
type flakyClient struct {
	broken atomic.Bool
	calls  atomic.Int64
}

func (c *flakyClient) Complete(req llm.Request) (llm.Response, error) {
	c.calls.Add(1)
	if c.broken.Load() {
		return llm.Response{Latency: time.Second}, ErrTransient
	}
	return llm.Response{Content: "answer", Latency: time.Second}, nil
}

func TestBreakerTripShedProbeRecover(t *testing.T) {
	inner := &flakyClient{}
	inner.broken.Store(true)
	res := &metrics.Resilience{}
	b := &Breaker{Client: inner, FailureThreshold: 3, Cooldown: 4, Metrics: res}
	req := llm.Request{Model: llm.ModelGPT35}

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := b.Complete(req); !errors.Is(err, ErrTransient) {
			t.Fatalf("call %d: want ErrTransient, got %v", i, err)
		}
	}
	if got := b.State(); got != Open {
		t.Fatalf("state after %d failures = %v, want open", 3, got)
	}

	// While open, calls shed with ErrCircuitOpen at zero cost and never
	// reach the provider.
	before := inner.calls.Load()
	for i := 0; i < 4; i++ {
		resp, err := b.Complete(req)
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("shed %d: want ErrCircuitOpen, got %v", i, err)
		}
		if resp.Usage.Total() != 0 || resp.Latency != 0 {
			t.Fatalf("shed %d cost something: %+v", i, resp)
		}
	}
	if inner.calls.Load() != before {
		t.Fatal("open breaker let calls through to the provider")
	}

	// The call after the cooldown is admitted as a half-open probe; the
	// provider is still broken, so the breaker reopens.
	if _, err := b.Complete(req); !errors.Is(err, ErrTransient) {
		t.Fatalf("probe should reach the broken provider, got %v", err)
	}
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open (reopened)", got)
	}

	// Provider recovers; after another cooldown the next probe succeeds and
	// closes the circuit.
	inner.broken.Store(false)
	for i := 0; i < 4; i++ {
		if _, err := b.Complete(req); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("post-reopen shed %d: want ErrCircuitOpen, got %v", i, err)
		}
	}
	if _, err := b.Complete(req); err != nil {
		t.Fatalf("recovery probe failed: %v", err)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if _, err := b.Complete(req); err != nil {
		t.Fatalf("closed breaker must admit calls: %v", err)
	}

	snap := res.Snapshot()
	if snap.BreakerTrips != 2 {
		t.Errorf("trips = %d, want 2 (initial trip + failed probe)", snap.BreakerTrips)
	}
	if snap.BreakerProbes != 2 {
		t.Errorf("probes = %d, want 2", snap.BreakerProbes)
	}
	if snap.BreakerSheds != 8 {
		t.Errorf("sheds = %d, want 8", snap.BreakerSheds)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	inner := &flakyClient{}
	b := &Breaker{Client: inner, FailureThreshold: 3}
	req := llm.Request{Model: llm.ModelGPT35}
	// Two failures, a success, two more failures: never trips.
	for _, broken := range []bool{true, true, false, true, true} {
		inner.broken.Store(broken)
		b.Complete(req)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed (threshold counts consecutive failures)", got)
	}
}

// TestBreakerConcurrentStress hammers one breaker from 32 goroutines while
// the provider flips between broken and healthy, mirroring the worker counts
// of internal/llm/concurrency_test.go. Exact shed schedules are
// order-dependent by design, so the test asserts invariants instead: the
// state machine stays coherent under race, every call gets either a real
// outcome or ErrCircuitOpen, and shed calls never reach the provider.
func TestBreakerConcurrentStress(t *testing.T) {
	const goroutines = 32
	const callsEach = 200

	inner := &flakyClient{}
	inner.broken.Store(true)
	res := &metrics.Resilience{}
	b := &Breaker{Client: inner, FailureThreshold: 5, Cooldown: 8, Metrics: res}

	var wg sync.WaitGroup
	var total, shed, failed, succeeded atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := llm.Request{Model: llm.ModelGPT35}
			for i := 0; i < callsEach; i++ {
				if g == 0 && i == callsEach/2 {
					inner.broken.Store(false) // provider recovers mid-run
				}
				total.Add(1)
				_, err := b.Complete(req)
				switch {
				case err == nil:
					succeeded.Add(1)
				case errors.Is(err, ErrCircuitOpen):
					shed.Add(1)
				case errors.Is(err, ErrTransient):
					failed.Add(1)
				default:
					t.Errorf("unexpected error class: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()

	if got := total.Load(); got != goroutines*callsEach {
		t.Fatalf("accounted %d calls, want %d", got, goroutines*callsEach)
	}
	if shed.Load()+failed.Load()+succeeded.Load() != total.Load() {
		t.Fatal("some call fell through every outcome bucket")
	}
	if inner.calls.Load() != failed.Load()+succeeded.Load() {
		t.Errorf("provider saw %d calls but %d outcomes were real — shed calls must not reach it",
			inner.calls.Load(), failed.Load()+succeeded.Load())
	}
	if shed.Load() == 0 {
		t.Error("a fully-broken start never shed — breaker did not trip under concurrency")
	}
	if succeeded.Load() == 0 {
		t.Error("breaker never recovered after the provider healed")
	}
	snap := res.Snapshot()
	if snap.BreakerSheds != shed.Load() {
		t.Errorf("metrics sheds %d != observed %d", snap.BreakerSheds, shed.Load())
	}
	if snap.BreakerTrips == 0 || snap.BreakerProbes == 0 {
		t.Errorf("trips=%d probes=%d, want both nonzero", snap.BreakerTrips, snap.BreakerProbes)
	}
	if got := b.State(); got != Closed && got != Open && got != HalfOpen {
		t.Errorf("state machine corrupted: %v", got)
	}
}
