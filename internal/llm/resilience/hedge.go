package resilience

import (
	"time"

	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Hedged wraps a Client and races a backup request when the primary is slow:
// if the primary's simulated latency exceeds After, a second completion is
// issued with an independent seed (llm.SplitSeed(req.Seed, "hedge")) and
// whichever finishes first on the simulated timeline wins. The loser is
// cancelled but its cost has already been paid — both attempts flow through
// the metering layers below, which is exactly how hedging bills in
// production (tail-latency insurance costs tokens).
//
// The race is adjudicated in simulated time, not wall time: the backup
// starts at After, so it finishes at After + backup.Latency and beats the
// primary iff that sum is smaller (or the primary failed outright). This
// keeps hedge decisions a pure function of request identity, preserving the
// determinism contract at any worker count.
type Hedged struct {
	// Client is the underlying completion provider.
	Client llm.Client
	// After is the latency threshold that triggers the backup request;
	// <= 0 disables hedging.
	After time.Duration
	// Metrics, when non-nil, receives hedge counters.
	Metrics *metrics.Resilience
	// Tracer, when enabled, records a hedge span when the backup fires and a
	// hedge_win span when it beats the primary. Hedge decisions are a pure
	// function of request identity, so both participate in the golden trace.
	Tracer *trace.Tracer
}

// Complete implements llm.Client.
func (h *Hedged) Complete(req llm.Request) (llm.Response, error) {
	primary, perr := h.Client.Complete(req)
	if h.After <= 0 || (perr == nil && primary.Latency <= h.After) {
		return primary, perr
	}
	if h.Metrics != nil {
		h.Metrics.Hedges.Add(1)
	}
	breq := req
	breq.Seed = llm.SplitSeed(req.Seed, "hedge")
	if h.Tracer.Enabled() {
		h.Tracer.Record(trace.Span{Key: req.Attempt, Kind: trace.KindHedge, Model: req.Model, Seed: breq.Seed, Latency: primary.Latency})
	}
	backup, berr := h.Client.Complete(breq)
	backupFinish := h.After + backup.Latency
	if berr == nil && (perr != nil || backupFinish < primary.Latency) {
		if h.Metrics != nil {
			h.Metrics.HedgeWins.Add(1)
		}
		if h.Tracer.Enabled() {
			h.Tracer.Record(trace.Span{Key: req.Attempt, Kind: trace.KindHedgeWin, Model: req.Model, Seed: breq.Seed, Latency: backupFinish})
		}
		backup.Latency = backupFinish
		return backup, nil
	}
	return primary, perr
}
