// Package resilience hardens the llm.Client hot path against a hostile
// provider. Real LLM APIs rate-limit, time out, and return transient
// 5xx-class failures; this package supplies the transport-error taxonomy, a
// deterministic fault injector for chaos testing, and composable client
// middleware — Retrier (capped exponential backoff with seeded jitter and a
// per-call deadline), Hedged (backup request racing), and Breaker (per-model
// load shedding with closed/open/half-open states).
//
// Everything except the Breaker preserves CEDAR's determinism contract
// (DESIGN.md §8): injected faults, backoff jitter, and hedge decisions are
// all derived from the request's identity — (model, prompt, seed) plus an
// attempt ordinal — never from wall clocks or shared random streams, so a
// chaos run reproduces bit for bit at any worker count. The Breaker is the
// deliberate exception: which calls it sheds depends on arrival order, the
// price of genuine load shedding (see its doc comment).
package resilience

import "errors"

// The transport-error taxonomy. Verification methods treat these as
// provider-level failures (the claim was never actually attempted), distinct
// from semantic failures like verify.ErrNoQuery.
var (
	// ErrRateLimited is the 429 class: the provider rejected the call before
	// processing it, so no tokens were consumed.
	ErrRateLimited = errors.New("resilience: rate limited (429)")
	// ErrTimeout is a call that exceeded its deadline; the provider may have
	// done the work, so the tokens are billed even though the content is lost.
	ErrTimeout = errors.New("resilience: request timed out")
	// ErrTransient is the retryable 5xx class: the provider failed after
	// consuming the tokens.
	ErrTransient = errors.New("resilience: transient provider failure (5xx)")
	// ErrPermanent is the non-retryable 4xx class (bad request, content
	// policy): retrying the identical call cannot succeed.
	ErrPermanent = errors.New("resilience: permanent provider failure (4xx)")
	// ErrCircuitOpen is returned by a Breaker shedding load; callers should
	// degrade (try the next method) rather than retry the same model.
	ErrCircuitOpen = errors.New("resilience: circuit open")
)

// Retryable reports whether retrying the call may help: true for rate
// limits, timeouts, and transient failures; false for permanent failures,
// open circuits, and errors outside the taxonomy (a semantic failure like an
// unparseable completion is not a transport problem).
func Retryable(err error) bool {
	return errors.Is(err, ErrRateLimited) || errors.Is(err, ErrTimeout) || errors.Is(err, ErrTransient)
}

// Classify maps an error to its taxonomy class name ("rate_limited",
// "timeout", "transient", "permanent", "circuit_open"). The second result is
// false for nil errors and errors outside the taxonomy, so callers can
// distinguish transport failures from semantic ones through any %w wrapping.
func Classify(err error) (string, bool) {
	switch {
	case err == nil:
		return "", false
	case errors.Is(err, ErrRateLimited):
		return "rate_limited", true
	case errors.Is(err, ErrTimeout):
		return "timeout", true
	case errors.Is(err, ErrTransient):
		return "transient", true
	case errors.Is(err, ErrPermanent):
		return "permanent", true
	case errors.Is(err, ErrCircuitOpen):
		return "circuit_open", true
	}
	return "", false
}
