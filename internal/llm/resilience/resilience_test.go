package resilience

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/metrics"
)

// scriptClient replies according to fn, which sees the 0-based call ordinal
// and the request; it is safe for concurrent use.
type scriptClient struct {
	mu    sync.Mutex
	calls int
	fn    func(call int, req llm.Request) (llm.Response, error)
}

func (c *scriptClient) Complete(req llm.Request) (llm.Response, error) {
	c.mu.Lock()
	call := c.calls
	c.calls++
	c.mu.Unlock()
	return c.fn(call, req)
}

func (c *scriptClient) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func ok(latency time.Duration) func(int, llm.Request) (llm.Response, error) {
	return func(int, llm.Request) (llm.Response, error) {
		return llm.Response{Content: "answer", Usage: llm.Usage{PromptTokens: 10, CompletionTokens: 5}, Latency: latency}, nil
	}
}

func TestErrorTaxonomy(t *testing.T) {
	for _, err := range []error{ErrRateLimited, ErrTimeout, ErrTransient} {
		if !Retryable(err) {
			t.Errorf("%v should be retryable", err)
		}
		// Classification must survive %w wrapping, which is how verify and
		// agent layers propagate transport errors.
		wrapped := fmt.Errorf("verify: method agent-gpt4o: %w", err)
		if !Retryable(wrapped) {
			t.Errorf("wrapped %v should stay retryable", err)
		}
	}
	for _, err := range []error{ErrPermanent, ErrCircuitOpen, errors.New("semantic"), nil} {
		if Retryable(err) {
			t.Errorf("%v should not be retryable", err)
		}
	}
	cases := []struct {
		err   error
		class string
		ok    bool
	}{
		{fmt.Errorf("x: %w", ErrRateLimited), "rate_limited", true},
		{fmt.Errorf("x: %w", ErrTimeout), "timeout", true},
		{ErrTransient, "transient", true},
		{ErrPermanent, "permanent", true},
		{fmt.Errorf("x: %w", ErrCircuitOpen), "circuit_open", true},
		{errors.New("no query found"), "", false},
		{nil, "", false},
	}
	for _, tc := range cases {
		class, got := Classify(tc.err)
		if class != tc.class || got != tc.ok {
			t.Errorf("Classify(%v) = (%q, %v), want (%q, %v)", tc.err, class, got, tc.class, tc.ok)
		}
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, Rate: 0.5}
	var first []error
	for occ := 0; occ < 200; occ++ {
		first = append(first, plan.fault(12345, occ))
	}
	faults := 0
	for occ, want := range first {
		if got := plan.fault(12345, occ); !errors.Is(got, want) && got != want {
			t.Fatalf("occ %d: fault not reproducible: %v vs %v", occ, got, want)
		}
		if want != nil {
			faults++
		}
	}
	// ~50% of 200 draws should fault; a wide band guards the distribution
	// without inviting flakiness (the draws are deterministic anyway).
	if faults < 60 || faults > 140 {
		t.Errorf("rate 0.5 injected %d/200 faults, outside [60, 140]", faults)
	}
	// A different seed must produce a different schedule.
	other := Plan{Seed: 43, Rate: 0.5}
	same := 0
	for occ := 0; occ < 200; occ++ {
		if (other.fault(12345, occ) == nil) == (first[occ] == nil) {
			same++
		}
	}
	if same == 200 {
		t.Error("seed 43 reproduced seed 42's entire fault schedule")
	}

	if (Plan{Rate: 0}).fault(1, 1) != nil {
		t.Error("rate 0 must never fault")
	}
	all := Plan{Seed: 7, Rate: 1}
	for occ := 0; occ < 50; occ++ {
		if all.fault(99, occ) == nil {
			t.Fatalf("rate 1 produced a clean call at occ %d", occ)
		}
	}
	// Class weights: a transient-only plan draws nothing else.
	tr := Plan{Seed: 7, Rate: 1, Transient: 1}
	for occ := 0; occ < 50; occ++ {
		if err := tr.fault(99, occ); !errors.Is(err, ErrTransient) {
			t.Fatalf("transient-only plan drew %v", err)
		}
	}
}

// Faulty's occurrence counting gives each request identity its own fault
// sequence: two Faulty instances with the same plan replay identically, and
// distinct request identities draw independently.
func TestFaultyPerIdentitySequences(t *testing.T) {
	mkReq := func(prompt string, seed int64) llm.Request {
		return llm.Request{Model: llm.ModelGPT4o, Messages: []llm.Message{{Role: llm.RoleUser, Content: prompt}}, Seed: seed}
	}
	run := func() []bool {
		f := &Faulty{Client: &scriptClient{fn: ok(time.Second)}, Plan: Plan{Seed: 5, Rate: 0.5}}
		var outcome []bool
		for i := 0; i < 30; i++ {
			_, err := f.Complete(mkReq("p1", 100))
			outcome = append(outcome, err == nil)
			_, err = f.Complete(mkReq("p2", 200))
			outcome = append(outcome, err == nil)
		}
		return outcome
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: fault sequence not reproducible across instances", i)
		}
	}
}

// The failure cost model under the meter: transient failures and timeouts
// bill the underlying call's tokens, rate limits bill only a round trip.
func TestFaultyBillingUnderMeter(t *testing.T) {
	billing := func(plan Plan) (*llm.Ledger, error) {
		ledger := llm.NewLedger()
		m := &llm.Metered{
			Client: &Faulty{Client: &scriptClient{fn: ok(time.Second)}, Plan: plan},
			Ledger: ledger,
		}
		_, err := m.Complete(llm.Request{Model: llm.ModelGPT4o, Messages: []llm.Message{{Role: llm.RoleUser, Content: "p"}}})
		return ledger, err
	}

	led, err := billing(Plan{Seed: 1, Rate: 1, Transient: 1})
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("want ErrTransient, got %v", err)
	}
	if got := led.TotalUsage().Total(); got != 15 {
		t.Errorf("transient failure billed %d tokens, want 15 (provider did the work)", got)
	}
	if led.TotalDollars() <= 0 {
		t.Error("transient failure must incur a fee")
	}

	led, err = billing(Plan{Seed: 1, Rate: 1, Timeout: 1})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if got := led.TotalWall(); got != 2*time.Second {
		t.Errorf("timeout billed %v wall, want 2s (generation plus the wait before giving up)", got)
	}

	led, err = billing(Plan{Seed: 1, Rate: 1, RateLimited: 1})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("want ErrRateLimited, got %v", err)
	}
	if got := led.TotalUsage().Total(); got != 0 {
		t.Errorf("rate limit billed %d tokens, want 0 (rejected before processing)", got)
	}
	if got := led.TotalWall(); got != llm.PriceFor(llm.ModelGPT4o).PerCallOverhead {
		t.Errorf("rate limit billed %v wall, want the per-call overhead", got)
	}
}

func TestRetrierRecoversAndAccumulates(t *testing.T) {
	res := &metrics.Resilience{}
	c := &scriptClient{fn: func(call int, req llm.Request) (llm.Response, error) {
		if call < 2 {
			return llm.Response{Latency: time.Second}, ErrTransient
		}
		return llm.Response{Content: "answer", Latency: time.Second}, nil
	}}
	r := &Retrier{Client: c, MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, Seed: 9, Metrics: res}
	resp, err := r.Complete(llm.Request{Model: llm.ModelGPT4o})
	if err != nil {
		t.Fatalf("retrier gave up: %v", err)
	}
	if resp.Content != "answer" {
		t.Errorf("content = %q", resp.Content)
	}
	// Logical latency spans the two failed attempts, their backoff waits,
	// and the success: > 3s of attempts, plus jittered waits in
	// [50ms, 100ms) and [100ms, 200ms).
	if resp.Latency < 3*time.Second+150*time.Millisecond || resp.Latency > 3*time.Second+300*time.Millisecond {
		t.Errorf("cumulative latency %v outside expected band", resp.Latency)
	}
	snap := res.Snapshot()
	if snap.Attempts != 3 || snap.Retries != 2 {
		t.Errorf("attempts=%d retries=%d, want 3 and 2", snap.Attempts, snap.Retries)
	}
}

func TestRetrierStopsOnPermanent(t *testing.T) {
	c := &scriptClient{fn: func(int, llm.Request) (llm.Response, error) {
		return llm.Response{}, fmt.Errorf("bad request: %w", ErrPermanent)
	}}
	r := &Retrier{Client: c, MaxAttempts: 5, Seed: 9}
	if _, err := r.Complete(llm.Request{}); !errors.Is(err, ErrPermanent) {
		t.Fatalf("want ErrPermanent, got %v", err)
	}
	if c.count() != 1 {
		t.Errorf("permanent failure retried: %d calls", c.count())
	}
}

func TestRetrierDeadline(t *testing.T) {
	c := &scriptClient{fn: func(int, llm.Request) (llm.Response, error) {
		return llm.Response{Latency: 40 * time.Second}, ErrTransient
	}}
	r := &Retrier{Client: c, MaxAttempts: 10, Deadline: time.Minute, Seed: 9}
	_, err := r.Complete(llm.Request{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if c.count() != 2 {
		t.Errorf("deadline of 1m over 40s attempts allows exactly 2 calls, got %d", c.count())
	}
}

// Backoff schedules are a pure function of (Seed, request, attempt): same
// seed replays the same waits, jitter stays within [d/2, d), and waits never
// exceed MaxDelay.
func TestRetrierBackoffDeterminism(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		var waits []time.Duration
		r := &Retrier{
			Client:      &scriptClient{fn: func(int, llm.Request) (llm.Response, error) { return llm.Response{}, ErrTransient }},
			MaxAttempts: 8,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    time.Second,
			Seed:        seed,
			Sleep:       func(d time.Duration) { waits = append(waits, d) },
		}
		r.Complete(llm.Request{Model: llm.ModelGPT35, Seed: 77})
		return waits
	}
	a, b := schedule(3), schedule(3)
	if len(a) != 7 {
		t.Fatalf("expected 7 backoff waits, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wait %d: %v != %v — jitter must be deterministic per seed", i, a[i], b[i])
		}
	}
	for i, d := range a {
		uncapped := 100 * time.Millisecond << uint(i)
		want := uncapped
		if want > time.Second {
			want = time.Second
		}
		if d < want/2 || d >= want {
			t.Errorf("wait %d = %v outside jitter band [%v, %v)", i, d, want/2, want)
		}
	}
	diff := false
	for i, d := range schedule(4) {
		if d != a[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("seed 4 reproduced seed 3's backoff schedule")
	}
}

// Hedge accounting: when the primary is slow, the backup fires with an
// independent seed, the simulated race picks the earlier finish, the
// winner's latency includes the hedge delay — and the loser is still billed
// (hedging buys tail latency with tokens).
func TestHedgedWinnerAccounting(t *testing.T) {
	const primarySeed = int64(1000)
	backupSeed := llm.SplitSeed(primarySeed, "hedge")
	ledger := llm.NewLedger()
	res := &metrics.Resilience{}
	inner := &scriptClient{fn: func(_ int, req llm.Request) (llm.Response, error) {
		if req.Seed == backupSeed {
			return llm.Response{Content: "backup", Usage: llm.Usage{PromptTokens: 10}, Latency: time.Second}, nil
		}
		return llm.Response{Content: "primary", Usage: llm.Usage{PromptTokens: 10}, Latency: 10 * time.Second}, nil
	}}
	h := &Hedged{Client: &llm.Metered{Client: inner, Ledger: ledger}, After: 2 * time.Second, Metrics: res}
	resp, err := h.Complete(llm.Request{Model: llm.ModelGPT4o, Seed: primarySeed})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Content != "backup" {
		t.Fatalf("winner = %q, want backup", resp.Content)
	}
	if resp.Latency != 3*time.Second {
		t.Errorf("winner latency %v, want 3s (2s hedge delay + 1s backup)", resp.Latency)
	}
	if got := ledger.TotalCalls(); got != 2 {
		t.Errorf("ledger booked %d calls, want 2 — the cancelled loser still cost tokens", got)
	}
	if got := ledger.TotalUsage().Total(); got != 20 {
		t.Errorf("ledger billed %d tokens, want both attempts' 20", got)
	}
	snap := res.Snapshot()
	if snap.Hedges != 1 || snap.HedgeWins != 1 {
		t.Errorf("hedges=%d wins=%d, want 1 and 1", snap.Hedges, snap.HedgeWins)
	}
}

func TestHedgedFastPrimaryNoBackup(t *testing.T) {
	inner := &scriptClient{fn: ok(time.Second)}
	h := &Hedged{Client: inner, After: 2 * time.Second}
	resp, err := h.Complete(llm.Request{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inner.count() != 1 {
		t.Errorf("fast primary still hedged: %d calls", inner.count())
	}
	if resp.Latency != time.Second {
		t.Errorf("latency %v, want the primary's 1s", resp.Latency)
	}
}

func TestHedgedBackupRescuesFailedPrimary(t *testing.T) {
	const primarySeed = int64(7)
	backupSeed := llm.SplitSeed(primarySeed, "hedge")
	inner := &scriptClient{fn: func(_ int, req llm.Request) (llm.Response, error) {
		if req.Seed == backupSeed {
			return llm.Response{Content: "backup", Latency: time.Second}, nil
		}
		return llm.Response{Latency: time.Second}, ErrTransient
	}}
	h := &Hedged{Client: inner, After: 30 * time.Second}
	resp, err := h.Complete(llm.Request{Seed: primarySeed})
	if err != nil {
		t.Fatalf("backup should have rescued the failed primary: %v", err)
	}
	if resp.Content != "backup" {
		t.Errorf("winner = %q, want backup", resp.Content)
	}
}

func TestHedgedSlowLosingBackupKeepsPrimary(t *testing.T) {
	const primarySeed = int64(8)
	backupSeed := llm.SplitSeed(primarySeed, "hedge")
	inner := &scriptClient{fn: func(_ int, req llm.Request) (llm.Response, error) {
		if req.Seed == backupSeed {
			return llm.Response{Content: "backup", Latency: 20 * time.Second}, nil
		}
		return llm.Response{Content: "primary", Latency: 5 * time.Second}, nil
	}}
	res := &metrics.Resilience{}
	h := &Hedged{Client: inner, After: 2 * time.Second, Metrics: res}
	resp, err := h.Complete(llm.Request{Seed: primarySeed})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Content != "primary" || resp.Latency != 5*time.Second {
		t.Errorf("got %q/%v, want the primary at 5s (backup would finish at 22s)", resp.Content, resp.Latency)
	}
	snap := res.Snapshot()
	if snap.Hedges != 1 || snap.HedgeWins != 0 {
		t.Errorf("hedges=%d wins=%d, want 1 and 0", snap.Hedges, snap.HedgeWins)
	}
}
