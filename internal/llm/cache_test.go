package llm

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// countingClient counts invocations and returns a response echoing the
// prompt, so cache correctness is observable.
type countingClient struct {
	mu    sync.Mutex
	calls int
}

func (c *countingClient) Complete(req Request) (Response, error) {
	c.mu.Lock()
	c.calls++
	n := c.calls
	c.mu.Unlock()
	return Response{
		Content: fmt.Sprintf("reply %d to %s", n, PromptText(req.Messages)),
		Usage:   Usage{PromptTokens: 10, CompletionTokens: 5},
	}, nil
}

func req(model, prompt string, temp float64) Request {
	return Request{Model: model, Messages: []Message{{Role: RoleUser, Content: prompt}}, Temperature: temp}
}

func TestCachedHitsTempZero(t *testing.T) {
	under := &countingClient{}
	c := NewCached(under, 0)
	r1, err := c.Complete(req("m", "hello", 0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Complete(req("m", "hello", 0))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Content != r2.Content {
		t.Error("cached response differs")
	}
	if under.calls != 1 {
		t.Errorf("underlying calls = %d want 1", under.calls)
	}
	calls, hits := c.Stats()
	if calls != 2 || hits != 1 {
		t.Errorf("stats = %d/%d", calls, hits)
	}
}

func TestCachedBypassesPositiveTemperature(t *testing.T) {
	under := &countingClient{}
	c := NewCached(under, 0)
	a, _ := c.Complete(req("m", "hello", 0.5))
	b, _ := c.Complete(req("m", "hello", 0.5))
	if a.Content == b.Content {
		t.Error("positive-temperature completions must not be cached")
	}
	if under.calls != 2 {
		t.Errorf("underlying calls = %d", under.calls)
	}
}

func TestCachedKeysOnModelAndMessages(t *testing.T) {
	under := &countingClient{}
	c := NewCached(under, 0)
	c.Complete(req("m1", "p", 0))
	c.Complete(req("m2", "p", 0))
	c.Complete(req("m1", "q", 0))
	if under.calls != 3 {
		t.Errorf("distinct requests must all reach the client: %d", under.calls)
	}
}

func TestCachedEviction(t *testing.T) {
	under := &countingClient{}
	c := NewCached(under, 2)
	c.Complete(req("m", "a", 0))
	c.Complete(req("m", "b", 0))
	c.Complete(req("m", "c", 0)) // evicts "a"
	c.Complete(req("m", "a", 0)) // miss again
	if under.calls != 4 {
		t.Errorf("calls = %d want 4 (eviction)", under.calls)
	}
	// "c" and "a" are resident now.
	c.Complete(req("m", "a", 0))
	c.Complete(req("m", "c", 0))
	if under.calls != 4 {
		t.Errorf("calls = %d, resident entries missed", under.calls)
	}
}

// TestCacheKeyIncludesMaxTokens pins the cache-key fix: two temperature-0
// requests with the same prompt but different completion caps truncate
// differently, so they must occupy distinct cache slots.
func TestCacheKeyIncludesMaxTokens(t *testing.T) {
	under := &countingClient{}
	c := NewCached(under, 0)
	short := req("m", "p", 0)
	short.MaxTokens = 64
	long := req("m", "p", 0)
	long.MaxTokens = 512
	c.Complete(short)
	c.Complete(long) // must miss: same prompt, different cap
	if under.calls != 2 {
		t.Fatalf("underlying calls = %d, want 2: different MaxTokens collided", under.calls)
	}
	c.Complete(short)
	c.Complete(long) // both resident now
	if under.calls != 2 {
		t.Errorf("underlying calls = %d, want 2: same-cap repeats must hit", under.calls)
	}
	if calls, hits := c.Stats(); calls != 4 || hits != 2 {
		t.Errorf("stats = %d/%d, want 4/2", calls, hits)
	}
}

// primeInflight installs a completed single-flight leader for r so a waiter's
// accounting can be tested deterministically: the done channel is already
// closed, so Complete takes the waiter branch and returns immediately without
// any goroutine scheduling. (Concurrency-based versions of this test are
// flaky — a "waiter" that arrives after the leader's delete becomes a new
// leader instead.)
func primeInflight(c *Cached, r Request, resp Response, err error) {
	call := &inflightCall{done: make(chan struct{}), resp: resp, err: err}
	close(call.done)
	c.mu.Lock()
	if c.table == nil {
		c.table = make(map[string]*list.Element)
		c.order = list.New()
		c.inflight = make(map[string]*inflightCall)
	}
	c.inflight[cacheKey(r)] = call
	c.mu.Unlock()
}

// TestCachedWaiterCountsHits pins the single-flight accounting fix: a waiter
// counts as a hit whether the leader succeeded or failed — in both cases the
// model was not re-invoked for the waiting request. Error-path waits
// previously went uncounted, understating hit rate under fault injection.
func TestCachedWaiterCountsHits(t *testing.T) {
	t.Run("leader succeeded", func(t *testing.T) {
		under := &countingClient{}
		c := NewCached(under, 0)
		r := req("m", "p", 0)
		primeInflight(c, r, Response{Content: "leader reply"}, nil)
		resp, err := c.Complete(r)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Content != "leader reply" {
			t.Errorf("waiter got %q, want the leader's response", resp.Content)
		}
		if under.calls != 0 {
			t.Errorf("waiter invoked the model %d times", under.calls)
		}
		if calls, hits := c.Stats(); calls != 1 || hits != 1 {
			t.Errorf("stats = %d/%d, want 1/1", calls, hits)
		}
	})
	t.Run("leader failed", func(t *testing.T) {
		under := &countingClient{}
		c := NewCached(under, 0)
		r := req("m", "p", 0)
		leaderErr := errors.New("simulated transport failure")
		primeInflight(c, r, Response{}, leaderErr)
		_, err := c.Complete(r)
		if err != leaderErr {
			t.Fatalf("waiter error = %v, want the leader's error", err)
		}
		if under.calls != 0 {
			t.Errorf("waiter invoked the model %d times", under.calls)
		}
		if calls, hits := c.Stats(); calls != 1 || hits != 1 {
			t.Errorf("stats = %d/%d, want 1/1 (error-path wait must count)", calls, hits)
		}
	})
}

func TestCachedConcurrent(t *testing.T) {
	under := &countingClient{}
	c := NewCached(under, 64)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := c.Complete(req("m", fmt.Sprintf("p%d", j%8), 0)); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	calls, hits := c.Stats()
	if calls != 32*50 {
		t.Errorf("calls = %d", calls)
	}
	if hits < calls-100 {
		t.Errorf("hits = %d of %d, cache barely effective", hits, calls)
	}
}
