package llm

import (
	"fmt"
	"sync"
	"testing"
)

// countingClient counts invocations and returns a response echoing the
// prompt, so cache correctness is observable.
type countingClient struct {
	mu    sync.Mutex
	calls int
}

func (c *countingClient) Complete(req Request) (Response, error) {
	c.mu.Lock()
	c.calls++
	n := c.calls
	c.mu.Unlock()
	return Response{
		Content: fmt.Sprintf("reply %d to %s", n, PromptText(req.Messages)),
		Usage:   Usage{PromptTokens: 10, CompletionTokens: 5},
	}, nil
}

func req(model, prompt string, temp float64) Request {
	return Request{Model: model, Messages: []Message{{Role: RoleUser, Content: prompt}}, Temperature: temp}
}

func TestCachedHitsTempZero(t *testing.T) {
	under := &countingClient{}
	c := NewCached(under, 0)
	r1, err := c.Complete(req("m", "hello", 0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Complete(req("m", "hello", 0))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Content != r2.Content {
		t.Error("cached response differs")
	}
	if under.calls != 1 {
		t.Errorf("underlying calls = %d want 1", under.calls)
	}
	calls, hits := c.Stats()
	if calls != 2 || hits != 1 {
		t.Errorf("stats = %d/%d", calls, hits)
	}
}

func TestCachedBypassesPositiveTemperature(t *testing.T) {
	under := &countingClient{}
	c := NewCached(under, 0)
	a, _ := c.Complete(req("m", "hello", 0.5))
	b, _ := c.Complete(req("m", "hello", 0.5))
	if a.Content == b.Content {
		t.Error("positive-temperature completions must not be cached")
	}
	if under.calls != 2 {
		t.Errorf("underlying calls = %d", under.calls)
	}
}

func TestCachedKeysOnModelAndMessages(t *testing.T) {
	under := &countingClient{}
	c := NewCached(under, 0)
	c.Complete(req("m1", "p", 0))
	c.Complete(req("m2", "p", 0))
	c.Complete(req("m1", "q", 0))
	if under.calls != 3 {
		t.Errorf("distinct requests must all reach the client: %d", under.calls)
	}
}

func TestCachedEviction(t *testing.T) {
	under := &countingClient{}
	c := NewCached(under, 2)
	c.Complete(req("m", "a", 0))
	c.Complete(req("m", "b", 0))
	c.Complete(req("m", "c", 0)) // evicts "a"
	c.Complete(req("m", "a", 0)) // miss again
	if under.calls != 4 {
		t.Errorf("calls = %d want 4 (eviction)", under.calls)
	}
	// "c" and "a" are resident now.
	c.Complete(req("m", "a", 0))
	c.Complete(req("m", "c", 0))
	if under.calls != 4 {
		t.Errorf("calls = %d, resident entries missed", under.calls)
	}
}

func TestCachedConcurrent(t *testing.T) {
	under := &countingClient{}
	c := NewCached(under, 64)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := c.Complete(req("m", fmt.Sprintf("p%d", j%8), 0)); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	calls, hits := c.Stats()
	if calls != 32*50 {
		t.Errorf("calls = %d", calls)
	}
	if hits < calls-100 {
		t.Errorf("hits = %d of %d, cache barely effective", hits, calls)
	}
}
