// Package llm defines the model-agnostic large-language-model interface the
// CEDAR pipeline is written against, plus token accounting and a monetary
// cost ledger. The paper's implementation calls OpenAI's GPT series; this
// repository plugs in the simulated model family from llm/sim, which
// reproduces the observables CEDAR depends on — success probability, token
// consumption, per-token fees, and temperature-dependent randomization —
// without network access.
package llm

import (
	"errors"
	"time"

	"repro/internal/trace"
)

// Role names for chat messages.
const (
	RoleSystem    = "system"
	RoleUser      = "user"
	RoleAssistant = "assistant"
)

// Message is one chat turn.
type Message struct {
	Role    string
	Content string
}

// Request is a completion request against a named model.
type Request struct {
	Model       string
	Messages    []Message
	Temperature float64
	// MaxTokens caps the completion length; zero means provider default.
	MaxTokens int
	// Seed identifies this invocation for sampling purposes, the analog of
	// OpenAI's `seed` parameter. At temperature > 0 providers that support
	// seeding draw their randomness from (prompt, Seed) rather than a shared
	// stream, so concurrent callers get reproducible completions no matter
	// how their requests interleave. Zero is a valid seed; temperature-0
	// completions ignore it (they are deterministic per prompt already).
	Seed int64
	// Attempt is the pipeline attempt identity (doc, claim, method, try) this
	// request serves, carried so middleware can label trace spans. The zero
	// Key marks anonymous traffic (profiling, ad-hoc calls); it does not
	// affect completion semantics and is excluded from cache keys.
	Attempt trace.Key
}

// Usage reports token consumption of one completion.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
}

// Total returns the combined token count.
func (u Usage) Total() int { return u.PromptTokens + u.CompletionTokens }

// Add accumulates another usage record.
func (u Usage) Add(o Usage) Usage {
	return Usage{
		PromptTokens:     u.PromptTokens + o.PromptTokens,
		CompletionTokens: u.CompletionTokens + o.CompletionTokens,
	}
}

// Response is the result of one completion.
type Response struct {
	Content string
	Usage   Usage
	// Latency is the (simulated) wall-clock time of the call, used for the
	// throughput axis of Figure 5.
	Latency time.Duration
}

// Client is a completion provider.
type Client interface {
	// Complete runs one chat completion.
	Complete(req Request) (Response, error)
}

// ErrUnknownModel is returned for requests naming an unregistered model.
var ErrUnknownModel = errors.New("llm: unknown model")

// PromptText flattens a message list to plain text, the form consumed by
// token counting and by the simulated models.
func PromptText(msgs []Message) string {
	n := 0
	for _, m := range msgs {
		n += len(m.Content) + 1
	}
	buf := make([]byte, 0, n)
	for i, m := range msgs {
		if i > 0 {
			buf = append(buf, '\n')
		}
		buf = append(buf, m.Content...)
	}
	return string(buf)
}
