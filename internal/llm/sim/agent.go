package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/nl"
	"repro/internal/prompts"
)

// baseEndMarker terminates the agent's base prompt (the last line of the
// ReAct format instructions); everything after it is conversation history.
const baseEndMarker = `Final Answer: the value of "x"`

// histStep is one reconstructed tool interaction from the transcript.
type histStep struct {
	action      string
	input       string
	observation string
}

// agentStep produces the model's next ReAct turn given the full transcript.
// The policy is a pure function of the conversation: the model re-derives
// its plan from the base prompt (with randomness seeded by the base prompt,
// the temperature, and — at temperature > 0 — the model and request seeds,
// so one conversation stays coherent while retries with fresh request seeds
// differ) and advances according to the observations.
func (m *Model) agentStep(prompt string, req llm.Request) string {
	temperature := req.Temperature
	base, tail := splitBase(prompt)
	rng := m.conversationRNG(base, req)

	// Conversation derailment: the model drops out of the ReAct format and
	// the scaffolding cannot continue (the runner reports no progress).
	if rng.Float64() < m.profile.DerailProb {
		return "I apologize for the confusion. Let me reconsider the problem from the beginning and think about what the claim is really about."
	}

	masked, _, ok := prompts.ExtractClaim(base)
	if !ok {
		return finalAnswer("unknown")
	}
	schema := nl.ParseSchemaText(base)
	if len(schema.Tables) == 0 {
		return finalAnswer("unknown")
	}
	ctx := ""
	if m.profile.ReadsContext {
		ctx = prompts.ExtractContext(base)
	}
	hasSample := prompts.HasSample(base)

	parsed, err := nl.ParseMasked(masked, schema, m.lex, ctx)
	if err != nil {
		return finalAnswer("unknown")
	}
	spec := parsed.Spec

	// Initial translation mistakes mirror the one-shot path; the agent's
	// advantage is the chance to recover via tools.
	// Agents are more persistent than one-shot translation: a failed skill
	// roll usually yields a degraded attempt the feedback loop can still
	// salvage, and only sometimes a give-up.
	if rng.Float64() > m.profile.KindSkill[spec.Kind] {
		if rng.Float64() < 0.3 {
			return finalAnswer("unknown")
		}
		degradeKind(&spec)
	}
	if parsed.Ambiguous && len(parsed.ColumnCands) >= 2 && rng.Intn(2) == 0 {
		spec.Column = parsed.ColumnCands[1].Column
		spec.ConvFactor = parsed.ColumnCands[1].ConvFactor
	}
	if !m.profile.UnitSkill {
		spec.ConvFactor = 0
	}
	if rng.Float64() < m.noise(temperature, hasSample)+m.profile.AgentExtraNoise {
		corrupt(&spec, parsed, rng)
	}

	// Multi-table schemas strain agents too, though the iterative loop
	// recovers half of what a single completion would lose.
	if len(schema.Tables) > 1 && rng.Float64() > (m.profile.JoinSkill+1)/2 {
		return finalAnswer("unknown")
	}

	history := parseHistory(tail)
	if spec.Kind == nl.KindDiff || spec.Kind == nl.KindArgMax || spec.Kind == nl.KindArgMin {
		return m.multiHop(schema, &spec, history)
	}
	return m.singleHop(schema, &spec, parsed, history)
}

// conversationRNG derives the deterministic per-conversation randomness.
// Every turn of one conversation shares the same base prompt and request
// seed, so the whole trajectory replays coherently; at temperature > 0 the
// model and request seeds join the hash so seeded retries sample different
// trajectories (the runner keeps Request.Seed constant within a run).
func (m *Model) conversationRNG(base string, req llm.Request) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(m.profile.Name))
	_, _ = h.Write([]byte(base))
	fmt.Fprintf(h, "%.4f", req.Temperature)
	if req.Temperature > 0 {
		_, _ = h.Write([]byte(samplingSalt))
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], uint64(m.seed))
		binary.LittleEndian.PutUint64(buf[8:], uint64(req.Seed))
		_, _ = h.Write(buf[:])
	}
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// singleHop drives claims answerable with one query, recovering from entity
// mismatches via the unique-values tool (the Example 5.3 flow) and from
// wrong-result feedback by trying alternative interpretations.
func (m *Model) singleHop(schema *nl.Schema, spec *nl.Spec, parsed *nl.Parsed, history []histStep) string {
	variants := buildVariants(spec, parsed)
	textCol, textVal := textConstant(spec)

	variantIdx := 0
	uniqueUsed := false
	fix := ""
	lastResult := "unknown"
	success := false
	lastWasError := false
	qCount := 0
	var lastQueryInput string

	for _, st := range history {
		switch st.action {
		case prompts.ToolUniqueValues:
			uniqueUsed = true
			if best, ok := bestMatch(st.observation, textVal); ok {
				fix = best
			}
		case prompts.ToolQuery:
			qCount++
			lastQueryInput = st.input
			lastWasError = false
			switch {
			case isSuccessObs(st.observation):
				success = true
				lastResult = resultOf(st.observation)
			case isErrorObs(st.observation):
				if textVal != "" && !uniqueUsed {
					lastWasError = true
				} else {
					variantIdx++
				}
			default:
				if r := resultOf(st.observation); r != "" {
					lastResult = r
				}
				variantIdx++
			}
		}
	}

	if success {
		return finalAnswer(lastResult)
	}
	if lastWasError && textVal != "" && !uniqueUsed {
		return actionStep(
			"The query failed, the constant may not match the data. I will inspect the distinct values of the relevant column.",
			prompts.ToolUniqueValues, textCol)
	}
	if qCount >= 6 {
		return finalAnswer(lastResult)
	}
	applyFix := func(v nl.Spec) nl.Spec {
		if fix != "" {
			if v.EntityVal != "" {
				v.EntityVal = fix
			} else if v.FilterIsText {
				v.FilterVal = fix
			}
		}
		return v
	}
	if variantIdx < len(variants) {
		v := applyFix(variants[variantIdx])
		sql, err := nl.BuildSQL(schema, &v)
		if err != nil {
			return finalAnswer(lastResult)
		}
		thought := "I will translate the claim into a SQL query and test it against the data."
		if variantIdx > 0 {
			thought = "The previous interpretation did not match; I will try an alternative reading of the claim."
		} else if fix != "" {
			thought = "Using the corrected constant from the column values, I will retry the query."
		}
		return actionStep(thought, prompts.ToolQuery, sql)
	}
	// Variants exhausted: re-issue the original (most trusted) translation
	// so it is the last logged query, then answer with its result.
	v := applyFix(variants[0])
	sql, err := nl.BuildSQL(schema, &v)
	if err != nil {
		return finalAnswer(lastResult)
	}
	if lastQueryInput == sql {
		return finalAnswer(lastResult)
	}
	return actionStep(
		"None of the alternatives matched the claimed value; I will return to my original translation.",
		prompts.ToolQuery, sql)
}

// multiHop drives Diff and ArgMax/ArgMin claims the way agents naturally
// decompose them: query the aggregate first, then use its result as a
// constant in the final query. The trivial final query is exactly what the
// query-reconstruction post-processing (Algorithm 9) recomposes.
func (m *Model) multiHop(schema *nl.Schema, spec *nl.Spec, history []histStep) string {
	var results []string
	for _, st := range history {
		if st.action != prompts.ToolQuery {
			continue
		}
		if isErrorObs(st.observation) {
			return finalAnswer("unknown")
		}
		results = append(results, resultOf(st.observation))
	}
	sql, done, err := m.planHop(schema, spec, results)
	if err != nil {
		return finalAnswer("unknown")
	}
	if done {
		if len(results) == 0 {
			return finalAnswer("unknown")
		}
		return finalAnswer(results[len(results)-1])
	}
	thought := "I will decompose the claim: first compute the intermediate aggregate, then use it in the final query."
	if len(results) > 0 {
		thought = fmt.Sprintf("The intermediate result is %s; I will use it as a constant in the next query.", results[len(results)-1])
	}
	return actionStep(thought, prompts.ToolQuery, sql)
}

// planHop returns the SQL for the next hop, or done=true when all hops ran.
func (m *Model) planHop(schema *nl.Schema, spec *nl.Spec, results []string) (string, bool, error) {
	switch spec.Kind {
	case nl.KindDiff:
		switch len(results) {
		case 0:
			s := nl.Spec{Kind: nl.KindMax, Column: spec.Column}
			sql, err := nl.BuildSQL(schema, &s)
			return sql, false, err
		case 1:
			s := nl.Spec{Kind: nl.KindMin, Column: spec.Column}
			sql, err := nl.BuildSQL(schema, &s)
			return sql, false, err
		case 2:
			return fmt.Sprintf("SELECT %s - %s", results[0], results[1]), false, nil
		default:
			return "", true, nil
		}
	case nl.KindArgMax, nl.KindArgMin:
		agg := nl.KindMax
		if spec.Kind == nl.KindArgMin {
			agg = nl.KindMin
		}
		switch len(results) {
		case 0:
			s := nl.Spec{Kind: agg, Column: spec.Column}
			sql, err := nl.BuildSQL(schema, &s)
			return sql, false, err
		case 1:
			from, err := nl.FromClause(schema, []string{spec.EntityCol, spec.Column})
			if err != nil {
				return "", false, err
			}
			return fmt.Sprintf(`SELECT "%s" FROM %s WHERE "%s" = %s`,
				spec.EntityCol, from, spec.Column, results[0]), false, nil
		default:
			return "", true, nil
		}
	}
	return "", true, nil
}

// buildVariants lists alternative interpretations in the order the agent
// tries them after wrong-result feedback.
func buildVariants(spec *nl.Spec, parsed *nl.Parsed) []nl.Spec {
	variants := []nl.Spec{*spec}
	if len(parsed.FilterCands) >= 2 && spec.FilterCol != "" {
		v := *spec
		if v.FilterCol == parsed.FilterCands[0].Column {
			v.FilterCol = parsed.FilterCands[1].Column
		} else {
			v.FilterCol = parsed.FilterCands[0].Column
		}
		variants = append(variants, v)
	}
	if len(parsed.ColumnCands) >= 2 && spec.Column != "" {
		v := *spec
		if v.Column == parsed.ColumnCands[0].Column {
			v.Column = parsed.ColumnCands[1].Column
			v.ConvFactor = parsed.ColumnCands[1].ConvFactor
		} else {
			v.Column = parsed.ColumnCands[0].Column
			v.ConvFactor = parsed.ColumnCands[0].ConvFactor
		}
		variants = append(variants, v)
	}
	// Unit toggle: if the parse detected a conversion the spec lost (or
	// vice versa), offer the other reading.
	if parsed.Spec.ConvFactor != spec.ConvFactor {
		v := *spec
		v.ConvFactor = parsed.Spec.ConvFactor
		variants = append(variants, v)
	} else if spec.ConvFactor != 0 && spec.ConvFactor != 1 {
		v := *spec
		v.ConvFactor = 0
		variants = append(variants, v)
	}
	switch spec.Kind {
	case nl.KindSum:
		v := *spec
		v.Kind = nl.KindAvg
		variants = append(variants, v)
	case nl.KindAvg:
		v := *spec
		v.Kind = nl.KindSum
		variants = append(variants, v)
	case nl.KindMax:
		v := *spec
		v.Kind = nl.KindMin
		variants = append(variants, v)
	case nl.KindMin:
		v := *spec
		v.Kind = nl.KindMax
		variants = append(variants, v)
	}
	if len(variants) > 4 {
		variants = variants[:4]
	}
	return variants
}

// textConstant returns the column and value of the spec's textual constant,
// the one an entity alias can break.
func textConstant(spec *nl.Spec) (col, val string) {
	if spec.EntityVal != "" {
		return spec.EntityCol, spec.EntityVal
	}
	if spec.FilterIsText && spec.FilterVal != "" {
		return spec.FilterCol, spec.FilterVal
	}
	return "", ""
}

// --- transcript reconstruction ---

func splitBase(prompt string) (base, tail string) {
	idx := strings.Index(prompt, baseEndMarker)
	if idx < 0 {
		return prompt, ""
	}
	cut := idx + len(baseEndMarker)
	return prompt[:cut], prompt[cut:]
}

// parseHistory reconstructs tool interactions from the conversation tail.
func parseHistory(tail string) []histStep {
	var steps []histStep
	var cur *histStep
	var obsLines []string
	inObs := false
	flush := func() {
		if cur != nil {
			cur.observation = strings.TrimSpace(strings.Join(obsLines, "\n"))
			steps = append(steps, *cur)
			cur = nil
		}
		obsLines = nil
		inObs = false
	}
	for _, line := range strings.Split(tail, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "Action:"):
			flush()
			cur = &histStep{action: strings.TrimSpace(strings.TrimPrefix(trimmed, "Action:"))}
		case strings.HasPrefix(trimmed, "Action Input:"):
			if cur != nil {
				cur.input = strings.TrimSpace(strings.TrimPrefix(trimmed, "Action Input:"))
			}
		case strings.HasPrefix(trimmed, "Observation:"):
			inObs = true
			obsLines = append(obsLines, strings.TrimSpace(strings.TrimPrefix(trimmed, "Observation:")))
		case strings.HasPrefix(trimmed, "Thought:"), strings.HasPrefix(trimmed, "Final Answer:"):
			if inObs {
				flush()
			}
		default:
			if inObs {
				obsLines = append(obsLines, trimmed)
			}
		}
	}
	flush()
	return steps
}

// Observation conventions produced by the verification tools.
const (
	obsResultPrefix = "Result:"
	obsErrorPrefix  = "Error:"
)

func isErrorObs(obs string) bool {
	return strings.HasPrefix(strings.TrimSpace(obs), obsErrorPrefix)
}

func isSuccessObs(obs string) bool {
	lower := strings.ToLower(obs)
	return strings.Contains(lower, "correct") ||
		strings.Contains(lower, "close") ||
		(strings.Contains(lower, "matched") && !strings.Contains(lower, "mismatched"))
}

// resultOf extracts the result value from a query observation.
func resultOf(obs string) string {
	for _, line := range strings.Split(obs, "\n") {
		line = strings.TrimSpace(line)
		if after, ok := strings.CutPrefix(line, obsResultPrefix); ok {
			return strings.TrimSpace(after)
		}
	}
	return ""
}

// bestMatch picks the listed value most similar to the constant using the
// embedding substrate — how the agent maps "the United States" to "USA".
// Matching head words get a bonus: display aliases usually keep the leading
// distinctive token ("United Airlines" for "United / Continental"), while
// trailing generic words ("Airlines") are shared across many values.
func bestMatch(obs, constant string) (string, bool) {
	if constant == "" {
		return "", false
	}
	constHead := headWord(constant)
	lines := strings.Split(obs, "\n")
	best, bestScore := "", -1.0
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasSuffix(line, ":") || strings.HasPrefix(line, obsErrorPrefix) {
			continue
		}
		s := embed.Similarity(constant, line)
		if constHead != "" && headWord(line) == constHead {
			s += 0.3
		}
		if s > bestScore {
			best, bestScore = line, s
		}
	}
	return best, best != ""
}

// headWord returns the first informative normalized word of a value
// (skipping leading articles).
func headWord(s string) string {
	for _, w := range strings.Fields(embed.Normalize(s)) {
		if w == "the" || w == "a" || w == "an" {
			continue
		}
		return w
	}
	return ""
}

// --- response rendering ---

func actionStep(thought, tool, input string) string {
	return fmt.Sprintf("Thought: %s\nAction: %s\nAction Input: %s", thought, tool, input)
}

func finalAnswer(value string) string {
	return fmt.Sprintf("Thought: I now know the final answer.\nFinal Answer: %s", value)
}
