package sim

import (
	"strings"
	"testing"

	"repro/internal/llm"
	"repro/internal/prompts"
	"repro/internal/sqldb"
	"repro/internal/verify"
)

// driveAgent plays a full conversation between a sim model and real tools,
// returning every issued query and the final answer. It mirrors what
// internal/agent does, with explicit visibility into each turn.
func driveAgent(t *testing.T, m *Model, db *sqldb.Database, maskedClaim, claimValue string) (queries []string, final string) {
	t.Helper()
	base := "Run: 0\n" + prompts.Agent(maskedClaim, "numeric", db.Schema(), "", "ctx "+maskedClaim)
	messages := []llm.Message{{Role: llm.RoleUser, Content: base}}
	for iter := 0; iter < 10; iter++ {
		resp, err := m.Complete(llm.Request{Model: m.Profile().Name, Messages: messages})
		if err != nil {
			t.Fatal(err)
		}
		content := resp.Content
		if idx := strings.Index(content, "Final Answer:"); idx >= 0 {
			return queries, strings.TrimSpace(content[idx+len("Final Answer:"):])
		}
		action, input := "", ""
		for _, line := range strings.Split(content, "\n") {
			if after, ok := strings.CutPrefix(line, "Action:"); ok {
				action = strings.TrimSpace(after)
			}
			if after, ok := strings.CutPrefix(line, "Action Input:"); ok {
				input = strings.TrimSpace(after)
			}
		}
		if action == "" {
			return queries, "" // derailed
		}
		var obs string
		switch action {
		case prompts.ToolQuery:
			queries = append(queries, input)
			obs = verify.QueryObservation(db, input, claimValue)
		case prompts.ToolUniqueValues:
			obs = verify.UniqueValuesObservation(db, input)
		default:
			obs = "Error: unknown tool"
		}
		messages = append(messages,
			llm.Message{Role: llm.RoleAssistant, Content: content},
			llm.Message{Role: llm.RoleUser, Content: "Observation: " + obs})
	}
	t.Fatal("conversation did not terminate")
	return nil, ""
}

func agentDB(t testing.TB) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase("airlinesafety")
	tab := sqldb.NewTable("airlines", "airline", "fatal_accidents_00_14", "fatalities_00_14")
	tab.MustAppendRow(sqldb.Text("Aer Lingus"), sqldb.Int(0), sqldb.Int(0))
	tab.MustAppendRow(sqldb.Text("Malaysia Airlines"), sqldb.Int(2), sqldb.Int(537))
	tab.MustAppendRow(sqldb.Text("United / Continental"), sqldb.Int(2), sqldb.Int(109))
	db.AddTable(tab)
	return db
}

// newCleanModel returns a GPT-4.1 model whose conversation for the given
// base does not derail (scanning seeds). Tests of specific recovery flows
// need a non-derailed trajectory.
func newCleanModel(t *testing.T, db *sqldb.Database, masked string) *Model {
	t.Helper()
	for seed := int64(1); seed < 60; seed++ {
		m, err := New(llm.ModelGPT41, seed)
		if err != nil {
			t.Fatal(err)
		}
		base := "Run: 0\n" + prompts.Agent(masked, "numeric", db.Schema(), "", "ctx "+masked)
		resp, err := m.Complete(llm.Request{Model: llm.ModelGPT41, Messages: []llm.Message{{Role: llm.RoleUser, Content: base}}})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(resp.Content, "Action:") {
			return m
		}
	}
	t.Fatal("no seed yields a non-derailed first turn")
	return nil
}

// TestAgentAliasRecoveryFlow replays the Example 5.3 dynamic: the first
// query uses a constant absent from the data, the error triggers the
// unique-values tool, and the corrected constant succeeds.
func TestAgentAliasRecoveryFlow(t *testing.T) {
	db := agentDB(t)
	masked := "United Airlines recorded x fatal accidents between 2000 and 2014."
	m := newCleanModel(t, db, masked)
	queries, final := driveAgent(t, m, db, masked, "2")
	t.Logf("queries=%q final=%q", queries, final)
	if len(queries) < 2 {
		t.Fatalf("expected error-then-retry, got %d queries", len(queries))
	}
	if !strings.Contains(queries[0], "United Airlines") {
		t.Errorf("first query should use the alias: %q", queries[0])
	}
	last := queries[len(queries)-1]
	if !strings.Contains(last, "United / Continental") {
		t.Errorf("final query should use the grounded constant: %q", last)
	}
	if final != "2" {
		t.Errorf("final answer = %q", final)
	}
}

// TestAgentMultiHopDiff replays the Diff decomposition: MAX, then MIN, then
// the trivial subtraction query that reconstruction recomposes.
func TestAgentMultiHopDiff(t *testing.T) {
	db := agentDB(t)
	masked := "The gap between the highest and the lowest fatalities between 2000 and 2014 was x."
	m := newCleanModel(t, db, masked)
	queries, final := driveAgent(t, m, db, masked, "537")
	t.Logf("queries=%q final=%q", queries, final)
	if len(queries) != 3 {
		t.Fatalf("expected 3 hops, got %q", queries)
	}
	if !strings.Contains(queries[0], "MAX") || !strings.Contains(queries[1], "MIN") {
		t.Errorf("hop order: %q", queries)
	}
	if !strings.Contains(queries[2], "-") {
		t.Errorf("final hop should subtract: %q", queries[2])
	}
	if final != "537" {
		t.Errorf("final = %q", final)
	}
	// Reconstruction must recompose the trace into a self-contained query.
	rec := verify.Reconstruct(queries, db)
	v, err := sqldb.QueryScalar(db, rec)
	if err != nil {
		t.Fatalf("reconstructed %q: %v", rec, err)
	}
	if n, _ := v.AsInt(); n != 537 {
		t.Errorf("reconstructed result = %v", v)
	}
	if !strings.Contains(rec, "MAX") || !strings.Contains(rec, "MIN") {
		t.Errorf("reconstruction did not inline subqueries: %q", rec)
	}
}

// TestAgentDerailmentRate confirms the derailment knob manifests at roughly
// the configured probability across many distinct conversations.
func TestAgentDerailmentRate(t *testing.T) {
	db := agentDB(t)
	m, err := New(llm.ModelGPT4o, 123)
	if err != nil {
		t.Fatal(err)
	}
	derailed := 0
	const n = 200
	for i := 0; i < n; i++ {
		masked := "Malaysia Airlines recorded x fatal accidents between 2000 and 2014."
		base := strings.Repeat("pad ", i) + "Run: 0\n" + prompts.Agent(masked, "numeric", db.Schema(), "", "ctx")
		resp, err := m.Complete(llm.Request{Model: llm.ModelGPT4o, Messages: []llm.Message{{Role: llm.RoleUser, Content: base}}})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(resp.Content, "Action:") && !strings.Contains(resp.Content, "Final Answer:") {
			derailed++
		}
	}
	rate := float64(derailed) / n
	want := m.Profile().DerailProb
	t.Logf("derailment rate %.3f (configured %.2f)", rate, want)
	if rate < want/2 || rate > want*2 {
		t.Errorf("derailment rate %.3f far from configured %.2f", rate, want)
	}
}

// TestAgentConversationCoherence: within one conversation (same base), the
// model's plan stays consistent across turns — the same first query is
// proposed when history is empty, regardless of how often it is asked.
func TestAgentConversationCoherence(t *testing.T) {
	db := agentDB(t)
	masked := "Malaysia Airlines recorded x fatal accidents between 2000 and 2014."
	m := newCleanModel(t, db, masked)
	base := "Run: 0\n" + prompts.Agent(masked, "numeric", db.Schema(), "", "ctx "+masked)
	first := ""
	for i := 0; i < 3; i++ {
		resp, err := m.Complete(llm.Request{Model: llm.ModelGPT41, Messages: []llm.Message{{Role: llm.RoleUser, Content: base}}})
		if err != nil {
			t.Fatal(err)
		}
		if first == "" {
			first = resp.Content
		} else if resp.Content != first {
			t.Fatal("same conversation state produced different plans")
		}
	}
}

// TestAgentVariantExhaustion drives a claim whose value matches nothing:
// the agent cycles its alternative interpretations, returns to the original
// translation, and answers with its result — ensuring the last logged query
// is the one the agent trusts most.
func TestAgentVariantExhaustion(t *testing.T) {
	db := agentDB(t)
	masked := "A total of x fatalities between 2000 and 2014 were recorded across all airlines."
	m := newCleanModel(t, db, masked)
	// Claimed value far off every aggregate: feedback is always greater/smaller.
	queries, final := driveAgent(t, m, db, masked, "123456789")
	t.Logf("queries=%q final=%q", queries, final)
	if len(queries) < 2 {
		t.Fatalf("expected variant cycling, got %q", queries)
	}
	last := queries[len(queries)-1]
	if !strings.Contains(last, `SUM("fatalities_00_14")`) {
		t.Errorf("final query should return to the original SUM translation: %q", last)
	}
	if final == "" || final == "unknown" {
		t.Errorf("agent should answer with its best result, got %q", final)
	}
}
