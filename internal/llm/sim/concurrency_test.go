package sim

import (
	"sync"
	"testing"

	"repro/internal/llm"
)

// TestModelConcurrentCompletions drives one shared simulated model from 32
// goroutines mixing temperature-0 and seeded temperature-0.9 requests. The
// model holds no mutable state, so every goroutine must observe exactly the
// response the same request produces in isolation (run under -race via make
// check).
func TestModelConcurrentCompletions(t *testing.T) {
	const goroutines = 32
	const perGoroutine = 20
	db := simDB(t)
	m, err := New(llm.ModelGPT4o, 11)
	if err != nil {
		t.Fatal(err)
	}
	prompts := []string{
		oneShotPrompt(db, "Malaysia Airlines recorded x fatal accidents between 2000 and 2014."),
		oneShotPrompt(db, "A total of x fatalities between 2000 and 2014 were recorded across all airlines."),
		oneShotPrompt(db, "Aer Lingus recorded x incidents between 1985 and 1999."),
	}
	type key struct {
		prompt int
		temp   float64
		seed   int64
	}
	// Reference responses computed serially before any concurrency.
	want := map[key]string{}
	for pi := range prompts {
		for _, temp := range []float64{0, 0.9} {
			for seed := int64(0); seed < 4; seed++ {
				k := key{pi, temp, seed}
				want[k] = completeSeeded(t, m, prompts[pi], temp, seed)
			}
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	mismatches := 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				k := key{(g + i) % len(prompts), []float64{0, 0.9}[(g+i)%2], int64(i % 4)}
				resp, err := m.Complete(llm.Request{
					Model:       llm.ModelGPT4o,
					Messages:    []llm.Message{{Role: llm.RoleUser, Content: prompts[k.prompt]}},
					Temperature: k.temp,
					Seed:        k.seed,
				})
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Content != want[k] {
					mu.Lock()
					mismatches++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if mismatches > 0 {
		t.Errorf("%d concurrent completions differed from their serial reference", mismatches)
	}
}
