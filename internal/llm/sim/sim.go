// Package sim implements the simulated language-model family standing in
// for the OpenAI GPT series the paper uses. A simulated model reads the
// actual prompt text (claim, schema, few-shot sample, context), parses the
// masked claim through the nl layer the way an LLM reads English, and
// produces either a one-shot SQL translation or ReAct-formatted agent steps.
//
// Failures are not scripted per claim; they emerge from the same mechanisms
// the paper describes: entity aliases that do not occur in the data,
// ambiguous column phrases, unit mismatches, unsupported claim shapes for
// weaker tiers, and temperature-dependent random corruption. Stronger tiers
// read context, handle unit conversions, and make fewer mistakes — at a
// higher per-token price (see llm.DefaultPricing).
package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"repro/internal/llm"
	"repro/internal/nl"
)

// Profile describes one simulated model tier.
type Profile struct {
	// Name is the canonical model name (llm.ModelGPT35, ...).
	Name string
	// KindSkill is the per-claim-kind probability of a structurally
	// correct translation before other noise sources.
	KindSkill map[nl.Kind]float64
	// NoiseZero is the base corruption probability at temperature 0.
	NoiseZero float64
	// NoisePerTemp is the additional corruption probability per unit of
	// temperature.
	NoisePerTemp float64
	// AgentExtraNoise is added to the corruption probability in agent
	// conversations: long multi-turn trajectories drift more than single
	// completions, and the agent's willingness to accept "close" feedback
	// lets wrong interpretations slip through.
	AgentExtraNoise float64
	// DerailProb is the probability that an agent conversation derails —
	// the model stops following the ReAct format and never reaches a
	// final answer, a notorious failure mode of LLM agent scaffolding.
	DerailProb float64
	// JoinSkill is the probability of correctly formulating a query that
	// requires joins over a normalized schema; weaker tiers often fail
	// multi-table reasoning (Section 7.3.2's cost increase comes from
	// join claims escalating to stronger methods).
	JoinSkill float64
	// ReadsContext controls whether the model uses the claim context to
	// disambiguate underspecified column phrases.
	ReadsContext bool
	// UnitSkill controls whether the model applies unit conversions when
	// claims use different units than the data.
	UnitSkill bool
	// FewShotBoost multiplies noise when a few-shot sample is present
	// (values < 1 mean samples help).
	FewShotBoost float64
	// CheatProb is the probability of echoing the claim value as a SQL
	// constant when the prompt was not masked (Figure 2's failure mode).
	CheatProb float64
	// Verbosity scales the length of reasoning filler in responses, which
	// drives completion-token costs.
	Verbosity int
}

func skills(base float64, overrides map[nl.Kind]float64) map[nl.Kind]float64 {
	m := make(map[nl.Kind]float64)
	for k := nl.KindLookup; k <= nl.KindMode; k++ {
		m[k] = base
	}
	for k, v := range overrides {
		m[k] = v
	}
	return m
}

// Profiles returns the default tier definitions keyed by model name.
func Profiles() map[string]Profile {
	return map[string]Profile{
		llm.ModelGPT35: {
			Name: llm.ModelGPT35,
			KindSkill: skills(0.8, map[nl.Kind]float64{
				nl.KindLookup:   0.88,
				nl.KindCountAll: 0.88,
				nl.KindAvg:      0.75,
				nl.KindMin:      0.72,
				nl.KindMax:      0.72,
				nl.KindDiff:     0.3,
				nl.KindArgMax:   0.3,
				nl.KindArgMin:   0.3,
				nl.KindPercent:  0.4,
				nl.KindMode:     0.25,
			}),
			NoiseZero:       0.06,
			NoisePerTemp:    0.2,
			AgentExtraNoise: 0.1,
			DerailProb:      0.15,
			JoinSkill:       0.3,
			ReadsContext:    false,
			UnitSkill:       false,
			FewShotBoost:    0.55,
			CheatProb:       0.8,
			Verbosity:       1,
		},
		llm.ModelGPT4o: {
			Name: llm.ModelGPT4o,
			KindSkill: skills(0.96, map[nl.Kind]float64{
				nl.KindDiff:    0.88,
				nl.KindArgMax:  0.9,
				nl.KindArgMin:  0.9,
				nl.KindPercent: 0.86,
				nl.KindMode:    0.85,
			}),
			NoiseZero:       0.07,
			NoisePerTemp:    0.16,
			AgentExtraNoise: 0.05,
			DerailProb:      0.12,
			JoinSkill:       0.8,
			ReadsContext:    true,
			UnitSkill:       true,
			FewShotBoost:    0.65,
			CheatProb:       0.7,
			Verbosity:       2,
		},
		llm.ModelGPT41: {
			Name: llm.ModelGPT41,
			KindSkill: skills(0.975, map[nl.Kind]float64{
				nl.KindDiff:    0.92,
				nl.KindArgMax:  0.94,
				nl.KindArgMin:  0.94,
				nl.KindPercent: 0.9,
				nl.KindMode:    0.9,
			}),
			NoiseZero:       0.05,
			NoisePerTemp:    0.12,
			AgentExtraNoise: 0.04,
			DerailProb:      0.1,
			JoinSkill:       0.85,
			ReadsContext:    true,
			UnitSkill:       true,
			FewShotBoost:    0.65,
			CheatProb:       0.6,
			Verbosity:       3,
		},
	}
}

// Model is a simulated LLM implementing llm.Client. A Model holds no
// mutable state — all randomness is derived per completion from the prompt
// and the request seed — so one instance is safe for any number of
// concurrent callers, and outcomes never depend on request ordering.
type Model struct {
	profile Profile
	lex     *nl.Lexicon
	seed    int64
}

// New constructs a simulated model by canonical name. The seed drives the
// model's sampling randomness (used at temperature > 0): models built with
// different seeds sample different completions for the same request.
func New(name string, seed int64) (*Model, error) {
	p, ok := Profiles()[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", llm.ErrUnknownModel, name)
	}
	return &Model{
		profile: p,
		lex:     nl.DefaultLexicon(),
		seed:    seed,
	}, nil
}

// Profile returns the model's tier definition.
func (m *Model) Profile() Profile { return m.profile }

// Complete implements llm.Client. It dispatches between the one-shot
// translation behaviour and the ReAct agent behaviour based on the prompt.
func (m *Model) Complete(req llm.Request) (llm.Response, error) {
	if req.Model != "" && req.Model != m.profile.Name {
		return llm.Response{}, fmt.Errorf("%w: model %q served by %q", llm.ErrUnknownModel, req.Model, m.profile.Name)
	}
	prompt := llm.PromptText(req.Messages)
	rng := m.rngFor(prompt, req)

	var content string
	if strings.Contains(prompt, agentMarker) {
		content = m.agentStep(prompt, req)
	} else {
		content = m.oneShot(prompt, req.Temperature, rng)
	}
	usage := llm.Usage{
		PromptTokens:     llm.CountMessageTokens(req.Messages),
		CompletionTokens: llm.CountTokens(content),
	}
	return llm.Response{
		Content: content,
		Usage:   usage,
		Latency: llm.PriceFor(m.profile.Name).Latency(usage),
	}, nil
}

// rngFor returns the randomness source for one completion. At temperature
// zero the model is deterministic per prompt (like real sampling with
// temperature 0): the same input always yields the same output, so retrying
// at temperature 0 cannot change the outcome. At higher temperatures the
// randomness is derived from (prompt, model seed, request seed,
// temperature) — splittable seeding instead of a shared stream. Callers
// that thread a fresh Request.Seed per retry (as the pipeline does, keyed
// on document, claim, method, and try) get the genuinely-varying retries
// CEDAR's scheduling relies on (Assumption 1), while concurrent completions
// can never perturb each other.
// samplingSalt versions the temperature > 0 sampling streams. Bumping it
// re-rolls every seeded retry at once (the simulated analog of a provider
// updating model weights) without disturbing temperature-0 determinism.
const samplingSalt = "sampling-v1"

func (m *Model) rngFor(prompt string, req llm.Request) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(m.profile.Name))
	_, _ = h.Write([]byte(prompt))
	if req.Temperature > 0 {
		_, _ = h.Write([]byte(samplingSalt))
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], uint64(m.seed))
		binary.LittleEndian.PutUint64(buf[8:], uint64(req.Seed))
		_, _ = h.Write(buf[:])
		fmt.Fprintf(h, "%.4f", req.Temperature)
	}
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// noise returns the corruption probability at the given temperature, with
// the few-shot discount applied when a sample is present.
func (m *Model) noise(temperature float64, hasSample bool) float64 {
	n := m.profile.NoiseZero + m.profile.NoisePerTemp*temperature
	if hasSample {
		n *= m.profile.FewShotBoost
	}
	if n > 0.95 {
		n = 0.95
	}
	return n
}
