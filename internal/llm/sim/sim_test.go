package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/llm"
	"repro/internal/nl"
	"repro/internal/prompts"
	"repro/internal/sqldb"
)

func simDB(t testing.TB) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase("airlinesafety")
	tab := sqldb.NewTable("airlines", "airline", "incidents_85_99", "fatal_accidents_00_14", "fatalities_00_14")
	tab.MustAppendRow(sqldb.Text("Aer Lingus"), sqldb.Int(320), sqldb.Int(0), sqldb.Int(0))
	tab.MustAppendRow(sqldb.Text("Malaysia Airlines"), sqldb.Int(240), sqldb.Int(2), sqldb.Int(537))
	db.AddTable(tab)
	return db
}

func oneShotPrompt(db *sqldb.Database, masked string) string {
	return prompts.OneShot(masked, "numeric", db.Schema(), "", "Some context. "+masked)
}

func complete(t *testing.T, m *Model, prompt string, temp float64) string {
	return completeSeeded(t, m, prompt, temp, 0)
}

// completeSeeded sets the request Seed, which distinguishes repeated
// temperature > 0 samples of the same prompt (the model itself is stateless).
func completeSeeded(t *testing.T, m *Model, prompt string, temp float64, seed int64) string {
	t.Helper()
	resp, err := m.Complete(llm.Request{
		Model:       m.Profile().Name,
		Messages:    []llm.Message{{Role: llm.RoleUser, Content: prompt}},
		Temperature: temp,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Content
}

func TestNewUnknownModel(t *testing.T) {
	if _, err := New("gpt-9000", 1); !errors.Is(err, llm.ErrUnknownModel) {
		t.Errorf("err = %v", err)
	}
}

func TestCompleteWrongModelName(t *testing.T) {
	m, _ := New(llm.ModelGPT35, 1)
	_, err := m.Complete(llm.Request{Model: llm.ModelGPT4o})
	if !errors.Is(err, llm.ErrUnknownModel) {
		t.Errorf("err = %v", err)
	}
}

func TestOneShotTranslatesSimpleClaim(t *testing.T) {
	db := simDB(t)
	m, _ := New(llm.ModelGPT4o, 1)
	content := complete(t, m, oneShotPrompt(db, "Malaysia Airlines recorded x fatal accidents between 2000 and 2014."), 0)
	sql, ok := prompts.ExtractSQL(content)
	if !ok {
		t.Fatalf("no SQL in %q", content)
	}
	v, err := sqldb.QueryScalar(db, sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	if n, _ := v.AsInt(); n != 2 {
		t.Errorf("result = %v from %q", v, sql)
	}
}

func TestOneShotRefusesGibberish(t *testing.T) {
	db := simDB(t)
	m, _ := New(llm.ModelGPT4o, 1)
	content := complete(t, m, oneShotPrompt(db, "Gibberish without any template whatsoever."), 0)
	if _, ok := prompts.ExtractSQL(content); ok {
		t.Errorf("extracted SQL from refusal: %q", content)
	}
}

func TestOneShotDeterministicAtTempZero(t *testing.T) {
	db := simDB(t)
	m, _ := New(llm.ModelGPT35, 7)
	p := oneShotPrompt(db, "A total of x fatalities between 2000 and 2014 were recorded across all airlines.")
	a := complete(t, m, p, 0)
	for i := 0; i < 5; i++ {
		if b := complete(t, m, p, 0); b != a {
			t.Fatal("temperature-0 completions differ")
		}
	}
}

func TestOneShotVariesAtHighTemperature(t *testing.T) {
	db := simDB(t)
	m, _ := New(llm.ModelGPT35, 7)
	p := oneShotPrompt(db, "A total of x fatalities between 2000 and 2014 were recorded across all airlines.")
	seen := map[string]bool{}
	for i := 0; i < 40; i++ {
		seen[completeSeeded(t, m, p, 0.9, int64(i))] = true
	}
	if len(seen) < 2 {
		t.Error("high-temperature completions never vary")
	}
	// The same seed must reproduce the same sample.
	if completeSeeded(t, m, p, 0.9, 5) != completeSeeded(t, m, p, 0.9, 5) {
		t.Error("equal seeds produced different samples")
	}
}

func TestUnmaskedCheat(t *testing.T) {
	db := simDB(t)
	m, _ := New(llm.ModelGPT35, 3) // CheatProb 0.8
	cheats := 0
	for i := 0; i < 30; i++ {
		p := oneShotPrompt(db, "Malaysia Airlines recorded 2 fatal accidents between 2000 and 2014.")
		content := completeSeeded(t, m, p, 0.9, int64(i))
		sql, ok := prompts.ExtractSQL(content)
		if !ok {
			continue
		}
		if strings.Contains(sql, "= 2") || strings.TrimSpace(sql) == "SELECT 2" {
			cheats++
		}
	}
	if cheats < 10 {
		t.Errorf("unmasked prompts produced only %d/30 constant-echo queries", cheats)
	}
}

func TestTokenAccounting(t *testing.T) {
	db := simDB(t)
	m, _ := New(llm.ModelGPT4o, 1)
	p := oneShotPrompt(db, "Malaysia Airlines recorded x fatal accidents between 2000 and 2014.")
	resp, err := m.Complete(llm.Request{Model: llm.ModelGPT4o, Messages: []llm.Message{{Role: llm.RoleUser, Content: p}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Usage.PromptTokens < 50 || resp.Usage.CompletionTokens < 5 {
		t.Errorf("usage = %+v", resp.Usage)
	}
	if resp.Latency <= 0 {
		t.Error("no simulated latency")
	}
}

func TestVerbosityDrivesCompletionTokens(t *testing.T) {
	db := simDB(t)
	p := oneShotPrompt(db, "Malaysia Airlines recorded x fatal accidents between 2000 and 2014.")
	short, _ := New(llm.ModelGPT35, 1)
	long, _ := New(llm.ModelGPT41, 1)
	rs, _ := short.Complete(llm.Request{Model: llm.ModelGPT35, Messages: []llm.Message{{Role: llm.RoleUser, Content: p}}})
	rl, _ := long.Complete(llm.Request{Model: llm.ModelGPT41, Messages: []llm.Message{{Role: llm.RoleUser, Content: p}}})
	if rl.Usage.CompletionTokens <= rs.Usage.CompletionTokens {
		t.Errorf("verbosity: gpt4.1 %d tokens <= gpt3.5 %d", rl.Usage.CompletionTokens, rs.Usage.CompletionTokens)
	}
}

func TestAgentStepProtocol(t *testing.T) {
	db := simDB(t)
	m, _ := New(llm.ModelGPT41, 2)
	base := "Run: 0\n" + prompts.Agent("Malaysia Airlines recorded x fatal accidents between 2000 and 2014.", "numeric", db.Schema(), "", "ctx")
	content := complete(t, m, base, 0)
	// First turn: either an action step or a derailment; with seed 2 and
	// this claim we expect an action.
	if !strings.Contains(content, "Action:") && !strings.Contains(content, "Final Answer:") {
		t.Skipf("derailment path taken: %q", content)
	}
	if strings.Contains(content, "Action:") && !strings.Contains(content, "Action Input:") {
		t.Errorf("action without input: %q", content)
	}
}

func TestParseHistory(t *testing.T) {
	tail := `
Thought: first
Action: database_querying
Action Input: SELECT 1
Observation: Result: 537
Feedback: The query result is greater than the claimed value
Thought: hmm
Action: unique_column_values
Action Input: airline
Observation: Values in column airline:
Aer Lingus
Malaysia Airlines
Thought: retry`
	steps := parseHistory(tail)
	if len(steps) != 2 {
		t.Fatalf("steps = %d: %+v", len(steps), steps)
	}
	if steps[0].action != prompts.ToolQuery || steps[0].input != "SELECT 1" {
		t.Errorf("step0 = %+v", steps[0])
	}
	if !strings.Contains(steps[0].observation, "greater") {
		t.Errorf("step0 obs = %q", steps[0].observation)
	}
	if !strings.Contains(steps[1].observation, "Malaysia Airlines") {
		t.Errorf("step1 obs = %q", steps[1].observation)
	}
	if resultOf(steps[0].observation) != "537" {
		t.Errorf("resultOf = %q", resultOf(steps[0].observation))
	}
}

func TestObservationClassifiers(t *testing.T) {
	if !isErrorObs("Error: boom") || isErrorObs("Result: 3") {
		t.Error("error classification")
	}
	if !isSuccessObs("Feedback: Value is correct") {
		t.Error("correct classification")
	}
	if !isSuccessObs("Feedback: The query result is close to the claimed value") {
		t.Error("close classification")
	}
	if !isSuccessObs("Feedback: Value matched") {
		t.Error("matched classification")
	}
	if isSuccessObs("Feedback: Value mismatched") {
		t.Error("mismatched misclassified as success")
	}
	if isSuccessObs("Feedback: The query result is greater than the claimed value") {
		t.Error("greater misclassified")
	}
}

func TestBestMatch(t *testing.T) {
	obs := "Values in column airline:\nAer Lingus\nMalaysia Airlines\nUnited / Continental"
	got, ok := bestMatch(obs, "United Airlines")
	if !ok || got != "United / Continental" {
		t.Errorf("bestMatch = %q %v", got, ok)
	}
	if _, ok := bestMatch(obs, ""); ok {
		t.Error("empty constant matched")
	}
}

func TestSubstituteNumericValue(t *testing.T) {
	out, val, ok := substituteNumericValue("The airline had 42 incidents in total.")
	if !ok || val != "42" || !strings.Contains(out, " x ") {
		t.Errorf("substitute = %q %q %v", out, val, ok)
	}
	if _, _, ok := substituteNumericValue("No numbers at all."); ok {
		t.Error("substituted in number-free sentence")
	}
}

func TestDegradeKindCoversAllKinds(t *testing.T) {
	for k := nl.KindLookup; k <= nl.KindPercent; k++ {
		spec := nl.Spec{Kind: k, Column: "c", EntityCol: "e", FilterCol: "f", FilterVal: "1"}
		degradeKind(&spec)
		// Degradation must change something: kind or predicates.
		if spec.Kind == k && spec.FilterCol == "f" && spec.EntityCol == "e" {
			t.Errorf("kind %v not degraded: %+v", k, spec)
		}
	}
}

func TestProfilesComplete(t *testing.T) {
	profs := Profiles()
	for _, name := range []string{llm.ModelGPT35, llm.ModelGPT4o, llm.ModelGPT41} {
		p, ok := profs[name]
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		for k := nl.KindLookup; k <= nl.KindPercent; k++ {
			if p.KindSkill[k] <= 0 || p.KindSkill[k] > 1 {
				t.Errorf("%s skill for %v = %v", name, k, p.KindSkill[k])
			}
		}
	}
	// Tier ordering: stronger models corrupt less.
	if profs[llm.ModelGPT4o].NoiseZero >= profs[llm.ModelGPT35].NoiseZero+0.05 {
		t.Error("gpt4o should not be noisier than gpt3.5")
	}
	if !profs[llm.ModelGPT4o].ReadsContext || profs[llm.ModelGPT35].ReadsContext {
		t.Error("context-reading tiers wrong")
	}
	if !profs[llm.ModelGPT41].UnitSkill || profs[llm.ModelGPT35].UnitSkill {
		t.Error("unit-skill tiers wrong")
	}
}
