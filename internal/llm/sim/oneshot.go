package sim

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/embed"
	"repro/internal/nl"
	"repro/internal/prompts"
	"repro/internal/textutil"
)

const agentMarker = prompts.AgentMarker

// refusal is the model's no-SQL response; query extraction fails on it and
// the verification method counts as failed for this claim.
func (m *Model) refusal() string {
	return "I could not determine a SQL query that verifies this claim from the given schema."
}

// oneShot produces the response to a one-shot claim-to-SQL prompt
// (Algorithm 5's InvokeLLM step, seen from the model side).
func (m *Model) oneShot(prompt string, temperature float64, rng *rand.Rand) string {
	masked, _, ok := prompts.ExtractClaim(prompt)
	if !ok {
		return m.refusal()
	}
	schema := nl.ParseSchemaText(prompt)
	if len(schema.Tables) == 0 {
		return m.refusal()
	}
	hasSample := prompts.HasSample(prompt)
	ctx := ""
	if m.profile.ReadsContext {
		ctx = prompts.ExtractContext(prompt)
	}

	// Unmasked prompts trigger the Figure 2 failure mode: the model takes
	// the shortcut of echoing the claimed value as a SQL constant.
	cheatValue := ""
	if !hasMaskToken(masked) {
		substituted, value, ok := substituteNumericValue(masked)
		if !ok {
			return m.refusal()
		}
		masked = substituted
		if rng.Float64() < m.profile.CheatProb {
			cheatValue = value
		}
	}

	parsed, err := nl.ParseMasked(masked, schema, m.lex, ctx)
	if err != nil {
		return m.refusal()
	}
	spec := parsed.Spec

	// Tier skill: weaker tiers mostly fail hard claim shapes outright
	// (producing no usable query) and sometimes mistranslate them into a
	// simpler shape.
	if rng.Float64() > m.profile.KindSkill[spec.Kind] {
		if rng.Float64() < 0.7 {
			return m.refusal()
		}
		degradeKind(&spec)
	}
	// Ambiguity: without context reading, ties between candidate columns
	// are broken by chance.
	if parsed.Ambiguous && len(parsed.ColumnCands) >= 2 && rng.Intn(2) == 0 {
		spec.Column = parsed.ColumnCands[1].Column
		spec.ConvFactor = parsed.ColumnCands[1].ConvFactor
	}
	// Unit skill: tiers without it translate the words but ignore the
	// conversion, producing magnitude-off results.
	if !m.profile.UnitSkill {
		spec.ConvFactor = 0
	}
	// Random corruption, reduced by few-shot samples.
	if rng.Float64() < m.noise(temperature, hasSample) {
		corrupt(&spec, parsed, rng)
	}
	// Prompts that inline example rows (the P1 "Create Table + Select 3"
	// template) let the model ground entity constants in actual data
	// values, occasionally fixing alias mismatches.
	if spec.EntityVal != "" {
		if fixed, ok := entityFromSampleRows(prompt, spec.EntityVal); ok {
			spec.EntityVal = fixed
		}
	}

	sql, err := nl.BuildSQL(schema, &spec)
	if err != nil {
		return m.refusal()
	}
	// Multi-table reasoning: queries that need joins exceed weaker tiers'
	// single-shot ability.
	if strings.Contains(sql, " JOIN ") && rng.Float64() > m.profile.JoinSkill {
		return m.refusal()
	}
	if cheatValue != "" {
		sql = cheatQuery(sql, &spec, cheatValue)
	}
	return m.wrapSQL(masked, sql)
}

// wrapSQL renders a chatty completion around the fenced query; verbosity
// drives completion-token cost.
func (m *Model) wrapSQL(masked, sql string) string {
	var b strings.Builder
	b.WriteString("To find the value of \"x\" in the claim, I need to query the data")
	for i := 1; i < m.profile.Verbosity; i++ {
		b.WriteString(". Considering the schema and the claim wording, the relevant columns and predicates can be determined directly")
	}
	b.WriteString(".\n")
	b.WriteString(prompts.SQLFence + "\n" + sql + "\n```")
	return b.String()
}

// hasMaskToken reports whether the sentence contains the obfuscation token.
func hasMaskToken(sentence string) bool {
	for _, tok := range textutil.Tokenize(sentence) {
		if tok == "x" || strings.TrimRight(tok, ".,;:") == "x" {
			return true
		}
	}
	return false
}

// substituteNumericValue replaces the first standalone numeric token with
// "x", returning the substituted sentence and the value.
func substituteNumericValue(sentence string) (string, string, bool) {
	toks := textutil.Tokenize(sentence)
	for i, tok := range toks {
		bare := strings.TrimRight(tok, ".,;:")
		if _, ok := textutil.ParseNumber(bare); ok {
			span := textutil.Span{Start: i, End: i}
			return textutil.MaskSpan(sentence, span), bare, true
		}
	}
	return "", "", false
}

// entityFromSampleRows scans pipe-separated example rows embedded in the
// prompt for a cell highly similar to the entity constant, returning the
// grounded data value when found. Only values that actually appear among
// the (few) sampled rows can be fixed this way.
func entityFromSampleRows(prompt, entity string) (string, bool) {
	best, bestScore := "", 0.55 // require strong similarity to rewrite
	for _, line := range strings.Split(prompt, "\n") {
		if !strings.Contains(line, " | ") {
			continue
		}
		for _, cell := range strings.Split(line, " | ") {
			cell = strings.TrimSpace(cell)
			if cell == "" || cell == entity {
				continue
			}
			if s := embed.Similarity(entity, cell); s > bestScore {
				best, bestScore = cell, s
			}
		}
	}
	return best, best != ""
}

// cheatQuery appends the claimed value as a constant, the failure mode of
// Figure 2: an equality conjunct on the measure column when a WHERE clause
// exists, otherwise a bare constant SELECT.
func cheatQuery(sql string, spec *nl.Spec, value string) string {
	if spec.Column != "" && strings.Contains(sql, "WHERE") {
		return fmt.Sprintf(`%s AND "%s" = %s`, sql, spec.Column, value)
	}
	return "SELECT " + value
}

// degradeKind rewrites a spec into the simpler shape a weak model falls
// back to when it cannot handle the claim's real structure.
func degradeKind(spec *nl.Spec) {
	switch spec.Kind {
	case nl.KindPercent:
		spec.Kind = nl.KindCount
	case nl.KindMode:
		// Weak models confuse "most common value" with "value of the row
		// with the most entries" and fall back to counting.
		spec.Kind = nl.KindCountAll
		spec.EntityCol = spec.Column
		spec.Column = ""
	case nl.KindDiff:
		spec.Kind = nl.KindMax
	case nl.KindArgMax:
		spec.Kind = nl.KindMax
		spec.EntityCol = ""
	case nl.KindArgMin:
		spec.Kind = nl.KindMin
		spec.EntityCol = ""
	case nl.KindAvg:
		spec.Kind = nl.KindSum
	case nl.KindSum:
		spec.Kind = nl.KindAvg
	case nl.KindCount:
		spec.Kind = nl.KindCountAll
		if spec.EntityCol == "" {
			spec.EntityCol = spec.FilterCol
		}
		spec.FilterCol = ""
	default:
		// Lookup/CountAll degrade by dropping predicates.
		spec.FilterCol = ""
	}
}

// corrupt applies one random realistic mistake to the spec.
func corrupt(spec *nl.Spec, parsed *nl.Parsed, rng *rand.Rand) {
	var options []func()
	if len(parsed.ColumnCands) >= 2 && spec.Column != "" {
		options = append(options, func() {
			spec.Column = parsed.ColumnCands[1].Column
			spec.ConvFactor = parsed.ColumnCands[1].ConvFactor
		})
	}
	if len(parsed.FilterCands) >= 2 {
		options = append(options, func() { spec.FilterCol = parsed.FilterCands[1].Column })
	}
	if spec.FilterCol != "" && (spec.Kind == nl.KindSum || spec.Kind == nl.KindAvg) {
		options = append(options, func() { spec.FilterCol = "" })
	}
	switch spec.Kind {
	case nl.KindSum:
		options = append(options, func() { spec.Kind = nl.KindAvg })
	case nl.KindAvg:
		options = append(options, func() { spec.Kind = nl.KindSum })
	case nl.KindMax:
		options = append(options, func() { spec.Kind = nl.KindMin })
	case nl.KindMin:
		options = append(options, func() { spec.Kind = nl.KindMax })
	case nl.KindArgMax:
		options = append(options, func() { spec.Kind = nl.KindArgMin })
	}
	if spec.ConvFactor != 0 && spec.ConvFactor != 1 {
		options = append(options, func() { spec.ConvFactor = 0 })
	}
	if spec.EntityVal != "" {
		options = append(options, func() {
			spec.EntityVal = strings.TrimPrefix(spec.EntityVal, "the ")
			spec.EntityVal = strings.ToLower(spec.EntityVal)
		})
	}
	if len(options) == 0 {
		// No structural corruption applies; flip to a count of everything.
		spec.Kind = nl.KindCountAll
		if spec.EntityCol == "" {
			spec.EntityCol = spec.Column
		}
		return
	}
	options[rng.Intn(len(options))]()
}
