package llm

import (
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/trace"
)

// TestCacheKeyCollisionRegression pins the collision fix. The previous key
// serialized messages as \0 role \0 content and hashed the stream to 64 bits,
// so these two requests — distinct prompts — produced the same byte stream
// ("\0r\0c\0x" both ways) and therefore the same FNV key: the second caller
// silently received the first caller's completion. The canonical encoding
// length-prefixes every field and the table compares full key material, so
// they must occupy distinct slots.
func TestCacheKeyCollisionRegression(t *testing.T) {
	a := Request{Model: "m", Messages: []Message{{Role: "r", Content: "c\x00x"}}}
	b := Request{Model: "m", Messages: []Message{{Role: "r\x00c", Content: "x"}}}
	if cacheKey(a) == cacheKey(b) {
		t.Fatal("distinct requests share a cache key: encoding is not injective")
	}
	under := &countingClient{}
	c := NewCached(under, 0)
	ra, err := c.Complete(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.Complete(b)
	if err != nil {
		t.Fatal(err)
	}
	if under.calls != 2 {
		t.Fatalf("underlying calls = %d, want 2: colliding requests shared an entry", under.calls)
	}
	if ra.Content == rb.Content {
		t.Error("second request was served the first request's completion")
	}
}

// identifiedReq is a temperature-0 request carrying an attempt identity, the
// shape of pipeline eval traffic (persist reads are gated on it).
func identifiedReq(model, prompt string) Request {
	r := req(model, prompt, 0)
	r.Attempt = trace.Key{Doc: "doc", Claim: 1, Method: "oneshot", Try: 1}
	return r
}

func TestCachedPersistRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Process 1: a cold cache pays the model and warms the store.
	under1 := &countingClient{}
	c1 := &Cached{Client: under1, Persist: st}
	want, err := c1.Complete(identifiedReq("m", "prompt"))
	if err != nil {
		t.Fatal(err)
	}
	if under1.calls != 1 {
		t.Fatalf("cold run calls = %d, want 1", under1.calls)
	}

	// Process 2: a fresh cache over the same store must answer from disk —
	// bit-identical response, zero model invocations.
	under2 := &countingClient{}
	tr := trace.New()
	c2 := &Cached{Client: under2, Persist: st, Tracer: tr}
	got, err := c2.Complete(identifiedReq("m", "prompt"))
	if err != nil {
		t.Fatal(err)
	}
	if under2.calls != 0 {
		t.Fatalf("warm run invoked the model %d times", under2.calls)
	}
	if got != want {
		t.Errorf("persisted response differs: %+v != %+v", got, want)
	}
	if gets, hits := c2.PersistStats(); gets != 1 || hits != 1 {
		t.Errorf("persist stats = %d/%d, want 1/1", gets, hits)
	}
	if calls, hits := c2.Stats(); calls != 1 || hits != 1 {
		t.Errorf("stats = %d/%d, want 1/1 (persist hit counts as hit)", calls, hits)
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Kind != trace.KindPersistHit {
		t.Fatalf("spans = %+v, want one persist_hit", spans)
	}
	if spans[0].Fee != PriceFor("m").Cost(want.Usage) || spans[0].PromptTokens != want.Usage.PromptTokens {
		t.Errorf("persist_hit span is not a full attempt replica: %+v", spans[0])
	}

	// Third process hit is served from the in-memory table once installed.
	if _, err := c2.Complete(identifiedReq("m", "prompt")); err != nil {
		t.Fatal(err)
	}
	if gets, _ := c2.PersistStats(); gets != 1 {
		t.Errorf("in-memory hit consulted the store again (gets=%d)", gets)
	}
}

// TestCachedPersistIgnoresAnonymousReads pins the profiling gate: anonymous
// traffic (zero Attempt) must not read the store — its measured costs feed
// the scheduler, and a free completion would change the planned schedule
// between cold and warm runs. Writes still happen, warming the store.
func TestCachedPersistIgnoresAnonymousReads(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	under1 := &countingClient{}
	c1 := &Cached{Client: under1, Persist: st}
	if _, err := c1.Complete(req("m", "prompt", 0)); err != nil { // anonymous
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("anonymous completion not persisted (len=%d)", st.Len())
	}

	under2 := &countingClient{}
	c2 := &Cached{Client: under2, Persist: st}
	if _, err := c2.Complete(req("m", "prompt", 0)); err != nil { // anonymous again
		t.Fatal(err)
	}
	if under2.calls != 1 {
		t.Fatalf("anonymous request was answered from the store (calls=%d)", under2.calls)
	}
	if gets, hits := c2.PersistStats(); gets != 0 || hits != 0 {
		t.Errorf("anonymous request consulted the store: %d/%d", gets, hits)
	}

	// The same prompt with an identity IS served from the store.
	under3 := &countingClient{}
	c3 := &Cached{Client: under3, Persist: st}
	if _, err := c3.Complete(identifiedReq("m", "prompt")); err != nil {
		t.Fatal(err)
	}
	if under3.calls != 0 {
		t.Errorf("identified request missed the warmed store (calls=%d)", under3.calls)
	}
}

// TestCachedPersistSkipsErrorsAndPositiveTemp: failed completions and
// temperature>0 traffic must never be persisted — a warm run has to re-fault
// and re-sample exactly like a cold one.
func TestCachedPersistSkipsErrorsAndPositiveTemp(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	c := &Cached{Client: &countingClient{}, Persist: st}
	if _, err := c.Complete(req("m", "sampled", 0.7)); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Errorf("positive-temperature completion was persisted")
	}

	fail := &Cached{Client: failingClient{}, Persist: st}
	if _, err := fail.Complete(identifiedReq("m", "boom")); err == nil {
		t.Fatal("failingClient returned no error")
	}
	if st.Len() != 0 {
		t.Errorf("failed completion was persisted")
	}
}

type failingClient struct{}

func (failingClient) Complete(Request) (Response, error) {
	return Response{}, ErrUnknownModel
}

func TestPersistedResponseCodec(t *testing.T) {
	want := Response{
		Content: "a completion\x00with binary\nand lines",
		Usage:   Usage{PromptTokens: 123, CompletionTokens: 456},
		Latency: 789 * time.Millisecond,
	}
	got, ok := decodePersistedResponse(encodePersistedResponse(want))
	if !ok || got != want {
		t.Fatalf("round trip = %+v, %v; want %+v", got, ok, want)
	}
	if _, ok := decodePersistedResponse(nil); ok {
		t.Error("nil decoded")
	}
	if _, ok := decodePersistedResponse([]byte{99, 0, 0, 0, 0}); ok {
		t.Error("unknown version decoded")
	}
	enc := encodePersistedResponse(want)
	if _, ok := decodePersistedResponse(enc[:len(enc)-1]); ok {
		t.Error("truncated value decoded")
	}
}
