package llm

import (
	"container/list"
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/trace"
)

// persistCompletionPrefix namespaces temperature-0 completion records inside
// the shared result store (verdict memos use "m\x00"; see cedar).
const persistCompletionPrefix = "c\x00"

// Cached wraps a Client with a response cache for temperature-0 requests.
// Temperature-0 completions are deterministic per prompt (both for real
// APIs in greedy mode and for the simulated models), so repeating one is
// pure waste; cached hits cost nothing and are not re-billed by downstream
// ledgers because Complete is simply not invoked. Requests with a positive
// temperature always pass through — caching them would destroy the retry
// randomization CEDAR's scheduler depends on.
type Cached struct {
	// Client is the underlying completion provider.
	Client Client
	// MaxEntries bounds the in-memory cache (LRU eviction); 0 means 4096.
	MaxEntries int
	// Persist, when set, extends the cache across processes: every completion
	// this cache fills is appended to the store, and misses consult it before
	// invoking the model (DESIGN.md §11). Reads are gated on a non-zero
	// req.Attempt: anonymous traffic (profiling) must re-pay its completions
	// so the measured method statistics — and hence the planned schedule — are
	// identical whether or not a prior run warmed the store. Writes are not
	// gated; profiling legitimately warms the store for later eval traffic.
	Persist *store.Store
	// Tracer, when enabled, records cache_hit / cache_wait / persist_hit
	// spans. Which attempt leads a concurrent miss (and which attempts record
	// waits) is scheduling-dependent, so cache_hit/cache_wait are excluded
	// from the cross-worker determinism contract (DESIGN.md §10); persist_hit
	// participates via trace.ReplayNormalize (§11).
	Tracer *trace.Tracer

	mu          sync.Mutex
	table       map[string]*list.Element
	order       *list.List // front = most recently used
	inflight    map[string]*inflightCall
	hits        int
	calls       int
	persistGets int
	persistHits int
}

// cacheEntry holds one cached completion under its full key material. The
// table is keyed by the same string, so a lookup can never alias two distinct
// requests: equality is over the entire canonical encoding, not a hash of it.
// (The previous implementation keyed on a 64-bit FNV digest, where a silent
// collision would have returned the wrong completion with no detection.)
type cacheEntry struct {
	key  string
	resp Response
}

// inflightCall tracks a cache miss currently being filled, so concurrent
// requests for the same prompt wait for the leader instead of invoking the
// model again (single-flight). Without it, claim-level parallelism would
// bill a duplicate prompt once or twice depending on goroutine timing.
type inflightCall struct {
	done chan struct{}
	resp Response
	err  error
}

// NewCached wraps a client with a temperature-0 cache.
func NewCached(client Client, maxEntries int) *Cached {
	return &Cached{Client: client, MaxEntries: maxEntries}
}

// Complete implements Client. Concurrent misses on the same key are
// single-flighted: one request invokes the model (or reads the persistent
// store), the others block on it and share its response, so the underlying
// client sees each distinct key — (model, cap, seed, prompt) — exactly once
// regardless of scheduling. Distinct attempt identities never share a key
// (the seed is part of it), so within a pipeline run every attempt books
// its own fill; see cacheKey for why.
func (c *Cached) Complete(req Request) (Response, error) {
	if req.Temperature > 0 {
		return c.Client.Complete(req)
	}
	key := cacheKey(req)
	c.mu.Lock()
	c.calls++
	if c.table == nil {
		c.table = make(map[string]*list.Element)
		c.order = list.New()
		c.inflight = make(map[string]*inflightCall)
	}
	if el, ok := c.table[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		resp := el.Value.(*cacheEntry).resp
		c.mu.Unlock()
		if c.Tracer.Enabled() {
			c.Tracer.Record(trace.Span{Key: req.Attempt, Kind: trace.KindCacheHit, Model: req.Model})
		}
		return resp, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		// Count the wait as a hit whether or not the leader's call
		// succeeded: either way the model was not re-invoked for this
		// request. (Error-path waits previously went uncounted, so the hit
		// rate understated cache effectiveness under fault injection.)
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		if c.Tracer.Enabled() {
			outcome := trace.OutcomeOK
			if call.err != nil {
				outcome = trace.OutcomeError
			}
			c.Tracer.Record(trace.Span{Key: req.Attempt, Kind: trace.KindCacheWait, Model: req.Model, Outcome: outcome})
		}
		return call.resp, call.err
	}
	call := &inflightCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	resp, err := c.leaderFill(req, key)
	call.resp, call.err = resp, err

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.install(key, resp)
	}
	c.mu.Unlock()
	close(call.done)
	return resp, err
}

// leaderFill resolves a cache miss: first against the persistent store (for
// identified traffic), then against the underlying client. Successful model
// completions are appended to the store so future processes start warm.
func (c *Cached) leaderFill(req Request, key string) (Response, error) {
	if c.Persist != nil && req.Attempt != (trace.Key{}) {
		c.mu.Lock()
		c.persistGets++
		c.mu.Unlock()
		if val, ok := c.Persist.Get(persistKey(key)); ok {
			if resp, ok := decodePersistedResponse(val); ok {
				c.mu.Lock()
				c.persistHits++
				c.mu.Unlock()
				if c.Tracer.Enabled() {
					// A persist hit replays a completion another process paid
					// for; the span carries the full attempt replica (tokens,
					// the fee the original attempt was billed, latency) so
					// normalized cold and warm traces are byte-identical.
					// Fee here is informational replay context — the ledger
					// books nothing, which is the point.
					c.Tracer.Record(trace.Span{
						Key:              req.Attempt,
						Kind:             trace.KindPersistHit,
						Model:            req.Model,
						Temperature:      req.Temperature,
						Seed:             req.Seed,
						PromptTokens:     resp.Usage.PromptTokens,
						CompletionTokens: resp.Usage.CompletionTokens,
						Fee:              PriceFor(req.Model).Cost(resp.Usage),
						Latency:          resp.Latency,
						Outcome:          trace.OutcomeOK,
					})
				}
				return resp, nil
			}
		}
	}
	resp, err := c.Client.Complete(req)
	if err == nil && c.Persist != nil {
		// Best-effort warming: a failed append costs a future process one
		// re-bill, it cannot corrupt this run.
		_ = c.Persist.Put(persistKey(key), encodePersistedResponse(resp))
	}
	return resp, err
}

// install adds a filled entry to the in-memory LRU. Caller holds c.mu.
func (c *Cached) install(key string, resp Response) {
	c.table[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
	max := c.MaxEntries
	if max <= 0 {
		max = 4096
	}
	for c.order.Len() > max {
		back := c.order.Back()
		delete(c.table, back.Value.(*cacheEntry).key)
		c.order.Remove(back)
	}
}

// Stats returns the number of temperature-0 lookups and hits so far (in-memory
// and persistent hits combined; single-flight waits count as hits).
func (c *Cached) Stats() (calls, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.hits + c.persistHits
}

// PersistStats returns how many misses consulted the persistent store and how
// many were answered by it.
func (c *Cached) PersistStats() (gets, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.persistGets, c.persistHits
}

// cacheKey canonically encodes every request field that can change a
// temperature-0 completion or its accounting: the model, MaxTokens (two
// identical prompts with different caps truncate differently, so they must
// not collide), the seed, and the messages. Every variable-length field is
// length-prefixed, so the encoding is injective — no two distinct requests
// share a key, which is what lets the table compare full key material
// instead of a hash digest.
//
// The seed is included even though temperature-0 completions ignore it:
// the fault-injection layer below this cache keys its deterministic fault
// schedule on (model, prompt, seed), so two attempt identities sharing one
// fill would make which identity's fault draw applies — and therefore which
// spans and fees land on which attempt — depend on goroutine scheduling.
// Keying on the seed means every attempt identity pays its own way exactly
// once per run (the paper's per-invocation accounting, and the golden-trace
// determinism contract), while true repeats — the same attempt identity in
// a later run or a later process — still hit, because llm.SplitSeed derives
// the identical seed from (run seed, doc, claim, method, try). Attempt is
// still excluded: it is observability metadata. (DESIGN.md §11.)
func cacheKey(req Request) string {
	n := 8 + 8 + 4 + len(req.Model)
	for _, m := range req.Messages {
		n += 8 + len(m.Role) + len(m.Content)
	}
	buf := make([]byte, 0, n)
	var u32 [4]byte
	appendStr := func(s string) {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(s)))
		buf = append(buf, u32[:]...)
		buf = append(buf, s...)
	}
	appendStr(req.Model)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(req.MaxTokens))
	buf = append(buf, u64[:]...)
	binary.LittleEndian.PutUint64(u64[:], uint64(req.Seed))
	buf = append(buf, u64[:]...)
	for _, m := range req.Messages {
		appendStr(m.Role)
		appendStr(m.Content)
	}
	return string(buf)
}

// persistKey namespaces a completion cache key for the shared store.
func persistKey(key string) []byte {
	return append([]byte(persistCompletionPrefix), key...)
}

// persistedResponseVersion tags the on-disk completion value encoding; bump
// it when the layout changes so stale stores read as misses, never as
// garbage.
const persistedResponseVersion = 1

// encodePersistedResponse serializes a completion for the store:
// version byte | u32 contentLen | content | u64 ptok | u64 ctok | u64 latencyNs.
func encodePersistedResponse(resp Response) []byte {
	buf := make([]byte, 0, 1+4+len(resp.Content)+24)
	buf = append(buf, persistedResponseVersion)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(resp.Content)))
	buf = append(buf, u32[:]...)
	buf = append(buf, resp.Content...)
	var u64 [8]byte
	for _, v := range []uint64{uint64(resp.Usage.PromptTokens), uint64(resp.Usage.CompletionTokens), uint64(resp.Latency)} {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	return buf
}

// decodePersistedResponse reverses encodePersistedResponse. A wrong version
// or malformed layout reads as a miss (ok=false); the caller falls through to
// the model.
func decodePersistedResponse(val []byte) (Response, bool) {
	if len(val) < 5 || val[0] != persistedResponseVersion {
		return Response{}, false
	}
	contentLen := binary.LittleEndian.Uint32(val[1:])
	rest := val[5:]
	if uint64(len(rest)) != uint64(contentLen)+24 {
		return Response{}, false
	}
	content := string(rest[:contentLen])
	nums := rest[contentLen:]
	return Response{
		Content: content,
		Usage: Usage{
			PromptTokens:     int(binary.LittleEndian.Uint64(nums[0:])),
			CompletionTokens: int(binary.LittleEndian.Uint64(nums[8:])),
		},
		Latency: time.Duration(binary.LittleEndian.Uint64(nums[16:])),
	}, true
}
